package repro_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// BenchmarkServeScan measures the daemon path end-to-end (snapshot:
// BENCH_serve.json): an edited package is re-submitted to a live
// graphjsd server cold (stateless) and warm (same name, hitting the
// process-wide StatePool's fragment cache), then a burst of concurrent
// warm re-submissions measures p50/p95 latency under load. Reported
// metrics: cold-ms, warm-ms, their speedup ratio, p50-ms and p95-ms.
func BenchmarkServeScan(b *testing.B) {
	srv := server.New(server.Options{Workers: 4, QueueDepth: 4096})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// The package shape mirrors a real library: a small entry pair
	// carrying the vulnerable flow, several analysis-heavy untouched
	// modules (nested loops drive the abstract-interpretation fixpoint;
	// the warm re-scan serves them from the fragment cache), and one
	// small file that gets edited per submission.
	var heavy bytes.Buffer
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&heavy, "function helper%d(v) { var o = {}; for (var i = 0; i < 6; i++) { for (var j = 0; j < 6; j++) { var t = {}; t.a = v; t.b = o; o.x = t; o = t; } } return o; }\n", i)
	}
	heavy.WriteString("module.exports = helper0;\n")
	files := []server.SourceFileJSON{
		{Rel: "index.js", Src: "var run = require('./runner');\nfunction entry(x) { run('git ' + x); }\nmodule.exports = entry;\n"},
		{Rel: "runner.js", Src: "const { exec } = require('child_process');\nfunction r(c) { exec(c); }\nmodule.exports = r;\n"},
	}
	for i := 0; i < 4; i++ {
		files = append(files, server.SourceFileJSON{Rel: fmt.Sprintf("lib%d.js", i), Src: heavy.String()})
	}
	req := func(name string, rev int, cold bool) []byte {
		r := server.ScanRequest{
			Name: name,
			Cold: cold,
			Files: append(files[:len(files):len(files)], server.SourceFileJSON{
				Rel: "util.js",
				Src: fmt.Sprintf("function id(v) { return v; }\nvar rev = %d;\nmodule.exports = id;\n", rev),
			}),
		}
		data, err := json.Marshal(r)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	post := func(body []byte) (time.Duration, int) {
		t0 := time.Now()
		resp, err := http.Post(ts.URL+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sr server.ScanResponse
		if derr := json.NewDecoder(resp.Body).Decode(&sr); derr != nil {
			b.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("scan status %d", resp.StatusCode)
		}
		return time.Since(t0), len(sr.Findings)
	}

	post(req("pkg", -1, false)) // seed the warm state

	var coldNs, warmNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dc, nc := post(req("pkg", i, true))
		dw, nw := post(req("pkg", i, false))
		if nc == 0 || nc != nw {
			b.Fatalf("finding mismatch: cold %d, warm %d", nc, nw)
		}
		coldNs += dc.Nanoseconds()
		warmNs += dw.Nanoseconds()
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/n/1e6, "warm-ms")
	if warmNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(warmNs), "speedup")
	}

	// Concurrent load: 8 clients re-submitting warm packages; the
	// percentiles capture queueing behind the 4-slot worker pool.
	const requests, clients = 64, 8
	for p := 0; p < clients; p++ {
		post(req(fmt.Sprintf("pkg-%d", p), 0, false)) // seed each name
	}
	lat := make([]time.Duration, requests)
	var wg sync.WaitGroup
	idx := make(chan int)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := range idx {
				d, _ := post(req(fmt.Sprintf("pkg-%d", i%clients), 0, false))
				lat[i] = d
			}
		}(c)
	}
	for i := 0; i < requests; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	b.ReportMetric(float64(lat[requests/2].Microseconds())/1000, "p50-ms")
	b.ReportMetric(float64(lat[requests*95/100].Microseconds())/1000, "p95-ms")
}
