// Package repro_test hosts the benchmark harness: one testing.B
// benchmark per table and figure of the paper's evaluation (§5), plus
// substrate and ablation benchmarks. cmd/benchtables runs the same
// pipelines over the full corpora and prints the tables; the benchmarks
// here measure the underlying costs on stratified samples so
// `go test -bench=.` stays tractable.
package repro_test

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/graphdb"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
	"repro/internal/js/printer"
	"repro/internal/jsinterp"
	"repro/internal/metrics"
	"repro/internal/odgen"
	"repro/internal/poc"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/taint"
)

const gitResetSrc = `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`

const setValueSrc = `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		}
		obj = obj[p];
	}
	return obj;
}
module.exports = setValue;
`

// sampleCorpus returns a stratified sample of the ground truth:
// every class is represented, bounded at n packages.
func sampleCorpus(n int) *dataset.Corpus {
	vul, sec := dataset.GroundTruth(42)
	all := append(append([]*dataset.Package{}, vul.Packages...), sec.Packages...)
	byClass := map[dataset.Class][]*dataset.Package{}
	for _, p := range all {
		byClass[p.Class] = append(byClass[p.Class], p)
	}
	out := &dataset.Corpus{Name: "sample"}
	for len(out.Packages) < n {
		added := false
		for _, ps := range byClass {
			if len(ps) > 0 {
				out.Packages = append(out.Packages, ps[0])
				byClass[keyOf(byClass, ps[0])] = ps[1:]
				added = true
				if len(out.Packages) == n {
					break
				}
			}
		}
		if !added {
			break
		}
	}
	return out
}

func keyOf(m map[dataset.Class][]*dataset.Package, p *dataset.Package) dataset.Class {
	return p.Class
}

// BenchmarkTable3 measures ground-truth corpus generation (Table 3's
// dataset build).
func BenchmarkTable3(b *testing.B) {
	for i := 0; i < b.N; i++ {
		vul, sec := dataset.GroundTruth(int64(i))
		if vul.NumVulns()+sec.NumVulns() != 603 {
			b.Fatal("bad corpus")
		}
	}
}

// BenchmarkTable4GraphJS measures the Graph.js side of Table 4 on a
// stratified 40-package sample.
func BenchmarkTable4GraphJS(b *testing.B) {
	c := sampleCorpus(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := metrics.RunGraphJS(c, scanner.Options{})
		out := metrics.Evaluate("graphjs", rs, false)
		if out.Packages != len(c.Packages) {
			b.Fatal("bad run")
		}
	}
}

// BenchmarkTable4ODGen measures the baseline side of Table 4 on the
// same sample (timeouts included: they dominate its cost profile).
func BenchmarkTable4ODGen(b *testing.B) {
	c := sampleCorpus(40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rs := metrics.RunODGen(c, odgen.DefaultOptions())
		out := metrics.Evaluate("odgen", rs, true)
		if out.Packages != len(c.Packages) {
			b.Fatal("bad run")
		}
	}
}

// BenchmarkParallelSweep measures the bounded worker pool: the full
// ground-truth Graph.js sweep at 1, 2, 4 and GOMAXPROCS workers. The
// wall-clock ratio between workers=1 and workers=N is the tentpole
// speedup claim (≥2× expected on a ≥4-core machine; on a single core
// the pool degenerates to the sequential path and the ratio is ~1).
// The cpu/wall metric reports each run's own sum-of-CPU over
// wall-clock ratio.
func BenchmarkParallelSweep(b *testing.B) {
	vul, sec := dataset.GroundTruth(42)
	c := &dataset.Corpus{Name: "combined"}
	c.Packages = append(c.Packages, vul.Packages...)
	c.Packages = append(c.Packages, sec.Packages...)
	counts := []int{1, 2, 4}
	if n := runtime.GOMAXPROCS(0); n > 4 {
		counts = append(counts, n)
	}
	for _, w := range counts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var speedup float64
			for i := 0; i < b.N; i++ {
				sw := metrics.SweepGraphJS(c, scanner.Options{Workers: w})
				if len(sw.Results) != len(c.Packages) {
					b.Fatal("bad sweep")
				}
				speedup = sw.Speedup()
			}
			b.ReportMetric(speedup, "cpu/wall")
		})
	}
}

// BenchmarkFaultSweep sweeps the pathological crash corpus with both
// tools under a tight per-package budget and reports the resulting
// failure-class counts as metrics (snapshot: BENCH_faults.json). The
// counts are the fault-containment contract — a change that turns an
// "ok" or classified row into a hang or a process-killing panic shows
// up here before it shows up in a corpus run.
func BenchmarkFaultSweep(b *testing.B) {
	c := dataset.Pathological()
	for i := 0; i < b.N; i++ {
		gs := metrics.SweepGraphJS(c, scanner.Options{Timeout: 2 * time.Second})
		od := odgen.DefaultOptions()
		od.StepBudget = 20000
		od.Timeout = 2 * time.Second
		osw := metrics.SweepODGen(c, od)
		if len(gs.Results) != len(c.Packages) || len(osw.Results) != len(c.Packages) {
			b.Fatal("bad sweep")
		}
		gc := metrics.FailureCounts(gs.Results)
		oc := metrics.FailureCounts(osw.Results)
		for _, cl := range budget.Classes {
			b.ReportMetric(float64(gc[cl]), "graphjs-"+cl.String())
			b.ReportMetric(float64(oc[cl]), "odgen-"+cl.String())
		}
		b.ReportMetric(float64(gc[budget.ClassNone]), "graphjs-ok")
		b.ReportMetric(float64(oc[budget.ClassNone]), "odgen-ok")
	}
}

// BenchmarkFigure6 measures detection-set comparison (the Venn diagram)
// on a sample.
func BenchmarkFigure6(b *testing.B) {
	c := sampleCorpus(30)
	gjs := metrics.Evaluate("g", metrics.RunGraphJS(c, scanner.Options{}), false)
	odg := metrics.Evaluate("o", metrics.RunODGen(c, odgen.DefaultOptions()), true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		onlyG, both, onlyO := metrics.Venn(gjs, odg)
		if onlyG+both+onlyO == 0 {
			b.Fatal("empty venn")
		}
	}
}

// BenchmarkTable5 measures the wild-corpus scan (Collected dataset) at
// a reduced size.
func BenchmarkTable5(b *testing.B) {
	c := dataset.Collected(7, dataset.DefaultCollectedMix(40))
	cfg := queries.DefaultConfig()
	cfg.RequireAsCodeInjection = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total := 0
		for _, p := range c.Packages {
			rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{Config: cfg})
			total += len(rep.Findings)
		}
		if total == 0 {
			b.Fatal("no findings in wild corpus")
		}
	}
}

// BenchmarkFigure7 measures CDF computation over per-package timings.
func BenchmarkFigure7(b *testing.B) {
	c := sampleCorpus(30)
	rs := metrics.RunGraphJS(c, scanner.Options{})
	ths := make([]time.Duration, 60)
	for i := range ths {
		ths[i] = time.Duration(i+1) * time.Millisecond
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cdf := metrics.CDF(rs, ths, time.Minute)
		if cdf[len(cdf)-1] == 0 {
			b.Fatal("bad cdf")
		}
	}
}

// BenchmarkTable6GraphPhase measures MDG construction alone (the
// "Graph" column of Table 6) on the running example.
func BenchmarkTable6GraphPhase(b *testing.B) {
	prog, err := normalize.File(gitResetSrc, "bench.js")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := analysis.Analyze(prog, analysis.DefaultOptions())
		if res.Graph.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}

// BenchmarkTable6TraversalPhase measures the query phase alone (the
// "Traversals" column of Table 6).
func BenchmarkTable6TraversalPhase(b *testing.B) {
	prog, err := normalize.File(gitResetSrc, "bench.js")
	if err != nil {
		b.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	lg := queries.Load(res)
	cfg := queries.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs, err := queries.Detect(lg, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(fs) == 0 {
			b.Fatal("no findings")
		}
	}
}

// BenchmarkNativeVsQueryDetection compares the two detection backends
// on a pollution-heavy corpus (prototype pollution exercises the most
// expensive traversals: star-edge enumeration plus per-pair reach
// checks). Graph construction is excluded; each sub-benchmark measures
// only its backend's detection phase. The query backend gets its
// property graphs pre-loaded, while the native backend's cost includes
// its own fixpoint construction — that is the work it does instead of
// a graph load.
func BenchmarkNativeVsQueryDetection(b *testing.B) {
	g := dataset.NewGenForTest(7)
	cfg := queries.DefaultConfig()
	var results []*analysis.Result
	var graphs []*queries.LoadedGraph
	add := func(src, name string) {
		prog, err := normalize.File(src, name)
		if err != nil {
			b.Fatal(err)
		}
		res := analysis.Analyze(prog, analysis.DefaultOptions())
		results = append(results, res)
		graphs = append(graphs, queries.Load(res))
	}
	for i := 0; i < 12; i++ {
		for _, class := range []dataset.Class{dataset.ClassPlain, dataset.ClassLoopy} {
			p := dataset.RenderForTest(g, queries.CWEPrototypePollution, class)
			add(p.Source, p.Name)
		}
	}
	add(setValueSrc, "sv.js")

	b.Run("query", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, lg := range graphs {
				fs, err := queries.Detect(lg, cfg)
				if err != nil {
					b.Fatal(err)
				}
				total += len(fs)
			}
			if total == 0 {
				b.Fatal("no findings")
			}
		}
	})
	b.Run("native", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			total := 0
			for _, res := range results {
				total += len(taint.NewEngine(res, cfg).Detect())
			}
			if total == 0 {
				b.Fatal("no findings")
			}
		}
	})
}

// BenchmarkTable7GraphSizes measures both tools' graph construction on
// the same loop-heavy input, the Table 7 size comparison driver.
func BenchmarkTable7GraphSizes(b *testing.B) {
	src := `
function build(n) {
	var acc = [];
	for (var i = 0; i < n; i++) {
		for (var j = 0; j < n; j++) {
			var cell = { row: i, col: j };
			acc.push(cell);
		}
	}
	return acc;
}
module.exports = build;
`
	b.Run("graphjs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := scanner.ScanSource(src, "b.js", scanner.Options{})
			if rep.MDGNodes == 0 {
				b.Fatal("no graph")
			}
		}
	})
	b.Run("odgen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := odgen.Scan(src, "b.js", odgen.DefaultOptions())
			if rep.ODGNodes == 0 {
				b.Fatal("no graph")
			}
		}
	})
}

// BenchmarkCaseStudyLoop is the §5.5 ablation: the fixed-point summary
// versus unrolling on the set-value pollution.
func BenchmarkCaseStudyLoop(b *testing.B) {
	b.Run("graphjs-fixpoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := scanner.ScanSource(setValueSrc, "sv.js", scanner.Options{})
			if len(rep.Findings) == 0 {
				b.Fatal("pollution not detected")
			}
		}
	})
	b.Run("odgen-unroll", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := odgen.Scan(setValueSrc, "sv.js", odgen.DefaultOptions())
			_ = rep
		}
	})
}

// BenchmarkParser measures the JavaScript parser substrate.
func BenchmarkParser(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := parser.Parse(gitResetSrc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNormalize measures AST→Core lowering.
func BenchmarkNormalize(b *testing.B) {
	prog, err := parser.Parse(gitResetSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		normalize.Normalize(prog, "bench.js")
	}
}

// BenchmarkGraphDBQuery measures the embedded query engine on a
// var-length pattern.
func BenchmarkGraphDBQuery(b *testing.B) {
	db := graphdb.NewDB()
	var prev *graphdb.Node
	for i := 0; i < 200; i++ {
		n := db.CreateNode([]string{"Object"}, map[string]graphdb.Value{"i": int64(i)})
		if prev != nil {
			if _, err := db.CreateRel(prev.ID, n.ID, "D", nil); err != nil {
				b.Fatal(err)
			}
		}
		prev = n
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := db.Query(`MATCH (a {i: 0})-[:D*1..16]->(c) RETURN c LIMIT 16`)
		if err != nil || len(res.Rows) == 0 {
			b.Fatalf("query failed: %v", err)
		}
	}
}

// BenchmarkAblationLoopIter sweeps the fixpoint iteration cap: the
// summary converges in a few iterations, so raising the cap must not
// change cost materially (unlike unrolling, where cost scales with it).
func BenchmarkAblationLoopIter(b *testing.B) {
	prog, err := normalize.File(setValueSrc, "sv.js")
	if err != nil {
		b.Fatal(err)
	}
	for _, iters := range []int{4, 16, 64} {
		b.Run(fmt.Sprintf("maxIter=%d", iters), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res := analysis.Analyze(prog, analysis.Options{MaxLoopIter: iters})
				if res.TimedOut {
					b.Fatal("unexpected timeout")
				}
			}
		})
	}
}

// BenchmarkAblationUnroll sweeps the baseline's unroll limit: its cost
// grows with the limit (the object-explosion ablation).
func BenchmarkAblationUnroll(b *testing.B) {
	for _, unroll := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("unroll=%d", unroll), func(b *testing.B) {
			opts := odgen.DefaultOptions()
			opts.UnrollLimit = unroll
			for i := 0; i < b.N; i++ {
				rep := odgen.Scan(setValueSrc, "sv.js", opts)
				_ = rep
			}
		})
	}
}

// BenchmarkTaintSearch measures the TaintPath traversal on the
// git_reset MDG.
func BenchmarkTaintSearch(b *testing.B) {
	prog, err := normalize.File(gitResetSrc, "bench.js")
	if err != nil {
		b.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	lg := queries.Load(res)
	if len(res.Sources) == 0 {
		b.Fatal("no sources")
	}
	src := lg.ByLoc[res.Sources[0]]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		reach := lg.TaintReach(src, 64)
		if len(reach) == 0 {
			b.Fatal("no reach")
		}
	}
}

// BenchmarkPrinter measures AST→source rendering.
func BenchmarkPrinter(b *testing.B) {
	prog, err := parser.Parse(gitResetSrc)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if printer.Print(prog) == "" {
			b.Fatal("empty output")
		}
	}
}

// BenchmarkInterpreter measures concrete execution of the running
// example (the dynamic-confirmation substrate).
func BenchmarkInterpreter(b *testing.B) {
	prog, err := normalize.File(gitResetSrc, "bench.js")
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in := jsinterp.New(100000)
		exports, err := in.RunModule(prog)
		if err != nil {
			b.Fatal(err)
		}
		cfgObj := in.NewObj()
		_, _ = in.CallFunction(exports, jsinterp.Undefined{},
			[]jsinterp.Value{cfgObj, jsinterp.String("reset"), jsinterp.String("main"), jsinterp.String("u")})
		if len(in.Sinks) == 0 {
			b.Fatal("no sink recorded")
		}
	}
}

// BenchmarkConfirm measures one full dynamic-confirmation run (the
// automated §5.3 workflow).
func BenchmarkConfirm(b *testing.B) {
	src := `
const { exec } = require('child_process');
function run(task) { exec('make ' + task); }
module.exports = run;
`
	for i := 0; i < b.N; i++ {
		v, err := poc.Confirm(map[string]string{"index.js": src}, "index.js", queries.CWECommandInjection)
		if err != nil || !v.Exploitable {
			b.Fatalf("confirm failed: %v %v", v, err)
		}
	}
}

// BenchmarkGraphDBSerialization measures JSON export+import round-trips.
func BenchmarkGraphDBSerialization(b *testing.B) {
	prog, err := normalize.File(gitResetSrc, "bench.js")
	if err != nil {
		b.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	lg := queries.Load(res)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := lg.DB.ExportJSON(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := graphdb.ImportJSON(&buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanPackageCached measures the compositionality win: a
// cached re-scan vs a cold scan of a multi-file package.
func BenchmarkScanPackageCached(b *testing.B) {
	dir := b.TempDir()
	files := map[string]string{
		"index.js":  "var run = require('./runner');\nfunction entry(x) { run('git ' + x); }\nmodule.exports = entry;\n",
		"runner.js": "const { exec } = require('child_process');\nfunction r(c) { exec(c); }\nmodule.exports = r;\n",
		"util.js":   "function id(v) { return v; }\nmodule.exports = id;\n",
	}
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			b.Fatal(err)
		}
	}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := scanner.ScanPackage(dir, scanner.Options{})
			if len(rep.Findings) == 0 {
				b.Fatal("no findings")
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := scanner.NewCache()
		scanner.ScanPackage(dir, scanner.Options{Cache: cache}) // warm
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := scanner.ScanPackage(dir, scanner.Options{Cache: cache})
			if len(rep.Findings) == 0 {
				b.Fatal("no findings")
			}
		}
	})
}

// BenchmarkIncrementalRescan measures the incremental tentpole on one
// multi-file package: after editing a single independent file, a warm
// re-scan rebuilds only that file's MDG fragment while the
// require-linked pair (index+runner) is served whole from the fragment
// and detection caches. Reported metrics: cold-ms and warm-ms per
// re-scan plus their ratio (snapshot: BENCH_incremental.json).
func BenchmarkIncrementalRescan(b *testing.B) {
	base := []scanner.SourceFile{
		{Rel: "index.js", Src: "var run = require('./runner');\nfunction entry(x) { run('git ' + x); }\nmodule.exports = entry;\n"},
		{Rel: "runner.js", Src: "const { exec } = require('child_process');\nfunction r(c) { exec(c); }\nmodule.exports = r;\n"},
		{Rel: "util.js", Src: "function id(v) { return v; }\nmodule.exports = id;\n"},
	}
	edit := func(i int) []scanner.SourceFile {
		files := append([]scanner.SourceFile(nil), base...)
		files[2].Src = fmt.Sprintf("function id(v) { return v; }\nvar rev = %d;\nmodule.exports = id;\n", i)
		return files
	}
	st := scanner.NewIncrementalState()
	scanner.ScanFiles(base, "pkg", scanner.Options{Incremental: st}) // seed
	var coldNs, warmNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		files := edit(i)
		t0 := time.Now()
		cold := scanner.ScanFiles(files, "pkg", scanner.Options{})
		coldNs += time.Since(t0).Nanoseconds()
		t1 := time.Now()
		warm := scanner.ScanFiles(files, "pkg", scanner.Options{Incremental: st})
		warmNs += time.Since(t1).Nanoseconds()
		if len(cold.Findings) == 0 || len(warm.Findings) != len(cold.Findings) {
			b.Fatalf("finding mismatch: cold %d, warm %d", len(cold.Findings), len(warm.Findings))
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/n/1e6, "warm-ms")
	if warmNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(warmNs), "speedup")
	}
}

// BenchmarkResumeSweep measures the journal-resume win (snapshot:
// BENCH_resume.json): a supervised sweep is run cold (writing its
// journal), then re-run with -resume against the same journal. The
// resumed sweep satisfies every package from the journal, so its cost
// is hashing plus replay — the resume-ms/cold-ms gap is what a crashed
// sweep avoids paying again.
func BenchmarkResumeSweep(b *testing.B) {
	c := sampleCorpus(60)
	opts := scanner.Options{Workers: 4}
	dir := b.TempDir()
	var coldNs, resumeNs int64
	for i := 0; i < b.N; i++ {
		journal := filepath.Join(dir, fmt.Sprintf("sweep-%d.jsonl", i))
		t0 := time.Now()
		_, _, err := metrics.SuperviseGraphJS(c, opts, metrics.SuperviseOptions{JournalPath: journal})
		coldNs += time.Since(t0).Nanoseconds()
		if err != nil {
			b.Fatal(err)
		}
		t1 := time.Now()
		_, stats, err := metrics.SuperviseGraphJS(c, opts,
			metrics.SuperviseOptions{JournalPath: journal, Resume: true})
		resumeNs += time.Since(t1).Nanoseconds()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Resumed != len(c.Packages) {
			b.Fatalf("resumed %d of %d packages", stats.Resumed, len(c.Packages))
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(resumeNs)/n/1e6, "resume-ms")
	if resumeNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(resumeNs), "speedup")
	}
}

// BenchmarkIncrementalSweep measures the corpus-level re-analysis win
// (the acceptance criterion): a ground-truth sample is swept once to
// seed the per-package state pool, then each iteration edits ONE
// package and re-sweeps. The cold sweep re-analyzes all packages; the
// warm sweep re-analyzes only the edited one. The speedup metric is
// the cold/warm wall-clock ratio (expected well above the 2× bar).
func BenchmarkIncrementalSweep(b *testing.B) {
	c := sampleCorpus(60)
	pool := scanner.NewStatePool()
	opts := scanner.Options{Workers: 1}
	metrics.SweepGraphJSIncremental(c, opts, pool) // seed
	var coldNs, warmNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Single-file edit: one package's source changes per iteration.
		edited := &dataset.Corpus{Name: c.Name, Packages: append([]*dataset.Package(nil), c.Packages...)}
		p := *edited.Packages[i%len(edited.Packages)]
		p.Source += fmt.Sprintf("\nvar rev = %d;\n", i)
		edited.Packages[i%len(edited.Packages)] = &p

		t0 := time.Now()
		cold := metrics.SweepGraphJS(edited, opts)
		coldNs += time.Since(t0).Nanoseconds()
		t1 := time.Now()
		warm := metrics.SweepGraphJSIncremental(edited, opts, pool)
		warmNs += time.Since(t1).Nanoseconds()
		if len(cold.Results) != len(warm.Results) {
			b.Fatal("bad sweep")
		}
	}
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/n/1e6, "warm-ms")
	if warmNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(warmNs), "speedup")
	}
	stats := pool.Stats()
	b.ReportMetric(float64(stats.FragmentHits), "frag-hits")
	b.ReportMetric(float64(stats.FragmentMisses), "frag-rebuilds")
}

// BenchmarkReachGate sweeps the combined ground-truth corpus with the
// export-graph reachability gate on and off and reports the gate's
// precision counters (snapshot: BENCH_reach.json). The invariant the
// differential oracle enforces — identical finding sets either way —
// is re-checked here so a perf snapshot can never capture an unsound
// configuration.
func BenchmarkReachGate(b *testing.B) {
	vul, sec := dataset.GroundTruth(42)
	c := &dataset.Corpus{Name: "combined"}
	c.Packages = append(c.Packages, vul.Packages...)
	c.Packages = append(c.Packages, sec.Packages...)
	for _, gate := range []bool{true, false} {
		name := "gate=on"
		opts := scanner.Options{Workers: runtime.GOMAXPROCS(0)}
		if !gate {
			name = "gate=off"
			opts.NoReachGate = true
		}
		b.Run(name, func(b *testing.B) {
			var sw *metrics.Sweep
			for i := 0; i < b.N; i++ {
				sw = metrics.SweepGraphJS(c, opts)
				if len(sw.Results) != len(c.Packages) {
					b.Fatal("bad sweep")
				}
			}
			avg := metrics.EngineAverages(sw.Results)
			findings := 0
			for _, r := range sw.Results {
				findings += len(r.Findings)
			}
			b.ReportMetric(float64(findings), "findings")
			b.ReportMetric(float64(avg.FuncsPruned), "pruned")
			b.ReportMetric(avg.PrunedRate()*100, "pruned-pct")
			b.ReportMetric(float64(avg.SkippedByReach), "skipped")
			b.ReportMetric(float64(avg.ReachFallbacks), "fallbacks")
			b.ReportMetric(float64(avg.Exports), "exports")
			b.ReportMetric(float64(avg.MaxProvDepth), "prov-depth")
		})
	}
}
