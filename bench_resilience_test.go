package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/server"
)

// BenchmarkServeResilience measures what hostile traffic costs honest
// clients (snapshot: BENCH_resilience.json). Two fixed-size phases run
// against a live daemon served through the production hardened
// transport: first 8 healthy clients alone, then the same request load
// from 6 healthy clients while 2 hostile clients (25% of the fleet)
// loop slowloris connections, oversized uploads, and mid-scan
// disconnects. Reported metrics: healthy-p95-ms (all-healthy baseline),
// hostile-p95-ms (healthy requests during the storm), and degradation
// (their ratio — the `benchjson -resilience` gate requires ≤2×).
func BenchmarkServeResilience(b *testing.B) {
	srv := server.New(server.Options{Workers: 4, QueueDepth: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	hs := srv.NewHTTPServer(ln.Addr().String(), server.HTTPOptions{
		ReadHeaderTimeout: 250 * time.Millisecond,
	})
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	// The healthy request: a vulnerable flow plus enough analysis work
	// that queueing behind the 4-slot pool is measurable.
	var heavy bytes.Buffer
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&heavy, "function helper%d(v) { var o = {}; for (var i = 0; i < 6; i++) { for (var j = 0; j < 6; j++) { var t = {}; t.a = v; t.b = o; o.x = t; o = t; } } return o; }\n", i)
	}
	heavy.WriteString("module.exports = helper0;\n")
	mkReq := func(name string) []byte {
		r := server.ScanRequest{Name: name, Files: []server.SourceFileJSON{
			{Rel: "index.js", Src: "var run = require('./runner');\nmodule.exports = function(x){ run('git ' + x) };\n"},
			{Rel: "runner.js", Src: "const { exec } = require('child_process');\nmodule.exports = function(c){ exec(c) };\n"},
			{Rel: "lib.js", Src: heavy.String()},
		}}
		data, err := json.Marshal(r)
		if err != nil {
			b.Fatal(err)
		}
		return data
	}
	post := func(body []byte) (time.Duration, int) {
		t0 := time.Now()
		resp, err := http.Post(base+"/v1/scan", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var sr server.ScanResponse
		if derr := json.NewDecoder(resp.Body).Decode(&sr); derr != nil {
			b.Fatal(derr)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("healthy scan status %d", resp.StatusCode)
		}
		return time.Since(t0), len(sr.Findings)
	}

	wantFindings := func() int {
		_, n := post(mkReq("probe"))
		if n == 0 {
			b.Fatal("probe scan found nothing; latency of empty scans is not the measurement")
		}
		return n
	}()

	// One hostile client: rotate the three attack shapes forever.
	var oversized []byte
	{
		var big bytes.Buffer
		big.WriteString(`{"name":"big","source":"`)
		big.Write(bytes.Repeat([]byte("a"), 17<<20))
		big.WriteString(`"}`)
		oversized = big.Bytes()
	}
	hostileLoop := func(stop <-chan struct{}) {
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			switch i % 3 {
			case 0: // slowloris: dribble headers until the transport hangs up
				conn, err := net.Dial("tcp", strings.TrimPrefix(base, "http://"))
				if err != nil {
					continue
				}
				conn.Write([]byte("POST /v1/scan HTTP/1.1\r\nHost: x\r\n"))
				conn.SetReadDeadline(time.Now().Add(5 * time.Second))
				conn.Read(make([]byte, 1))
				conn.Close()
			case 1: // oversized upload
				if resp, err := http.Post(base+"/v1/scan", "application/json", bytes.NewReader(oversized)); err == nil {
					resp.Body.Close()
				}
			case 2: // mid-scan disconnect
				ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
				req, _ := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/scan",
					bytes.NewReader(mkReq("ghost")))
				req.Header.Set("Content-Type", "application/json")
				if resp, err := http.DefaultClient.Do(req); err == nil {
					resp.Body.Close()
				}
				cancel()
			}
		}
	}

	// phase runs `requests` healthy scans across `healthy` clients
	// (optionally alongside `hostileN` attackers) and returns the p95
	// healthy latency.
	const requests = 64
	phase := func(healthy, hostileN int) time.Duration {
		stop := make(chan struct{})
		var hwg sync.WaitGroup
		for h := 0; h < hostileN; h++ {
			hwg.Add(1)
			go func() { defer hwg.Done(); hostileLoop(stop) }()
		}
		lat := make([]time.Duration, requests)
		idx := make(chan int)
		var wg sync.WaitGroup
		for c := 0; c < healthy; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := range idx {
					d, n := post(mkReq(fmt.Sprintf("pkg-%d", i%8)))
					if n != wantFindings {
						b.Errorf("healthy scan under load: %d findings, want %d", n, wantFindings)
					}
					lat[i] = d
				}
			}(c)
		}
		for i := 0; i < requests; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
		close(stop)
		hwg.Wait()
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[requests*95/100]
	}

	// Pre-warm every name both phases use, so the baseline and storm
	// phases measure the same (warm) work and the ratio is honest.
	for i := 0; i < 8; i++ {
		post(mkReq(fmt.Sprintf("pkg-%d", i)))
	}

	// The timed loop keeps ns/op meaningful for the trajectory log.
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		post(mkReq("pkg-0"))
	}
	b.StopTimer()

	healthyP95 := phase(8, 0)
	hostileP95 := phase(6, 2)
	b.ReportMetric(float64(healthyP95.Microseconds())/1000, "healthy-p95-ms")
	b.ReportMetric(float64(hostileP95.Microseconds())/1000, "hostile-p95-ms")
	if healthyP95 > 0 {
		b.ReportMetric(float64(hostileP95)/float64(healthyP95), "degradation")
	}
}
