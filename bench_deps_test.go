package repro_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/scanner"
)

// BenchmarkDepsRescan measures the per-package fragment cache under
// tree scans (snapshot: BENCH_deps.json): a dependency tree is scanned
// cold (every package's fragment built from scratch) and warm after
// editing exactly one dependency (only that package's fragment
// rebuilds; the rest rehydrate from the shared state). Reported
// metrics: cold-ms, warm-ms, and their speedup ratio; benchjson -deps
// gates speedup ≥ 2×, the tree-scan acceptance bar.
func BenchmarkDepsRescan(b *testing.B) {
	// Analysis-heavy dependency body (nested loops drive the abstract
	// interpreter), mirroring the store benchmark's package shape so
	// per-package build cost dominates stitching and detection.
	var heavy bytes.Buffer
	for i := 0; i < 4; i++ {
		fmt.Fprintf(&heavy, "function helper%d(v) { var o = {}; for (var i = 0; i < 10; i++) { for (var j = 0; j < 8; j++) { var t = {}; t.a = v; t.b = o; o.x = t; o = t; } } return o; }\n", i)
	}
	heavy.WriteString("module.exports = helper0;\n")

	// Root package: one real vulnerable flow through the runner
	// dependency, plus five heavy libraries the edit cycles through.
	libs := []string{"alpha", "beta", "gamma", "delta", "epsilon"}
	tree := func(rev int) []scanner.SourceFile {
		root := "var run = require('runner');\n"
		manifest := `{"name":"app","version":"1.0.0","dependencies":{"runner":"^1.0.0"`
		for _, l := range libs {
			root += fmt.Sprintf("var %s = require('%s');\n", l, l)
			manifest += fmt.Sprintf(",%q:\"^1.0.0\"", l)
		}
		manifest += "}}"
		root += "module.exports = function entry(x) { run('git ' + x); };\n"
		files := []scanner.SourceFile{
			{Rel: "package.json", Src: manifest},
			{Rel: "index.js", Src: root},
			{Rel: "node_modules/runner/package.json", Src: `{"name":"runner","version":"1.0.0","main":"index.js"}`},
			{Rel: "node_modules/runner/index.js", Src: "const { exec } = require('child_process');\nmodule.exports = function r(c) { exec(c); };\n"},
		}
		for i, l := range libs {
			src := heavy.String()
			if i == 0 {
				// The one-dependency edit: each revision changes only
				// alpha's content hash, so a warm re-scan rebuilds only
				// alpha's fragment.
				src += fmt.Sprintf("// rev %d\n", rev)
			}
			files = append(files,
				scanner.SourceFile{Rel: "node_modules/" + l + "/package.json",
					Src: fmt.Sprintf(`{"name":%q,"version":"1.0.0","main":"index.js"}`, l)},
				scanner.SourceFile{Rel: "node_modules/" + l + "/index.js", Src: src})
		}
		sort.Slice(files, func(i, j int) bool { return files[i].Rel < files[j].Rel })
		return files
	}
	pkgs := len(libs) + 2 // root, runner, and the heavy libraries
	opts := scanner.Options{Timeout: time.Minute, Tree: true}

	// Seed the warm state with the rev-0 tree so every later warm scan
	// starts from a fully populated per-package fragment cache.
	warm := scanner.NewIncrementalState()
	so := opts
	so.Incremental = warm
	rep := scanner.ScanFiles(tree(0), "app", so)
	if rep.Err != nil || len(rep.Findings) == 0 || rep.TreePackages != pkgs {
		b.Fatalf("seed tree scan: err=%v findings=%d packages=%d", rep.Err, len(rep.Findings), rep.TreePackages)
	}

	var coldNs, warmNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		files := tree(i + 1)

		co := opts
		co.Incremental = scanner.NewIncrementalState()
		t0 := time.Now()
		rc := scanner.ScanFiles(files, "app", co)
		coldNs += time.Since(t0).Nanoseconds()

		// Warm: the same tree with one dependency edited since the
		// previous round — only that package's fragment rebuilds.
		before := warm.Stats().FragmentMisses
		wo := opts
		wo.Incremental = warm
		t1 := time.Now()
		rw := scanner.ScanFiles(files, "app", wo)
		warmNs += time.Since(t1).Nanoseconds()

		if rc.Err != nil || rw.Err != nil {
			b.Fatalf("scan errors: cold=%v warm=%v", rc.Err, rw.Err)
		}
		if len(rc.Findings) == 0 || len(rc.Findings) != len(rw.Findings) {
			b.Fatalf("finding mismatch: cold %d, warm %d", len(rc.Findings), len(rw.Findings))
		}
		if got := warm.Stats().FragmentMisses - before; got != 1 {
			b.Fatalf("one-dependency edit rebuilt %d fragments, want 1", got)
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/n/1e6, "warm-ms")
	if warmNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(warmNs), "speedup")
	}
}
