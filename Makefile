GO ?= go

.PHONY: check fmt vet build test race bench bench-all tables

# check is the tier-1 gate: formatting, vet, build, and the race-enabled
# test suite. CI and pre-commit both run this target.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the corpus-sweep benchmarks once and appends a JSON
# snapshot to BENCH_parallel.json, so the parallel-scan perf trajectory
# is tracked across PRs. bench-all runs every benchmark once (no
# snapshot).
bench:
	$(GO) test -run xxx -bench 'ParallelSweep|Table4GraphJS' -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_parallel.json
	@tail -n 4 BENCH_parallel.json

bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x .

tables:
	$(GO) run ./cmd/benchtables
