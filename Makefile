GO ?= go

.PHONY: check fmt vet build test race bench tables

# check is the tier-1 gate: formatting, vet, build, and the race-enabled
# test suite. CI and pre-commit both run this target.
check: fmt vet build race

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -run xxx -bench . -benchtime 1x .

tables:
	$(GO) run ./cmd/benchtables
