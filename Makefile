GO ?= go

.PHONY: check fmt vet lint build test race bench bench-all bench-deps bench-faults bench-incremental bench-reach bench-resilience bench-resume bench-serve bench-store serve-check tables pathological mutate-check chaos chaos-serve fuzz-smoke

# check is the tier-1 gate: formatting, vet, the repo-invariant lint
# suite (including the ctxdrop cancellation check), build, the
# race-enabled test suite, the crash-corpus regression, the
# incremental-scan mutation-equivalence harness, the chaos harnesses
# (library-level and live-server), the scan-service lifecycle gate, and
# a short fuzz smoke. CI and pre-commit both run this target.
check: fmt vet lint build race pathological mutate-check chaos chaos-serve serve-check fuzz-smoke

# lint runs the custom repo-invariant analyzers (naked panics outside
# Guard fences, budget-carrying loops without cooperative checks,
# Fragment mutation after caching). See internal/lint for the checks
# and the //lint:allow waiver syntax.
lint:
	$(GO) run ./cmd/graphjslint internal cmd

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# bench runs the corpus-sweep benchmarks once and appends a JSON
# snapshot to BENCH_parallel.json, so the parallel-scan perf trajectory
# is tracked across PRs. bench-all runs every benchmark once (no
# snapshot).
bench:
	$(GO) test -run xxx -bench 'ParallelSweep|Table4GraphJS' -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_parallel.json
	@tail -n 4 BENCH_parallel.json

bench-all:
	$(GO) test -run xxx -bench . -benchtime 1x .

# bench-faults snapshots the crash-corpus failure-class counts into
# BENCH_faults.json (fault-containment trajectory across PRs).
bench-faults:
	$(GO) test -run xxx -bench FaultSweep -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_faults.json
	@tail -n 4 BENCH_faults.json

# bench-resume snapshots the journal-resume timings (cold supervised
# sweep vs journal-satisfied resume) into BENCH_resume.json.
bench-resume:
	$(GO) test -run xxx -bench ResumeSweep -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_resume.json
	@tail -n 2 BENCH_resume.json

# bench-reach snapshots the export-graph gate's precision counters
# (pruned functions, skipped packages, fallbacks, provenance depth)
# with the gate on and off into BENCH_reach.json. The finding counts in
# both rows must match — the differential oracle in test form.
bench-reach:
	$(GO) test -run xxx -bench ReachGate -benchtime 1x . \
		| $(GO) run ./cmd/benchjson -out BENCH_reach.json
	@tail -n 2 BENCH_reach.json

# bench-incremental snapshots the cold-vs-warm re-scan timings and the
# fragment-cache counters into BENCH_incremental.json (the ≥2× warm
# single-file-edit speedup is the acceptance bar).
bench-incremental:
	$(GO) test -run xxx -bench 'IncrementalRescan|IncrementalSweep' -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -out BENCH_incremental.json
	@tail -n 2 BENCH_incremental.json

# bench-serve snapshots the graphjsd daemon path into BENCH_serve.json:
# cold vs warm re-submission latency through POST /v1/scan plus p50/p95
# under concurrent load. benchjson -serve validates the metrics are all
# present and warm clears the ≥2× StatePool acceptance bar.
bench-serve:
	$(GO) test -run xxx -bench ServeScan -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -serve -out BENCH_serve.json
	@tail -n 1 BENCH_serve.json

# bench-store snapshots the persistent-store warm-restart path into
# BENCH_store.json: a cold scan vs a fresh process restarting from a
# populated -cache-dir (store open included in the timing). benchjson
# -store validates the metrics and gates the restart speedup at ≥2×.
bench-store:
	$(GO) test -run xxx -bench StoreRestart -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -store -out BENCH_store.json
	@tail -n 1 BENCH_store.json

# bench-deps snapshots the dependency-tree rescan path into
# BENCH_deps.json: a cold stitched tree scan vs a warm re-scan after
# editing one dependency (only that package's fragment rebuilds).
# benchjson -deps validates the metrics and gates the warm re-scan
# speedup at ≥2×.
bench-deps:
	$(GO) test -run xxx -bench DepsRescan -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -deps -out BENCH_deps.json
	@tail -n 1 BENCH_deps.json

# serve-check is the scan-service gate: build the daemon, run the
# race-enabled server lifecycle tests (concurrent-vs-sequential finding
# identity, 429 shedding, warm resubmit, drain/journal replay), and
# replay every curl example in docs/API.md against a live test server.
serve-check:
	$(GO) build -o /dev/null ./cmd/graphjsd
	$(GO) test -race -count=1 ./internal/server
	$(GO) test -race -count=1 -run TestAPIDocCurlExamples ./internal/server

tables:
	$(GO) run ./cmd/benchtables

# pathological runs the fault-containment regressions: every
# crash-corpus package must terminate under a tight budget with its
# expected failure class, and sweeps must survive injected panics.
pathological:
	$(GO) test -race -run 'Pathological|Fault|Fallback|PanicIsolation|SweepSurvives' \
		./internal/scanner ./internal/metrics

# mutate-check replays the single-file edit script (touch, benign edit,
# source-introducing edit, sink-removing edit, file add/delete) over
# every dataset template and asserts incremental findings ≡ cold-scan
# findings after every step, under the race detector at Workers=4.
mutate-check:
	$(GO) test -race -run 'Mutation|Incremental|CachedScanEqualsUncached|CacheEvicts' \
		./internal/scanner ./internal/metrics

# chaos runs the supervised-sweep and persistent-store chaos harnesses
# under the race detector: Workers=4 sweeps with deterministic injected
# panics and timeouts, simulated SIGKILLs (journal torn mid-line, store
# log torn mid-record, crash mid-compaction), injected disk faults
# (short write, ENOSPC), bit flips, and resumes that must reproduce the
# uninterrupted run exactly — corruption may change speed, never
# findings.
chaos:
	$(GO) test -race -count=1 -run 'TestChaosKillResume|TestChaosStoreKillResume|TestCreateRepairsTornTail|TestConcurrentWriters|TestCompactCrashBeforeTruncate' \
		./internal/metrics ./internal/sweepjournal
	$(GO) test -race -count=1 -run 'TestCrashMidCompactionLeavesOldLogIntact|TestInjectedDiskFaultsRollBackAndCount|TestTornTailRepairedOnOpen|TestBitFlipQuarantinesRecord|TestGarbageHeaderQuarantinesWholeLog|TestConcurrentPutGet' \
		./internal/store
	$(GO) test -race -count=1 -run 'TestStoreCorruptionDegradesToCold|TestStoreUndecodableEntryQuarantined' \
		./internal/scanner
	$(GO) test -race -count=1 -run 'TestCorruptCacheDirDegradesToCold' ./internal/server

# chaos-serve is the live-daemon resilience harness, under the race
# detector at Workers=4: a real listener behind the production
# transport timeouts takes slowloris connections, mid-body disconnects,
# oversized uploads, abandoned scans, panic bombs, and an injected disk
# fault — while healthy clients must see unchanged findings — then the
# daemon is killed abruptly and a restart on the same cache dir must
# sweep to a journal finding-equivalent to the pre-chaos baseline. The
# cancellation, breaker, and health-machine regressions ride along.
chaos-serve:
	$(GO) test -race -count=1 -run 'TestChaosServe|TestSlowloris|TestClientDisconnect|TestCanceled|TestOversizedBody|TestOffender|TestEngineBreaker|TestHealthz|TestStoreWriteFault|TestPoolEviction' \
		./internal/server

# bench-resilience snapshots what hostile traffic costs honest clients
# into BENCH_resilience.json: p95 healthy-scan latency alone vs with
# 25% of clients hostile (slowloris, oversized uploads, mid-scan
# disconnects). benchjson -resilience validates the metrics and gates
# the degradation ratio at ≤2×.
bench-resilience:
	$(GO) test -run xxx -bench ServeResilience -benchtime 3x . \
		| $(GO) run ./cmd/benchjson -resilience -out BENCH_resilience.json
	@tail -n 1 BENCH_resilience.json

# fuzz-smoke gives each fuzz target a few seconds — enough to catch
# newly introduced panics on the seeded pathological shapes.
fuzz-smoke:
	$(GO) test -run xxx -fuzz FuzzScanAll -fuzztime 3s ./internal/js/lexer
	$(GO) test -run xxx -fuzz FuzzParse -fuzztime 3s ./internal/js/parser
	$(GO) test -run xxx -fuzz FuzzParseQuery -fuzztime 3s ./internal/graphdb
	$(GO) test -run xxx -fuzz FuzzIncrementalEquivalence -fuzztime 3s -fuzzminimizetime 5s ./internal/metrics
	$(GO) test -run xxx -fuzz FuzzReachSoundness -fuzztime 3s -fuzzminimizetime 5s ./internal/scanner
	$(GO) test -run xxx -fuzz FuzzStoreDecode -fuzztime 3s -fuzzminimizetime 5s ./internal/scanner
	$(GO) test -run xxx -fuzz FuzzDepResolve -fuzztime 3s -fuzzminimizetime 5s ./internal/deptree
	$(GO) test -run xxx -fuzz FuzzCrossStitch -fuzztime 3s -fuzzminimizetime 5s ./internal/scanner
