package repro_test

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/scanner"
	"repro/internal/store"
)

// BenchmarkStoreRestart measures the persistent store's warm-restart
// path (snapshot: BENCH_store.json): the same package set is scanned by
// a cold process (fresh incremental state, no cache directory) and by a
// freshly "restarted" process — a new StatePool attached to a
// just-reopened populated store, including the store-open cost in the
// timing. Reported metrics: cold-ms, warm-ms, and their speedup ratio;
// benchjson -store gates speedup ≥ 2×, the store's acceptance bar.
func BenchmarkStoreRestart(b *testing.B) {
	// Analysis-heavy modules (nested loops drive the abstract
	// interpreter) around one real vulnerable flow, mirroring the serve
	// benchmark's package shape: the warm restart serves every
	// fragment, fact set, and detection result from disk.
	var heavy bytes.Buffer
	for i := 0; i < 2; i++ {
		fmt.Fprintf(&heavy, "function helper%d(v) { var o = {}; for (var i = 0; i < 6; i++) { for (var j = 0; j < 6; j++) { var t = {}; t.a = v; t.b = o; o.x = t; o = t; } } return o; }\n", i)
	}
	heavy.WriteString("module.exports = helper0;\n")
	files := []scanner.SourceFile{
		{Rel: "index.js", Src: "var run = require('./runner');\nfunction entry(x) { run('git ' + x); }\nmodule.exports = entry;\n"},
		{Rel: "runner.js", Src: "const { exec } = require('child_process');\nfunction r(c) { exec(c); }\nmodule.exports = r;\n"},
	}
	for i := 0; i < 4; i++ {
		files = append(files, scanner.SourceFile{Rel: fmt.Sprintf("lib%d.js", i), Src: heavy.String()})
	}
	opts := scanner.Options{Timeout: time.Minute}

	// Populate the cache directory once — the "previous process".
	dir := filepath.Join(b.TempDir(), "cache")
	seed, err := store.Open(dir, store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	pool := scanner.NewStatePool()
	pool.AttachStore(seed)
	so := opts
	so.Incremental = pool.Get("pkg")
	rep := scanner.ScanFiles(files, "pkg", so)
	if rep.Err != nil || len(rep.Findings) == 0 {
		b.Fatalf("seed scan: err=%v findings=%d", rep.Err, len(rep.Findings))
	}
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}

	var coldNs, warmNs int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		co := opts
		co.Incremental = scanner.NewIncrementalState()
		t0 := time.Now()
		rc := scanner.ScanFiles(files, "pkg", co)
		coldNs += time.Since(t0).Nanoseconds()

		// Warm restart: everything a new process pays — opening the
		// store, a fresh StatePool, the scan — is inside the timer.
		t1 := time.Now()
		s, err := store.Open(dir, store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		wp := scanner.NewStatePool()
		wp.AttachStore(s)
		wo := opts
		wo.Incremental = wp.Get("pkg")
		rw := scanner.ScanFiles(files, "pkg", wo)
		warmNs += time.Since(t1).Nanoseconds()

		if rc.Err != nil || rw.Err != nil {
			b.Fatalf("scan errors: cold=%v warm=%v", rc.Err, rw.Err)
		}
		if len(rc.Findings) == 0 || len(rc.Findings) != len(rw.Findings) {
			b.Fatalf("finding mismatch: cold %d, warm %d", len(rc.Findings), len(rw.Findings))
		}
		if st := wo.Incremental.Stats(); st.StoreHits == 0 {
			b.Fatalf("warm restart never hit the store: %+v", st)
		}
		if err := s.Close(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(coldNs)/n/1e6, "cold-ms")
	b.ReportMetric(float64(warmNs)/n/1e6, "warm-ms")
	if warmNs > 0 {
		b.ReportMetric(float64(coldNs)/float64(warmNs), "speedup")
	}
}
