// Quickstart: scan a vulnerable JavaScript snippet end-to-end with the
// public pipeline (parse → normalize → MDG → graph DB → queries) and
// print the findings.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
	"repro/internal/queries"
	"repro/internal/scanner"
)

const vulnerable = `
const { exec } = require('child_process');

function deploy(branch) {
	exec('git checkout ' + branch);
}
module.exports = deploy;
`

func main() {
	// High-level API: one call.
	rep := scanner.ScanSource(vulnerable, "deploy.js", scanner.Options{})
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}
	fmt.Println("findings (high-level API):")
	for _, f := range rep.Findings {
		fmt.Printf("  %s\n", f)
	}

	// Low-level API: each pipeline stage separately.
	prog, err := normalize.File(vulnerable, "deploy.js")
	if err != nil {
		log.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	fmt.Printf("\nMDG: %d nodes, %d edges, %d taint sources\n",
		res.Graph.NumNodes(), res.Graph.NumEdges(), len(res.Sources))

	lg := queries.Load(res)
	findings, err := queries.Detect(lg, queries.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("findings (low-level API):")
	for _, f := range findings {
		fmt.Printf("  %s\n", f)
	}
}
