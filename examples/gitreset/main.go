// The paper's Fig. 1 motivating example: git_reset hides both a
// command-injection and a prototype-pollution vulnerability. This
// example builds the MDG, prints it in the paper's edge notation, and
// shows both detections.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
	"repro/internal/queries"
)

const gitReset = `
const { exec } = require('child_process');

function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`

func main() {
	prog, err := normalize.File(gitReset, "git_reset.js")
	if err != nil {
		log.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())

	fmt.Println("MDG edges (paper notation, §2.2):")
	fmt.Println(res.Graph.String())

	fmt.Println("\nTaint sources (parameters of the exported function):")
	for _, s := range res.Sources {
		fmt.Printf("  o%d (%s)\n", s, res.Graph.Node(s).Label)
	}

	lg := queries.Load(res)
	fmt.Println("\nFindings:")
	fs, err := queries.Detect(lg, queries.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fs {
		fmt.Printf("  %s\n", f)
	}
	fmt.Println("\nExpected: a command injection at the exec call (Fig. 1d's")
	fmt.Println("payload runs `git reset HEAD~1 | rm -rf /`) and a prototype")
	fmt.Println("pollution via options[branch_name] = url (Fig. 1e).")
}
