// Custom queries: the MDG is stored in an embedded property-graph
// database with a Cypher-like query language, so new vulnerability
// patterns can be expressed without touching the analysis — the paper's
// "generality and modularity" property (§2). This example runs ad-hoc
// queries against a program's MDG.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
	"repro/internal/queries"
)

const src = `
var mysql = require('mysql');
var conn = mysql.createConnection({ host: 'localhost' });

function findUser(name, cb) {
	conn.query('SELECT * FROM users WHERE name = "' + name + '"', cb);
}
module.exports = findUser;
`

func main() {
	prog, err := normalize.File(src, "users.js")
	if err != nil {
		log.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	lg := queries.Load(res)

	// 1. Plain graph queries: list every call site.
	rows, err := lg.DB.Query(`MATCH (c:Call) RETURN c.name, c.line`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("call sites:")
	for _, r := range rows.Rows {
		fmt.Printf("  %v (line %v)\n", r["c.name"], r["c.line"])
	}

	// 2. A custom taint query: SQL injection, as §6 suggests — supply
	// the sink via configuration, no analysis changes needed.
	cfg := &queries.Config{
		MaxHops: 64,
		Sinks: []queries.Sink{
			{CWE: queries.CWE("CWE-89"), Name: "conn.query", Args: []int{0}},
		},
	}
	fmt.Println("\ncustom SQL-injection query:")
	sqlFindings, err := queries.DetectTaintStyle(lg, cfg, queries.CWE("CWE-89"))
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range sqlFindings {
		fmt.Printf("  %s\n", f)
	}

	// 3. Raw pattern matching: find dynamic-property writes.
	rows, err = lg.DB.Query(`
MATCH (o)-[:V {prop: '*'}]->(ver)
RETURN DISTINCT ver.line LIMIT 5`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ndynamic property writes (V(*) edges):")
	for _, r := range rows.Rows {
		fmt.Printf("  line %v\n", r["ver.line"])
	}
	if len(rows.Rows) == 0 {
		fmt.Println("  none in this program")
	}
}
