// Multi-file packages: the scanner builds one combined MDG for the
// whole package, so require('./lib/runner') connects flows across
// files and the finding is attributed to the file and line of the
// actual sink.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"repro/internal/scanner"
)

func main() {
	dir := "examples/multifile/pkg"
	if _, err := os.Stat(dir); err != nil {
		// Running from the example directory itself.
		dir = "pkg"
	}
	rep := scanner.ScanPackage(dir, scanner.Options{})
	if rep.Err != nil {
		log.Fatal(rep.Err)
	}
	fmt.Printf("scanned %s: %d LoC across the package, %d MDG nodes\n",
		filepath.Base(dir), rep.LoC, rep.MDGNodes)
	for _, f := range rep.Findings {
		fmt.Printf("  %s (in %s)\n", f, f.SinkFile)
	}
	if len(rep.Findings) == 0 {
		fmt.Println("  no findings (unexpected — the package is vulnerable!)")
	}
}
