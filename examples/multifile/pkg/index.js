// A small npm-style package whose vulnerability spans two files: the
// exported entry point forwards attacker input to a helper in lib/.
var runner = require('./lib/runner');

function deploy(branch) {
	return runner.checkout('release/' + branch);
}

module.exports = deploy;
