const { exec } = require('child_process');

function checkout(ref) {
	exec('git checkout ' + ref);
}

module.exports = { checkout: checkout };
