// Dynamic confirmation: the paper validates findings by writing
// exploits and running them (§5.3). This example runs that loop
// in-process: scan a package, generate a PoC skeleton for each finding,
// and confirm exploitability by driving the exported entry points in
// the instrumented concrete interpreter.
package main

import (
	"fmt"
	"log"

	"repro/internal/poc"
	"repro/internal/scanner"
)

const vulnerable = `
const { exec } = require('child_process');

function run(task) {
	exec('make ' + task);
}
module.exports = run;
`

const guarded = `
const { exec } = require('child_process');
var TASKS = ['build', 'test', 'clean'];

function run(task) {
	if (TASKS.indexOf(task) === -1) {
		return null;
	}
	exec('make ' + task);
}
module.exports = run;
`

func main() {
	for name, src := range map[string]string{"vulnerable.js": vulnerable, "guarded.js": guarded} {
		fmt.Printf("=== %s ===\n", name)
		rep := scanner.ScanSource(src, name, scanner.Options{})
		if rep.Err != nil {
			log.Fatal(rep.Err)
		}
		for _, f := range rep.Findings {
			fmt.Printf("static finding: %s\n", f)
			v, err := poc.Confirm(map[string]string{name: src}, name, f.CWE)
			if err != nil {
				log.Fatal(err)
			}
			if v.Exploitable {
				fmt.Printf("  dynamically CONFIRMED: %s\n", v.Evidence)
			} else {
				fmt.Printf("  not confirmed (true false positive): %s\n", v.Evidence)
			}
			e := poc.Generate(f, "./"+name, "", 0, 1)
			fmt.Printf("  PoC skeleton (%d lines) — oracle: %s\n",
				countLines(e.Script), e.Oracle)
		}
		fmt.Println()
	}
	fmt.Println("Both files are statically flagged (the scanner over-approximates")
	fmt.Println("guards, §5.2); only the unguarded one is dynamically confirmed —")
	fmt.Println("exactly the TP vs TFP distinction of Table 4.")
}

func countLines(s string) int {
	n := 1
	for _, c := range s {
		if c == '\n' {
			n++
		}
	}
	return n
}
