// The paper's §5.5 case study: a prototype pollution inside a loop
// (npm set-value v3.0.0, CVE-2021-23440). The MDG's fixed-point summary
// keeps the graph finite and cyclic where loop unrolling would explode;
// this example prints the graph size for both this scanner and the
// ODGen-style baseline.
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
	"repro/internal/odgen"
	"repro/internal/queries"
)

const setValue = `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		}
		obj = obj[p];
	}
	return obj;
}
module.exports = setValue;
`

func main() {
	prog, err := normalize.File(setValue, "set-value.js")
	if err != nil {
		log.Fatal(err)
	}
	res := analysis.Analyze(prog, analysis.DefaultOptions())
	fmt.Printf("Graph.js MDG: %d nodes, %d edges (converged fixpoint, cyclic versions)\n",
		res.Graph.NumNodes(), res.Graph.NumEdges())

	lg := queries.Load(res)
	fs, err := queries.Detect(lg, queries.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	for _, f := range fs {
		fmt.Printf("  %s\n", f)
	}

	// The unrolling baseline on the same input.
	rep := odgen.Scan(setValue, "set-value.js", odgen.DefaultOptions())
	fmt.Printf("\nODGen-style baseline: %d ODG nodes, timed out: %v, findings: %d\n",
		rep.ODGNodes, rep.TimedOut, len(rep.Findings))
	fmt.Println("\n(§5.5: Graph.js's version edges and fixed-point summary detect the")
	fmt.Println("pollution quickly; ODGen's unrolled representation struggles.)")
}
