// Package lint implements the repo-invariant checks enforced by
// cmd/graphjslint. The checks encode conventions the scanner's fault
// containment depends on but the compiler cannot see:
//
//   - nakedpanic: library code under internal/ must not panic outside a
//     budget.Guard fence. Guards are dynamic, so every deliberate panic
//     site must carry a //lint:allow nakedpanic waiver stating which
//     fence recovers it.
//   - budgetloop: a function that receives a *budget.Budget must
//     consult it inside every loop — otherwise the cooperative
//     deadline/step accounting the fault-containment layer relies on
//     has a blind spot exactly where the work happens.
//   - fragmutate: mdg.Fragment snapshots are immutable once cached by
//     the incremental scanner. Fragment fields may only be written in
//     the function that constructs the fragment (&Fragment{...});
//     any later field write is cache corruption.
//   - syncclose: the Close/Sync result of a writable file (os.Create,
//     os.OpenFile with write flags) must be checked. A write error can
//     surface only at close/fsync time; discarding it turns silent
//     data loss into a "successful" run — exactly the failure mode the
//     persistent store and sweep journal are built to prevent.
//   - ctxdrop: a function that receives a context.Context (or an
//     *http.Request carrying one) must thread it into any budget it
//     creates — a budget.New call wants a .WithContext, and a
//     scanner.Options literal wants a Context: key (or a later
//     .Context assignment). Dropping the context silently re-creates
//     the bug this check was born from: a disconnected client whose
//     scan runs to completion, holding a worker slot nobody will read.
//
// The analyzers are plain go/ast walks (no go/analysis dependency) so
// the lint suite builds with the standard library alone. A finding is
// suppressed by a `//lint:allow <check> -- reason` comment on the same
// line or the line directly above the flagged statement.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// Finding is one invariant violation.
type Finding struct {
	File  string
	Line  int
	Check string
	Msg   string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", f.File, f.Line, f.Check, f.Msg)
}

// Dirs lints every non-test .go file under the given roots and returns
// the findings sorted by file and line.
func Dirs(roots ...string) ([]Finding, error) {
	var out []Finding
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			fs, err := File(path, nil)
			if err != nil {
				return err
			}
			out = append(out, fs...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].File != out[j].File {
			return out[i].File < out[j].File
		}
		return out[i].Line < out[j].Line
	})
	return out, nil
}

// File lints a single file. src may be nil (read from disk) or the
// file's contents (used by tests). Which checks run depends on the
// path: nakedpanic and budgetloop apply to internal/* library code,
// fragmutate applies everywhere Fragment values are manipulated.
func File(path string, src any) ([]Finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	l := &linter{
		fset:     fset,
		path:     filepath.ToSlash(path),
		allow:    allowedLines(fset, file),
		internal: strings.Contains(filepath.ToSlash(path), "internal/"),
	}
	if l.internal {
		l.nakedPanic(file)
		if !strings.Contains(l.path, "internal/budget/") {
			l.budgetLoop(file)
		}
		l.ctxDrop(file)
	}
	l.fragMutate(file)
	l.syncClose(file)
	return l.out, nil
}

type linter struct {
	fset     *token.FileSet
	path     string
	allow    map[int]map[string]bool
	internal bool
	out      []Finding
}

// allowedLines maps line numbers to the set of checks waived there. A
// `//lint:allow check1,check2 -- reason` comment waives its own line
// and the line directly below it, so it works both as a trailing
// comment and on a line of its own above the statement.
func allowedLines(fset *token.FileSet, file *ast.File) map[int]map[string]bool {
	allow := map[int]map[string]bool{}
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "lint:allow") {
				continue
			}
			rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
			if i := strings.Index(rest, "--"); i >= 0 {
				rest = rest[:i]
			}
			line := fset.Position(c.Pos()).Line
			for _, check := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
				for _, ln := range []int{line, line + 1} {
					if allow[ln] == nil {
						allow[ln] = map[string]bool{}
					}
					allow[ln][check] = true
				}
			}
		}
	}
	return allow
}

func (l *linter) report(pos token.Pos, check, msg string) {
	line := l.fset.Position(pos).Line
	if l.allow[line][check] {
		return
	}
	l.out = append(l.out, Finding{File: l.path, Line: line, Check: check, Msg: msg})
}

// nakedPanic flags every panic(...) call. Library code must return
// classified errors; deliberate panics (fault injection, internal
// invariants recovered by a Guard fence) carry explicit waivers naming
// the fence that catches them.
func (l *linter) nakedPanic(file *ast.File) {
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
			l.report(call.Pos(), "nakedpanic",
				"panic in library code outside a Guard fence; return a classified error or waive with the recovering fence")
		}
		return true
	})
}

// budgetLoop flags loops in budget-carrying functions that never
// consult the budget. A function "carries" a budget when it has a
// *budget.Budget parameter; a loop "consults" it when the parameter
// identifier appears anywhere in the loop body (a method call, or
// passing it to a callee that checks). Only the outermost
// non-consulting loop is flagged — fixing it covers its children.
func (l *linter) budgetLoop(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		buds := budgetParams(fn)
		if len(buds) == 0 {
			continue
		}
		l.checkLoops(fn.Body, fn.Name.Name, buds)
	}
}

// budgetParams returns the names of *budget.Budget parameters.
func budgetParams(fn *ast.FuncDecl) map[string]bool {
	buds := map[string]bool{}
	if fn.Type.Params == nil {
		return buds
	}
	for _, field := range fn.Type.Params.List {
		star, ok := field.Type.(*ast.StarExpr)
		if !ok {
			continue
		}
		sel, ok := star.X.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Budget" {
			continue
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "budget" {
			continue
		}
		for _, name := range field.Names {
			if name.Name != "_" {
				buds[name.Name] = true
			}
		}
	}
	return buds
}

// checkLoops walks n flagging loops whose subtree never mentions a
// budget identifier. Descent stops at the first flagged loop and at
// function literals (which do not inherit the parameter obligation).
func (l *linter) checkLoops(n ast.Node, fname string, buds map[string]bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch loop := node.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt, *ast.RangeStmt:
			if mentionsAny(loop, buds) {
				return true // cooperative; inner loops judged on their own
			}
			l.report(loop.Pos(), "budgetloop",
				fmt.Sprintf("loop in %s never consults budget parameter; add a Step/CheckDeadline call or thread the budget through", fname))
			return false
		}
		return true
	})
}

func mentionsAny(n ast.Node, names map[string]bool) bool {
	found := false
	ast.Inspect(n, func(node ast.Node) bool {
		if found {
			return false
		}
		if id, ok := node.(*ast.Ident); ok && names[id.Name] {
			found = true
			return false
		}
		return true
	})
	return found
}

// fragMutate flags writes to fields of mdg.Fragment values outside the
// function that constructs them. Fragment identifiers are method
// receivers, parameters typed *Fragment / []*Fragment (or the
// mdg-qualified forms), and range variables drawn from those slices.
// An identifier assigned a &Fragment{...} composite literal in the
// same function is under construction and exempt.
func (l *linter) fragMutate(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		frags := fragmentIdents(fn)
		if len(frags) == 0 {
			continue
		}
		constructed := constructedIdents(fn.Body)
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			asg, ok := node.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range asg.Lhs {
				root, isField := rootIdent(lhs)
				if root == nil || !isField {
					continue
				}
				if frags[root.Name] && !constructed[root.Name] {
					l.report(asg.Pos(), "fragmutate",
						fmt.Sprintf("write to field of cached Fragment %q in %s; fragments are immutable after SnapshotFragment", root.Name, fn.Name.Name))
				}
			}
			return true
		})
	}
}

// fragmentIdents collects names bound to Fragment values in fn's
// signature and range statements over Fragment slices.
func fragmentIdents(fn *ast.FuncDecl) map[string]bool {
	frags := map[string]bool{}
	collect := func(list *ast.FieldList) {
		if list == nil {
			return
		}
		for _, field := range list.List {
			if !isFragmentType(field.Type) {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					frags[name.Name] = true
				}
			}
		}
	}
	collect(fn.Recv)
	collect(fn.Type.Params)
	if len(frags) == 0 {
		return frags
	}
	// Range variables over Fragment-typed slices inherit the marking.
	ast.Inspect(fn.Body, func(node ast.Node) bool {
		rng, ok := node.(*ast.RangeStmt)
		if !ok {
			return true
		}
		src, _ := rootIdent(rng.X)
		if src == nil || !frags[src.Name] {
			return true
		}
		if id, ok := rng.Value.(*ast.Ident); ok && id.Name != "_" {
			frags[id.Name] = true
		}
		return true
	})
	return frags
}

// isFragmentType matches Fragment, *Fragment, []*Fragment, ...*Fragment
// and their mdg-qualified spellings.
func isFragmentType(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.StarExpr:
		return isFragmentType(tt.X)
	case *ast.ArrayType:
		return isFragmentType(tt.Elt)
	case *ast.Ellipsis:
		return isFragmentType(tt.Elt)
	case *ast.Ident:
		return tt.Name == "Fragment"
	case *ast.SelectorExpr:
		pkg, ok := tt.X.(*ast.Ident)
		return ok && pkg.Name == "mdg" && tt.Sel.Name == "Fragment"
	}
	return false
}

// constructedIdents returns names assigned a &Fragment{...} (or
// Fragment{...}) composite literal anywhere in body.
func constructedIdents(body *ast.BlockStmt) map[string]bool {
	made := map[string]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		asg, ok := node.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range asg.Rhs {
			if i >= len(asg.Lhs) {
				break
			}
			expr := rhs
			if un, ok := expr.(*ast.UnaryExpr); ok && un.Op == token.AND {
				expr = un.X
			}
			lit, ok := expr.(*ast.CompositeLit)
			if !ok || !isFragmentType(lit.Type) {
				continue
			}
			if id, ok := asg.Lhs[i].(*ast.Ident); ok {
				made[id.Name] = true
			}
		}
		return true
	})
	return made
}

// syncClose flags discarded Close()/Sync() results on files opened
// writable in the same function. Covered discard shapes: a bare
// expression statement, `defer f.Close()`, and `_ = f.Close()`. The
// check is syntactic and per-function — a writable *os.File passed to
// another function is that function's responsibility.
func (l *linter) syncClose(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		writable := writableFileIdents(fn.Body)
		if len(writable) == 0 {
			continue
		}
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			switch st := node.(type) {
			case *ast.ExprStmt:
				l.reportSyncClose(st.X, writable, "")
			case *ast.DeferStmt:
				l.reportSyncClose(st.Call, writable, "defer ")
			case *ast.AssignStmt:
				for i, lhs := range st.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						continue
					}
					if i < len(st.Rhs) {
						l.reportSyncClose(st.Rhs[i], writable, "_ = ")
					}
				}
			}
			return true
		})
	}
}

// reportSyncClose reports e when it is a Close/Sync call on a known
// writable file identifier whose result the surrounding context drops.
func (l *linter) reportSyncClose(e ast.Expr, writable map[string]bool, context string) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || (sel.Sel.Name != "Close" && sel.Sel.Name != "Sync") {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok || !writable[recv.Name] {
		return
	}
	l.report(call.Pos(), "syncclose",
		fmt.Sprintf("%s%s.%s() discards the error of a writable file; a failed write can surface only here — check it or waive with the reason",
			context, recv.Name, sel.Sel.Name))
}

// writableFileIdents collects identifiers assigned from os.Create or a
// write-mode os.OpenFile anywhere in body.
func writableFileIdents(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(node ast.Node) bool {
		asg, ok := node.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 {
			return true
		}
		call, ok := asg.Rhs[0].(*ast.CallExpr)
		if !ok || !isWritableOpen(call) {
			return true
		}
		// os.Create/os.OpenFile return (*os.File, error): the file is
		// the first LHS.
		if id, ok := asg.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			out[id.Name] = true
		}
		return true
	})
	return out
}

// isWritableOpen matches os.Create(...) and os.OpenFile(...) whose flag
// argument requests write access (mentions any of the O_* write flags).
// Plain os.Open and read-only OpenFile calls are exempt: their Close
// cannot lose data.
func isWritableOpen(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok || pkg.Name != "os" {
		return false
	}
	switch sel.Sel.Name {
	case "Create":
		return true
	case "OpenFile":
		if len(call.Args) < 2 {
			return false
		}
		writeFlags := map[string]bool{
			"O_WRONLY": true, "O_RDWR": true, "O_APPEND": true,
			"O_CREATE": true, "O_TRUNC": true,
		}
		found := false
		ast.Inspect(call.Args[1], func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && writeFlags[id.Name] {
				found = true
				return false
			}
			return !found
		})
		return found
	}
	return false
}

// ctxDrop flags functions that have a context available — a
// context.Context parameter or an *http.Request (whose .Context() is
// one call away) — yet build a budget that cannot observe it: a
// budget.New(...) call in a body with no .WithContext(...) call, or a
// scanner.Options composite literal with no Context: key in a body
// that never assigns a .Context field afterwards. The check is
// syntactic and per-function, like budgetloop: it cannot prove the
// right context reaches the right budget, only that cancellation was
// wired at all.
func (l *linter) ctxDrop(file *ast.File) {
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !hasContextParam(fn) {
			continue
		}
		withContext, ctxAssign := false, false
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "WithContext" {
					withContext = true
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok && sel.Sel.Name == "Context" {
						ctxAssign = true
					}
				}
			}
			return true
		})
		ast.Inspect(fn.Body, func(node ast.Node) bool {
			switch n := node.(type) {
			case *ast.CallExpr:
				if !withContext && isPkgCall(n, "budget", "New") {
					l.report(n.Pos(), "ctxdrop",
						fmt.Sprintf("%s has a context available but budget.New is never given it; chain .WithContext or waive with the reason", fn.Name.Name))
				}
			case *ast.CompositeLit:
				if !ctxAssign && l.isScannerOptions(n.Type) && !hasCompositeKey(n, "Context") {
					l.report(n.Pos(), "ctxdrop",
						fmt.Sprintf("%s has a context available but the scanner.Options literal drops it; set Context: or waive with the reason", fn.Name.Name))
				}
			}
			return true
		})
	}
}

// hasContextParam reports whether fn receives a context.Context or an
// *http.Request parameter.
func hasContextParam(fn *ast.FuncDecl) bool {
	if fn.Type.Params == nil {
		return false
	}
	for _, field := range fn.Type.Params.List {
		t := field.Type
		if star, ok := t.(*ast.StarExpr); ok {
			t = star.X
		}
		sel, ok := t.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			continue
		}
		if (pkg.Name == "context" && sel.Sel.Name == "Context") ||
			(pkg.Name == "http" && sel.Sel.Name == "Request") {
			return true
		}
	}
	return false
}

// isPkgCall matches pkg.Fn(...) calls.
func isPkgCall(call *ast.CallExpr, pkg, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	return ok && id.Name == pkg
}

// isScannerOptions matches scanner.Options composite-literal types —
// and the bare Options spelling inside internal/scanner itself.
func (l *linter) isScannerOptions(t ast.Expr) bool {
	switch tt := t.(type) {
	case *ast.SelectorExpr:
		pkg, ok := tt.X.(*ast.Ident)
		return ok && pkg.Name == "scanner" && tt.Sel.Name == "Options"
	case *ast.Ident:
		return tt.Name == "Options" && strings.Contains(l.path, "internal/scanner/")
	}
	return false
}

// hasCompositeKey reports whether a composite literal sets the named
// field.
func hasCompositeKey(lit *ast.CompositeLit, name string) bool {
	for _, el := range lit.Elts {
		kv, ok := el.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == name {
			return true
		}
	}
	return false
}

// rootIdent walks selector/index chains to the base identifier and
// reports whether the expression actually dereferences into it (a bare
// identifier on the LHS is a rebind, not a field write).
func rootIdent(e ast.Expr) (*ast.Ident, bool) {
	field := false
	for {
		switch ee := e.(type) {
		case *ast.Ident:
			return ee, field
		case *ast.SelectorExpr:
			e = ee.X
			field = true
		case *ast.IndexExpr:
			e = ee.X
			field = true
		case *ast.StarExpr:
			e = ee.X
		case *ast.ParenExpr:
			e = ee.X
		default:
			return nil, false
		}
	}
}
