package lint

import (
	"strings"
	"testing"
)

func findings(t *testing.T, path, src string) []Finding {
	t.Helper()
	fs, err := File(path, src)
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	return fs
}

func checks(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Check)
	}
	return out
}

func TestNakedPanicFlagged(t *testing.T) {
	src := `package x
func f() { panic("boom") }
`
	fs := findings(t, "internal/x/x.go", src)
	if len(fs) != 1 || fs[0].Check != "nakedpanic" || fs[0].Line != 2 {
		t.Fatalf("findings = %v", fs)
	}
}

func TestNakedPanicWaived(t *testing.T) {
	src := `package x
func f() {
	panic("boom") //lint:allow nakedpanic -- recovered by the phase guard
}
func g() {
	//lint:allow nakedpanic -- recovered by the phase guard
	panic("boom")
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("waived panics still flagged: %v", fs)
	}
}

func TestPanicOutsideInternalIgnored(t *testing.T) {
	src := `package main
func main() { panic("cli") }
`
	if fs := findings(t, "cmd/x/main.go", src); len(fs) != 0 {
		t.Fatalf("cmd panics are not library panics: %v", fs)
	}
}

func TestBudgetLoopFlagged(t *testing.T) {
	src := `package x
import "repro/internal/budget"
func f(items []int, b *budget.Budget) {
	for range items {
	}
}
`
	fs := findings(t, "internal/x/x.go", src)
	if len(fs) != 1 || fs[0].Check != "budgetloop" {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "f never consults") {
		t.Fatalf("msg = %q", fs[0].Msg)
	}
}

func TestBudgetLoopConsultedNotFlagged(t *testing.T) {
	src := `package x
import "repro/internal/budget"
func f(items []int, b *budget.Budget) {
	for range items {
		if b.CheckDeadline() != nil {
			return
		}
		for range items { // inner loop judged on its own
		}
	}
}
`
	fs := findings(t, "internal/x/x.go", src)
	if len(fs) != 1 || fs[0].Line != 8 {
		t.Fatalf("want only the inner loop flagged: %v", fs)
	}
}

func TestBudgetLoopNoParamNoObligation(t *testing.T) {
	src := `package x
func f(items []int) {
	for range items {
	}
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("no budget param means no obligation: %v", fs)
	}
}

func TestBudgetLoopFuncLitExempt(t *testing.T) {
	src := `package x
import "repro/internal/budget"
func f(items []int, b *budget.Budget) {
	_ = b.Err()
	g := func() {
		for range items {
		}
	}
	g()
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("function literals do not inherit the obligation: %v", fs)
	}
}

func TestFragMutateFlagged(t *testing.T) {
	src := `package mdg
type Fragment struct{ nodes []int }
func grow(f *Fragment) {
	f.nodes = append(f.nodes, 1)
}
func (f *Fragment) reset() {
	f.nodes = nil
}
`
	fs := findings(t, "internal/mdg/x.go", src)
	if len(fs) != 2 {
		t.Fatalf("findings = %v", fs)
	}
	for _, f := range fs {
		if f.Check != "fragmutate" {
			t.Fatalf("check = %q", f.Check)
		}
	}
}

func TestFragMutateConstructionExempt(t *testing.T) {
	src := `package mdg
type Fragment struct{ nodes []int }
func snapshot(src []int) *Fragment {
	f := &Fragment{}
	for _, n := range src {
		f.nodes = append(f.nodes, n)
	}
	return f
}
`
	if fs := findings(t, "internal/mdg/x.go", src); len(fs) != 0 {
		t.Fatalf("construction writes are exempt: %v", fs)
	}
}

func TestFragMutateRangeVarAndQualified(t *testing.T) {
	src := `package scanner
import "repro/internal/mdg"
func stomp(frags []*mdg.Fragment) {
	for _, f := range frags {
		f.Loc = 0
	}
}
`
	fs := findings(t, "internal/scanner/x.go", src)
	if len(fs) != 1 || fs[0].Check != "fragmutate" {
		t.Fatalf("findings = %v", fs)
	}
}

func TestFragMutateRebindNotFlagged(t *testing.T) {
	src := `package scanner
import "repro/internal/mdg"
func swap(f *mdg.Fragment, g *mdg.Fragment) *mdg.Fragment {
	f = g // pointer rebind, not a field write
	return f
}
`
	if fs := findings(t, "internal/scanner/x.go", src); len(fs) != 0 {
		t.Fatalf("rebinds are not mutations: %v", fs)
	}
}

// TestRepoIsClean pins the repo-wide invariant the Makefile enforces:
// the tree this test ships in must lint clean.
func TestRepoIsClean(t *testing.T) {
	fs, err := Dirs("../../internal", "../../cmd")
	if err != nil {
		t.Fatalf("lint: %v", err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}

func TestSyncCloseFlagged(t *testing.T) {
	src := `package x

import "os"

func f() {
	f, err := os.Create("out")
	if err != nil {
		return
	}
	defer f.Close()
	g, err := os.OpenFile("log", os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return
	}
	g.Sync()
	_ = g.Close()
}
`
	fs := findings(t, "cmd/x/main.go", src)
	if len(fs) != 3 {
		t.Fatalf("findings = %v, want 3 syncclose", fs)
	}
	for _, f := range fs {
		if f.Check != "syncclose" {
			t.Fatalf("unexpected check %q in %v", f.Check, fs)
		}
	}
}

func TestSyncCloseCheckedAndReadOnlyExempt(t *testing.T) {
	src := `package x

import "os"

func f() error {
	f, err := os.Create("out")
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

func g() {
	r, err := os.Open("in")
	if err != nil {
		return
	}
	defer r.Close()
	ro, err := os.OpenFile("in2", os.O_RDONLY, 0)
	if err != nil {
		return
	}
	ro.Close()
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("checked/read-only closes flagged: %v", fs)
	}
}

func TestSyncCloseWaived(t *testing.T) {
	src := `package x

import "os"

func f() {
	f, err := os.Create("out")
	if err != nil {
		return
	}
	//lint:allow syncclose -- error path cleanup, the write already failed
	f.Close()
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("waived close flagged: %v", fs)
	}
}

func TestCtxDropBudgetNewFlagged(t *testing.T) {
	src := `package x
import (
	"context"
	"repro/internal/budget"
)
func f(ctx context.Context) *budget.Budget {
	return budget.New(budget.Limits{})
}
`
	fs := findings(t, "internal/x/x.go", src)
	if len(fs) != 1 || fs[0].Check != "ctxdrop" {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "budget.New is never given it") {
		t.Fatalf("msg = %q", fs[0].Msg)
	}
}

func TestCtxDropWithContextNotFlagged(t *testing.T) {
	src := `package x
import (
	"context"
	"repro/internal/budget"
)
func f(ctx context.Context) *budget.Budget {
	return budget.New(budget.Limits{}).WithContext(ctx)
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("WithContext call still flagged: %v", fs)
	}
}

func TestCtxDropOptionsLiteralFlagged(t *testing.T) {
	src := `package x
import (
	"net/http"
	"repro/internal/scanner"
)
func handle(w http.ResponseWriter, r *http.Request) {
	opts := scanner.Options{Workers: 2}
	_ = opts
}
`
	fs := findings(t, "internal/x/x.go", src)
	if len(fs) != 1 || fs[0].Check != "ctxdrop" {
		t.Fatalf("findings = %v", fs)
	}
	if !strings.Contains(fs[0].Msg, "scanner.Options literal drops it") {
		t.Fatalf("msg = %q", fs[0].Msg)
	}
}

func TestCtxDropOptionsAssignedLaterNotFlagged(t *testing.T) {
	src := `package x
import (
	"net/http"
	"repro/internal/scanner"
)
func handle(w http.ResponseWriter, r *http.Request) {
	opts := scanner.Options{Workers: 2}
	opts.Context = r.Context()
	_ = opts
}
func keyed(w http.ResponseWriter, r *http.Request) {
	_ = scanner.Options{Context: r.Context()}
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("threaded contexts still flagged: %v", fs)
	}
}

func TestCtxDropNoContextNoObligation(t *testing.T) {
	src := `package x
import (
	"repro/internal/budget"
	"repro/internal/scanner"
)
func f() *budget.Budget {
	_ = scanner.Options{}
	return budget.New(budget.Limits{})
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("context-free functions have no obligation: %v", fs)
	}
}

func TestCtxDropWaived(t *testing.T) {
	src := `package x
import (
	"context"
	"repro/internal/budget"
)
func f(ctx context.Context) *budget.Budget {
	//lint:allow ctxdrop -- background maintenance budget, outlives the request
	return budget.New(budget.Limits{})
}
`
	if fs := findings(t, "internal/x/x.go", src); len(fs) != 0 {
		t.Fatalf("waived ctxdrop still flagged: %v", fs)
	}
}
