package lint

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
)

// PackageDocs checks that every Go package under the given roots has a
// package doc comment (`// Package <name> ...` on some file's package
// clause). Undocumented packages are reported as "pkgdoc" findings
// against the package's first .go file. Test files and testdata trees
// are ignored; the check is what gates the godoc discipline in
// `make lint`.
func PackageDocs(roots ...string) ([]Finding, error) {
	var out []Finding
	for _, root := range roots {
		dirs := map[string][]string{}
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if name := d.Name(); name == "testdata" || strings.HasPrefix(name, ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			dir := filepath.Dir(path)
			dirs[dir] = append(dirs[dir], path)
			return nil
		})
		if err != nil {
			return nil, err
		}
		for dir, files := range dirs {
			sort.Strings(files)
			documented := false
			pkg := ""
			for _, f := range files {
				fset := token.NewFileSet()
				// PackageClauseOnly+ParseComments keeps the scan cheap:
				// only the package line and its doc comment are parsed.
				file, err := parser.ParseFile(fset, f, nil, parser.PackageClauseOnly|parser.ParseComments)
				if err != nil {
					return nil, fmt.Errorf("lint: %w", err)
				}
				pkg = file.Name.Name
				if file.Doc != nil && strings.TrimSpace(file.Doc.Text()) != "" {
					documented = true
					break
				}
			}
			if !documented {
				out = append(out, Finding{
					File:  filepath.ToSlash(files[0]),
					Line:  1,
					Check: "pkgdoc",
					Msg: fmt.Sprintf("package %s (%s) has no package doc comment; add `// Package %s ...` to one file",
						pkg, filepath.ToSlash(dir), pkg),
				})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].File < out[j].File })
	return out, nil
}
