package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, path, src string) {
	t.Helper()
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestPackageDocsFlagsUndocumented(t *testing.T) {
	root := t.TempDir()
	// documented: doc comment on one of two files
	writeFile(t, filepath.Join(root, "internal", "good", "doc.go"),
		"// Package good is documented.\npackage good\n")
	writeFile(t, filepath.Join(root, "internal", "good", "more.go"),
		"package good\n\nfunc More() {}\n")
	// undocumented
	writeFile(t, filepath.Join(root, "internal", "bad", "bad.go"),
		"package bad\n\nfunc Bad() {}\n")
	// only tests documented — package comment on a test file doesn't count
	writeFile(t, filepath.Join(root, "internal", "testy", "t.go"),
		"package testy\n")
	writeFile(t, filepath.Join(root, "internal", "testy", "t_test.go"),
		"// Package testy has its doc on a test file only.\npackage testy\n")
	// testdata is skipped entirely
	writeFile(t, filepath.Join(root, "internal", "good", "testdata", "x.go"),
		"package x\n")

	got, err := PackageDocs(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("findings = %v, want 2 (bad, testy)", got)
	}
	for _, f := range got {
		if f.Check != "pkgdoc" {
			t.Errorf("check = %q, want pkgdoc", f.Check)
		}
	}
	if !strings.Contains(got[0].File, "bad") || !strings.Contains(got[1].File, "testy") {
		t.Errorf("flagged files = %s, %s; want bad then testy", got[0].File, got[1].File)
	}
}

// TestRepoPackagesDocumented is the gate itself: every package under
// this repository's internal/ tree must carry a package comment.
func TestRepoPackagesDocumented(t *testing.T) {
	got, err := PackageDocs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range got {
		t.Errorf("%s", f)
	}
}
