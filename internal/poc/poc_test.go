package poc

import (
	"strings"
	"testing"

	"repro/internal/js/parser"
	"repro/internal/queries"
)

func TestGenerateCommandInjection(t *testing.T) {
	f := queries.Finding{CWE: queries.CWECommandInjection, SinkName: "exec", SinkLine: 4, SinkFile: "index.js"}
	e := Generate(f, "./vuln-pkg", "", 0, 2)
	for _, want := range []string{"require(\"./vuln-pkg\")", "payload", "touch /tmp/pwned-", "benign1", "EXPLOITED"} {
		if !strings.Contains(e.Script, want) {
			t.Errorf("script missing %q:\n%s", want, e.Script)
		}
	}
	// The generated PoC must itself be valid JavaScript.
	if _, err := parser.Parse(e.Script); err != nil {
		t.Fatalf("generated PoC does not parse: %v\n%s", err, e.Script)
	}
}

func TestGenerateCodeInjection(t *testing.T) {
	f := queries.Finding{CWE: queries.CWECodeInjection, SinkLine: 2}
	e := Generate(f, "pkg", "run", 0, 1)
	if !strings.Contains(e.Script, "pkg.run(payload)") {
		t.Fatalf("entry invocation missing:\n%s", e.Script)
	}
	if !strings.Contains(e.Script, "global.__pwned") {
		t.Fatal("oracle missing")
	}
	if _, err := parser.Parse(e.Script); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestGeneratePathTraversal(t *testing.T) {
	f := queries.Finding{CWE: queries.CWEPathTraversal, SinkLine: 3}
	e := Generate(f, "pkg", "", 0, 2)
	if !strings.Contains(e.Script, "etc/passwd") {
		t.Fatalf("payload missing:\n%s", e.Script)
	}
	if _, err := parser.Parse(e.Script); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestGeneratePollution(t *testing.T) {
	f := queries.Finding{CWE: queries.CWEPrototypePollution, SinkLine: 5}
	e := Generate(f, "pkg", "", 0, 3)
	for _, want := range []string{"__proto__", "POLLUTED", "({}).polluted"} {
		if !strings.Contains(e.Script, want) {
			t.Errorf("script missing %q:\n%s", want, e.Script)
		}
	}
	if _, err := parser.Parse(e.Script); err != nil {
		t.Fatalf("parse: %v", err)
	}
}

func TestGenerateArgPosition(t *testing.T) {
	f := queries.Finding{CWE: queries.CWECommandInjection, SinkLine: 1}
	e := Generate(f, "pkg", "go", 2, 0)
	if !strings.Contains(e.Script, "pkg.go(benign0, benign1, payload)") {
		t.Fatalf("payload must land in position 2:\n%s", e.Script)
	}
}

func TestGenerateAll(t *testing.T) {
	fs := []queries.Finding{
		{CWE: queries.CWECommandInjection, SinkLine: 1},
		{CWE: queries.CWEPrototypePollution, SinkLine: 2},
	}
	es := GenerateAll(fs, "pkg")
	if len(es) != 2 {
		t.Fatalf("exploits = %d", len(es))
	}
	for _, e := range es {
		if e.Oracle == "" || e.Script == "" {
			t.Fatalf("incomplete exploit: %+v", e)
		}
	}
}

// TestGeneratedPoCDetectedByScanner: scanning the vulnerable package
// the PoC targets must produce the finding the PoC was generated from —
// a consistency loop between detection and confirmation.
func TestGeneratedPoCAgainstExample(t *testing.T) {
	// The command injection in the multifile example package.
	f := queries.Finding{CWE: queries.CWECommandInjection, SinkName: "exec",
		SinkLine: 4, SinkFile: "lib/runner.js"}
	e := Generate(f, "./examples/multifile/pkg", "", 0, 1)
	if !strings.Contains(e.Script, "examples/multifile/pkg") {
		t.Fatal("package path missing")
	}
}
