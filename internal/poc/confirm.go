package poc

import (
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/jsinterp"
	"repro/internal/queries"
)

// Verdict is the outcome of a dynamic confirmation run.
type Verdict struct {
	Exploitable bool
	// Evidence describes the observation that confirmed (or the reason
	// nothing fired).
	Evidence string
}

// marker is the attack payload marker the oracles look for.
const marker = "PWNED_MARKER_1337"

// sinksFor maps a CWE class to the instrumented sink names whose
// arguments the oracle inspects.
var sinksFor = map[queries.CWE][]string{
	queries.CWECommandInjection: {"exec", "execSync", "spawn", "spawnSync", "execFile", "execFileSync"},
	queries.CWECodeInjection:    {"eval", "Function", "setTimeout", "setInterval", "vm.runInContext", "vm.runInNewContext", "vm.runInThisContext"},
	queries.CWEPathTraversal:    {"fs.readFile", "fs.readFileSync", "fs.createReadStream", "fs.writeFile", "fs.writeFileSync", "fs.createWriteStream", "fs.appendFile", "fs.appendFileSync", "fs.unlink", "fs.unlinkSync", "fs.readdir", "fs.readdirSync"},
}

// payloadValues builds the attack inputs per class.
func payloadValues(in *jsinterp.Interp, cwe queries.CWE) []jsinterp.Value {
	switch cwe {
	case queries.CWECommandInjection:
		return []jsinterp.Value{jsinterp.String("x; touch /tmp/" + marker + " #")}
	case queries.CWECodeInjection:
		return []jsinterp.Value{jsinterp.String("global.x = '" + marker + "'")}
	case queries.CWEPathTraversal:
		return []jsinterp.Value{jsinterp.String("../../../../" + marker)}
	case queries.CWEPrototypePollution:
		// (target, key, value) convention plus a JSON.parse-shaped
		// object for merge-style entry points.
		payloadObj := in.NewObj()
		protoCarrier := in.NewObj()
		protoCarrier.Set("polluted", jsinterp.String(marker))
		// Store __proto__ as an own property, as JSON.parse would.
		payloadObj.SetOwnProto(protoCarrier)
		return []jsinterp.Value{payloadObj, jsinterp.String("__proto__"), jsinterp.String("polluted")}
	}
	return []jsinterp.Value{jsinterp.String(marker)}
}

// Confirm dynamically validates a finding: the package sources are
// executed in the instrumented interpreter, every exported function is
// driven with class-appropriate payloads in every argument position,
// and the class oracle checks the sink log (taint-style) or
// Object.prototype (pollution). This is the §5.3 confirmation workflow,
// automated.
func Confirm(sources map[string]string, entryFile string, cwe queries.CWE) (Verdict, error) {
	progs := map[string]*core.Program{}
	for name, src := range sources {
		prog, err := normalize.File(src, name)
		if err != nil {
			return Verdict{}, err
		}
		progs[name] = prog
	}

	// Try every exported entry point with the payload rotated through
	// each argument position.
	for _, entry := range []string{entryFile} {
		for argPos := 0; argPos < 4; argPos++ {
			v, err := runOnce(progs, entry, cwe, argPos)
			if err != nil {
				continue // runtime error on this drive; try others
			}
			if v.Exploitable {
				return v, nil
			}
		}
	}
	return Verdict{Exploitable: false, Evidence: "no oracle fired for any entry point / argument position"}, nil
}

// runOnce executes one drive of the package with a fresh interpreter.
func runOnce(progs map[string]*core.Program, entryFile string, cwe queries.CWE, argPos int) (Verdict, error) {
	in := jsinterp.New(200000)
	for name, prog := range progs {
		if name != entryFile {
			in.AddModule(name, prog)
		}
	}
	exportsV, err := in.RunModule(progs[entryFile])
	if err != nil {
		return Verdict{}, err
	}

	entries := collectEntries(in, exportsV)
	if len(entries) == 0 {
		return Verdict{Exploitable: false, Evidence: "no callable exports"}, nil
	}

	payload := payloadValues(in, cwe)
	for _, fn := range entries {
		in.Sinks = nil
		args := buildArgs(in, cwe, payload, argPos)
		_, _ = in.CallFunction(fn, jsinterp.Undefined{}, args) // errors: partial run still observable
		if v := oracle(in, cwe); v.Exploitable {
			return v, nil
		}
	}
	return Verdict{Exploitable: false}, nil
}

// buildArgs places the payload at argPos with benign fillers elsewhere.
func buildArgs(in *jsinterp.Interp, cwe queries.CWE, payload []jsinterp.Value, argPos int) []jsinterp.Value {
	if cwe == queries.CWEPrototypePollution {
		// Pollution conventions: (target, key, value) and merge(dst, src).
		switch argPos {
		case 0:
			return []jsinterp.Value{in.NewObj(), jsinterp.String("__proto__"), payloadCarrier(in)}
		case 1:
			return []jsinterp.Value{in.NewObj(), payload[0]}
		case 2:
			return []jsinterp.Value{in.NewObj(), jsinterp.String("__proto__.polluted"), jsinterp.String(marker)}
		default:
			return []jsinterp.Value{payload[0], jsinterp.String("polluted"), jsinterp.String(marker)}
		}
	}
	n := argPos + 2
	args := make([]jsinterp.Value, n)
	for i := range args {
		args[i] = jsinterp.String("benign")
	}
	args[argPos] = payload[0]
	// A trailing callback argument for Node-style APIs.
	args[n-1] = in.NoopCallback()
	if argPos == n-1 {
		args[argPos] = payload[0]
	}
	return args
}

func payloadCarrier(in *jsinterp.Interp) jsinterp.Value {
	carrier := in.NewObj()
	carrier.Set("polluted", jsinterp.String(marker))
	return carrier
}

// oracle inspects the run's observable effects.
func oracle(in *jsinterp.Interp, cwe queries.CWE) Verdict {
	if cwe == queries.CWEPrototypePollution {
		probe := in.NewObj()
		if v := probe.Get("polluted"); jsinterp.ToString(v) == marker {
			return Verdict{Exploitable: true, Evidence: "Object.prototype.polluted carries the marker"}
		}
		return Verdict{}
	}
	names := sinksFor[cwe]
	for _, ev := range in.Sinks {
		if !contains(names, ev.Sink) {
			continue
		}
		if cwe == queries.CWEPathTraversal {
			// Only the path argument (position 0) matters, and it is
			// exploitable only if the traversal sequence survived into
			// the sink — sanitizers like path.basename strip it while
			// keeping the file name.
			if len(ev.Args) > 0 && strings.Contains(ev.Args[0], "../") && strings.Contains(ev.Args[0], marker) {
				return Verdict{Exploitable: true,
					Evidence: ev.Sink + " received a traversal path: " + ev.Args[0]}
			}
			continue
		}
		for _, arg := range ev.Args {
			if strings.Contains(arg, marker) {
				return Verdict{Exploitable: true,
					Evidence: ev.Sink + " received the marker: " + arg}
			}
		}
	}
	return Verdict{}
}

// collectEntries gathers callable exports: the export itself plus every
// function-valued property, in deterministic order.
func collectEntries(in *jsinterp.Interp, exportsV jsinterp.Value) []jsinterp.Value {
	var out []jsinterp.Value
	switch v := exportsV.(type) {
	case *jsinterp.Function:
		out = append(out, v)
	case *jsinterp.Builtin:
		out = append(out, v)
	case *jsinterp.Object:
		keys := v.Keys()
		sort.Strings(keys)
		for _, k := range keys {
			pv, _ := v.GetOwn(k)
			switch pv.(type) {
			case *jsinterp.Function, *jsinterp.Builtin:
				out = append(out, pv)
			}
		}
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}
