// Package poc generates proof-of-vulnerability skeletons for findings.
// The paper's RQ2 methodology confirms reported vulnerabilities by
// writing exploits by hand (§5.3: "we successfully created an exploit
// for 101 of them"); this package automates the boilerplate: for each
// finding it emits a runnable Node.js script that drives the exported
// entry point with a class-appropriate payload and an oracle that
// detects success.
package poc

import (
	"fmt"
	"strings"

	"repro/internal/queries"
)

// Exploit is one generated proof-of-vulnerability script.
type Exploit struct {
	Finding queries.Finding
	// Script is the Node.js source of the PoC.
	Script string
	// Oracle describes what to observe when the exploit fires.
	Oracle string
}

// payloads per vulnerability class: the attack string and the oracle
// explaining the observable effect.
func payloadFor(cwe queries.CWE) (payload, oracle string) {
	switch cwe {
	case queries.CWECommandInjection:
		return `"; touch /tmp/pwned-" + marker + " #"`,
			"the file /tmp/pwned-<marker> exists after the call"
	case queries.CWECodeInjection:
		return `"global.__pwned = '" + marker + "'"`,
			"global.__pwned equals the marker after the call"
	case queries.CWEPathTraversal:
		return `"../../../../etc/passwd"`,
			"the callback receives the contents of /etc/passwd"
	case queries.CWEPrototypePollution:
		return `JSON.parse('{"__proto__": {"polluted": "' + marker + '"}}')`,
			"({}).polluted equals the marker after the call"
	default:
		return `marker`, "manual inspection required"
	}
}

// entryExpression renders how the PoC reaches the vulnerable entry
// point: the exported function, optionally by property name.
func entryExpression(exportName string) string {
	if exportName == "" || exportName == "module.exports" {
		return "pkg"
	}
	return "pkg." + exportName
}

// Generate builds an exploit skeleton for one finding against a package
// directory (as required 'pkgPath'). exportName selects the exported
// entry point ("" for module.exports itself); argPos is the position of
// the attacker-controlled argument.
func Generate(f queries.Finding, pkgPath, exportName string, argPos, arity int) Exploit {
	payload, oracle := payloadFor(f.CWE)
	if arity <= argPos {
		arity = argPos + 1
	}
	args := make([]string, arity)
	for i := range args {
		args[i] = fmt.Sprintf("benign%d", i)
	}
	args[argPos] = "payload"

	var sb strings.Builder
	fmt.Fprintf(&sb, "// Proof of vulnerability: %s at %s\n", f.CWE, sinkRef(f))
	fmt.Fprintf(&sb, "// Oracle: %s\n", oracle)
	fmt.Fprintf(&sb, "var pkg = require(%q);\n", pkgPath)
	fmt.Fprintf(&sb, "var marker = Date.now().toString(36);\n")
	for i, a := range args {
		if a != "payload" {
			fmt.Fprintf(&sb, "var benign%d = 'benign';\n", i)
		}
	}
	fmt.Fprintf(&sb, "var payload = %s;\n", payload)
	if f.CWE == queries.CWEPrototypePollution {
		// Pollution entry points conventionally take (target, key,
		// value); drive all three with the polluting shape.
		fmt.Fprintf(&sb, "%s({}, '__proto__', { polluted: marker });\n", entryExpression(exportName))
		fmt.Fprintf(&sb, "if (({}).polluted === marker) { console.log('POLLUTED'); process.exit(0); }\n")
		fmt.Fprintf(&sb, "%s(payload, 'polluted', marker);\n", entryExpression(exportName))
		fmt.Fprintf(&sb, "console.log(({}).polluted === marker ? 'POLLUTED' : 'not polluted');\n")
	} else {
		fmt.Fprintf(&sb, "%s(%s);\n", entryExpression(exportName), strings.Join(args, ", "))
		switch f.CWE {
		case queries.CWECommandInjection:
			fmt.Fprintf(&sb, "setTimeout(function() {\n")
			fmt.Fprintf(&sb, "\trequire('fs').access('/tmp/pwned-' + marker, function(err) {\n")
			fmt.Fprintf(&sb, "\t\tconsole.log(err ? 'not exploited' : 'EXPLOITED');\n")
			fmt.Fprintf(&sb, "\t});\n}, 500);\n")
		case queries.CWECodeInjection:
			fmt.Fprintf(&sb, "console.log(global.__pwned === marker ? 'EXPLOITED' : 'not exploited');\n")
		case queries.CWEPathTraversal:
			fmt.Fprintf(&sb, "// Inspect the callback output for /etc/passwd contents.\n")
		}
	}
	return Exploit{Finding: f, Script: sb.String(), Oracle: oracle}
}

func sinkRef(f queries.Finding) string {
	if f.SinkFile != "" {
		return fmt.Sprintf("%s:%d", f.SinkFile, f.SinkLine)
	}
	return fmt.Sprintf("line %d", f.SinkLine)
}

// GenerateAll builds exploit skeletons for every finding of a report.
func GenerateAll(findings []queries.Finding, pkgPath string) []Exploit {
	out := make([]Exploit, 0, len(findings))
	for _, f := range findings {
		out = append(out, Generate(f, pkgPath, "", 0, 1))
	}
	return out
}
