package poc

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/scanner"
)

func confirmSrc(t *testing.T, src string, cwe queries.CWE) Verdict {
	t.Helper()
	v, err := Confirm(map[string]string{"index.js": src}, "index.js", cwe)
	if err != nil {
		t.Fatalf("confirm: %v", err)
	}
	return v
}

func TestConfirmCommandInjection(t *testing.T) {
	v := confirmSrc(t, `
const { exec } = require('child_process');
function deploy(branch) { exec('git checkout ' + branch); }
module.exports = deploy;
`, queries.CWECommandInjection)
	if !v.Exploitable {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestConfirmGuardedNotExploitable(t *testing.T) {
	v := confirmSrc(t, `
const { exec } = require('child_process');
var ALLOWED = ['status', 'log'];
function run(cmd) {
	if (ALLOWED.indexOf(cmd) === -1) { return null; }
	exec('git ' + cmd);
}
module.exports = run;
`, queries.CWECommandInjection)
	if v.Exploitable {
		t.Fatalf("guarded flow confirmed exploitable: %+v", v)
	}
}

func TestConfirmEval(t *testing.T) {
	v := confirmSrc(t, `
function run(code) { eval('var x = ' + code); }
module.exports = run;
`, queries.CWECodeInjection)
	if !v.Exploitable {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestConfirmPathTraversal(t *testing.T) {
	v := confirmSrc(t, `
var fs = require('fs');
function read(name, cb) { fs.readFile('/srv/' + name, cb); }
module.exports = read;
`, queries.CWEPathTraversal)
	if !v.Exploitable {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestConfirmBasenameSanitized(t *testing.T) {
	v := confirmSrc(t, `
var fs = require('fs');
var path = require('path');
function read(name, cb) { fs.readFile('/srv/' + path.basename(name + ''), cb); }
module.exports = read;
`, queries.CWEPathTraversal)
	if v.Exploitable {
		t.Fatalf("basename-sanitized flow confirmed: %+v", v)
	}
}

func TestConfirmPollutionDirect(t *testing.T) {
	v := confirmSrc(t, `
function set(obj, key, value) {
	var sub = obj[key];
	sub[key] = value;
	return sub;
}
module.exports = set;
`, queries.CWEPrototypePollution)
	// The (target, '__proto__', carrier) drive: sub becomes
	// Object.prototype and sub['__proto__'] = carrier extends the
	// chain every object inherits from.
	if !v.Exploitable {
		t.Fatalf("verdict: %+v", v)
	}
}

func TestConfirmSetValueStyle(t *testing.T) {
	v := confirmSrc(t, `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		} else {
			obj = obj[p];
		}
	}
	return obj;
}
module.exports = setValue;
`, queries.CWEPrototypePollution)
	if !v.Exploitable {
		t.Fatalf("set-value pollution not confirmed: %+v", v)
	}
}

func TestConfirmGuardedPollution(t *testing.T) {
	v := confirmSrc(t, `
function set(obj, key, value) {
	if (key === '__proto__' || key.indexOf('__proto__') !== -1 || key === 'constructor') {
		return obj;
	}
	var sub = obj[key];
	sub[key] = value;
	return sub;
}
module.exports = set;
`, queries.CWEPrototypePollution)
	if v.Exploitable {
		t.Fatalf("guarded pollution confirmed: %+v", v)
	}
}

func TestConfirmCrossFile(t *testing.T) {
	sources := map[string]string{
		"index.js": `
var run = require('./runner');
function entry(input) { run('git clone ' + input); }
module.exports = entry;
`,
		"runner.js": `
const { exec } = require('child_process');
function shellRun(c) { exec(c); }
module.exports = shellRun;
`,
	}
	v, err := Confirm(sources, "index.js", queries.CWECommandInjection)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Exploitable {
		t.Fatalf("cross-file exploit not confirmed: %+v", v)
	}
}

func TestConfirmBenign(t *testing.T) {
	v := confirmSrc(t, `
function add(a, b) { return a + b; }
module.exports = add;
`, queries.CWECommandInjection)
	if v.Exploitable {
		t.Fatalf("benign confirmed: %+v", v)
	}
}

// TestConfirmValidatesGroundTruth is the loop-closing experiment: the
// dataset's Exploitable annotations agree with dynamic confirmation for
// the classes where both the scanner and the interpreter model the
// semantics (plain = exploitable; sanitized = not exploitable).
func TestConfirmValidatesGroundTruth(t *testing.T) {
	g := dataset.NewGenForTest(99)
	cases := []struct {
		cwe   queries.CWE
		class dataset.Class
		want  bool
	}{
		{queries.CWECommandInjection, dataset.ClassPlain, true},
		{queries.CWECommandInjection, dataset.ClassSanitized, false},
		{queries.CWECodeInjection, dataset.ClassPlain, true},
		{queries.CWEPathTraversal, dataset.ClassNoWebContext, true},
		{queries.CWEPathTraversal, dataset.ClassSanitized, false},
		{queries.CWEPrototypePollution, dataset.ClassPlain, true},
		{queries.CWEPrototypePollution, dataset.ClassSanitized, false},
	}
	for _, c := range cases {
		pkg := dataset.RenderForTest(g, c.cwe, c.class)
		v, err := Confirm(map[string]string{"index.js": pkg.Source}, "index.js", c.cwe)
		if err != nil {
			t.Errorf("%s/%s: %v", c.cwe, c.class, err)
			continue
		}
		if v.Exploitable != c.want {
			t.Errorf("%s/%s: exploitable=%v want %v (%s)\n%s",
				c.cwe, c.class, v.Exploitable, c.want, v.Evidence, pkg.Source)
		}
	}
}

// TestNoFalseNegativesOnConfirmedFlows is the static-vs-dynamic
// differential: on a corpus sample, every package whose vulnerability
// the interpreter CONFIRMS dynamically must also be REPORTED by the
// static scanner — soundness on executed paths, restricted to the
// classes the MDG models (the unsupported/baseline-only classes are the
// paper's documented false negatives).
func TestNoFalseNegativesOnConfirmedFlows(t *testing.T) {
	vul, sec := dataset.GroundTruth(42)
	all := append(vul.Packages, sec.Packages...)
	checked := 0
	for _, p := range all {
		switch p.Class {
		case dataset.ClassUnsupported, dataset.ClassBaselineOnly:
			continue // documented static FNs
		}
		if len(p.Annotated) == 0 {
			continue
		}
		if checked >= 120 {
			break
		}
		checked++
		cwe := p.Annotated[0].CWE
		v, err := Confirm(map[string]string{"index.js": p.Source}, "index.js", cwe)
		if err != nil || !v.Exploitable {
			continue // dynamically unconfirmed: nothing to assert
		}
		rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
		found := false
		for _, f := range rep.Findings {
			if f.CWE == cwe {
				found = true
			}
		}
		if !found {
			t.Errorf("%s (%s): dynamically exploitable but not statically reported\n%s",
				p.Name, p.Class, p.Source)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d packages checked", checked)
	}
}
