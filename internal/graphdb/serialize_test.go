package graphdb

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	db, _ := buildSample(t)
	var buf bytes.Buffer
	if err := db.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.NumNodes() != db.NumNodes() || db2.NumRels() != db.NumRels() {
		t.Fatalf("counts: %d/%d vs %d/%d", db2.NumNodes(), db2.NumRels(), db.NumNodes(), db.NumRels())
	}
	// Queries give identical results on the re-imported graph.
	for _, q := range []string{
		`MATCH (c:Call {name: 'exec'}) RETURN c.line`,
		`MATCH (s:Param {source: true})-[:D*1..5]->(c:Call) RETURN c.name`,
		`MATCH (a)-[r:P {prop: 'cmd'}]->(b) RETURN b.name`,
	} {
		r1 := mustQuery(t, db, q)
		r2 := mustQuery(t, db2, q)
		if len(r1.Rows) != len(r2.Rows) {
			t.Errorf("%s: %d vs %d rows", q, len(r1.Rows), len(r2.Rows))
			continue
		}
		for i := range r1.Rows {
			if rowKey(r1.Columns, r1.Rows[i]) != rowKey(r2.Columns, r2.Rows[i]) {
				t.Errorf("%s: row %d differs", q, i)
			}
		}
	}
}

func TestImportRejectsDanglingRel(t *testing.T) {
	src := `{"nodes": [{"id": 1, "labels": ["N"]}], "rels": [{"id": 1, "from": 1, "to": 99, "type": "D"}]}`
	if _, err := ImportJSON(strings.NewReader(src)); err == nil {
		t.Fatal("expected error for dangling relationship")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	if _, err := ImportJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error")
	}
}

func TestImportPreservesIntTypes(t *testing.T) {
	db := NewDB()
	db.CreateNode([]string{"N"}, map[string]Value{"line": int64(7), "ratio": 2.5})
	var buf bytes.Buffer
	if err := db.ExportJSON(&buf); err != nil {
		t.Fatal(err)
	}
	db2, err := ImportJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	n := db2.AllNodes()[0]
	if v, ok := n.Props["line"].(int64); !ok || v != 7 {
		t.Errorf("line = %#v, want int64(7)", n.Props["line"])
	}
	if v, ok := n.Props["ratio"].(float64); !ok || v != 2.5 {
		t.Errorf("ratio = %#v, want 2.5", n.Props["ratio"])
	}
}

func TestOrderBy(t *testing.T) {
	db := NewDB()
	for _, v := range []int64{3, 1, 2} {
		db.CreateNode([]string{"N"}, map[string]Value{"v": v})
	}
	res := mustQuery(t, db, `MATCH (n:N) RETURN n.v ORDER BY n.v`)
	if res.Rows[0]["n.v"] != int64(1) || res.Rows[2]["n.v"] != int64(3) {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (n:N) RETURN n.v ORDER BY n.v DESC`)
	if res.Rows[0]["n.v"] != int64(3) {
		t.Fatalf("desc rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (n:N) RETURN n.v ORDER BY n.v LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[1]["n.v"] != int64(2) {
		t.Fatalf("limited rows = %v", res.Rows)
	}
}

func TestSkip(t *testing.T) {
	db := NewDB()
	for i := int64(0); i < 5; i++ {
		db.CreateNode([]string{"N"}, map[string]Value{"v": i})
	}
	res := mustQuery(t, db, `MATCH (n:N) RETURN n.v ORDER BY n.v SKIP 2 LIMIT 2`)
	if len(res.Rows) != 2 || res.Rows[0]["n.v"] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (n:N) RETURN n.v SKIP 10`)
	if len(res.Rows) != 0 {
		t.Fatalf("skip past end: %v", res.Rows)
	}
}

func TestCountAggregate(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (p:Param) RETURN count(p)`)
	if len(res.Rows) != 1 || res.Rows[0]["count(p)"] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (p:Param) WHERE p.source = true RETURN count(p) AS sources`)
	if res.Rows[0]["sources"] != int64(1) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestInListLiteral(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call) WHERE c.name IN ['exec', 'spawn'] RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "exec" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestOrderByString(t *testing.T) {
	db := NewDB()
	for _, s := range []string{"beta", "alpha", "gamma"} {
		db.CreateNode([]string{"S"}, map[string]Value{"s": s})
	}
	res := mustQuery(t, db, `MATCH (n:S) RETURN n.s ORDER BY n.s`)
	if res.Rows[0]["n.s"] != "alpha" || res.Rows[2]["n.s"] != "gamma" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestExportCSV(t *testing.T) {
	db, _ := buildSample(t)
	var nodes, rels bytes.Buffer
	if err := db.ExportCSV(&nodes, &rels); err != nil {
		t.Fatal(err)
	}
	nl := strings.Split(strings.TrimSpace(nodes.String()), "\n")
	if len(nl) != db.NumNodes()+1 {
		t.Fatalf("node rows = %d, want %d", len(nl)-1, db.NumNodes())
	}
	if !strings.HasPrefix(nl[0], "id:ID,:LABEL") {
		t.Fatalf("node header = %q", nl[0])
	}
	rl := strings.Split(strings.TrimSpace(rels.String()), "\n")
	if len(rl) != db.NumRels()+1 {
		t.Fatalf("rel rows = %d, want %d", len(rl)-1, db.NumRels())
	}
	if !strings.HasPrefix(rl[0], ":START_ID,:END_ID,:TYPE") {
		t.Fatalf("rel header = %q", rl[0])
	}
	// A known relationship appears with its prop column.
	if !strings.Contains(rels.String(), "cmd") {
		t.Fatal("relationship property missing")
	}
}
