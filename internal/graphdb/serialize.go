package graphdb

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// This file implements graph persistence: the artifact stores MDGs in a
// graph database on disk; here the property graph serializes to a
// stable JSON document that can be re-imported losslessly.

type jsonGraph struct {
	Nodes []jsonNode `json:"nodes"`
	Rels  []jsonRel  `json:"rels"`
}

type jsonNode struct {
	ID     int64            `json:"id"`
	Labels []string         `json:"labels"`
	Props  map[string]Value `json:"props,omitempty"`
}

type jsonRel struct {
	ID    int64            `json:"id"`
	From  int64            `json:"from"`
	To    int64            `json:"to"`
	Type  string           `json:"type"`
	Props map[string]Value `json:"props,omitempty"`
}

// ExportJSON writes the whole graph as JSON.
func (db *DB) ExportJSON(w io.Writer) error {
	out := jsonGraph{Nodes: []jsonNode{}, Rels: []jsonRel{}}
	for _, n := range db.AllNodes() {
		out.Nodes = append(out.Nodes, jsonNode{
			ID: int64(n.ID), Labels: n.Labels, Props: n.Props,
		})
	}
	for _, n := range db.AllNodes() {
		for _, r := range db.Out(n.ID) {
			out.Rels = append(out.Rels, jsonRel{
				ID: r.ID, From: int64(r.From), To: int64(r.To),
				Type: r.Type, Props: r.Props,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ImportJSON reads a graph previously written by ExportJSON. Node and
// relationship identities are preserved.
func ImportJSON(r io.Reader) (*DB, error) {
	var in jsonGraph
	dec := json.NewDecoder(r)
	dec.UseNumber()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("graphdb: import: %w", err)
	}
	db := NewDB()
	idMap := make(map[int64]NodeID, len(in.Nodes))
	for _, jn := range in.Nodes {
		n := db.CreateNode(jn.Labels, normalizeProps(jn.Props))
		idMap[jn.ID] = n.ID
	}
	for _, jr := range in.Rels {
		from, okF := idMap[jr.From]
		to, okT := idMap[jr.To]
		if !okF || !okT {
			return nil, fmt.Errorf("graphdb: import: relationship %d references unknown node", jr.ID)
		}
		if _, err := db.CreateRel(from, to, jr.Type, normalizeProps(jr.Props)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// normalizeProps converts decoded JSON values into the store's
// canonical types (json.Number → int64/float64).
func normalizeProps(props map[string]Value) map[string]Value {
	if props == nil {
		return nil
	}
	out := make(map[string]Value, len(props))
	for k, v := range props {
		out[k] = normalizeValue(v)
	}
	return out
}

func normalizeValue(v Value) Value {
	switch n := v.(type) {
	case json.Number:
		if i, err := n.Int64(); err == nil {
			return i
		}
		f, _ := n.Float64()
		return f
	case float64:
		if n == float64(int64(n)) {
			return int64(n)
		}
		return n
	case []any:
		out := make([]Value, len(n))
		for i, e := range n {
			out[i] = normalizeValue(e)
		}
		return out
	default:
		return v
	}
}

// ExportCSV writes the graph in Neo4j bulk-import style: a nodes CSV
// (`id:ID,:LABEL,prop...`) and a relationships CSV
// (`:START_ID,:END_ID,:TYPE,prop...`). Property columns are the union
// of keys, in sorted order.
func (db *DB) ExportCSV(nodes, rels io.Writer) error {
	nodeKeys := sortedPropKeys(func(yield func(map[string]Value)) {
		for _, n := range db.AllNodes() {
			yield(n.Props)
		}
	})
	nw := csv.NewWriter(nodes)
	header := append([]string{"id:ID", ":LABEL"}, nodeKeys...)
	if err := nw.Write(header); err != nil {
		return err
	}
	for _, n := range db.AllNodes() {
		row := []string{fmt.Sprint(int64(n.ID)), strings.Join(n.Labels, ";")}
		for _, k := range nodeKeys {
			row = append(row, renderCSV(n.Props[k]))
		}
		if err := nw.Write(row); err != nil {
			return err
		}
	}
	nw.Flush()
	if err := nw.Error(); err != nil {
		return err
	}

	relKeys := sortedPropKeys(func(yield func(map[string]Value)) {
		for _, n := range db.AllNodes() {
			for _, r := range db.Out(n.ID) {
				yield(r.Props)
			}
		}
	})
	rw := csv.NewWriter(rels)
	rheader := append([]string{":START_ID", ":END_ID", ":TYPE"}, relKeys...)
	if err := rw.Write(rheader); err != nil {
		return err
	}
	for _, n := range db.AllNodes() {
		for _, r := range db.Out(n.ID) {
			row := []string{fmt.Sprint(int64(r.From)), fmt.Sprint(int64(r.To)), r.Type}
			for _, k := range relKeys {
				row = append(row, renderCSV(r.Props[k]))
			}
			if err := rw.Write(row); err != nil {
				return err
			}
		}
	}
	rw.Flush()
	return rw.Error()
}

func sortedPropKeys(each func(func(map[string]Value))) []string {
	set := map[string]bool{}
	each(func(props map[string]Value) {
		for k := range props {
			set[k] = true
		}
	})
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func renderCSV(v Value) string {
	if v == nil {
		return ""
	}
	return fmt.Sprint(v)
}
