// Package graphdb implements an embedded in-memory property-graph
// database with a Cypher-like query language. It stands in for the
// Neo4j + Cypher pipeline of the paper's artifact: the scanner loads
// the program's MDG into a DB instance and runs pattern queries
// against it.
//
// The data model is the property-graph model: nodes carry labels and a
// property map; directed relationships carry a type and a property
// map. The query language (see query.go / exec.go) supports MATCH
// patterns with variable-length relationships, WHERE filters, and
// RETURN projections with DISTINCT and LIMIT.
//
// A DB instance is not internally synchronized: concurrent scans each
// load their own instance (see queries.Load), which is what makes the
// parallel corpus sweeps in internal/metrics safe without locking.
package graphdb
