package graphdb

import (
	"fmt"
	"sort"

	"repro/internal/budget"
)

// Value is a property value: string, int64, float64, bool, or nil.
type Value any

// NodeID identifies a node.
type NodeID int64

// Node is one graph node.
type Node struct {
	ID     NodeID
	Labels []string
	Props  map[string]Value
}

// HasLabel reports whether the node carries label l.
func (n *Node) HasLabel(l string) bool {
	for _, x := range n.Labels {
		if x == l {
			return true
		}
	}
	return false
}

// Prop returns the named property (nil when absent).
func (n *Node) Prop(name string) Value { return n.Props[name] }

// Rel is one directed relationship.
type Rel struct {
	ID       int64
	From, To NodeID
	Type     string
	Props    map[string]Value
}

// Prop returns the named property (nil when absent).
func (r *Rel) Prop(name string) Value { return r.Props[name] }

// DB is an in-memory property graph.
type DB struct {
	nodes   map[NodeID]*Node
	rels    map[int64]*Rel
	out     map[NodeID][]*Rel
	in      map[NodeID][]*Rel
	byLabel map[string][]NodeID
	nextN   NodeID
	nextR   int64

	// bud, when set, is charged one step per node visited during query
	// execution, so runaway variable-length expansions abort with a
	// classified budget error instead of hanging a sweep.
	bud *budget.Budget
}

// SetBudget makes query execution on this database cooperate with a
// fault-containment budget (nil disables the checks).
func (db *DB) SetBudget(b *budget.Budget) { db.bud = b }

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{
		nodes:   make(map[NodeID]*Node),
		rels:    make(map[int64]*Rel),
		out:     make(map[NodeID][]*Rel),
		in:      make(map[NodeID][]*Rel),
		byLabel: make(map[string][]NodeID),
	}
}

// CreateNode adds a node with the given labels and properties and
// returns it.
func (db *DB) CreateNode(labels []string, props map[string]Value) *Node {
	db.nextN++
	if props == nil {
		props = map[string]Value{}
	}
	n := &Node{ID: db.nextN, Labels: append([]string(nil), labels...), Props: props}
	db.nodes[n.ID] = n
	for _, l := range labels {
		db.byLabel[l] = append(db.byLabel[l], n.ID)
	}
	return n
}

// CreateRel adds a relationship from → to with the given type.
func (db *DB) CreateRel(from, to NodeID, typ string, props map[string]Value) (*Rel, error) {
	if db.nodes[from] == nil || db.nodes[to] == nil {
		return nil, fmt.Errorf("graphdb: relationship endpoints must exist (%d -> %d)", from, to)
	}
	db.nextR++
	if props == nil {
		props = map[string]Value{}
	}
	r := &Rel{ID: db.nextR, From: from, To: to, Type: typ, Props: props}
	db.rels[r.ID] = r
	db.out[from] = append(db.out[from], r)
	db.in[to] = append(db.in[to], r)
	return r, nil
}

// NodeByID returns the node with the given id, or nil.
func (db *DB) NodeByID(id NodeID) *Node { return db.nodes[id] }

// NumNodes returns the node count.
func (db *DB) NumNodes() int { return len(db.nodes) }

// NumRels returns the relationship count.
func (db *DB) NumRels() int { return len(db.rels) }

// NodesByLabel returns all nodes carrying label l, in insertion order.
func (db *DB) NodesByLabel(l string) []*Node {
	ids := db.byLabel[l]
	out := make([]*Node, 0, len(ids))
	for _, id := range ids {
		out = append(out, db.nodes[id])
	}
	return out
}

// AllNodes returns every node in id order.
func (db *DB) AllNodes() []*Node {
	out := make([]*Node, 0, len(db.nodes))
	for _, n := range db.nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Out returns the outgoing relationships of id.
func (db *DB) Out(id NodeID) []*Rel { return db.out[id] }

// In returns the incoming relationships of id.
func (db *DB) In(id NodeID) []*Rel { return db.in[id] }

// Path is a bound path: nodes and the relationships connecting them
// (len(Rels) = len(Nodes)-1).
type Path struct {
	Nodes []*Node
	Rels  []*Rel
}

// Start returns the first node of the path.
func (p Path) Start() *Node { return p.Nodes[0] }

// End returns the last node of the path.
func (p Path) End() *Node { return p.Nodes[len(p.Nodes)-1] }

// Len returns the number of relationships in the path.
func (p Path) Len() int { return len(p.Rels) }
