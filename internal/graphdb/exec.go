package graphdb

import (
	"fmt"
	"sort"
	"strings"
)

// Row is one result row: projected values keyed by alias (or rendered
// expression text).
type Row map[string]Value

// Result is the outcome of a query.
type Result struct {
	Columns []string
	Rows    []Row
}

// Binding values can be *Node, []*Rel (relationship variable), Path, or
// a plain Value.

type binding map[string]any

func (b binding) clone() binding {
	c := make(binding, len(b))
	for k, v := range b {
		c[k] = v
	}
	return c
}

// ExecError is a query-evaluation error.
type ExecError struct{ Msg string }

func (e *ExecError) Error() string { return "graphdb: " + e.Msg }

func execErrf(format string, args ...any) error {
	return &ExecError{Msg: fmt.Sprintf(format, args...)}
}

// Query parses and executes src against the database.
func (db *DB) Query(src string) (*Result, error) {
	q, err := ParseQuery(src)
	if err != nil {
		return nil, err
	}
	return db.Exec(q)
}

// Exec executes a parsed query.
func (db *DB) Exec(q *Query) (*Result, error) {
	var patterns []Pattern
	for _, m := range q.Matches {
		patterns = append(patterns, m.Patterns...)
	}

	res := &Result{}
	for i, item := range q.Return.Items {
		name := item.Alias
		if name == "" {
			name = renderExpr(item.Expr)
		}
		if name == "" {
			name = fmt.Sprintf("col%d", i)
		}
		res.Columns = append(res.Columns, name)
	}

	// Aggregation: when every return item is a count(...), the query
	// collapses to a single row of counters over all matches.
	aggregate := len(q.Return.Items) > 0
	for _, item := range q.Return.Items {
		call, ok := item.Expr.(CallExpr)
		if !ok || call.Fn != "count" {
			aggregate = false
			break
		}
	}
	counts := make([]int64, len(q.Return.Items))

	seen := map[string]bool{}
	limitReached := false
	// ORDER BY needs every row before truncation.
	earlyStop := q.Return.OrderBy == nil

	type sortedRow struct {
		row Row
		key Value
	}
	var sortable []sortedRow

	var emit func(b binding) error
	emit = func(b binding) error {
		if q.Where != nil {
			ok, err := evalBool(q.Where, b, db)
			if err != nil {
				return err
			}
			if !ok {
				return nil
			}
		}
		if aggregate {
			for i, item := range q.Return.Items {
				call := item.Expr.(CallExpr)
				if len(call.Args) == 0 {
					counts[i]++
					continue
				}
				v, err := evalExpr(call.Args[0], b, db)
				if err != nil {
					return err
				}
				if v != nil {
					counts[i]++
				}
			}
			return nil
		}
		row := Row{}
		for i, item := range q.Return.Items {
			v, err := evalExpr(item.Expr, b, db)
			if err != nil {
				return err
			}
			row[res.Columns[i]] = v
		}
		if q.Return.Distinct {
			key := rowKey(res.Columns, row)
			if seen[key] {
				return nil
			}
			seen[key] = true
		}
		if q.Return.OrderBy != nil {
			k, err := evalExpr(q.Return.OrderBy, b, db)
			if err != nil {
				return err
			}
			sortable = append(sortable, sortedRow{row: row, key: k})
			return nil
		}
		res.Rows = append(res.Rows, row)
		if q.Return.Limit > 0 && q.Return.Skip == 0 && len(res.Rows) >= q.Return.Limit && earlyStop {
			limitReached = true
		}
		return nil
	}

	var match func(pi int, b binding) error
	match = func(pi int, b binding) error {
		if limitReached {
			return nil
		}
		if pi == len(patterns) {
			return emit(b)
		}
		return db.matchPattern(&patterns[pi], b, func(nb binding) error {
			return match(pi+1, nb)
		})
	}
	if err := match(0, binding{}); err != nil {
		return nil, err
	}

	if aggregate {
		row := Row{}
		for i := range q.Return.Items {
			row[res.Columns[i]] = counts[i]
		}
		res.Rows = append(res.Rows, row)
		return res, nil
	}

	if q.Return.OrderBy != nil {
		sort.SliceStable(sortable, func(i, j int) bool {
			less := lessValues(sortable[i].key, sortable[j].key)
			if q.Return.OrderDesc {
				return !less && !valueEq(sortable[i].key, sortable[j].key)
			}
			return less
		})
		for _, sr := range sortable {
			res.Rows = append(res.Rows, sr.row)
		}
	}
	if q.Return.Skip > 0 {
		if q.Return.Skip >= len(res.Rows) {
			res.Rows = nil
		} else {
			res.Rows = res.Rows[q.Return.Skip:]
		}
	}
	if q.Return.Limit > 0 && len(res.Rows) > q.Return.Limit {
		res.Rows = res.Rows[:q.Return.Limit]
	}
	return res, nil
}

// lessValues orders values for ORDER BY: numbers before strings, both
// ascending; other types compare by rendering.
func lessValues(a, b Value) bool {
	af, aok := toFloat(a)
	bf, bok := toFloat(b)
	if aok && bok {
		return af < bf
	}
	as, aok2 := a.(string)
	bs, bok2 := b.(string)
	if aok2 && bok2 {
		return as < bs
	}
	if aok != bok {
		return aok // numbers sort first
	}
	return fmt.Sprint(a) < fmt.Sprint(b)
}

// matchPattern enumerates all bindings of one pattern, invoking k for
// each. Bound variables already present in b constrain the match.
func (db *DB) matchPattern(p *Pattern, b binding, k func(binding) error) error {
	// Enumerate candidates for the first node.
	first := p.Nodes[0]
	cands, err := db.nodeCandidates(first, b)
	if err != nil {
		return err
	}
	for _, n := range cands {
		if err := db.bud.Step(); err != nil {
			return err
		}
		nb := b.clone()
		if first.Var != "" {
			nb[first.Var] = n
		}
		path := Path{Nodes: []*Node{n}}
		if err := db.matchChain(p, 0, n, nb, path, k); err != nil {
			return err
		}
	}
	return nil
}

// matchChain extends the match from node index i along relationship i.
func (db *DB) matchChain(p *Pattern, i int, cur *Node, b binding, path Path, k func(binding) error) error {
	if i == len(p.Rels) {
		if p.PathVar != "" {
			b = b.clone()
			b[p.PathVar] = path
		}
		return k(b)
	}
	rp := &p.Rels[i]
	np := &p.Nodes[i+1]
	return db.expandRel(rp, cur, path, func(target *Node, rels []*Rel, npath Path) error {
		if !db.nodeMatches(np, target, b) {
			return nil
		}
		nb := b.clone()
		if np.Var != "" {
			if existing, ok := nb[np.Var]; ok {
				en, isNode := existing.(*Node)
				if !isNode || en.ID != target.ID {
					return nil
				}
			} else {
				nb[np.Var] = target
			}
		}
		if rp.Var != "" {
			nb[rp.Var] = rels
		}
		return db.matchChain(p, i+1, target, nb, npath, k)
	})
}

// expandRel enumerates matches of one relationship pattern from cur,
// following trail semantics (no relationship repeated within one
// variable-length expansion).
func (db *DB) expandRel(rp *RelPattern, cur *Node, path Path, k func(*Node, []*Rel, Path) error) error {
	typeOK := func(r *Rel) bool {
		if len(rp.Types) == 0 {
			return true
		}
		for _, t := range rp.Types {
			if r.Type == t {
				return true
			}
		}
		return false
	}
	propsOK := func(r *Rel) bool {
		for name, want := range rp.Props {
			if !valueEq(r.Props[name], want) {
				return false
			}
		}
		return true
	}
	step := func(n *Node) []*Rel {
		if rp.Reverse {
			return db.in[n.ID]
		}
		return db.out[n.ID]
	}
	other := func(r *Rel) *Node {
		if rp.Reverse {
			return db.nodes[r.From]
		}
		return db.nodes[r.To]
	}

	used := map[int64]bool{}
	var rec func(n *Node, depth int, rels []*Rel, pth Path) error
	rec = func(n *Node, depth int, rels []*Rel, pth Path) error {
		if err := db.bud.Step(); err != nil {
			return err
		}
		// depth 0 (zero-length) is handled by the caller below.
		if depth > 0 && depth >= rp.MinHops {
			if err := k(n, append([]*Rel(nil), rels...), pth); err != nil {
				return err
			}
		}
		if depth == rp.MaxHops {
			return nil
		}
		for _, r := range step(n) {
			if used[r.ID] || !typeOK(r) || !propsOK(r) {
				continue
			}
			used[r.ID] = true
			t := other(r)
			np := Path{
				Nodes: append(append([]*Node(nil), pth.Nodes...), t),
				Rels:  append(append([]*Rel(nil), pth.Rels...), r),
			}
			if err := rec(t, depth+1, append(rels, r), np); err != nil {
				return err
			}
			used[r.ID] = false
		}
		return nil
	}
	if rp.MinHops == 0 {
		// Zero-length match allowed: target is cur itself.
		if err := k(cur, nil, path); err != nil {
			return err
		}
	}
	return rec(cur, 0, nil, path)
}

// nodeCandidates returns the candidate nodes for a node pattern: the
// already-bound node, a label index scan, or all nodes.
func (db *DB) nodeCandidates(np NodePattern, b binding) ([]*Node, error) {
	if np.Var != "" {
		if v, ok := b[np.Var]; ok {
			n, isNode := v.(*Node)
			if !isNode {
				return nil, execErrf("variable %q is not a node", np.Var)
			}
			if db.nodeMatches(&np, n, b) {
				return []*Node{n}, nil
			}
			return nil, nil
		}
	}
	var pool []*Node
	if len(np.Labels) > 0 {
		pool = db.NodesByLabel(np.Labels[0])
	} else {
		pool = db.AllNodes()
	}
	var out []*Node
	for _, n := range pool {
		if db.nodeMatches(&np, n, b) {
			out = append(out, n)
		}
	}
	return out, nil
}

func (db *DB) nodeMatches(np *NodePattern, n *Node, _ binding) bool {
	for _, l := range np.Labels {
		if !n.HasLabel(l) {
			return false
		}
	}
	for name, want := range np.Props {
		if !valueEq(n.Props[name], want) {
			return false
		}
	}
	return true
}

// ---------------------------------------------------------------------------
// Expression evaluation
// ---------------------------------------------------------------------------

func evalExpr(e Expr, b binding, db *DB) (Value, error) {
	switch x := e.(type) {
	case LitExpr:
		return x.Val, nil
	case VarExpr:
		v, ok := b[x.Name]
		if !ok {
			return nil, execErrf("unbound variable %q", x.Name)
		}
		return v, nil
	case PropExpr:
		v, ok := b[x.Var]
		if !ok {
			return nil, execErrf("unbound variable %q", x.Var)
		}
		switch tv := v.(type) {
		case *Node:
			return tv.Props[x.Prop], nil
		case []*Rel:
			if len(tv) == 1 {
				return tv[0].Props[x.Prop], nil
			}
			return nil, execErrf("property access on multi-hop relationship %q", x.Var)
		default:
			return nil, execErrf("property access on non-entity %q", x.Var)
		}
	case NotExpr:
		ok, err := evalBool(x.X, b, db)
		if err != nil {
			return nil, err
		}
		return !ok, nil
	case BinExpr:
		return evalBin(x, b, db)
	case CallExpr:
		return evalCall(x, b, db)
	case ListExpr:
		out := make([]Value, 0, len(x.Elems))
		for _, el := range x.Elems {
			v, err := evalExpr(el, b, db)
			if err != nil {
				return nil, err
			}
			out = append(out, v)
		}
		return out, nil
	}
	return nil, execErrf("unknown expression")
}

func evalBool(e Expr, b binding, db *DB) (bool, error) {
	v, err := evalExpr(e, b, db)
	if err != nil {
		return false, err
	}
	bv, ok := v.(bool)
	if !ok {
		return v != nil, nil
	}
	return bv, nil
}

func evalBin(x BinExpr, b binding, db *DB) (Value, error) {
	switch x.Op {
	case "AND":
		l, err := evalBool(x.L, b, db)
		if err != nil || !l {
			return false, err
		}
		return evalBool(x.R, b, db)
	case "OR":
		l, err := evalBool(x.L, b, db)
		if err != nil {
			return nil, err
		}
		if l {
			return true, nil
		}
		return evalBool(x.R, b, db)
	}
	l, err := evalExpr(x.L, b, db)
	if err != nil {
		return nil, err
	}
	r, err := evalExpr(x.R, b, db)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case "=":
		return valueEq(l, r), nil
	case "<>":
		return !valueEq(l, r), nil
	case "<", ">", "<=", ">=":
		return compareValues(x.Op, l, r)
	case "IN":
		list, ok := r.([]Value)
		if !ok {
			return nil, execErrf("IN requires a list")
		}
		for _, v := range list {
			if valueEq(l, v) {
				return true, nil
			}
		}
		return false, nil
	}
	return nil, execErrf("unknown operator %q", x.Op)
}

func evalCall(x CallExpr, b binding, db *DB) (Value, error) {
	argVal := func(i int) (Value, error) {
		if i >= len(x.Args) {
			return nil, execErrf("%s: missing argument", x.Fn)
		}
		return evalExpr(x.Args[i], b, db)
	}
	switch x.Fn {
	case "id":
		v, err := argVal(0)
		if err != nil {
			return nil, err
		}
		if n, ok := v.(*Node); ok {
			return int64(n.ID), nil
		}
		return nil, execErrf("id: argument is not a node")
	case "labels":
		v, err := argVal(0)
		if err != nil {
			return nil, err
		}
		n, ok := v.(*Node)
		if !ok {
			return nil, execErrf("labels: argument is not a node")
		}
		out := make([]Value, len(n.Labels))
		for i, l := range n.Labels {
			out[i] = l
		}
		return out, nil
	case "length":
		v, err := argVal(0)
		if err != nil {
			return nil, err
		}
		switch tv := v.(type) {
		case Path:
			return int64(tv.Len()), nil
		case []*Rel:
			return int64(len(tv)), nil
		case []Value:
			return int64(len(tv)), nil
		}
		return nil, execErrf("length: unsupported argument")
	case "type":
		v, err := argVal(0)
		if err != nil {
			return nil, err
		}
		if rels, ok := v.([]*Rel); ok && len(rels) == 1 {
			return rels[0].Type, nil
		}
		return nil, execErrf("type: argument is not a single relationship")
	case "count":
		// count(x) in our subset counts non-null per row: 0 or 1.
		v, err := argVal(0)
		if err != nil {
			return nil, err
		}
		if v == nil {
			return int64(0), nil
		}
		return int64(1), nil
	}
	return nil, execErrf("unknown function %q", x.Fn)
}

func valueEq(a, b Value) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	// Numeric comparison across int64/float64.
	af, aNum := toFloat(a)
	bf, bNum := toFloat(b)
	if aNum && bNum {
		return af == bf
	}
	return a == b
}

func toFloat(v Value) (float64, bool) {
	switch n := v.(type) {
	case int64:
		return float64(n), true
	case float64:
		return n, true
	case int:
		return float64(n), true
	}
	return 0, false
}

func compareValues(op string, l, r Value) (Value, error) {
	lf, lok := toFloat(l)
	rf, rok := toFloat(r)
	if lok && rok {
		switch op {
		case "<":
			return lf < rf, nil
		case ">":
			return lf > rf, nil
		case "<=":
			return lf <= rf, nil
		default:
			return lf >= rf, nil
		}
	}
	ls, lok2 := l.(string)
	rs, rok2 := r.(string)
	if lok2 && rok2 {
		switch op {
		case "<":
			return ls < rs, nil
		case ">":
			return ls > rs, nil
		case "<=":
			return ls <= rs, nil
		default:
			return ls >= rs, nil
		}
	}
	return nil, execErrf("cannot compare %T and %T", l, r)
}

func renderExpr(e Expr) string {
	switch x := e.(type) {
	case VarExpr:
		return x.Name
	case PropExpr:
		return x.Var + "." + x.Prop
	case CallExpr:
		var args []string
		for _, a := range x.Args {
			args = append(args, renderExpr(a))
		}
		return x.Fn + "(" + strings.Join(args, ",") + ")"
	case LitExpr:
		return fmt.Sprint(x.Val)
	}
	return ""
}

func rowKey(cols []string, row Row) string {
	var sb strings.Builder
	sorted := append([]string(nil), cols...)
	sort.Strings(sorted)
	for _, c := range sorted {
		fmt.Fprintf(&sb, "%s=%v;", c, keyOf(row[c]))
	}
	return sb.String()
}

func keyOf(v Value) string {
	switch tv := v.(type) {
	case *Node:
		return fmt.Sprintf("n%d", tv.ID)
	case Path:
		var sb strings.Builder
		for _, r := range tv.Rels {
			fmt.Fprintf(&sb, "r%d,", r.ID)
		}
		return sb.String()
	case []*Rel:
		var sb strings.Builder
		for _, r := range tv {
			fmt.Fprintf(&sb, "r%d,", r.ID)
		}
		return sb.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}
