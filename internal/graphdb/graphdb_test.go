package graphdb

import (
	"testing"
	"testing/quick"
)

// buildSample creates a small graph:
//
//	(p1:Param {source:true, name:"a"}) -D-> (o1:Object) -D-> (c1:Call {name:"exec"})
//	(o1) -P {prop:"cmd"}-> (o2:Object)
//	(o2) -V {prop:"cmd"}-> (o3:Object)
//	(p2:Param {source:false}) -D-> (c2:Call {name:"log"})
func buildSample(t *testing.T) (*DB, map[string]*Node) {
	t.Helper()
	db := NewDB()
	ns := map[string]*Node{}
	ns["p1"] = db.CreateNode([]string{"Param"}, map[string]Value{"source": true, "name": "a"})
	ns["p2"] = db.CreateNode([]string{"Param"}, map[string]Value{"source": false, "name": "b"})
	ns["o1"] = db.CreateNode([]string{"Object"}, map[string]Value{"name": "o1"})
	ns["o2"] = db.CreateNode([]string{"Object"}, map[string]Value{"name": "o2"})
	ns["o3"] = db.CreateNode([]string{"Object"}, map[string]Value{"name": "o3"})
	ns["c1"] = db.CreateNode([]string{"Call"}, map[string]Value{"name": "exec", "line": int64(7)})
	ns["c2"] = db.CreateNode([]string{"Call"}, map[string]Value{"name": "log", "line": int64(9)})
	mk := func(a, b string, typ string, props map[string]Value) {
		if _, err := db.CreateRel(ns[a].ID, ns[b].ID, typ, props); err != nil {
			t.Fatal(err)
		}
	}
	mk("p1", "o1", "D", nil)
	mk("o1", "c1", "D", nil)
	mk("o1", "o2", "P", map[string]Value{"prop": "cmd"})
	mk("o2", "o3", "V", map[string]Value{"prop": "cmd"})
	mk("p2", "c2", "D", nil)
	return db, ns
}

func mustQuery(t *testing.T, db *DB, q string) *Result {
	t.Helper()
	res, err := db.Query(q)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return res
}

func TestCreateAndIndex(t *testing.T) {
	db, _ := buildSample(t)
	if db.NumNodes() != 7 || db.NumRels() != 5 {
		t.Fatalf("nodes=%d rels=%d", db.NumNodes(), db.NumRels())
	}
	if len(db.NodesByLabel("Param")) != 2 {
		t.Fatal("label index broken")
	}
}

func TestRelRequiresEndpoints(t *testing.T) {
	db := NewDB()
	n := db.CreateNode([]string{"X"}, nil)
	if _, err := db.CreateRel(n.ID, NodeID(99), "D", nil); err == nil {
		t.Fatal("expected error for missing endpoint")
	}
}

func TestMatchByLabelAndProp(t *testing.T) {
	db, ns := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call {name: 'exec'}) RETURN id(c)`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0]["id(c)"] != int64(ns["c1"].ID) {
		t.Fatalf("got %v", res.Rows[0])
	}
}

func TestMatchSingleHop(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (a:Param)-[:D]->(b) RETURN a.name, b.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMatchReverse(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call {name:'exec'})<-[:D]-(src) RETURN src.name`)
	if len(res.Rows) != 1 || res.Rows[0]["src.name"] != "o1" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestVarLengthPath(t *testing.T) {
	db, _ := buildSample(t)
	// p1 reaches c1 in two D hops.
	res := mustQuery(t, db, `MATCH (s:Param {source: true})-[:D*1..5]->(c:Call) RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "exec" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Exact hop count.
	res = mustQuery(t, db, `MATCH (s:Param {source: true})-[:D*2]->(c) RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "exec" {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Min hops too high: no match.
	res = mustQuery(t, db, `MATCH (s:Param {source: true})-[:D*3..4]->(c) RETURN c.name`)
	if len(res.Rows) != 0 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestTypeAlternatives(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (o {name:'o1'})-[:P|V*1..3]->(x) RETURN x.name`)
	if len(res.Rows) != 2 { // o2 and o3
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRelPropertyFilter(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (a)-[r:P {prop: 'cmd'}]->(b) RETURN b.name`)
	if len(res.Rows) != 1 || res.Rows[0]["b.name"] != "o2" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereClause(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call) WHERE c.line > 7 RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "log" {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (c:Call) WHERE c.name = 'exec' OR c.name = 'log' RETURN c.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (p:Param) WHERE NOT p.source = true RETURN p.name`)
	if len(res.Rows) != 1 || res.Rows[0]["p.name"] != "b" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMultiplePatternsJoin(t *testing.T) {
	db, _ := buildSample(t)
	// Shared variable o joins the two patterns.
	res := mustQuery(t, db, `MATCH (s:Param)-[:D]->(o), (o)-[:D]->(c:Call) RETURN s.name, c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "exec" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestPathBinding(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH p = (s:Param {source:true})-[:D*1..4]->(c:Call) RETURN length(p)`)
	if len(res.Rows) != 1 || res.Rows[0]["length(p)"] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestDistinctAndLimit(t *testing.T) {
	db := NewDB()
	hub := db.CreateNode([]string{"Hub"}, nil)
	for i := 0; i < 5; i++ {
		n := db.CreateNode([]string{"Leaf"}, map[string]Value{"v": int64(i % 2)})
		if _, err := db.CreateRel(hub.ID, n.ID, "E", nil); err != nil {
			t.Fatal(err)
		}
	}
	res := mustQuery(t, db, `MATCH (h:Hub)-[:E]->(l) RETURN DISTINCT l.v`)
	if len(res.Rows) != 2 {
		t.Fatalf("distinct rows = %v", res.Rows)
	}
	res = mustQuery(t, db, `MATCH (h:Hub)-[:E]->(l) RETURN l.v LIMIT 3`)
	if len(res.Rows) != 3 {
		t.Fatalf("limit rows = %v", res.Rows)
	}
}

func TestAlias(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call {name:'exec'}) RETURN c.line AS line`)
	if res.Columns[0] != "line" || res.Rows[0]["line"] != int64(7) {
		t.Fatalf("res = %+v", res)
	}
}

func TestTrailSemanticsNoCycles(t *testing.T) {
	// a <-> b cycle must not loop forever.
	db := NewDB()
	a := db.CreateNode([]string{"N"}, map[string]Value{"name": "a"})
	bn := db.CreateNode([]string{"N"}, map[string]Value{"name": "b"})
	if _, err := db.CreateRel(a.ID, bn.ID, "D", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := db.CreateRel(bn.ID, a.ID, "D", nil); err != nil {
		t.Fatal(err)
	}
	res := mustQuery(t, db, `MATCH (x {name:'a'})-[:D*1..10]->(y) RETURN y.name`)
	// Paths: a->b (y=b), a->b->a (y=a). No longer paths exist without
	// repeating a relationship.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestZeroLengthPath(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (o {name:'o1'})-[:P*0..2]->(x) RETURN x.name`)
	// Zero hops: o1 itself; one hop: o2.
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestBareArrowRelationship(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (s:Param {source:true})-->(o) RETURN o.name`)
	if len(res.Rows) != 1 || res.Rows[0]["o.name"] != "o1" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParseErrors(t *testing.T) {
	db := NewDB()
	for _, q := range []string{
		``,
		`RETURN 1`,
		`MATCH (a`,
		`MATCH (a) RETURN`,
		`MATCH (a) WHERE RETURN a`,
		`MATCH (a) RETURN a LIMIT x`,
		`MATCH (a:) RETURN a`,
	} {
		if _, err := db.Query(q); err == nil {
			t.Errorf("Query(%q) should fail", q)
		}
	}
}

func TestExecErrors(t *testing.T) {
	db, _ := buildSample(t)
	if _, err := db.Query(`MATCH (a:Param) RETURN b.name`); err == nil {
		t.Error("unbound variable must error")
	}
	if _, err := db.Query(`MATCH (a:Param) RETURN id(a.name)`); err == nil {
		t.Error("id() of non-node must error")
	}
}

func TestNumericCoercion(t *testing.T) {
	db := NewDB()
	db.CreateNode([]string{"N"}, map[string]Value{"x": int64(3)})
	db.CreateNode([]string{"N"}, map[string]Value{"x": float64(3.5)})
	res := mustQuery(t, db, `MATCH (n:N) WHERE n.x >= 3.0 RETURN n.x`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLabelsFunction(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call {name:'exec'}) RETURN labels(c)`)
	ls, ok := res.Rows[0]["labels(c)"].([]Value)
	if !ok || len(ls) != 1 || ls[0] != "Call" {
		t.Fatalf("labels = %v", res.Rows[0])
	}
}

func TestBoundVariableAcrossMatches(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `
MATCH (s:Param {source: true})
MATCH (s)-[:D*1..5]->(c:Call)
RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "exec" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

// Property: query results are deterministic — same query twice gives the
// same row multiset.
func TestDeterministicQuick(t *testing.T) {
	db, _ := buildSample(t)
	f := func(seed uint8) bool {
		q := `MATCH (a)-[:D|P|V*1..4]->(b) RETURN a.name, b.name`
		r1, err1 := db.Query(q)
		r2, err2 := db.Query(q)
		if err1 != nil || err2 != nil {
			return false
		}
		if len(r1.Rows) != len(r2.Rows) {
			return false
		}
		for i := range r1.Rows {
			if rowKey(r1.Columns, r1.Rows[i]) != rowKey(r2.Columns, r2.Rows[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: on random DAGs, the number of (s)-[*1..k]->(t) matches
// equals a reference DFS path count with trail semantics.
func TestVarLenMatchesReferenceQuick(t *testing.T) {
	f := func(edges []uint8) bool {
		db := NewDB()
		const n = 6
		var nodes []*Node
		for i := 0; i < n; i++ {
			nodes = append(nodes, db.CreateNode([]string{"N"}, map[string]Value{"i": int64(i)}))
		}
		type edge struct{ from, to int }
		var es []edge
		for _, e := range edges {
			from := int(e) % n
			to := int(e>>3) % n
			if from < to { // DAG: edges go up only
				if _, err := db.CreateRel(nodes[from].ID, nodes[to].ID, "E", nil); err != nil {
					return false
				}
				es = append(es, edge{from, to})
			}
		}
		// Reference count of paths 0 -> 5 with <= 5 hops.
		adj := map[int][]int{}
		for _, e := range es {
			adj[e.from] = append(adj[e.from], e.to)
		}
		var count func(at, depth int) int
		count = func(at, depth int) int {
			if depth > 5 {
				return 0
			}
			c := 0
			if at == n-1 && depth > 0 {
				c++
			}
			for _, nx := range adj[at] {
				c += count(nx, depth+1)
			}
			return c
		}
		want := count(0, 0)
		res, err := db.Query(`MATCH (a {i: 0})-[:E*1..5]->(b {i: 5}) RETURN b`)
		if err != nil {
			return false
		}
		return len(res.Rows) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRelVariableSingleHopProps(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (a)-[r:P]->(b) RETURN r.prop, type(r)`)
	if len(res.Rows) != 1 || res.Rows[0]["r.prop"] != "cmd" || res.Rows[0]["type(r)"] != "P" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestRelVariableMultiHopPropertyError(t *testing.T) {
	db, _ := buildSample(t)
	if _, err := db.Query(`MATCH (s:Param {source:true})-[r:D*1..5]->(c:Call) RETURN r.prop`); err == nil {
		t.Fatal("property access on multi-hop rel var must error")
	}
}

func TestLengthOfRelVar(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (s:Param {source:true})-[r:D*1..5]->(c:Call) RETURN length(r)`)
	if len(res.Rows) != 1 || res.Rows[0]["length(r)"] != int64(2) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestLengthOfList(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call {name:'exec'}) RETURN length(labels(c))`)
	if res.Rows[0]["length(labels(c))"] != int64(1) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestWhereOnMissingPropIsNull(t *testing.T) {
	db, _ := buildSample(t)
	// Comparisons against a missing property: <> nil is true-ish via
	// valueEq(nil, x) = false; ensure no crash and sane filtering.
	res := mustQuery(t, db, `MATCH (c:Call) WHERE c.missing = null RETURN c.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestParenthesizedWhere(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (c:Call) WHERE (c.name = 'exec' OR c.name = 'log') AND NOT c.line = 7 RETURN c.name`)
	if len(res.Rows) != 1 || res.Rows[0]["c.name"] != "log" {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestCountStar(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `MATCH (n:Object) RETURN count() AS n`)
	if res.Rows[0]["n"] != int64(3) {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestMixedAggregateRejected(t *testing.T) {
	db, _ := buildSample(t)
	// Mixed count + plain projections fall back to per-row evaluation;
	// count(x) per row is 0/1, which must not crash.
	res := mustQuery(t, db, `MATCH (p:Param) RETURN count(p), p.name`)
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestQueryComments(t *testing.T) {
	db, _ := buildSample(t)
	res := mustQuery(t, db, `
// find the exec call
MATCH (c:Call {name: 'exec'}) // inline too
RETURN c.line`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}

func TestNegativeNumberLiteral(t *testing.T) {
	db := NewDB()
	db.CreateNode([]string{"N"}, map[string]Value{"v": int64(-5)})
	res := mustQuery(t, db, `MATCH (n:N {v: -5}) RETURN n.v`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %v", res.Rows)
	}
}
