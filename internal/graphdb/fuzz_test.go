package graphdb

import "testing"

// FuzzParseQuery asserts the Cypher-subset parser's crash-freedom
// contract: arbitrary query text either parses or errors, without
// panicking or recursing past the expression-depth limit.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"",
		"MATCH (n) RETURN n",
		"MATCH (s:TAINT_SOURCE)-[:PDG*1..]->(k:SINK) WHERE k.name = 'exec' RETURN s, k",
		"MATCH (a)-[r:CALLS]->(b) WHERE a.line > 3 AND NOT (b.name = 'x' OR b.v) RETURN a.name, b",
		"MATCH (n) WHERE ((((((n.v))))))" + " RETURN n",
		"MATCH (n WHERE RETURN",
		"MATCH (a)-[*..]->(b) RETURN count(b)",
		"match (N:label {k: 'v', j: 1}) return N.k",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := ParseQuery(src)
		if err == nil && q == nil {
			t.Error("nil error and nil query")
		}
	})
}
