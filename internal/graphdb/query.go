package graphdb

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// The query language is a Cypher subset:
//
//	MATCH (a:Call {name: 'exec'}), p = (s:Param)-[:D|P*1..20]->(a)
//	WHERE s.source = true AND a.line <> 0
//	RETURN DISTINCT s.id AS src, a.id LIMIT 10
//
// Supported: multiple MATCH clauses, comma-separated patterns, node
// labels and property maps, relationship types (alternatives with |),
// variable-length relationships *min..max, both directions, path
// bindings (p = ...), WHERE with comparisons/AND/OR/NOT, RETURN with
// DISTINCT, AS aliases, and LIMIT.

// ---------------------------------------------------------------------------
// Query AST
// ---------------------------------------------------------------------------

// Query is a parsed query.
type Query struct {
	Matches []MatchClause
	Where   Expr // nil when absent
	Return  ReturnClause
}

// MatchClause is one MATCH with one or more comma-separated patterns.
type MatchClause struct {
	Patterns []Pattern
}

// Pattern is a chain of node patterns joined by relationship patterns,
// optionally bound to a path variable.
type Pattern struct {
	PathVar string // "" when unbound
	Nodes   []NodePattern
	Rels    []RelPattern // len = len(Nodes)-1
}

// NodePattern matches one node.
type NodePattern struct {
	Var    string
	Labels []string
	Props  map[string]Value
}

// RelPattern matches one relationship (or a variable-length chain).
type RelPattern struct {
	Var     string
	Types   []string // empty = any type
	Props   map[string]Value
	MinHops int // 1 for plain relationships
	MaxHops int // 1 for plain; variable-length otherwise
	// Reverse is true for `<-[...]-` (right-to-left traversal).
	Reverse bool
	VarLen  bool
}

// ReturnClause is the projection.
type ReturnClause struct {
	Distinct bool
	Items    []ReturnItem
	// OrderBy sorts rows by the expression before LIMIT applies.
	OrderBy   Expr
	OrderDesc bool
	Limit     int // 0 = no limit
	Skip      int
}

// ReturnItem is one projected expression.
type ReturnItem struct {
	Expr  Expr
	Alias string
}

// Expr is a WHERE/RETURN expression.
type Expr interface{ exprNode() }

// LitExpr is a literal value.
type LitExpr struct{ Val Value }

// VarExpr references a bound variable.
type VarExpr struct{ Name string }

// PropExpr is variable.property access.
type PropExpr struct {
	Var, Prop string
}

// BinExpr is a binary operation (comparisons, AND, OR).
type BinExpr struct {
	Op   string
	L, R Expr
}

// NotExpr is logical negation.
type NotExpr struct{ X Expr }

// CallExpr is a builtin function call: id(x), labels(x), length(p),
// type(r), count(x).
type CallExpr struct {
	Fn   string
	Args []Expr
}

// ListExpr is a list literal [e1, e2, ...].
type ListExpr struct{ Elems []Expr }

func (LitExpr) exprNode()  {}
func (VarExpr) exprNode()  {}
func (PropExpr) exprNode() {}
func (BinExpr) exprNode()  {}
func (NotExpr) exprNode()  {}
func (CallExpr) exprNode() {}
func (ListExpr) exprNode() {}

// ---------------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------------

type qtok struct {
	kind string // "ident", "num", "str", "punct", "eof"
	text string
	pos  int
}

// ParseError is a query syntax error.
type ParseError struct {
	Pos int
	Msg string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("query:%d: %s", e.Pos, e.Msg)
}

func lexQuery(src string) ([]qtok, error) {
	var toks []qtok
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_') {
				j++
			}
			toks = append(toks, qtok{kind: "ident", text: src[i:j], pos: i})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.') &&
				!(src[j] == '.' && j+1 < len(src) && src[j+1] == '.') {
				j++
			}
			toks = append(toks, qtok{kind: "num", text: src[i:j], pos: i})
			i = j
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\\' && j+1 < len(src) {
					j++
				}
				sb.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, &ParseError{Pos: i, Msg: "unterminated string"}
			}
			toks = append(toks, qtok{kind: "str", text: sb.String(), pos: i})
			i = j + 1
		default:
			for _, op := range []string{"<=", ">=", "<>", "..", "->", "<-", "="} {
				if strings.HasPrefix(src[i:], op) {
					toks = append(toks, qtok{kind: "punct", text: op, pos: i})
					i += len(op)
					goto next
				}
			}
			switch c {
			case '(', ')', '[', ']', '{', '}', ',', ':', '.', '|', '*', '-', '<', '>':
				toks = append(toks, qtok{kind: "punct", text: string(c), pos: i})
				i++
			default:
				return nil, &ParseError{Pos: i, Msg: fmt.Sprintf("unexpected character %q", c)}
			}
		next:
		}
	}
	toks = append(toks, qtok{kind: "eof", pos: len(src)})
	return toks, nil
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

type qparser struct {
	toks []qtok
	pos  int
	// depth bounds expression recursion (nested parens, NOT chains,
	// unary minus) so adversarial query text cannot overflow the stack;
	// recover() cannot catch a Go stack overflow, so the limit has to
	// be explicit.
	depth int
}

// maxExprDepth bounds qparser expression nesting. Real queries nest a
// handful of levels; fuzzed input nests thousands.
const maxExprDepth = 200

// enter charges one recursion level; the matching leave() must run on
// every return path (callers defer it).
func (p *qparser) enter() error {
	p.depth++
	if p.depth > maxExprDepth {
		return p.errf("expression nesting exceeds %d levels", maxExprDepth)
	}
	return nil
}

func (p *qparser) leave() { p.depth-- }

// ParseQuery parses a query string.
func ParseQuery(src string) (*Query, error) {
	toks, err := lexQuery(src)
	if err != nil {
		return nil, err
	}
	p := &qparser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != "eof" {
		return nil, p.errf("unexpected %q after query", p.cur().text)
	}
	return q, nil
}

func (p *qparser) cur() qtok { return p.toks[p.pos] }

func (p *qparser) next() qtok {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *qparser) errf(format string, args ...any) error {
	return &ParseError{Pos: p.cur().pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *qparser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == "ident" && strings.EqualFold(t.text, kw)
}

func (p *qparser) atPunct(s string) bool {
	t := p.cur()
	return t.kind == "punct" && t.text == s
}

func (p *qparser) expectPunct(s string) error {
	if !p.atPunct(s) {
		return p.errf("expected %q, found %q", s, p.cur().text)
	}
	p.next()
	return nil
}

func (p *qparser) query() (*Query, error) {
	q := &Query{}
	for p.atKeyword("MATCH") {
		p.next()
		var mc MatchClause
		for {
			pat, err := p.pattern()
			if err != nil {
				return nil, err
			}
			mc.Patterns = append(mc.Patterns, *pat)
			if !p.atPunct(",") {
				break
			}
			p.next()
		}
		q.Matches = append(q.Matches, mc)
	}
	if len(q.Matches) == 0 {
		return nil, p.errf("query must start with MATCH")
	}
	if p.atKeyword("WHERE") {
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Where = e
	}
	if !p.atKeyword("RETURN") {
		return nil, p.errf("expected RETURN")
	}
	p.next()
	if p.atKeyword("DISTINCT") {
		p.next()
		q.Return.Distinct = true
	}
	for {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		item := ReturnItem{Expr: e}
		if p.atKeyword("AS") {
			p.next()
			if p.cur().kind != "ident" {
				return nil, p.errf("expected alias name")
			}
			item.Alias = p.next().text
		}
		q.Return.Items = append(q.Return.Items, item)
		if !p.atPunct(",") {
			break
		}
		p.next()
	}
	if p.atKeyword("ORDER") {
		p.next()
		if !p.atKeyword("BY") {
			return nil, p.errf("expected BY after ORDER")
		}
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		q.Return.OrderBy = e
		if p.atKeyword("DESC") {
			p.next()
			q.Return.OrderDesc = true
		} else if p.atKeyword("ASC") {
			p.next()
		}
	}
	if p.atKeyword("SKIP") {
		p.next()
		if p.cur().kind != "num" {
			return nil, p.errf("expected number after SKIP")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid SKIP")
		}
		q.Return.Skip = n
	}
	if p.atKeyword("LIMIT") {
		p.next()
		if p.cur().kind != "num" {
			return nil, p.errf("expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.next().text)
		if err != nil || n < 0 {
			return nil, p.errf("invalid LIMIT")
		}
		q.Return.Limit = n
	}
	return q, nil
}

func (p *qparser) pattern() (*Pattern, error) {
	pat := &Pattern{}
	// Optional path binding: ident '=' '('
	if p.cur().kind == "ident" && p.toks[p.pos+1].kind == "punct" && p.toks[p.pos+1].text == "=" {
		pat.PathVar = p.next().text
		p.next() // =
	}
	n, err := p.nodePattern()
	if err != nil {
		return nil, err
	}
	pat.Nodes = append(pat.Nodes, *n)
	for p.atPunct("-") || p.atPunct("<-") {
		r, err := p.relPattern()
		if err != nil {
			return nil, err
		}
		n2, err := p.nodePattern()
		if err != nil {
			return nil, err
		}
		pat.Rels = append(pat.Rels, *r)
		pat.Nodes = append(pat.Nodes, *n2)
	}
	return pat, nil
}

func (p *qparser) nodePattern() (*NodePattern, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	n := &NodePattern{}
	if p.cur().kind == "ident" {
		n.Var = p.next().text
	}
	for p.atPunct(":") {
		p.next()
		if p.cur().kind != "ident" {
			return nil, p.errf("expected label name")
		}
		n.Labels = append(n.Labels, p.next().text)
	}
	if p.atPunct("{") {
		props, err := p.propMap()
		if err != nil {
			return nil, err
		}
		n.Props = props
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return n, nil
}

func (p *qparser) relPattern() (*RelPattern, error) {
	r := &RelPattern{MinHops: 1, MaxHops: 1}
	switch {
	case p.atPunct("<-"):
		r.Reverse = true
		p.next()
	case p.atPunct("-"):
		p.next()
	default:
		return nil, p.errf("expected relationship")
	}
	if p.atPunct("[") {
		p.next()
		if p.cur().kind == "ident" {
			r.Var = p.next().text
		}
		if p.atPunct(":") {
			p.next()
			for {
				if p.cur().kind != "ident" {
					return nil, p.errf("expected relationship type")
				}
				r.Types = append(r.Types, p.next().text)
				if !p.atPunct("|") {
					break
				}
				p.next()
			}
		}
		if p.atPunct("*") {
			p.next()
			r.VarLen = true
			r.MinHops = 1
			r.MaxHops = defaultMaxHops
			if p.cur().kind == "num" {
				n, _ := strconv.Atoi(p.next().text)
				r.MinHops = n
				r.MaxHops = n
			}
			if p.atPunct("..") {
				p.next()
				r.MaxHops = defaultMaxHops
				if p.cur().kind == "num" {
					n, _ := strconv.Atoi(p.next().text)
					r.MaxHops = n
				}
			}
		}
		if p.atPunct("{") {
			props, err := p.propMap()
			if err != nil {
				return nil, err
			}
			r.Props = props
		}
		if err := p.expectPunct("]"); err != nil {
			return nil, err
		}
	}
	if r.Reverse {
		if err := p.expectPunct("-"); err != nil {
			return nil, err
		}
	} else {
		if err := p.expectPunct("->"); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// defaultMaxHops bounds unbounded variable-length patterns.
const defaultMaxHops = 32

func (p *qparser) propMap() (map[string]Value, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	props := map[string]Value{}
	for !p.atPunct("}") {
		if p.cur().kind != "ident" {
			return nil, p.errf("expected property name")
		}
		name := p.next().text
		if err := p.expectPunct(":"); err != nil {
			return nil, err
		}
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		props[name] = v
		if p.atPunct(",") {
			p.next()
		}
	}
	p.next() // }
	return props, nil
}

func (p *qparser) literal() (Value, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.kind == "str":
		p.next()
		return t.text, nil
	case t.kind == "num":
		p.next()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			return f, err
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		return n, err
	case t.kind == "ident" && strings.EqualFold(t.text, "true"):
		p.next()
		return true, nil
	case t.kind == "ident" && strings.EqualFold(t.text, "false"):
		p.next()
		return false, nil
	case t.kind == "ident" && strings.EqualFold(t.text, "null"):
		p.next()
		return nil, nil
	case t.kind == "punct" && t.text == "-":
		p.next()
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		switch n := v.(type) {
		case int64:
			return -n, nil
		case float64:
			return -n, nil
		}
		return nil, p.errf("cannot negate non-number")
	}
	return nil, p.errf("expected literal, found %q", t.text)
}

// orExpr parses OR-expressions (lowest precedence).
func (p *qparser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		p.next()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *qparser) andExpr() (Expr, error) {
	l, err := p.cmpExpr()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		p.next()
		r, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		l = BinExpr{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *qparser) cmpExpr() (Expr, error) {
	l, err := p.primary()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == "punct" {
		switch t.text {
		case "=", "<>", "<", ">", "<=", ">=":
			p.next()
			r, err := p.primary()
			if err != nil {
				return nil, err
			}
			return BinExpr{Op: t.text, L: l, R: r}, nil
		}
	}
	if p.atKeyword("IN") {
		p.next()
		r, err := p.primary()
		if err != nil {
			return nil, err
		}
		return BinExpr{Op: "IN", L: l, R: r}, nil
	}
	return l, nil
}

func (p *qparser) primary() (Expr, error) {
	if err := p.enter(); err != nil {
		return nil, err
	}
	defer p.leave()
	t := p.cur()
	switch {
	case p.atKeyword("NOT"):
		p.next()
		// NOT binds over a whole comparison: NOT a.x = 1 negates the
		// equality, matching Cypher precedence.
		x, err := p.cmpExpr()
		if err != nil {
			return nil, err
		}
		return NotExpr{X: x}, nil
	case t.kind == "punct" && t.text == "(":
		p.next()
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.kind == "ident":
		switch strings.ToLower(t.text) {
		case "true", "false", "null":
			v, err := p.literal()
			if err != nil {
				return nil, err
			}
			return LitExpr{Val: v}, nil
		}
		name := p.next().text
		if p.atPunct("(") { // function call
			p.next()
			call := CallExpr{Fn: strings.ToLower(name)}
			for !p.atPunct(")") {
				arg, err := p.orExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, arg)
				if p.atPunct(",") {
					p.next()
				}
			}
			p.next() // )
			return call, nil
		}
		if p.atPunct(".") {
			p.next()
			if p.cur().kind != "ident" {
				return nil, p.errf("expected property name")
			}
			return PropExpr{Var: name, Prop: p.next().text}, nil
		}
		return VarExpr{Name: name}, nil
	case t.kind == "punct" && t.text == "[":
		p.next()
		var list ListExpr
		for !p.atPunct("]") {
			e, err := p.orExpr()
			if err != nil {
				return nil, err
			}
			list.Elems = append(list.Elems, e)
			if p.atPunct(",") {
				p.next()
			}
		}
		p.next() // ]
		return list, nil
	default:
		v, err := p.literal()
		if err != nil {
			return nil, err
		}
		return LitExpr{Val: v}, nil
	}
}
