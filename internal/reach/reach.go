// Package reach is a call-graph reachability pre-pass over Core
// JavaScript, in the spirit of SōjiTantei's reachability analysis for
// npm packages: it computes which functions are reachable from the
// package's exported API surface so the scanner can skip MDG
// construction and detection entirely for packages whose reachable
// code cannot produce a finding, and report pruned-function counts
// otherwise.
//
// The pass is purely syntactic and errs on the side of keeping
// functions. Roots are the top-level code plus every function whose
// name is referenced in a value position anywhere (address-taken
// functions cover both exported functions — every export flow starts
// with such a reference — and callbacks passed to unresolved callees).
// When the program shows no evidence of a module API (no
// reference to any function, or no function at all flowing anywhere),
// the analyzer's fallback attack model treats every function as
// exported, and this pass mirrors that by treating every function as a
// root.
package reach

import (
	"repro/internal/core"
	"repro/internal/queries"
)

// Result summarizes the reachability pre-pass for one package.
type Result struct {
	// TotalFuncs and PrunedFuncs count the package's functions and how
	// many of them are unreachable from the exported API surface.
	TotalFuncs  int
	PrunedFuncs int
	// Reachable holds the reachable function names (qualified with the
	// file name for multi-file packages).
	Reachable map[string]bool
	// Fallback records that no export evidence was found, so every
	// function was treated as a root (the analyzer's attack model for
	// plain scripts).
	Fallback bool

	// HasSources reports that reachable code can carry taint sources
	// (a root function with at least one parameter exists).
	HasSources bool
	// SinkReachable reports that reachable code calls a configured
	// sink.
	SinkReachable bool
	// PollutionPossible reports that reachable code contains a dynamic
	// property write or a literal prototype access — the shapes the
	// pollution queries match.
	PollutionPossible bool
}

// CanSkipDetection reports that no detection query can produce a
// finding for this package, so graph construction and the query phase
// can be skipped outright.
func (r *Result) CanSkipDetection() bool {
	return !r.HasSources || (!r.SinkReachable && !r.PollutionPossible)
}

// fn is one function with its shallow body (nested function bodies
// excluded — they are functions of their own).
type fn struct {
	def   *core.FuncDef
	owner string // qualified name of the enclosing function ("" = top level)
	qname string
}

// Analyze runs the pre-pass over the (normalized) programs of one
// package. cfg supplies the sink configuration; nil means
// DefaultConfig.
func Analyze(progs []*core.Program, cfg *queries.Config) *Result {
	if cfg == nil {
		cfg = queries.DefaultConfig()
	}
	a := &analyzer{
		cfg:     cfg,
		progs:   progs,
		byQName: map[string]*fn{},
		byName:  map[string][]*fn{},
		calls:   map[string]map[string]bool{},
	}
	for _, p := range progs {
		a.collect(p)
	}
	for _, p := range progs {
		a.scanRefs(p)
	}
	return a.solve()
}

type analyzer struct {
	cfg     *queries.Config
	progs   []*core.Program
	funcs   []*fn
	byQName map[string]*fn
	byName  map[string][]*fn // bare name -> functions (cross-file)
	calls   map[string]map[string]bool
	refs    map[string]bool // qualified names referenced in value position
}

// collect indexes every function with its enclosing owner. Names are
// qualified as "file:name"; "file:" is the file's top-level scope.
func (a *analyzer) collect(p *core.Program) {
	var walk func(stmts []core.Stmt, owner string)
	walk = func(stmts []core.Stmt, owner string) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *core.FuncDef:
				q := p.FileName + ":" + st.Name
				f := &fn{def: st, owner: owner, qname: q}
				a.funcs = append(a.funcs, f)
				a.byQName[q] = f
				a.byName[st.Name] = append(a.byName[st.Name], f)
				walk(st.Body, q)
			case *core.If:
				walk(st.Then, owner)
				walk(st.Else, owner)
			case *core.While:
				walk(st.Body, owner)
			case *core.ForIn:
				walk(st.Body, owner)
			}
		}
	}
	walk(p.Body, p.FileName+":")
}

// scanRefs records call edges and value-position references.
func (a *analyzer) scanRefs(p *core.Program) {
	if a.refs == nil {
		a.refs = map[string]bool{}
	}
	addRef := func(name string) {
		for _, f := range a.byName[name] {
			a.refs[f.qname] = true
		}
	}
	addCall := func(owner, callee string) {
		for _, f := range a.byName[callee] {
			if a.calls[owner] == nil {
				a.calls[owner] = map[string]bool{}
			}
			a.calls[owner][f.qname] = true
		}
	}
	refExpr := func(e core.Expr) {
		if v, ok := e.(core.Var); ok {
			addRef(v.Name)
		}
	}
	var walk func(stmts []core.Stmt, owner string)
	walk = func(stmts []core.Stmt, owner string) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *core.Assign:
				refExpr(st.E)
			case *core.BinOp:
				refExpr(st.L)
				refExpr(st.R)
			case *core.UnOp:
				refExpr(st.E)
			case *core.Lookup:
				refExpr(st.Obj)
			case *core.DynLookup:
				refExpr(st.Obj)
				refExpr(st.Prop)
			case *core.Update:
				refExpr(st.Obj)
				refExpr(st.Val)
			case *core.DynUpdate:
				refExpr(st.Obj)
				refExpr(st.Prop)
				refExpr(st.Val)
			case *core.If:
				refExpr(st.Cond)
				walk(st.Then, owner)
				walk(st.Else, owner)
			case *core.While:
				refExpr(st.Cond)
				walk(st.Body, owner)
			case *core.ForIn:
				refExpr(st.Obj)
				walk(st.Body, owner)
			case *core.Return:
				if st.E != nil {
					refExpr(st.E)
				}
			case *core.Call:
				// The callee position is a call edge, not an
				// address-taken reference; everything else (receiver,
				// arguments) is a reference — a function passed as an
				// argument may be invoked by an unresolvable callee
				// (the analyzer's callback heuristic).
				addCall(owner, st.CalleeName)
				if v, ok := st.Callee.(core.Var); ok && v.Name != st.CalleeName {
					addCall(owner, v.Name)
				}
				if st.This != nil {
					refExpr(st.This)
				}
				for _, arg := range st.Args {
					refExpr(arg)
				}
			case *core.FuncDef:
				q := p.FileName + ":" + st.Name
				walk(st.Body, q)
			}
		}
	}
	walk(p.Body, p.FileName+":")
}

// solve computes the reachable set and scans reachable bodies for
// detection-relevant operations.
func (a *analyzer) solve() *Result {
	r := &Result{TotalFuncs: len(a.funcs), Reachable: map[string]bool{}}
	r.Fallback = len(a.refs) == 0

	roots := map[string]bool{}
	for q := range a.byQName {
		if r.Fallback || a.refs[q] {
			roots[q] = true
		}
	}
	// Top-level code of every file is always executed.
	topLevels := map[string]bool{}
	for _, f := range a.funcs {
		topLevels[fileOf(f.qname)+":"] = true
	}
	for owner := range a.calls {
		if isTopLevel(owner) {
			topLevels[owner] = true
		}
	}

	// Closure over call edges.
	var queue []string
	for q := range roots {
		r.Reachable[q] = true
		queue = append(queue, q)
	}
	for t := range topLevels {
		queue = append(queue, t)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for callee := range a.calls[cur] {
			if !r.Reachable[callee] {
				r.Reachable[callee] = true
				queue = append(queue, callee)
			}
		}
	}
	for _, f := range a.funcs {
		if !r.Reachable[f.qname] {
			r.PrunedFuncs++
		}
	}

	// Source shape: a reachable function with parameters. (Only
	// exported functions' parameters become sources, and every export
	// flow references the function, so reachable over-approximates.)
	for _, f := range a.funcs {
		if r.Reachable[f.qname] && len(f.def.Params) > 0 {
			r.HasSources = true
			break
		}
	}

	// Dangerous-operation scan over reachable shallow bodies plus all
	// top-level code.
	for _, f := range a.funcs {
		if r.Reachable[f.qname] {
			a.scanDanger(f.def.Body, f.qname, r)
		}
	}
	a.scanTopDanger(r)
	return r
}

func fileOf(qname string) string {
	for i := len(qname) - 1; i >= 0; i-- {
		if qname[i] == ':' {
			return qname[:i]
		}
	}
	return ""
}

func isTopLevel(qname string) bool {
	return len(qname) > 0 && qname[len(qname)-1] == ':'
}

// scanDanger marks sink calls and pollution-shaped statements in one
// function's shallow body (nested functions are scanned when they are
// themselves reachable).
func (a *analyzer) scanDanger(stmts []core.Stmt, owner string, r *Result) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *core.Call:
			if a.isSinkCall(st.CalleeName) {
				r.SinkReachable = true
			}
		case *core.DynUpdate:
			// Creates a V(*) write — the ObjAssignment* shape.
			r.PollutionPossible = true
		case *core.DynLookup:
			if lit, ok := st.Prop.(core.Lit); ok && protoProp(lit.Value) {
				r.PollutionPossible = true
			}
		case *core.Lookup:
			if protoProp(st.Prop) {
				r.PollutionPossible = true
			}
		case *core.Update:
			if protoProp(st.Prop) {
				r.PollutionPossible = true
			}
		case *core.If:
			a.scanDanger(st.Then, owner, r)
			a.scanDanger(st.Else, owner, r)
		case *core.While:
			a.scanDanger(st.Body, owner, r)
		case *core.ForIn:
			a.scanDanger(st.Body, owner, r)
		}
	}
}

// scanTopDanger scans every file's top-level statements.
func (a *analyzer) scanTopDanger(r *Result) {
	for _, p := range a.progs {
		a.scanDanger(p.Body, p.FileName+":", r)
	}
}

func protoProp(p string) bool {
	return p == "__proto__" || p == "constructor" || p == "prototype"
}

// isSinkCall reports whether the callee matches any configured sink,
// including the optional require-as-code-injection sink.
func (a *analyzer) isSinkCall(calleeName string) bool {
	for _, s := range a.cfg.Sinks {
		if queries.MatchSink(calleeName, s.Name) {
			return true
		}
	}
	if a.cfg.RequireAsCodeInjection && queries.MatchSink(calleeName, "require") {
		return true
	}
	return false
}
