// Package reach is the scanner's reachability gate over Core
// JavaScript, in the spirit of SōjiTantei's reachability analysis for
// npm packages: it computes which functions are reachable from the
// package's exported API surface so the scanner can skip MDG
// construction and detection entirely for packages whose reachable
// code cannot produce a finding, and report pruned-function counts
// otherwise.
//
// Roots come from the alias-aware export graph (internal/exports):
// the functions property-reachable from `module.exports` / `exports`
// (through local aliases, object-literal methods and require
// re-export chains), plus top-level code and callbacks escaping to
// unresolvable callees. Only when that pass finds no export evidence
// at all — or could not converge within its budget — does the gate
// fall back to the analyzer's script attack model and treat every
// function as a root. Function names are uniformly file-qualified as
// "file:name" for single- and multi-file packages alike ("file:" is
// top-level code).
package reach

import (
	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/exports"
	"repro/internal/queries"
)

// Result summarizes the reachability gate for one package.
type Result struct {
	// TotalFuncs and PrunedFuncs count the package's functions and how
	// many of them are unreachable from the exported API surface.
	TotalFuncs  int
	PrunedFuncs int
	// Reachable holds the reachable function names, uniformly
	// qualified as "file:name".
	Reachable map[string]bool
	// Fallback records that no export evidence was found, so every
	// function was treated as a root (the analyzer's attack model for
	// plain scripts).
	Fallback bool

	// HasSources reports that reachable code can carry taint sources:
	// a function whose parameters the analyzer would mark (exported,
	// escaped to a callback position, or any function under Fallback)
	// has at least one parameter.
	HasSources bool
	// SinkReachable reports that reachable code calls a configured
	// sink.
	SinkReachable bool
	// PollutionPossible reports that reachable code contains a dynamic
	// property write or a literal prototype access — the shapes the
	// pollution queries match.
	PollutionPossible bool

	// ExportCount counts resolved API-surface entries; EscapedFuncs
	// counts callback-escaped root functions. Converged is false when
	// the export fixpoint was cut short (forcing Fallback).
	ExportCount  int
	EscapedFuncs int
	Converged    bool

	// Exports is the underlying export graph, kept for call-path
	// provenance resolution.
	Exports *exports.Result
}

// CanSkipDetection reports that no detection query can produce a
// finding for this package, so graph construction and the query phase
// can be skipped outright.
func (r *Result) CanSkipDetection() bool {
	return !r.HasSources || (!r.SinkReachable && !r.PollutionPossible)
}

// Analyze runs the gate over the (normalized) programs of one
// package. cfg supplies the sink configuration; nil means
// DefaultConfig.
func Analyze(progs []*core.Program, cfg *queries.Config) *Result {
	return AnalyzeBudget(progs, cfg, nil)
}

// AnalyzeBudget is Analyze with a cooperative budget: the export
// fixpoint charges steps, and a tripped budget degrades the result to
// the keep-everything fallback instead of guessing.
func AnalyzeBudget(progs []*core.Program, cfg *queries.Config, b *budget.Budget) *Result {
	if cfg == nil {
		cfg = queries.DefaultConfig()
	}
	exp := exports.Analyze(progs, b)
	r := &Result{
		TotalFuncs:   len(exp.Order),
		Reachable:    map[string]bool{},
		Fallback:     exp.Fallback,
		ExportCount:  len(exp.Exports),
		EscapedFuncs: len(exp.Escaped),
		Converged:    exp.Converged,
		Exports:      exp,
	}
	//lint:allow budgetloop -- O(#functions) map fill, no nested work
	for _, q := range exp.Order {
		if exp.Reachable(q) {
			r.Reachable[q] = true
		} else {
			r.PrunedFuncs++
		}
	}

	// Source shape: the analyzer marks parameters of exported
	// functions as sources (every function under fallback), and its
	// callback heuristic can wire tainted values into escaped
	// callbacks' parameters.
	//lint:allow budgetloop -- early-exit flag computation over function list
	for _, q := range exp.Order {
		f := exp.Funcs[q]
		if len(f.Def.Params) == 0 {
			continue
		}
		if r.Fallback || exp.Exported[q] || exp.Escaped[q] {
			r.HasSources = true
			break
		}
	}

	// Dangerous-operation scan over reachable shallow bodies plus all
	// top-level code. Deliberately not budget-interruptible: the skip
	// decision (CanSkipDetection) is only sound when computed from a
	// complete scan, and an exhausted budget is observed at the next
	// phase guard anyway.
	sc := &dangerScanner{cfg: cfg}
	//lint:allow budgetloop -- must complete or the gate's skip decision is unsound
	for _, q := range exp.Order {
		if r.Reachable[q] {
			sc.scan(exp.Funcs[q].Def.Body, r)
		}
	}
	//lint:allow budgetloop -- must complete or the gate's skip decision is unsound
	for _, p := range progs {
		sc.scan(p.Body, r)
	}
	return r
}

// dangerScanner marks sink calls and pollution-shaped statements in
// shallow bodies (nested functions are scanned when they are
// themselves reachable).
type dangerScanner struct {
	cfg *queries.Config
}

func (a *dangerScanner) scan(stmts []core.Stmt, r *Result) {
	for _, s := range stmts {
		switch st := s.(type) {
		case *core.Call:
			if a.isSinkCall(st.CalleeName) {
				r.SinkReachable = true
			}
		case *core.DynUpdate:
			// Creates a V(*) write — the ObjAssignment* shape.
			r.PollutionPossible = true
		case *core.DynLookup:
			if lit, ok := st.Prop.(core.Lit); ok && protoProp(lit.Value) {
				r.PollutionPossible = true
			}
		case *core.Lookup:
			if protoProp(st.Prop) {
				r.PollutionPossible = true
			}
		case *core.Update:
			if protoProp(st.Prop) {
				r.PollutionPossible = true
			}
		case *core.If:
			a.scan(st.Then, r)
			a.scan(st.Else, r)
		case *core.While:
			a.scan(st.Body, r)
		case *core.ForIn:
			a.scan(st.Body, r)
		}
	}
}

func protoProp(p string) bool {
	return p == "__proto__" || p == "constructor" || p == "prototype"
}

// isSinkCall reports whether the callee matches any configured sink,
// including the optional require-as-code-injection sink.
func (a *dangerScanner) isSinkCall(calleeName string) bool {
	for _, s := range a.cfg.Sinks {
		if queries.MatchSink(calleeName, s.Name) {
			return true
		}
	}
	if a.cfg.RequireAsCodeInjection && queries.MatchSink(calleeName, "require") {
		return true
	}
	return false
}
