package reach

import (
	"testing"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/queries"
)

func progs(t *testing.T, srcs map[string]string) []*core.Program {
	t.Helper()
	var out []*core.Program
	for name, src := range srcs {
		p, err := normalize.File(src, name)
		if err != nil {
			t.Fatalf("normalize %s: %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

func analyzeOne(t *testing.T, src string) *Result {
	t.Helper()
	return Analyze(progs(t, map[string]string{"index.js": src}), queries.DefaultConfig())
}

func TestDeadFunctionPruned(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function used(c) { exec(c); }
function dead(x) { return x + 1; }
function deadCaller() { dead(2); }
module.exports = used;
`)
	if r.TotalFuncs != 3 {
		t.Fatalf("total = %d", r.TotalFuncs)
	}
	if r.PrunedFuncs != 2 {
		t.Errorf("pruned = %d, want 2 (dead + deadCaller)", r.PrunedFuncs)
	}
	if !r.SinkReachable || r.CanSkipDetection() {
		t.Errorf("exported sink must keep detection: %+v", r)
	}
}

func TestCallChainKeptAlive(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function helper(c) { exec(c); }
function entry(y) { helper(y); }
module.exports = entry;
`)
	if r.PrunedFuncs != 0 {
		t.Errorf("transitively called helper pruned: %+v", r)
	}
	if !r.SinkReachable {
		t.Error("sink in callee must be reachable")
	}
}

func TestSinkInDeadCodeSkipped(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function dead(c) { exec(c); }
function benign(a) { return a + 1; }
module.exports = benign;
`)
	if r.PrunedFuncs != 1 {
		t.Errorf("pruned = %d", r.PrunedFuncs)
	}
	if r.SinkReachable {
		t.Error("sink only in dead code must not be reachable")
	}
	if !r.CanSkipDetection() {
		t.Error("benign export with dead sink must be skippable")
	}
}

// TestFallbackNoExports mirrors the analyzer's attack model: with no
// export evidence every function is treated as a root, so a sink in an
// otherwise-unreferenced function stays in scope.
func TestFallbackNoExports(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function anywhere(c) { exec(c); }
`)
	if !r.Fallback {
		t.Error("script without exports must fall back to all-roots")
	}
	if r.PrunedFuncs != 0 || !r.SinkReachable || r.CanSkipDetection() {
		t.Errorf("fallback must keep everything: %+v", r)
	}
}

func TestBenignSkippable(t *testing.T) {
	r := analyzeOne(t, `
function add(a, b) { return a + b; }
module.exports = add;
`)
	if !r.CanSkipDetection() {
		t.Errorf("pure arithmetic package must be skippable: %+v", r)
	}
}

func TestNoSourcesSkippable(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function status() { exec('git status'); }
module.exports = status;
`)
	if r.HasSources {
		t.Error("parameterless API has no taint sources")
	}
	if !r.CanSkipDetection() {
		t.Error("no sources -> skippable even with a sink present")
	}
}

func TestPollutionShapesKeepDetection(t *testing.T) {
	dyn := analyzeOne(t, `
function set(obj, key, value) { obj[key] = value; }
module.exports = set;
`)
	if !dyn.PollutionPossible || dyn.CanSkipDetection() {
		t.Errorf("dynamic update must keep detection: %+v", dyn)
	}
	lit := analyzeOne(t, `
function poison(v) {
	var o = {};
	o.__proto__.polluted = v;
	return o;
}
module.exports = poison;
`)
	if !lit.PollutionPossible || lit.CanSkipDetection() {
		t.Errorf("literal __proto__ must keep detection: %+v", lit)
	}
}

func TestCallbackReferenceIsRoot(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function cb(c) { exec(c); }
function entry(x) { dispatch(x, cb); }
module.exports = entry;
`)
	if r.Reachable["index.js:cb"] != true {
		t.Error("function passed as argument must be a root")
	}
	if !r.SinkReachable {
		t.Error("callback sink must stay reachable")
	}
}

func TestCrossFileCalls(t *testing.T) {
	r := Analyze(progs(t, map[string]string{
		"index.js": `
var run = require('./runner');
module.exports = function main(c) { return run(c); };
`,
		"runner.js": `
const { exec } = require('child_process');
function runner(c) { exec(c); }
module.exports = runner;
`,
	}), queries.DefaultConfig())
	if r.SinkReachable != true {
		t.Errorf("cross-file exported sink must be reachable: %+v", r)
	}
	if r.CanSkipDetection() {
		t.Error("must not skip")
	}
}

func TestNilConfig(t *testing.T) {
	r := Analyze(progs(t, map[string]string{"a.js": "module.exports = 1;"}), nil)
	if r.TotalFuncs != 0 || !r.CanSkipDetection() {
		t.Errorf("trivial module: %+v", r)
	}
}

// --- export-graph gate: uniform qualification and alias precision ---

func TestUniformFileQualification(t *testing.T) {
	// Single- and multi-file packages must key Reachable identically:
	// always "file:name". A same-named function in a second file must
	// not ride along on the exported one's name.
	single := analyzeOne(t, `
function run(c) { return c; }
module.exports = run;
`)
	if !single.Reachable["index.js:run"] {
		t.Fatalf("single-file keys must be file-qualified: %+v", single.Reachable)
	}
	for q := range single.Reachable {
		if q == "run" {
			t.Fatal("bare (unqualified) function name leaked into Reachable")
		}
	}

	multi := Analyze(progs(t, map[string]string{
		"index.js": `
function run(c) { return c; }
module.exports = run;
`,
		"other.js": `
const { exec } = require('child_process');
function run(c) { exec(c); }
`,
	}), queries.DefaultConfig())
	if !multi.Reachable["index.js:run"] {
		t.Fatal("exported index.js:run must be reachable")
	}
	if multi.Reachable["other.js:run"] {
		t.Error("same-named dead function in another file must not inherit reachability")
	}
	if multi.PrunedFuncs != 1 {
		t.Errorf("pruned = %d, want 1 (other.js:run)", multi.PrunedFuncs)
	}
}

func TestDeadShadowPrunedByExportGraph(t *testing.T) {
	// A vulnerable-looking function shadowed by a benign export of a
	// different function: the by-name gate kept it alive (its name is
	// referenced), the export graph prunes it.
	r := analyzeOne(t, `
const { exec } = require('child_process');
function attack(c) { exec(c); }
function safe(x) { return x; }
var table = { unused: attack };
module.exports = safe;
`)
	if r.Fallback {
		t.Fatalf("export evidence present: %+v", r)
	}
	if r.Reachable["index.js:attack"] {
		t.Error("attack is stored but never exported nor called; must be pruned")
	}
	if r.PrunedFuncs != 1 {
		t.Errorf("pruned = %d, want 1", r.PrunedFuncs)
	}
	if !r.CanSkipDetection() {
		t.Errorf("benign export with dead sink must be skippable: %+v", r)
	}
}

func TestAliasedExportKeepsMethod(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function fire(c) { exec(c); }
var api = module.exports;
api.fire = fire;
`)
	if r.Fallback {
		t.Fatalf("aliased export must count as evidence: %+v", r)
	}
	if !r.Reachable["index.js:fire"] || !r.SinkReachable || r.CanSkipDetection() {
		t.Errorf("aliased exported sink must keep detection: %+v", r)
	}
}

func TestExportCounters(t *testing.T) {
	r := analyzeOne(t, `
function a(x) { return x; }
function b(y) { return y; }
module.exports = { a: a, b: b };
`)
	if r.ExportCount != 2 {
		t.Errorf("ExportCount = %d, want 2", r.ExportCount)
	}
	if !r.Converged {
		t.Error("tiny package must converge")
	}
	if r.Exports == nil {
		t.Fatal("Result must carry the export graph for provenance")
	}
	if r.Exports.EntryName("index.js:a") != "exports.a" {
		t.Errorf("entry name = %q", r.Exports.EntryName("index.js:a"))
	}
}

func TestBudgetAbortKeepsEverything(t *testing.T) {
	b := budget.New(budget.Limits{MaxSteps: 2})
	r := AnalyzeBudget(progs(t, map[string]string{"index.js": `
function a(x) { return x; }
function dead(y) { return y; }
module.exports = a;
`}), queries.DefaultConfig(), b)
	if !r.Fallback || r.PrunedFuncs != 0 {
		t.Errorf("budget abort must degrade to keep-everything: %+v", r)
	}
}
