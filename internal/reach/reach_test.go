package reach

import (
	"testing"

	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/queries"
)

func progs(t *testing.T, srcs map[string]string) []*core.Program {
	t.Helper()
	var out []*core.Program
	for name, src := range srcs {
		p, err := normalize.File(src, name)
		if err != nil {
			t.Fatalf("normalize %s: %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

func analyzeOne(t *testing.T, src string) *Result {
	t.Helper()
	return Analyze(progs(t, map[string]string{"index.js": src}), queries.DefaultConfig())
}

func TestDeadFunctionPruned(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function used(c) { exec(c); }
function dead(x) { return x + 1; }
function deadCaller() { dead(2); }
module.exports = used;
`)
	if r.TotalFuncs != 3 {
		t.Fatalf("total = %d", r.TotalFuncs)
	}
	if r.PrunedFuncs != 2 {
		t.Errorf("pruned = %d, want 2 (dead + deadCaller)", r.PrunedFuncs)
	}
	if !r.SinkReachable || r.CanSkipDetection() {
		t.Errorf("exported sink must keep detection: %+v", r)
	}
}

func TestCallChainKeptAlive(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function helper(c) { exec(c); }
function entry(y) { helper(y); }
module.exports = entry;
`)
	if r.PrunedFuncs != 0 {
		t.Errorf("transitively called helper pruned: %+v", r)
	}
	if !r.SinkReachable {
		t.Error("sink in callee must be reachable")
	}
}

func TestSinkInDeadCodeSkipped(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function dead(c) { exec(c); }
function benign(a) { return a + 1; }
module.exports = benign;
`)
	if r.PrunedFuncs != 1 {
		t.Errorf("pruned = %d", r.PrunedFuncs)
	}
	if r.SinkReachable {
		t.Error("sink only in dead code must not be reachable")
	}
	if !r.CanSkipDetection() {
		t.Error("benign export with dead sink must be skippable")
	}
}

// TestFallbackNoExports mirrors the analyzer's attack model: with no
// export evidence every function is treated as a root, so a sink in an
// otherwise-unreferenced function stays in scope.
func TestFallbackNoExports(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function anywhere(c) { exec(c); }
`)
	if !r.Fallback {
		t.Error("script without exports must fall back to all-roots")
	}
	if r.PrunedFuncs != 0 || !r.SinkReachable || r.CanSkipDetection() {
		t.Errorf("fallback must keep everything: %+v", r)
	}
}

func TestBenignSkippable(t *testing.T) {
	r := analyzeOne(t, `
function add(a, b) { return a + b; }
module.exports = add;
`)
	if !r.CanSkipDetection() {
		t.Errorf("pure arithmetic package must be skippable: %+v", r)
	}
}

func TestNoSourcesSkippable(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function status() { exec('git status'); }
module.exports = status;
`)
	if r.HasSources {
		t.Error("parameterless API has no taint sources")
	}
	if !r.CanSkipDetection() {
		t.Error("no sources -> skippable even with a sink present")
	}
}

func TestPollutionShapesKeepDetection(t *testing.T) {
	dyn := analyzeOne(t, `
function set(obj, key, value) { obj[key] = value; }
module.exports = set;
`)
	if !dyn.PollutionPossible || dyn.CanSkipDetection() {
		t.Errorf("dynamic update must keep detection: %+v", dyn)
	}
	lit := analyzeOne(t, `
function poison(v) {
	var o = {};
	o.__proto__.polluted = v;
	return o;
}
module.exports = poison;
`)
	if !lit.PollutionPossible || lit.CanSkipDetection() {
		t.Errorf("literal __proto__ must keep detection: %+v", lit)
	}
}

func TestCallbackReferenceIsRoot(t *testing.T) {
	r := analyzeOne(t, `
const { exec } = require('child_process');
function cb(c) { exec(c); }
function entry(x) { dispatch(x, cb); }
module.exports = entry;
`)
	if r.Reachable["index.js:cb"] != true {
		t.Error("function passed as argument must be a root")
	}
	if !r.SinkReachable {
		t.Error("callback sink must stay reachable")
	}
}

func TestCrossFileCalls(t *testing.T) {
	r := Analyze(progs(t, map[string]string{
		"index.js": `
var run = require('./runner');
module.exports = function main(c) { return run(c); };
`,
		"runner.js": `
const { exec } = require('child_process');
function runner(c) { exec(c); }
module.exports = runner;
`,
	}), queries.DefaultConfig())
	if r.SinkReachable != true {
		t.Errorf("cross-file exported sink must be reachable: %+v", r)
	}
	if r.CanSkipDetection() {
		t.Error("must not skip")
	}
}

func TestNilConfig(t *testing.T) {
	r := Analyze(progs(t, map[string]string{"a.js": "module.exports = 1;"}), nil)
	if r.TotalFuncs != 0 || !r.CanSkipDetection() {
		t.Errorf("trivial module: %+v", r)
	}
}
