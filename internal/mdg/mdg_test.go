package mdg

import (
	"strings"
	"testing"
	"testing/quick"
)

func newObj(g *Graph, role string, site int) Loc {
	return g.Alloc(role, site, 0, "", KindObject, role, site)
}

func TestAllocDeterministic(t *testing.T) {
	g := New()
	l1 := g.Alloc("obj", 7, 0, "", KindObject, "x", 1)
	l2 := g.Alloc("obj", 7, 0, "", KindObject, "x", 1)
	if l1 != l2 {
		t.Fatalf("same key allocated different locations: %d vs %d", l1, l2)
	}
	l3 := g.Alloc("obj", 8, 0, "", KindObject, "x", 1)
	if l3 == l1 {
		t.Fatal("different site must allocate a new location")
	}
	if g.NumNodes() != 2 {
		t.Fatalf("nodes = %d, want 2", g.NumNodes())
	}
}

func TestNodesCacheInvalidation(t *testing.T) {
	g := New()
	newObj(g, "a", 1)
	first := g.Nodes()
	if len(first) != 1 {
		t.Fatalf("nodes = %d", len(first))
	}
	if &g.Nodes()[0] != &first[0] {
		t.Error("repeated Nodes() must return the cached slice")
	}
	newObj(g, "b", 2)
	second := g.Nodes()
	if len(second) != 2 {
		t.Fatalf("cache not invalidated: %d nodes", len(second))
	}
	for i := 1; i < len(second); i++ {
		if second[i-1].Loc >= second[i].Loc {
			t.Fatal("Nodes() not in ascending Loc order")
		}
	}
	calls := g.NodesOfKind(KindCall)
	if len(calls) != 0 {
		t.Fatalf("NodesOfKind(KindCall) = %d on object-only graph", len(calls))
	}
	if got := g.NodesOfKind(KindObject); len(got) != 2 {
		t.Fatalf("NodesOfKind(KindObject) = %d", len(got))
	}
}

func TestAddEdgeDedup(t *testing.T) {
	g := New()
	a := newObj(g, "a", 1)
	b := newObj(g, "b", 2)
	if !g.AddDep(a, b) {
		t.Fatal("first AddDep should report change")
	}
	if g.AddDep(a, b) {
		t.Fatal("duplicate AddDep should report no change")
	}
	if g.NumEdges() != 1 {
		t.Fatalf("edges = %d", g.NumEdges())
	}
}

func TestAddEdgeUnknownNodePanics(t *testing.T) {
	g := New()
	a := newObj(g, "a", 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown node")
		}
	}()
	g.AddEdge(Edge{From: a, To: Loc(999), Type: Dep})
}

func TestPropTargetAndStarTargets(t *testing.T) {
	g := New()
	o := newObj(g, "o", 1)
	v := newObj(g, "v", 2)
	s := newObj(g, "s", 3)
	g.AddEdge(Edge{From: o, To: v, Type: Prop, Prop: "cmd"})
	g.AddEdge(Edge{From: o, To: s, Type: PropStar})
	if got := g.PropTarget(o, "cmd"); got != v {
		t.Errorf("PropTarget = %d, want %d", got, v)
	}
	if got := g.PropTarget(o, "other"); got != NoLoc {
		t.Errorf("PropTarget(other) = %d, want NoLoc", got)
	}
	st := g.StarTargets(o)
	if len(st) != 1 || st[0] != s {
		t.Errorf("StarTargets = %v", st)
	}
}

// TestLookupMotivatingExample reproduces the §2.2 line-7 lookup: reading
// `options.commit` where options has versions o5 →V(*) o6 →V(cmd) o7 must
// return the dynamic property value (may shadow commit) and lazily create
// `commit` on the initial version o5.
func TestLookupMotivatingExample(t *testing.T) {
	g := New()
	o5 := newObj(g, "o5", 5)
	o6 := newObj(g, "o6", 6)
	o7 := newObj(g, "o7", 7)
	o4 := newObj(g, "o4", 4) // url value stored via dynamic property
	o8 := newObj(g, "o8", 8) // cmd value
	g.AddEdge(Edge{From: o5, To: o6, Type: VerStar})
	g.AddEdge(Edge{From: o6, To: o7, Type: Ver, Prop: "cmd"})
	g.AddEdge(Edge{From: o6, To: o4, Type: PropStar})
	g.AddEdge(Edge{From: o7, To: o8, Type: Prop, Prop: "cmd"})

	// cmd resolves directly on o7.
	res := g.Lookup(o7, "cmd")
	if len(res.Values) != 1 || res.Values[0] != o8 || len(res.Oldest) != 0 {
		t.Fatalf("cmd lookup = %+v", res)
	}

	// commit walks the chain: picks up o4 (dynamic, may shadow) and
	// bottoms out at o5.
	res = g.Lookup(o7, "commit")
	if !hasLoc(res.Values, o4) {
		t.Errorf("commit lookup should include dynamic value o4: %+v", res)
	}
	if len(res.Oldest) != 1 || res.Oldest[0] != o5 {
		t.Errorf("oldest = %v, want [o5]", res.Oldest)
	}

	// AP lazily creates commit on o5 and returns both values.
	vals := g.AP(9, []Loc{o7}, "commit", 7)
	if len(vals) != 2 {
		t.Fatalf("AP values = %v", vals)
	}
	o9 := g.PropTarget(o5, "commit")
	if o9 == NoLoc {
		t.Fatal("AP should create commit property on the oldest version")
	}
	if !hasLoc(vals, o9) || !hasLoc(vals, o4) {
		t.Fatalf("AP values = %v, want {o9, o4}", vals)
	}

	// Second AP is idempotent.
	before := g.Snap()
	g.AP(9, []Loc{o7}, "commit", 7)
	if g.Snap() != before {
		t.Fatal("repeated AP must not grow the graph")
	}
}

func TestLookupShadowing(t *testing.T) {
	// Newest version defines p: older definitions are shadowed.
	g := New()
	v1 := newObj(g, "v1", 1)
	v2 := newObj(g, "v2", 2)
	old := newObj(g, "old", 3)
	cur := newObj(g, "cur", 4)
	g.AddEdge(Edge{From: v1, To: old, Type: Prop, Prop: "p"})
	g.AddEdge(Edge{From: v1, To: v2, Type: Ver, Prop: "p"})
	g.AddEdge(Edge{From: v2, To: cur, Type: Prop, Prop: "p"})
	res := g.Lookup(v2, "p")
	if len(res.Values) != 1 || res.Values[0] != cur {
		t.Fatalf("lookup = %+v, want only cur", res)
	}
}

func TestLookupCyclicVersionChain(t *testing.T) {
	// Loops produce cyclic version chains (§5.5); Lookup must terminate.
	g := New()
	a := newObj(g, "a", 1)
	b := newObj(g, "b", 2)
	g.AddEdge(Edge{From: a, To: b, Type: VerStar})
	g.AddEdge(Edge{From: b, To: a, Type: VerStar})
	res := g.Lookup(a, "q")
	_ = res // must not hang; both nodes are visited
}

func TestAPStar(t *testing.T) {
	g := New()
	o := newObj(g, "o", 1)
	dep := newObj(g, "dep", 2)
	vals := g.APStar(3, []Loc{o}, []Loc{dep}, 4)
	if len(vals) != 1 {
		t.Fatalf("vals = %v", vals)
	}
	star := vals[0]
	if !g.HasEdge(Edge{From: o, To: star, Type: PropStar}) {
		t.Error("missing P(*) edge")
	}
	if !g.HasEdge(Edge{From: dep, To: star, Type: Dep}) {
		t.Error("missing D edge from the property-name dependency")
	}
	// Second APStar with a new dependency reuses the property node.
	dep2 := newObj(g, "dep2", 5)
	vals2 := g.APStar(6, []Loc{o}, []Loc{dep2}, 7)
	if len(vals2) != 1 || vals2[0] != star {
		t.Fatalf("vals2 = %v, want reuse of %d", vals2, star)
	}
	if !g.HasEdge(Edge{From: dep2, To: star, Type: Dep}) {
		t.Error("missing D edge from second dependency")
	}
}

func TestNVCreatesVersionAndRewritesStore(t *testing.T) {
	g := New()
	o := newObj(g, "o", 1)
	st := NewStore(nil)
	st.SetLocal("x", []Loc{o})
	st.SetLocal("y", []Loc{o})
	repl := g.NV(2, []Loc{o}, "cmd", 3)
	st.ReplaceAll(repl)
	nv := repl[o]
	if nv == o {
		t.Fatal("NV should create a new version")
	}
	if !g.HasEdge(Edge{From: o, To: nv, Type: Ver, Prop: "cmd"}) {
		t.Error("missing V(cmd) edge")
	}
	// Both variables now point at the new version (§2.2 line 5).
	if got := st.Get("x"); len(got) != 1 || got[0] != nv {
		t.Errorf("x = %v", got)
	}
	if got := st.Get("y"); len(got) != 1 || got[0] != nv {
		t.Errorf("y = %v", got)
	}
}

func TestNVDeterministicPerSite(t *testing.T) {
	// Same site + same origin yields the same version (loop convergence).
	g := New()
	o := newObj(g, "o", 1)
	r1 := g.NV(2, []Loc{o}, "p", 3)
	r2 := g.NV(2, []Loc{o}, "p", 3)
	if r1[o] != r2[o] {
		t.Fatal("NV must be deterministic per (site, origin)")
	}
}

func TestNVStar(t *testing.T) {
	g := New()
	o := newObj(g, "o", 1)
	dep := newObj(g, "dep", 2)
	repl := g.NVStar(3, []Loc{o}, []Loc{dep}, 4)
	nv := repl[o]
	if !g.HasEdge(Edge{From: o, To: nv, Type: VerStar}) {
		t.Error("missing V(*) edge")
	}
	if !g.HasEdge(Edge{From: dep, To: nv, Type: Dep}) {
		t.Error("missing D edge onto the new version")
	}
}

func TestAllPropValues(t *testing.T) {
	g := New()
	v1 := newObj(g, "v1", 1)
	v2 := newObj(g, "v2", 2)
	pa := newObj(g, "pa", 3)
	pb := newObj(g, "pb", 4)
	g.AddEdge(Edge{From: v1, To: pa, Type: Prop, Prop: "a"})
	g.AddEdge(Edge{From: v1, To: v2, Type: Ver, Prop: "b"})
	g.AddEdge(Edge{From: v2, To: pb, Type: Prop, Prop: "b"})
	vals := g.AllPropValues(v2)
	if !hasLoc(vals, pa) || !hasLoc(vals, pb) {
		t.Fatalf("vals = %v", vals)
	}
}

func TestLeqLattice(t *testing.T) {
	g := New()
	a := newObj(g, "a", 1)
	b := newObj(g, "b", 2)
	h := New()
	ha := newObj(h, "a", 1)
	hb := newObj(h, "b", 2)
	if !Leq(g, h) || !Leq(h, g) {
		t.Fatal("empty-edge graphs should be mutually ⊑")
	}
	g.AddDep(a, b)
	if Leq(g, h) {
		t.Fatal("g has an edge h lacks")
	}
	h.AddDep(ha, hb)
	h.AddEdge(Edge{From: ha, To: hb, Type: Prop, Prop: "p"})
	if !Leq(g, h) {
		t.Fatal("g ⊑ h should hold")
	}
	if Leq(h, g) {
		t.Fatal("h ⋢ g")
	}
}

func TestEdgeLabels(t *testing.T) {
	cases := map[Edge]string{
		{Type: Dep}:               "D",
		{Type: Prop, Prop: "cmd"}: "P(cmd)",
		{Type: PropStar}:          "P(*)",
		{Type: Ver, Prop: "main"}: "V(main)",
		{Type: VerStar}:           "V(*)",
	}
	for e, want := range cases {
		if got := e.Label(); got != want {
			t.Errorf("Label(%v) = %q, want %q", e.Type, got, want)
		}
	}
}

func TestDOTAndString(t *testing.T) {
	g := New()
	a := newObj(g, "a", 1)
	b := newObj(g, "b", 2)
	g.AddDep(a, b)
	if !strings.Contains(g.DOT(), "digraph MDG") {
		t.Error("DOT output malformed")
	}
	if !strings.Contains(g.String(), "-D->") {
		t.Errorf("String output: %q", g.String())
	}
}

// Property: AP is monotone and idempotent — running it twice yields the
// same graph as running it once, and never removes edges.
func TestAPIdempotentQuick(t *testing.T) {
	f := func(sites []uint8) bool {
		g := New()
		base := newObj(g, "base", 0)
		locs := []Loc{base}
		for _, s := range sites {
			site := int(s%16) + 1
			vals := g.AP(site, locs, "p", 1)
			snap := g.Snap()
			vals2 := g.AP(site, locs, "p", 1)
			if g.Snap() != snap {
				return false
			}
			if len(vals) != len(vals2) {
				return false
			}
			locs = append(locs, vals...)
			if len(locs) > 12 {
				locs = locs[:12]
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: edge insertion is monotone — NumEdges never decreases and
// Leq(before, after) always holds.
func TestMonotoneGrowthQuick(t *testing.T) {
	f := func(ops []uint16) bool {
		g := New()
		var locs []Loc
		for i := 0; i < 8; i++ {
			locs = append(locs, newObj(g, "n", i))
		}
		prev := 0
		for _, op := range ops {
			from := locs[int(op)%len(locs)]
			to := locs[int(op>>4)%len(locs)]
			typ := EdgeType(int(op>>8) % 5)
			g.AddEdge(Edge{From: from, To: to, Type: typ, Prop: propFor(typ)})
			if g.NumEdges() < prev {
				return false
			}
			prev = g.NumEdges()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func propFor(t EdgeType) string {
	if t == Prop || t == Ver {
		return "p"
	}
	return ""
}

func hasLoc(ls []Loc, l Loc) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}
