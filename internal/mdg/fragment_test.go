package mdg

import "testing"

// buildSample constructs a small graph exercising every node kind and
// edge type, with location-bearing metadata on call and func nodes.
func buildSample(tag string) *Graph {
	g := New()
	g.SetCurrentFile(tag + ".js")
	obj := g.Alloc("obj", 1, 0, "", KindObject, "o", 1)
	fn := g.Alloc("func", 2, 0, "", KindFunc, "f", 2)
	param := g.Alloc("param", 3, 0, "", KindParam, "p", 2)
	call := g.Alloc("call", 4, 0, "", KindCall, "f()", 3)
	lit := g.Alloc("lit", 5, 0, "", KindLiteral, "\"x\"", 3)
	fnode := g.Node(fn)
	fnode.FuncName = "f"
	fnode.ParamLocs = []Loc{param}
	fnode.RetLoc = obj
	cnode := g.Node(call)
	cnode.CallName = "f"
	cnode.CallArgs = [][]Loc{{lit, param}}
	g.AddEdge(Edge{From: param, To: call, Type: Dep})
	g.AddEdge(Edge{From: obj, To: lit, Type: Prop, Prop: "k"})
	g.AddEdge(Edge{From: obj, To: param, Type: PropStar})
	g.AddEdge(Edge{From: obj, To: call, Type: Ver, Prop: "k"})
	g.AddEdge(Edge{From: obj, To: fn, Type: VerStar})
	return g
}

// A stitch of a single fragment must reproduce the original graph
// exactly (locations included, since the first fragment's offset is
// zero).
func TestStitchSingleFragmentIdentity(t *testing.T) {
	g := buildSample("a")
	f := SnapshotFragment(g)
	st, remaps := Stitch(f)
	if st.String() != g.String() {
		t.Fatalf("stitched graph differs:\n%s\n--- want ---\n%s", st.String(), g.String())
	}
	if st.NumNodes() != g.NumNodes() || st.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: %d/%d vs %d/%d", st.NumNodes(), st.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for old, nw := range remaps[0] {
		if old != nw {
			t.Fatalf("single-fragment stitch renumbered %v -> %v", old, nw)
		}
		a, b := g.Node(old), st.Node(nw)
		if a.Kind != b.Kind || a.Label != b.Label || a.File != b.File || a.Line != b.Line {
			t.Fatalf("node %v metadata differs", old)
		}
	}
}

// Fragments must be value snapshots: mutating the source graph after
// SnapshotFragment must not leak into the fragment.
func TestFragmentIsImmutableSnapshot(t *testing.T) {
	g := buildSample("a")
	f := SnapshotFragment(g)
	n0, e0 := f.NumNodes(), f.NumEdges()
	// Grow the source graph and mutate shared-looking metadata.
	extra := g.Alloc("obj", 99, 0, "", KindObject, "late", 9)
	g.AddDep(extra, Loc(1))
	for _, n := range g.Nodes() {
		if n.Kind == KindCall && len(n.CallArgs) > 0 {
			n.CallArgs[0][0] = extra
		}
	}
	if f.NumNodes() != n0 || f.NumEdges() != e0 {
		t.Fatalf("fragment grew with source graph: %d/%d vs %d/%d", f.NumNodes(), f.NumEdges(), n0, e0)
	}
	st, _ := Stitch(f)
	for _, n := range st.NodesOfKind(KindCall) {
		for _, arg := range n.CallArgs {
			for _, l := range arg {
				if l == extra {
					t.Fatalf("fragment call args alias the mutated source graph")
				}
			}
		}
	}
}

// Stitching two fragments must keep them disjoint, preserve all edges,
// and remap every location-bearing field consistently.
func TestStitchTwoFragmentsDisjoint(t *testing.T) {
	ga, gb := buildSample("a"), buildSample("b")
	fa, fb := SnapshotFragment(ga), SnapshotFragment(gb)
	st, remaps := Stitch(fa, fb)
	if st.NumNodes() != fa.NumNodes()+fb.NumNodes() {
		t.Fatalf("node count %d, want %d", st.NumNodes(), fa.NumNodes()+fb.NumNodes())
	}
	if st.NumEdges() != fa.NumEdges()+fb.NumEdges() {
		t.Fatalf("edge count %d, want %d", st.NumEdges(), fa.NumEdges()+fb.NumEdges())
	}
	seen := map[Loc]bool{}
	for i, remap := range remaps {
		for _, nw := range remap {
			if seen[nw] {
				t.Fatalf("fragment %d maps onto an occupied location %v", i, nw)
			}
			seen[nw] = true
			if st.Node(nw) == nil {
				t.Fatalf("remap target %v missing from stitched graph", nw)
			}
		}
	}
	// Second fragment's metadata must point inside its own image.
	for old, nw := range remaps[1] {
		a, b := gb.Node(old), st.Node(nw)
		if a.Kind != b.Kind || a.File != b.File {
			t.Fatalf("fragment-b node %v metadata differs", old)
		}
		if a.Kind == KindFunc {
			if len(a.ParamLocs) != len(b.ParamLocs) {
				t.Fatalf("param count differs")
			}
			for j := range a.ParamLocs {
				if remaps[1][a.ParamLocs[j]] != b.ParamLocs[j] {
					t.Fatalf("param loc not remapped consistently")
				}
			}
			if remaps[1][a.RetLoc] != b.RetLoc {
				t.Fatalf("ret loc not remapped consistently")
			}
		}
	}
	// Determinism: stitching the same fragments again yields the same
	// rendering.
	st2, _ := Stitch(fa, fb)
	if st.String() != st2.String() {
		t.Fatalf("stitch is not deterministic")
	}
}

// Graph operations (version-chain lookup) must behave identically on
// the stitched image of a fragment.
func TestStitchPreservesLookup(t *testing.T) {
	g := New()
	o := g.Alloc("obj", 1, 0, "", KindObject, "o", 1)
	v := g.Alloc("ver", 2, 0, "p", KindObject, "o", 2)
	val := g.Alloc("lit", 3, 0, "", KindLiteral, "1", 2)
	g.AddEdge(Edge{From: o, To: v, Type: Ver, Prop: "p"})
	g.AddEdge(Edge{From: v, To: val, Type: Prop, Prop: "p"})

	pad := buildSample("pad") // force a nonzero offset for g's image
	st, remaps := Stitch(SnapshotFragment(pad), SnapshotFragment(g))
	res := st.Lookup(remaps[1][v], "p")
	if len(res.Values) != 1 || res.Values[0] != remaps[1][val] {
		t.Fatalf("stitched lookup = %v, want [%v]", res.Values, remaps[1][val])
	}
}
