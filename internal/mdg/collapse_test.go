package mdg

import "testing"

func TestCollapseLinearChain(t *testing.T) {
	g := New()
	v1 := newObj(g, "v1", 1)
	v2 := newObj(g, "v2", 2)
	v3 := newObj(g, "v3", 3)
	oldVal := newObj(g, "old", 4)
	newVal := newObj(g, "new", 5)
	other := newObj(g, "other", 6)
	g.AddEdge(Edge{From: v1, To: oldVal, Type: Prop, Prop: "cmd"})
	g.AddEdge(Edge{From: v1, To: v2, Type: Ver, Prop: "cmd"})
	g.AddEdge(Edge{From: v2, To: newVal, Type: Prop, Prop: "cmd"})
	g.AddEdge(Edge{From: v2, To: v3, Type: Ver, Prop: "extra"})
	g.AddEdge(Edge{From: v3, To: other, Type: Prop, Prop: "extra"})

	c := g.Collapse()
	// All chain members share the newest representative.
	rep := c.Rep[v1]
	if rep != v3 || c.Rep[v2] != v3 || c.Rep[v3] != v3 {
		t.Fatalf("reps = %d/%d/%d, want all %d", c.Rep[v1], c.Rep[v2], c.Rep[v3], v3)
	}
	props := c.Props[rep]
	// cmd: the newest write wins.
	if got := props["cmd"]; len(got) != 1 || got[0] != newVal {
		t.Errorf("cmd = %v, want [%d]", got, newVal)
	}
	if got := props["extra"]; len(got) != 1 || got[0] != other {
		t.Errorf("extra = %v", got)
	}
}

func TestCollapseStarAccumulates(t *testing.T) {
	g := New()
	v1 := newObj(g, "v1", 1)
	v2 := newObj(g, "v2", 2)
	a := newObj(g, "a", 3)
	b := newObj(g, "b", 4)
	g.AddEdge(Edge{From: v1, To: a, Type: PropStar})
	g.AddEdge(Edge{From: v1, To: v2, Type: VerStar})
	g.AddEdge(Edge{From: v2, To: b, Type: PropStar})
	c := g.Collapse()
	star := c.Props[c.Rep[v1]]["*"]
	if len(star) != 2 {
		t.Fatalf("star = %v, want both dynamic values", star)
	}
}

func TestCollapseDepsRetargeted(t *testing.T) {
	g := New()
	src := newObj(g, "src", 1)
	v1 := newObj(g, "v1", 2)
	v2 := newObj(g, "v2", 3)
	g.AddEdge(Edge{From: v1, To: v2, Type: Ver, Prop: "p"})
	g.AddEdge(Edge{From: src, To: v1, Type: Dep})
	c := g.Collapse()
	deps := c.Deps[c.Rep[src]]
	if len(deps) != 1 || deps[0] != v2 {
		t.Fatalf("deps = %v, want retargeted to newest version %d", deps, v2)
	}
}

func TestCollapseCycleTerminates(t *testing.T) {
	// §5.5 cyclic chains must collapse without hanging.
	g := New()
	a := newObj(g, "a", 1)
	b := newObj(g, "b", 2)
	g.AddEdge(Edge{From: a, To: b, Type: VerStar})
	g.AddEdge(Edge{From: b, To: a, Type: VerStar})
	c := g.Collapse()
	if c.Rep[a] != c.Rep[b] {
		t.Fatalf("cycle members must share a representative: %d vs %d", c.Rep[a], c.Rep[b])
	}
}

func TestCollapseUnversionedNodeIsItsOwnRep(t *testing.T) {
	g := New()
	o := newObj(g, "o", 1)
	c := g.Collapse()
	if c.Rep[o] != o {
		t.Fatalf("rep = %d", c.Rep[o])
	}
}
