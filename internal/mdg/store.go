package mdg

import (
	"fmt"
	"sort"
	"strings"
)

// Store is the abstract variable store ρ̂ : X → ℘(L̂) (§3.2), mapping
// program variables to the sets of abstract locations they may denote.
// Stores form a lattice under pointwise subset inclusion.
type Store struct {
	m      map[string][]Loc
	parent *Store // lexical parent scope (closures); reads fall through
}

// NewStore returns an empty store with an optional parent scope.
func NewStore(parent *Store) *Store {
	return &Store{m: make(map[string][]Loc), parent: parent}
}

// Get returns the locations bound to x, consulting parent scopes.
func (s *Store) Get(x string) []Loc {
	if ls, ok := s.m[x]; ok {
		return ls
	}
	if s.parent != nil {
		return s.parent.Get(x)
	}
	return nil
}

// Has reports whether x is bound in this scope or any parent.
func (s *Store) Has(x string) bool {
	if _, ok := s.m[x]; ok {
		return true
	}
	return s.parent != nil && s.parent.Has(x)
}

// Set strongly updates x in the innermost scope that already binds it
// (assignment semantics), defaulting to this scope.
func (s *Store) Set(x string, ls []Loc) {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.m[x]; ok {
			sc.m[x] = dedupe(append([]Loc(nil), ls...))
			return
		}
	}
	s.m[x] = dedupe(append([]Loc(nil), ls...))
}

// SetLocal binds x in this scope regardless of outer bindings
// (declaration semantics).
func (s *Store) SetLocal(x string, ls []Loc) {
	s.m[x] = dedupe(append([]Loc(nil), ls...))
}

// Weaken adds locations to x's binding without removing existing ones
// (weak update; used at control-flow joins).
func (s *Store) Weaken(x string, ls []Loc) {
	cur := s.Get(x)
	s.Set(x, append(append([]Loc(nil), cur...), ls...))
}

// ReplaceAll substitutes old-version locations with their new versions
// in every binding of this scope chain; used by NV/NV* (§3.2: "the
// updated store with occurrences of older version locations replaced by
// their corresponding newer versions").
func (s *Store) ReplaceAll(repl map[Loc]Loc) {
	for sc := s; sc != nil; sc = sc.parent {
		for x, ls := range sc.m {
			changed := false
			out := make([]Loc, len(ls))
			for i, l := range ls {
				if nl, ok := repl[l]; ok && nl != l {
					out[i] = nl
					changed = true
				} else {
					out[i] = l
				}
			}
			if changed {
				sc.m[x] = dedupe(out)
			}
		}
	}
}

// WeakReplace adds the new versions alongside the old ones in every
// binding; used when a property update targets several abstract objects
// and it is unknown which one a given variable denotes (weak update).
func (s *Store) WeakReplace(repl map[Loc]Loc) {
	for sc := s; sc != nil; sc = sc.parent {
		for x, ls := range sc.m {
			var add []Loc
			for _, l := range ls {
				if nl, ok := repl[l]; ok && nl != l {
					add = append(add, nl)
				}
			}
			if add != nil {
				sc.m[x] = dedupe(append(append([]Loc(nil), ls...), add...))
			}
		}
	}
}

// Copy returns a deep copy of this scope (sharing the parent chain), for
// branch-local analysis.
func (s *Store) Copy() *Store {
	c := NewStore(s.parent)
	for x, ls := range s.m {
		c.m[x] = append([]Loc(nil), ls...)
	}
	return c
}

// Join merges o into s pointwise (s ⊔ o). Bindings present in only one
// store are kept as-is.
func (s *Store) Join(o *Store) {
	for x, ls := range o.m {
		cur := s.m[x]
		s.m[x] = dedupe(append(append([]Loc(nil), cur...), ls...))
	}
}

// Leq reports s ⊑ o on the local scope: dom(s) ⊆ dom(o) and pointwise
// subset.
func (s *Store) Leq(o *Store) bool {
	for x, ls := range s.m {
		os, ok := o.m[x]
		if !ok {
			return false
		}
		set := make(map[Loc]struct{}, len(os))
		for _, l := range os {
			set[l] = struct{}{}
		}
		for _, l := range ls {
			if _, ok := set[l]; !ok {
				return false
			}
		}
	}
	return true
}

// Vars returns the variables bound in the local scope, sorted.
func (s *Store) Vars() []string {
	out := make([]string, 0, len(s.m))
	for x := range s.m {
		out = append(out, x)
	}
	sort.Strings(out)
	return out
}

// Snapshot returns a canonical rendering of the local bindings; equal
// snapshots mean equal local stores (used by loop fixpoints).
func (s *Store) Snapshot() string {
	var sb strings.Builder
	for _, x := range s.Vars() {
		ls := append([]Loc(nil), s.m[x]...)
		sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
		fmt.Fprintf(&sb, "%s=%v;", x, ls)
	}
	return sb.String()
}

// String renders the store for diagnostics.
func (s *Store) String() string { return s.Snapshot() }
