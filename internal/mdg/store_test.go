package mdg

import (
	"testing"
	"testing/quick"
)

func TestStoreGetSet(t *testing.T) {
	s := NewStore(nil)
	if s.Get("x") != nil {
		t.Fatal("unbound variable should be nil")
	}
	s.Set("x", []Loc{1, 2})
	if got := s.Get("x"); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
	s.Set("x", []Loc{3})
	if got := s.Get("x"); len(got) != 1 || got[0] != 3 {
		t.Fatalf("strong update failed: %v", got)
	}
}

func TestStoreDedup(t *testing.T) {
	s := NewStore(nil)
	s.Set("x", []Loc{1, 1, 2, 2})
	if got := s.Get("x"); len(got) != 2 {
		t.Fatalf("got %v", got)
	}
}

func TestStoreScopeChain(t *testing.T) {
	outer := NewStore(nil)
	outer.SetLocal("a", []Loc{1})
	inner := NewStore(outer)
	if got := inner.Get("a"); len(got) != 1 || got[0] != 1 {
		t.Fatalf("inner should read outer: %v", got)
	}
	// Assignment updates the binding scope, not the inner one.
	inner.Set("a", []Loc{2})
	if got := outer.Get("a"); len(got) != 1 || got[0] != 2 {
		t.Fatalf("outer should be updated: %v", got)
	}
	// SetLocal shadows.
	inner.SetLocal("a", []Loc{3})
	if got := inner.Get("a"); got[0] != 3 {
		t.Fatalf("inner = %v", got)
	}
	if got := outer.Get("a"); got[0] != 2 {
		t.Fatalf("outer must keep its own binding: %v", got)
	}
}

func TestStoreReplaceAll(t *testing.T) {
	outer := NewStore(nil)
	outer.SetLocal("a", []Loc{1})
	inner := NewStore(outer)
	inner.SetLocal("b", []Loc{1, 5})
	inner.ReplaceAll(map[Loc]Loc{1: 9})
	if got := inner.Get("b"); !hasLoc(got, 9) || hasLoc(got, 1) {
		t.Fatalf("b = %v", got)
	}
	if got := outer.Get("a"); !hasLoc(got, 9) {
		t.Fatalf("replace must traverse the scope chain: a = %v", got)
	}
}

func TestStoreJoinAndLeq(t *testing.T) {
	a := NewStore(nil)
	a.SetLocal("x", []Loc{1})
	b := NewStore(nil)
	b.SetLocal("x", []Loc{2})
	b.SetLocal("y", []Loc{3})
	a.Join(b)
	if got := a.Get("x"); len(got) != 2 {
		t.Fatalf("x = %v", got)
	}
	if got := a.Get("y"); len(got) != 1 {
		t.Fatalf("y = %v", got)
	}
	if !b.Leq(a) {
		t.Fatal("b ⊑ a must hold after join")
	}
	if a.Leq(b) {
		t.Fatal("a ⋢ b (a has x=1 that b lacks)")
	}
}

func TestStoreCopyIsolation(t *testing.T) {
	s := NewStore(nil)
	s.SetLocal("x", []Loc{1})
	c := s.Copy()
	c.Set("x", []Loc{2})
	if got := s.Get("x"); got[0] != 1 {
		t.Fatalf("copy should not alias: %v", got)
	}
}

func TestStoreWeaken(t *testing.T) {
	s := NewStore(nil)
	s.SetLocal("x", []Loc{1})
	s.Weaken("x", []Loc{2})
	if got := s.Get("x"); len(got) != 2 {
		t.Fatalf("x = %v", got)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	a := NewStore(nil)
	a.SetLocal("x", []Loc{2, 1})
	a.SetLocal("y", []Loc{3})
	b := NewStore(nil)
	b.SetLocal("y", []Loc{3})
	b.SetLocal("x", []Loc{1, 2})
	if a.Snapshot() != b.Snapshot() {
		t.Fatalf("snapshots differ: %q vs %q", a.Snapshot(), b.Snapshot())
	}
}

// Property: Join is an upper bound — after a.Join(b), both original
// stores are ⊑ the result.
func TestJoinUpperBoundQuick(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := NewStore(nil)
		b := NewStore(nil)
		for i, x := range xs {
			a.SetLocal(varName(i), []Loc{Loc(x%8) + 1})
		}
		for i, y := range ys {
			b.SetLocal(varName(i), []Loc{Loc(y%8) + 1})
		}
		aOrig := a.Copy()
		a.Join(b)
		return aOrig.Leq(a) && b.Leq(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Join is idempotent on equal stores.
func TestJoinIdempotentQuick(t *testing.T) {
	f := func(xs []uint8) bool {
		a := NewStore(nil)
		for i, x := range xs {
			a.SetLocal(varName(i), []Loc{Loc(x%8) + 1})
		}
		snap := a.Snapshot()
		a.Join(a.Copy())
		return a.Snapshot() == snap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func varName(i int) string {
	return string(rune('a' + i%20))
}
