package mdg

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Fragment codec
//
// EncodeFragment/DecodeFragment give fragments a compact binary wire
// form for the persistent store (internal/store): varint-packed nodes
// and edges, strings length-prefixed, one format version byte up
// front. The encoding is exact — a decoded fragment is deeply equal to
// the encoded one, including the nil-versus-empty slice distinctions
// SnapshotFragment produces — so a warm restart rehydrates byte-for-
// byte the graphs a live process would have held.
//
// DecodeFragment trusts nothing: it is routinely handed bytes that
// passed a CRC but could still be hostile (a store bug, a format
// drift), so every count is bounded by the remaining input, every
// location is validated against the node table, and any violation is
// an error, never a panic or a silently wrong graph. Callers treat a
// decode error as a cache miss (quarantine + cold rebuild).

// fragCodecVersion is the fragment wire-format version.
const fragCodecVersion = 1

// ErrFragmentCodec wraps every DecodeFragment failure.
var ErrFragmentCodec = errors.New("mdg: fragment decode")

// EncodeFragment serializes f into its compact binary form.
func EncodeFragment(f *Fragment) []byte {
	// Rough pre-size: nodes dominate; 32 bytes is a comfortable mean.
	buf := make([]byte, 0, 16+32*len(f.nodes)+8*len(f.edges))
	buf = append(buf, fragCodecVersion)
	buf = binary.AppendUvarint(buf, uint64(len(f.nodes)))
	for i := range f.nodes {
		n := &f.nodes[i]
		buf = binary.AppendUvarint(buf, uint64(n.Loc))
		buf = append(buf, byte(n.Kind))
		buf = appendString(buf, n.Label)
		buf = binary.AppendUvarint(buf, uint64(n.Site))
		buf = binary.AppendUvarint(buf, uint64(n.Line))
		buf = appendString(buf, n.File)
		var flags byte
		if n.Source {
			flags |= 1
		}
		if n.Exported {
			flags |= 2
		}
		if n.CallArgs != nil {
			flags |= 4
		}
		buf = append(buf, flags)
		buf = appendString(buf, n.CallName)
		if n.CallArgs != nil {
			buf = binary.AppendUvarint(buf, uint64(len(n.CallArgs)))
			for _, arg := range n.CallArgs {
				buf = appendLocs(buf, arg)
			}
		}
		buf = appendString(buf, n.FuncName)
		buf = appendLocs(buf, n.ParamLocs)
		buf = binary.AppendUvarint(buf, uint64(n.RetLoc))
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.edges)))
	for _, e := range f.edges {
		buf = binary.AppendUvarint(buf, uint64(e.From))
		buf = binary.AppendUvarint(buf, uint64(e.To))
		buf = append(buf, byte(e.Type))
		buf = appendString(buf, e.Prop)
	}
	buf = binary.AppendUvarint(buf, uint64(f.maxLoc))
	return buf
}

// DecodeFragment parses data back into a fragment, validating the
// graph's internal consistency (edge endpoints and location references
// must name nodes in the fragment). Corrupt or truncated input returns
// an error wrapping ErrFragmentCodec.
func DecodeFragment(data []byte) (*Fragment, error) {
	r := &fragReader{b: data}
	if v := r.byte(); r.err == nil && v != fragCodecVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrFragmentCodec, v, fragCodecVersion)
	}
	f := &Fragment{}
	nn := r.count(minNodeBytes)
	// SnapshotFragment always allocates the node slice (empty, not
	// nil, for an empty graph) but leaves edges nil when there are
	// none; mirror that so round trips are deeply equal.
	f.nodes = make([]Node, 0, nn)
	for i := 0; i < nn && r.err == nil; i++ {
		var n Node
		n.Loc = r.loc()
		n.Kind = NodeKind(r.byte())
		n.Label = r.string()
		n.Site = int(r.uvarint())
		n.Line = int(r.uvarint())
		n.File = r.string()
		flags := r.byte()
		n.Source = flags&1 != 0
		n.Exported = flags&2 != 0
		n.CallName = r.string()
		if flags&4 != 0 {
			na := r.count(1)
			n.CallArgs = make([][]Loc, 0, na)
			for j := 0; j < na && r.err == nil; j++ {
				n.CallArgs = append(n.CallArgs, r.locs())
			}
		}
		n.FuncName = r.string()
		n.ParamLocs = r.locs()
		n.RetLoc = r.loc0()
		f.nodes = append(f.nodes, n)
	}
	ne := r.count(minEdgeBytes)
	if ne > 0 {
		f.edges = make([]Edge, 0, ne)
	}
	for i := 0; i < ne && r.err == nil; i++ {
		var e Edge
		e.From = r.loc()
		e.To = r.loc()
		e.Type = EdgeType(r.byte())
		e.Prop = r.string()
		f.edges = append(f.edges, e)
	}
	f.maxLoc = r.loc0()
	if r.err != nil {
		return nil, fmt.Errorf("%w: %w", ErrFragmentCodec, r.err)
	}
	if r.off != len(r.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrFragmentCodec, len(r.b)-r.off)
	}
	if err := validateFragment(f); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrFragmentCodec, err)
	}
	return f, nil
}

// Minimum encoded sizes, used to bound declared counts by the input
// that could actually hold them (so a corrupt count cannot drive a
// huge allocation).
const (
	minNodeBytes = 10
	minEdgeBytes = 4
)

// validateFragment checks the decoded graph's internal consistency:
// locations are unique and positive, maxLoc covers them, and every
// reference (edge endpoint, call argument, parameter, return) names a
// node of the fragment or NoLoc where permitted. Stitch and the
// detection backends assume exactly these invariants; enforcing them
// here means a corrupt record can never leak a malformed graph past
// the quarantine.
func validateFragment(f *Fragment) error {
	locs := make(map[Loc]bool, len(f.nodes))
	for i := range f.nodes {
		n := &f.nodes[i]
		if n.Loc <= NoLoc {
			return fmt.Errorf("node %d: non-positive location %d", i, n.Loc)
		}
		if n.Loc > f.maxLoc {
			return fmt.Errorf("node location %d exceeds maxLoc %d", n.Loc, f.maxLoc)
		}
		if locs[n.Loc] {
			return fmt.Errorf("duplicate location %d", n.Loc)
		}
		locs[n.Loc] = true
	}
	ref := func(l Loc) error {
		if l != NoLoc && !locs[l] {
			return fmt.Errorf("dangling location %d", l)
		}
		return nil
	}
	for i := range f.nodes {
		n := &f.nodes[i]
		for _, arg := range n.CallArgs {
			for _, l := range arg {
				if err := ref(l); err != nil {
					return err
				}
			}
		}
		for _, l := range n.ParamLocs {
			if err := ref(l); err != nil {
				return err
			}
		}
		if err := ref(n.RetLoc); err != nil {
			return err
		}
	}
	for _, e := range f.edges {
		if !locs[e.From] || !locs[e.To] {
			return fmt.Errorf("edge %d->%d references missing node", e.From, e.To)
		}
	}
	return nil
}

// LocSet returns the set of node locations in the fragment. The
// persistence layer uses it to validate that decoded companion data
// (function summaries) only references nodes the fragment actually
// holds.
func (f *Fragment) LocSet() map[Loc]bool {
	set := make(map[Loc]bool, len(f.nodes))
	for i := range f.nodes {
		set[f.nodes[i].Loc] = true
	}
	return set
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// appendLocs writes a location slice; nil and empty both encode as a
// zero count and decode back to nil, matching SnapshotFragment's
// append([]Loc(nil), ...) convention.
func appendLocs(buf []byte, ls []Loc) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ls)))
	for _, l := range ls {
		buf = binary.AppendUvarint(buf, uint64(l))
	}
	return buf
}

// fragReader is a bounds-checked sticky-error decoder. After the first
// failure every method returns zero values, so decode loops terminate
// without per-call error plumbing.
type fragReader struct {
	b   []byte
	off int
	err error
}

func (r *fragReader) fail(msg string) {
	if r.err == nil {
		r.err = fmt.Errorf("%s at offset %d", msg, r.off)
	}
}

func (r *fragReader) byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.b) {
		r.fail("truncated")
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *fragReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.b[r.off:])
	if n <= 0 {
		r.fail("bad varint")
		return 0
	}
	r.off += n
	return v
}

// count reads a declared element count and rejects any value the
// remaining input could not possibly hold (minBytes per element).
func (r *fragReader) count(minBytes int) int {
	v := r.uvarint()
	if r.err != nil {
		return 0
	}
	if v > uint64(len(r.b)-r.off)/uint64(minBytes)+1 {
		r.fail(fmt.Sprintf("implausible count %d", v))
		return 0
	}
	return int(v)
}

func (r *fragReader) string() string {
	n := r.uvarint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.b)-r.off) {
		r.fail("string overruns input")
		return ""
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// loc reads a location that must be meaningful (decode-time zero is
// legal wire-wise; validateFragment rejects it where it matters).
func (r *fragReader) loc() Loc { return Loc(r.uvarint()) }

// loc0 reads a location where NoLoc is legal.
func (r *fragReader) loc0() Loc { return Loc(r.uvarint()) }

func (r *fragReader) locs() []Loc {
	n := r.count(1)
	if n == 0 || r.err != nil {
		return nil
	}
	out := make([]Loc, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, Loc(r.uvarint()))
	}
	return out
}
