package mdg

// This file implements the §6 discussion: "Collapsing the multiversion
// graph to include only the latest version would yield the regular
// object graph." The collapsed view maps every version chain to a
// single representative object, with the union of the chain's
// properties (later versions shadowing earlier writes of the same
// name). It is useful for rendering final heap shapes and as the
// domain for concrete attack traces.

// Collapsed is a regular (single-version) object graph derived from an
// MDG.
type Collapsed struct {
	// Rep maps every location to its chain representative (the newest
	// version reachable from it; for diamonds, the highest-numbered).
	Rep map[Loc]Loc
	// Props maps each representative to its final property table. The
	// "*" key collects dynamic-property values.
	Props map[Loc]map[string][]Loc
	// Deps are the dependency edges re-targeted to representatives.
	Deps map[Loc][]Loc
}

// Collapse computes the regular object graph of g.
func (g *Graph) Collapse() *Collapsed {
	c := &Collapsed{
		Rep:   make(map[Loc]Loc, len(g.nodes)),
		Props: make(map[Loc]map[string][]Loc),
		Deps:  make(map[Loc][]Loc),
	}
	// Representative: newest version in the chain. Walk forward along
	// version edges; pick the largest Loc among terminal versions (a
	// deterministic choice for join diamonds and cycles).
	for l := range g.nodes {
		c.Rep[l] = g.newestVersion(l)
	}

	// Final property tables: walk each chain oldest→newest so that
	// later writes shadow earlier ones; dynamic writes accumulate.
	for l := range g.nodes {
		rep := c.Rep[l]
		if _, done := c.Props[rep]; done {
			continue
		}
		c.Props[rep] = g.finalProps(rep, c)
	}

	for e := range g.edgeSet {
		if e.Type == Dep {
			from, to := c.Rep[e.From], c.Rep[e.To]
			c.Deps[from] = appendUnique(c.Deps[from], to)
		}
	}
	return c
}

// newestVersion returns the representative version of l's chain.
func (g *Graph) newestVersion(l Loc) Loc {
	best := l
	seen := map[Loc]bool{}
	var walk func(v Loc)
	walk = func(v Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		if v > best {
			best = v
		}
		for _, s := range g.VersionSuccessors(v) {
			walk(s)
		}
	}
	walk(l)
	// The representative must be terminal under the seen set: among all
	// chain members pick the largest, which is stable.
	return best
}

// finalProps computes the collapsed property table of a representative:
// union over the chain with newest-first shadowing for named
// properties.
func (g *Graph) finalProps(rep Loc, c *Collapsed) map[string][]Loc {
	out := make(map[string][]Loc)
	// Collect chain members (rep plus all predecessors transitively).
	var chain []Loc
	seen := map[Loc]bool{}
	var back func(v Loc)
	back = func(v Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		chain = append(chain, v)
		for _, p := range g.VersionPredecessors(v) {
			back(p)
		}
	}
	back(rep)
	// chain is newest-first along each path (DFS from rep); a named
	// property keeps its first (newest) binding, star accumulates.
	for _, v := range chain {
		for _, e := range g.out[v] {
			switch e.Type {
			case Prop:
				if _, shadowed := out[e.Prop]; !shadowed {
					out[e.Prop] = []Loc{c.Rep[e.To]}
				}
			case PropStar:
				out["*"] = appendUnique(out["*"], c.Rep[e.To])
			}
		}
	}
	return out
}

func appendUnique(ls []Loc, l Loc) []Loc {
	for _, x := range ls {
		if x == l {
			return ls
		}
	}
	return append(ls, l)
}
