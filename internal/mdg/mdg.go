// Package mdg implements the Multiversion Dependency Graph (MDG) of the
// paper (§3.1): a single graph capturing the shape and evolution of
// objects over time together with the data dependencies between the
// values a program manipulates.
//
// Nodes are abstract locations representing objects, primitive values,
// functions and calls. Edges carry one of five labels:
//
//	D      dependency: the target is computed using the source
//	P(p)   known property: target is the value of property p of source
//	P(*)   unknown property: as P(p) with a statically unknown name
//	V(p)   version: target is a new version of source after writing p
//	V(*)   version: as V(p) with a statically unknown property name
//
// Allocation is site-keyed: the same (site, role, origin) triple always
// yields the same location, which keeps graphs finite and loops
// convergent (the paper's fixed-point summary representation).
package mdg

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/budget"
)

// Loc is an abstract location: the identity of an MDG node.
type Loc int

// NoLoc is the zero Loc, used as "absent".
const NoLoc Loc = 0

// NodeKind classifies MDG nodes.
type NodeKind int

// Node kinds.
const (
	KindObject  NodeKind = iota // objects and primitive values
	KindCall                    // function-call nodes (f_x in the paper)
	KindFunc                    // function values
	KindParam                   // function parameters (taint sources live here)
	KindLiteral                 // primitive literal pool nodes
)

func (k NodeKind) String() string {
	switch k {
	case KindObject:
		return "Object"
	case KindCall:
		return "Call"
	case KindFunc:
		return "Func"
	case KindParam:
		return "Param"
	case KindLiteral:
		return "Literal"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// EdgeType classifies MDG edges.
type EdgeType int

// Edge types.
const (
	Dep      EdgeType = iota // D
	Prop                     // P(p)
	PropStar                 // P(*)
	Ver                      // V(p)
	VerStar                  // V(*)
)

func (t EdgeType) String() string {
	switch t {
	case Dep:
		return "D"
	case Prop:
		return "P"
	case PropStar:
		return "P*"
	case Ver:
		return "V"
	case VerStar:
		return "V*"
	default:
		return fmt.Sprintf("EdgeType(%d)", int(t))
	}
}

// Edge is one labeled MDG edge. Prop is the property name for Prop/Ver
// edges and empty for Dep/PropStar/VerStar.
type Edge struct {
	From, To Loc
	Type     EdgeType
	Prop     string
}

// Label renders the edge label as in the paper (D, P(cmd), V(*), ...).
func (e Edge) Label() string {
	switch e.Type {
	case Dep:
		return "D"
	case Prop:
		return fmt.Sprintf("P(%s)", e.Prop)
	case PropStar:
		return "P(*)"
	case Ver:
		return fmt.Sprintf("V(%s)", e.Prop)
	case VerStar:
		return "V(*)"
	}
	return "?"
}

// Node is one MDG node.
type Node struct {
	Loc   Loc
	Kind  NodeKind
	Label string // variable hint, call name, function name, or literal text
	Site  int    // statement index that allocated the node (0 = none)
	Line  int    // source line of the allocating statement
	File  string // source file of the allocating statement

	// Source marks taint sources (parameters of exported functions).
	Source bool

	// Call metadata (KindCall only). CallArgs[i] holds the locations
	// that may flow into the i-th argument.
	CallName string
	CallArgs [][]Loc

	// Func metadata (KindFunc only): the function's parameter and
	// return locations, for call linking and queries.
	FuncName  string
	ParamLocs []Loc
	RetLoc    Loc

	// Exported marks functions reachable from module.exports.
	Exported bool
}

// Graph is a Multiversion Dependency Graph.
type Graph struct {
	nodes   map[Loc]*Node
	out     map[Loc][]Edge
	in      map[Loc][]Edge
	edgeSet map[Edge]struct{}
	next    Loc

	// alloc implements site-keyed deterministic allocation.
	alloc map[allocKey]Loc

	// curFile annotates newly created nodes with their source file
	// (multi-module analysis); see SetCurrentFile.
	curFile string

	// sorted caches the ascending-Loc node slice handed out by Nodes;
	// node creation invalidates it. Detection backends iterate the
	// frozen graph many times, so the sort must not repeat per call.
	sorted []*Node

	// bud, when set, is charged for every node and edge created, so a
	// scan-wide MaxNodes/MaxEdges cap covers MDG construction. The
	// graph only records the charge; the analyzer's per-statement tick
	// notices the exceeded budget and aborts.
	bud *budget.Budget
}

// SetBudget charges subsequent node/edge creation against b (nil
// disables the accounting).
func (g *Graph) SetBudget(b *budget.Budget) { g.bud = b }

// SetCurrentFile sets the source-file annotation applied to nodes
// created from now on.
func (g *Graph) SetCurrentFile(file string) { g.curFile = file }

type allocKey struct {
	role   string
	site   int
	origin Loc
	prop   string
}

// New returns an empty MDG.
func New() *Graph {
	return &Graph{
		nodes:   make(map[Loc]*Node),
		out:     make(map[Loc][]Edge),
		in:      make(map[Loc][]Edge),
		edgeSet: make(map[Edge]struct{}),
		alloc:   make(map[allocKey]Loc),
	}
}

// NumNodes returns the number of nodes in the graph.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the number of edges in the graph.
func (g *Graph) NumEdges() int { return len(g.edgeSet) }

// Node returns the node at l, or nil.
func (g *Graph) Node(l Loc) *Node { return g.nodes[l] }

// Nodes returns all nodes in ascending Loc order. The slice is cached
// and shared between calls until the next node is created; callers
// must not modify it.
func (g *Graph) Nodes() []*Node {
	if g.sorted == nil {
		g.sorted = make([]*Node, 0, len(g.nodes))
		for _, n := range g.nodes {
			g.sorted = append(g.sorted, n)
		}
		sort.Slice(g.sorted, func(i, j int) bool { return g.sorted[i].Loc < g.sorted[j].Loc })
	}
	return g.sorted
}

// NodesOfKind returns the nodes of one kind in ascending Loc order.
func (g *Graph) NodesOfKind(kind NodeKind) []*Node {
	var out []*Node
	for _, n := range g.Nodes() {
		if n.Kind == kind {
			out = append(out, n)
		}
	}
	return out
}

// Edges returns all edges in a deterministic order.
func (g *Graph) Edges() []Edge {
	var out []Edge
	for _, n := range g.Nodes() {
		out = append(out, g.out[n.Loc]...)
	}
	return out
}

// Out returns the outgoing edges of l.
func (g *Graph) Out(l Loc) []Edge { return g.out[l] }

// In returns the incoming edges of l.
func (g *Graph) In(l Loc) []Edge { return g.in[l] }

// fresh creates a brand-new node.
func (g *Graph) fresh(kind NodeKind, label string, site, line int) *Node {
	g.bud.AddNode() // cap recorded in the budget; the analyzer's tick aborts
	g.next++
	n := &Node{Loc: g.next, Kind: kind, Label: label, Site: site, Line: line, File: g.curFile}
	g.nodes[n.Loc] = n
	g.sorted = nil
	return n
}

// Alloc returns the location for (role, site, origin, prop), creating a
// node on first use. Repeated calls with the same key return the same
// location — the allocation-site abstraction that keeps loops finite.
func (g *Graph) Alloc(role string, site int, origin Loc, prop string, kind NodeKind, label string, line int) Loc {
	key := allocKey{role: role, site: site, origin: origin, prop: prop}
	if l, ok := g.alloc[key]; ok {
		return l
	}
	n := g.fresh(kind, label, site, line)
	g.alloc[key] = n.Loc
	return n.Loc
}

// LocForKey returns the location previously allocated for the given
// allocation key, if any. Soundness tests use it to build the
// abstraction function α from concrete to abstract locations.
func (g *Graph) LocForKey(role string, site int, origin Loc, prop string) (Loc, bool) {
	l, ok := g.alloc[allocKey{role: role, site: site, origin: origin, prop: prop}]
	return l, ok
}

// AddEdge inserts e if not already present. It reports whether the
// graph changed.
func (g *Graph) AddEdge(e Edge) bool {
	if _, ok := g.edgeSet[e]; ok {
		return false
	}
	if g.nodes[e.From] == nil || g.nodes[e.To] == nil {
		// Internal invariant (callers only wire locations they
		// allocated); a violation is an analyzer bug, recovered at the
		// scanner's phase guard rather than killing the sweep.
		panic(fmt.Sprintf("mdg: edge %v references unknown node", e)) //lint:allow nakedpanic -- graph invariant; recovered at the scanner's phase guard
	}
	g.bud.AddEdge()
	g.edgeSet[e] = struct{}{}
	g.out[e.From] = append(g.out[e.From], e)
	g.in[e.To] = append(g.in[e.To], e)
	return true
}

// HasEdge reports whether e is present.
func (g *Graph) HasEdge(e Edge) bool {
	_, ok := g.edgeSet[e]
	return ok
}

// AddDep adds a dependency edge from → to.
func (g *Graph) AddDep(from, to Loc) bool {
	return g.AddEdge(Edge{From: from, To: to, Type: Dep})
}

// ---------------------------------------------------------------------------
// Graph operations from the paper (§3.1–3.2)
// ---------------------------------------------------------------------------

// PropTarget returns the first direct P(p) target of l, or NoLoc.
func (g *Graph) PropTarget(l Loc, p string) Loc {
	for _, e := range g.out[l] {
		if e.Type == Prop && e.Prop == p {
			return e.To
		}
	}
	return NoLoc
}

// PropTargets returns all direct P(p) targets of l. Version nodes that
// merge several objects (site-keyed allocation) can carry multiple P(p)
// edges for the same name.
func (g *Graph) PropTargets(l Loc, p string) []Loc {
	var out []Loc
	for _, e := range g.out[l] {
		if e.Type == Prop && e.Prop == p {
			out = append(out, e.To)
		}
	}
	return out
}

// StarTargets returns the direct P(*) targets of l.
func (g *Graph) StarTargets(l Loc) []Loc {
	var out []Loc
	for _, e := range g.out[l] {
		if e.Type == PropStar {
			out = append(out, e.To)
		}
	}
	return out
}

// VersionPredecessors returns the locations u with u →V(...) l.
func (g *Graph) VersionPredecessors(l Loc) []Loc {
	var out []Loc
	for _, e := range g.in[l] {
		if e.Type == Ver || e.Type == VerStar {
			out = append(out, e.From)
		}
	}
	return out
}

// VersionSuccessors returns the locations v with l →V(...) v.
func (g *Graph) VersionSuccessors(l Loc) []Loc {
	var out []Loc
	for _, e := range g.out[l] {
		if e.Type == Ver || e.Type == VerStar {
			out = append(out, e.To)
		}
	}
	return out
}

// LookupResult is the outcome of ĝ[l, p]: the found value locations and
// the oldest chain version (where a lazy property must be created when
// nothing was found).
type LookupResult struct {
	Values []Loc
	// Oldest is the oldest version reached without finding P(p); NoLoc
	// when the property was found statically on every chain path.
	Oldest []Loc
}

// Lookup computes ĝ[l, p] (§3.1): the abstract locations associated with
// the object represented by l via property p, walking the version chain
// backwards. Dynamic P(*) properties encountered along the way may
// shadow p, so their values are included. When a chain path reaches its
// oldest version without a static definition of p, that version is
// reported in Oldest so the caller can lazily extend it (AP).
func (g *Graph) Lookup(l Loc, p string) LookupResult {
	var res LookupResult
	seen := make(map[Loc]bool)
	var walk func(v Loc)
	walk = func(v Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		// A dynamic property on this version may hold (or shadow) p.
		res.Values = append(res.Values, g.StarTargets(v)...)
		if ts := g.PropTargets(v, p); len(ts) > 0 {
			res.Values = append(res.Values, ts...)
			return // defined here; older versions are shadowed
		}
		preds := g.VersionPredecessors(v)
		if len(preds) == 0 {
			res.Oldest = append(res.Oldest, v)
			return
		}
		for _, u := range preds {
			walk(u)
		}
	}
	walk(l)
	res.Values = dedupe(res.Values)
	res.Oldest = dedupe(res.Oldest)
	return res
}

// AllPropValues returns the values of every property (static and
// dynamic) reachable along l's version chain; used for dynamic lookups
// x := e1[e2] where any property may be read.
func (g *Graph) AllPropValues(l Loc) []Loc {
	var out []Loc
	seen := make(map[Loc]bool)
	var walk func(v Loc)
	walk = func(v Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		for _, e := range g.out[v] {
			if e.Type == Prop || e.Type == PropStar {
				out = append(out, e.To)
			}
		}
		for _, u := range g.VersionPredecessors(v) {
			walk(u)
		}
	}
	walk(l)
	return dedupe(out)
}

// AP implements AP_i(ĝ, L, p) (§3.2): extends each object in L with
// property p unless already defined along its chain, allocating the
// property node at site i. It returns the value locations of p for
// every object in L after the extension.
func (g *Graph) AP(site int, L []Loc, p string, line int) []Loc {
	var values []Loc
	for _, l := range L {
		res := g.Lookup(l, p)
		values = append(values, res.Values...)
		for _, oldest := range res.Oldest {
			// Site-keyed: all chains extended at this site share the
			// node (the paper's cyclic summary representation).
			nl := g.Alloc("prop", site, 0, p, KindObject, p, line)
			if nl != oldest {
				g.AddEdge(Edge{From: oldest, To: nl, Type: Prop, Prop: p})
			}
			values = append(values, nl)
		}
	}
	return dedupe(values)
}

// APStar implements AP*_i(ĝ, L1, Lp): extends each object in L1 with an
// unknown property whose name depends on the locations in Lp. If an
// object already has a P(*) edge, the dependencies are added to the
// existing property node. Returns the dynamic property value locations.
func (g *Graph) APStar(site int, L1, Lp []Loc, line int) []Loc {
	var values []Loc
	for _, l := range L1 {
		stars := g.StarTargets(l)
		if len(stars) == 0 {
			nl := g.Alloc("prop*", site, 0, "*", KindObject, "*", line)
			if nl == l {
				continue
			}
			g.AddEdge(Edge{From: l, To: nl, Type: PropStar})
			stars = []Loc{nl}
		}
		for _, s := range stars {
			for _, lp := range Lp {
				g.AddDep(lp, s)
			}
			values = append(values, s)
		}
	}
	return dedupe(values)
}

// NV implements NV_i(ĝ, ρ̂, L1, p): creates a new version of every
// object in L1 due to an assignment of property p at site i, linking
// old → new with V(p). The returned map sends each old location to its
// new version; the caller rewrites the store.
func (g *Graph) NV(site int, L1 []Loc, p string, line int) map[Loc]Loc {
	repl := make(map[Loc]Loc, len(L1))
	for _, l := range L1 {
		// Site-keyed (no origin): every object updated at this site
		// maps to the same new-version node, giving the finite cyclic
		// representation of loops (§5.5).
		nl := g.Alloc("ver", site, 0, p, KindObject, g.labelOf(l), line)
		if nl != l {
			g.AddEdge(Edge{From: l, To: nl, Type: Ver, Prop: p})
		}
		repl[l] = nl
	}
	return repl
}

// NVStar implements NV*_i(ĝ, ρ̂, L1, Lp): like NV for a dynamically
// named property; each new version depends on all locations in Lp.
func (g *Graph) NVStar(site int, L1, Lp []Loc, line int) map[Loc]Loc {
	repl := make(map[Loc]Loc, len(L1))
	for _, l := range L1 {
		nl := g.Alloc("ver*", site, 0, "*", KindObject, g.labelOf(l), line)
		if nl != l {
			g.AddEdge(Edge{From: l, To: nl, Type: VerStar})
		}
		for _, lp := range Lp {
			g.AddDep(lp, nl)
		}
		repl[l] = nl
	}
	return repl
}

func (g *Graph) labelOf(l Loc) string {
	if n := g.nodes[l]; n != nil {
		return n.Label
	}
	return ""
}

// ---------------------------------------------------------------------------
// Lattice structure (§3.1): MDGs ordered by edge-set inclusion.
// ---------------------------------------------------------------------------

// Leq reports ĝ1 ⊑ ĝ2: every edge of g is an edge of h.
func Leq(g, h *Graph) bool {
	for e := range g.edgeSet {
		if _, ok := h.edgeSet[e]; !ok {
			return false
		}
	}
	return true
}

// Snapshot captures the graph size; two equal snapshots on a monotone
// graph mean no change happened in between (used by fixpoints).
type Snapshot struct {
	Nodes, Edges int
}

// Snap returns the current size snapshot.
func (g *Graph) Snap() Snapshot { return Snapshot{Nodes: len(g.nodes), Edges: len(g.edgeSet)} }

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

// String renders the graph compactly: one edge per line, sorted.
func (g *Graph) String() string {
	var lines []string
	for e := range g.edgeSet {
		lines = append(lines, fmt.Sprintf("o%d -%s-> o%d", e.From, e.Label(), e.To))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// DOT renders the graph in Graphviz format.
func (g *Graph) DOT() string {
	var sb strings.Builder
	sb.WriteString("digraph MDG {\n  rankdir=LR;\n")
	for _, n := range g.Nodes() {
		shape := "ellipse"
		if n.Kind == KindCall {
			shape = "box"
		}
		extra := ""
		if n.Source {
			extra = ", color=red"
		}
		fmt.Fprintf(&sb, "  n%d [label=%q, shape=%s%s];\n", n.Loc,
			fmt.Sprintf("o%d %s", n.Loc, n.Label), shape, extra)
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&sb, "  n%d -> n%d [label=%q];\n", e.From, e.To, e.Label())
	}
	sb.WriteString("}\n")
	return sb.String()
}

func dedupe(ls []Loc) []Loc {
	if len(ls) < 2 {
		return ls
	}
	seen := make(map[Loc]struct{}, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			out = append(out, l)
		}
	}
	return out
}
