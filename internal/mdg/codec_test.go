package mdg

import (
	"reflect"
	"testing"
)

// buildCodecGraph constructs a graph exercising every node field the
// codec must carry: call nodes with argument lists, function nodes
// with parameter/return locations, sources, exports, property edges.
func buildCodecGraph() *Graph {
	g := New()
	g.SetCurrentFile("a.js")
	obj := g.Alloc("obj", 1, 0, "", KindObject, "o", 10)
	p1 := g.Alloc("param", 2, 0, "", KindParam, "x", 11)
	p2 := g.Alloc("param", 3, 0, "", KindParam, "y", 11)
	ret := g.Alloc("ret", 4, 0, "", KindObject, "ret", 12)
	g.SetCurrentFile("b.js")
	fn := g.Alloc("func", 5, 0, "", KindFunc, "f", 11)
	call := g.Alloc("call", 6, 0, "", KindCall, "f()", 13)
	lit := g.Alloc("lit", 7, 0, "", KindLiteral, "\"s\"", 14)

	fnode := g.Node(fn)
	fnode.FuncName = "f"
	fnode.ParamLocs = []Loc{p1, p2}
	fnode.RetLoc = ret
	fnode.Exported = true
	g.Node(p1).Source = true
	cnode := g.Node(call)
	cnode.CallName = "f"
	cnode.CallArgs = [][]Loc{{obj, lit}, nil, {p2}}

	g.AddDep(p1, ret)
	g.AddEdge(Edge{From: obj, To: lit, Type: Prop, Prop: "cmd"})
	g.AddEdge(Edge{From: obj, To: ret, Type: Ver, Prop: "out"})
	g.AddEdge(Edge{From: obj, To: p2, Type: PropStar})
	g.AddEdge(Edge{From: ret, To: obj, Type: VerStar})
	return g
}

func TestFragmentCodecRoundTrip(t *testing.T) {
	frag := SnapshotFragment(buildCodecGraph())
	data := EncodeFragment(frag)
	got, err := DecodeFragment(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(frag, got) {
		t.Fatalf("round trip diverged:\nwant %+v\ngot  %+v", frag, got)
	}
	// A decoded fragment must behave identically under Stitch.
	g1, _ := Stitch(frag)
	g2, _ := Stitch(got)
	if g1.String() != g2.String() {
		t.Fatal("stitched graphs diverge")
	}
}

func TestFragmentCodecEmpty(t *testing.T) {
	frag := SnapshotFragment(New())
	got, err := DecodeFragment(EncodeFragment(frag))
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if !reflect.DeepEqual(frag, got) {
		t.Fatalf("empty round trip diverged: %+v vs %+v", frag, got)
	}
}

// Every single-byte corruption and every truncation of a valid
// encoding must either fail cleanly or decode to a fragment that still
// passes validation — never panic, never produce a graph with dangling
// references.
func TestFragmentCodecCorruptionNeverPanics(t *testing.T) {
	data := EncodeFragment(SnapshotFragment(buildCodecGraph()))
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xA5
		f, err := DecodeFragment(mut)
		if err == nil {
			if verr := validateFragment(f); verr != nil {
				t.Fatalf("byte %d: decode accepted an inconsistent fragment: %v", i, verr)
			}
		}
	}
	for i := 0; i < len(data); i++ {
		if f, err := DecodeFragment(data[:i]); err == nil {
			if verr := validateFragment(f); verr != nil {
				t.Fatalf("truncation %d: inconsistent fragment: %v", i, verr)
			}
		}
	}
}

func TestFragmentCodecRejectsDanglingEdge(t *testing.T) {
	frag := SnapshotFragment(buildCodecGraph())
	bad := &Fragment{
		nodes:  append([]Node(nil), frag.nodes...),
		edges:  append(frag.edges, Edge{From: 1, To: 9999, Type: Dep}),
		maxLoc: 9999,
	}
	if _, err := DecodeFragment(EncodeFragment(bad)); err == nil {
		t.Fatal("dangling edge must be rejected")
	}
}
