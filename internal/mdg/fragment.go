package mdg

// Fragment is an immutable snapshot of one MDG — in the incremental
// scanner, the graph of one require-component of a package, cached by
// the content hashes of its files. Fragments are value copies: the
// graph they were taken from can keep evolving (or be dropped) without
// affecting them, and Stitch can combine fragments from different
// scans into one coherent graph.
type Fragment struct {
	nodes  []Node
	edges  []Edge
	maxLoc Loc
}

// SnapshotFragment captures g as an immutable fragment. Node metadata
// holding locations (call arguments, parameter lists, return
// locations) is deep-copied, so later mutation of g cannot alias into
// the fragment.
func SnapshotFragment(g *Graph) *Fragment {
	f := &Fragment{
		nodes: make([]Node, 0, len(g.nodes)),
		edges: g.Edges(),
	}
	for _, n := range g.Nodes() {
		c := *n
		if n.CallArgs != nil {
			c.CallArgs = make([][]Loc, len(n.CallArgs))
			for i, arg := range n.CallArgs {
				c.CallArgs[i] = append([]Loc(nil), arg...)
			}
		}
		c.ParamLocs = append([]Loc(nil), n.ParamLocs...)
		if n.Loc > f.maxLoc {
			f.maxLoc = n.Loc
		}
		f.nodes = append(f.nodes, c)
	}
	// Edges() shares backing arrays with g's adjacency lists only via
	// value copies of Edge (no pointers), so the slice itself is the
	// only thing to own.
	f.edges = append([]Edge(nil), f.edges...)
	return f
}

// NumNodes returns the fragment's node count.
func (f *Fragment) NumNodes() int { return len(f.nodes) }

// NumEdges returns the fragment's edge count.
func (f *Fragment) NumEdges() int { return len(f.edges) }

// MaxLoc returns the largest location in the fragment.
func (f *Fragment) MaxLoc() Loc { return f.maxLoc }

// Stitch combines fragments into one graph, renumbering locations so
// fragments never collide: fragment i's location l becomes l plus the
// running offset of the fragments before it. The per-fragment old→new
// location maps are returned so callers can translate cached
// fragment-local facts (function summaries, sources, witness paths)
// into the stitched graph. Stitching is deterministic in the fragment
// order given.
func Stitch(frags ...*Fragment) (*Graph, []map[Loc]Loc) {
	g := New()
	remaps := make([]map[Loc]Loc, len(frags))
	var offset Loc
	for i, f := range frags {
		remap := make(map[Loc]Loc, len(f.nodes))
		shift := func(l Loc) Loc {
			if l == NoLoc {
				return NoLoc
			}
			return l + offset
		}
		for _, n := range f.nodes {
			c := n // value copy; fragment stays immutable
			c.Loc = shift(n.Loc)
			if n.CallArgs != nil {
				c.CallArgs = make([][]Loc, len(n.CallArgs))
				for ai, arg := range n.CallArgs {
					c.CallArgs[ai] = make([]Loc, len(arg))
					for j, l := range arg {
						c.CallArgs[ai][j] = shift(l)
					}
				}
			}
			if n.ParamLocs != nil {
				c.ParamLocs = make([]Loc, len(n.ParamLocs))
				for j, l := range n.ParamLocs {
					c.ParamLocs[j] = shift(l)
				}
			}
			c.RetLoc = shift(n.RetLoc)
			g.nodes[c.Loc] = &c
			remap[n.Loc] = c.Loc
		}
		for _, e := range f.edges {
			ne := Edge{From: shift(e.From), To: shift(e.To), Type: e.Type, Prop: e.Prop}
			if _, ok := g.edgeSet[ne]; ok {
				continue
			}
			g.edgeSet[ne] = struct{}{}
			g.out[ne.From] = append(g.out[ne.From], ne)
			g.in[ne.To] = append(g.in[ne.To], ne)
		}
		remaps[i] = remap
		offset += f.maxLoc
	}
	if g.next < offset {
		g.next = offset
	}
	g.sorted = nil
	return g, remaps
}
