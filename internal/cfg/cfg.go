// Package cfg builds a control-flow graph over Core JavaScript
// statements. Graph.js constructs the program's AST and CFG "in line
// with the original CPGs" before building the MDG (paper §4); the CFG
// is not consulted by the vulnerability queries, but its size is
// counted in the graph-complexity comparison (Table 7), so the pipeline
// builds it the same way.
package cfg

import (
	"fmt"
	"strings"

	"repro/internal/core"
)

// BlockID identifies a basic block.
type BlockID int

// Block is one basic block: a maximal straight-line statement sequence.
type Block struct {
	ID    BlockID
	Stmts []core.Stmt
	Succs []BlockID
	// Kind annotates special blocks ("entry", "exit", "loop-head", "").
	Kind string
}

// Graph is a per-function (or top-level) control-flow graph.
type Graph struct {
	Name   string
	Blocks []*Block
	Entry  BlockID
	Exit   BlockID
}

// NumNodes returns the number of basic blocks.
func (g *Graph) NumNodes() int { return len(g.Blocks) }

// NumEdges returns the number of successor edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Succs)
	}
	return n
}

type builder struct {
	g *Graph
}

func (b *builder) newBlock(kind string) *Block {
	blk := &Block{ID: BlockID(len(b.g.Blocks)), Kind: kind}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to BlockID) {
	blk := b.g.Blocks[from]
	for _, s := range blk.Succs {
		if s == to {
			return
		}
	}
	blk.Succs = append(blk.Succs, to)
}

// Build constructs the CFG of a statement list (one function body or
// the program top level).
func Build(name string, stmts []core.Stmt) *Graph {
	b := &builder{g: &Graph{Name: name}}
	entry := b.newBlock("entry")
	exit := b.newBlock("exit")
	b.g.Entry = entry.ID
	b.g.Exit = exit.ID
	last := b.buildSeq(stmts, entry.ID, exit.ID)
	b.edge(last, exit.ID)
	return b.g
}

// buildSeq threads stmts starting from block cur; returns the block that
// falls through at the end. brk is the target for break/return.
func (b *builder) buildSeq(stmts []core.Stmt, cur BlockID, brk BlockID) BlockID {
	for _, s := range stmts {
		switch st := s.(type) {
		case *core.If:
			condBlk := b.g.Blocks[cur]
			condBlk.Stmts = append(condBlk.Stmts, s)
			thenB := b.newBlock("")
			elseB := b.newBlock("")
			join := b.newBlock("")
			b.edge(cur, thenB.ID)
			b.edge(cur, elseB.ID)
			tEnd := b.buildSeq(st.Then, thenB.ID, brk)
			eEnd := b.buildSeq(st.Else, elseB.ID, brk)
			b.edge(tEnd, join.ID)
			b.edge(eEnd, join.ID)
			cur = join.ID
		case *core.While:
			head := b.newBlock("loop-head")
			head.Stmts = append(head.Stmts, s)
			body := b.newBlock("")
			after := b.newBlock("")
			b.edge(cur, head.ID)
			b.edge(head.ID, body.ID)
			b.edge(head.ID, after.ID)
			bEnd := b.buildSeq(st.Body, body.ID, after.ID)
			b.edge(bEnd, head.ID)
			cur = after.ID
		case *core.ForIn:
			head := b.newBlock("loop-head")
			head.Stmts = append(head.Stmts, s)
			body := b.newBlock("")
			after := b.newBlock("")
			b.edge(cur, head.ID)
			b.edge(head.ID, body.ID)
			b.edge(head.ID, after.ID)
			bEnd := b.buildSeq(st.Body, body.ID, after.ID)
			b.edge(bEnd, head.ID)
			cur = after.ID
		case *core.Return:
			blk := b.g.Blocks[cur]
			blk.Stmts = append(blk.Stmts, s)
			b.edge(cur, b.g.Exit)
			// Continue in a fresh unreachable block so later statements
			// still appear in the graph.
			cur = b.newBlock("").ID
		case *core.Break, *core.Continue:
			blk := b.g.Blocks[cur]
			blk.Stmts = append(blk.Stmts, s)
			b.edge(cur, brk)
			cur = b.newBlock("").ID
		case *core.FuncDef:
			// Function bodies get their own graphs (see BuildAll); the
			// definition itself is a straight-line statement.
			blk := b.g.Blocks[cur]
			blk.Stmts = append(blk.Stmts, s)
		default:
			blk := b.g.Blocks[cur]
			blk.Stmts = append(blk.Stmts, s)
		}
	}
	return cur
}

// BuildAll builds CFGs for the top level and every function in the
// program.
func BuildAll(prog *core.Program) []*Graph {
	out := []*Graph{Build("<toplevel>", prog.Body)}
	for _, fn := range core.Functions(prog.Body) {
		out = append(out, Build(fn.Name, fn.Body))
	}
	return out
}

// TotalSize sums node and edge counts over a set of graphs.
func TotalSize(gs []*Graph) (nodes, edges int) {
	for _, g := range gs {
		nodes += g.NumNodes()
		edges += g.NumEdges()
	}
	return
}

// String renders the graph for diagnostics.
func (g *Graph) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cfg %s (entry=%d exit=%d)\n", g.Name, g.Entry, g.Exit)
	for _, blk := range g.Blocks {
		fmt.Fprintf(&sb, "  b%d%s -> %v (%d stmts)\n", blk.ID, kindSuffix(blk.Kind), blk.Succs, len(blk.Stmts))
	}
	return sb.String()
}

func kindSuffix(k string) string {
	if k == "" {
		return ""
	}
	return "[" + k + "]"
}
