package cfg

import (
	"testing"

	"repro/internal/js/normalize"
)

func buildSrc(t *testing.T, src string) []*Graph {
	t.Helper()
	prog, err := normalize.File(src, "t.js")
	if err != nil {
		t.Fatal(err)
	}
	return BuildAll(prog)
}

func TestStraightLine(t *testing.T) {
	gs := buildSrc(t, "var a = 1; var b = a + 2;")
	if len(gs) != 1 {
		t.Fatalf("graphs = %d", len(gs))
	}
	g := gs[0]
	if g.NumNodes() < 2 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	// Entry must reach exit.
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatal("entry does not reach exit")
	}
}

func TestIfDiamond(t *testing.T) {
	gs := buildSrc(t, "if (x) { a(); } else { b(); }")
	g := gs[0]
	// entry, exit, cond-carrier(entry), then, else, join >= 5 blocks.
	if g.NumNodes() < 5 {
		t.Fatalf("nodes = %d\n%s", g.NumNodes(), g)
	}
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatal("entry must reach exit")
	}
}

func TestWhileBackEdge(t *testing.T) {
	gs := buildSrc(t, "while (c) { f(); }")
	g := gs[0]
	// Find a loop head with an incoming back edge.
	var head *Block
	for _, b := range g.Blocks {
		if b.Kind == "loop-head" {
			head = b
		}
	}
	if head == nil {
		t.Fatalf("no loop head:\n%s", g)
	}
	backEdge := false
	for _, b := range g.Blocks {
		if b.ID > head.ID {
			for _, s := range b.Succs {
				if s == head.ID {
					backEdge = true
				}
			}
		}
	}
	if !backEdge {
		t.Fatalf("no back edge:\n%s", g)
	}
}

func TestReturnEdgesToExit(t *testing.T) {
	gs := buildSrc(t, "function f(a) { if (a) { return 1; } return 2; }")
	if len(gs) != 2 {
		t.Fatalf("graphs = %d", len(gs))
	}
	fg := gs[1]
	if fg.Name != "f" {
		t.Fatalf("name = %q", fg.Name)
	}
	if !reaches(fg, fg.Entry, fg.Exit) {
		t.Fatal("entry must reach exit")
	}
}

func TestBreakTargets(t *testing.T) {
	gs := buildSrc(t, "while (c) { if (x) { break; } f(); }")
	g := gs[0]
	if !reaches(g, g.Entry, g.Exit) {
		t.Fatalf("break must flow to after-loop:\n%s", g)
	}
}

func TestForInGraph(t *testing.T) {
	gs := buildSrc(t, "for (var k in o) { use(k); }")
	g := gs[0]
	found := false
	for _, b := range g.Blocks {
		if b.Kind == "loop-head" {
			found = true
		}
	}
	if !found {
		t.Fatalf("for-in should create a loop head:\n%s", g)
	}
}

func TestTotalSize(t *testing.T) {
	gs := buildSrc(t, "function f() { g(); } f();")
	n, e := TotalSize(gs)
	if n <= 0 || e <= 0 {
		t.Fatalf("n=%d e=%d", n, e)
	}
}

func TestNestedFunctionsGetOwnGraphs(t *testing.T) {
	gs := buildSrc(t, "function outer() { var inner = function() { return 1; }; }")
	if len(gs) != 3 { // toplevel, outer, inner
		t.Fatalf("graphs = %d", len(gs))
	}
}

func reaches(g *Graph, from, to BlockID) bool {
	seen := map[BlockID]bool{}
	var walk func(BlockID) bool
	walk = func(id BlockID) bool {
		if id == to {
			return true
		}
		if seen[id] {
			return false
		}
		seen[id] = true
		for _, s := range g.Blocks[id].Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}
