package budget

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// burn drives a budget through n checkpoints inside a Guard, the way a
// pipeline phase would, and returns the phase outcome.
func burn(b *Budget, phase string, n int) error {
	return Guard(phase, func() error {
		b.BeginPhase(phase)
		for i := 0; i < n; i++ {
			if err := b.Step(); err != nil {
				return err
			}
		}
		return b.CheckDeadline()
	})
}

// TestInjectionDeterministic: with a fixed plan, the same label must
// fault at the same checkpoint with the same class on every run, and
// different labels must make independent draws.
func TestInjectionDeterministic(t *testing.T) {
	SetFaultPlan(&FaultPlan{Seed: 7, PanicProb: 0.5, TimeoutProb: 0.5})
	defer SetFaultPlan(nil)

	outcome := func(label string) Class {
		b := New(Limits{})
		b.SetLabel(label)
		return ClassOf(burn(b, "phase", 10000))
	}
	classes := map[Class]int{}
	for run := 0; run < 3; run++ {
		for _, label := range []string{"a#0", "b#0", "c#0", "d#0", "e#0", "f#0"} {
			c := outcome(label)
			if c != ClassPanic && c != ClassTimeout {
				t.Fatalf("label %s: class %q, want an injected fault", label, c)
			}
			if run == 0 {
				classes[c]++
			} else if outcome(label) != c {
				t.Fatalf("label %s: fault class changed between runs", label)
			}
		}
	}
	if len(classes) != 2 {
		t.Errorf("6 labels all drew the same fault mode %v (suspicious hash)", classes)
	}
}

// TestInjectionArmFilter: a plan armed only for first attempts must
// leave retry-labelled budgets untouched.
func TestInjectionArmFilter(t *testing.T) {
	SetFaultPlan(&FaultPlan{Seed: 1, PanicProb: 1,
		Arm: func(label string) bool { return strings.HasSuffix(label, "#0") }})
	defer SetFaultPlan(nil)

	b := New(Limits{})
	b.SetLabel("pkg#0")
	if err := burn(b, "phase", 10000); ClassOf(err) != ClassPanic {
		t.Errorf("armed attempt 0 not faulted: %v", err)
	}
	b = New(Limits{})
	b.SetLabel("pkg#1")
	if err := burn(b, "phase", 10000); err != nil {
		t.Errorf("retry attempt faulted despite Arm filter: %v", err)
	}
}

// TestInjectedPanicRecoversAsPanicError: the Guard must classify the
// injected panic like any real engine crash.
func TestInjectedPanicRecoversAsPanicError(t *testing.T) {
	SetFaultPlan(&FaultPlan{Seed: 3, PanicProb: 1})
	defer SetFaultPlan(nil)
	b := New(Limits{})
	b.SetLabel("x")
	err := burn(b, "detect", 10000)
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T (%v), want *PanicError", err, err)
	}
	var inf *InjectedFault
	if e, ok := pe.Value.(error); !ok || !errors.As(e, &inf) {
		t.Errorf("panic value %T, want *InjectedFault", pe.Value)
	}
}

// TestInjectedTimeoutIsSticky: an injected timeout must behave exactly
// like a real one — recorded as the budget's sticky first failure.
func TestInjectedTimeoutIsSticky(t *testing.T) {
	SetFaultPlan(&FaultPlan{Seed: 5, TimeoutProb: 1})
	defer SetFaultPlan(nil)
	b := New(Limits{})
	b.SetLabel("x")
	if err := burn(b, "analysis", 10000); ClassOf(err) != ClassTimeout {
		t.Fatalf("injected timeout classified %q", ClassOf(err))
	}
	if ClassOf(b.Err()) != ClassTimeout {
		t.Error("injected timeout not sticky on the budget")
	}
}

// TestNoPlanNoFaults: without a plan the checkpoints are inert.
func TestNoPlanNoFaults(t *testing.T) {
	b := New(Limits{})
	b.SetLabel("x")
	if err := burn(b, "phase", 100000); err != nil {
		t.Fatalf("uninjected budget failed: %v", err)
	}
}

// TestPhaseUsageAccounting: per-phase deltas must partition the scan's
// total consumption, and the failure must be stamped with the phase it
// happened in.
func TestPhaseUsageAccounting(t *testing.T) {
	b := New(Limits{MaxSteps: 150})
	b.BeginPhase("front-end")
	for i := 0; i < 100; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("front-end tripped early: %v", err)
		}
	}
	b.BeginPhase("analysis")
	var ferr error
	for i := 0; i < 100 && ferr == nil; i++ {
		ferr = b.Step()
	}
	if ClassOf(ferr) != ClassBudget {
		t.Fatalf("step cap not tripped: %v", ferr)
	}
	if got := b.ExhaustedPhase(); got != "analysis" {
		t.Errorf("exhausted phase %q, want analysis", got)
	}
	var be *Error
	if !errors.As(ferr, &be) || be.Phase != "analysis" {
		t.Errorf("error not phase-stamped: %v", ferr)
	}
	us := b.PhaseUsages()
	if len(us) != 2 || us[0].Phase != "front-end" || us[1].Phase != "analysis" {
		t.Fatalf("phases %+v", us)
	}
	if us[0].Steps != 100 {
		t.Errorf("front-end steps %d, want 100", us[0].Steps)
	}
	if us[0].Steps+us[1].Steps != b.Steps() {
		t.Errorf("phase steps %d+%d do not partition total %d", us[0].Steps, us[1].Steps, b.Steps())
	}
}

// TestPhaseLogSharedAcrossDerive: consumption on a derived retry
// budget must accumulate into the parent's phase log, merged by phase
// name.
func TestPhaseLogSharedAcrossDerive(t *testing.T) {
	b := New(Limits{MaxSteps: 10})
	b.BeginPhase("detect")
	for b.Step() == nil {
	}
	rb := b.Derive(Limits{MaxSteps: 100})
	if rb.Err() != nil || rb.Steps() != 0 {
		t.Fatalf("derived budget inherited exhaustion: err=%v steps=%d", rb.Err(), rb.Steps())
	}
	rb.BeginPhase("detect")
	for i := 0; i < 20; i++ {
		if err := rb.Step(); err != nil {
			t.Fatalf("fresh budget tripped: %v", err)
		}
	}
	us := rb.PhaseUsages()
	if len(us) != 1 || us[0].Phase != "detect" {
		t.Fatalf("phases %+v", us)
	}
	if us[0].Steps != 11+20 {
		t.Errorf("merged detect steps %d, want 31", us[0].Steps)
	}
}

// TestDeriveKeepsDeadline: Derive must preserve a running wall clock
// (a retry is not an excuse to run forever) while resetting caps.
func TestDeriveKeepsDeadline(t *testing.T) {
	b := New(Limits{Timeout: time.Nanosecond, MaxSteps: 1})
	time.Sleep(time.Millisecond)
	rb := b.Derive(Limits{MaxSteps: 1000})
	if ClassOf(rb.CheckDeadline()) != ClassTimeout {
		t.Error("derived budget dropped the parent's expired deadline")
	}
	// And a parent without a deadline starts one if the new limits ask.
	rb2 := (New(Limits{})).Derive(Limits{Timeout: time.Hour})
	if err := rb2.CheckDeadline(); err != nil {
		t.Errorf("fresh hour-long deadline already expired: %v", err)
	}
}
