package budget

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestNilBudgetIsUnlimited(t *testing.T) {
	var b *Budget
	for i := 0; i < 1000; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("nil budget Step: %v", err)
		}
	}
	if err := b.AddNode(); err != nil {
		t.Fatalf("nil budget AddNode: %v", err)
	}
	if err := b.AddEdge(); err != nil {
		t.Fatalf("nil budget AddEdge: %v", err)
	}
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("nil budget CheckDeadline: %v", err)
	}
	if b.Err() != nil || b.Exceeded() {
		t.Fatal("nil budget reports a failure")
	}
	if b.DeadlineOnly() != nil {
		t.Fatal("nil budget DeadlineOnly should stay nil")
	}
}

func TestStepCap(t *testing.T) {
	b := New(Limits{MaxSteps: 10})
	for i := 0; i < 10; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step %d failed early: %v", i, err)
		}
	}
	err := b.Step()
	if err == nil {
		t.Fatal("11th step should exceed the cap")
	}
	if ClassOf(err) != ClassBudget {
		t.Fatalf("class = %v, want %v", ClassOf(err), ClassBudget)
	}
	// Sticky: every later call returns the same failure.
	if err2 := b.Step(); !errors.Is(err2, err) {
		t.Fatalf("failure not sticky: %v vs %v", err2, err)
	}
	if b.Err() == nil || !b.Exceeded() {
		t.Fatal("Err/Exceeded disagree with Step")
	}
}

func TestNodeAndEdgeCaps(t *testing.T) {
	b := New(Limits{MaxNodes: 2})
	b.AddNode()
	b.AddNode()
	if err := b.AddNode(); ClassOf(err) != ClassBudget {
		t.Fatalf("node cap: got %v", err)
	}
	b = New(Limits{MaxEdges: 1})
	b.AddEdge()
	if err := b.AddEdge(); ClassOf(err) != ClassBudget {
		t.Fatalf("edge cap: got %v", err)
	}
}

func TestDeadline(t *testing.T) {
	b := New(Limits{Timeout: time.Nanosecond})
	if err := b.CheckDeadline(); ClassOf(err) != ClassTimeout {
		t.Fatalf("expired deadline not caught: %v", err)
	}
	// Step notices too, within deadlineEvery steps.
	b = New(Limits{Timeout: time.Nanosecond})
	var err error
	for i := 0; i < 2*deadlineEvery && err == nil; i++ {
		err = b.Step()
	}
	if ClassOf(err) != ClassTimeout {
		t.Fatalf("Step never hit the deadline: %v", err)
	}
}

func TestErrIsUntypedNil(t *testing.T) {
	b := New(Limits{MaxSteps: 100})
	if err := b.Err(); err != nil {
		t.Fatalf("fresh budget Err() = %v (%T)", err, err)
	}
}

func TestDeadlineOnlyDropsCapsAndFailure(t *testing.T) {
	b := New(Limits{Timeout: time.Hour, MaxSteps: 1})
	b.Step()
	if err := b.Step(); err == nil {
		t.Fatal("cap should have tripped")
	}
	d := b.DeadlineOnly()
	if d.Exceeded() {
		t.Fatal("derived budget inherited the failure")
	}
	for i := 0; i < 1000; i++ {
		if err := d.Step(); err != nil {
			t.Fatalf("derived budget has a step cap: %v", err)
		}
	}
	if err := d.CheckDeadline(); err != nil {
		t.Fatalf("hour-long deadline already expired: %v", err)
	}
}

func TestGuardConvertsPanics(t *testing.T) {
	err := Guard("phase-x", func() error { panic("boom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("got %v (%T), want *PanicError", err, err)
	}
	if pe.Phase != "phase-x" || fmt.Sprint(pe.Value) != "boom" || len(pe.Stack) == 0 {
		t.Fatalf("panic not captured faithfully: %+v", pe)
	}
	if ClassOf(err) != ClassPanic {
		t.Fatalf("class = %v, want %v", ClassOf(err), ClassPanic)
	}
}

func TestGuardPassesThroughBudgetPanics(t *testing.T) {
	b := New(Limits{MaxSteps: 1})
	b.Step()
	berr := b.Step()
	err := Guard("normalize", func() error { panic(berr) })
	if ClassOf(err) != ClassBudget {
		t.Fatalf("budget panic relabelled: %v (class %v)", err, ClassOf(err))
	}
}

func TestGuardReturnsPlainErrors(t *testing.T) {
	want := errors.New("plain")
	if err := Guard("p", func() error { return want }); !errors.Is(err, want) {
		t.Fatalf("got %v, want %v", err, want)
	}
	if err := Guard("p", func() error { return nil }); err != nil {
		t.Fatalf("nil-error phase returned %v", err)
	}
}

func TestClassOfDefaults(t *testing.T) {
	if ClassOf(nil) != ClassNone {
		t.Fatal("nil error should be ClassNone")
	}
	if ClassOf(errors.New("other")) != ClassNone {
		t.Fatal("unknown errors classify as ClassNone (caller default)")
	}
	if ClassNone.String() != "ok" || ClassTimeout.String() != "timeout" {
		t.Fatal("Class.String rendering changed")
	}
}
