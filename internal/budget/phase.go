package budget

import "time"

// PhaseUsage is the budget consumption of one pipeline phase: the
// cooperative steps, graph nodes/edges and wall-clock time charged
// while that phase was current. Per-phase accounting is what lets a
// report say *which* phase exhausted the budget (and lets a
// degradation ladder pick caps that target the hungry phase) instead
// of only knowing that one did.
type PhaseUsage struct {
	Phase string
	Steps int
	Nodes int
	Edges int
	Dur   time.Duration
}

// phaseLog accumulates PhaseUsage rows for one scan. It is owned by
// the scan goroutine (like the Budget itself) and shared across
// derived budgets, so a grace detection pass on a DeadlineOnly budget
// or a fallback retry on a Derive'd one still lands in the same log.
type phaseLog struct {
	phases []PhaseUsage
	cur    string
	start  time.Time
	// owner is the budget whose counters the current phase's marks
	// were taken from; deltas are only meaningful against it.
	owner                           *Budget
	markSteps, markNodes, markEdges int
}

// current returns the phase name the log is in (nil-safe; "" when no
// phase was ever declared).
func (p *phaseLog) current() string {
	if p == nil {
		return ""
	}
	return p.cur
}

// closeCurrent folds the running phase's consumption into the log.
// Re-entered phase names (detection running again on a retry budget)
// accumulate into their existing row.
func (p *phaseLog) closeCurrent() {
	if p == nil || p.cur == "" || p.owner == nil {
		return
	}
	u := PhaseUsage{
		Phase: p.cur,
		Steps: p.owner.steps - p.markSteps,
		Nodes: p.owner.nodes - p.markNodes,
		Edges: p.owner.edges - p.markEdges,
		Dur:   time.Since(p.start),
	}
	for i := range p.phases {
		if p.phases[i].Phase == u.Phase {
			p.phases[i].Steps += u.Steps
			p.phases[i].Nodes += u.Nodes
			p.phases[i].Edges += u.Edges
			p.phases[i].Dur += u.Dur
			p.cur, p.owner = "", nil
			return
		}
	}
	p.phases = append(p.phases, u)
	p.cur, p.owner = "", nil
}

// BeginPhase declares that subsequent consumption belongs to the named
// pipeline phase, closing the previous one. Phase boundaries are
// orders of magnitude rarer than Step calls, so the time.Now here is
// noise.
func (b *Budget) BeginPhase(name string) {
	if b == nil {
		return
	}
	if b.plog == nil {
		b.plog = &phaseLog{}
	}
	b.plog.closeCurrent()
	b.plog.cur = name
	b.plog.owner = b
	b.plog.start = time.Now()
	b.plog.markSteps, b.plog.markNodes, b.plog.markEdges = b.steps, b.nodes, b.edges
}

// PhaseUsages closes the running phase and returns the accumulated
// per-phase consumption in first-entered order (nil when the owner
// never declared phases).
func (b *Budget) PhaseUsages() []PhaseUsage {
	if b == nil || b.plog == nil {
		return nil
	}
	b.plog.closeCurrent()
	return b.plog.phases
}

// ExhaustedPhase returns the phase that was current when the budget's
// failure was recorded ("" while the budget holds or when no phases
// were declared).
func (b *Budget) ExhaustedPhase() string {
	if b == nil || b.failure == nil {
		return ""
	}
	return b.failure.Phase
}
