package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

// A budget with a live context behaves exactly like one without: the
// done channel is polled, never blocked on.
func TestWithContextLiveContextIsFree(t *testing.T) {
	b := New(Limits{MaxSteps: 1000}).WithContext(context.Background())
	for i := 0; i < 500; i++ {
		if err := b.Step(); err != nil {
			t.Fatalf("step %d failed under a live context: %v", i, err)
		}
	}
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("CheckDeadline failed under a live context: %v", err)
	}
}

// Once the context is done, the next CheckDeadline records a
// ClassCanceled failure and every later call keeps returning it.
func TestWithContextCancelTripsCheckDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(Limits{}).WithContext(ctx)
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("pre-cancel CheckDeadline: %v", err)
	}
	cancel()
	err := b.CheckDeadline()
	if err == nil {
		t.Fatal("CheckDeadline returned nil after cancel")
	}
	if ClassOf(err) != ClassCanceled {
		t.Fatalf("class = %v, want %v", ClassOf(err), ClassCanceled)
	}
	// Sticky, like every budget failure.
	if err2 := b.Step(); !errors.Is(err2, err) && err2 == nil {
		t.Fatal("Step after canceled failure returned nil")
	}
	if ClassOf(b.Err()) != ClassCanceled {
		t.Fatalf("Err class = %v, want %v", ClassOf(b.Err()), ClassCanceled)
	}
}

// Step observes cancellation at the deadlineEvery cadence even when no
// wall-clock deadline is configured.
func TestWithContextCancelTripsStep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(Limits{}).WithContext(ctx)
	var err error
	for i := 0; i < 2*deadlineEvery && err == nil; i++ {
		err = b.Step()
	}
	if ClassOf(err) != ClassCanceled {
		t.Fatalf("Step never tripped on a canceled context (err=%v)", err)
	}
}

// Derived budgets (retry allowances, the DeadlineOnly grace budget)
// inherit the done channel: a canceled client cancels the grace phase
// and every retry too.
func TestWithContextPropagatesThroughDeriveAndDeadlineOnly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(Limits{MaxSteps: 10}).WithContext(ctx)
	cancel()
	if err := b.Derive(Limits{MaxSteps: 5}).CheckDeadline(); ClassOf(err) != ClassCanceled {
		t.Fatalf("Derive dropped the context: %v", err)
	}
	if err := b.DeadlineOnly().CheckDeadline(); ClassOf(err) != ClassCanceled {
		t.Fatalf("DeadlineOnly dropped the context: %v", err)
	}
}

// Cancellation wins over an expired deadline: an abandoned request
// classifies as canceled, not timeout, so nothing about the package is
// concluded from it.
func TestCanceledBeatsExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(Limits{Timeout: time.Nanosecond}).WithContext(ctx)
	time.Sleep(time.Millisecond)
	if err := b.CheckDeadline(); ClassOf(err) != ClassCanceled {
		t.Fatalf("class = %v, want %v", ClassOf(b.Err()), ClassCanceled)
	}
}

// Guard passes canceled budget errors through with their class intact
// (the normalizer unwinds by panicking with the budget error).
func TestGuardPassesCanceledThrough(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := New(Limits{}).WithContext(ctx)
	err := Guard("phase", func() error {
		panic(b.CheckDeadline())
	})
	if ClassOf(err) != ClassCanceled {
		t.Fatalf("Guard reclassified canceled as %v", ClassOf(err))
	}
}

// A nil context and a nil receiver are both no-ops.
func TestWithContextNilSafety(t *testing.T) {
	var nb *Budget
	if nb.WithContext(context.Background()) != nil {
		t.Fatal("nil receiver should stay nil")
	}
	b := New(Limits{}).WithContext(nil)
	if err := b.CheckDeadline(); err != nil {
		t.Fatalf("nil ctx should be a no-op: %v", err)
	}
}
