// Package budget is the fault-containment substrate shared by every
// analysis engine: a per-scan Budget carrying a wall-clock deadline
// plus step/node/edge caps, checked cooperatively at the hot loops of
// the parser, normalizer, abstract interpreter, MDG construction,
// graph-database load, taint fixpoint, query traversals, and the
// ODGen unroller — and a failure taxonomy that classifies why a scan
// ended early (parse error, timeout, budget exhaustion, recovered
// engine panic, query error) so corpus sweeps report per-class counts
// instead of hanging or crashing on pathological packages.
//
// A Budget is cheap enough for per-statement checks: Step is a counter
// increment plus a nil test, and the deadline is only consulted every
// deadlineEvery steps (plus wherever CheckDeadline forces it, e.g. at
// phase boundaries). All methods are nil-receiver safe, so unbudgeted
// callers pass nil and pay a single branch.
//
// A Budget is owned by one scan and is not safe for concurrent use;
// per-package sweeps allocate one per package.
package budget

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Class labels why a scan ended early. The empty class means the scan
// ran to completion.
type Class string

// The failure taxonomy. ClassTimeout is the wall-clock deadline,
// ClassBudget a step/node/edge cap; both are classified outcomes, not
// errors. ClassParse, ClassPanic and ClassQuery accompany a non-nil
// error on the report.
const (
	ClassNone    Class = ""
	ClassParse   Class = "parse-error"
	ClassTimeout Class = "timeout"
	ClassBudget  Class = "budget-exceeded"
	ClassPanic   Class = "engine-panic"
	ClassQuery   Class = "query-error"
)

// Classes lists the failure classes in reporting order.
var Classes = []Class{ClassParse, ClassTimeout, ClassBudget, ClassPanic, ClassQuery}

// String renders the class for tables ("ok" for ClassNone).
func (c Class) String() string {
	if c == ClassNone {
		return "ok"
	}
	return string(c)
}

// Limits configures a Budget. Zero values mean unlimited.
type Limits struct {
	// Timeout is the wall-clock allowance for the whole scan.
	Timeout time.Duration
	// MaxSteps caps cooperative steps (statements parsed, abstract
	// steps interpreted, fixpoint states popped, nodes traversed...).
	MaxSteps int
	// MaxNodes / MaxEdges cap graph construction (MDG allocation).
	MaxNodes int
	MaxEdges int
}

// deadlineEvery is how many Steps pass between wall-clock reads;
// time.Now costs ~50ns, so the amortized overhead stays ~1ns/step.
const deadlineEvery = 64

// Budget enforces Limits for one scan. The zero value (and nil) is an
// unlimited budget.
type Budget struct {
	limits   Limits
	deadline time.Time

	steps, nodes, edges int
	failure             *Error
}

// New starts a budget: the deadline clock begins now.
func New(l Limits) *Budget {
	b := &Budget{limits: l}
	if l.Timeout > 0 {
		b.deadline = time.Now().Add(l.Timeout)
	}
	return b
}

// DeadlineOnly derives a budget that keeps this one's wall-clock
// deadline but drops the step/node/edge caps and the recorded failure.
// The scanner uses it to compute findings-so-far on a partial MDG
// after a cap was hit, without letting that grace phase run past the
// original deadline.
func (b *Budget) DeadlineOnly() *Budget {
	if b == nil {
		return nil
	}
	return &Budget{deadline: b.deadline, limits: Limits{Timeout: b.limits.Timeout}}
}

// Step consumes one cooperative step. It returns the recorded failure
// (always an *Error) once a limit is hit, and keeps returning it on
// every later call so hot loops can simply propagate.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.steps++
	if b.limits.MaxSteps > 0 && b.steps > b.limits.MaxSteps {
		return b.fail(ClassBudget, "steps", b.limits.MaxSteps)
	}
	if !b.deadline.IsZero() && b.steps%deadlineEvery == 0 {
		return b.checkDeadline()
	}
	return nil
}

// AddNode charges one graph node against MaxNodes.
func (b *Budget) AddNode() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.nodes++
	if b.limits.MaxNodes > 0 && b.nodes > b.limits.MaxNodes {
		return b.fail(ClassBudget, "nodes", b.limits.MaxNodes)
	}
	return nil
}

// AddEdge charges one graph edge against MaxEdges.
func (b *Budget) AddEdge() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.edges++
	if b.limits.MaxEdges > 0 && b.edges > b.limits.MaxEdges {
		return b.fail(ClassBudget, "edges", b.limits.MaxEdges)
	}
	return nil
}

// CheckDeadline reads the wall clock unconditionally (phase
// boundaries call this so even a scan that never ticks a hot loop
// notices an expired deadline).
func (b *Budget) CheckDeadline() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	if b.deadline.IsZero() {
		return nil
	}
	return b.checkDeadline()
}

func (b *Budget) checkDeadline() error {
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		return b.fail(ClassTimeout, "wall clock", int(b.limits.Timeout/time.Millisecond))
	}
	return nil
}

func (b *Budget) fail(c Class, resource string, limit int) error {
	if b.failure == nil {
		b.failure = &Error{Class: c, Resource: resource, Limit: limit}
	}
	return b.failure
}

// Err returns the first recorded limit failure, or nil while the
// budget holds. (Returned as an untyped nil so `if b.Err() != nil`
// behaves.)
func (b *Budget) Err() error {
	if b == nil || b.failure == nil {
		return nil
	}
	return b.failure
}

// Exceeded reports whether any limit has been hit.
func (b *Budget) Exceeded() bool { return b != nil && b.failure != nil }

// Steps returns the cooperative steps consumed so far.
func (b *Budget) Steps() int {
	if b == nil {
		return 0
	}
	return b.steps
}

// Nodes returns the graph nodes charged so far.
func (b *Budget) Nodes() int {
	if b == nil {
		return 0
	}
	return b.nodes
}

// Edges returns the graph edges charged so far.
func (b *Budget) Edges() int {
	if b == nil {
		return 0
	}
	return b.edges
}

// Error is a classified limit failure: which resource ran out and what
// its cap was. Its Class is ClassTimeout for the wall clock and
// ClassBudget for every counted cap.
type Error struct {
	Class    Class
	Resource string
	Limit    int
}

func (e *Error) Error() string {
	if e.Class == ClassTimeout {
		return fmt.Sprintf("budget: wall-clock deadline exceeded (%dms)", e.Limit)
	}
	return fmt.Sprintf("budget: %s limit exceeded (%d)", e.Resource, e.Limit)
}

// PanicError is a recovered engine crash: the phase it happened in,
// the panic value, and the stack at the recovery point.
type PanicError struct {
	Phase string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("budget: panic in %s: %v", e.Phase, e.Value)
}

// Guard runs one engine phase with panic isolation: a panic inside f
// becomes a *PanicError instead of crashing the process (or a whole
// corpus sweep). Cooperative aborts that unwind by panicking with a
// budget error (the normalizer does this, having no error returns)
// pass through with their classification intact rather than being
// relabelled as panics.
func Guard(phase string, f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok {
			var be *Error
			if errors.As(e, &be) {
				err = e
				return
			}
		}
		err = &PanicError{Phase: phase, Value: r, Stack: debug.Stack()}
	}()
	return f()
}

// ClassOf classifies an error: budget errors carry their own class,
// recovered panics are ClassPanic, nil is ClassNone, and anything else
// returns ClassNone so the caller applies its phase default (parse
// errors in the front end, query errors in detection).
func ClassOf(err error) Class {
	if err == nil {
		return ClassNone
	}
	var be *Error
	if errors.As(err, &be) {
		return be.Class
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	return ClassNone
}
