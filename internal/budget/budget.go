// Package budget is the fault-containment substrate shared by every
// analysis engine: a per-scan Budget carrying a wall-clock deadline
// plus step/node/edge caps, checked cooperatively at the hot loops of
// the parser, normalizer, abstract interpreter, MDG construction,
// graph-database load, taint fixpoint, query traversals, and the
// ODGen unroller — and a failure taxonomy that classifies why a scan
// ended early (parse error, timeout, budget exhaustion, recovered
// engine panic, query error) so corpus sweeps report per-class counts
// instead of hanging or crashing on pathological packages.
//
// A Budget is cheap enough for per-statement checks: Step is a counter
// increment plus a nil test, and the deadline is only consulted every
// deadlineEvery steps (plus wherever CheckDeadline forces it, e.g. at
// phase boundaries). All methods are nil-receiver safe, so unbudgeted
// callers pass nil and pay a single branch.
//
// A Budget is owned by one scan and is not safe for concurrent use;
// per-package sweeps allocate one per package.
package budget

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Class labels why a scan ended early. The empty class means the scan
// ran to completion.
type Class string

// The failure taxonomy. ClassTimeout is the wall-clock deadline,
// ClassBudget a step/node/edge cap; both are classified outcomes, not
// errors. ClassParse, ClassPanic and ClassQuery accompany a non-nil
// error on the report.
const (
	ClassNone    Class = ""
	ClassParse   Class = "parse-error"
	ClassResolve Class = "resolve-error"
	ClassTimeout Class = "timeout"
	ClassBudget  Class = "budget-exceeded"
	ClassPanic   Class = "engine-panic"
	ClassQuery   Class = "query-error"
	// ClassCanceled means the request context attached via WithContext
	// was done (client disconnected, server shutdown) before the scan
	// finished. Unlike ClassTimeout it says nothing about the package:
	// the same input scanned again with a live client is expected to
	// succeed, so supervisors journal it as retryable and caches must
	// never store a canceled result as a clean one.
	ClassCanceled Class = "canceled"
)

// Classes lists the failure classes in reporting order. ClassResolve
// is a dependency-tree resolution failure (missing or broken
// node_modules entry): like ClassParse it is deterministic — retrying
// with a different engine or budget cannot fix the tree on disk.
var Classes = []Class{ClassParse, ClassResolve, ClassTimeout, ClassBudget, ClassPanic, ClassQuery, ClassCanceled}

// String renders the class for tables ("ok" for ClassNone).
func (c Class) String() string {
	if c == ClassNone {
		return "ok"
	}
	return string(c)
}

// Limits configures a Budget. Zero values mean unlimited.
type Limits struct {
	// Timeout is the wall-clock allowance for the whole scan.
	Timeout time.Duration
	// MaxSteps caps cooperative steps (statements parsed, abstract
	// steps interpreted, fixpoint states popped, nodes traversed...).
	MaxSteps int
	// MaxNodes / MaxEdges cap graph construction (MDG allocation).
	MaxNodes int
	MaxEdges int
}

// deadlineEvery is how many Steps pass between wall-clock reads;
// time.Now costs ~50ns, so the amortized overhead stays ~1ns/step.
const deadlineEvery = 64

// Budget enforces Limits for one scan. The zero value (and nil) is an
// unlimited budget.
type Budget struct {
	limits   Limits
	deadline time.Time

	steps, nodes, edges int
	failure             *Error

	// label identifies the scan (package name, plus an attempt suffix
	// under a sweep supervisor); the fault-injection plan keys its
	// deterministic decisions on it.
	label string
	// checks counts injection decision points consumed so far, so an
	// injection decision depends only on (plan seed, label, ordinal) —
	// never on goroutine interleaving. inj is the resolved decision.
	checks int
	inj    injection
	// plog accumulates per-phase consumption; shared with budgets
	// derived via DeadlineOnly/Derive so grace and retry phases land in
	// the same report.
	plog *phaseLog

	// done is the request context's cancellation channel (nil when no
	// context is attached). It is polled — never blocked on — at the
	// same cooperative checkpoints as the deadline, so cancellation
	// costs nothing extra on the hot path and needs no watcher
	// goroutine.
	done <-chan struct{}
}

// New starts a budget: the deadline clock begins now.
func New(l Limits) *Budget {
	b := &Budget{limits: l}
	if l.Timeout > 0 {
		b.deadline = time.Now().Add(l.Timeout)
	}
	return b
}

// SetLabel names the scan this budget belongs to (used to seed
// deterministic fault injection and to phase-stamp errors).
func (b *Budget) SetLabel(label string) {
	if b != nil {
		b.label = label
	}
}

// WithContext attaches a request context: once ctx is done, the next
// cooperative checkpoint (Step's every-deadlineEvery tick, or any
// CheckDeadline at a phase boundary) records a ClassCanceled failure
// and every later budget call keeps returning it, unwinding the scan
// exactly the way an expired deadline does. A nil ctx (or nil
// receiver) is a no-op; the returned budget is b, for chaining.
func (b *Budget) WithContext(ctx context.Context) *Budget {
	if b != nil && ctx != nil {
		b.done = ctx.Done()
	}
	return b
}

// DeadlineOnly derives a budget that keeps this one's wall-clock
// deadline but drops the step/node/edge caps and the recorded failure.
// The scanner uses it to compute findings-so-far on a partial MDG
// after a cap was hit, without letting that grace phase run past the
// original deadline.
func (b *Budget) DeadlineOnly() *Budget {
	if b == nil {
		return nil
	}
	return &Budget{deadline: b.deadline, limits: Limits{Timeout: b.limits.Timeout},
		label: b.label, plog: b.plog, done: b.done}
}

// Derive starts a fresh budget with new caps but this budget's
// wall-clock deadline, label and phase log: counters and any recorded
// failure are reset. Retry paths use it so a second attempt gets its
// own, typically smaller, allowance instead of inheriting an already
// exhausted one.
func (b *Budget) Derive(l Limits) *Budget {
	if b == nil {
		return New(l)
	}
	nb := &Budget{limits: l, deadline: b.deadline, label: b.label, plog: b.plog, done: b.done}
	if b.deadline.IsZero() && l.Timeout > 0 {
		nb.deadline = time.Now().Add(l.Timeout)
	}
	return nb
}

// Step consumes one cooperative step. It returns the recorded failure
// (always an *Error) once a limit is hit, and keeps returning it on
// every later call so hot loops can simply propagate.
func (b *Budget) Step() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.steps++
	if b.limits.MaxSteps > 0 && b.steps > b.limits.MaxSteps {
		return b.fail(ClassBudget, "steps", b.limits.MaxSteps)
	}
	if b.steps%deadlineEvery == 0 {
		if err := b.maybeInject(); err != nil {
			return err
		}
		if b.done != nil || !b.deadline.IsZero() {
			return b.checkWall()
		}
	}
	return nil
}

// AddNode charges one graph node against MaxNodes.
func (b *Budget) AddNode() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.nodes++
	if b.limits.MaxNodes > 0 && b.nodes > b.limits.MaxNodes {
		return b.fail(ClassBudget, "nodes", b.limits.MaxNodes)
	}
	return nil
}

// AddEdge charges one graph edge against MaxEdges.
func (b *Budget) AddEdge() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	b.edges++
	if b.limits.MaxEdges > 0 && b.edges > b.limits.MaxEdges {
		return b.fail(ClassBudget, "edges", b.limits.MaxEdges)
	}
	return nil
}

// CheckDeadline reads the wall clock — and polls the attached
// context, if any — unconditionally (phase boundaries call this so
// even a scan that never ticks a hot loop notices an expired deadline
// or a gone client).
func (b *Budget) CheckDeadline() error {
	if b == nil {
		return nil
	}
	if b.failure != nil {
		return b.failure
	}
	if err := b.maybeInject(); err != nil {
		return err
	}
	if b.done == nil && b.deadline.IsZero() {
		return nil
	}
	return b.checkWall()
}

// checkWall is the shared wall-clock checkpoint: cancellation is
// consulted before the deadline so a request that is both expired and
// abandoned classifies as canceled (the client is gone; nothing about
// the package is learned).
func (b *Budget) checkWall() error {
	if b.done != nil {
		select {
		case <-b.done:
			return b.fail(ClassCanceled, "request context", 0)
		default:
		}
	}
	if !b.deadline.IsZero() && !time.Now().Before(b.deadline) {
		return b.fail(ClassTimeout, "wall clock", int(b.limits.Timeout/time.Millisecond))
	}
	return nil
}

func (b *Budget) fail(c Class, resource string, limit int) error {
	if b.failure == nil {
		b.failure = &Error{Class: c, Resource: resource, Limit: limit, Phase: b.plog.current()}
	}
	return b.failure
}

// Err returns the first recorded limit failure, or nil while the
// budget holds. (Returned as an untyped nil so `if b.Err() != nil`
// behaves.)
func (b *Budget) Err() error {
	if b == nil || b.failure == nil {
		return nil
	}
	return b.failure
}

// Exceeded reports whether any limit has been hit.
func (b *Budget) Exceeded() bool { return b != nil && b.failure != nil }

// Limits returns the budget's configured limits (zero for nil).
func (b *Budget) Limits() Limits {
	if b == nil {
		return Limits{}
	}
	return b.limits
}

// Steps returns the cooperative steps consumed so far.
func (b *Budget) Steps() int {
	if b == nil {
		return 0
	}
	return b.steps
}

// Nodes returns the graph nodes charged so far.
func (b *Budget) Nodes() int {
	if b == nil {
		return 0
	}
	return b.nodes
}

// Edges returns the graph edges charged so far.
func (b *Budget) Edges() int {
	if b == nil {
		return 0
	}
	return b.edges
}

// Error is a classified limit failure: which resource ran out, what
// its cap was, and which pipeline phase was running when it tripped
// ("" when the owner never declared phases). Its Class is ClassTimeout
// for the wall clock and ClassBudget for every counted cap.
type Error struct {
	Class    Class
	Resource string
	Limit    int
	Phase    string
}

func (e *Error) Error() string {
	in := ""
	if e.Phase != "" {
		in = " in " + e.Phase
	}
	if e.Class == ClassTimeout {
		return fmt.Sprintf("budget: wall-clock deadline exceeded%s (%dms)", in, e.Limit)
	}
	if e.Class == ClassCanceled {
		return fmt.Sprintf("budget: scan canceled%s (request context done)", in)
	}
	return fmt.Sprintf("budget: %s limit exceeded%s (%d)", e.Resource, in, e.Limit)
}

// PanicError is a recovered engine crash: the phase it happened in,
// the panic value, and the stack at the recovery point.
type PanicError struct {
	Phase string
	Value any
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("budget: panic in %s: %v", e.Phase, e.Value)
}

// Guard runs one engine phase with panic isolation: a panic inside f
// becomes a *PanicError instead of crashing the process (or a whole
// corpus sweep). Cooperative aborts that unwind by panicking with a
// budget error (the normalizer does this, having no error returns)
// pass through with their classification intact rather than being
// relabelled as panics.
func Guard(phase string, f func() error) (err error) {
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		if e, ok := r.(error); ok {
			var be *Error
			if errors.As(e, &be) {
				err = e
				return
			}
		}
		err = &PanicError{Phase: phase, Value: r, Stack: debug.Stack()}
	}()
	return f()
}

// ClassOf classifies an error: budget errors carry their own class,
// recovered panics are ClassPanic, nil is ClassNone, and anything else
// returns ClassNone so the caller applies its phase default (parse
// errors in the front end, query errors in detection).
func ClassOf(err error) Class {
	if err == nil {
		return ClassNone
	}
	var be *Error
	if errors.As(err, &be) {
		return be.Class
	}
	var pe *PanicError
	if errors.As(err, &pe) {
		return ClassPanic
	}
	return ClassNone
}
