package budget

import (
	"fmt"
	"hash/fnv"
	"sync/atomic"
)

// Deterministic fault injection
//
// The chaos harness needs to drive the scanner through its failure
// paths — engine panics, timeouts — at realistic places (the budget
// checkpoints inside every Guard'd pipeline phase) without patching
// each engine. A FaultPlan arms those checkpoints: when one fires, it
// either panics (recovered by the surrounding Guard into a classified
// ClassPanic failure) or records a ClassTimeout failure, exactly the
// two transient/budget shapes a retry ladder must handle.
//
// Decisions are a pure function of (plan seed, budget label, checkpoint
// ordinal): each Budget counts its own checkpoints, so a scan faults at
// the same point on every run regardless of how a parallel sweep's
// goroutines interleave — the property that lets a chaos test assert
// exact outcome equivalence. Injection is a test hook: nothing in the
// production path sets a plan, and a nil plan costs one atomic load
// per checkpoint.

// FaultPlan configures deterministic fault injection at budget
// checkpoints. Probabilities are per *scan*, not per checkpoint: each
// armed scan draws one fault mode and one target checkpoint from the
// seeded hash.
type FaultPlan struct {
	// Seed drives every decision; two runs with equal seeds and labels
	// inject identically.
	Seed int64
	// PanicProb is the probability an armed scan panics at its target
	// checkpoint; TimeoutProb the probability it trips a simulated
	// wall-clock timeout instead. Their sum must be <= 1.
	PanicProb   float64
	TimeoutProb float64
	// Spread is the checkpoint window the target is drawn from
	// (default 50): a scan that performs fewer checkpoints than its
	// target simply never faults.
	Spread int
	// DiskProb is the probability an armed persistent-store session
	// suffers one injected disk fault (a short write tearing the record
	// mid-append, or a synthetic ENOSPC) at a write checkpoint drawn
	// from the same Spread window. Store writes consult DiskFaultAt
	// with their session label and per-session write ordinal, so disk
	// faults are as deterministic as the engine faults above.
	DiskProb float64
	// Arm filters eligible scans by budget label (nil = every scan).
	// Supervisors label attempts "name#attempt", so a plan can restrict
	// faults to first attempts and keep retries clean.
	Arm func(label string) bool
}

var faultPlan atomic.Pointer[FaultPlan]

// SetFaultPlan installs (or, with nil, clears) the process-wide fault
// plan. Test-only: callers must clear the plan before returning.
func SetFaultPlan(p *FaultPlan) { faultPlan.Store(p) }

// InjectedFault is the panic value of a plan-injected engine crash.
// Guard does not treat it as a cooperative abort, so it surfaces as a
// *PanicError with ClassPanic — indistinguishable from a real engine
// bug, which is the point.
type InjectedFault struct {
	Label string
	Check int
}

func (e *InjectedFault) Error() string {
	return fmt.Sprintf("budget: injected fault (label %q, checkpoint %d)", e.Label, e.Check)
}

// DiskFault is one injected persistent-store I/O failure mode.
type DiskFault int

// Disk-fault modes drawn by DiskFaultAt.
const (
	// DiskNone: no fault at this checkpoint.
	DiskNone DiskFault = iota
	// DiskShortWrite: the write tears partway through the record —
	// the torn-tail shape a crash or power loss leaves behind.
	DiskShortWrite
	// DiskENOSPC: the write fails before any byte lands (device full).
	DiskENOSPC
)

// DiskFaultAt consults the process-wide fault plan for persistent-store
// I/O: the decision is a pure function of (plan seed, label, write
// ordinal), so a store session faults at the same write on every run.
// Like maybeInject, at most one disk fault fires per label. A nil plan
// or zero DiskProb means no injection (the production path).
func DiskFaultAt(label string, ordinal int) DiskFault {
	p := faultPlan.Load()
	if p == nil || p.DiskProb <= 0 {
		return DiskNone
	}
	if p.Arm != nil && !p.Arm(label) {
		return DiskNone
	}
	if hash01(p.Seed, label, "diskprob") >= p.DiskProb {
		return DiskNone
	}
	spread := p.Spread
	if spread <= 0 {
		spread = 50
	}
	if ordinal != 1+int(hash01(p.Seed, label, "diskcheck")*float64(spread)) {
		return DiskNone
	}
	if hash01(p.Seed, label, "diskmode") < 0.5 {
		return DiskShortWrite
	}
	return DiskENOSPC
}

// hash01 maps (seed, label, salt) to [0,1) deterministically.
func hash01(seed int64, label string, salt string) float64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s|%s", seed, label, salt)
	return float64(h.Sum64()>>11) / float64(1<<53)
}

// injection is a Budget's resolved fault decision.
type injection struct {
	planned bool
	mode    int // 0 = none, 1 = panic, 2 = timeout
	target  int // checkpoint ordinal the fault fires at
}

// maybeInject runs one fault-injection checkpoint. It must only be
// reached from inside a Guard'd phase (every budget checkpoint is), so
// an injected panic is always recovered into a classified failure.
func (b *Budget) maybeInject() error {
	p := faultPlan.Load()
	if p == nil {
		return nil
	}
	b.checks++
	if !b.inj.planned {
		b.inj.planned = true
		if p.Arm == nil || p.Arm(b.label) {
			u := hash01(p.Seed, b.label, "mode")
			spread := p.Spread
			if spread <= 0 {
				spread = 50
			}
			b.inj.target = 1 + int(hash01(p.Seed, b.label, "check")*float64(spread))
			switch {
			case u < p.PanicProb:
				b.inj.mode = 1
			case u < p.PanicProb+p.TimeoutProb:
				b.inj.mode = 2
			}
		}
	}
	if b.inj.mode == 0 || b.checks != b.inj.target {
		return nil
	}
	switch b.inj.mode {
	case 1:
		b.inj.mode = 0
		panic(&InjectedFault{Label: b.label, Check: b.checks}) //lint:allow nakedpanic -- the fault-injection panic itself, recovered by Guard
	default:
		b.inj.mode = 0
		return b.fail(ClassTimeout, "injected fault", 0)
	}
}
