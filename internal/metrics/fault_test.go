package metrics

import (
	"errors"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/scanner"
)

// TestSweepSurvivesPanickingPackage: one package whose scan panics
// must become a classified failure row while the Workers=4 pool keeps
// draining every other package. Run under -race (make check does) this
// also checks the protected path for data races.
func TestSweepSurvivesPanickingPackage(t *testing.T) {
	const n = 16
	sw := runCorpus(n, 4, func(i int) PackageResult {
		if i == 2 {
			panic("injected package bug")
		}
		return PackageResult{LoC: i}
	})
	if len(sw.Results) != n {
		t.Fatalf("got %d results, want %d", len(sw.Results), n)
	}
	for i, r := range sw.Results {
		if i == 2 {
			if r.Failure != budget.ClassPanic {
				t.Errorf("panicking package classified %q, want %q", r.Failure, budget.ClassPanic)
			}
			var pe *budget.PanicError
			if !errors.As(r.Err, &pe) {
				t.Errorf("panicking package err %T, want *budget.PanicError", r.Err)
			}
			continue
		}
		if r.Err != nil || r.Failure != budget.ClassNone {
			t.Errorf("package %d contaminated by neighbor's panic: err=%v class=%q", i, r.Err, r.Failure)
		}
		if r.LoC != i {
			t.Errorf("package %d result corrupted: LoC=%d", i, r.LoC)
		}
	}
}

// TestPathologicalSweepIsolation mixes the crash corpus into a normal
// sweep: the pathological packages must come back classified, and the
// ordinary packages must produce exactly the findings they produce
// when scanned alone.
func TestPathologicalSweepIsolation(t *testing.T) {
	normal := groundTruth(t)
	if len(normal.Packages) > 12 {
		normal.Packages = normal.Packages[:12]
	}
	mixed := &dataset.Corpus{Name: "mixed"}
	mixed.Packages = append(mixed.Packages, dataset.Pathological().Packages...)
	mixed.Packages = append(mixed.Packages, normal.Packages...)

	opts := scanner.Options{Timeout: 30 * time.Second, Workers: 4}
	sw := SweepGraphJS(mixed, opts)

	counts := FailureCounts(sw.Results)
	if counts[budget.ClassParse] != 2 {
		t.Errorf("parse-error count %d, want 2 (deep_nesting, unterminated_template)", counts[budget.ClassParse])
	}
	if counts[budget.ClassPanic] != 0 {
		t.Errorf("panic count %d, want 0", counts[budget.ClassPanic])
	}
	for _, r := range sw.Results[len(dataset.Pathological().Packages):] {
		solo := scanner.ScanSource(r.Package.Source, r.Package.Name, scanner.Options{})
		if err := scanner.DiffFindings(solo.Findings, r.Findings); err != nil {
			t.Errorf("package %s: sweep findings differ from solo scan: %v", r.Package.Name, err)
		}
	}
}

// TestODGenPathologicalSweep: the baseline must classify the unroll
// bomb as a budget exhaustion while keeping the finding it had already
// established, and parse failures stay parse failures.
func TestODGenPathologicalSweep(t *testing.T) {
	opts := odgen.DefaultOptions()
	opts.StepBudget = 20000
	opts.Timeout = 30 * time.Second
	sw := SweepODGen(dataset.Pathological(), opts)
	byName := map[string]PackageResult{}
	for _, r := range sw.Results {
		byName[r.Package.Name] = r
	}
	if r := byName["deep_nesting"]; r.Failure != budget.ClassParse {
		t.Errorf("deep_nesting classified %q, want %q", r.Failure, budget.ClassParse)
	}
	r := byName["unroll_bomb"]
	if r.Failure != budget.ClassBudget {
		t.Errorf("unroll_bomb classified %q, want %q", r.Failure, budget.ClassBudget)
	}
	if !r.Incomplete {
		t.Error("unroll_bomb not marked Incomplete")
	}
	if len(r.Findings) == 0 {
		t.Error("unroll_bomb lost its pre-timeout finding")
	}
}

// TestFallbackSweepMatchesNative is the acceptance check for the
// fallback engine: with both backends healthy it must produce, package
// by package, the surviving (native) engine's findings across the
// ground-truth corpus.
func TestFallbackSweepMatchesNative(t *testing.T) {
	c := groundTruth(t)
	native := SweepGraphJS(c, scanner.Options{Engine: scanner.EngineNative})
	fb := SweepGraphJS(c, scanner.Options{Engine: scanner.EngineFallback})
	for i := range c.Packages {
		nr, fr := native.Results[i], fb.Results[i]
		if fr.Err != nil {
			t.Errorf("package %s: fallback errored: %v", fr.Package.Name, fr.Err)
			continue
		}
		if err := scanner.DiffFindings(nr.Findings, fr.Findings); err != nil {
			t.Errorf("package %s: fallback differs from native: %v", fr.Package.Name, err)
		}
	}
}
