package metrics

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/queries"
	"repro/internal/scanner"
)

func mkPkg(name string, cwe queries.CWE, annLines, expLines []int) *dataset.Package {
	p := &dataset.Package{Name: name, CWE: cwe}
	for _, l := range annLines {
		a := dataset.Annotation{CWE: cwe, Line: l}
		p.Annotated = append(p.Annotated, a)
		p.Exploitable = append(p.Exploitable, a)
	}
	for _, l := range expLines {
		p.Exploitable = append(p.Exploitable, dataset.Annotation{CWE: cwe, Line: l})
	}
	return p
}

func TestEvaluateClassification(t *testing.T) {
	pkg := mkPkg("p1", queries.CWECommandInjection, []int{5}, []int{9})
	results := []PackageResult{{
		Package: pkg,
		Findings: []queries.Finding{
			{CWE: queries.CWECommandInjection, SinkLine: 5},  // TP
			{CWE: queries.CWECommandInjection, SinkLine: 9},  // FP, not TFP
			{CWE: queries.CWECommandInjection, SinkLine: 42}, // FP and TFP
		},
	}}
	out := Evaluate("tool", results, false)
	c := out.PerCWE[queries.CWECommandInjection]
	if c.Total != 1 || c.TP != 1 || c.FP != 2 || c.TFP != 1 {
		t.Fatalf("counts = %+v", c)
	}
	if c.Precision() != 0.5 {
		t.Errorf("precision = %v", c.Precision())
	}
	if c.Recall() != 1.0 {
		t.Errorf("recall = %v", c.Recall())
	}
}

func TestLenientMatching(t *testing.T) {
	pkg := mkPkg("p1", queries.CWECodeInjection, []int{5}, nil)
	results := []PackageResult{{
		Package:  pkg,
		Findings: []queries.Finding{{CWE: queries.CWECodeInjection, SinkLine: 99}},
	}}
	strict := Evaluate("t", results, false)
	if strict.PerCWE[queries.CWECodeInjection].TP != 0 {
		t.Fatal("strict must require line match")
	}
	lenient := Evaluate("t", results, true)
	if lenient.PerCWE[queries.CWECodeInjection].TP != 1 {
		t.Fatal("lenient must accept type-only match")
	}
}

func TestVenn(t *testing.T) {
	a := &Outcome{Detected: map[string]bool{"x": true, "y": true}}
	b := &Outcome{Detected: map[string]bool{"y": true, "z": true}}
	onlyA, both, onlyB := Venn(a, b)
	if onlyA != 1 || both != 1 || onlyB != 1 {
		t.Fatalf("venn = %d/%d/%d", onlyA, both, onlyB)
	}
}

func TestF1(t *testing.T) {
	c := Counts{Total: 10, TP: 8, TFP: 2}
	p, r := c.Precision(), c.Recall()
	want := 2 * p * r / (p + r)
	if c.F1() != want {
		t.Fatalf("f1 = %v, want %v", c.F1(), want)
	}
	var zero Counts
	if zero.F1() != 0 || zero.Precision() != 0 || zero.Recall() != 0 {
		t.Fatal("zero counts must not divide by zero")
	}
}

func TestCDF(t *testing.T) {
	mk := func(ms int, timedOut bool) PackageResult {
		return PackageResult{GraphTime: time.Duration(ms) * time.Millisecond, TimedOut: timedOut,
			Package: &dataset.Package{}}
	}
	results := []PackageResult{mk(1, false), mk(5, false), mk(50, false), mk(1, true)}
	cdf := CDF(results, []time.Duration{2 * time.Millisecond, 10 * time.Millisecond, time.Second}, time.Minute)
	if cdf[0] != 0.25 || cdf[1] != 0.5 || cdf[2] != 0.75 {
		t.Fatalf("cdf = %v", cdf)
	}
}

func TestSizeBuckets(t *testing.T) {
	results := []PackageResult{
		{LoC: 10, TotalNodes: 100, TotalEdges: 200, Package: &dataset.Package{}},
		{LoC: 10, TotalNodes: 300, TotalEdges: 400, Package: &dataset.Package{}},
		{LoC: 500, TotalNodes: 1000, TotalEdges: 1, Package: &dataset.Package{}},
		{LoC: 500, TimedOut: true, Package: &dataset.Package{}},
	}
	buckets := SizeBuckets(results, []int{100})
	if len(buckets) != 2 {
		t.Fatalf("buckets = %d", len(buckets))
	}
	if buckets[0].Packages != 2 || buckets[0].AvgNodes != 200 {
		t.Fatalf("bucket0 = %+v", buckets[0])
	}
	if buckets[1].Packages != 2 || buckets[1].Graphs != 1 {
		t.Fatalf("bucket1 = %+v", buckets[1])
	}
}

func TestTableRendering(t *testing.T) {
	s := Table([]string{"a", "bbbb"}, [][]string{{"xxx", "y"}})
	if s == "" || len(s) < 10 {
		t.Fatalf("table = %q", s)
	}
}

// TestHeadlineReproduction is the RQ1 shape check (Table 4 + Figure 6):
// on the full ground-truth corpus, Graph.js must beat the baseline on
// recall overall, roughly double it on code injection, roughly triple
// it on prototype pollution, and the baseline's misses must be
// timeout-dominated; the detected sets must overlap as in Figure 6.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus run")
	}
	vul, sec := dataset.GroundTruth(42)
	combined := &dataset.Corpus{Name: "combined",
		Packages: append(append([]*dataset.Package{}, vul.Packages...), sec.Packages...)}

	gjs := RunGraphJS(combined, scanner.Options{})
	odg := RunODGen(combined, odgen.DefaultOptions())

	gOut := Evaluate("graphjs", gjs, false)
	oOut := Evaluate("odgen", odg, true)

	gTotal, oTotal := gOut.TotalCounts(), oOut.TotalCounts()

	if gTotal.Recall() < 0.75 {
		t.Errorf("graphjs recall = %.2f, want >= 0.75 (paper: 0.82)", gTotal.Recall())
	}
	if oTotal.Recall() > 0.60 {
		t.Errorf("baseline recall = %.2f, want <= 0.60 (paper: 0.50)", oTotal.Recall())
	}
	if gTotal.Recall() < oTotal.Recall()*1.4 {
		t.Errorf("graphjs should find ~1.6x: %.2f vs %.2f", gTotal.Recall(), oTotal.Recall())
	}

	gPP := gOut.PerCWE[queries.CWEPrototypePollution]
	oPP := oOut.PerCWE[queries.CWEPrototypePollution]
	if oPP.TP == 0 || gPP.TP < oPP.TP*2 {
		t.Errorf("pollution TP: graphjs %d vs baseline %d, want >= 2x", gPP.TP, oPP.TP)
	}
	gCI := gOut.PerCWE[queries.CWECodeInjection]
	oCI := oOut.PerCWE[queries.CWECodeInjection]
	if oCI.TP == 0 || gCI.TP < oCI.TP*3/2 {
		t.Errorf("code injection TP: graphjs %d vs baseline %d, want ~2x", gCI.TP, oCI.TP)
	}

	// Precision: Graph.js higher (paper: 0.78 vs 0.64).
	if gTotal.Precision() < 0.70 || gTotal.Precision() > 0.88 {
		t.Errorf("graphjs precision = %.2f, want ~0.78", gTotal.Precision())
	}
	if gTotal.Precision() <= oTotal.Precision() {
		t.Errorf("precision: graphjs %.2f must exceed baseline %.2f", gTotal.Precision(), oTotal.Precision())
	}

	// Figure 6 shape: the overlap dominates the baseline's set.
	onlyG, both, onlyO := Venn(gOut, oOut)
	if both == 0 || onlyG == 0 {
		t.Fatalf("venn = %d/%d/%d", onlyG, both, onlyO)
	}
	if float64(both)/float64(both+onlyO) < 0.85 {
		t.Errorf("graphjs should subsume ~94%% of baseline detections: both=%d onlyO=%d", both, onlyO)
	}

	// Timeout dominance: the baseline times out on a large fraction
	// (paper: 28.5% of packages).
	frac := float64(oOut.TimedOut) / float64(oOut.Packages)
	if frac < 0.15 || frac > 0.45 {
		t.Errorf("baseline timeout fraction = %.2f, want ~0.28", frac)
	}
	if gOut.TimedOut != 0 {
		t.Errorf("graphjs timed out on %d packages", gOut.TimedOut)
	}

	// Graph sizes: MDGs smaller on average over the packages both
	// tools completed (Table 7; the paper compares generated graphs).
	var gN, oN float64
	var gCnt, oCnt int
	for i := range gjs {
		if !odg[i].TimedOut {
			gN += float64(gjs[i].TotalNodes)
			gCnt++
		}
	}
	for i := range odg {
		if !odg[i].TimedOut {
			oN += float64(odg[i].TotalNodes)
			oCnt++
		}
	}
	gAvg, oAvg := gN/float64(gCnt), oN/float64(oCnt)
	if gAvg >= oAvg {
		t.Errorf("avg nodes: graphjs %.0f should be < baseline %.0f", gAvg, oAvg)
	}
}

func TestPhaseAverages(t *testing.T) {
	mk := func(cwe queries.CWE, g, q int, timedOut bool) PackageResult {
		return PackageResult{
			Package:   &dataset.Package{CWE: cwe},
			GraphTime: time.Duration(g) * time.Millisecond,
			QueryTime: time.Duration(q) * time.Millisecond,
			TimedOut:  timedOut,
		}
	}
	results := []PackageResult{
		mk(queries.CWECommandInjection, 10, 2, false),
		mk(queries.CWECommandInjection, 20, 4, false),
		mk(queries.CWECommandInjection, 99, 99, true), // excluded
		mk(queries.CWECodeInjection, 6, 6, false),
	}
	avg := PhaseAverages(results)
	ci := avg[queries.CWECommandInjection]
	if ci[0] != 15*time.Millisecond || ci[1] != 3*time.Millisecond {
		t.Fatalf("avg = %v", ci)
	}
	if _, ok := avg[queries.CWEPathTraversal]; ok {
		t.Fatal("empty class should be absent")
	}
}

func TestEngineAverages(t *testing.T) {
	results := []PackageResult{
		{QueryEngineTime: 10 * time.Millisecond, NativeTime: 2 * time.Millisecond, FuncsPruned: 3},
		{QueryEngineTime: 20 * time.Millisecond, NativeTime: 4 * time.Millisecond, TruncatedSearches: 1},
		{SkippedByReach: true, FuncsPruned: 5},
		{TimedOut: true, QueryEngineTime: time.Hour}, // excluded from averages
	}
	avg := EngineAverages(results)
	if avg.QueryEngine != 15*time.Millisecond || avg.Native != 3*time.Millisecond {
		t.Fatalf("averages = %+v", avg)
	}
	if avg.Packages != 2 || avg.SkippedByReach != 1 {
		t.Errorf("counts = %+v", avg)
	}
	if avg.FuncsPruned != 8 || avg.Truncated != 1 {
		t.Errorf("totals = %+v", avg)
	}
}

// TestEngineColumnsRecorded checks the harness copies the per-engine
// timing columns off the scanner report in differential mode.
func TestEngineColumnsRecorded(t *testing.T) {
	vul, _ := dataset.GroundTruth(42)
	small := &dataset.Corpus{Name: "small", Packages: vul.Packages[:4]}
	results := RunGraphJS(small, scanner.Options{Engine: scanner.EngineDifferential})
	avg := EngineAverages(results)
	if avg.Packages == 0 && avg.SkippedByReach == 0 {
		t.Fatal("no packages classified")
	}
	if avg.Packages > 0 && (avg.QueryEngine == 0 || avg.Native == 0) {
		t.Errorf("differential run must record both backend timings: %+v", avg)
	}
}

func TestFormatters(t *testing.T) {
	if FmtPct(0.8211) != "0.82" {
		t.Errorf("FmtPct = %q", FmtPct(0.8211))
	}
	if FmtDur(1500*time.Microsecond) != "1.50ms" {
		t.Errorf("FmtDur = %q", FmtDur(1500*time.Microsecond))
	}
	cwes := SortedCWEs()
	if len(cwes) != 4 {
		t.Errorf("SortedCWEs = %v", cwes)
	}
	for i := 1; i < len(cwes); i++ {
		if cwes[i-1] >= cwes[i] {
			t.Errorf("not sorted: %v", cwes)
		}
	}
}

func TestRunBothToolsSmallCorpus(t *testing.T) {
	vul, _ := dataset.GroundTruth(42)
	small := &dataset.Corpus{Name: "small", Packages: vul.Packages[:6]}
	g := RunGraphJS(small, scanner.Options{})
	o := RunODGen(small, odgen.DefaultOptions())
	if len(g) != 6 || len(o) != 6 {
		t.Fatalf("results: %d/%d", len(g), len(o))
	}
	for i := range g {
		if g[i].Package != small.Packages[i] || o[i].Package != small.Packages[i] {
			t.Fatal("package attribution broken")
		}
		if g[i].LoC == 0 {
			t.Fatal("LoC not recorded")
		}
	}
}

func TestOutcomeTotals(t *testing.T) {
	out := &Outcome{PerCWE: map[queries.CWE]*Counts{
		queries.CWECommandInjection: {Total: 5, TP: 4, FP: 2, TFP: 1},
		queries.CWECodeInjection:    {Total: 3, TP: 1, FP: 1, TFP: 1},
	}}
	tot := out.TotalCounts()
	if tot.Total != 8 || tot.TP != 5 || tot.FP != 3 || tot.TFP != 2 {
		t.Fatalf("totals = %+v", tot)
	}
}
