package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/dataset"
	"repro/internal/scanner"
)

// This file is the mutation-driven equivalence harness for the
// incremental scanner: it replays a fixed edit script against one
// package — touch, benign edit, source-introducing edit, file add
// (independent and require-linked), file delete, sink-removing edit,
// revert — and after every step asserts that an incremental re-scan
// (persistent scanner.IncrementalState) reports exactly what a cold
// scan of the same files reports. Any under-approximation in the
// scanner's component partition (internal/scanner/deps.go) shows up
// here as a divergence.

// MutationStep is one package state of the edit script.
type MutationStep struct {
	Name string
	// Files is the full package content after the step, sorted by Rel
	// (the order scanner.ScanFiles requires).
	Files []scanner.SourceFile
}

// Synthetic satellites added by the script. Identifiers are __-prefixed
// so they cannot collide with generated template names.
const (
	mutIndependentFile = "function __indep(__x) { return __x; }\nmodule.exports = __indep;\n"
	mutLinkedFile      = "var __m = require('./index');\nfunction __use(__a) { return __m(__a); }\nmodule.exports = __use;\n"
	mutSourceIntro     = "\nfunction __fresh(__c) { eval(__c); }\nmodule.exports.__fresh = __fresh;\n"
	mutSinkRemoved     = "function __calm(__x) { return __x + 1; }\nmodule.exports = __calm;\n"
)

// MutationSequence derives the edit script for a base single-file
// package (rel "index.js"). Every step is a full package snapshot;
// consecutive steps differ by exactly one file edit, add, or delete.
func MutationSequence(src string) []MutationStep {
	intro := src + mutSourceIntro
	steps := []MutationStep{
		{Name: "seed", Files: []scanner.SourceFile{{Rel: "index.js", Src: src}}},
		{Name: "touch", Files: []scanner.SourceFile{{Rel: "index.js", Src: src + "\n// touched\n"}}},
		{Name: "benign-edit", Files: []scanner.SourceFile{
			{Rel: "index.js", Src: src + "\nfunction __noop(__z) { return __z; }\n"}}},
		{Name: "source-introducing", Files: []scanner.SourceFile{{Rel: "index.js", Src: intro}}},
		{Name: "add-independent", Files: []scanner.SourceFile{
			{Rel: "extra.js", Src: mutIndependentFile},
			{Rel: "index.js", Src: intro}}},
		{Name: "add-linked", Files: []scanner.SourceFile{
			{Rel: "extra.js", Src: mutIndependentFile},
			{Rel: "index.js", Src: intro},
			{Rel: "linked.js", Src: mutLinkedFile}}},
		{Name: "delete-files", Files: []scanner.SourceFile{{Rel: "index.js", Src: intro}}},
		{Name: "sink-removing", Files: []scanner.SourceFile{{Rel: "index.js", Src: mutSinkRemoved}}},
		{Name: "revert", Files: []scanner.SourceFile{{Rel: "index.js", Src: src}}},
	}
	for _, s := range steps {
		sort.Slice(s.Files, func(i, j int) bool { return s.Files[i].Rel < s.Files[j].Rel })
	}
	return steps
}

// compareReports asserts the observable scan outcome matches: the
// finding multiset (CWE, sink name, sink file, sink line, source), the
// failure classification, and completeness.
func compareReports(step string, cold, incr *scanner.Report) error {
	if err := scanner.DiffFindings(cold.Findings, incr.Findings); err != nil {
		return fmt.Errorf("step %q: findings diverge (cold vs incremental): %w", step, err)
	}
	if cold.Failure != incr.Failure {
		return fmt.Errorf("step %q: failure class cold=%v incremental=%v", step, cold.Failure, incr.Failure)
	}
	if cold.Incomplete != incr.Incomplete {
		return fmt.Errorf("step %q: incomplete cold=%v incremental=%v", step, cold.Incomplete, incr.Incomplete)
	}
	return nil
}

// CheckMutationEquivalence replays the edit script for one base source,
// scanning every step both cold and through a single persistent
// incremental state, and returns the first divergence (nil when the
// incremental scanner is observationally equivalent on this package).
// opts.Incremental and opts.Cache are ignored.
func CheckMutationEquivalence(name, src string, opts scanner.Options) error {
	st := scanner.NewIncrementalState()
	coldOpts := opts
	coldOpts.Incremental = nil
	coldOpts.Cache = nil
	incrOpts := coldOpts
	incrOpts.Incremental = st

	for _, step := range MutationSequence(src) {
		cold := scanner.ScanFiles(step.Files, name, coldOpts)
		incr := scanner.ScanFiles(step.Files, name, incrOpts)
		if err := compareReports(step.Name, cold, incr); err != nil {
			return fmt.Errorf("package %s: %w", name, err)
		}
	}
	return nil
}

// MutationSweep runs CheckMutationEquivalence over every package of a
// corpus on the shared bounded worker pool (opts.Workers, 0 =
// GOMAXPROCS) and returns an error aggregating every divergence.
func MutationSweep(c *dataset.Corpus, opts scanner.Options) error {
	sw := runCorpus(len(c.Packages), opts.Workers, func(i int) PackageResult {
		p := c.Packages[i]
		return PackageResult{Package: p, Err: CheckMutationEquivalence(p.Name, p.Source, opts)}
	})
	var diverged []string
	for i := range sw.Results {
		if err := sw.Results[i].Err; err != nil {
			diverged = append(diverged, err.Error())
		}
	}
	if len(diverged) == 0 {
		return nil
	}
	return fmt.Errorf("%d/%d packages diverged:\n%s",
		len(diverged), len(c.Packages), strings.Join(diverged, "\n"))
}
