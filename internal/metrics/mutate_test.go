package metrics

import (
	"testing"
	"time"

	"repro/internal/dataset"
	"repro/internal/queries"
	"repro/internal/scanner"
)

// templateClasses is every behavioural class the dataset generator can
// render, including negatives (benign, sanitized) and the web-context
// variant.
var templateClasses = []dataset.Class{
	dataset.ClassPlain,
	dataset.ClassLoopy,
	dataset.ClassNoWebContext,
	dataset.ClassUnsupported,
	dataset.ClassBaselineOnly,
	dataset.ClassBenign,
	dataset.ClassSanitized,
	dataset.ClassBaselineFPOnly,
}

// templateCorpus renders one package per (CWE, class) pair.
func templateCorpus(seed int64) *dataset.Corpus {
	g := dataset.NewGenForTest(seed)
	c := &dataset.Corpus{Name: "templates"}
	for _, cwe := range queries.AllCWEs {
		for _, class := range templateClasses {
			c.Packages = append(c.Packages, dataset.RenderForTest(g, cwe, class))
		}
	}
	return c
}

// TestMutationSequenceShape pins the edit-script structure the
// equivalence guarantees rest on: every edit kind is present, files are
// sorted, and consecutive steps differ.
func TestMutationSequenceShape(t *testing.T) {
	steps := MutationSequence("function f(x) { return x; }\nmodule.exports = f;\n")
	want := []string{"seed", "touch", "benign-edit", "source-introducing",
		"add-independent", "add-linked", "delete-files", "sink-removing", "revert"}
	if len(steps) != len(want) {
		t.Fatalf("got %d steps, want %d", len(steps), len(want))
	}
	for i, s := range steps {
		if s.Name != want[i] {
			t.Errorf("step %d = %q, want %q", i, s.Name, want[i])
		}
		if len(s.Files) == 0 {
			t.Fatalf("step %q has no files", s.Name)
		}
		for j := 1; j < len(s.Files); j++ {
			if s.Files[j-1].Rel >= s.Files[j].Rel {
				t.Fatalf("step %q files not sorted: %q >= %q", s.Name, s.Files[j-1].Rel, s.Files[j].Rel)
			}
		}
	}
	if len(steps[5].Files) != 3 {
		t.Fatalf("add-linked should have 3 files, got %d", len(steps[5].Files))
	}
}

// TestMutationEquivalenceAllTemplates is the harness proper: every
// dataset template class crossed with every CWE, replayed through the
// full edit script at Workers=4, must be observationally equivalent to
// cold scans at every step. Run under -race by `make mutate-check`.
func TestMutationEquivalenceAllTemplates(t *testing.T) {
	c := templateCorpus(7)
	if err := MutationSweep(c, scanner.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestMutationEquivalenceNativeEngine repeats the sweep with the native
// taint backend, whose per-fragment dedup/merge paths are independent
// of the query engine's.
func TestMutationEquivalenceNativeEngine(t *testing.T) {
	c := templateCorpus(11)
	if err := MutationSweep(c, scanner.Options{Workers: 4, Engine: scanner.EngineNative}); err != nil {
		t.Fatal(err)
	}
}

// TestMutationEquivalenceNoReachGate repeats the sweep with the reach
// gate disabled, so detection runs even on packages the gate would
// skip (the gate decision itself is part of the compared outcome in
// the other sweeps).
func TestMutationEquivalenceNoReachGate(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	c := templateCorpus(13)
	if err := MutationSweep(c, scanner.Options{Workers: 4, NoReachGate: true}); err != nil {
		t.Fatal(err)
	}
}

// TestMutationStepsActuallyMutate guards the harness against vacuity:
// across the script, the finding sets of at least two steps must
// differ for a vulnerable template (the source-introducing and
// sink-removing edits are supposed to move findings).
func TestMutationStepsActuallyMutate(t *testing.T) {
	g := dataset.NewGenForTest(3)
	p := dataset.RenderForTest(g, queries.CWECommandInjection, dataset.ClassPlain)
	st := scanner.NewIncrementalState()
	opts := scanner.Options{Incremental: st}
	counts := map[int]bool{}
	for _, step := range MutationSequence(p.Source) {
		rep := scanner.ScanFiles(step.Files, p.Name, opts)
		counts[len(rep.Findings)] = true
	}
	if len(counts) < 2 {
		t.Fatalf("edit script never changed the finding count: %v", counts)
	}
}

// FuzzIncrementalEquivalence drives arbitrary sources through the full
// edit script, exercising the fragment build/stitch/rehydrate paths
// (internal/mdg.Stitch via scanner.IncrementalState) against cold
// scans. Budget-capped steps are skipped — a warm scan under a cap
// legitimately does less work than a cold one — but parse-error parity
// and findings equivalence must hold everywhere else.
func FuzzIncrementalEquivalence(f *testing.F) {
	g := dataset.NewGenForTest(17)
	for _, cwe := range queries.AllCWEs {
		f.Add(dataset.RenderForTest(g, cwe, dataset.ClassPlain).Source)
	}
	f.Add("var __x = require('./linked');\nmodule.exports = __x;\n")
	f.Add("module.exports = function (o, k, v) { o[k] = v; };\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 2048 {
			t.Skip("large input")
		}
		// Tight budgets keep pathological mutants fast; capped or
		// timed-out steps are skipped below, so the caps cost coverage,
		// not soundness.
		coldOpts := scanner.Options{MaxSteps: 20000, Timeout: 2 * time.Second}
		incrOpts := coldOpts
		incrOpts.Incremental = scanner.NewIncrementalState()
		for _, step := range MutationSequence(src) {
			cold := scanner.ScanFiles(step.Files, "fuzz", coldOpts)
			incr := scanner.ScanFiles(step.Files, "fuzz", incrOpts)
			if (cold.Err == nil) != (incr.Err == nil) {
				t.Fatalf("step %q: error parity broken: cold=%v incremental=%v",
					step.Name, cold.Err, incr.Err)
			}
			if cold.Err != nil {
				continue
			}
			if cold.Incomplete || incr.Incomplete || cold.TimedOut || incr.TimedOut {
				continue
			}
			if err := compareReports(step.Name, cold, incr); err != nil {
				t.Fatal(err)
			}
		}
	})
}

// TestSweepGraphJSIncremental exercises the corpus-level pool plumbing:
// a second sweep over an unchanged corpus must reuse every fragment and
// report identical findings.
func TestSweepGraphJSIncremental(t *testing.T) {
	c := templateCorpus(5)
	pool := scanner.NewStatePool()
	opts := scanner.Options{Workers: 4}

	sw1 := SweepGraphJSIncremental(c, opts, pool)
	cold := SweepGraphJS(c, opts)
	for i := range sw1.Results {
		if err := scanner.DiffFindings(cold.Results[i].Findings, sw1.Results[i].Findings); err != nil {
			t.Fatalf("package %s: incremental sweep diverges: %v", c.Packages[i].Name, err)
		}
	}

	sw2 := SweepGraphJSIncremental(c, opts, pool)
	for i := range sw2.Results {
		if err := scanner.DiffFindings(cold.Results[i].Findings, sw2.Results[i].Findings); err != nil {
			t.Fatalf("package %s: warm sweep diverges: %v", c.Packages[i].Name, err)
		}
	}
	stats := pool.Stats()
	if stats.FragmentHits == 0 {
		t.Fatalf("warm sweep rebuilt everything: %+v", stats)
	}
	if stats.FragmentMisses > len(c.Packages) {
		t.Fatalf("more rebuilds than packages across two sweeps: %+v", stats)
	}
	if pool.Len() != len(c.Packages) {
		t.Fatalf("pool has %d states, want %d", pool.Len(), len(c.Packages))
	}
}
