package metrics

import (
	"runtime"
	"testing"

	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/scanner"
)

// groundTruth returns the combined ground-truth corpus, truncated in
// -short mode so the -race runs stay quick.
func groundTruth(t *testing.T) *dataset.Corpus {
	t.Helper()
	vul, sec := dataset.GroundTruth(42)
	c := &dataset.Corpus{Name: "combined"}
	c.Packages = append(c.Packages, vul.Packages...)
	c.Packages = append(c.Packages, sec.Packages...)
	if testing.Short() && len(c.Packages) > 60 {
		c.Packages = c.Packages[:60]
	}
	return c
}

// TestParallelSweepMatchesSequential is the tentpole correctness
// guarantee: a Workers=GOMAXPROCS sweep must produce, package by
// package, exactly the finding-sets of the Workers=1 sweep. Run under
// -race (make check does) this also exercises the pool for data races.
func TestParallelSweepMatchesSequential(t *testing.T) {
	c := groundTruth(t)
	seq := SweepGraphJS(c, scanner.Options{Workers: 1})
	par := SweepGraphJS(c, scanner.Options{Workers: runtime.GOMAXPROCS(0)})

	if seq.Workers != 1 {
		t.Errorf("sequential sweep used %d workers, want 1", seq.Workers)
	}
	if len(seq.Results) != len(c.Packages) || len(par.Results) != len(c.Packages) {
		t.Fatalf("result lengths: seq=%d par=%d, want %d",
			len(seq.Results), len(par.Results), len(c.Packages))
	}
	for i := range c.Packages {
		s, p := seq.Results[i], par.Results[i]
		if s.Package != p.Package {
			t.Fatalf("package %d: sequential scanned %s, parallel %s",
				i, s.Package.Name, p.Package.Name)
		}
		if err := scanner.DiffFindings(s.Findings, p.Findings); err != nil {
			t.Errorf("package %s: parallel findings differ from sequential: %v",
				s.Package.Name, err)
		}
		if s.TimedOut != p.TimedOut || s.SkippedByReach != p.SkippedByReach {
			t.Errorf("package %s: flags differ: seq timeout=%v skip=%v, par timeout=%v skip=%v",
				s.Package.Name, s.TimedOut, s.SkippedByReach, p.TimedOut, p.SkippedByReach)
		}
	}
}

// TestParallelDifferentialSweep runs the differential engine (query
// and native backends cross-checked per package) across the corpus on
// a multi-worker pool: no package may report an error, in particular
// no finding-set mismatch between the backends.
func TestParallelDifferentialSweep(t *testing.T) {
	c := groundTruth(t)
	sw := SweepGraphJS(c, scanner.Options{
		Engine:  scanner.EngineDifferential,
		Workers: 4,
	})
	for _, r := range sw.Results {
		if r.Err != nil {
			t.Errorf("%s: %v", r.Package.Name, r.Err)
		}
	}
}

// TestParallelOrderingMatchesCorpus is the regression test for the
// index-addressed result slice: whatever the scheduling, Results[i]
// must belong to Packages[i], for both tools.
func TestParallelOrderingMatchesCorpus(t *testing.T) {
	c := groundTruth(t)
	gjs := RunGraphJS(c, scanner.Options{Workers: 0}) // 0 = GOMAXPROCS
	for i, p := range c.Packages {
		if gjs[i].Package != p {
			t.Fatalf("Graph.js result %d is %s, want %s", i, gjs[i].Package.Name, p.Name)
		}
	}
	// The baseline shares runCorpus, so a small slice suffices to pin
	// its ordering too (a full ODGen sweep spends minutes exhausting
	// step budgets on loopy packages).
	small := &dataset.Corpus{Name: "small", Packages: c.Packages[:40]}
	od := odgen.DefaultOptions()
	od.Workers = 3 // deliberately not a divisor of the corpus size
	odg := RunODGen(small, od)
	for i, p := range small.Packages {
		if odg[i].Package != p {
			t.Fatalf("baseline result %d is %s, want %s", i, odg[i].Package.Name, p.Name)
		}
	}
}

// TestSweepTiming checks the aggregate wall-clock vs sum-of-CPU
// accounting the speedup claims rest on.
func TestSweepTiming(t *testing.T) {
	c := groundTruth(t)
	sw := SweepGraphJS(c, scanner.Options{Workers: 2})
	if sw.Workers != 2 {
		t.Errorf("Workers = %d, want 2", sw.Workers)
	}
	if sw.Wall <= 0 {
		t.Errorf("Wall = %v, want > 0", sw.Wall)
	}
	if sw.CPU <= 0 {
		t.Errorf("CPU = %v, want > 0", sw.CPU)
	}
	var sum int64
	for _, r := range sw.Results {
		sum += int64(r.GraphTime + r.QueryTime)
	}
	if int64(sw.CPU) != sum {
		t.Errorf("CPU = %v, want sum of per-package times %v", sw.CPU, sum)
	}
	if sw.Speedup() <= 0 {
		t.Errorf("Speedup() = %v, want > 0", sw.Speedup())
	}
}

// TestPoolWorkers pins the Workers-resolution rules: 0 means
// GOMAXPROCS, the pool never exceeds the package count, and the floor
// is one worker.
func TestPoolWorkers(t *testing.T) {
	maxprocs := runtime.GOMAXPROCS(0)
	cases := []struct {
		workers, packages, want int
	}{
		{0, 1000, maxprocs},
		{-1, 1000, maxprocs},
		{1, 1000, 1},
		{8, 3, 3},
		{4, 0, 1},
		{0, 0, 1},
	}
	for _, tc := range cases {
		if got := poolWorkers(tc.workers, tc.packages); got != tc.want {
			t.Errorf("poolWorkers(%d, %d) = %d, want %d", tc.workers, tc.packages, got, tc.want)
		}
	}
}

// TestEmptyCorpusSweep: a zero-package sweep must return an empty,
// well-formed Sweep rather than hanging or panicking.
func TestEmptyCorpusSweep(t *testing.T) {
	sw := SweepGraphJS(&dataset.Corpus{Name: "empty"}, scanner.Options{})
	if len(sw.Results) != 0 {
		t.Errorf("got %d results, want 0", len(sw.Results))
	}
	if sw.Speedup() != 0 && sw.Wall > 0 {
		// Speedup with zero CPU should be 0/wall = 0.
		t.Errorf("Speedup() = %v on empty corpus", sw.Speedup())
	}
}
