package metrics

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/scanner"
	"repro/internal/sweepjournal"
)

// Dependency-tree targets through the supervised sweep: resolver
// failures must be terminal on the first rung (a broken node_modules
// layout is deterministic — no retry, no ladder descent can fix it),
// while structurally odd but valid trees (require cycles, non-index
// mains, nested shadowing) complete normally with their findings
// journaled.

// treeTarget adapts an in-memory tree fixture to a sweep Target.
func treeTarget(name string, files []scanner.SourceFile) Target {
	fmap := make(map[string]string, len(files))
	for _, f := range files {
		fmap[f.Rel] = f.Src
	}
	return Target{
		Name: name,
		Hash: func() string { return sweepjournal.ContentHashFiles(fmap) },
		Scan: func(opts scanner.Options) *scanner.Report {
			opts.Tree = true
			return scanner.ScanFiles(files, name, opts)
		},
	}
}

func sourceFiles(fs []dataset.TreeFile) []scanner.SourceFile {
	out := make([]scanner.SourceFile, len(fs))
	for i, f := range fs {
		out[i] = scanner.SourceFile{Rel: f.Rel, Src: f.Src}
	}
	return out
}

func TestSupervisedTreeTargets(t *testing.T) {
	missingDep := []scanner.SourceFile{
		{Rel: "package.json", Src: `{"name":"missing","version":"1.0.0","dependencies":{"gone":"^1.0.0"}}`},
		{Rel: "index.js", Src: "var g = require('gone');\nmodule.exports = function (x) { g.run(x); };\n"},
	}
	badManifest := []scanner.SourceFile{
		{Rel: "package.json", Src: `{"name":"bad"`},
		{Rel: "index.js", Src: "module.exports = function (x) { return x; };\n"},
	}
	requireCycle := []scanner.SourceFile{
		{Rel: "package.json", Src: `{"name":"cycle-root","version":"1.0.0","dependencies":{"ping":"^1.0.0","pong":"^1.0.0"}}`},
		{Rel: "index.js", Src: "var ping = require('ping');\nmodule.exports = function (x) { ping.hit(x); };\n"},
		{Rel: "node_modules/ping/package.json", Src: `{"name":"ping","version":"1.0.0","dependencies":{"pong":"^1.0.0"}}`},
		{Rel: "node_modules/ping/index.js", Src: "var pong = require('pong');\nmodule.exports = { hit: function (a) { return pong.back(a); } };\n"},
		{Rel: "node_modules/pong/package.json", Src: `{"name":"pong","version":"1.0.0","dependencies":{"ping":"^1.0.0"}}`},
		{Rel: "node_modules/pong/index.js", Src: "var ping = require('ping');\nmodule.exports = { back: function (b) { return b; } };\n"},
	}
	// A dependency whose main is a non-index file, exercising the
	// main-vs-index resolution axis through a real scan.
	mainNotIndex := []scanner.SourceFile{
		{Rel: "package.json", Src: `{"name":"main-root","version":"1.0.0","dependencies":{"entry":"^1.0.0"}}`},
		{Rel: "index.js", Src: "const { exec } = require('child_process');\nvar entry = require('entry');\nmodule.exports = function (input) { exec(entry.wrap(input)); };\n"},
		{Rel: "node_modules/entry/package.json", Src: `{"name":"entry","version":"1.0.0","main":"lib/start.js"}`},
		{Rel: "node_modules/entry/lib/start.js", Src: "module.exports = { wrap: function (s) { return 'go ' + s; } };\n"},
	}

	shadowed := dataset.TreeCases()[3] // tree-shadowed, vulnerable
	if shadowed.Name != "tree-shadowed" {
		t.Fatalf("fixture order changed: %s", shadowed.Name)
	}
	targets := []Target{
		treeTarget("bad-manifest", badManifest),
		treeTarget("main-not-index", mainNotIndex),
		treeTarget("missing-dep", missingDep),
		treeTarget("require-cycle", requireCycle),
		treeTarget("tree-shadowed", sourceFiles(shadowed.Files)),
	}

	journal := filepath.Join(t.TempDir(), "tree-sweep.jsonl")
	opts := scanner.Options{Workers: 2, Timeout: 30 * time.Second}
	_, stats, err := SuperviseGraphJSTargets(targets, opts, SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatalf("supervised tree sweep: %v", err)
	}
	if stats.Completed != len(targets) || stats.Quarantined != 0 || stats.Degraded != 0 {
		t.Fatalf("stats %+v, want %d complete", stats, len(targets))
	}

	entries, torn, err := sweepjournal.Load(journal)
	if err != nil || torn {
		t.Fatalf("journal: torn=%v err=%v", torn, err)
	}

	cases := []struct {
		name      string
		class     budget.Class
		findings  int
		errSubstr string
	}{
		{"missing-dep", budget.ClassResolve, 0, "gone"},
		{"bad-manifest", budget.ClassResolve, 0, "package.json"},
		{"require-cycle", budget.ClassNone, 0, ""},
		{"main-not-index", budget.ClassNone, 1, ""},
		{"tree-shadowed", budget.ClassNone, 1, ""},
	}
	for _, c := range cases {
		e, ok := entries[c.name]
		if !ok {
			t.Errorf("%s: no journal entry", c.name)
			continue
		}
		if e.State != sweepjournal.StateComplete {
			t.Errorf("%s: state %q, want complete", c.name, e.State)
		}
		if e.Class != string(c.class) {
			t.Errorf("%s: class %q, want %q", c.name, e.Class, c.class)
		}
		if len(e.Findings) != c.findings {
			t.Errorf("%s: %d findings journaled, want %d", c.name, len(e.Findings), c.findings)
		}
		// Deterministic failures and clean scans alike must terminate
		// in a single attempt at the full rung: the ladder never
		// retries a resolve error.
		if len(e.Attempts) != 1 || e.Rung != "full" {
			t.Errorf("%s: %d attempts at rung %q, want 1 at full", c.name, len(e.Attempts), e.Rung)
		}
		if c.errSubstr != "" && !strings.Contains(e.Attempts[0].Err, c.errSubstr) {
			t.Errorf("%s: attempt error %q does not mention %q", c.name, e.Attempts[0].Err, c.errSubstr)
		}
	}
}
