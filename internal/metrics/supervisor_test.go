package metrics

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/sweepjournal"
)

// superviseCorpus builds a small mixed corpus: real ground-truth
// packages (vulnerable and secure) plus the pathological crash corpus.
func superviseCorpus() *dataset.Corpus {
	vul, sec := dataset.GroundTruth(42)
	c := &dataset.Corpus{Name: "supervise"}
	c.Packages = append(c.Packages, vul.Packages[:4]...)
	c.Packages = append(c.Packages, sec.Packages[:2]...)
	c.Packages = append(c.Packages, dataset.Pathological().Packages...)
	return c
}

// findingKeys projects findings onto their identity (ignoring witness
// paths, which are not persisted in journals).
func findingKeys(fs []queries.Finding) []string {
	keys := make([]string, len(fs))
	for i, f := range fs {
		keys[i] = f.String()
	}
	return keys
}

func sameFindings(a, b []queries.Finding) bool {
	ka, kb := findingKeys(a), findingKeys(b)
	if len(ka) != len(kb) {
		return false
	}
	for i := range ka {
		if ka[i] != kb[i] {
			return false
		}
	}
	return true
}

// TestSupervisedMatchesPlainSweep: with no faults and no binding caps,
// a supervised sweep is just a sweep — every package completes at the
// full rung with the plain sweep's findings, and the journal holds one
// terminal entry with attempt history per package.
func TestSupervisedMatchesPlainSweep(t *testing.T) {
	c := superviseCorpus()
	opts := scanner.Options{Workers: 4, Timeout: 30 * time.Second}
	plain := SweepGraphJS(c, opts)

	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	sw, stats, err := SuperviseGraphJS(c, opts, SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if stats.Resumed != 0 || stats.Quarantined != 0 || stats.Degraded != 0 {
		t.Errorf("clean corpus stats %+v, want all complete", stats)
	}
	if stats.Completed != len(c.Packages) {
		t.Errorf("completed %d of %d", stats.Completed, len(c.Packages))
	}
	for i := range sw.Results {
		got, want := &sw.Results[i], &plain.Results[i]
		if got.Failure != want.Failure || !sameFindings(got.Findings, want.Findings) {
			t.Errorf("%s: supervised (%q, %d findings) differs from plain (%q, %d findings)",
				c.Packages[i].Name, got.Failure, len(got.Findings), want.Failure, len(want.Findings))
		}
	}

	entries, torn, err := sweepjournal.Load(journal)
	if err != nil || torn {
		t.Fatalf("journal load: torn=%v err=%v", torn, err)
	}
	if len(entries) != len(c.Packages) {
		t.Fatalf("journal has %d entries, corpus has %d packages", len(entries), len(c.Packages))
	}
	for _, p := range c.Packages {
		e, ok := entries[p.Name]
		if !ok {
			t.Errorf("%s: no journal entry", p.Name)
			continue
		}
		if e.State != sweepjournal.StateComplete {
			t.Errorf("%s: state %q, want complete", p.Name, e.State)
		}
		if len(e.Attempts) == 0 {
			t.Errorf("%s: entry has no attempt history", p.Name)
		}
	}
}

// TestLadderDegradesToFloor: a package whose budget class persists at
// every capped rung must slide all the way to the reach-gate floor and
// terminate degraded there — never quarantined, never looping.
func TestLadderDegradesToFloor(t *testing.T) {
	c := &dataset.Corpus{Name: "tiny", Packages: []*dataset.Package{}}
	for _, p := range dataset.Pathological().Packages {
		if p.Name == "huge_object" {
			c.Packages = append(c.Packages, p)
		}
	}
	if len(c.Packages) != 1 {
		t.Fatal("huge_object missing from the pathological corpus")
	}

	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	// 50 steps is far under what huge_object needs at any capped rung,
	// so full, half and quarter all trip ClassBudget.
	opts := scanner.Options{Workers: 1, MaxSteps: 50}
	_, stats, err := SuperviseGraphJS(c, opts, SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if stats.Degraded != 1 {
		t.Fatalf("stats %+v, want exactly one degraded package", stats)
	}
	entries, _, err := sweepjournal.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	e := entries["huge_object"]
	if e.State != sweepjournal.StateDegraded || e.Rung != "reach-gate" {
		t.Errorf("state %q rung %q, want degraded at reach-gate", e.State, e.Rung)
	}
	if !e.Incomplete {
		t.Error("floor triage of a non-provable package not marked incomplete")
	}
	if len(e.Attempts) != 4 {
		t.Errorf("attempt history %+v, want all 4 rungs", e.Attempts)
	}
	for i, rung := range []string{"full", "half", "quarter"} {
		if e.Attempts[i].Rung != rung || e.Attempts[i].Class != string(budget.ClassBudget) {
			t.Errorf("attempt %d = %+v, want budget-exceeded at %s", i, e.Attempts[i], rung)
		}
	}
}

// TestTransientRetryRecovers: a deterministic injected panic on the
// first attempt must be retried once on the fallback engine and
// recover the plain sweep's findings, with both attempts on record.
func TestTransientRetryRecovers(t *testing.T) {
	vul, _ := dataset.GroundTruth(7)
	c := &dataset.Corpus{Name: "one", Packages: vul.Packages[:1]}
	name := c.Packages[0].Name
	plain := SweepGraphJS(c, scanner.Options{Workers: 1})
	if plain.Results[0].Failure != budget.ClassNone || len(plain.Results[0].Findings) == 0 {
		t.Fatalf("baseline unusable: %+v", plain.Results[0])
	}

	// Arm only first attempts: the retry runs clean.
	budget.SetFaultPlan(&budget.FaultPlan{Seed: 11, PanicProb: 1, Spread: 2,
		Arm: func(label string) bool { return strings.HasSuffix(label, "#0") }})
	defer budget.SetFaultPlan(nil)

	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	sw, stats, err := SuperviseGraphJS(c, scanner.Options{Workers: 1}, SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if stats.Completed != 1 {
		t.Fatalf("stats %+v, want the package completed", stats)
	}
	if !sameFindings(sw.Results[0].Findings, plain.Results[0].Findings) {
		t.Errorf("recovered findings differ from baseline")
	}
	entries, _, err := sweepjournal.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[name]
	if len(e.Attempts) != 2 {
		t.Fatalf("attempts %+v, want fault + retry", e.Attempts)
	}
	if e.Attempts[0].Class != string(budget.ClassPanic) {
		t.Errorf("first attempt class %q, want engine-panic", e.Attempts[0].Class)
	}
	if e.Attempts[1].Engine != string(scanner.EngineFallback) {
		t.Errorf("retry ran on %q, want the fallback engine", e.Attempts[1].Engine)
	}
}

// TestPersistentTransientQuarantines: a package that dies transiently
// on the retry as well is a real bug — it must be quarantined, and a
// resumed sweep must skip it unless told to requarantine.
func TestPersistentTransientQuarantines(t *testing.T) {
	vul, _ := dataset.GroundTruth(7)
	c := &dataset.Corpus{Name: "one", Packages: vul.Packages[:1]}
	name := c.Packages[0].Name

	// Every attempt faults, but keep the fault early (Spread 2) so it
	// lands before detection — a detection-phase panic on the fallback
	// engine would be absorbed by its internal query retry.
	budget.SetFaultPlan(&budget.FaultPlan{Seed: 13, PanicProb: 1, Spread: 2})
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	sup := SuperviseOptions{JournalPath: journal}
	_, stats, err := SuperviseGraphJS(c, scanner.Options{Workers: 1}, sup)
	if err != nil {
		t.Fatalf("supervised sweep: %v", err)
	}
	if stats.Quarantined != 1 {
		t.Fatalf("stats %+v, want the package quarantined", stats)
	}
	entries, _, err := sweepjournal.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	e := entries[name]
	if e.State != sweepjournal.StateQuarantined || len(e.Attempts) != 2 {
		t.Fatalf("entry %+v, want quarantined after 2 attempts", e)
	}
	if e.Class != string(budget.ClassPanic) {
		t.Errorf("final class %q, want engine-panic", e.Class)
	}

	// Clear the faults. A resumed sweep skips the quarantined package by
	// default (it stays quarantined without being re-scanned)...
	budget.SetFaultPlan(nil)
	sup.Resume = true
	_, stats, err = SuperviseGraphJS(c, scanner.Options{Workers: 1}, sup)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 1 || stats.Quarantined != 1 {
		t.Errorf("resume stats %+v, want the quarantined package skipped", stats)
	}

	// ...and -requarantine forces the re-scan, which now completes and
	// supersedes the quarantine row (last entry wins).
	sup.Requarantine = true
	sw, stats, err := SuperviseGraphJS(c, scanner.Options{Workers: 1}, sup)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 || stats.Completed != 1 {
		t.Errorf("requarantine stats %+v, want a fresh completed scan", stats)
	}
	if len(sw.Results[0].Findings) == 0 {
		t.Error("requarantined scan produced no findings")
	}
	entries, _, err = sweepjournal.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	if e := entries[name]; e.State != sweepjournal.StateComplete {
		t.Errorf("journal state after requarantine %q, want complete", e.State)
	}
}

// TestResumeSkipsAndRefingerprints: a resume under identical options
// skips every journaled package; changing the options fingerprint (or
// the package contents) forces a re-scan.
func TestResumeSkipsAndRefingerprints(t *testing.T) {
	c := superviseCorpus()
	opts := scanner.Options{Workers: 4}
	journal := filepath.Join(t.TempDir(), "sweep.jsonl")
	first, _, err := SuperviseGraphJS(c, opts, SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatal(err)
	}

	sup := SuperviseOptions{JournalPath: journal, Resume: true}
	resumed, stats, err := SuperviseGraphJS(c, opts, sup)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != len(c.Packages) {
		t.Fatalf("resumed %d of %d packages", stats.Resumed, len(c.Packages))
	}
	for i := range resumed.Results {
		if !sameFindings(resumed.Results[i].Findings, first.Results[i].Findings) {
			t.Errorf("%s: resumed findings differ", c.Packages[i].Name)
		}
		if resumed.Results[i].Failure != first.Results[i].Failure {
			t.Errorf("%s: resumed class %q != %q", c.Packages[i].Name,
				resumed.Results[i].Failure, first.Results[i].Failure)
		}
	}

	// Edited content → different hash → that package (alone) re-scans.
	edited := &dataset.Corpus{Name: c.Name}
	edited.Packages = append(edited.Packages, c.Packages...)
	cp := *edited.Packages[0]
	cp.Source += "\n// edited\n"
	edited.Packages[0] = &cp
	_, stats, err = SuperviseGraphJS(edited, opts, sup)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != len(c.Packages)-1 {
		t.Errorf("resumed %d, want %d (one package edited)", stats.Resumed, len(c.Packages)-1)
	}

	// Different caps → different fingerprint → nothing resumes.
	capped := opts
	capped.MaxSteps = 1 << 20
	_, stats, err = SuperviseGraphJS(c, capped, sup)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Resumed != 0 {
		t.Errorf("%d packages resumed across an options change", stats.Resumed)
	}
}

// TestSupervisedODGenTerminates: the baseline supervisor drives every
// pathological package to a terminal journal state too, degrading the
// unroll bound and step budget instead of MDG caps.
func TestSupervisedODGenTerminates(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "odgen.jsonl")
	oopts := odgen.DefaultOptions()
	oopts.Timeout = 20 * time.Second
	oopts.Workers = 2
	_, stats, err := SuperviseODGen(dataset.Pathological(), oopts,
		SuperviseOptions{JournalPath: journal})
	if err != nil {
		t.Fatalf("supervised baseline sweep: %v", err)
	}
	if got := stats.Completed + stats.Degraded + stats.Quarantined; got != len(dataset.Pathological().Packages) {
		t.Fatalf("stats %+v do not cover the corpus", stats)
	}
	entries, _, err := sweepjournal.Load(journal)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range dataset.Pathological().Packages {
		e, ok := entries[p.Name]
		if !ok {
			t.Errorf("%s: no journal entry", p.Name)
			continue
		}
		switch e.State {
		case sweepjournal.StateComplete, sweepjournal.StateDegraded, sweepjournal.StateQuarantined:
		default:
			t.Errorf("%s: non-terminal state %q", p.Name, e.State)
		}
		if len(e.Attempts) == 0 {
			t.Errorf("%s: no attempt history", p.Name)
		}
	}
}
