package metrics

import (
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/queries"
	"repro/internal/scanner"
	"repro/internal/store"
	"repro/internal/sweepjournal"
)

// Sweep supervisor: resumable corpus sweeps with a retry/degradation
// ladder.
//
// A plain sweep (SweepGraphJS) runs every package once at full
// fidelity and reports whatever happened. The supervisor wraps the
// same worker pool with two robustness layers:
//
//   - A crash-safe journal: each worker appends the package's terminal
//     outcome to an append-only JSONL file as it finishes, so a sweep
//     killed mid-corpus loses at most the packages in flight, and a
//     resume skips every package whose journal entry still matches its
//     content hash and options fingerprint.
//
//   - A degradation ladder: failures are retried according to their
//     class. Transient classes (engine-panic, query-error) get one
//     retry on the fallback engine after a deterministically jittered
//     backoff; budget classes (timeout, budget-exceeded) descend to
//     progressively cheaper configurations — reduced caps, and finally
//     a reach-gate-only triage floor — each attempt on a fresh budget.
//     Every package therefore terminates in exactly one of three
//     states: complete, degraded (with the rung that produced the
//     result), or quarantined (later resumed sweeps skip it unless
//     told to requarantine).
//
// Journals carry no timestamps and attempt labels are deterministic
// ("name#attempt"), so with a fixed fault plan a supervised sweep is a
// pure function of (corpus, options) — the property the chaos harness
// leans on to assert that kill-and-resume reproduces an uninterrupted
// sweep exactly.

// SuperviseOptions configures a supervised sweep.
type SuperviseOptions struct {
	// JournalPath, when non-empty, appends one terminal Entry per
	// package to this JSONL file as workers finish.
	JournalPath string
	// Resume loads JournalPath first and skips packages whose entry
	// matches the current content hash and options fingerprint.
	Resume bool
	// Requarantine re-scans quarantined packages on resume instead of
	// skipping them.
	Requarantine bool
	// Backoff is the base delay before a transient retry (0 = retry
	// immediately). The actual delay is jittered deterministically from
	// the package name so parallel retries do not stampede in lockstep.
	Backoff time.Duration
	// Store, when non-nil, backs the journal with the persistent
	// analysis store: resume overlays the live JSONL log over entries
	// previously compacted into the store, and CompactJournal folds
	// the log into the store when the sweep finishes.
	Store *store.Store
	// CompactJournal rewrites the journal's live entries into Store
	// and truncates the JSONL log after a successful sweep (no-op
	// without Store and JournalPath).
	CompactJournal bool
	// NoFsync disables the journal's per-append group-commit fsync
	// (benchmarks; a kill may then lose acknowledged entries, which
	// resume re-scans).
	NoFsync bool
}

// SuperviseStats summarizes how a supervised sweep terminated.
type SuperviseStats struct {
	Resumed     int  // packages satisfied from the journal
	Completed   int  // full-fidelity terminal results
	Degraded    int  // results produced by a lower ladder rung
	Quarantined int  // packages that failed every rung
	Canceled    int  // packages abandoned because the request context died
	Torn        bool // the loaded journal ended in a torn line
	// Entries holds each package's terminal journal entry in corpus
	// order (resumed packages keep their prior entry), so callers can
	// report per-package states without re-loading the journal.
	Entries []sweepjournal.Entry
}

func (s *SuperviseStats) tally(state string) {
	switch state {
	case sweepjournal.StateComplete:
		s.Completed++
	case sweepjournal.StateDegraded:
		s.Degraded++
	case sweepjournal.StateQuarantined:
		s.Quarantined++
	case sweepjournal.StateCanceled:
		s.Canceled++
	}
}

// rung is one step of the degradation ladder.
type rung struct {
	Name string
	// Factor scales the step/node/edge caps (1 = the caller's own).
	Factor float64
	// Floor marks the reach-gate-only triage rung.
	Floor bool
}

// defaultLadder returns the Graph.js ladder: full fidelity, two
// cap-halving rungs, then the reach-gate triage floor.
func defaultLadder() []rung {
	return []rung{
		{Name: "full", Factor: 1},
		{Name: "half", Factor: 0.5},
		{Name: "quarter", Factor: 0.25},
		{Name: "reach-gate", Floor: true},
	}
}

func ladderNames(ladder []rung) []string {
	names := make([]string, len(ladder))
	for i, r := range ladder {
		names[i] = r.Name
	}
	return names
}

// Degraded-rung default caps, used when the caller's base options are
// unlimited: an unlimited budget cannot be halved, so the half rung
// lands on these and the quarter rung on half of them.
const (
	degradedSteps = 400000
	degradedNodes = 100000
	degradedEdges = 200000
)

// scaleCap sizes one cap for a degraded rung.
func scaleCap(base, unlimitedDefault int, factor float64) int {
	src := base
	if src <= 0 {
		src = 2 * unlimitedDefault
	}
	n := int(float64(src) * factor)
	if n < 1 {
		n = 1
	}
	return n
}

// jitterDelay derives the deterministic backoff before a transient
// retry: base plus a [0,base) fraction keyed on the package name, so
// two supervised runs back off identically but different packages
// spread out.
func jitterDelay(base time.Duration, pkg string, attempt int) time.Duration {
	if base <= 0 {
		return 0
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%s|%d", pkg, attempt)
	frac := float64(h.Sum64()>>11) / float64(1<<53)
	return base + time.Duration(frac*float64(base))
}

// journalFindings flattens detection findings for persistence (witness
// paths are run-local graph-node IDs and are dropped).
func journalFindings(fs []queries.Finding) []sweepjournal.Finding {
	out := make([]sweepjournal.Finding, len(fs))
	for i, f := range fs {
		out[i] = sweepjournal.Finding{
			CWE:      string(f.CWE),
			SinkName: f.SinkName,
			SinkLine: f.SinkLine,
			SinkFile: f.SinkFile,
			Source:   f.Source,
		}
	}
	return out
}

// findingsFromJournal restores persisted findings (without witness
// paths) for a resumed package's result row.
func findingsFromJournal(fs []sweepjournal.Finding) []queries.Finding {
	if len(fs) == 0 {
		return nil
	}
	out := make([]queries.Finding, len(fs))
	for i, f := range fs {
		out[i] = queries.Finding{
			CWE:      queries.CWE(f.CWE),
			SinkName: f.SinkName,
			SinkLine: f.SinkLine,
			SinkFile: f.SinkFile,
			Source:   f.Source,
		}
	}
	return out
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// resultFromEntry synthesizes the sweep row for a package satisfied
// from the journal. Witness paths and timings are not persisted, so
// the row carries findings, classification and flags only.
func resultFromEntry(p *dataset.Package, e sweepjournal.Entry) PackageResult {
	class := budget.Class(e.Class)
	return PackageResult{
		Package:    p,
		Findings:   findingsFromJournal(e.Findings),
		TimedOut:   class == budget.ClassTimeout,
		Failure:    class,
		Incomplete: e.Incomplete,
	}
}

// runLadder drives one package through the degradation ladder. run
// executes a single attempt (transientRetries > 0 means an earlier
// attempt died transiently, so engines with a fallback should use it)
// and returns the row plus the engine label for the attempt history.
func runLadder(pkg, hash, fp string, ladder []rung, backoff time.Duration,
	run func(r rung, attempt, transientRetries int) (PackageResult, string)) (PackageResult, sweepjournal.Entry) {

	entry := sweepjournal.Entry{Package: pkg, Hash: hash, Opts: fp}
	attempt, transientRetries, ri := 0, 0, 0
	for {
		r := ladder[ri]
		res, engine := runAttempt(run, r, attempt, transientRetries)
		attempt++
		entry.Attempts = append(entry.Attempts, sweepjournal.Attempt{
			Rung:     r.Name,
			Engine:   engine,
			Class:    string(res.Failure),
			Err:      errString(res.Err),
			Findings: len(res.Findings),
		})

		terminal := func(state string) (PackageResult, sweepjournal.Entry) {
			entry.State = state
			entry.Rung = r.Name
			entry.Class = string(res.Failure)
			entry.Incomplete = res.Incomplete
			entry.Findings = journalFindings(res.Findings)
			return res, entry
		}

		switch res.Failure {
		case budget.ClassNone, budget.ClassParse, budget.ClassResolve:
			// A clean result — or a deterministic content error no rung
			// can fix (a parse error, or a dependency tree whose
			// node_modules layout is missing or broken). Full fidelity
			// at the top rung is complete;
			// anything lower is a degraded (but terminal) answer.
			if ri == 0 {
				return terminal(sweepjournal.StateComplete)
			}
			return terminal(sweepjournal.StateDegraded)

		case budget.ClassCanceled:
			// The request driving this sweep is gone. No rung can help —
			// every remaining attempt would cancel at its first budget
			// checkpoint — so journal the package as retryable: resume
			// re-scans canceled entries unconditionally, and the result is
			// never mistaken for a verdict about the package.
			return terminal(sweepjournal.StateCanceled)

		case budget.ClassPanic, budget.ClassQuery:
			// Transient: one retry (engines with a fallback switch to it),
			// after a deterministic jittered backoff. A second transient
			// death is a real bug, not bad luck — quarantine.
			if transientRetries == 0 {
				transientRetries++
				time.Sleep(jitterDelay(backoff, pkg, attempt))
				continue
			}
			return terminal(sweepjournal.StateQuarantined)

		default: // ClassTimeout, ClassBudget
			// The package outgrew this rung's allowance; descend. Each
			// rung gets a fresh budget (fresh wall clock, smaller caps).
			if ri+1 < len(ladder) {
				ri++
				continue
			}
			return terminal(sweepjournal.StateQuarantined)
		}
	}
}

// runAttempt executes one ladder attempt with its own panic fence: a
// crash that escapes the scanner's per-phase guards (or the scan
// harness itself) still comes back as a classified transient row, so
// the ladder keeps control and the package still reaches a terminal
// journal state.
func runAttempt(run func(r rung, attempt, transientRetries int) (PackageResult, string),
	r rung, attempt, transientRetries int) (pr PackageResult, engine string) {
	defer func() {
		if rec := recover(); rec != nil {
			pr = PackageResult{
				Err:     &budget.PanicError{Phase: "supervisor", Value: rec, Stack: debug.Stack()},
				Failure: budget.ClassPanic,
			}
		}
	}()
	return run(r, attempt, transientRetries)
}

// graphjsFingerprint is the resume-relevant slice of scanner.Options:
// anything that changes what a scan computes must be in here, so a
// journal written under different options never satisfies a resume.
type graphjsFingerprint struct {
	Engine      string
	Timeout     time.Duration
	MaxSteps    int
	MaxNodes    int
	MaxEdges    int
	NoReachGate bool
	Ladder      []string
}

// rungScanOptions derives the scanner options for one ladder rung.
func rungScanOptions(base scanner.Options, r rung) scanner.Options {
	o := base
	if r.Floor {
		o.ReachGateOnly = true
		return o
	}
	if r.Factor < 1 {
		o.MaxSteps = scaleCap(base.MaxSteps, degradedSteps, r.Factor)
		o.MaxNodes = scaleCap(base.MaxNodes, degradedNodes, r.Factor)
		o.MaxEdges = scaleCap(base.MaxEdges, degradedEdges, r.Factor)
	}
	return o
}

// SuperviseGraphJS runs a supervised Graph.js sweep: SweepGraphJS's
// worker pool, plus the journal and the degradation ladder. The
// returned Sweep has one row per corpus package in corpus order
// (resumed packages included); stats counts how packages terminated.
func SuperviseGraphJS(c *dataset.Corpus, opts scanner.Options, sup SuperviseOptions) (*Sweep, *SuperviseStats, error) {
	ladder := defaultLadder()
	fp := sweepjournal.Fingerprint(graphjsFingerprint{
		Engine:      string(opts.Engine),
		Timeout:     opts.Timeout,
		MaxSteps:    opts.MaxSteps,
		MaxNodes:    opts.MaxNodes,
		MaxEdges:    opts.MaxEdges,
		NoReachGate: opts.NoReachGate,
		Ladder:      ladderNames(ladder),
	})
	run := func(p *dataset.Package, r rung, attempt, transientRetries int) (PackageResult, string) {
		o := rungScanOptions(opts, r)
		if transientRetries > 0 {
			o.Engine = scanner.EngineFallback
		}
		o.FaultLabel = fmt.Sprintf("%s#%d", p.Name, attempt)
		engine := o.Engine
		if engine == "" {
			engine = scanner.EngineQuery
		}
		return graphjsResult(p, scanPackage(p, o)), string(engine)
	}
	return supervise(c, opts.Workers, fp, ladder, sup, nil, run)
}

// Target is one named scan unit of a supervised CLI sweep: a file or
// package directory, with its own content-hash and scan functions
// (the supervisor never touches the filesystem itself).
type Target struct {
	Name string
	// Hash fingerprints the target's current content; resume compares
	// it against the journaled hash.
	Hash func() string
	// Scan runs one attempt under the given (possibly rung-degraded)
	// options.
	Scan func(opts scanner.Options) *scanner.Report
}

// SuperviseGraphJSTargets is SuperviseGraphJS for filesystem targets
// instead of an in-memory corpus: the graphjs CLI's -sweep mode. The
// ladder, fingerprint and journal semantics are identical, so a CLI
// journal and a corpus journal are interchangeable formats.
func SuperviseGraphJSTargets(targets []Target, opts scanner.Options, sup SuperviseOptions) (*Sweep, *SuperviseStats, error) {
	ladder := defaultLadder()
	fp := sweepjournal.Fingerprint(graphjsFingerprint{
		Engine:      string(opts.Engine),
		Timeout:     opts.Timeout,
		MaxSteps:    opts.MaxSteps,
		MaxNodes:    opts.MaxNodes,
		MaxEdges:    opts.MaxEdges,
		NoReachGate: opts.NoReachGate,
		Ladder:      ladderNames(ladder),
	})
	c := &dataset.Corpus{Name: "targets"}
	byName := make(map[string]Target, len(targets))
	for _, t := range targets {
		c.Packages = append(c.Packages, &dataset.Package{Name: t.Name})
		byName[t.Name] = t
	}
	hash := func(p *dataset.Package) string { return byName[p.Name].Hash() }
	run := func(p *dataset.Package, r rung, attempt, transientRetries int) (PackageResult, string) {
		o := rungScanOptions(opts, r)
		if transientRetries > 0 {
			o.Engine = scanner.EngineFallback
		}
		o.FaultLabel = fmt.Sprintf("%s#%d", p.Name, attempt)
		engine := o.Engine
		if engine == "" {
			engine = scanner.EngineQuery
		}
		return graphjsResult(p, byName[p.Name].Scan(o)), string(engine)
	}
	return supervise(c, opts.Workers, fp, ladder, sup, hash, run)
}

// odgenFingerprint is the resume-relevant slice of odgen.Options.
type odgenFingerprint struct {
	UnrollLimit int
	CallDepth   int
	StepBudget  int
	Timeout     time.Duration
	Ladder      []string
}

// odgenLadder degrades the baseline's unroll bound and step budget;
// ODGen has no reach gate, so its floor is the cheapest config that
// still runs (single unrolling, minimal step budget).
func odgenLadder() []rung {
	return []rung{
		{Name: "full", Factor: 1},
		{Name: "half", Factor: 0.5},
		{Name: "minimal", Factor: 0.1},
	}
}

// rungODGenOptions derives the baseline options for one ladder rung:
// both the unroll bound and the step budget shrink with the rung.
func rungODGenOptions(base odgen.Options, r rung) odgen.Options {
	o := base
	if o.StepBudget <= 0 {
		o.StepBudget = odgen.DefaultOptions().StepBudget
	}
	if o.UnrollLimit <= 0 {
		o.UnrollLimit = odgen.DefaultOptions().UnrollLimit
	}
	if r.Factor < 1 {
		o.StepBudget = scaleCap(o.StepBudget, 0, r.Factor)
		o.UnrollLimit = scaleCap(o.UnrollLimit, 0, r.Factor)
	}
	return o
}

// SuperviseODGen is SuperviseGraphJS for the ODGen-style baseline.
func SuperviseODGen(c *dataset.Corpus, opts odgen.Options, sup SuperviseOptions) (*Sweep, *SuperviseStats, error) {
	ladder := odgenLadder()
	fp := sweepjournal.Fingerprint(odgenFingerprint{
		UnrollLimit: opts.UnrollLimit,
		CallDepth:   opts.CallDepth,
		StepBudget:  opts.StepBudget,
		Timeout:     opts.Timeout,
		Ladder:      ladderNames(ladder),
	})
	run := func(p *dataset.Package, r rung, attempt, transientRetries int) (PackageResult, string) {
		o := rungODGenOptions(opts, r)
		return odgenResult(p, odgen.Scan(p.Source, p.Name, o)), "odgen"
	}
	return supervise(c, opts.Workers, fp, ladder, sup, nil, run)
}

// supervise is the shared supervised-sweep body: resume filter, worker
// pool, ladder, journal appends, terminal-state accounting. hash
// fingerprints a package's content (nil = hash p.Source).
func supervise(c *dataset.Corpus, workers int, fp string, ladder []rung, sup SuperviseOptions,
	hash func(p *dataset.Package) string,
	run func(p *dataset.Package, r rung, attempt, transientRetries int) (PackageResult, string)) (*Sweep, *SuperviseStats, error) {

	if hash == nil {
		hash = func(p *dataset.Package) string { return sweepjournal.ContentHash(packageContent(p)) }
	}
	stats := &SuperviseStats{Entries: make([]sweepjournal.Entry, len(c.Packages))}
	prior := map[string]sweepjournal.Entry{}
	if sup.Resume && sup.JournalPath != "" {
		loaded, torn, err := sweepjournal.LoadWithStore(sup.JournalPath, sup.Store)
		if err != nil {
			return nil, nil, err
		}
		prior, stats.Torn = loaded, torn
	}
	var w *sweepjournal.Writer
	if sup.JournalPath != "" {
		var err error
		if w, err = sweepjournal.CreateOpts(sup.JournalPath, sweepjournal.WriterOptions{NoFsync: sup.NoFsync}); err != nil {
			return nil, nil, err
		}
	}

	var mu sync.Mutex // stats counters + first journal error
	var journalErr error
	sw := fillPackages(runCorpus(len(c.Packages), workers, func(i int) PackageResult {
		p := c.Packages[i]
		h := hash(p)
		// Canceled entries never satisfy a resume: they record that a
		// client went away, not anything about the package.
		if e, ok := prior[p.Name]; ok && e.Matches(h, fp) && e.State != sweepjournal.StateCanceled {
			quarantined := e.State == sweepjournal.StateQuarantined
			if !quarantined || !sup.Requarantine {
				stats.Entries[i] = e
				mu.Lock()
				stats.Resumed++
				stats.tally(e.State)
				mu.Unlock()
				return resultFromEntry(p, e)
			}
		}
		res, entry := runLadder(p.Name, h, fp, ladder, sup.Backoff,
			func(r rung, attempt, transientRetries int) (PackageResult, string) {
				return run(p, r, attempt, transientRetries)
			})
		aerr := w.Append(entry)
		stats.Entries[i] = entry
		mu.Lock()
		stats.tally(entry.State)
		if aerr != nil && journalErr == nil {
			journalErr = aerr
		}
		mu.Unlock()
		return res
	}), c)

	if w != nil {
		if cerr := w.Close(); cerr != nil && journalErr == nil {
			journalErr = cerr
		}
	}
	// Compaction only runs on a fully healthy sweep: a journal error
	// means the log may be missing entries the store would then
	// truncate away.
	if journalErr == nil && sup.CompactJournal && sup.Store != nil && sup.JournalPath != "" {
		if _, cerr := sweepjournal.Compact(sup.JournalPath, sup.Store); cerr != nil {
			journalErr = cerr
		}
	}
	return sw, stats, journalErr
}
