package metrics

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/scanner"
	"repro/internal/store"
	"repro/internal/sweepjournal"
)

// Store chaos (`make chaos` runs this under -race): supervised sweeps
// whose journals are backed by the persistent store, killed at the two
// nastiest moments — mid-compaction (entries duplicated between store
// and log, log tail torn) and mid-commit (the store log itself torn
// mid-record). The invariant in both cases: a resumed sweep converges
// to entry-for-entry the same journal state as the uninterrupted run,
// with the damage visible only as re-scans and quarantine counters.

func openChaosStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestChaosStoreKillResume(t *testing.T) {
	c := superviseCorpus()
	opts := scanner.Options{Workers: 4, Timeout: 30 * time.Second}

	// Ground truth: an uninterrupted store-backed sweep with journal
	// compaction. Afterwards the log is empty and every entry lives in
	// the store.
	baseDir := t.TempDir()
	baseStore := openChaosStore(t, filepath.Join(baseDir, "cache"))
	baseJournal := filepath.Join(baseDir, "j.jsonl")
	_, _, err := SuperviseGraphJS(c, opts, SuperviseOptions{
		JournalPath: baseJournal, Store: baseStore, CompactJournal: true})
	if err != nil {
		t.Fatalf("baseline sweep: %v", err)
	}
	if fi, err := os.Stat(baseJournal); err != nil || fi.Size() != 0 {
		t.Fatalf("baseline journal not compacted: size=%v err=%v", fi.Size(), err)
	}
	truth, _, err := sweepjournal.LoadWithStore(baseJournal, baseStore)
	if err != nil {
		t.Fatal(err)
	}
	if len(truth) != len(c.Packages) {
		t.Fatalf("baseline store holds %d entries for %d packages", len(truth), len(c.Packages))
	}

	requireTruth := func(t *testing.T, journal string, s *store.Store) {
		t.Helper()
		got, _, err := sweepjournal.LoadWithStore(journal, s)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(truth, got) {
			for k, want := range truth {
				if !reflect.DeepEqual(want, got[k]) {
					t.Errorf("%s: resumed entry differs:\n%+v\nvs truth\n%+v", k, got[k], want)
				}
			}
			for k := range got {
				if _, ok := truth[k]; !ok {
					t.Errorf("%s: extra entry after resume", k)
				}
			}
		}
	}

	// Kill mid-compaction: the store half of Compact committed (Puts +
	// Sync) but the process died before the log truncate — every entry
	// is duplicated — and the fatal append also tore the log's tail.
	t.Run("mid-compaction", func(t *testing.T) {
		dir := t.TempDir()
		s := openChaosStore(t, filepath.Join(dir, "cache"))
		journal := filepath.Join(dir, "j.jsonl")
		if _, _, err := SuperviseGraphJS(c, opts, SuperviseOptions{JournalPath: journal, Store: s}); err != nil {
			t.Fatalf("sweep: %v", err)
		}
		entries, _, err := sweepjournal.Load(journal)
		if err != nil {
			t.Fatal(err)
		}
		for k, e := range entries {
			body, merr := json.Marshal(&e)
			if merr != nil {
				t.Fatal(merr)
			}
			if err := s.Put(store.KindJournal, k, body); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Sync(); err != nil {
			t.Fatal(err)
		}
		// The kill also lands mid-append: tear the log's tail. The torn
		// entries still live in the store, so nothing should re-scan.
		truncateJournal(t, journal)

		_, rstats, err := SuperviseGraphJS(c, opts,
			SuperviseOptions{JournalPath: journal, Store: s, Resume: true})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if rstats.Resumed != len(c.Packages) {
			t.Errorf("resumed %d packages, want all %d (store held the torn entries)",
				rstats.Resumed, len(c.Packages))
		}
		requireTruth(t, journal, s)
	})

	// Kill mid-commit: the store's own log is torn mid-record. Open
	// repairs the tail, the lost entry re-scans cold, and the resumed
	// state converges to truth.
	t.Run("mid-commit", func(t *testing.T) {
		dir := t.TempDir()
		cacheDir := filepath.Join(dir, "cache")
		journal := filepath.Join(dir, "j.jsonl")
		s, err := store.Open(cacheDir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := SuperviseGraphJS(c, opts, SuperviseOptions{
			JournalPath: journal, Store: s, CompactJournal: true}); err != nil {
			t.Fatalf("sweep: %v", err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		logPath := filepath.Join(cacheDir, "store.dat")
		fi, err := os.Stat(logPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(logPath, fi.Size()-7); err != nil {
			t.Fatal(err)
		}

		s2 := openChaosStore(t, cacheDir)
		if got := s2.Stats().Entries; got != len(c.Packages)-1 {
			t.Fatalf("repaired store holds %d entries, want %d (one lost to the tear)",
				got, len(c.Packages)-1)
		}
		_, rstats, err := SuperviseGraphJS(c, opts,
			SuperviseOptions{JournalPath: journal, Store: s2, Resume: true})
		if err != nil {
			t.Fatalf("resume: %v", err)
		}
		if rstats.Resumed != len(c.Packages)-1 {
			t.Errorf("resumed %d packages, want %d (exactly the torn entry re-scans)",
				rstats.Resumed, len(c.Packages)-1)
		}
		requireTruth(t, journal, s2)
	})
}
