package metrics

import (
	"os"
	"path/filepath"
	"strings"

	"repro/internal/sweepjournal"
)

// HashTarget fingerprints a scan target's current on-disk content for
// journal resume matching: a plain file hashes its bytes, a package
// directory hashes every non-minified .js file under it (skipping
// node_modules, test dirs, and .git). Unreadable targets hash their
// error text, so a target that starts failing re-runs instead of
// resuming.
// HashTreeTarget is HashTarget for dependency-tree scans (-tree): the
// walk descends into node_modules and includes package.json manifests,
// so editing one dependency (or the tree's layout) changes the hash
// and defeats a stale resume.
func HashTreeTarget(target string) string {
	errHash := func(err error) string { return sweepjournal.ContentHash("error: " + err.Error()) }
	files := map[string]string{}
	err := filepath.Walk(target, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		isJS := strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js")
		if !isJS && filepath.Base(path) != "package.json" {
			return nil
		}
		data, rerr := os.ReadFile(path)
		if rerr != nil {
			return rerr
		}
		files[path] = string(data)
		return nil
	})
	if err != nil {
		return errHash(err)
	}
	return sweepjournal.ContentHashFiles(files)
}

func HashTarget(target string) string {
	errHash := func(err error) string { return sweepjournal.ContentHash("error: " + err.Error()) }
	info, err := os.Stat(target)
	if err != nil {
		return errHash(err)
	}
	if !info.IsDir() {
		data, err := os.ReadFile(target)
		if err != nil {
			return errHash(err)
		}
		return sweepjournal.ContentHash(string(data))
	}
	files := map[string]string{}
	err = filepath.Walk(target, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "node_modules" || base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js") {
			data, rerr := os.ReadFile(path)
			if rerr != nil {
				return rerr
			}
			files[path] = string(data)
		}
		return nil
	})
	if err != nil {
		return errHash(err)
	}
	return sweepjournal.ContentHashFiles(files)
}
