package metrics

import (
	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/scanner"
)

// RunGraphJS scans every package of a corpus with Graph.js and collects
// per-package results.
func RunGraphJS(c *dataset.Corpus, opts scanner.Options) []PackageResult {
	out := make([]PackageResult, 0, len(c.Packages))
	for _, p := range c.Packages {
		rep := scanner.ScanSource(p.Source, p.Name, opts)
		out = append(out, PackageResult{
			Package:           p,
			Findings:          rep.Findings,
			TimedOut:          rep.TimedOut,
			GraphTime:         rep.GraphTime,
			QueryTime:         rep.QueryTime,
			TotalNodes:        rep.TotalNodes(),
			TotalEdges:        rep.TotalEdges(),
			LoC:               rep.LoC,
			QueryEngineTime:   rep.QueryEngineTime,
			NativeTime:        rep.NativeTime,
			FuncsPruned:       rep.FuncsPruned,
			SkippedByReach:    rep.SkippedByReach,
			TruncatedSearches: rep.TruncatedSearches,
		})
	}
	return out
}

// RunODGen scans every package of a corpus with the ODGen-style
// baseline.
func RunODGen(c *dataset.Corpus, opts odgen.Options) []PackageResult {
	out := make([]PackageResult, 0, len(c.Packages))
	for _, p := range c.Packages {
		rep := odgen.Scan(p.Source, p.Name, opts)
		out = append(out, PackageResult{
			Package:    p,
			Findings:   rep.Findings,
			TimedOut:   rep.TimedOut,
			GraphTime:  rep.GraphTime,
			QueryTime:  rep.QueryTime,
			TotalNodes: rep.ODGNodes,
			TotalEdges: rep.ODGEdges,
			LoC:        rep.LoC,
		})
	}
	return out
}
