package metrics

import (
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/odgen"
	"repro/internal/scanner"
)

// Sweep is the outcome of scanning a whole corpus with one tool:
// per-package results in corpus order plus the aggregate timing that
// makes the parallel speedup measurable. Wall is the elapsed time of
// the sweep; CPU is the sum of the per-package analysis times, which
// is (approximately) what a single worker would have spent. Their
// ratio, Speedup, approaches the worker count when packages
// parallelize well.
type Sweep struct {
	Results []PackageResult
	Wall    time.Duration // elapsed wall-clock time for the whole sweep
	CPU     time.Duration // sum of per-package analysis times
	Workers int           // workers the pool actually used
}

// Speedup is the sum-of-CPU over wall-clock ratio (1.0 when sequential,
// → Workers under perfect scaling). Returns 0 when no time was
// recorded.
func (s *Sweep) Speedup() float64 {
	if s.Wall <= 0 {
		return 0
	}
	return float64(s.CPU) / float64(s.Wall)
}

// poolWorkers resolves a Workers option: 0 (or negative) means
// runtime.GOMAXPROCS(0), and the pool never spawns more workers than
// there are packages.
func poolWorkers(workers, packages int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > packages {
		workers = packages
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runCorpus is the shared per-package runner behind every corpus
// sweep: a bounded worker pool executing scan(i) for each package
// index. The sequential path is simply the Workers=1 instance of the
// same pool — there is no second code path. Results are written into
// an index-addressed slice, so the output order is the corpus package
// order no matter how the scheduler interleaves workers, and no two
// goroutines ever touch the same element.
func runCorpus(packages, workers int, scan func(i int) PackageResult) *Sweep {
	n := poolWorkers(workers, packages)
	sw := &Sweep{Results: make([]PackageResult, packages), Workers: n}
	start := time.Now()

	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				sw.Results[i] = protect(i, scan)
			}
		}()
	}
	for i := 0; i < packages; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	sw.Wall = time.Since(start)
	for i := range sw.Results {
		r := &sw.Results[i]
		sw.CPU += r.GraphTime + r.QueryTime
	}
	return sw
}

// protect runs one package scan and converts a panic that escaped the
// scanner's own guards into a classified failure row, so one broken
// package cannot take down the worker — the pool keeps draining and
// every other package still gets its result.
func protect(i int, scan func(i int) PackageResult) (pr PackageResult) {
	defer func() {
		if r := recover(); r != nil {
			pr = PackageResult{
				Err:     &budget.PanicError{Phase: "sweep", Value: r, Stack: debug.Stack()},
				Failure: budget.ClassPanic,
			}
		}
	}()
	return scan(i)
}

// fillPackages restores the Package pointer on rows whose scan
// panicked before producing one (protect can only synthesize the
// error half of the row).
func fillPackages(sw *Sweep, c *dataset.Corpus) *Sweep {
	for i := range sw.Results {
		if sw.Results[i].Package == nil {
			sw.Results[i].Package = c.Packages[i]
		}
	}
	return sw
}

// FailureCounts tallies results per failure class (budget.ClassNone
// counts the clean runs).
func FailureCounts(results []PackageResult) map[budget.Class]int {
	m := map[budget.Class]int{}
	for i := range results {
		m[results[i].Failure]++
	}
	return m
}

// graphjsResult assembles one Graph.js scan report into a
// PackageResult row.
func graphjsResult(p *dataset.Package, rep *scanner.Report) PackageResult {
	return PackageResult{
		Package:           p,
		Findings:          rep.Findings,
		TimedOut:          rep.TimedOut,
		Err:               rep.Err,
		Failure:           rep.Failure,
		Incomplete:        rep.Incomplete,
		GraphTime:         rep.GraphTime,
		QueryTime:         rep.QueryTime,
		TotalNodes:        rep.TotalNodes(),
		TotalEdges:        rep.TotalEdges(),
		LoC:               rep.LoC,
		QueryEngineTime:   rep.QueryEngineTime,
		NativeTime:        rep.NativeTime,
		FuncsTotal:        rep.FuncsTotal,
		FuncsPruned:       rep.FuncsPruned,
		SkippedByReach:    rep.SkippedByReach,
		ExportCount:       rep.ExportCount,
		ReachFallback:     rep.ReachFallback,
		ProvenanceDepth:   rep.ProvenanceDepth,
		TruncatedSearches: rep.TruncatedSearches,
	}
}

// odgenResult assembles one baseline scan report into a PackageResult
// row.
func odgenResult(p *dataset.Package, rep *odgen.Report) PackageResult {
	return PackageResult{
		Package:    p,
		Findings:   rep.Findings,
		TimedOut:   rep.TimedOut,
		Err:        rep.Err,
		Failure:    rep.Failure,
		Incomplete: rep.Incomplete,
		GraphTime:  rep.GraphTime,
		QueryTime:  rep.QueryTime,
		TotalNodes: rep.ODGNodes,
		TotalEdges: rep.ODGEdges,
		LoC:        rep.LoC,
	}
}

// SweepGraphJS scans every package of a corpus with Graph.js on a
// bounded worker pool (opts.Workers goroutines; 0 = GOMAXPROCS) and
// returns per-package results in corpus order plus aggregate wall-clock
// vs CPU timing. Packages are independent and scanner.ScanSource is
// safe for concurrent use, so results are identical to a sequential
// sweep regardless of scheduling.
func SweepGraphJS(c *dataset.Corpus, opts scanner.Options) *Sweep {
	return fillPackages(runCorpus(len(c.Packages), opts.Workers, func(i int) PackageResult {
		p := c.Packages[i]
		return graphjsResult(p, scanPackage(p, opts))
	}), c)
}

// scanPackage scans one dataset package: single-file packages through
// ScanSource, multi-file packages (re-export templates with Extra
// modules) through ScanFiles with the main file as index.js.
func scanPackage(p *dataset.Package, opts scanner.Options) *scanner.Report {
	if len(p.Extra) == 0 {
		return scanner.ScanSource(p.Source, p.Name, opts)
	}
	files := packageFiles(p)
	return scanner.ScanFiles(files, p.Name, opts)
}

// packageFiles renders a multi-file package as a sorted SourceFile
// set (ScanFiles requires sorted Rel order).
func packageFiles(p *dataset.Package) []scanner.SourceFile {
	files := []scanner.SourceFile{{Rel: "index.js", Src: p.Source}}
	rels := make([]string, 0, len(p.Extra))
	for rel := range p.Extra {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		files = append(files, scanner.SourceFile{Rel: rel, Src: p.Extra[rel]})
	}
	sort.Slice(files, func(i, j int) bool { return files[i].Rel < files[j].Rel })
	return files
}

// packageContent is the content string hashed for journal resume keys;
// it covers every file of the package.
func packageContent(p *dataset.Package) string {
	if len(p.Extra) == 0 {
		return p.Source
	}
	var sb strings.Builder
	for _, f := range packageFiles(p) {
		sb.WriteString(f.Rel)
		sb.WriteByte(0)
		sb.WriteString(f.Src)
		sb.WriteByte(0)
	}
	return sb.String()
}

// SweepGraphJSIncremental is SweepGraphJS with per-package incremental
// states drawn from pool (each package name gets a dedicated
// scanner.IncrementalState). A first sweep over a corpus is all misses;
// re-sweeping after editing a few packages re-analyzes only those —
// pool.Stats() exposes the hit/miss/rebuild counters.
func SweepGraphJSIncremental(c *dataset.Corpus, opts scanner.Options, pool *scanner.StatePool) *Sweep {
	return fillPackages(runCorpus(len(c.Packages), opts.Workers, func(i int) PackageResult {
		p := c.Packages[i]
		o := opts
		o.Incremental = pool.Get(p.Name)
		return graphjsResult(p, scanPackage(p, o))
	}), c)
}

// SweepODGen scans every package of a corpus with the ODGen-style
// baseline on the same bounded worker pool as SweepGraphJS.
func SweepODGen(c *dataset.Corpus, opts odgen.Options) *Sweep {
	return fillPackages(runCorpus(len(c.Packages), opts.Workers, func(i int) PackageResult {
		p := c.Packages[i]
		return odgenResult(p, odgen.Scan(p.Source, p.Name, opts))
	}), c)
}

// RunGraphJS scans every package of a corpus with Graph.js and collects
// per-package results in corpus order. Parallelism is controlled by
// opts.Workers (0 = GOMAXPROCS); use SweepGraphJS to also get the
// aggregate sweep timing.
func RunGraphJS(c *dataset.Corpus, opts scanner.Options) []PackageResult {
	return SweepGraphJS(c, opts).Results
}

// RunODGen scans every package of a corpus with the ODGen-style
// baseline. Parallelism is controlled by opts.Workers (0 = GOMAXPROCS);
// use SweepODGen to also get the aggregate sweep timing.
func RunODGen(c *dataset.Corpus, opts odgen.Options) []PackageResult {
	return SweepODGen(c, opts).Results
}
