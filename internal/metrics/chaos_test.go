package metrics

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/scanner"
	"repro/internal/sweepjournal"
)

// Chaos harness (`make chaos` runs this under -race): supervised
// sweeps at Workers=4 with deterministic injected panics and timeouts,
// then a simulated SIGKILL (journal truncated mid-line) and a resume.
// The invariants:
//
//  1. The pool drains — the sweep returns one row per package no
//     matter what the fault plan does.
//  2. Every package reaches a terminal, classified journal state with
//     its attempt history attached.
//  3. The supervised results (findings + failure classes) equal the
//     uninjected sweep's: the ladder absorbs every injected fault.
//  4. Kill-and-resume reproduces the uninterrupted run's journal
//     exactly, entry for entry.

// truncateJournal simulates a SIGKILL mid-append: it drops the last
// complete line and tears the (new) final line in half.
func truncateJournal(t *testing.T, path string) int {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trimmed := bytes.TrimRight(data, "\n")
	cut := bytes.LastIndexByte(trimmed, '\n') // start of the last complete line
	if cut < 0 {
		t.Fatal("journal too small to truncate")
	}
	lost := 1
	keep := trimmed[:cut]
	tear := bytes.LastIndexByte(keep, '\n')
	if tear < 0 {
		t.Fatal("journal too small to tear")
	}
	lost++
	torn := append([]byte(nil), data[:tear+1]...)
	torn = append(torn, keep[tear+1:tear+1+(cut-tear-1)/2]...) // half a line, no newline
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	return lost
}

func TestChaosKillResume(t *testing.T) {
	c := superviseCorpus()
	opts := scanner.Options{Workers: 4, Timeout: 30 * time.Second}
	baseline := SweepGraphJS(c, opts)

	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			// Panics and timeouts on roughly 70% of first attempts, early
			// enough (Spread 6) to hit small packages too. Retries and
			// lower rungs run clean, so the ladder can always recover the
			// true result.
			plan := &budget.FaultPlan{Seed: seed, PanicProb: 0.4, TimeoutProb: 0.3, Spread: 6,
				Arm: func(label string) bool { return strings.HasSuffix(label, "#0") }}
			budget.SetFaultPlan(plan)
			defer budget.SetFaultPlan(nil)

			dir := t.TempDir()
			full := filepath.Join(dir, "full.jsonl")
			sw, stats, err := SuperviseGraphJS(c, opts, SuperviseOptions{JournalPath: full})
			if err != nil {
				t.Fatalf("supervised sweep: %v", err)
			}

			// Invariant 1: the pool drained.
			if len(sw.Results) != len(c.Packages) {
				t.Fatalf("sweep returned %d rows for %d packages", len(sw.Results), len(c.Packages))
			}
			injected := 0

			// Invariant 2: terminal classified journal rows for everyone.
			fullEntries, torn, err := sweepjournal.Load(full)
			if err != nil || torn {
				t.Fatalf("journal load: torn=%v err=%v", torn, err)
			}
			if len(fullEntries) != len(c.Packages) {
				t.Fatalf("journal has %d entries for %d packages", len(fullEntries), len(c.Packages))
			}
			for _, p := range c.Packages {
				e, ok := fullEntries[p.Name]
				if !ok {
					t.Fatalf("%s: no journal entry", p.Name)
				}
				switch e.State {
				case sweepjournal.StateComplete, sweepjournal.StateDegraded, sweepjournal.StateQuarantined:
				default:
					t.Errorf("%s: non-terminal state %q", p.Name, e.State)
				}
				if len(e.Attempts) == 0 {
					t.Errorf("%s: no attempt history", p.Name)
				}
				if len(e.Attempts) > 1 {
					injected++
				}
			}
			if injected == 0 {
				t.Error("fault plan injected nothing; chaos run was vacuous")
			}

			// Invariant 3: the ladder absorbed every fault — findings and
			// failure classes match the uninjected sweep.
			for i := range sw.Results {
				got, want := &sw.Results[i], &baseline.Results[i]
				if got.Failure != want.Failure {
					t.Errorf("%s: class %q, uninjected sweep had %q",
						c.Packages[i].Name, got.Failure, want.Failure)
				}
				if !sameFindings(got.Findings, want.Findings) {
					t.Errorf("%s: findings diverged from the uninjected sweep (%v vs %v)",
						c.Packages[i].Name, findingKeys(got.Findings), findingKeys(want.Findings))
				}
			}

			// Kill-and-resume: copy the journal, kill it mid-write, resume
			// under the same fault plan.
			killed := filepath.Join(dir, "killed.jsonl")
			data, err := os.ReadFile(full)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(killed, data, 0o644); err != nil {
				t.Fatal(err)
			}
			lost := truncateJournal(t, killed)
			resumed, rstats, err := SuperviseGraphJS(c, opts,
				SuperviseOptions{JournalPath: killed, Resume: true})
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !rstats.Torn {
				t.Error("resume did not report the torn journal tail")
			}
			if want := len(c.Packages) - lost; rstats.Resumed != want {
				t.Errorf("resumed %d packages, want %d (lost %d to the kill)",
					rstats.Resumed, want, lost)
			}

			// Invariant 4: the resumed journal replays to exactly the
			// uninterrupted run's entries, and the sweep rows agree.
			resEntries, _, err := sweepjournal.Load(killed)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fullEntries, resEntries) {
				for k, e := range fullEntries {
					if !reflect.DeepEqual(e, resEntries[k]) {
						t.Errorf("%s: resumed entry differs:\n%+v\nvs\n%+v", k, resEntries[k], e)
					}
				}
			}
			for i := range resumed.Results {
				if !sameFindings(resumed.Results[i].Findings, sw.Results[i].Findings) {
					t.Errorf("%s: resumed findings differ from the uninterrupted run",
						c.Packages[i].Name)
				}
			}
			t.Logf("seed %d: %d/%d packages hit by injected faults (%d complete, %d degraded, %d quarantined); kill lost %d entries, resume skipped %d and reproduced the journal",
				seed, injected, len(c.Packages), stats.Completed, stats.Degraded, stats.Quarantined,
				lost, rstats.Resumed)
		})
	}
}
