// Package metrics computes the evaluation measures of §5: true
// positives, false positives, *true* false positives (findings that do
// not correspond to any exploitable sink, annotated or not), precision,
// recall, F1, timing breakdowns and CDFs — and renders them as the
// paper's tables.
package metrics

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/dataset"
	"repro/internal/queries"
)

// Counts aggregates the classification outcome for one CWE class.
type Counts struct {
	Total int // annotated vulnerabilities
	TP    int // annotated vulnerabilities found
	FP    int // findings not matching any annotation
	TFP   int // findings not matching any exploitable sink
}

// Precision is TP/(TP+TFP) (§5.2: computed with TFP, not FP).
func (c Counts) Precision() float64 {
	if c.TP+c.TFP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.TFP)
}

// Recall is TP/Total.
func (c Counts) Recall() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.Total)
}

// F1 is the harmonic mean of precision and recall.
func (c Counts) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

func (c *Counts) add(o Counts) {
	c.Total += o.Total
	c.TP += o.TP
	c.FP += o.FP
	c.TFP += o.TFP
}

// Outcome is the per-CWE and total classification of one tool's run
// over a corpus.
type Outcome struct {
	Tool   string
	PerCWE map[queries.CWE]*Counts
	// Detected records which annotated vulnerabilities were found,
	// keyed by package name and annotation index (Venn diagram input).
	Detected map[string]bool
	// TimedOut counts packages whose analysis timed out.
	TimedOut int
	Packages int
}

// TotalCounts sums all classes.
func (o *Outcome) TotalCounts() Counts {
	var t Counts
	for _, cwe := range queries.AllCWEs {
		if c := o.PerCWE[cwe]; c != nil {
			t.add(*c)
		}
	}
	return t
}

// PackageResult is one tool's result on one package.
type PackageResult struct {
	Package  *dataset.Package
	Findings []queries.Finding
	TimedOut bool
	// Err is the scan error, if any (differential-engine mismatches
	// surface here rather than being silently dropped).
	Err error
	// Failure classifies why the scan ended early (budget.ClassNone on
	// a clean run); Incomplete marks results whose Findings are the
	// subset established before a budget tripped.
	Failure    budget.Class
	Incomplete bool
	// Timing and size metrics for Tables 6/7 and Figure 7.
	GraphTime  time.Duration
	QueryTime  time.Duration
	TotalNodes int
	TotalEdges int
	LoC        int
	// Per-engine detection timings. QueryEngineTime and NativeTime
	// are each non-zero only when the corresponding backend ran
	// (both do under the differential engine).
	QueryEngineTime time.Duration
	NativeTime      time.Duration
	// Export-graph gate counters: function totals and pruning, the
	// resolved API-surface size, whether the gate fell back to the
	// every-function attack model, and the deepest call-hop provenance
	// chain attached to a finding.
	FuncsTotal        int
	FuncsPruned       int
	SkippedByReach    bool
	ExportCount       int
	ReachFallback     bool
	ProvenanceDepth   int
	TruncatedSearches int
}

// vulnKey identifies one annotated vulnerability.
func vulnKey(pkg string, a dataset.Annotation) string {
	return fmt.Sprintf("%s/%s/%d", pkg, a.CWE, a.Line)
}

// matches reports whether finding f matches annotation a. Lenient
// matching accepts a type-only match (the paper grants it to ODGen:
// "a report is also considered a true positive if it only correctly
// detects the vulnerability type").
func matches(f queries.Finding, a dataset.Annotation, lenient bool) bool {
	if f.CWE != a.CWE {
		return false
	}
	return lenient || f.SinkLine == a.Line
}

// Evaluate classifies one tool's results against the ground truth.
func Evaluate(tool string, results []PackageResult, lenient bool) *Outcome {
	out := &Outcome{
		Tool:     tool,
		PerCWE:   map[queries.CWE]*Counts{},
		Detected: map[string]bool{},
	}
	for _, cwe := range queries.AllCWEs {
		out.PerCWE[cwe] = &Counts{}
	}
	for _, r := range results {
		out.Packages++
		if r.TimedOut {
			out.TimedOut++
		}
		for _, a := range r.Package.Annotated {
			out.PerCWE[a.CWE].Total++
			for _, f := range r.Findings {
				if matches(f, a, lenient) {
					out.PerCWE[a.CWE].TP++
					out.Detected[vulnKey(r.Package.Name, a)] = true
					break
				}
			}
		}
		for _, f := range r.Findings {
			c := out.PerCWE[f.CWE]
			if c == nil {
				c = &Counts{}
				out.PerCWE[f.CWE] = c
			}
			if !matchesAny(f, r.Package.Annotated, lenient) {
				c.FP++
				if !matchesAny(f, r.Package.Exploitable, lenient) {
					c.TFP++
				}
			}
		}
	}
	return out
}

func matchesAny(f queries.Finding, as []dataset.Annotation, lenient bool) bool {
	for _, a := range as {
		if matches(f, a, lenient) {
			return true
		}
	}
	return false
}

// Venn computes the Figure 6 overlap between two outcomes: vulns found
// only by a, by both, and only by b.
func Venn(a, b *Outcome) (onlyA, both, onlyB int) {
	for k := range a.Detected {
		if b.Detected[k] {
			both++
		} else {
			onlyA++
		}
	}
	for k := range b.Detected {
		if !a.Detected[k] {
			onlyB++
		}
	}
	return
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

// CDF returns, for each threshold, the fraction of packages whose total
// analysis time is below it (Figure 7).
func CDF(results []PackageResult, thresholds []time.Duration, timeoutCap time.Duration) []float64 {
	out := make([]float64, len(thresholds))
	if len(results) == 0 {
		return out
	}
	for i, th := range thresholds {
		n := 0
		for _, r := range results {
			t := r.GraphTime + r.QueryTime
			if r.TimedOut {
				t = timeoutCap
			}
			if t <= th {
				n++
			}
		}
		out[i] = float64(n) / float64(len(results))
	}
	return out
}

// PhaseAverages computes per-CWE average graph-construction and
// traversal times over packages that did not time out (Table 6). A
// package contributes to the row of its primary class.
func PhaseAverages(results []PackageResult) map[queries.CWE][2]time.Duration {
	sums := map[queries.CWE][2]time.Duration{}
	counts := map[queries.CWE]int{}
	for _, r := range results {
		if r.TimedOut || r.Package.CWE == "" {
			continue
		}
		s := sums[r.Package.CWE]
		s[0] += r.GraphTime
		s[1] += r.QueryTime
		sums[r.Package.CWE] = s
		counts[r.Package.CWE]++
	}
	out := map[queries.CWE][2]time.Duration{}
	for cwe, s := range sums {
		n := counts[cwe]
		if n > 0 {
			out[cwe] = [2]time.Duration{s[0] / time.Duration(n), s[1] / time.Duration(n)}
		}
	}
	return out
}

// EngineAverage aggregates per-backend detection timings over a run.
type EngineAverage struct {
	QueryEngine    time.Duration // avg query-backend detection time
	Native         time.Duration // avg native-backend detection time
	Packages       int           // packages contributing to the averages
	SkippedByReach int           // packages the reach gate skipped entirely
	FuncsTotal     int           // total functions defined across the run
	FuncsPruned    int           // total functions pruned across the run
	Exports        int           // total resolved API-surface entries
	ReachFallbacks int           // packages scanned under the fallback attack model
	MaxProvDepth   int           // deepest finding provenance chain seen
	Truncated      int           // total hop-bound-truncated searches
}

// PrunedRate is the fraction of defined functions the gate pruned.
func (e EngineAverage) PrunedRate() float64 {
	if e.FuncsTotal == 0 {
		return 0
	}
	return float64(e.FuncsPruned) / float64(e.FuncsTotal)
}

// EngineAverages summarizes the per-engine timing columns recorded by
// RunGraphJS. Packages that timed out are excluded from the averages;
// packages skipped by the reach gate count toward SkippedByReach but
// not toward the timing averages (neither backend ran on them).
func EngineAverages(results []PackageResult) EngineAverage {
	var out EngineAverage
	var timed int
	for _, r := range results {
		out.FuncsTotal += r.FuncsTotal
		out.FuncsPruned += r.FuncsPruned
		out.Exports += r.ExportCount
		out.Truncated += r.TruncatedSearches
		if r.ReachFallback {
			out.ReachFallbacks++
		}
		if r.ProvenanceDepth > out.MaxProvDepth {
			out.MaxProvDepth = r.ProvenanceDepth
		}
		if r.SkippedByReach {
			out.SkippedByReach++
			continue
		}
		if r.TimedOut {
			continue
		}
		out.QueryEngine += r.QueryEngineTime
		out.Native += r.NativeTime
		timed++
	}
	if timed > 0 {
		out.QueryEngine /= time.Duration(timed)
		out.Native /= time.Duration(timed)
	}
	out.Packages = timed
	return out
}

// SizeBucket is one LoC bucket row of Table 7.
type SizeBucket struct {
	Label    string
	MaxLoC   int
	Packages int
	Graphs   int // graphs produced before timing out
	AvgNodes float64
	AvgEdges float64
}

// SizeBuckets groups packages by LoC and averages graph sizes (Table 7).
func SizeBuckets(results []PackageResult, bounds []int) []SizeBucket {
	buckets := make([]SizeBucket, len(bounds)+1)
	for i, b := range bounds {
		buckets[i].MaxLoC = b
		if i == 0 {
			buckets[i].Label = fmt.Sprintf("<=%d", b)
		} else {
			buckets[i].Label = fmt.Sprintf("%d-%d", bounds[i-1]+1, b)
		}
	}
	buckets[len(bounds)].MaxLoC = 1 << 30
	buckets[len(bounds)].Label = fmt.Sprintf(">%d", bounds[len(bounds)-1])

	sumN := make([]float64, len(buckets))
	sumE := make([]float64, len(buckets))
	for _, r := range results {
		bi := len(buckets) - 1
		for i := range bounds {
			if r.LoC <= bounds[i] {
				bi = i
				break
			}
		}
		buckets[bi].Packages++
		if !r.TimedOut {
			buckets[bi].Graphs++
			sumN[bi] += float64(r.TotalNodes)
			sumE[bi] += float64(r.TotalEdges)
		}
	}
	for i := range buckets {
		if buckets[i].Graphs > 0 {
			buckets[i].AvgNodes = sumN[i] / float64(buckets[i].Graphs)
			buckets[i].AvgEdges = sumE[i] / float64(buckets[i].Graphs)
		}
	}
	return buckets
}

// ---------------------------------------------------------------------------
// Table rendering
// ---------------------------------------------------------------------------

// Table renders rows of columns with padded alignment.
func Table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
		}
		sb.WriteString("\n")
	}
	line(header)
	for _, r := range rows {
		line(r)
	}
	return sb.String()
}

// FmtPct renders a ratio as 0.82-style.
func FmtPct(f float64) string { return fmt.Sprintf("%.2f", f) }

// FmtDur renders a duration in milliseconds with 2 decimals.
func FmtDur(d time.Duration) string {
	return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000.0)
}

// SortedCWEs returns the report ordering.
func SortedCWEs() []queries.CWE {
	out := append([]queries.CWE(nil), queries.AllCWEs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
