package odgen

import (
	"strings"
	"testing"

	"repro/internal/queries"
	"repro/internal/scanner"
)

func scan(t *testing.T, src string) *Report {
	t.Helper()
	return Scan(src, "test.js", DefaultOptions())
}

func hasCWE(fs []queries.Finding, cwe queries.CWE) bool {
	for _, f := range fs {
		if f.CWE == cwe {
			return true
		}
	}
	return false
}

func TestCommandInjectionDetected(t *testing.T) {
	rep := scan(t, `
const { exec } = require('child_process');
function run(cmd) { exec(cmd); }
module.exports = run;
`)
	if rep.Err != nil {
		t.Fatal(rep.Err)
	}
	if !hasCWE(rep.Findings, queries.CWECommandInjection) {
		t.Fatalf("findings: %v", rep.Findings)
	}
}

func TestBenignClean(t *testing.T) {
	rep := scan(t, `
const { exec } = require('child_process');
function run() { exec('git status'); }
module.exports = run;
`)
	if len(rep.Findings) != 0 {
		t.Fatalf("benign flagged: %v", rep.Findings)
	}
}

func TestPathTraversalNeedsWebContext(t *testing.T) {
	noWeb := `
var fs = require('fs');
function read(p, cb) { fs.readFile(p, cb); }
module.exports = read;
`
	rep := scan(t, noWeb)
	if hasCWE(rep.Findings, queries.CWEPathTraversal) {
		t.Fatal("CWE-22 must require web context in the baseline")
	}
	withWeb := `
var fs = require('fs');
var http = require('http');
http.createServer(function(req, res) {});
function read(p, cb) { fs.readFile(p, cb); }
module.exports = read;
`
	rep = scan(t, withWeb)
	if !hasCWE(rep.Findings, queries.CWEPathTraversal) {
		t.Fatalf("CWE-22 missed with web context: %v", rep.Findings)
	}
}

func TestObjectExplosionInLoops(t *testing.T) {
	loopSrc := `
function f(n) {
	var acc = [];
	for (var i = 0; i < n; i++) {
		var o = { idx: i };
		acc.push(o);
	}
	return acc;
}
module.exports = f;
`
	straightSrc := `
function f(n) {
	var o = { idx: n };
	return o;
}
module.exports = f;
`
	loop := scan(t, loopSrc)
	straight := scan(t, straightSrc)
	if loop.ODGNodes <= straight.ODGNodes*2 {
		t.Fatalf("loop unrolling should blow up the graph: loop=%d straight=%d",
			loop.ODGNodes, straight.ODGNodes)
	}
	// Graph.js's MDG stays flat on the same input.
	mdgLoop := scanner.ScanSource(loopSrc, "t.js", scanner.Options{})
	if mdgLoop.MDGNodes >= loop.ODGNodes {
		t.Fatalf("MDG (%d nodes) should be smaller than ODG (%d nodes)",
			mdgLoop.MDGNodes, loop.ODGNodes)
	}
}

func TestTimeoutOnRecursivePollution(t *testing.T) {
	// Deep recursion + loops exhaust the unrolling interpreter's budget.
	var sb strings.Builder
	sb.WriteString("function merge(target, source) {\n")
	sb.WriteString("  for (var k in source) {\n")
	sb.WriteString("    for (var j in target) {\n")
	sb.WriteString("      merge(target[k], source[j]);\n")
	sb.WriteString("      merge(source[j], target[k]);\n")
	sb.WriteString("    }\n")
	sb.WriteString("    target[k] = source[k];\n")
	sb.WriteString("  }\n")
	sb.WriteString("  return target;\n")
	sb.WriteString("}\nmodule.exports = merge;\n")
	opts := DefaultOptions()
	opts.StepBudget = 20000
	rep := Scan(sb.String(), "merge.js", opts)
	if !rep.TimedOut {
		t.Fatalf("expected timeout; steps survived, findings: %v", rep.Findings)
	}
}

func TestPollutionDetectedWhenBudgetAllows(t *testing.T) {
	rep := scan(t, `
function set(obj, key, value) {
	var sub = obj[key];
	sub[key] = value;
}
module.exports = set;
`)
	if !hasCWE(rep.Findings, queries.CWEPrototypePollution) {
		t.Fatalf("simple pollution missed: %v", rep.Findings)
	}
}

func TestParseError(t *testing.T) {
	rep := scan(t, "var = nope")
	if rep.Err == nil {
		t.Fatal("expected parse error")
	}
}

func TestInterproceduralInlining(t *testing.T) {
	rep := scan(t, `
const { exec } = require('child_process');
function inner(c) { exec(c); }
function entry(user) { inner(user); }
module.exports = entry;
`)
	if !hasCWE(rep.Findings, queries.CWECommandInjection) {
		t.Fatalf("inlined call taint missed: %v", rep.Findings)
	}
}

func TestCallDepthBounded(t *testing.T) {
	// Infinite recursion must stop at CallDepth, not the step budget.
	rep := scan(t, `
function rec(a) { rec(a); }
module.exports = rec;
`)
	if rep.TimedOut {
		t.Fatal("bounded recursion should not time out")
	}
}

func TestFindingsSurviveTimeout(t *testing.T) {
	// A sink hit before the timeout is still reported (paper: "we
	// include all vulnerabilities reported by ODGen until it times
	// out").
	src := `
const { exec } = require('child_process');
function f(cmd) {
	exec(cmd);
	var o = {};
	while (cmd) { o = { x: o }; }
}
module.exports = f;
`
	opts := DefaultOptions()
	opts.StepBudget = 300
	rep := Scan(src, "t.js", opts)
	if !hasCWE(rep.Findings, queries.CWECommandInjection) {
		t.Fatalf("pre-timeout finding lost: timedout=%v findings=%v", rep.TimedOut, rep.Findings)
	}
}

func TestCrossArgContamination(t *testing.T) {
	// The baseline assumes unknown callees may copy any argument into
	// any other; this drives its true false positives.
	src := `
const { exec } = require('child_process');
function run(input) {
	var opts = { cmd: 'git status' };
	record(input, opts);
	exec(opts.cmd + opts.verbose);
}
module.exports = run;
`
	rep := scan(t, src)
	if !hasCWE(rep.Findings, queries.CWECommandInjection) {
		t.Fatalf("cross-argument contamination should flag this: %v", rep.Findings)
	}
}

func TestKnownCalleeNoContamination(t *testing.T) {
	// A resolved callee is inlined precisely, not contaminated.
	src := `
const { exec } = require('child_process');
function record(a, b) { return a; }
function run(input) {
	var opts = { cmd: 'git status' };
	record(input, opts);
	exec(opts.cmd);
}
module.exports = run;
`
	rep := scan(t, src)
	if hasCWE(rep.Findings, queries.CWECommandInjection) {
		t.Fatalf("known callee should not contaminate: %v", rep.Findings)
	}
}

func TestFunctionPrototypeApply(t *testing.T) {
	src := `
const { exec } = require('child_process');
function launch(c) { exec(c); }
function run(input) {
	launch.apply(null, input);
}
module.exports = run;
`
	rep := scan(t, src)
	// .apply passes an array; taint is approximated through the array
	// object itself, so detection depends on element tracking. The run
	// must at least not crash and not time out.
	if rep.Err != nil || rep.TimedOut {
		t.Fatalf("apply handling broken: err=%v timedOut=%v", rep.Err, rep.TimedOut)
	}
}

func TestODGNodesScaleWithUnroll(t *testing.T) {
	src := `
function f(n) {
	var acc = [];
	for (var i = 0; i < n; i++) {
		acc.push({ v: i });
	}
	return acc;
}
module.exports = f;
`
	sizes := make([]int, 0, 3)
	for _, u := range []int{2, 4, 8} {
		opts := DefaultOptions()
		opts.UnrollLimit = u
		rep := Scan(src, "t.js", opts)
		sizes = append(sizes, rep.ODGNodes)
	}
	if !(sizes[0] < sizes[1] && sizes[1] < sizes[2]) {
		t.Fatalf("ODG must grow with the unroll limit: %v", sizes)
	}
}

func TestReportTotalTime(t *testing.T) {
	rep := scan(t, "function f(a) { return a; }\nmodule.exports = f;")
	if rep.TotalTime() != rep.GraphTime+rep.QueryTime {
		t.Fatal("TotalTime mismatch")
	}
}
