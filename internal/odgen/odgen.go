// Package odgen implements the comparison baseline: a vulnerability
// scanner in the style of ODGen (Li et al., USENIX Security 2022), the
// prior state of the art the paper evaluates against.
//
// The baseline reproduces the design characteristics the paper
// attributes to ODGen:
//
//   - a combined CPG+ODG structure: AST and CFG plus an Object
//     Dependence Graph whose nodes represent objects, variables and
//     scopes;
//   - object allocation per *evaluation* rather than per allocation
//     site: every time an object initializer is analyzed a new ODG node
//     is created, so loops are unrolled and the graph grows with the
//     iteration count (the "object explosion" problem, §5.4);
//   - call-site inlining of function bodies (re-analysis per call, with
//     a depth limit) instead of summaries, so recursion multiplies
//     work;
//   - a step budget modelling the analysis timeout: loop- and
//     recursion-heavy prototype-pollution packages exhaust it (§5.2:
//     "in 95% of the cases, ODGen timed out without detecting any
//     vulnerability");
//   - natively implemented taint queries (fast traversal phase for
//     taint-style CWEs, Table 6);
//   - path-traversal findings only in a web-server context
//     (createServer), which eliminates CWE-22 false positives at the
//     cost of recall (§5.2).
package odgen

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
	"repro/internal/queries"
)

// Options tunes the baseline.
type Options struct {
	// UnrollLimit is the number of times loops are unrolled.
	UnrollLimit int
	// CallDepth bounds call-site inlining.
	CallDepth int
	// StepBudget models the analysis timeout (0 = default).
	StepBudget int
	// Timeout additionally bounds a scan by wall-clock time
	// (0 = none); like the step budget, hitting it keeps the findings
	// established so far.
	Timeout time.Duration
	// Config supplies the sink lists (DefaultConfig when nil).
	Config *queries.Config
	// Workers bounds the worker pool for multi-package sweeps
	// (metrics.SweepODGen). 0 means runtime.GOMAXPROCS(0); 1 forces a
	// sequential sweep. A single Scan call ignores it.
	Workers int
}

// DefaultOptions mirror the artifact's defaults.
func DefaultOptions() Options {
	return Options{UnrollLimit: 5, CallDepth: 6, StepBudget: 200000}
}

// Report is the outcome of one baseline scan.
type Report struct {
	Name     string
	Findings []queries.Finding
	TimedOut bool
	Err      error

	// Failure classifies why the scan ended early (budget.ClassNone on
	// a clean run): parse errors, the step budget, the wall-clock
	// deadline, or a recovered interpreter panic. Incomplete marks
	// budget/deadline hits whose Findings are the pre-timeout subset.
	Failure    budget.Class
	Incomplete bool

	GraphTime time.Duration
	QueryTime time.Duration

	LoC      int
	ASTNodes int
	ODGNodes int
	ODGEdges int
}

// TotalTime returns the end-to-end analysis time.
func (r *Report) TotalTime() time.Duration { return r.GraphTime + r.QueryTime }

// ---------------------------------------------------------------------------
// ODG representation
// ---------------------------------------------------------------------------

type objID int

type object struct {
	id    objID
	taint map[string]bool // source names that reach this value
	props map[string]objID
	wild  []objID // wildcard (unknown-name) property values
	line  int
	// viaTaintedLookup marks objects obtained by a lookup whose
	// property name was attacker-controlled.
	viaTaintedLookup bool
	fn               *core.FuncDef // function values
}

type interp struct {
	opts     Options
	objs     []*object
	edges    int
	steps    int
	budget   int
	depth    int
	timeout  bool
	deadline time.Time    // zero = no wall-clock bound
	failure  budget.Class // why the interpreter stopped early

	findings []queries.Finding
	seen     map[string]bool
	hasWeb   bool // createServer present: CWE-22 reporting enabled
	sinksCI  []queries.Sink
	sinks78  []queries.Sink
	sinks22  []queries.Sink

	// globalFns maps function names to definitions for call inlining.
	globalFns map[string]*core.FuncDef
	exported  map[string]bool
}

type timeoutSignal struct{}

func (ip *interp) tick() {
	ip.steps++
	if ip.steps > ip.budget {
		ip.timeout = true
		ip.failure = budget.ClassBudget
		panic(timeoutSignal{}) //lint:allow nakedpanic -- timeoutSignal is recovered by the run fence below
	}
	if !ip.deadline.IsZero() && ip.steps%256 == 0 && !time.Now().Before(ip.deadline) {
		ip.timeout = true
		ip.failure = budget.ClassTimeout
		panic(timeoutSignal{}) //lint:allow nakedpanic -- timeoutSignal is recovered by the run fence below
	}
}

func (ip *interp) newObject(line int) *object {
	o := &object{id: objID(len(ip.objs)), taint: map[string]bool{}, props: map[string]objID{}, line: line}
	ip.objs = append(ip.objs, o)
	return o
}

func (ip *interp) get(id objID) *object { return ip.objs[id] }

// env is a variable environment with lexical parent.
type env struct {
	vars   map[string]objID
	parent *env
}

func newEnv(parent *env) *env { return &env{vars: map[string]objID{}, parent: parent} }

func (e *env) get(x string) (objID, bool) {
	for s := e; s != nil; s = s.parent {
		if v, ok := s.vars[x]; ok {
			return v, true
		}
	}
	return 0, false
}

func (e *env) set(x string, v objID) {
	for s := e; s != nil; s = s.parent {
		if _, ok := s.vars[x]; ok {
			s.vars[x] = v
			return
		}
	}
	e.vars[x] = v
}

// Scan runs the baseline on one source text.
//
// Scan is safe for concurrent use by multiple goroutines: all scan
// state (ODG, worklists, step budget) is allocated per call, the
// package's only globals are immutable lookup tables, and the shared
// opts.Config is never written after construction.
func Scan(src, name string, opts Options) *Report {
	if opts.UnrollLimit == 0 {
		opts = DefaultOptions()
	}
	cfg := opts.Config
	if cfg == nil {
		cfg = queries.DefaultConfig()
	}
	rep := &Report{Name: name, LoC: strings.Count(src, "\n") + 1}
	start := time.Now()

	prog, err := parser.Parse(src)
	if err != nil {
		rep.Err = fmt.Errorf("odgen: parse %s: %w", name, err)
		rep.Failure = budget.ClassParse
		return rep
	}
	rep.ASTNodes = ast.Count(prog)
	nprog := normalize.Normalize(prog, name)

	ip := &interp{
		opts:      opts,
		budget:    opts.StepBudget,
		seen:      map[string]bool{},
		globalFns: map[string]*core.FuncDef{},
		exported:  map[string]bool{},
		sinksCI:   cfg.SinksFor(queries.CWECodeInjection),
		sinks78:   cfg.SinksFor(queries.CWECommandInjection),
		sinks22:   cfg.SinksFor(queries.CWEPathTraversal),
	}
	if ip.budget == 0 {
		ip.budget = 200000
	}
	if opts.Timeout > 0 {
		ip.deadline = start.Add(opts.Timeout)
	}
	core.Walk(nprog.Body, func(s core.Stmt) bool {
		if fd, ok := s.(*core.FuncDef); ok {
			ip.globalFns[fd.Name] = fd
		}
		if c, ok := s.(*core.Call); ok && strings.Contains(c.CalleeName, "createServer") {
			ip.hasWeb = true
		}
		return true
	})
	ip.findExported(nprog)

	if perr := budget.Guard("odgen-interp", func() error {
		func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(timeoutSignal); ok {
						return
					}
					panic(r) //lint:allow nakedpanic -- re-raises foreign panics for the scanner's phase guard
				}
			}()
			ip.run(nprog)
		}()
		return nil
	}); perr != nil {
		// Any panic other than the cooperative timeout signal is an
		// engine bug; contain it and keep the findings established so
		// far rather than killing the whole sweep.
		rep.Err = perr
		rep.Failure = budget.ClassPanic
	}

	rep.GraphTime = time.Since(start)
	rep.TimedOut = ip.timeout
	if ip.timeout {
		rep.Failure = ip.failure
		rep.Incomplete = true
	}
	rep.ODGNodes = rep.ASTNodes + len(ip.objs)
	rep.ODGEdges = ip.edges
	// ODGen reports the vulnerabilities found before timing out.
	qStart := time.Now()
	rep.Findings = ip.findings
	rep.QueryTime = time.Since(qStart)
	return rep
}

// findExported mirrors the CommonJS attack-surface detection: functions
// assigned to module.exports / exports become entry points.
func (ip *interp) findExported(prog *core.Program) {
	// Track which variables alias module.exports.
	core.Walk(prog.Body, func(s core.Stmt) bool {
		switch st := s.(type) {
		case *core.Update:
			if isExportsExpr(st.Obj) {
				if v, ok := st.Val.(core.Var); ok {
					ip.exported[v.Name] = true
				}
			}
			if v, ok := st.Obj.(core.Var); ok && (v.Name == "module" || v.Name == "exports") {
				if val, ok := st.Val.(core.Var); ok {
					ip.exported[val.Name] = true
				}
			}
		case *core.Assign:
			// $t := module.exports-ish aliases are rare post-normalize.
			_ = st
		case *core.Lookup:
			_ = st
		}
		return true
	})
	if len(ip.exported) == 0 {
		for name := range ip.globalFns {
			ip.exported[name] = true
		}
	}
}

func isExportsExpr(e core.Expr) bool {
	v, ok := e.(core.Var)
	return ok && (v.Name == "exports" || strings.HasPrefix(v.Name, "$"))
}

// run drives the whole-program interpretation: top level first, then
// each exported function with tainted parameters.
func (ip *interp) run(prog *core.Program) {
	global := newEnv(nil)
	ip.stmts(prog.Body, global)
	names := make([]string, 0, len(ip.exported))
	for name := range ip.exported {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fd, ok := ip.globalFns[name]
		if !ok {
			continue
		}
		fnEnv := newEnv(global)
		var args []objID
		for _, p := range fd.Params {
			o := ip.newObject(fd.Ln)
			o.taint[p] = true
			args = append(args, o.id)
			_ = p
		}
		ip.invoke(fd, args, fnEnv)
	}
}

func (ip *interp) invoke(fd *core.FuncDef, args []objID, parent *env) {
	if ip.depth >= ip.opts.CallDepth {
		return
	}
	ip.depth++
	defer func() { ip.depth-- }()
	e := newEnv(parent)
	for i, p := range fd.Params {
		if i < len(args) {
			e.vars[p] = args[i]
		} else {
			e.vars[p] = ip.newObject(fd.Ln).id
		}
	}
	ip.stmts(fd.Body, e)
}

func (ip *interp) eval(ex core.Expr, e *env, line int) objID {
	switch x := ex.(type) {
	case core.Var:
		if id, ok := e.get(x.Name); ok {
			return id
		}
		o := ip.newObject(line)
		e.set(x.Name, o.id)
		return o.id
	case core.Lit:
		return ip.newObject(line).id // fresh node per literal evaluation
	}
	return ip.newObject(line).id
}

func (ip *interp) stmts(ss []core.Stmt, e *env) {
	for _, s := range ss {
		ip.stmt(s, e)
	}
}

func (ip *interp) stmt(s core.Stmt, e *env) {
	ip.tick()
	switch x := s.(type) {
	case *core.Assign:
		e.set(x.X, ip.eval(x.E, e, x.Ln))

	case *core.BinOp:
		l := ip.get(ip.eval(x.L, e, x.Ln))
		r := ip.get(ip.eval(x.R, e, x.Ln))
		o := ip.newObject(x.Ln)
		mergeTaint(o, l, r)
		ip.edges += 2
		e.set(x.X, o.id)

	case *core.UnOp:
		v := ip.get(ip.eval(x.E, e, x.Ln))
		o := ip.newObject(x.Ln)
		mergeTaint(o, v)
		ip.edges++
		e.set(x.X, o.id)

	case *core.NewObj:
		// Per-evaluation allocation: the object-explosion behaviour.
		e.set(x.X, ip.newObject(x.Ln).id)

	case *core.Lookup:
		obj := ip.get(ip.eval(x.Obj, e, x.Ln))
		id, ok := obj.props[x.Prop]
		if !ok {
			n := ip.newObject(x.Ln)
			mergeTaint(n, obj)
			obj.props[x.Prop] = n.id
			ip.edges++
			id = n.id
		}
		e.set(x.X, id)

	case *core.DynLookup:
		obj := ip.get(ip.eval(x.Obj, e, x.Ln))
		prop := ip.get(ip.eval(x.Prop, e, x.Ln))
		n := ip.newObject(x.Ln)
		mergeTaint(n, obj, prop)
		if len(prop.taint) > 0 {
			n.viaTaintedLookup = true
		}
		for _, w := range obj.wild {
			mergeTaint(n, ip.get(w))
		}
		for _, pid := range obj.props {
			mergeTaint(n, ip.get(pid))
		}
		obj.wild = append(obj.wild, n.id)
		ip.edges += 2
		e.set(x.X, n.id)

	case *core.Update:
		obj := ip.get(ip.eval(x.Obj, e, x.Ln))
		val := ip.eval(x.Val, e, x.Ln)
		obj.props[x.Prop] = val
		ip.edges++

	case *core.DynUpdate:
		obj := ip.get(ip.eval(x.Obj, e, x.Ln))
		prop := ip.get(ip.eval(x.Prop, e, x.Ln))
		val := ip.get(ip.eval(x.Val, e, x.Ln))
		obj.wild = append(obj.wild, val.id)
		ip.edges += 2
		// Prototype-pollution pattern: assignment over an object that
		// was itself obtained through a tainted dynamic lookup, with
		// tainted property name and tainted value.
		if obj.viaTaintedLookup && len(prop.taint) > 0 && len(val.taint) > 0 {
			ip.report(queries.Finding{
				CWE:      queries.CWEPrototypePollution,
				SinkName: "prototype pollution",
				SinkLine: x.Ln,
				Source:   firstTaint(prop),
			})
		}

	case *core.If:
		ip.eval(x.Cond, e, x.Ln)
		ip.stmts(x.Then, e)
		ip.stmts(x.Else, e)

	case *core.While:
		// Loop unrolling: the body is re-analyzed UnrollLimit times,
		// allocating fresh objects each iteration.
		for i := 0; i < ip.opts.UnrollLimit; i++ {
			ip.stmts(x.Body, e)
		}

	case *core.ForIn:
		obj := ip.get(ip.eval(x.Obj, e, x.Ln))
		for i := 0; i < ip.opts.UnrollLimit; i++ {
			k := ip.newObject(x.Ln)
			mergeTaint(k, obj)
			if len(obj.taint) > 0 {
				k.viaTaintedLookup = true
			}
			e.set(x.Key, k.id)
			ip.stmts(x.Body, e)
		}

	case *core.Call:
		ip.call(x, e)

	case *core.FuncDef:
		o := ip.newObject(x.Ln)
		o.fn = x
		e.set(x.Name, o.id)

	case *core.Return:
		if x.E != nil {
			ip.eval(x.E, e, x.Ln)
		}
	}
}

func (ip *interp) call(x *core.Call, e *env) {
	var argObjs []*object
	var argIDs []objID
	for _, a := range x.Args {
		id := ip.eval(a, e, x.Ln)
		argIDs = append(argIDs, id)
		argObjs = append(argObjs, ip.get(id))
	}

	// Sink checks (native query evaluation).
	ip.checkSinks(x, argObjs)

	// Result node.
	res := ip.newObject(x.Ln)
	for _, a := range argObjs {
		mergeTaint(res, a)
	}
	ip.edges += len(argObjs)

	// Inline known callees (per call site).
	calleeID := ip.eval(x.Callee, e, x.Ln)
	switch {
	case ip.get(calleeID).fn != nil:
		ip.invoke(ip.get(calleeID).fn, argIDs, e)
	case strings.HasSuffix(x.CalleeName, ".call") || strings.HasSuffix(x.CalleeName, ".apply"):
		// Function.prototype.call/apply: the baseline's concrete-style
		// interpretation resolves these (the paper lists them among the
		// features MDGs do not support, §5.2).
		base := strings.TrimSuffix(strings.TrimSuffix(x.CalleeName, ".call"), ".apply")
		if fd, ok := ip.globalFns[base]; ok {
			shifted := argIDs
			if len(shifted) > 0 {
				shifted = shifted[1:] // drop thisArg
			}
			ip.invoke(fd, shifted, e)
		}
	default:
		if fd, ok := ip.globalFns[x.CalleeName]; ok {
			ip.invoke(fd, argIDs, e)
		} else {
			// Unknown callee: assume it may copy any argument into any
			// other (conservative side-effect modelling). This cross-
			// argument contamination is a documented imprecision of the
			// ODG approach and a driver of its true false positives.
			anyTaint := map[string]bool{}
			for _, a := range argObjs {
				for k := range a.taint {
					anyTaint[k] = true
				}
			}
			if len(anyTaint) > 0 {
				for _, a := range argObjs {
					for k := range anyTaint {
						a.taint[k] = true
					}
				}
			}
		}
	}
	e.set(x.X, res.id)
}

func (ip *interp) checkSinks(x *core.Call, args []*object) {
	check := func(sinks []queries.Sink, cwe queries.CWE) {
		for _, s := range sinks {
			if !queries.MatchSink(x.CalleeName, s.Name) {
				continue
			}
			if cwe == queries.CWEPathTraversal && !ip.hasWeb {
				// ODGen only reports path traversal in a web-server
				// context (§5.2).
				continue
			}
			for _, n := range s.Args {
				if n < len(args) && len(args[n].taint) > 0 {
					ip.report(queries.Finding{
						CWE:      cwe,
						SinkName: x.CalleeName,
						SinkLine: x.Ln,
						Source:   firstTaint(args[n]),
					})
				}
			}
		}
	}
	check(ip.sinks78, queries.CWECommandInjection)
	check(ip.sinksCI, queries.CWECodeInjection)
	check(ip.sinks22, queries.CWEPathTraversal)
}

func (ip *interp) report(f queries.Finding) {
	key := fmt.Sprintf("%s/%d/%s", f.CWE, f.SinkLine, f.SinkName)
	if ip.seen[key] {
		return
	}
	ip.seen[key] = true
	ip.findings = append(ip.findings, f)
}

func mergeTaint(dst *object, srcs ...*object) {
	for _, s := range srcs {
		for k := range s.taint {
			dst.taint[k] = true
		}
	}
}

func firstTaint(o *object) string {
	for k := range o.taint {
		return k
	}
	return ""
}

// ScanFileLike mirrors scanner.ScanSource's signature for harness reuse.
func ScanFileLike(src, name string, opts Options) *Report { return Scan(src, name, opts) }
