package dataset

import (
	"fmt"
	"path"
	"regexp"
	"sort"
	"strings"

	"repro/internal/deptree"
	"repro/internal/queries"
)

// Multi-package dependency-tree fixtures for the cross-package
// scanner (scanner.Options.Tree). Each template is a small npm-style
// tree — root package plus node_modules — with a cross-package
// source→sink flow in the vulnerable variant and the same topology
// with no tainted flow in the benign one. The //@sink markers carry
// per-file ground truth, and FlattenTree rewrites every tree into a
// single flat package (bare requires → relative requires) so the
// tree-equivalence oracle can demand byte-identical findings from the
// stitched and the flattened scan.

// TreeFile is one file of a dependency-tree fixture (package.json
// manifests included — the resolver needs them, the scanner's front
// end ignores them).
type TreeFile struct {
	Rel string
	Src string
}

// TreeAnnotation is file-qualified ground truth: tree sinks live in
// dependency files, so the single-file Annotation line is not enough.
type TreeAnnotation struct {
	CWE  queries.CWE
	File string
	Line int
}

// TreeCase is one dependency-tree fixture.
type TreeCase struct {
	Name       string
	Vulnerable bool
	CWE        queries.CWE
	// Files are sorted by Rel with ground-truth markers stripped.
	Files []TreeFile
	// Annotated lists the expected findings (empty when benign).
	Annotated []TreeAnnotation
	// Packages and Depth describe the expected resolved tree shape:
	// package count and deepest node_modules nesting level.
	Packages int
	Depth    int
}

// TreeCases renders every tree template in both variants. The five
// topologies cover the resolver's interesting axes: a direct
// dependency, a transitive chain resolved by node_modules walk-up, a
// diamond with a shared leaf, nested-node_modules version shadowing
// (innermost wins), and a scoped package with a subpath require.
func TreeCases() []TreeCase {
	var out []TreeCase
	for _, vulnerable := range []bool{true, false} {
		out = append(out,
			directTree(vulnerable),
			chainTree(vulnerable),
			diamondTree(vulnerable),
			shadowedTree(vulnerable),
			scopedTree(vulnerable),
		)
	}
	return out
}

// finalizeTree strips //@sink markers, records annotations, and sorts
// files into the scanner's canonical Rel order.
func finalizeTree(c TreeCase) TreeCase {
	sort.Slice(c.Files, func(i, j int) bool { return c.Files[i].Rel < c.Files[j].Rel })
	for i, f := range c.Files {
		lines := strings.Split(f.Src, "\n")
		for ln, text := range lines {
			if strings.Contains(text, sinkMarker) {
				c.Annotated = append(c.Annotated, TreeAnnotation{
					CWE:  c.CWE,
					File: f.Rel,
					Line: ln + 1,
				})
			}
		}
		c.Files[i].Src = strings.ReplaceAll(f.Src, sinkMarker, "")
	}
	return c
}

func manifest(name, version string, main string, deps map[string]string) string {
	var b strings.Builder
	b.WriteString("{\n")
	fmt.Fprintf(&b, "  %q: %q,\n", "name", name)
	fmt.Fprintf(&b, "  %q: %q", "version", version)
	if main != "" {
		fmt.Fprintf(&b, ",\n  %q: %q", "main", main)
	}
	if len(deps) > 0 {
		names := make([]string, 0, len(deps))
		for n := range deps {
			names = append(names, n)
		}
		sort.Strings(names)
		b.WriteString(",\n  \"dependencies\": {\n")
		for i, n := range names {
			fmt.Fprintf(&b, "    %q: %q", n, deps[n])
			if i < len(names)-1 {
				b.WriteString(",")
			}
			b.WriteString("\n")
		}
		b.WriteString("  }")
	}
	b.WriteString("\n}\n")
	return b.String()
}

// directTree: root → dep. The dependency's exported function pipes its
// argument into exec; the root package forwards its own API parameter
// across the boundary.
func directTree(vulnerable bool) TreeCase {
	depBody := `const { exec } = require('child_process');
function run(cmd) {
	exec('echo build');
}
module.exports = { run: run };
`
	if vulnerable {
		depBody = `const { exec } = require('child_process');
function run(cmd) {
	exec(cmd); //@sink
}
module.exports = { run: run };
`
	}
	name := "tree-direct-benign"
	if vulnerable {
		name = "tree-direct"
	}
	return finalizeTree(TreeCase{
		Name:       name,
		Vulnerable: vulnerable,
		CWE:        queries.CWECommandInjection,
		Packages:   2,
		Depth:      1,
		Files: []TreeFile{
			{Rel: "package.json", Src: manifest("root-direct", "1.0.0", "", map[string]string{"dep": "^1.2.0"})},
			{Rel: "index.js", Src: `var dep = require('dep');
function deploy(input) {
	dep.run('deploy ' + input);
}
module.exports = deploy;
`},
			{Rel: "node_modules/dep/package.json", Src: manifest("dep", "1.2.3", "index.js", nil)},
			{Rel: "node_modules/dep/index.js", Src: depBody},
		},
	})
}

// chainTree: root → wrap → decor, with the *sink in the root*: the
// tainted value crosses two package boundaries through return values
// (wrap.label returns decor.mark's result), so the finding exists only
// if cross-package summary linking actually grafts return flows.
func chainTree(vulnerable bool) TreeCase {
	rootBody := `const { exec } = require('child_process');
var wrap = require('wrap');
function release(input) {
	wrap.label(input);
	exec('make release');
}
module.exports = release;
`
	if vulnerable {
		rootBody = `const { exec } = require('child_process');
var wrap = require('wrap');
function release(input) {
	var cmd = wrap.label(input);
	exec(cmd); //@sink
}
module.exports = release;
`
	}
	name := "tree-chain-benign"
	if vulnerable {
		name = "tree-chain"
	}
	return finalizeTree(TreeCase{
		Name:       name,
		Vulnerable: vulnerable,
		CWE:        queries.CWECommandInjection,
		Packages:   3,
		Depth:      1,
		Files: []TreeFile{
			{Rel: "package.json", Src: manifest("root-chain", "1.0.0", "", map[string]string{"wrap": "^2.0.0"})},
			{Rel: "index.js", Src: rootBody},
			{Rel: "node_modules/wrap/package.json", Src: manifest("wrap", "2.0.1", "index.js", map[string]string{"decor": "^1.0.0"})},
			{Rel: "node_modules/wrap/index.js", Src: `var decor = require('decor');
function label(s) {
	return decor.mark('v ' + s);
}
module.exports = { label: label };
`},
			{Rel: "node_modules/decor/package.json", Src: manifest("decor", "1.0.4", "index.js", nil)},
			{Rel: "node_modules/decor/index.js", Src: `function mark(m) {
	return 'run ' + m;
}
module.exports = { mark: mark };
`},
		},
	})
}

// diamondTree: root → {left, right} → core. Both intermediates share
// one leaf; the left edge carries taint, the right passes a constant.
func diamondTree(vulnerable bool) TreeCase {
	coreBody := `function render(t) {
	eval('poll()');
}
module.exports = { render: render };
`
	if vulnerable {
		coreBody = `function render(t) {
	eval('fn(' + t + ')'); //@sink
}
module.exports = { render: render };
`
	}
	name := "tree-diamond-benign"
	if vulnerable {
		name = "tree-diamond"
	}
	return finalizeTree(TreeCase{
		Name:       name,
		Vulnerable: vulnerable,
		CWE:        queries.CWECodeInjection,
		Packages:   4,
		Depth:      1,
		Files: []TreeFile{
			{Rel: "package.json", Src: manifest("root-diamond", "1.0.0", "", map[string]string{"left": "^1.0.0", "right": "^1.0.0"})},
			{Rel: "index.js", Src: `var left = require('left');
var right = require('right');
function view(input) {
	left.prep(input);
	right.report();
}
module.exports = view;
`},
			{Rel: "node_modules/left/package.json", Src: manifest("left", "1.1.0", "index.js", map[string]string{"core": "^3.0.0"})},
			{Rel: "node_modules/left/index.js", Src: `var core = require('core');
function prep(v) {
	core.render(v);
}
module.exports = { prep: prep };
`},
			{Rel: "node_modules/right/package.json", Src: manifest("right", "1.2.0", "index.js", map[string]string{"core": "^3.0.0"})},
			{Rel: "node_modules/right/index.js", Src: `var core = require('core');
function report() {
	core.render('0');
}
module.exports = { report: report };
`},
			{Rel: "node_modules/core/package.json", Src: manifest("core", "3.0.2", "index.js", nil)},
			{Rel: "node_modules/core/index.js", Src: coreBody},
		},
	})
}

// shadowedTree: the root depends on helper and on filter v2 (benign);
// helper ships its own nested node_modules/filter v1, which is the
// vulnerable one. helper's require('filter') must resolve to the
// nested copy — innermost wins — so the expected sink lives in
// node_modules/helper/node_modules/filter/index.js, never in the
// top-level filter.
func shadowedTree(vulnerable bool) TreeCase {
	nestedBody := `const { exec } = require('child_process');
function fire(cmd) {
	exec('echo v1');
}
module.exports = { fire: fire };
`
	if vulnerable {
		nestedBody = `const { exec } = require('child_process');
function fire(cmd) {
	exec(cmd); //@sink
}
module.exports = { fire: fire };
`
	}
	name := "tree-shadowed-benign"
	if vulnerable {
		name = "tree-shadowed"
	}
	return finalizeTree(TreeCase{
		Name:       name,
		Vulnerable: vulnerable,
		CWE:        queries.CWECommandInjection,
		Packages:   4,
		Depth:      2,
		Files: []TreeFile{
			{Rel: "package.json", Src: manifest("root-shadowed", "1.0.0", "", map[string]string{"filter": "^2.0.0", "helper": "^1.0.0"})},
			{Rel: "index.js", Src: `var helper = require('helper');
var filter = require('filter');
function go(input) {
	helper.run(input);
	filter.fire(input);
}
module.exports = go;
`},
			{Rel: "node_modules/helper/package.json", Src: manifest("helper", "1.0.0", "index.js", map[string]string{"filter": "^1.0.0"})},
			{Rel: "node_modules/helper/index.js", Src: `var filter = require('filter');
function run(x) {
	filter.fire(x);
}
module.exports = { run: run };
`},
			{Rel: "node_modules/helper/node_modules/filter/package.json", Src: manifest("filter", "1.0.9", "index.js", nil)},
			{Rel: "node_modules/helper/node_modules/filter/index.js", Src: nestedBody},
			{Rel: "node_modules/filter/package.json", Src: manifest("filter", "2.1.0", "index.js", nil)},
			{Rel: "node_modules/filter/index.js", Src: `const { exec } = require('child_process');
function fire(cmd) {
	exec('echo v2');
}
module.exports = { fire: fire };
`},
		},
	})
}

// scopedTree: a scoped package (@org/toolkit) with a non-index main
// and a subpath require (@org/toolkit/lib/extra) holding the sink.
func scopedTree(vulnerable bool) TreeCase {
	extraBody := `var fs = require('fs');
function grab(p, cb) {
	fs.readFile('/srv/fixed', cb);
}
module.exports = { grab: grab };
`
	if vulnerable {
		extraBody = `var fs = require('fs');
function grab(p, cb) {
	fs.readFile('/srv/' + p, cb); //@sink
}
module.exports = { grab: grab };
`
	}
	name := "tree-scoped-benign"
	if vulnerable {
		name = "tree-scoped"
	}
	return finalizeTree(TreeCase{
		Name:       name,
		Vulnerable: vulnerable,
		CWE:        queries.CWEPathTraversal,
		Packages:   2,
		Depth:      1,
		Files: []TreeFile{
			{Rel: "package.json", Src: manifest("root-scoped", "1.0.0", "", map[string]string{"@org/toolkit": "^4.0.0"})},
			{Rel: "index.js", Src: `var kit = require('@org/toolkit');
var extra = require('@org/toolkit/lib/extra');
function fetch(input, cb) {
	kit.hello();
	extra.grab(input, cb);
}
module.exports = fetch;
`},
			{Rel: "node_modules/@org/toolkit/package.json", Src: manifest("@org/toolkit", "4.2.0", "lib/main.js", nil)},
			{Rel: "node_modules/@org/toolkit/lib/main.js", Src: `function hello() {
	return 'kit';
}
module.exports = { hello: hello };
`},
			{Rel: "node_modules/@org/toolkit/lib/extra.js", Src: extraBody},
		},
	})
}

// ---------------------------------------------------------------------------
// Flattening (the differential oracle's reference scan)
// ---------------------------------------------------------------------------

var requireRe = regexp.MustCompile(`require\('([^']+)'\)`)

// FlattenTree rewrites a dependency tree into one flat multi-file
// package: every bare require that the resolver can resolve becomes a
// relative require of the same target file, package.json manifests are
// dropped, and every .js file keeps its Rel and line numbers. Scanning
// the result as an ordinary package is the ground-truth reference for
// the stitched tree scan.
func FlattenTree(c TreeCase) []TreeFile {
	fmap := make(map[string]string, len(c.Files))
	for _, f := range c.Files {
		fmap[f.Rel] = f.Src
	}
	tree := deptree.Build(fmap)
	var out []TreeFile
	for _, f := range c.Files {
		if !strings.HasSuffix(f.Rel, ".js") {
			continue
		}
		owner := tree.Owner(f.Rel)
		src := requireRe.ReplaceAllStringFunc(f.Src, func(m string) string {
			spec := requireRe.FindStringSubmatch(m)[1]
			if strings.HasPrefix(spec, "./") || strings.HasPrefix(spec, "../") {
				return m
			}
			target, err := tree.Resolve(owner, spec)
			if err != nil {
				return m // external (builtin) — stays bare
			}
			return fmt.Sprintf("require('%s')", relativeSpec(f.Rel, target))
		})
		out = append(out, TreeFile{Rel: f.Rel, Src: src})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Rel < out[j].Rel })
	return out
}

// relativeSpec renders target as a relative require specifier as seen
// from the directory of from (both slash-separated Rel paths).
func relativeSpec(from, target string) string {
	dir := path.Dir(from)
	if dir == "." {
		dir = ""
	}
	dsegs := []string{}
	if dir != "" {
		dsegs = strings.Split(dir, "/")
	}
	tsegs := strings.Split(target, "/")
	common := 0
	for common < len(dsegs) && common < len(tsegs)-1 && dsegs[common] == tsegs[common] {
		common++
	}
	rel := strings.Repeat("../", len(dsegs)-common) + strings.Join(tsegs[common:], "/")
	if !strings.HasPrefix(rel, "../") {
		rel = "./" + rel
	}
	return rel
}
