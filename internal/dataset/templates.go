package dataset

import (
	"fmt"
	"strings"

	"repro/internal/queries"
)

// A template renders one vulnerable (or TFP-driving) package. The
// generator varies identifiers; the marker comments carry the ground
// truth. extraSink appends a second exported, exploitable-but-
// unannotated sink (the datasets are incomplete, §5.2).

func (g *gen) render(cwe queries.CWE, class Class, extraSink bool) *Package {
	var src string
	switch cwe {
	case queries.CWECommandInjection:
		src = g.cmdInjection(class)
	case queries.CWECodeInjection:
		src = g.codeInjection(class)
	case queries.CWEPathTraversal:
		src = g.pathTraversal(class)
	case queries.CWEPrototypePollution:
		src = g.pollution(class)
	}
	if extraSink {
		src = addExtraSink(src, cwe, g.fn()+"Extra")
	}
	src = expandLoopMarker(src)
	p := &Package{Name: g.pkgName(cwe, class), Source: src, Class: class, CWE: cwe}
	finalize(p)
	return p
}

// expandLoopMarker substitutes the benign-loop snippet for the marker.
func expandLoopMarker(src string) string {
	return strings.ReplaceAll(src, loopMarker, benignLoopSnippet)
}

// explosivePreamble is a loop+recursion helper that the unrolling
// baseline cannot finish (object explosion + call-site inlining), while
// the MDG fixpoint summarizes it (§5.5).
func explosivePreamble(helper string) string {
	return fmt.Sprintf(`function %[1]s(spec, acc) {
	for (var a in spec) {
		for (var b in spec) {
			acc = %[1]s(spec[a], acc + b);
		}
	}
	return acc;
}
`, helper)
}

// ---------------------------------------------------------------------------
// CWE-78: OS command injection
// ---------------------------------------------------------------------------

func (g *gen) cmdInjection(class Class) string {
	p := g.param()
	name := g.fn()
	switch class {
	case ClassPlain:
		return fmt.Sprintf(`const { exec } = require('child_process');
function %[1]s(%[2]s) {
	//@loop
	var full = 'git clone ' + %[2]s;
	exec(full); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassLoopy:
		return fmt.Sprintf(`const { exec } = require('child_process');
%[4]sfunction %[1]s(%[2]s) {
	var cmd = expand(%[2]s, 'tar -xf ');
	exec(cmd); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker, explosivePreamble("expand"))
	case ClassUnsupported:
		return fmt.Sprintf(`const { exec } = require('child_process');
var runner = {
	prep: function(v) { this.cmd = v; },
	go: function() { exec(this.cmd); %[3]s
	}
};
function %[1]s(%[2]s) {
	runner.prep(%[2]s);
	runner.go();
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassBaselineOnly:
		return fmt.Sprintf(`const { exec } = require('child_process');
function launch(c) {
	exec(c); %[3]s
}
function %[1]s(%[2]s) {
	launch.call(null, %[2]s);
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassSanitized:
		return fmt.Sprintf(`const { exec } = require('child_process');
var ALLOWED = ['status', 'log', 'diff'];
function %[1]s(%[2]s) {
	//@loop
	if (ALLOWED.indexOf(%[2]s) === -1) {
		return null;
	}
	exec('git ' + %[2]s);
}
module.exports = %[1]s;
`, name, p)
	default:
		return benignSource(name, p)
	}
}

// ---------------------------------------------------------------------------
// CWE-94: code injection
// ---------------------------------------------------------------------------

func (g *gen) codeInjection(class Class) string {
	p := g.param()
	name := g.fn()
	switch class {
	case ClassPlain:
		return fmt.Sprintf(`function %[1]s(%[2]s) {
	//@loop
	var body = 'return ' + %[2]s + ';';
	eval(body); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassLoopy:
		return fmt.Sprintf(`%[4]sfunction %[1]s(%[2]s) {
	var code = expand(%[2]s, 'module.run = ');
	eval(code); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker, explosivePreamble("expand"))
	case ClassUnsupported:
		return fmt.Sprintf(`var compiler = {
	stage: function(v) { this.src = v; },
	emit: function() { eval(this.src); %[3]s
	}
};
function %[1]s(%[2]s) {
	compiler.stage(%[2]s);
	compiler.emit();
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassBaselineOnly:
		return fmt.Sprintf(`function compile(src) {
	eval(src); %[3]s
}
function %[1]s(%[2]s) {
	compile.call(null, %[2]s);
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassSanitized:
		return fmt.Sprintf(`function %[1]s(%[2]s) {
	//@loop
	if (typeof %[2]s !== 'number') {
		return 0;
	}
	return eval('2 * ' + %[2]s);
}
module.exports = %[1]s;
`, name, p)
	default:
		return benignSource(name, p)
	}
}

// ---------------------------------------------------------------------------
// CWE-22: path traversal. The baseline only reports these in a
// web-server context (§5.2); NoWeb variants are the recall gap.
// ---------------------------------------------------------------------------

// ClassNoWebContext marks CWE-22 packages without a web server: the
// flow is real but the baseline's context gate suppresses it.
const ClassNoWebContext Class = 100

func (g *gen) pathTraversal(class Class) string {
	p := g.param()
	name := g.fn()
	webPreamble := `var http = require('http');
http.createServer(function(req, res) { res.end('ok'); });
`
	switch class {
	case ClassPlain:
		return fmt.Sprintf(`var fs = require('fs');
%[4]sfunction %[1]s(%[2]s, cb) {
	//@loop
	fs.readFile('/srv/data/' + %[2]s, cb); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker, webPreamble)
	case ClassNoWebContext:
		return fmt.Sprintf(`var fs = require('fs');
function %[1]s(%[2]s, cb) {
	fs.readFile('./files/' + %[2]s, cb); %[3]s
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassUnsupported:
		return fmt.Sprintf(`var fs = require('fs');
var reader = {
	point: function(v) { this.target = v; },
	fetch: function(cb) { fs.readFile(this.target, cb); %[3]s
	}
};
function %[1]s(%[2]s, cb) {
	reader.point(%[2]s);
	reader.fetch(cb);
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassBaselineOnly:
		return fmt.Sprintf(`var fs = require('fs');
var http = require('http');
http.createServer(function(req, res) { res.end('ok'); });
function open(pathname, cb) {
	fs.readFile(pathname, cb); %[3]s
}
function %[1]s(%[2]s, cb) {
	open.call(null, %[2]s, cb);
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	case ClassSanitized:
		// No web context: the baseline reports no CWE-22 TFPs (§5.2).
		return fmt.Sprintf(`var fs = require('fs');
var path = require('path');
function %[1]s(%[2]s, cb) {
	//@loop
	var safe = path.basename(%[2]s + '');
	fs.readFile('/srv/' + safe, cb);
}
module.exports = %[1]s;
`, name, p)
	default:
		return benignSource(name, p)
	}
}

// ---------------------------------------------------------------------------
// CWE-1321: prototype pollution
// ---------------------------------------------------------------------------

func (g *gen) pollution(class Class) string {
	name := g.fn()
	switch class {
	case ClassPlain:
		return fmt.Sprintf(`function %[1]s(obj, key, value) {
	//@loop
	var sub = obj[key];
	sub[key] = value; %[2]s
	return sub;
}
module.exports = %[1]s;
`, name, sinkMarker)
	case ClassLoopy:
		return fmt.Sprintf(`%[3]sfunction %[1]s(obj, key, value) {
	var plan = expand(key, '');
	var sub = obj[key];
	sub[plan] = value; %[2]s
	return sub;
}
module.exports = %[1]s;
`, name, sinkMarker, explosivePreamble("expand"))
	case ClassUnsupported:
		// The pollution happens inside an external helper package whose
		// code is not in the MDG (§5.2's main CWE-1321 FN cause).
		return fmt.Sprintf(`var setDeep = require('set-deep');
function %[1]s(obj, key, value) {
	setDeep(obj, key, value); %[2]s
	return obj;
}
module.exports = %[1]s;
`, name, sinkMarker)
	case ClassBaselineOnly:
		return fmt.Sprintf(`function polluter(obj, key, value) {
	var sub = obj[key];
	sub[key] = value; %[2]s
}
function %[1]s(a, b, c) {
	polluter.call(null, a, b, c);
	return a;
}
module.exports = %[1]s;
`, name, sinkMarker)
	case ClassSanitized:
		// Guarded assignment: the traversals do not evaluate the if
		// condition (§5.2's CWE-1321 TFP cause), so tools report it,
		// but the guard blocks __proto__ and it is not exploitable.
		return fmt.Sprintf(`function %[1]s(obj, key, value) {
	if (key === '__proto__' || key === 'constructor') {
		return obj;
	}
	var sub = obj[key];
	sub[key] = value;
	return sub;
}
module.exports = %[1]s;
`, name)
	default:
		return benignSource(name, "obj")
	}
}

// loopMarker is replaced by benignLoopSnippet in plain/sanitized
// templates (stripped elsewhere).
const loopMarker = "//@loop"

// benignLoopSnippet allocates objects in a nested loop. It is harmless,
// but the baseline's per-evaluation allocation inflates its ODG even on
// packages it completes — the Table 7 object-explosion signal.
const benignLoopSnippet = `var cache = [];
	for (var bi = 0; bi < 5; bi++) {
		for (var bj = 0; bj < 4; bj++) {
			var entry = { row: bi, col: bj, tag: 'c' + bi };
			cache.push(entry);
		}
	}`

// baselineFP builds a package that only the baseline flags: an unknown
// helper call makes its cross-argument contamination taint an unrelated
// options object, whose absent-property read then reaches a sink. The
// MDG keeps the objects separate, so Graph.js stays silent.
func (g *gen) baselineFP(cwe queries.CWE) *Package {
	name := g.fn()
	p := g.param()
	var src string
	if cwe == queries.CWECommandInjection {
		src = fmt.Sprintf(`const { exec } = require('child_process');
function %[1]s(%[2]s) {
	//@loop
	var opts = { cmd: 'git status' };
	record(%[2]s, opts);
	exec(opts.cmd + opts.verbose);
}
module.exports = %[1]s;
`, name, p)
	} else {
		src = fmt.Sprintf(`function %[1]s(%[2]s) {
	//@loop
	var opts = { tpl: 'return 1;' };
	record(%[2]s, opts);
	eval(opts.tpl + opts.suffix);
}
module.exports = %[1]s;
`, name, p)
	}
	src = expandLoopMarker(src)
	pkg := &Package{Name: g.pkgName(cwe, ClassBaselineFPOnly), Source: src,
		Class: ClassBaselineFPOnly, CWE: cwe}
	finalize(pkg)
	return pkg
}

// sanitizedLoopyPollution is a TFP driver that also exhausts the
// baseline (guarded + loop-heavy): Graph.js reports it, the baseline
// times out — reproducing the TFP asymmetry of Table 4 (ODGen has only
// 13 CWE-1321 TFPs despite its cruder filtering).
func (g *gen) sanitizedLoopyPollution() *Package {
	name := g.fn()
	src := fmt.Sprintf(`%[2]sfunction %[1]s(obj, key, value) {
	if (key === '__proto__' || key === 'constructor') {
		return obj;
	}
	var plan = expand(key, '');
	var sub = obj[key];
	sub[plan] = value;
	return sub;
}
module.exports = %[1]s;
`, name, explosivePreamble("expand"))
	p := &Package{
		Name:   g.pkgName(queries.CWEPrototypePollution, ClassSanitized) + "-loopy",
		Source: src, Class: ClassSanitized, CWE: queries.CWEPrototypePollution,
	}
	finalize(p)
	return p
}

// benignSource is a harmless package.
func benignSource(name, p string) string {
	return fmt.Sprintf(`function %[1]s(%[2]s) {
	var out = [];
	for (var i = 0; i < 4; i++) {
		out.push(%[2]s + i);
	}
	return out.join(',');
}
module.exports = %[1]s;
`, name, p)
}

// addExtraSink appends a second exported function with its own
// exploitable (but unannotated) sink of the same class.
func addExtraSink(src string, cwe queries.CWE, fnName string) string {
	var extra string
	switch cwe {
	case queries.CWECommandInjection:
		extra = fmt.Sprintf(`function %[1]s(other) {
	execSync('ping ' + other); %[2]s
}
`, fnName, xsinkMarker)
		if !strings.Contains(src, "execSync") {
			extra = "const { execSync } = require('child_process');\n" + extra
		}
	case queries.CWECodeInjection:
		extra = fmt.Sprintf(`function %[1]s(other) {
	return new Function('x', 'return x + ' + other); %[2]s
}
`, fnName, xsinkMarker)
	case queries.CWEPathTraversal:
		extra = fmt.Sprintf(`function %[1]s(other, cb) {
	fs.createReadStream('/srv/' + other); %[2]s
}
`, fnName, xsinkMarker)
	case queries.CWEPrototypePollution:
		extra = fmt.Sprintf(`function %[1]s(o2, k2, v2) {
	var deep = o2[k2];
	deep[k2] = v2; %[2]s
	return deep;
}
`, fnName, xsinkMarker)
	}
	// Re-export both entry points.
	src = strings.ReplaceAll(src, "module.exports = ", "var mainEntry = ")
	return src + extra + fmt.Sprintf("module.exports = { main: mainEntry, extra: %s };\n", fnName)
}
