// Package dataset generates the annotated evaluation corpora. The
// paper's ground truth (VulcaN and SecBench, Table 3) consists of real
// npm packages with confirmed CVEs; those inputs are not themselves a
// contribution, so this reproduction substitutes synthetic packages
// that exercise the same vulnerability *patterns* with the same
// class distribution, annotated the same way (vulnerability type plus
// sink line).
//
// Every vulnerable package is drawn from one of four behavioural
// classes, chosen to reproduce the per-tool detection profile the
// paper reports (Table 4, Figure 6):
//
//	ClassPlain       — straightforward source→sink flow: both tools
//	                   detect it.
//	ClassLoopy       — the flow passes through loops/recursion: the
//	                   MDG's fixed-point summary handles it, while the
//	                   unrolling baseline times out (§5.2, §5.5).
//	ClassUnsupported — uses features outside the MDG (`this` flows,
//	                   Function.prototype.call, external helper
//	                   packages): Graph.js misses it (§5.2's false-
//	                   negative analysis); the baseline misses it too.
//	ClassBaselineOnly— resolvable only by concrete-style
//	                   interpretation (fn.call(...)): the baseline
//	                   detects it, Graph.js does not (Fig. 6's
//	                   ODGen-only slice).
package dataset

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"repro/internal/queries"
)

// Class labels the behavioural class of a vulnerable package.
type Class int

// Behavioural classes (see package comment).
const (
	ClassPlain Class = iota
	ClassLoopy
	ClassUnsupported
	ClassBaselineOnly
	ClassBenign
	ClassSanitized // looks vulnerable, not exploitable: TFP driver
	// ClassBaselineFPOnly packages are clean for Graph.js but trip the
	// baseline's cross-argument contamination (its TFP driver).
	ClassBaselineFPOnly
)

func (c Class) String() string {
	switch c {
	case ClassPlain:
		return "plain"
	case ClassLoopy:
		return "loopy"
	case ClassUnsupported:
		return "unsupported"
	case ClassBaselineOnly:
		return "baseline-only"
	case ClassBenign:
		return "benign"
	case ClassSanitized:
		return "sanitized"
	case ClassBaselineFPOnly:
		return "baseline-fp"
	case ClassNoWebContext:
		return "noweb"
	}
	if s, ok := exportAliasString(c); ok {
		return s
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// Annotation is one ground-truth vulnerability record: the type and the
// sink line, exactly the information the reference datasets carry.
type Annotation struct {
	CWE  queries.CWE
	Line int
}

// Package is one synthetic npm-style package. Most packages are a
// single main file (as in the majority of the reference-corpus
// packages); re-export templates add sibling modules via Extra.
type Package struct {
	Name   string
	Source string
	// Extra holds additional module files keyed by relative filename
	// (e.g. "lib.js"). When non-empty, Source is the package's
	// index.js and harnesses scan the whole file set as one package.
	Extra map[string]string
	Class Class
	CWE   queries.CWE // primary class under test ("" for benign)
	// Annotated is what the dataset records (matching the reference
	// datasets' single-sink annotations).
	Annotated []Annotation
	// Exploitable additionally includes real but unannotated sinks
	// (the datasets are incomplete, §5.2 — findings matching these are
	// FPs but not *true* FPs).
	Exploitable []Annotation
}

// sinkMarker tags the annotated sink line; xsinkMarker tags exploitable
// but unannotated sinks.
const (
	sinkMarker  = "//@sink"
	xsinkMarker = "//@xsink"
)

// finalize extracts annotations from the marked source (main file
// first, then Extra files in sorted filename order — annotation lines
// are file-local, so multi-file templates must keep their sinks in one
// file to stay unambiguous under the harness's line-based matching).
func finalize(p *Package) {
	p.Source = extractMarks(p, p.Source)
	if len(p.Extra) > 0 {
		rels := make([]string, 0, len(p.Extra))
		for rel := range p.Extra {
			rels = append(rels, rel)
		}
		sort.Strings(rels)
		for _, rel := range rels {
			p.Extra[rel] = extractMarks(p, p.Extra[rel])
		}
	}
}

// extractMarks records src's marker annotations on p and returns src
// with the markers stripped.
func extractMarks(p *Package, src string) string {
	lines := strings.Split(src, "\n")
	for i, ln := range lines {
		if strings.Contains(ln, sinkMarker) {
			a := Annotation{CWE: p.CWE, Line: i + 1}
			p.Annotated = append(p.Annotated, a)
			p.Exploitable = append(p.Exploitable, a)
		} else if strings.Contains(ln, xsinkMarker) {
			p.Exploitable = append(p.Exploitable, Annotation{CWE: p.CWE, Line: i + 1})
		}
	}
	src = strings.ReplaceAll(src, sinkMarker, "")
	return strings.ReplaceAll(src, xsinkMarker, "")
}

// names provides deterministic identifier variety.
var paramNames = []string{"input", "cmd", "payload", "options", "data", "arg", "userValue", "req"}
var fnNames = []string{"run", "process", "handle", "start", "update", "apply", "mount", "build"}

type gen struct {
	r *rand.Rand
	n int
}

func (g *gen) param() string { return paramNames[g.r.Intn(len(paramNames))] }
func (g *gen) fn() string    { return fnNames[g.r.Intn(len(fnNames))] }

func (g *gen) pkgName(cwe queries.CWE, class Class) string {
	g.n++
	return fmt.Sprintf("pkg-%s-%s-%03d", strings.ToLower(string(cwe)), class, g.n)
}

// NewGenForTest exposes the generator for cross-package tests.
func NewGenForTest(seed int64) *gen {
	return &gen{r: rand.New(rand.NewSource(seed))}
}

// RenderForTest renders one package for cross-package tests.
func RenderForTest(g *gen, cwe queries.CWE, class Class) *Package {
	return g.render(cwe, class, false)
}
