package dataset

import (
	"math/rand"

	"repro/internal/queries"
)

// Corpus is a named set of packages with ground truth.
type Corpus struct {
	Name     string
	Packages []*Package
}

// NumVulns returns the number of annotated vulnerabilities.
func (c *Corpus) NumVulns() int {
	n := 0
	for _, p := range c.Packages {
		n += len(p.Annotated)
	}
	return n
}

// classCounts is the behavioural composition of one CWE slice,
// calibrated so that the two scanners reproduce the detection profile
// of Table 4 / Figure 6 (see package comment and DESIGN.md).
type classCounts struct {
	plain, loopy, noWeb, unsupported, baselineOnly int
}

// Combined ground-truth composition (VulcaN + SecBench, Table 3/4
// totals: 166 CWE-22, 169 CWE-78, 54 CWE-94, 214 CWE-1321 = 603).
var groundTruthMix = map[queries.CWE]classCounts{
	queries.CWEPathTraversal:      {plain: 113, noWeb: 48, unsupported: 4, baselineOnly: 1},
	queries.CWECommandInjection:   {plain: 117, loopy: 43, unsupported: 6, baselineOnly: 3},
	queries.CWECodeInjection:      {plain: 23, loopy: 24, unsupported: 6, baselineOnly: 1},
	queries.CWEPrototypePollution: {plain: 32, loopy: 94, unsupported: 78, baselineOnly: 10},
}

// sanitizedMix drives the true-false-positive profile (Table 4 TFP
// columns: Graph.js 30/9/13/85). For CWE-1321 only 13 are simple
// (detected by the baseline too); the rest are loop-heavy, so the
// baseline times out on them.
var sanitizedMix = map[queries.CWE]int{
	queries.CWEPathTraversal:      30,
	queries.CWECommandInjection:   9,
	queries.CWECodeInjection:      13,
	queries.CWEPrototypePollution: 13, // simple; plus 72 loopy ones below
}

const sanitizedLoopyPollutionCount = 72

// baselineFP*Count packages are clean for Graph.js but flagged by the
// baseline's cross-argument contamination: they reproduce the paper's
// TFP relation (Graph.js 137 vs ODGen 174, §5.2).
const (
	baselineFPCmdCount  = 60
	baselineFPCodeCount = 40
)

// extraSinkFraction of plain packages carry a second exploitable but
// unannotated sink (FP-but-not-TFP driver; the datasets are incomplete,
// §5.2).
const extraSinkFraction = 0.70

// vulcanShare is the fraction of each CWE slice attributed to the
// VulcaN-like corpus (from Table 3: e.g. 5/166 for CWE-22, 87/169 for
// CWE-78, 33/54, 94/214).
var vulcanShare = map[queries.CWE]float64{
	queries.CWEPathTraversal:      5.0 / 166.0,
	queries.CWECommandInjection:   87.0 / 169.0,
	queries.CWECodeInjection:      33.0 / 54.0,
	queries.CWEPrototypePollution: 94.0 / 214.0,
}

// GroundTruth generates the combined VulcaN-like + SecBench-like
// corpora with a fixed seed.
func GroundTruth(seed int64) (vulcan, secbench *Corpus) {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	vulcan = &Corpus{Name: "VulcaN"}
	secbench = &Corpus{Name: "SecBench"}

	add := func(p *Package, cwe queries.CWE) {
		if g.r.Float64() < vulcanShare[cwe] {
			vulcan.Packages = append(vulcan.Packages, p)
		} else {
			secbench.Packages = append(secbench.Packages, p)
		}
	}

	emit := func(cwe queries.CWE, class Class, count int) {
		for i := 0; i < count; i++ {
			extra := class == ClassPlain && g.r.Float64() < extraSinkFraction
			add(g.render(cwe, class, extra), cwe)
		}
	}

	for _, cwe := range queries.AllCWEs {
		mix := groundTruthMix[cwe]
		emit(cwe, ClassPlain, mix.plain)
		emit(cwe, ClassLoopy, mix.loopy)
		emit(cwe, ClassNoWebContext, mix.noWeb)
		emit(cwe, ClassUnsupported, mix.unsupported)
		emit(cwe, ClassBaselineOnly, mix.baselineOnly)
	}
	for _, cwe := range queries.AllCWEs {
		for i := 0; i < sanitizedMix[cwe]; i++ {
			add(g.render(cwe, ClassSanitized, false), cwe)
		}
	}
	for i := 0; i < sanitizedLoopyPollutionCount; i++ {
		add(g.sanitizedLoopyPollution(), queries.CWEPrototypePollution)
	}
	for i := 0; i < baselineFPCmdCount; i++ {
		add(g.baselineFP(queries.CWECommandInjection), queries.CWECommandInjection)
	}
	for i := 0; i < baselineFPCodeCount; i++ {
		add(g.baselineFP(queries.CWECodeInjection), queries.CWECodeInjection)
	}
	return vulcan, secbench
}

// CollectedMix describes the wild-corpus composition (§5.3, Table 5).
type CollectedMix struct {
	Benign     int
	RequireDyn int // dynamic require: reported as CWE-94, rarely exploitable
	Sanitized  int // per-CWE spread
	Vulnerable int // real exploitable spread across CWEs
}

// DefaultCollectedMix scales the 32K-package crawl down to a corpus
// that preserves the Table 5 proportions.
func DefaultCollectedMix(n int) CollectedMix {
	return CollectedMix{
		Benign:     n * 60 / 100,
		RequireDyn: n * 14 / 100,
		Sanitized:  n * 14 / 100,
		Vulnerable: n * 12 / 100,
	}
}

// Collected generates the wild-corpus stand-in.
func Collected(seed int64, mix CollectedMix) *Corpus {
	g := &gen{r: rand.New(rand.NewSource(seed))}
	c := &Corpus{Name: "Collected"}
	for i := 0; i < mix.Benign; i++ {
		p := &Package{Name: g.pkgName(queries.CWE("benign"), ClassBenign),
			Source: benignSource(g.fn(), g.param()), Class: ClassBenign}
		c.Packages = append(c.Packages, p)
	}
	for i := 0; i < mix.RequireDyn; i++ {
		c.Packages = append(c.Packages, g.requireDyn())
	}
	cwes := queries.AllCWEs
	for i := 0; i < mix.Sanitized; i++ {
		cwe := cwes[g.r.Intn(len(cwes))]
		c.Packages = append(c.Packages, g.render(cwe, ClassSanitized, false))
	}
	for i := 0; i < mix.Vulnerable; i++ {
		// Weighted towards command injection, like the confirmed wild
		// findings (Table 5: 71 of 101 exploitable are CWE-78).
		var cwe queries.CWE
		switch r := g.r.Float64(); {
		case r < 0.60:
			cwe = queries.CWECommandInjection
		case r < 0.72:
			cwe = queries.CWECodeInjection
		case r < 0.82:
			cwe = queries.CWEPathTraversal
		default:
			cwe = queries.CWEPrototypePollution
		}
		class := ClassPlain
		if cwe == queries.CWEPathTraversal {
			class = ClassNoWebContext
		}
		c.Packages = append(c.Packages, g.render(cwe, class, false))
	}
	return c
}

// requireDyn builds a package with a dynamic require: treated as a
// CWE-94 sink in the wild-scan configuration, but rarely exploitable
// (the paper's dominant wild-corpus FP cause, §5.3).
func (g *gen) requireDyn() *Package {
	name := g.fn()
	src := `function ` + name + `(moduleName) {
	return require('./adapters/' + moduleName);
}
module.exports = ` + name + `;
`
	p := &Package{Name: g.pkgName(queries.CWE("requiredyn"), ClassSanitized), Source: src,
		Class: ClassSanitized, CWE: queries.CWECodeInjection}
	finalize(p)
	return p
}
