package dataset

import (
	"embed"
	"path"
	"sort"
	"strings"
)

//go:embed testdata/pathological/*.js
var pathologicalFS embed.FS

// Pathological returns the crash corpus: inputs engineered to stress a
// scanner's fault containment rather than its precision. Each package
// is a known failure mode — parser recursion depth (deep_nesting),
// lexer-level front-end failure (unterminated_template), unbounded
// loop unrolling (unroll_bomb), graph-size blowup (huge_object),
// cyclic prototype chains (proto_cycle), deep property chains
// (member_chain), long call chains (call_chain), and alias explosions
// (alias_storm). None of the packages is annotated: the corpus asserts
// termination and failure classification, not findings.
func Pathological() *Corpus {
	entries, err := pathologicalFS.ReadDir("testdata/pathological")
	if err != nil {
		panic("dataset: embedded pathological corpus missing: " + err.Error()) //lint:allow nakedpanic -- embedded corpus missing means a corrupt build; fail loudly
	}
	c := &Corpus{Name: "pathological"}
	for _, e := range entries {
		data, rerr := pathologicalFS.ReadFile(path.Join("testdata/pathological", e.Name()))
		if rerr != nil {
			panic("dataset: read embedded " + e.Name() + ": " + rerr.Error()) //lint:allow nakedpanic -- embedded corpus missing means a corrupt build; fail loudly
		}
		c.Packages = append(c.Packages, &Package{
			Name:   strings.TrimSuffix(e.Name(), ".js"),
			Source: string(data),
		})
	}
	sort.Slice(c.Packages, func(i, j int) bool { return c.Packages[i].Name < c.Packages[j].Name })
	return c
}
