package dataset

import (
	"math/rand"
	"testing"

	"repro/internal/odgen"
	"repro/internal/queries"
	"repro/internal/scanner"
)

func newGen(seed int64) *gen { return &gen{r: rand.New(rand.NewSource(seed))} }

func graphjsFinds(t *testing.T, p *Package) bool {
	t.Helper()
	rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
	if rep.Err != nil {
		t.Fatalf("%s: graphjs error: %v\n%s", p.Name, rep.Err, p.Source)
	}
	return matchesAnnotation(rep.Findings, p)
}

func odgenFinds(t *testing.T, p *Package) (found, timedOut bool) {
	t.Helper()
	rep := odgen.Scan(p.Source, p.Name, odgen.DefaultOptions())
	if rep.Err != nil {
		t.Fatalf("%s: odgen error: %v\n%s", p.Name, rep.Err, p.Source)
	}
	// Lenient (type-only) matching, as the paper grants ODGen.
	for _, f := range rep.Findings {
		for _, a := range p.Annotated {
			if f.CWE == a.CWE {
				return true, rep.TimedOut
			}
		}
	}
	return false, rep.TimedOut
}

func matchesAnnotation(fs []queries.Finding, p *Package) bool {
	for _, f := range fs {
		for _, a := range p.Annotated {
			if f.CWE == a.CWE && f.SinkLine == a.Line {
				return true
			}
		}
	}
	return false
}

// TestTemplateCalibration verifies that each (CWE, class) template has
// the detection profile the corpus design relies on:
//
//	class          Graph.js  baseline
//	plain          yes       yes
//	loopy          yes       no (timeout)
//	no-web (22)    yes       no (fast miss)
//	unsupported    no        no
//	baseline-only  no        yes
func TestTemplateCalibration(t *testing.T) {
	type expect struct {
		class    Class
		graphjs  bool
		baseline bool
		timeout  bool
	}
	cases := map[queries.CWE][]expect{
		queries.CWECommandInjection: {
			{ClassPlain, true, true, false},
			{ClassLoopy, true, false, true},
			{ClassUnsupported, false, false, false},
			{ClassBaselineOnly, false, true, false},
		},
		queries.CWECodeInjection: {
			{ClassPlain, true, true, false},
			{ClassLoopy, true, false, true},
			{ClassUnsupported, false, false, false},
			{ClassBaselineOnly, false, true, false},
		},
		queries.CWEPathTraversal: {
			{ClassPlain, true, true, false},
			{ClassNoWebContext, true, false, false},
			{ClassUnsupported, false, false, false},
			{ClassBaselineOnly, false, true, false},
		},
		queries.CWEPrototypePollution: {
			{ClassPlain, true, true, false},
			{ClassLoopy, true, false, true},
			{ClassUnsupported, false, false, false},
			{ClassBaselineOnly, false, true, false},
		},
	}
	for cwe, exps := range cases {
		for _, e := range exps {
			for seed := int64(0); seed < 3; seed++ {
				g := newGen(seed)
				p := g.render(cwe, e.class, false)
				if got := graphjsFinds(t, p); got != e.graphjs {
					t.Errorf("%s/%s seed %d: graphjs found=%v want %v\n%s",
						cwe, e.class, seed, got, e.graphjs, p.Source)
				}
				found, timedOut := odgenFinds(t, p)
				if found != e.baseline {
					t.Errorf("%s/%s seed %d: baseline found=%v want %v\n%s",
						cwe, e.class, seed, found, e.baseline, p.Source)
				}
				if timedOut != e.timeout {
					t.Errorf("%s/%s seed %d: baseline timeout=%v want %v",
						cwe, e.class, seed, timedOut, e.timeout)
				}
			}
		}
	}
}

// TestSanitizedTemplatesAreTFPDrivers: Graph.js must report sanitized
// packages (they become TFPs); annotations stay empty.
func TestSanitizedTemplatesAreTFPDrivers(t *testing.T) {
	for _, cwe := range queries.AllCWEs {
		g := newGen(7)
		p := g.render(cwe, ClassSanitized, false)
		if len(p.Annotated) != 0 || len(p.Exploitable) != 0 {
			t.Fatalf("%s sanitized must have no annotations", cwe)
		}
		rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
		found := false
		for _, f := range rep.Findings {
			if f.CWE == cwe {
				found = true
			}
		}
		if !found {
			t.Errorf("%s sanitized: graphjs must report a (true false positive) finding\n%s", cwe, p.Source)
		}
	}
}

func TestSanitizedCWE22InvisibleToBaseline(t *testing.T) {
	g := newGen(3)
	p := g.render(queries.CWEPathTraversal, ClassSanitized, false)
	rep := odgen.Scan(p.Source, p.Name, odgen.DefaultOptions())
	for _, f := range rep.Findings {
		if f.CWE == queries.CWEPathTraversal {
			t.Fatalf("baseline must not report CWE-22 without web context: %v", f)
		}
	}
}

func TestSanitizedLoopyPollution(t *testing.T) {
	g := newGen(5)
	p := g.sanitizedLoopyPollution()
	rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
	found := false
	for _, f := range rep.Findings {
		if f.CWE == queries.CWEPrototypePollution {
			found = true
		}
	}
	if !found {
		t.Fatalf("graphjs must flag the loopy sanitized pollution\n%s", p.Source)
	}
	orep := odgen.Scan(p.Source, p.Name, odgen.DefaultOptions())
	if !orep.TimedOut {
		t.Fatal("baseline must time out on the loopy sanitized pollution")
	}
}

func TestExtraSinkDetected(t *testing.T) {
	g := newGen(11)
	p := g.render(queries.CWECommandInjection, ClassPlain, true)
	if len(p.Exploitable) != 2 || len(p.Annotated) != 1 {
		t.Fatalf("annotations: ann=%v exp=%v", p.Annotated, p.Exploitable)
	}
	rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
	// Both sinks must be reported: the annotated one (TP) and the
	// unannotated exploitable one (FP but not TFP).
	lines := map[int]bool{}
	for _, f := range rep.Findings {
		if f.CWE == queries.CWECommandInjection {
			lines[f.SinkLine] = true
		}
	}
	for _, a := range p.Exploitable {
		if !lines[a.Line] {
			t.Fatalf("sink at line %d not reported; findings %v\n%s", a.Line, rep.Findings, p.Source)
		}
	}
}

func TestGroundTruthComposition(t *testing.T) {
	vul, sec := GroundTruth(42)
	totalVulns := vul.NumVulns() + sec.NumVulns()
	if totalVulns != 603 {
		t.Fatalf("combined annotated vulns = %d, want 603 (Table 3)", totalVulns)
	}
	// Per-CWE totals match Table 4's Total column.
	perCWE := map[queries.CWE]int{}
	for _, c := range []*Corpus{vul, sec} {
		for _, p := range c.Packages {
			for _, a := range p.Annotated {
				perCWE[a.CWE]++
			}
		}
	}
	want := map[queries.CWE]int{
		queries.CWEPathTraversal:      166,
		queries.CWECommandInjection:   169,
		queries.CWECodeInjection:      54,
		queries.CWEPrototypePollution: 214,
	}
	for cwe, w := range want {
		if perCWE[cwe] != w {
			t.Errorf("%s: %d annotated, want %d", cwe, perCWE[cwe], w)
		}
	}
}

func TestGroundTruthDeterministic(t *testing.T) {
	v1, s1 := GroundTruth(42)
	v2, s2 := GroundTruth(42)
	if len(v1.Packages) != len(v2.Packages) || len(s1.Packages) != len(s2.Packages) {
		t.Fatal("same seed must give same corpus")
	}
	for i := range v1.Packages {
		if v1.Packages[i].Source != v2.Packages[i].Source {
			t.Fatal("same seed must give identical sources")
		}
	}
}

func TestCollectedComposition(t *testing.T) {
	c := Collected(1, DefaultCollectedMix(100))
	if len(c.Packages) < 95 {
		t.Fatalf("packages = %d", len(c.Packages))
	}
	benign := 0
	for _, p := range c.Packages {
		if p.Class == ClassBenign {
			benign++
		}
	}
	if benign != 60 {
		t.Fatalf("benign = %d, want 60", benign)
	}
}

func TestAllPackagesParse(t *testing.T) {
	vul, sec := GroundTruth(42)
	for _, c := range []*Corpus{vul, sec} {
		for _, p := range c.Packages {
			rep := scanner.ScanSource(p.Source, p.Name, scanner.Options{})
			if rep.Err != nil {
				t.Fatalf("%s does not parse: %v\n%s", p.Name, rep.Err, p.Source)
			}
		}
	}
}

func TestAnnotationLinesPointAtSinks(t *testing.T) {
	g := newGen(9)
	p := g.render(queries.CWECommandInjection, ClassPlain, false)
	if len(p.Annotated) != 1 {
		t.Fatalf("annotations = %v", p.Annotated)
	}
	lines := splitLines(p.Source)
	sinkLine := lines[p.Annotated[0].Line-1]
	if !containsAny(sinkLine, "exec(") {
		t.Fatalf("annotated line %d is %q", p.Annotated[0].Line, sinkLine)
	}
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	return append(out, s[start:])
}

func containsAny(s string, subs ...string) bool {
	for _, sub := range subs {
		if len(sub) > 0 && len(s) >= len(sub) {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
		}
	}
	return false
}
