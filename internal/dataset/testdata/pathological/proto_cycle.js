// Self-referential prototype chains: naive chain-walking diverges on
// these objects unless cycles are detected.
function attach(obj, payload) {
	var a = {};
	var b = {};
	a.next = b;
	b.next = a;
	a.__proto__ = b;
	b.__proto__ = a;
	a.self = a;
	b.self = b;
	obj[payload] = a;
	return a.next.next.self;
}
module.exports = attach;
