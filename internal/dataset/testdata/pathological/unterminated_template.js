var cp = require('child_process');
function run(cmd) { cp.exec(cmd); }
var s = `interpolation never closes ${run(
