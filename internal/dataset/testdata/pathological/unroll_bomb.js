const { exec } = require('child_process');

// The sink fires before the explosive control flow below, so a scanner
// that times out mid-unroll should still have recorded the finding.
function run(cmd) {
	exec('sh -c ' + cmd);
	var spec = { a: { b: { c: { d: 1 } } } };
	var acc = '';
	function expand(s, acc) {
		for (var a in s) {
			for (var b in s) {
				acc = expand(s[a], acc + b);
			}
		}
		return acc;
	}
	while (acc.length < 100) {
		while (acc.length < 50) {
			acc = expand(spec, acc);
		}
		acc = acc + expand(spec, acc);
	}
	return acc;
}
module.exports = run;
