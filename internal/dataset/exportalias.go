package dataset

import (
	"fmt"

	"repro/internal/queries"
)

// Export-alias shapes exercise the export-graph reachability gate: the
// CWE under test is always command injection, but what varies is how
// the package's API surface is declared — whether the vulnerable (or
// innocuous) function is actually reachable from it, and whether the
// gate's alias resolution follows the declaration.
const (
	// ClassDeadShadow packages define a shadow copy of the exported
	// function that nothing exports or calls: the gate must prune it
	// while keeping the live flow.
	ClassDeadShadow Class = 200 + iota
	// ClassAliasedExport packages attach the API through a local alias
	// of module.exports (var api = module.exports; api.m = fn).
	ClassAliasedExport
	// ClassReexportChain packages re-export a sibling module
	// (module.exports = require('./lib')) whose object literal holds
	// the actual entry points.
	ClassReexportChain
)

// exportAliasString covers the export-alias classes for Class.String.
func exportAliasString(c Class) (string, bool) {
	switch c {
	case ClassDeadShadow:
		return "dead-shadow", true
	case ClassAliasedExport:
		return "aliased-export", true
	case ClassReexportChain:
		return "reexport-chain", true
	}
	return "", false
}

// ExportAlias generates the export-alias corpus: each shape in a
// vulnerable and a benign variant, twice for identifier variety. The
// corpus is separate from the ground-truth mixes (GroundTruth output
// is unchanged by its existence).
func ExportAlias(seed int64) *Corpus {
	g := NewGenForTest(seed)
	c := &Corpus{Name: "ExportAlias"}
	for round := 0; round < 2; round++ {
		for _, class := range []Class{ClassDeadShadow, ClassAliasedExport, ClassReexportChain} {
			c.Packages = append(c.Packages,
				g.exportAlias(class, true),
				g.exportAlias(class, false))
		}
	}
	return c
}

// ExportAliasForTest renders one shape for cross-package tests.
func ExportAliasForTest(g *gen, class Class, vulnerable bool) *Package {
	return g.exportAlias(class, vulnerable)
}

func (g *gen) exportAlias(class Class, vulnerable bool) *Package {
	name := g.fn()
	p := g.param()
	pkg := &Package{Class: class}
	if vulnerable {
		pkg.CWE = queries.CWECommandInjection
	}
	switch class {
	case ClassDeadShadow:
		pkg.Source = deadShadowSource(name, p, vulnerable)
	case ClassAliasedExport:
		pkg.Source = aliasedExportSource(name, p, vulnerable)
	case ClassReexportChain:
		pkg.Source = "module.exports = require('./lib');\n"
		pkg.Extra = map[string]string{"lib.js": reexportLibSource(name, p, vulnerable)}
	}
	suffix := "benign"
	if vulnerable {
		suffix = "vuln"
	}
	pkg.Name = fmt.Sprintf("pkg-export-%s-%s-%03d", class, suffix, g.n)
	g.n++
	finalize(pkg)
	return pkg
}

// deadShadowSource exports one function and leaves an identically
// shaped shadow copy dead: never exported, never called. The shadow is
// what the gate must prune; in the vulnerable variant only the live
// sink is annotated.
func deadShadowSource(name, p string, vulnerable bool) string {
	if vulnerable {
		return fmt.Sprintf(`const { exec } = require('child_process');
function %[1]s(%[2]s) {
	exec('git clone ' + %[2]s); %[3]s
}
function %[1]sShadow(%[2]s) {
	exec('git fetch ' + %[2]s);
}
module.exports = %[1]s;
`, name, p, sinkMarker)
	}
	return fmt.Sprintf(`const { exec } = require('child_process');
function %[1]s(%[2]s) {
	return %[2]s + '!';
}
function %[1]sShadow() {
	exec('git fetch origin');
}
module.exports = %[1]s;
`, name, p)
}

// aliasedExportSource attaches the API through a local alias of
// module.exports, the aliasing pattern the export graph must resolve.
func aliasedExportSource(name, p string, vulnerable bool) string {
	if vulnerable {
		return fmt.Sprintf(`const { exec } = require('child_process');
var api = module.exports;
api.%[1]s = function(%[2]s) {
	exec('tar -xf ' + %[2]s); %[3]s
};
`, name, p, sinkMarker)
	}
	return fmt.Sprintf(`const { exec } = require('child_process');
var api = module.exports;
api.%[1]s = function(%[2]s) {
	return %[2]s.length;
};
api.ping = function() {
	exec('true');
};
`, name, p)
}

// reexportLibSource is the sibling module behind a
// module.exports = require('./lib') chain.
func reexportLibSource(name, p string, vulnerable bool) string {
	if vulnerable {
		return fmt.Sprintf(`const { exec } = require('child_process');
function %[1]s(%[2]s) {
	exec('sh -c ' + %[2]s); %[3]s
}
module.exports = { %[1]s: %[1]s };
`, name, p, sinkMarker)
	}
	return fmt.Sprintf(`function %[1]s(%[2]s) {
	return [%[2]s].join('/');
}
module.exports = { %[1]s: %[1]s };
`, name, p)
}
