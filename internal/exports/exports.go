// Package exports statically resolves a package's API surface over
// Core JavaScript: which function definitions are reachable from
// module.exports / exports, under local aliasing (`var api =
// module.exports`), object-literal methods, property re-assignment,
// and require re-export chains — plus an alias-aware call graph and
// per-line ownership, so findings can carry call-path provenance
// (entry export → hop chain → sink function).
//
// The pass is a flow-insensitive abstract interpretation whose value
// domain mirrors the MDG builder's store: every value-producing site
// (object literal, call result, binary operation, lazily materialized
// property or global) is one abstract object, and variables map to
// sets of functions and abstract objects. Export evidence follows
// exactly the flows analysis.markExported can see — property values
// and aliases, never dependency edges — so the gate's fallback
// decision agrees with the analyzer's attack model: a function
// returned from a helper call or stored through `this` is invisible
// to both, and a package with no property-reachable exported function
// falls back to treating every function as a root.
//
// All function identifiers are uniformly file-qualified as
// "file:name" ("file:" is the file's top-level scope), for single-
// and multi-file packages alike.
package exports

import (
	"path"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/core"
)

// maxPasses caps the fixpoint. The domain is finite and unions are
// monotone, so convergence is typically reached in two or three
// passes; hitting the cap flips the result to the fallback attack
// model (soundness over precision).
const maxPasses = 8

// FuncInfo describes one function definition.
type FuncInfo struct {
	Def   *core.FuncDef
	File  string
	QName string // "file:name"
	Owner string // enclosing function qname, or "file:" for top level
}

// Export is one resolved entry of the package's API surface.
type Export struct {
	Name string // API-surface name: "module.exports", "exports.run", "exports[*]"
	File string // defining module
	Func string // function qname
}

// Result is the resolved export graph of one package.
type Result struct {
	// Exports lists the API surface in deterministic order.
	Exports []Export
	// Funcs indexes every function definition by qualified name;
	// Order preserves definition order.
	Funcs map[string]*FuncInfo
	Order []string
	// Calls is the alias-aware call graph (callee lists sorted).
	// Callers include the per-file top-level pseudo-nodes "file:".
	Calls map[string][]string
	// Exported marks functions property-reachable from an exports
	// object; Escaped marks functions passed as arguments to callees
	// the pass cannot resolve (the analyzer's callback heuristic can
	// invoke those with tainted data).
	Exported map[string]bool
	Escaped  map[string]bool
	// Fallback records that no export evidence was found (or the
	// fixpoint was cut short), so every function must be treated as a
	// root — the analyzer's script attack model.
	Fallback bool
	// Converged is false when the fixpoint hit maxPasses or the budget;
	// Fallback is forced in that case.
	Converged bool

	entryName map[string]string // exported func -> canonical API name
	ownerOf   map[lineKey]string

	// Call-path provenance tree: every reachable function's BFS parent
	// and the entry label of its root.
	parent    map[string]string
	rootEntry map[string]string
	reachable map[string]bool
}

type lineKey struct {
	file string
	line int
}

// Reachable reports whether the function qname is reachable from the
// package's roots (exported ∪ escaped ∪ top-level, or everything
// under Fallback).
func (r *Result) Reachable(qname string) bool { return r.reachable[qname] }

// OwnerOf returns the qualified name of the function whose shallow
// body contains file:line ("file:" for top-level code, "" when the
// line is unknown to the pass).
func (r *Result) OwnerOf(file string, line int) string {
	return r.ownerOf[lineKey{file, line}]
}

// EntryName returns the canonical API name of an exported function
// ("" when the function is not part of the export surface).
func (r *Result) EntryName(qname string) string { return r.entryName[qname] }

// PathTo resolves call-path provenance for a program point: the entry
// label (an export API name, or one of the markers "(module)",
// "(callback)", "(fallback)") and the call-hop chain of function
// qnames from the entry function to the function owning file:line.
// ok is false when the point is unknown or unreachable.
func (r *Result) PathTo(file string, line int) (entry string, hops []string, ok bool) {
	owner := r.OwnerOf(file, line)
	if owner == "" {
		return "", nil, false
	}
	if strings.HasSuffix(owner, ":") {
		return "(module)", []string{owner}, true
	}
	if !r.reachable[owner] {
		return "", nil, false
	}
	for cur := owner; cur != ""; cur = r.parent[cur] {
		hops = append(hops, cur)
	}
	for i, j := 0, len(hops)-1; i < j; i, j = i+1, j-1 {
		hops[i], hops[j] = hops[j], hops[i]
	}
	root := hops[0]
	if strings.HasSuffix(root, ":") {
		// Rooted at top-level code (a function invoked during module
		// load).
		return "(module)", hops, true
	}
	return r.rootEntry[root], hops, true
}

// ---------------------------------------------------------------------------
// Abstract domain
// ---------------------------------------------------------------------------

// A value is a function (Fn != "") or an abstract object (index into
// interp.objs).
type value struct {
	Fn  string
	Obj int
}

type valSet map[value]struct{}

func (s valSet) add(v value) bool {
	if _, ok := s[v]; ok {
		return false
	}
	s[v] = struct{}{}
	return true
}

// object is one abstract allocation site: named properties plus a
// star bucket for dynamic writes and builtin merges.
type object struct {
	props map[string]valSet
	dyn   valSet
}

type interp struct {
	bud     *budget.Budget
	progs   []*core.Program
	modules map[string]bool

	objs    []*object
	site    map[string]int    // stable alloc key -> object id
	env     map[string]valSet // "file:var" -> values
	funcs   map[string]*FuncInfo
	order   []string
	calls   map[string]map[string]bool
	escaped map[string]bool

	moduleObj  map[string]int
	exportsObj map[string]int

	ownerOf map[lineKey]string

	changed bool
	aborted bool
}

// Analyze runs the export-graph pass over the normalized programs of
// one package. b may be nil; when set, the fixpoint consumes
// cooperative steps and aborts (to the fallback attack model) once
// the budget trips.
func Analyze(progs []*core.Program, b *budget.Budget) *Result {
	ip := &interp{
		bud:        b,
		progs:      progs,
		modules:    map[string]bool{},
		site:       map[string]int{},
		env:        map[string]valSet{},
		funcs:      map[string]*FuncInfo{},
		calls:      map[string]map[string]bool{},
		escaped:    map[string]bool{},
		moduleObj:  map[string]int{},
		exportsObj: map[string]int{},
		ownerOf:    map[lineKey]string{},
	}
	// The coarse per-file/per-pass consults use b.Err — observing a
	// budget failure recorded elsewhere without charging checkpoints —
	// so the gate does not shift the deterministic fault-injection
	// ordinals of the phases around it. Fine-grained accounting (and
	// deadline checking) happens per statement in ip.step.
	for _, p := range progs {
		ip.modules[p.FileName] = true
		if b.Err() != nil {
			ip.aborted = true
		}
	}
	for _, p := range progs {
		if b.Err() != nil {
			ip.aborted = true
			break
		}
		ip.collect(p)
	}
	converged := false
	for pass := 0; pass < maxPasses && !ip.aborted; pass++ {
		if b.Err() != nil {
			ip.aborted = true
			break
		}
		ip.changed = false
		//lint:allow budgetloop -- walkStmts consults the budget per statement via ip.step
		for _, p := range ip.progs {
			ip.walkStmts(p.FileName, p.FileName+":", p.Body)
		}
		if !ip.changed {
			converged = true
			break
		}
	}
	if ip.aborted {
		converged = false
	}
	return ip.finish(converged)
}

// step charges one cooperative budget step; once the budget trips the
// whole pass aborts and the caller degrades to the fallback model.
func (ip *interp) step() bool {
	if err := ip.bud.Step(); err != nil {
		ip.aborted = true
		return false
	}
	return true
}

func (ip *interp) newObject(key string) int {
	if id, ok := ip.site[key]; ok {
		return id
	}
	ip.objs = append(ip.objs, &object{props: map[string]valSet{}, dyn: valSet{}})
	id := len(ip.objs) - 1
	ip.site[key] = id
	ip.changed = true
	return id
}

// collect pre-binds the per-file module/exports objects and hoists
// every function definition into the environment (including the base
// name of normalizer-renamed duplicates, which shadow by source name).
func (ip *interp) collect(p *core.Program) {
	file := p.FileName
	mo := ip.newObject("module@" + file)
	eo := ip.newObject("exports@" + file)
	ip.moduleObj[file] = mo
	ip.exportsObj[file] = eo
	ip.propSet(mo, "exports").add(value{Obj: eo})
	ip.envSet(file, "module").add(value{Obj: mo})
	ip.envSet(file, "exports").add(value{Obj: eo})

	var walk func(stmts []core.Stmt, owner string)
	walk = func(stmts []core.Stmt, owner string) {
		for _, s := range stmts {
			switch st := s.(type) {
			case *core.FuncDef:
				q := file + ":" + st.Name
				if _, dup := ip.funcs[q]; !dup {
					ip.funcs[q] = &FuncInfo{Def: st, File: file, QName: q, Owner: owner}
					ip.order = append(ip.order, q)
				}
				fv := value{Fn: q}
				ip.envSet(file, st.Name).add(fv)
				if base := baseFnName(st.Name); base != st.Name {
					ip.envSet(file, base).add(fv)
				}
				for i, pn := range st.Params {
					ip.envSet(file, pn).add(value{Obj: ip.newObject("param@" + q + "#" + itoa(i))})
				}
				walk(st.Body, q)
			case *core.If:
				walk(st.Then, owner)
				walk(st.Else, owner)
			case *core.While:
				walk(st.Body, owner)
			case *core.ForIn:
				walk(st.Body, owner)
			}
		}
	}
	walk(p.Body, file+":")
}

// baseFnName strips the normalizer's `$N` duplicate suffix.
func baseFnName(name string) string {
	i := strings.LastIndex(name, "$")
	if i <= 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	n := len(b)
	for i > 0 {
		n--
		b[n] = byte('0' + i%10)
		i /= 10
	}
	return string(b[n:])
}

func (ip *interp) envSet(file, name string) valSet {
	k := file + ":" + name
	s := ip.env[k]
	if s == nil {
		s = valSet{}
		ip.env[k] = s
	}
	return s
}

func (ip *interp) propSet(obj int, prop string) valSet {
	o := ip.objs[obj]
	s := o.props[prop]
	if s == nil {
		s = valSet{}
		o.props[prop] = s
	}
	return s
}

func (ip *interp) envAdd(file, name string, vs valSet) {
	if len(vs) == 0 {
		return
	}
	dst := ip.envSet(file, name)
	for v := range vs {
		if dst.add(v) {
			ip.changed = true
		}
	}
}

// eval resolves an expression to its abstract values. Unbound
// variables are lazily materialized as per-file global objects, the
// same way the analyzer's store lazily allocates nodes for them.
func (ip *interp) eval(file string, e core.Expr) valSet {
	v, ok := e.(core.Var)
	if !ok {
		return nil
	}
	k := file + ":" + v.Name
	if s, ok := ip.env[k]; ok && len(s) > 0 {
		return s
	}
	s := ip.envSet(file, v.Name)
	if s.add(value{Obj: ip.newObject("global@" + k)}) {
		ip.changed = true
	}
	return s
}

// funcObj returns the property object of a function value (functions
// are objects too: `module.exports = f; f.helper = g`).
func (ip *interp) funcObj(qname string) int {
	return ip.newObject("fnprops@" + qname)
}

// lookup models `x := obj.p` over one abstract value, including the
// analyzer's lazy property materialization.
func (ip *interp) lookup(v value, prop string, out valSet) {
	obj := v.Obj
	if v.Fn != "" {
		obj = ip.funcObj(v.Fn)
	}
	ps := ip.propSet(obj, prop)
	if len(ps) == 0 {
		ps.add(value{Obj: ip.newObject("prop@" + itoa(obj) + "." + prop)})
	}
	for pv := range ps {
		out.add(pv)
	}
	for pv := range ip.objs[obj].dyn {
		out.add(pv)
	}
}

// allProps collects every named and dynamic property value of v.
func (ip *interp) allProps(v value, out valSet) {
	obj := v.Obj
	if v.Fn != "" {
		obj = ip.funcObj(v.Fn)
	}
	for _, ps := range ip.objs[obj].props {
		for pv := range ps {
			out.add(pv)
		}
	}
	for pv := range ip.objs[obj].dyn {
		out.add(pv)
	}
}

func (ip *interp) storeProp(targets valSet, prop string, vs valSet) {
	for t := range targets {
		obj := t.Obj
		if t.Fn != "" {
			obj = ip.funcObj(t.Fn)
		}
		dst := ip.propSet(obj, prop)
		for v := range vs {
			if dst.add(v) {
				ip.changed = true
			}
		}
	}
}

func (ip *interp) storeDyn(targets valSet, vs valSet) {
	for t := range targets {
		obj := t.Obj
		if t.Fn != "" {
			obj = ip.funcObj(t.Fn)
		}
		dst := ip.objs[obj].dyn
		for v := range vs {
			if dst.add(v) {
				ip.changed = true
			}
		}
	}
}

func (ip *interp) addCall(owner, callee string) {
	m := ip.calls[owner]
	if m == nil {
		m = map[string]bool{}
		ip.calls[owner] = m
	}
	if !m[callee] {
		m[callee] = true
		ip.changed = true
	}
}

func (ip *interp) walkStmts(file, owner string, stmts []core.Stmt) {
	for _, s := range stmts {
		if !ip.step() {
			return
		}
		if ln := s.Line(); ln > 0 {
			ip.ownerOf[lineKey{file, ln}] = owner
		}
		switch st := s.(type) {
		case *core.Assign:
			ip.envAdd(file, st.X, ip.eval(file, st.E))
		case *core.BinOp:
			ip.envSet(file, st.X).add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		case *core.UnOp:
			ip.envSet(file, st.X).add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		case *core.NewObj:
			ip.envSet(file, st.X).add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		case *core.Lookup:
			out := valSet{}
			for v := range ip.eval(file, st.Obj) {
				ip.lookup(v, st.Prop, out)
			}
			ip.envAdd(file, st.X, out)
		case *core.DynLookup:
			out := valSet{}
			for v := range ip.eval(file, st.Obj) {
				ip.allProps(v, out)
			}
			out.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
			ip.envAdd(file, st.X, out)
		case *core.Update:
			ip.storeProp(ip.eval(file, st.Obj), st.Prop, ip.eval(file, st.Val))
		case *core.DynUpdate:
			ip.storeDyn(ip.eval(file, st.Obj), ip.eval(file, st.Val))
		case *core.Call:
			ip.call(file, owner, st)
		case *core.FuncDef:
			ip.walkStmts(file, file+":"+st.Name, st.Body)
		case *core.If:
			ip.walkStmts(file, owner, st.Then)
			ip.walkStmts(file, owner, st.Else)
		case *core.While:
			ip.walkStmts(file, owner, st.Body)
		case *core.ForIn:
			// Loop keys are strings/fresh values; the analyzer wires
			// them with dependency edges only, which neither export
			// marking nor call resolution can see.
			ip.envSet(file, st.Key).add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
			ip.walkStmts(file, owner, st.Body)
		case *core.Return:
			// Return values reach callers through dependency edges
			// only (the call result is the call node itself), so they
			// carry no export evidence and no call resolution.
		}
		if ip.aborted {
			return
		}
	}
}

func siteKey(file string, idx int) string { return "site@" + file + "#" + itoa(idx) }

// call models one call site, mirroring the analyzer's order: require
// resolution, builtin models, then summary linking with the callback
// escape for unresolved callees.
func (ip *interp) call(file, owner string, st *core.Call) {
	resultObj := func() valSet {
		s := valSet{}
		s.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		return s
	}

	if st.CalleeName == "require" && len(st.Args) == 1 && !st.IsNew {
		if lit, ok := st.Args[0].(core.Lit); ok && lit.Kind == core.LitString {
			if target, ok := ip.resolveModule(file, lit.Value); ok {
				out := valSet{}
				for v := range ip.propSet(ip.moduleObj[target], "exports") {
					out.add(v)
				}
				out.add(value{Obj: ip.exportsObj[target]})
				ip.envAdd(file, st.X, out)
				return
			}
		}
		// External module: an opaque object (lazy props track member
		// reads like require('fs').readFile).
		ip.envAdd(file, st.X, resultObj())
		return
	}

	if ip.builtin(file, st) {
		return
	}

	callees := ip.eval(file, st.Callee)
	resolved := false
	for v := range callees {
		if v.Fn != "" {
			resolved = true
			ip.addCall(owner, v.Fn)
		}
	}
	if !resolved {
		// The analyzer's callback heuristic: function-valued arguments
		// of an unresolvable callee may be invoked with tainted data.
		for _, arg := range st.Args {
			for v := range ip.eval(file, arg) {
				if v.Fn != "" && !ip.escaped[v.Fn] {
					ip.escaped[v.Fn] = true
					ip.changed = true
				}
			}
		}
	}
	ip.envAdd(file, st.X, resultObj())
}

// builtin mirrors analysis.builtinCall's models: property-merging
// builtins move values between objects without escaping arguments.
func (ip *interp) builtin(file string, st *core.Call) bool {
	name := st.CalleeName
	switch {
	case name == "Object.assign":
		if len(st.Args) == 0 {
			return false
		}
		targets := ip.eval(file, st.Args[0])
		merged := valSet{}
		for _, src := range st.Args[1:] {
			for v := range ip.eval(file, src) {
				ip.allProps(v, merged)
			}
		}
		ip.storeDyn(targets, merged)
		ip.envAdd(file, st.X, targets)
		return true
	case name == "JSON.parse":
		out := valSet{}
		out.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		ip.envAdd(file, st.X, out)
		return true
	case name == "Object.keys" || name == "Object.values" || name == "Object.entries":
		res := valSet{}
		res.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		vals := valSet{}
		for _, arg := range st.Args {
			for v := range ip.eval(file, arg) {
				ip.allProps(v, vals)
			}
		}
		ip.storeDyn(res, vals)
		ip.envAdd(file, st.X, res)
		return true
	case strings.HasSuffix(name, ".push") || strings.HasSuffix(name, ".unshift"):
		recv := valSet{}
		if st.This != nil {
			recv = ip.eval(file, st.This)
		}
		elems := valSet{}
		for _, arg := range st.Args {
			for v := range ip.eval(file, arg) {
				elems.add(v)
			}
		}
		ip.storeDyn(recv, elems)
		out := valSet{}
		out.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		ip.envAdd(file, st.X, out)
		return true
	case strings.HasSuffix(name, ".concat"):
		res := valSet{}
		res.add(value{Obj: ip.newObject(siteKey(file, st.Idx))})
		elems := valSet{}
		if st.This != nil {
			for v := range ip.eval(file, st.This) {
				ip.allProps(v, elems)
			}
		}
		for _, arg := range st.Args {
			for v := range ip.eval(file, arg) {
				elems.add(v)
				ip.allProps(v, elems)
			}
		}
		ip.storeDyn(res, elems)
		ip.envAdd(file, st.X, res)
		return true
	}
	return false
}

// resolveModule mirrors analysis.resolveModule: relative specifiers
// against the requiring file's directory, then a basename fallback.
func (ip *interp) resolveModule(fromFile, spec string) (string, bool) {
	if !strings.HasPrefix(spec, "./") && !strings.HasPrefix(spec, "../") {
		return "", false
	}
	target := path.Clean(path.Join(path.Dir(fromFile), spec))
	for _, c := range []string{target, target + ".js", path.Join(target, "index.js")} {
		if ip.modules[c] {
			return c, true
		}
	}
	base := path.Base(target)
	files := make([]string, 0, len(ip.modules))
	for f := range ip.modules {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		fb := strings.TrimSuffix(path.Base(f), ".js")
		if fb == base || fb == strings.TrimSuffix(base, ".js") {
			return f, true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Export closure, reachability and provenance
// ---------------------------------------------------------------------------

func (ip *interp) finish(converged bool) *Result {
	r := &Result{
		Funcs:     ip.funcs,
		Order:     ip.order,
		Calls:     map[string][]string{},
		Exported:  map[string]bool{},
		Escaped:   map[string]bool{},
		Converged: converged,
		entryName: map[string]string{},
		ownerOf:   ip.ownerOf,
		parent:    map[string]string{},
		rootEntry: map[string]string{},
		reachable: map[string]bool{},
	}
	for q := range ip.escaped {
		r.Escaped[q] = true
	}
	for owner, callees := range ip.calls {
		out := make([]string, 0, len(callees))
		for c := range callees {
			out = append(out, c)
		}
		sort.Strings(out)
		r.Calls[owner] = out
	}

	if converged {
		ip.exportClosure(r)
	}
	r.Fallback = !converged || len(r.Exported) == 0

	ip.solveReach(r)
	return r
}

// exportClosure walks the export surface of every module: the values
// of module.exports plus the original exports object, through object
// properties (named and dynamic), stopping at functions — exactly the
// flows analysis.markExported traverses.
func (ip *interp) exportClosure(r *Result) {
	type item struct {
		v    value
		name string
		file string
	}
	var queue []item
	push := func(v value, name, file string) {
		queue = append(queue, item{v, name, file})
	}
	for _, p := range ip.progs {
		file := p.FileName
		direct := ip.propSet(ip.moduleObj[file], "exports")
		for _, v := range sortedVals(direct) {
			if v.Obj == ip.exportsObj[file] {
				continue // seeded alias; named "exports" below
			}
			if v.Fn != "" {
				push(v, "module.exports", file)
			} else {
				push(v, "exports", file)
			}
		}
		push(value{Obj: ip.exportsObj[file]}, "exports", file)
	}

	seenObj := map[int]bool{}
	const maxDepth = 6 // matches the pollution query's version bound; API surfaces are shallow
	for len(queue) > 0 {
		if !ip.step() {
			return
		}
		it := queue[0]
		queue = queue[1:]
		if it.v.Fn != "" {
			q := it.v.Fn
			if !r.Exported[q] {
				r.Exported[q] = true
				r.entryName[q] = it.name
				r.Exports = append(r.Exports, Export{Name: it.name, File: it.file, Func: q})
			}
			continue
		}
		if seenObj[it.v.Obj] || strings.Count(it.name, ".") > maxDepth {
			continue
		}
		seenObj[it.v.Obj] = true
		o := ip.objs[it.v.Obj]
		props := make([]string, 0, len(o.props))
		for p := range o.props {
			props = append(props, p)
		}
		sort.Strings(props)
		for _, p := range props {
			for _, v := range sortedVals(o.props[p]) {
				push(v, it.name+"."+p, it.file)
			}
		}
		for _, v := range sortedVals(o.dyn) {
			push(v, it.name+"[*]", it.file)
		}
	}
	sort.Slice(r.Exports, func(i, j int) bool {
		a, b := r.Exports[i], r.Exports[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Name != b.Name {
			return a.Name < b.Name
		}
		return a.Func < b.Func
	})
}

func sortedVals(s valSet) []value {
	out := make([]value, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Obj < out[j].Obj
	})
	return out
}

// solveReach runs the multi-source BFS over the call graph that
// yields both the reachable set and the provenance tree. Root layers
// in priority order — exported functions, module top-level code,
// escaped callbacks, then (under Fallback) every remaining function —
// so each function's provenance prefers an export-rooted path.
func (ip *interp) solveReach(r *Result) {
	var queue []string
	enqueue := func(q, entry string) {
		if r.reachable[q] {
			return
		}
		r.reachable[q] = true
		r.rootEntry[q] = entry
		queue = append(queue, q)
	}

	var exported []string
	for q := range r.Exported {
		exported = append(exported, q)
	}
	sort.Strings(exported)
	for _, q := range exported {
		enqueue(q, r.entryName[q])
	}
	for _, p := range ip.progs {
		enqueue(p.FileName+":", "(module)")
	}
	var escaped []string
	for q := range r.Escaped {
		escaped = append(escaped, q)
	}
	sort.Strings(escaped)
	for _, q := range escaped {
		enqueue(q, "(callback)")
	}
	if r.Fallback {
		for _, q := range r.Order {
			enqueue(q, "(fallback)")
		}
	}

	for len(queue) > 0 {
		if !ip.step() {
			// Budget tripped mid-closure: degrade to keep-everything so
			// the caller never prunes on a half-computed graph.
			r.Fallback = true
			for _, q := range r.Order {
				enqueue(q, "(fallback)")
				queue = nil
			}
			for _, q := range r.Order {
				r.reachable[q] = true
			}
			return
		}
		cur := queue[0]
		queue = queue[1:]
		for _, callee := range r.Calls[cur] {
			if !r.reachable[callee] {
				r.reachable[callee] = true
				r.parent[callee] = cur
				r.rootEntry[callee] = r.rootEntry[cur]
				queue = append(queue, callee)
			}
		}
	}
}
