package exports

import (
	"sort"
	"testing"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/js/normalize"
)

func progs(t *testing.T, srcs map[string]string) []*core.Program {
	t.Helper()
	names := make([]string, 0, len(srcs))
	for n := range srcs {
		names = append(names, n)
	}
	sort.Strings(names)
	var out []*core.Program
	for _, name := range names {
		p, err := normalize.File(srcs[name], name)
		if err != nil {
			t.Fatalf("normalize %s: %v", name, err)
		}
		out = append(out, p)
	}
	return out
}

func analyzeOne(t *testing.T, src string) *Result {
	t.Helper()
	return Analyze(progs(t, map[string]string{"index.js": src}), nil)
}

func exportedFuncs(r *Result) []string {
	var out []string
	for q := range r.Exported {
		out = append(out, q)
	}
	sort.Strings(out)
	return out
}

func TestDirectFunctionExport(t *testing.T) {
	r := analyzeOne(t, `
function run(x) { return x; }
function dead(y) { return y; }
module.exports = run;
`)
	if r.Fallback {
		t.Fatalf("export evidence present, got fallback: %+v", r)
	}
	if got := exportedFuncs(r); len(got) != 1 || got[0] != "index.js:run" {
		t.Fatalf("exported = %v", got)
	}
	if r.EntryName("index.js:run") != "module.exports" {
		t.Errorf("entry name = %q", r.EntryName("index.js:run"))
	}
	if r.Reachable("index.js:dead") {
		t.Error("dead must not be reachable")
	}
}

func TestObjectLiteralMethods(t *testing.T) {
	r := analyzeOne(t, `
function go(x) { return x; }
function prep(y) { return y; }
module.exports = { go: go, prep: prep };
`)
	if r.Fallback {
		t.Fatal("fallback despite object-literal export")
	}
	want := map[string]string{"index.js:go": "exports.go", "index.js:prep": "exports.prep"}
	for q, name := range want {
		if !r.Exported[q] {
			t.Errorf("%s not exported", q)
		}
		if r.EntryName(q) != name {
			t.Errorf("entry(%s) = %q, want %q", q, r.EntryName(q), name)
		}
	}
}

func TestAliasedModuleExports(t *testing.T) {
	r := analyzeOne(t, `
function run(x) { return x; }
function dead(x) { return x; }
var api = module.exports;
api.run = run;
`)
	if r.Fallback {
		t.Fatal("fallback despite aliased export")
	}
	if !r.Exported["index.js:run"] {
		t.Fatal("aliased property assignment must export run")
	}
	if r.Exported["index.js:dead"] || r.Reachable("index.js:dead") {
		t.Error("dead must stay dead under aliasing")
	}
}

func TestExportsEqualsModuleExportsChain(t *testing.T) {
	r := analyzeOne(t, `
function a(x) { return x; }
function b(x) { return x; }
exports = module.exports = { a: a };
exports.b = b;
`)
	if r.Fallback {
		t.Fatal("fallback despite chained export assignment")
	}
	if !r.Exported["index.js:a"] || !r.Exported["index.js:b"] {
		t.Fatalf("chained exports missed: %v", exportedFuncs(r))
	}
}

func TestPropertyReassignmentKeepsBoth(t *testing.T) {
	// Flow-insensitive weak updates keep both the shadowed and the
	// final binding — an over-approximation of the export surface,
	// never an under-approximation.
	r := analyzeOne(t, `
function old(x) { return x; }
function neu(x) { return x; }
module.exports.run = old;
module.exports.run = neu;
`)
	if !r.Exported["index.js:old"] || !r.Exported["index.js:neu"] {
		t.Fatalf("re-assignment must keep both bindings: %v", exportedFuncs(r))
	}
}

func TestFunctionPropertyNotTraversed(t *testing.T) {
	// analysis.markExported stops at function nodes and never walks
	// their properties, so a function hung off an exported function is
	// NOT export evidence — its params never become sources and pruning
	// it is sound. The pass must agree, not over-approximate.
	r := analyzeOne(t, `
function main(x) { return x; }
function helper(y) { return y; }
main.helper = helper;
module.exports = main;
`)
	if !r.Exported["index.js:main"] {
		t.Fatalf("main missed: %v", exportedFuncs(r))
	}
	if r.Exported["index.js:helper"] {
		t.Error("helper is invisible to markExported and must not be export evidence")
	}
	if r.Reachable("index.js:helper") {
		t.Error("uncalled function property must be prunable")
	}
}

func TestRequireReexportChain(t *testing.T) {
	r := Analyze(progs(t, map[string]string{
		"index.js": `
var inner = require('./lib');
module.exports = { run: inner.go };
`,
		"lib.js": `
function go(x) { return x; }
function hidden(x) { return x; }
module.exports = { go: go };
`,
	}), nil)
	if r.Fallback {
		t.Fatal("fallback despite re-export chain")
	}
	if !r.Exported["lib.js:go"] {
		t.Fatalf("re-exported function missed: %v", exportedFuncs(r))
	}
	if r.Reachable("lib.js:hidden") {
		t.Error("non-re-exported sibling must stay dead")
	}
}

func TestCallGraphAndProvenance(t *testing.T) {
	r := analyzeOne(t, `
function sinkish(c) { return c; }
function mid(y) { sinkish(y); }
function entry(x) { mid(x); }
module.exports = { fire: entry };
`)
	if got := r.Calls["index.js:entry"]; len(got) != 1 || got[0] != "index.js:mid" {
		t.Fatalf("calls(entry) = %v", got)
	}
	// sinkish's body line: find via OwnerOf over the known source.
	entry, hops, ok := r.PathTo("index.js", 2)
	if !ok {
		t.Fatal("no provenance for sinkish body line")
	}
	if entry != "exports.fire" {
		t.Errorf("entry = %q", entry)
	}
	want := []string{"index.js:entry", "index.js:mid", "index.js:sinkish"}
	if len(hops) != len(want) {
		t.Fatalf("hops = %v, want %v", hops, want)
	}
	for i := range want {
		if hops[i] != want[i] {
			t.Fatalf("hops = %v, want %v", hops, want)
		}
	}
}

func TestTopLevelProvenance(t *testing.T) {
	r := analyzeOne(t, `
var x = 1;
module.exports = {};
`)
	entry, hops, ok := r.PathTo("index.js", 2)
	if !ok || entry != "(module)" {
		t.Fatalf("top-level provenance = %q %v ok=%v", entry, hops, ok)
	}
	if len(hops) != 1 || hops[0] != "index.js:" {
		t.Fatalf("hops = %v", hops)
	}
}

func TestCallbackEscape(t *testing.T) {
	r := analyzeOne(t, `
function cb(data) { return data; }
dispatch(1, cb);
module.exports = {};
`)
	if !r.Escaped["index.js:cb"] {
		t.Fatal("callback passed to unresolved callee must escape")
	}
	if !r.Reachable("index.js:cb") {
		t.Fatal("escaped callback must be reachable")
	}
	entry, _, ok := r.PathTo("index.js", 2)
	if !ok || entry != "(callback)" {
		t.Errorf("callback provenance = %q ok=%v", entry, ok)
	}
}

func TestFallbackWhenNoEvidence(t *testing.T) {
	r := analyzeOne(t, `
function a(x) { return x; }
function h(c) { return c; }
`)
	if !r.Fallback {
		t.Fatal("no export evidence must force fallback")
	}
	for _, q := range []string{"index.js:a", "index.js:h"} {
		if !r.Reachable(q) {
			t.Errorf("%s must be reachable under fallback", q)
		}
	}
	entry, _, ok := r.PathTo("index.js", 2)
	if !ok || entry != "(fallback)" {
		t.Errorf("fallback provenance = %q ok=%v", entry, ok)
	}
}

func TestNonFunctionExportFallsBack(t *testing.T) {
	r := analyzeOne(t, `module.exports = 1;`)
	if !r.Fallback {
		t.Fatal("value-only export carries no function evidence; fallback expected")
	}
}

func TestObjectAssignMerge(t *testing.T) {
	r := analyzeOne(t, `
function run(x) { return x; }
function dead(x) { return x; }
var impl = { run: run };
module.exports = Object.assign({}, impl);
`)
	if r.Fallback {
		t.Fatal("Object.assign merge must produce export evidence")
	}
	if !r.Exported["index.js:run"] {
		t.Fatalf("Object.assign-merged method missed: %v", exportedFuncs(r))
	}
	if r.Exported["index.js:dead"] {
		t.Error("dead must not ride along the merge")
	}
}

func TestReturnValueIsNotEvidence(t *testing.T) {
	// The MDG models a call result as the call node; returned objects
	// flow only through dependency edges, which export marking does not
	// traverse. The pass must agree and fall back.
	r := analyzeOne(t, `
function make() { return { run: inner }; }
function inner(x) { return x; }
module.exports = make();
`)
	if !r.Fallback {
		t.Fatal("factory-returned exports are invisible to the analyzer; fallback required")
	}
}

func TestBudgetAbortForcesFallback(t *testing.T) {
	b := budget.New(budget.Limits{MaxSteps: 3})
	r := Analyze(progs(t, map[string]string{"index.js": `
function a(x) { return x; }
function b(x) { return x; }
function c(x) { return x; }
module.exports = a;
`}), b)
	if !r.Fallback {
		t.Fatal("budget abort must degrade to the fallback attack model")
	}
	for _, q := range []string{"index.js:a", "index.js:b", "index.js:c"} {
		if !r.Reachable(q) {
			t.Errorf("%s must stay reachable after budget abort", q)
		}
	}
}

func TestDeterministicExports(t *testing.T) {
	src := map[string]string{
		"index.js": `
var lib = require('./lib');
function local(x) { return x; }
module.exports = { local: local, go: lib.go, run: lib.run };
`,
		"lib.js": `
function go(x) { return x; }
function run(y) { return y; }
module.exports = { go: go, run: run };
`,
	}
	first := Analyze(progs(t, src), nil)
	for i := 0; i < 5; i++ {
		again := Analyze(progs(t, src), nil)
		if len(again.Exports) != len(first.Exports) {
			t.Fatalf("export count varies: %d vs %d", len(again.Exports), len(first.Exports))
		}
		for j := range first.Exports {
			if first.Exports[j] != again.Exports[j] {
				t.Fatalf("export order varies at %d: %+v vs %+v", j, first.Exports[j], again.Exports[j])
			}
		}
	}
}
