package normalize

import (
	"testing"

	"repro/internal/core"
)

func TestGettersSettersLowering(t *testing.T) {
	p := mustFile(t, `
var config = {
	get url() { return this._url; },
	set url(v) { this._url = v; },
	plain: 1
};
`)
	fns := core.Functions(p.Body)
	if len(fns) != 2 {
		t.Fatalf("accessor functions = %d:\n%s", len(fns), core.Print(p.Body))
	}
}

func TestNestedDestructuring(t *testing.T) {
	p := mustFile(t, "var {a: {b, c}, d: [e]} = src;")
	lks := find[*core.Lookup](p)
	// a, b, c, d, 0 lookups.
	if len(lks) != 5 {
		t.Fatalf("lookups = %d:\n%s", len(lks), core.Print(p.Body))
	}
}

func TestParamPatternExpansion(t *testing.T) {
	p := mustFile(t, "function f({cmd, cwd}, [first]) { return cmd; }")
	fns := core.Functions(p.Body)
	if len(fns) != 1 || len(fns[0].Params) != 2 {
		t.Fatalf("params: %+v", fns[0])
	}
	var names []string
	core.Walk(fns[0].Body, func(s core.Stmt) bool {
		if lk, ok := s.(*core.Lookup); ok {
			names = append(names, lk.X)
		}
		return true
	})
	want := map[string]bool{"cmd": true, "cwd": true, "first": true}
	for _, n := range names {
		delete(want, n)
	}
	if len(want) != 0 {
		t.Fatalf("unexpanded pattern bindings: %v\n%s", want, core.Print(fns[0].Body))
	}
}

func TestDoWhileRunsBodyFirst(t *testing.T) {
	p := mustFile(t, "do { f(); } while (c);")
	// Body appears both before the while and inside it.
	calls := find[*core.Call](p)
	if len(calls) < 2 {
		t.Fatalf("do-while body should be duplicated:\n%s", core.Print(p.Body))
	}
}

func TestOptionalChainLowering(t *testing.T) {
	p := mustFile(t, "var v = a?.b?.c;")
	lks := find[*core.Lookup](p)
	if len(lks) != 2 {
		t.Fatalf("lookups:\n%s", core.Print(p.Body))
	}
}

func TestSequenceExprLowering(t *testing.T) {
	p := mustFile(t, "var x = (f(), g(), h());")
	calls := find[*core.Call](p)
	if len(calls) != 3 {
		t.Fatalf("calls = %d", len(calls))
	}
	// x is bound to the last call's result.
	var lastAssign *core.Assign
	core.Walk(p.Body, func(s core.Stmt) bool {
		if a, ok := s.(*core.Assign); ok && a.X == "x" {
			lastAssign = a
		}
		return true
	})
	if lastAssign == nil {
		t.Fatalf("missing assignment:\n%s", core.Print(p.Body))
	}
}

func TestTaggedTemplateLowering(t *testing.T) {
	p := mustFile(t, "var r = sql`SELECT ${x}`;")
	calls := find[*core.Call](p)
	if len(calls) != 1 || calls[0].CalleeName != "sql" {
		t.Fatalf("calls: %v\n%s", calls, core.Print(p.Body))
	}
}

func TestDeleteAndVoid(t *testing.T) {
	p := mustFile(t, "delete o.p; var u = void f();")
	// delete evaluates the object; void evaluates the call.
	if len(find[*core.Call](p)) != 1 {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
}

func TestNewTargetTolerated(t *testing.T) {
	mustFile(t, "function F() { if (new.target) { return 1; } }")
}

func TestExportFromClause(t *testing.T) {
	// `export {x} from 'mod'` — re-export: must parse and normalize.
	mustFile(t, "export { a, b } from './other';")
}
