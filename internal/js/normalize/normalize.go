// Package normalize lowers the JavaScript AST into the Core JavaScript
// IR of the paper (§3.2). Compound expressions are flattened into
// sequences of simple statements over compiler temporaries, control
// flow is reduced to if/while/for-in, and every value-producing
// statement receives a unique index used as its abstract allocation
// site.
package normalize

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// Normalize lowers a parsed program to Core JavaScript.
func Normalize(prog *ast.Program, fileName string) *core.Program {
	return NormalizeBudget(prog, fileName, nil)
}

// NormalizeBudget is Normalize under a fault-containment budget: one
// step per statement lowered. The normalizer has no error returns, so
// a budget trip aborts by panicking with the budget's classified
// error; budget.Guard (which wraps the scanner's front-end phase)
// converts exactly this panic back into that error instead of
// recording a crash.
func NormalizeBudget(prog *ast.Program, fileName string, b *budget.Budget) *core.Program {
	n := &normalizer{bud: b}
	var body []core.Stmt
	//lint:allow budgetloop -- n.stmt consults the budget per statement
	for _, s := range prog.Body {
		n.stmt(s, &body)
	}
	return &core.Program{FileName: fileName, Body: body, MaxIndex: n.idx + 1}
}

// File parses and normalizes src in one step.
func File(src, fileName string) (*core.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	return Normalize(prog, fileName), nil
}

type normalizer struct {
	idx   int // statement index counter
	tmp   int // temporary counter
	anon  int // anonymous function counter
	names map[string]int
	bud   *budget.Budget
}

func (n *normalizer) nextIdx() int {
	n.idx++
	return n.idx
}

func (n *normalizer) fresh() string {
	n.tmp++
	return fmt.Sprintf("$t%d", n.tmp)
}

func (n *normalizer) freshFn(hint string) string {
	if hint == "" {
		n.anon++
		return fmt.Sprintf("__anon%d", n.anon)
	}
	if n.names == nil {
		n.names = make(map[string]int)
	}
	n.names[hint]++
	if c := n.names[hint]; c > 1 {
		return fmt.Sprintf("%s$%d", hint, c)
	}
	return hint
}

func (n *normalizer) meta(node ast.Node) core.Meta {
	p := node.Pos()
	return core.Meta{Idx: n.nextIdx(), Ln: p.Line, Col: p.Column}
}

// metaNoIdx is for statements that compute no new value.
func (n *normalizer) metaNoIdx(node ast.Node) core.Meta {
	p := node.Pos()
	return core.Meta{Ln: p.Line, Col: p.Column}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (n *normalizer) stmt(s ast.Stmt, out *[]core.Stmt) {
	if err := n.bud.Step(); err != nil {
		panic(err) //lint:allow nakedpanic -- unwound by budget.Guard, classification intact
	}
	switch st := s.(type) {
	case *ast.VarDecl:
		for _, d := range st.Decls {
			n.declarator(st, d, out)
		}
	case *ast.ExprStmt:
		n.expr(st.X, out)
	case *ast.BlockStmt:
		for _, inner := range st.Body {
			n.stmt(inner, out)
		}
	case *ast.EmptyStmt:
	case *ast.IfStmt:
		cond := n.expr(st.Cond, out)
		iff := &core.If{Meta: n.metaNoIdx(st), Cond: cond}
		n.stmt(st.Then, &iff.Then)
		if st.Else != nil {
			n.stmt(st.Else, &iff.Else)
		}
		*out = append(*out, iff)
	case *ast.WhileStmt:
		n.whileLoop(st, st.Cond, nil, st.Body, out)
	case *ast.DoWhileStmt:
		// Body runs at least once, then behaves like while.
		n.stmt(st.Body, out)
		n.whileLoop(st, st.Cond, nil, st.Body, out)
	case *ast.ForStmt:
		if st.Init != nil {
			n.stmt(st.Init, out)
		}
		cond := st.Cond
		if cond == nil {
			cond = &ast.Literal{Base: ast.Base{P: st.Pos()}, Kind: ast.LitBool, Value: "true"}
		}
		n.whileLoop(st, cond, st.Post, st.Body, out)
	case *ast.ForInStmt:
		n.forIn(st, out)
	case *ast.ReturnStmt:
		r := &core.Return{Meta: n.metaNoIdx(st)}
		if st.X != nil {
			r.E = n.expr(st.X, out)
		}
		*out = append(*out, r)
	case *ast.BreakStmt:
		*out = append(*out, &core.Break{Meta: n.metaNoIdx(st)})
	case *ast.ContinueStmt:
		*out = append(*out, &core.Continue{Meta: n.metaNoIdx(st)})
	case *ast.FuncDecl:
		name := st.Fn.Name
		fd := n.funcDef(st.Fn, name)
		*out = append(*out, fd)
		if fd.Name != name {
			// Shadowed duplicate: rebind the original name.
			*out = append(*out, &core.Assign{Meta: n.metaNoIdx(st), X: name, E: core.Var{Name: fd.Name}})
		}
	case *ast.ThrowStmt:
		n.expr(st.X, out) // evaluate for its dependencies
	case *ast.TryStmt:
		// Over-approximate: all three blocks execute in sequence.
		for _, inner := range st.Block.Body {
			n.stmt(inner, out)
		}
		if st.CatchBlock != nil {
			if st.CatchParam != "" {
				*out = append(*out, &core.NewObj{Meta: n.meta(st), X: st.CatchParam})
			}
			for _, inner := range st.CatchBlock.Body {
				n.stmt(inner, out)
			}
		}
		if st.FinallyBody != nil {
			for _, inner := range st.FinallyBody.Body {
				n.stmt(inner, out)
			}
		}
	case *ast.SwitchStmt:
		// Desugar to a nested if/else chain (default last). Trailing
		// `break` statements exit the switch and are dropped;
		// fallthrough between cases is not modelled (the abstract
		// analysis joins all branches regardless).
		disc := n.expr(st.Disc, out)
		var defaultBody []ast.Stmt
		type armT struct {
			cond core.Expr
			body []ast.Stmt
		}
		var arms []armT
		for _, c := range st.Cases {
			if c.Test == nil {
				defaultBody = c.Body
				continue
			}
			condVar := n.fresh()
			test := n.expr(c.Test, out)
			*out = append(*out, &core.BinOp{Meta: n.meta(st), X: condVar, Op: "===", L: disc, R: test})
			arms = append(arms, armT{cond: core.Var{Name: condVar}, body: c.Body})
		}
		emitBody := func(body []ast.Stmt, dst *[]core.Stmt) {
			for _, inner := range body {
				if _, isBreak := inner.(*ast.BreakStmt); isBreak {
					continue // exits the switch
				}
				n.stmt(inner, dst)
			}
		}
		var build func(i int, dst *[]core.Stmt)
		build = func(i int, dst *[]core.Stmt) {
			if i == len(arms) {
				emitBody(defaultBody, dst)
				return
			}
			iff := &core.If{Meta: n.metaNoIdx(st), Cond: arms[i].cond}
			emitBody(arms[i].body, &iff.Then)
			build(i+1, &iff.Else)
			*dst = append(*dst, iff)
		}
		build(0, out)
	case *ast.LabeledStmt:
		n.stmt(st.Body, out)
	case *ast.ClassDecl:
		n.classDecl(st, out)
	default:
		// Unknown statements are skipped; the analysis stays sound for
		// the constructs it models.
	}
}

// whileLoop lowers a loop with condition cond, optional post expression
// and body into Core's While. Condition-evaluation statements execute
// once before the loop and once at the end of every iteration so the
// fixpoint sees their effects.
func (n *normalizer) whileLoop(at ast.Node, cond ast.Expr, post ast.Expr, body ast.Stmt, out *[]core.Stmt) {
	var pre []core.Stmt
	cv := n.expr(cond, &pre)
	*out = append(*out, pre...)
	w := &core.While{Meta: n.metaNoIdx(at), Cond: cv}
	n.stmt(body, &w.Body)
	if post != nil {
		n.expr(post, &w.Body)
	}
	// Re-evaluate the condition at the end of the body, updating the
	// variable the loop tests.
	var again []core.Stmt
	av := n.expr(cond, &again)
	w.Body = append(w.Body, again...)
	if cvVar, ok := cv.(core.Var); ok {
		if avVar, isVar := av.(core.Var); !isVar || avVar.Name != cvVar.Name {
			w.Body = append(w.Body, &core.Assign{Meta: n.metaNoIdx(at), X: cvVar.Name, E: av})
		}
	}
	*out = append(*out, w)
}

func (n *normalizer) forIn(st *ast.ForInStmt, out *[]core.Stmt) {
	obj := n.expr(st.Right, out)
	key := ""
	switch l := st.Left.(type) {
	case *ast.Ident:
		key = l.Name
	default:
		key = n.fresh()
	}
	f := &core.ForIn{Meta: n.meta(st), Key: key, Obj: obj, Of: st.Of}
	// Destructuring loop variable: expand from the synthetic key.
	if pat, ok := st.Left.(*ast.ObjectLit); ok {
		n.objectPattern(pat, core.Var{Name: key}, &f.Body)
	}
	if pat, ok := st.Left.(*ast.ArrayLit); ok {
		n.arrayPattern(pat, core.Var{Name: key}, &f.Body)
	}
	n.stmt(st.Body, &f.Body)
	*out = append(*out, f)
}

func (n *normalizer) declarator(vd *ast.VarDecl, d ast.Declarator, out *[]core.Stmt) {
	switch {
	case d.Name != "":
		if d.Init != nil {
			n.assignTo(d.Name, d.Init, vd, out)
		} else {
			*out = append(*out, &core.Assign{
				Meta: n.metaNoIdx(vd), X: d.Name,
				E: core.Lit{Kind: core.LitUndefined, Value: "undefined"},
			})
		}
	case d.Pattern != nil && d.Init != nil:
		src := n.expr(d.Init, out)
		if pat, ok := d.Pattern.(*ast.ObjectLit); ok {
			n.objectPattern(pat, src, out)
		}
		if pat, ok := d.Pattern.(*ast.ArrayLit); ok {
			n.arrayPattern(pat, src, out)
		}
	}
}

// objectPattern expands `{a, b: c, ...}` reading from src.
func (n *normalizer) objectPattern(pat *ast.ObjectLit, src core.Expr, out *[]core.Stmt) {
	for _, p := range pat.Props {
		if p.Spread {
			// {...rest}: rest depends on src.
			if id, ok := p.Value.(*ast.Ident); ok {
				*out = append(*out, &core.Assign{Meta: n.metaNoIdx(pat), X: id.Name, E: src})
			}
			continue
		}
		keyName := ""
		switch k := p.Key.(type) {
		case *ast.Ident:
			keyName = k.Name
		case *ast.Literal:
			keyName = k.Value
		}
		switch v := p.Value.(type) {
		case *ast.Ident:
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: v.Name, Obj: src, Prop: keyName})
		case *ast.ObjectLit: // nested pattern
			tmp := n.fresh()
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: tmp, Obj: src, Prop: keyName})
			n.objectPattern(v, core.Var{Name: tmp}, out)
		case *ast.ArrayLit:
			tmp := n.fresh()
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: tmp, Obj: src, Prop: keyName})
			n.arrayPattern(v, core.Var{Name: tmp}, out)
		case *ast.AssignExpr: // default value: {a = 1}
			if id, ok := v.Target.(*ast.Ident); ok {
				*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: id.Name, Obj: src, Prop: keyName})
			}
		}
	}
}

// arrayPattern expands `[x, y, ...rest]` reading from src.
func (n *normalizer) arrayPattern(pat *ast.ArrayLit, src core.Expr, out *[]core.Stmt) {
	for i, el := range pat.Elems {
		if el == nil {
			continue
		}
		prop := fmt.Sprintf("%d", i)
		switch v := el.(type) {
		case *ast.Ident:
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: v.Name, Obj: src, Prop: prop})
		case *ast.SpreadExpr:
			if id, ok := v.X.(*ast.Ident); ok {
				*out = append(*out, &core.Assign{Meta: n.metaNoIdx(pat), X: id.Name, E: src})
			}
		case *ast.ObjectLit:
			tmp := n.fresh()
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: tmp, Obj: src, Prop: prop})
			n.objectPattern(v, core.Var{Name: tmp}, out)
		case *ast.ArrayLit:
			tmp := n.fresh()
			*out = append(*out, &core.Lookup{Meta: n.meta(pat), X: tmp, Obj: src, Prop: prop})
			n.arrayPattern(v, core.Var{Name: tmp}, out)
		}
	}
}

func (n *normalizer) classDecl(st *ast.ClassDecl, out *[]core.Stmt) {
	// class C { constructor(...) {...} m() {...} }  lowers to:
	//   func C(...) { ctor body }          (constructor under class name)
	//   C.prototype := {}
	//   C.prototype.m := <func>
	var ctor *ast.FunctionLit
	for _, m := range st.Methods {
		if m.Kind == "constructor" {
			ctor = m.Fn
		}
	}
	if ctor == nil {
		ctor = &ast.FunctionLit{Base: ast.Base{P: st.Pos()}, Name: st.Name,
			Body: &ast.BlockStmt{Base: ast.Base{P: st.Pos()}}}
	}
	fd := n.funcDef(ctor, st.Name)
	*out = append(*out, fd)
	protoTmp := n.fresh()
	*out = append(*out, &core.NewObj{Meta: n.meta(st), X: protoTmp})
	*out = append(*out, &core.Update{Meta: n.meta(st), Obj: core.Var{Name: fd.Name},
		Prop: "prototype", Val: core.Var{Name: protoTmp}})
	for _, m := range st.Methods {
		if m.Kind == "constructor" || m.Fn == nil {
			continue
		}
		mfd := n.funcDef(m.Fn, fd.Name+"$"+m.Name)
		*out = append(*out, mfd)
		target := core.Var{Name: protoTmp}
		if m.Static {
			target = core.Var{Name: fd.Name}
		}
		*out = append(*out, &core.Update{Meta: n.meta(st), Obj: target,
			Prop: m.Name, Val: core.Var{Name: mfd.Name}})
	}
}

// funcDef lowers a function literal to a FuncDef with a unique name,
// expanding parameter patterns and defaults.
func (n *normalizer) funcDef(fn *ast.FunctionLit, nameHint string) *core.FuncDef {
	name := n.freshFn(nameHint)
	fd := &core.FuncDef{Meta: n.meta(fn), Name: name}
	for i, p := range fn.Params {
		pname := p.Name
		if pname == "@patparam" {
			pname = fmt.Sprintf("$p%d", i)
		}
		fd.Params = append(fd.Params, pname)
		// Parameter pattern: expand inside the body.
		if pat, ok := p.Default.(*ast.ObjectLit); ok && p.Name == "@patparam" {
			n.objectPattern(pat, core.Var{Name: pname}, &fd.Body)
		} else if pat, ok := p.Default.(*ast.ArrayLit); ok && p.Name == "@patparam" {
			n.arrayPattern(pat, core.Var{Name: pname}, &fd.Body)
		}
	}
	if fn.Body != nil {
		for _, s := range fn.Body.Body {
			n.stmt(s, &fd.Body)
		}
	} else if fn.ExprBody != nil {
		var body []core.Stmt
		v := n.expr(fn.ExprBody, &body)
		body = append(body, &core.Return{Meta: n.metaNoIdx(fn), E: v})
		fd.Body = append(fd.Body, body...)
	}
	return fd
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// expr lowers e, emitting statements into out, and returns the Core
// expression (a variable or literal) holding e's value.
func (n *normalizer) expr(e ast.Expr, out *[]core.Stmt) core.Expr {
	switch x := e.(type) {
	case *ast.Ident:
		return core.Var{Name: x.Name}
	case *ast.Literal:
		return core.Lit{Kind: litKind(x.Kind), Value: x.Value}
	case *ast.ThisExpr:
		return core.Var{Name: "this"}
	case *ast.TemplateLiteral:
		return n.template(x, out)
	case *ast.ObjectLit:
		return n.objectLit(x, out)
	case *ast.ArrayLit:
		return n.arrayLit(x, out)
	case *ast.FunctionLit:
		fd := n.funcDef(x, x.Name)
		*out = append(*out, fd)
		return core.Var{Name: fd.Name}
	case *ast.BinaryExpr:
		l := n.expr(x.L, out)
		r := n.expr(x.R, out)
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: x.Op, L: l, R: r})
		return core.Var{Name: t}
	case *ast.LogicalExpr:
		// Dependencies flow from both operands; short-circuit control
		// flow is over-approximated.
		l := n.expr(x.L, out)
		r := n.expr(x.R, out)
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: x.Op, L: l, R: r})
		return core.Var{Name: t}
	case *ast.UnaryExpr:
		v := n.expr(x.X, out)
		if x.Op == "delete" || x.Op == "void" {
			return core.Lit{Kind: core.LitUndefined, Value: "undefined"}
		}
		t := n.fresh()
		*out = append(*out, &core.UnOp{Meta: n.meta(x), X: t, Op: x.Op, E: v})
		return core.Var{Name: t}
	case *ast.UpdateExpr:
		return n.update(x, out)
	case *ast.AssignExpr:
		return n.assignExpr(x, out)
	case *ast.CondExpr:
		cond := n.expr(x.Cond, out)
		t := n.fresh()
		*out = append(*out, &core.Assign{Meta: n.metaNoIdx(x), X: t,
			E: core.Lit{Kind: core.LitUndefined, Value: "undefined"}})
		iff := &core.If{Meta: n.metaNoIdx(x), Cond: cond}
		tv := n.expr(x.Then, &iff.Then)
		iff.Then = append(iff.Then, &core.Assign{Meta: n.metaNoIdx(x), X: t, E: tv})
		ev := n.expr(x.Else, &iff.Else)
		iff.Else = append(iff.Else, &core.Assign{Meta: n.metaNoIdx(x), X: t, E: ev})
		*out = append(*out, iff)
		return core.Var{Name: t}
	case *ast.CallExpr:
		return n.call(x, out)
	case *ast.NewExpr:
		return n.newExpr(x, out)
	case *ast.MemberExpr:
		return n.memberRead(x, out)
	case *ast.SeqExpr:
		var last core.Expr = core.Lit{Kind: core.LitUndefined, Value: "undefined"}
		for _, sub := range x.Exprs {
			last = n.expr(sub, out)
		}
		return last
	case *ast.SpreadExpr:
		return n.expr(x.X, out)
	}
	return core.Lit{Kind: core.LitUndefined, Value: "undefined"}
}

func litKind(k ast.LiteralKind) core.LitKind {
	switch k {
	case ast.LitNumber:
		return core.LitNumber
	case ast.LitString:
		return core.LitString
	case ast.LitBool:
		return core.LitBool
	case ast.LitNull:
		return core.LitNull
	case ast.LitRegex:
		return core.LitRegex
	default:
		return core.LitUndefined
	}
}

func (n *normalizer) template(x *ast.TemplateLiteral, out *[]core.Stmt) core.Expr {
	var acc core.Expr = core.Lit{Kind: core.LitString, Value: x.Quasis[0]}
	for i, sub := range x.Exprs {
		v := n.expr(sub, out)
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: "+", L: acc, R: v})
		acc = core.Var{Name: t}
		if q := x.Quasis[i+1]; q != "" {
			t2 := n.fresh()
			*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t2, Op: "+", L: acc,
				R: core.Lit{Kind: core.LitString, Value: q}})
			acc = core.Var{Name: t2}
		}
	}
	return acc
}

func (n *normalizer) objectLit(x *ast.ObjectLit, out *[]core.Stmt) core.Expr {
	t := n.fresh()
	*out = append(*out, &core.NewObj{Meta: n.meta(x), X: t})
	for _, p := range x.Props {
		if p.Spread {
			src := n.expr(p.Value, out)
			*out = append(*out, &core.DynUpdate{Meta: n.meta(x),
				Obj: core.Var{Name: t}, Prop: src, Val: src})
			continue
		}
		val := n.expr(p.Value, out)
		if p.Computed {
			key := n.expr(p.Key, out)
			*out = append(*out, &core.DynUpdate{Meta: n.meta(x),
				Obj: core.Var{Name: t}, Prop: key, Val: val})
			continue
		}
		name := ""
		switch k := p.Key.(type) {
		case *ast.Ident:
			name = k.Name
		case *ast.Literal:
			name = k.Value
		}
		*out = append(*out, &core.Update{Meta: n.meta(x),
			Obj: core.Var{Name: t}, Prop: name, Val: val})
	}
	return core.Var{Name: t}
}

func (n *normalizer) arrayLit(x *ast.ArrayLit, out *[]core.Stmt) core.Expr {
	t := n.fresh()
	*out = append(*out, &core.NewObj{Meta: n.meta(x), X: t})
	for i, el := range x.Elems {
		if el == nil {
			continue
		}
		if sp, ok := el.(*ast.SpreadExpr); ok {
			src := n.expr(sp.X, out)
			*out = append(*out, &core.DynUpdate{Meta: n.meta(x),
				Obj: core.Var{Name: t}, Prop: src, Val: src})
			continue
		}
		val := n.expr(el, out)
		*out = append(*out, &core.Update{Meta: n.meta(x),
			Obj: core.Var{Name: t}, Prop: fmt.Sprintf("%d", i), Val: val})
	}
	return core.Var{Name: t}
}

func (n *normalizer) update(x *ast.UpdateExpr, out *[]core.Stmt) core.Expr {
	op := "+"
	if x.Op == "--" {
		op = "-"
	}
	one := core.Lit{Kind: core.LitNumber, Value: "1"}
	switch tgt := x.X.(type) {
	case *ast.Ident:
		old := core.Var{Name: tgt.Name}
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: op, L: old, R: one})
		*out = append(*out, &core.Assign{Meta: n.metaNoIdx(x), X: tgt.Name, E: core.Var{Name: t}})
		if x.Prefix {
			return core.Var{Name: tgt.Name}
		}
		return old
	case *ast.MemberExpr:
		cur := n.memberRead(tgt, out)
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: op, L: cur, R: one})
		n.memberWrite(tgt, core.Var{Name: t}, out)
		return core.Var{Name: t}
	}
	return core.Lit{Kind: core.LitUndefined, Value: "undefined"}
}

// assignTo lowers `name = init`, short-circuiting the extra temp for
// simple initializers.
func (n *normalizer) assignTo(name string, init ast.Expr, at ast.Node, out *[]core.Stmt) {
	switch v := init.(type) {
	case *ast.FunctionLit:
		hint := v.Name
		if hint == "" {
			hint = name
		}
		fd := n.funcDef(v, hint)
		*out = append(*out, fd)
		if fd.Name != name {
			*out = append(*out, &core.Assign{Meta: n.metaNoIdx(at), X: name, E: core.Var{Name: fd.Name}})
		}
		return
	}
	val := n.expr(init, out)
	*out = append(*out, &core.Assign{Meta: n.metaNoIdx(at), X: name, E: val})
}

func (n *normalizer) assignExpr(x *ast.AssignExpr, out *[]core.Stmt) core.Expr {
	// Compound assignment: read-modify-write.
	mkValue := func(read func() core.Expr) core.Expr {
		if x.Op == "" {
			return n.expr(x.Value, out)
		}
		cur := read()
		rhs := n.expr(x.Value, out)
		t := n.fresh()
		*out = append(*out, &core.BinOp{Meta: n.meta(x), X: t, Op: x.Op, L: cur, R: rhs})
		return core.Var{Name: t}
	}
	switch tgt := x.Target.(type) {
	case *ast.Ident:
		if x.Op == "" {
			n.assignTo(tgt.Name, x.Value, x, out)
			return core.Var{Name: tgt.Name}
		}
		val := mkValue(func() core.Expr { return core.Var{Name: tgt.Name} })
		*out = append(*out, &core.Assign{Meta: n.metaNoIdx(x), X: tgt.Name, E: val})
		return core.Var{Name: tgt.Name}
	case *ast.MemberExpr:
		val := mkValue(func() core.Expr { return n.memberRead(tgt, out) })
		n.memberWrite(tgt, val, out)
		return val
	case *ast.ObjectLit: // destructuring assignment
		src := n.expr(x.Value, out)
		n.objectPattern(tgt, src, out)
		return src
	case *ast.ArrayLit:
		src := n.expr(x.Value, out)
		n.arrayPattern(tgt, src, out)
		return src
	}
	return core.Lit{Kind: core.LitUndefined, Value: "undefined"}
}

func (n *normalizer) memberRead(x *ast.MemberExpr, out *[]core.Stmt) core.Expr {
	obj := n.expr(x.Obj, out)
	t := n.fresh()
	if x.Computed {
		if lit, ok := x.Prop.(*ast.Literal); ok && lit.Kind == ast.LitString {
			// Constant string index behaves like a static lookup.
			*out = append(*out, &core.Lookup{Meta: n.meta(x), X: t, Obj: obj, Prop: lit.Value})
			return core.Var{Name: t}
		}
		prop := n.expr(x.Prop, out)
		*out = append(*out, &core.DynLookup{Meta: n.meta(x), X: t, Obj: obj, Prop: prop})
		return core.Var{Name: t}
	}
	name := ""
	if id, ok := x.Prop.(*ast.Ident); ok {
		name = id.Name
	}
	*out = append(*out, &core.Lookup{Meta: n.meta(x), X: t, Obj: obj, Prop: name})
	return core.Var{Name: t}
}

func (n *normalizer) memberWrite(x *ast.MemberExpr, val core.Expr, out *[]core.Stmt) {
	obj := n.expr(x.Obj, out)
	if x.Computed {
		if lit, ok := x.Prop.(*ast.Literal); ok && lit.Kind == ast.LitString {
			*out = append(*out, &core.Update{Meta: n.meta(x), Obj: obj, Prop: lit.Value, Val: val})
			return
		}
		prop := n.expr(x.Prop, out)
		*out = append(*out, &core.DynUpdate{Meta: n.meta(x), Obj: obj, Prop: prop, Val: val})
		return
	}
	name := ""
	if id, ok := x.Prop.(*ast.Ident); ok {
		name = id.Name
	}
	*out = append(*out, &core.Update{Meta: n.meta(x), Obj: obj, Prop: name, Val: val})
}

// calleePath renders the source-level callee path for sink matching,
// e.g. `child_process.exec` or `fs.readFile`.
func calleePath(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.MemberExpr:
		if id, ok := x.Prop.(*ast.Ident); ok {
			base := calleePath(x.Obj)
			if base == "" {
				return id.Name
			}
			return base + "." + id.Name
		}
		return calleePath(x.Obj) + ".*"
	case *ast.ThisExpr:
		return "this"
	case *ast.CallExpr:
		return calleePath(x.Callee) + "()"
	}
	return ""
}

func (n *normalizer) call(x *ast.CallExpr, out *[]core.Stmt) core.Expr {
	name := calleePath(x.Callee)
	var callee core.Expr
	var thisV core.Expr
	if mem, ok := x.Callee.(*ast.MemberExpr); ok {
		thisV = n.expr(mem.Obj, out)
		t := n.fresh()
		if mem.Computed {
			if lit, ok := mem.Prop.(*ast.Literal); ok && lit.Kind == ast.LitString {
				*out = append(*out, &core.Lookup{Meta: n.meta(x), X: t, Obj: thisV, Prop: lit.Value})
			} else {
				prop := n.expr(mem.Prop, out)
				*out = append(*out, &core.DynLookup{Meta: n.meta(x), X: t, Obj: thisV, Prop: prop})
			}
		} else {
			pn := ""
			if id, ok := mem.Prop.(*ast.Ident); ok {
				pn = id.Name
			}
			*out = append(*out, &core.Lookup{Meta: n.meta(x), X: t, Obj: thisV, Prop: pn})
		}
		callee = core.Var{Name: t}
	} else {
		callee = n.expr(x.Callee, out)
	}
	var args []core.Expr
	for _, a := range x.Args {
		args = append(args, n.expr(a, out))
	}
	t := n.fresh()
	*out = append(*out, &core.Call{Meta: n.meta(x), X: t, Callee: callee,
		CalleeName: name, This: thisV, Args: args})
	return core.Var{Name: t}
}

func (n *normalizer) newExpr(x *ast.NewExpr, out *[]core.Stmt) core.Expr {
	name := calleePath(x.Callee)
	callee := n.expr(x.Callee, out)
	var args []core.Expr
	for _, a := range x.Args {
		args = append(args, n.expr(a, out))
	}
	t := n.fresh()
	*out = append(*out, &core.Call{Meta: n.meta(x), X: t, Callee: callee,
		CalleeName: name, Args: args, IsNew: true})
	return core.Var{Name: t}
}
