package normalize

import (
	"strings"
	"testing"

	"repro/internal/core"
)

func mustFile(t *testing.T, src string) *core.Program {
	t.Helper()
	p, err := File(src, "test.js")
	if err != nil {
		t.Fatalf("File: %v", err)
	}
	return p
}

// find returns all statements of type T in the program.
func find[T core.Stmt](p *core.Program) []T {
	var out []T
	core.Walk(p.Body, func(s core.Stmt) bool {
		if v, ok := s.(T); ok {
			out = append(out, v)
		}
		return true
	})
	return out
}

func TestSimpleAssign(t *testing.T) {
	p := mustFile(t, "var x = 1;")
	if len(p.Body) != 1 {
		t.Fatalf("body: %s", core.Print(p.Body))
	}
	a := p.Body[0].(*core.Assign)
	if a.X != "x" {
		t.Fatalf("got %s", a)
	}
	if lit, ok := a.E.(core.Lit); !ok || lit.Value != "1" {
		t.Fatalf("init = %#v", a.E)
	}
}

func TestBinOpFlattening(t *testing.T) {
	p := mustFile(t, "var x = a + b * c;")
	bins := find[*core.BinOp](p)
	if len(bins) != 2 {
		t.Fatalf("want 2 binops, got %d:\n%s", len(bins), core.Print(p.Body))
	}
	// Multiplication evaluated first.
	if bins[0].Op != "*" || bins[1].Op != "+" {
		t.Fatalf("ops = %s, %s", bins[0].Op, bins[1].Op)
	}
	// Unique indices.
	if bins[0].Idx == bins[1].Idx {
		t.Error("statement indices must be unique")
	}
}

func TestStaticLookupAndUpdate(t *testing.T) {
	p := mustFile(t, "var v = o.a; o.b = v;")
	lks := find[*core.Lookup](p)
	ups := find[*core.Update](p)
	if len(lks) != 1 || lks[0].Prop != "a" {
		t.Fatalf("lookups: %v", lks)
	}
	if len(ups) != 1 || ups[0].Prop != "b" {
		t.Fatalf("updates: %v", ups)
	}
}

func TestDynamicLookupAndUpdate(t *testing.T) {
	p := mustFile(t, "var v = o[k]; o[k2] = v;")
	if len(find[*core.DynLookup](p)) != 1 {
		t.Fatalf("dyn lookups:\n%s", core.Print(p.Body))
	}
	if len(find[*core.DynUpdate](p)) != 1 {
		t.Fatalf("dyn updates:\n%s", core.Print(p.Body))
	}
}

func TestConstantStringIndexIsStatic(t *testing.T) {
	p := mustFile(t, `var v = o["name"];`)
	if len(find[*core.DynLookup](p)) != 0 {
		t.Fatal("constant index should lower to static lookup")
	}
	lks := find[*core.Lookup](p)
	if len(lks) != 1 || lks[0].Prop != "name" {
		t.Fatalf("lookups: %v", lks)
	}
}

func TestObjectLiteralLowering(t *testing.T) {
	p := mustFile(t, "var o = {a: 1, b: x, [k]: y};")
	if len(find[*core.NewObj](p)) != 1 {
		t.Fatal("want one NewObj")
	}
	if len(find[*core.Update](p)) != 2 {
		t.Fatalf("want 2 static updates:\n%s", core.Print(p.Body))
	}
	if len(find[*core.DynUpdate](p)) != 1 {
		t.Fatal("want 1 dynamic update")
	}
}

func TestArrayLiteralLowering(t *testing.T) {
	p := mustFile(t, "var a = [x, y];")
	ups := find[*core.Update](p)
	if len(ups) != 2 || ups[0].Prop != "0" || ups[1].Prop != "1" {
		t.Fatalf("updates:\n%s", core.Print(p.Body))
	}
}

func TestTemplateLowering(t *testing.T) {
	p := mustFile(t, "var s = `run ${cmd} now`;")
	bins := find[*core.BinOp](p)
	if len(bins) < 2 {
		t.Fatalf("want concat chain:\n%s", core.Print(p.Body))
	}
	for _, b := range bins {
		if b.Op != "+" {
			t.Errorf("op = %q", b.Op)
		}
	}
}

func TestCallLowering(t *testing.T) {
	p := mustFile(t, "exec(cmd, opts);")
	calls := find[*core.Call](p)
	if len(calls) != 1 {
		t.Fatalf("calls:\n%s", core.Print(p.Body))
	}
	c := calls[0]
	if c.CalleeName != "exec" || len(c.Args) != 2 || c.This != nil {
		t.Fatalf("got %+v", c)
	}
}

func TestMethodCallLowering(t *testing.T) {
	p := mustFile(t, "fs.readFile(path);")
	calls := find[*core.Call](p)
	if len(calls) != 1 {
		t.Fatal("want one call")
	}
	c := calls[0]
	if c.CalleeName != "fs.readFile" {
		t.Errorf("callee name = %q", c.CalleeName)
	}
	if c.This == nil {
		t.Error("method call should set This")
	}
	// Callee lookup emitted before the call.
	lks := find[*core.Lookup](p)
	if len(lks) != 1 || lks[0].Prop != "readFile" {
		t.Errorf("lookups = %v", lks)
	}
}

func TestNewLowering(t *testing.T) {
	p := mustFile(t, "var f = new Function(body);")
	calls := find[*core.Call](p)
	if len(calls) != 1 || !calls[0].IsNew || calls[0].CalleeName != "Function" {
		t.Fatalf("got %+v", calls)
	}
}

func TestForLoweredToWhile(t *testing.T) {
	p := mustFile(t, "for (var i = 0; i < n; i++) { f(i); }")
	whiles := find[*core.While](p)
	if len(whiles) != 1 {
		t.Fatalf("want one while:\n%s", core.Print(p.Body))
	}
	// Post-expression and condition re-evaluation are inside the body.
	var gotCall, gotInc bool
	core.Walk(whiles[0].Body, func(s core.Stmt) bool {
		if c, ok := s.(*core.Call); ok && c.CalleeName == "f" {
			gotCall = true
		}
		if b, ok := s.(*core.BinOp); ok && b.Op == "+" {
			gotInc = true
		}
		return true
	})
	if !gotCall || !gotInc {
		t.Fatalf("loop body:\n%s", core.Print(whiles[0].Body))
	}
}

func TestForInLowering(t *testing.T) {
	p := mustFile(t, "for (var k in obj) { use(k); }")
	fis := find[*core.ForIn](p)
	if len(fis) != 1 || fis[0].Key != "k" || fis[0].Of {
		t.Fatalf("got %+v", fis)
	}
	p = mustFile(t, "for (const v of list) { use(v); }")
	fis = find[*core.ForIn](p)
	if len(fis) != 1 || !fis[0].Of {
		t.Fatalf("got %+v", fis)
	}
}

func TestTernaryLowering(t *testing.T) {
	p := mustFile(t, "var x = c ? a : b;")
	ifs := find[*core.If](p)
	if len(ifs) != 1 {
		t.Fatalf("want one if:\n%s", core.Print(p.Body))
	}
	if len(ifs[0].Then) == 0 || len(ifs[0].Else) == 0 {
		t.Fatal("both branches must assign")
	}
}

func TestSwitchLowering(t *testing.T) {
	p := mustFile(t, "switch (x) { case 1: a(); break; case 2: b(); break; default: c(); }")
	ifs := find[*core.If](p)
	// Nested if/else chain: one if per non-default case.
	if len(ifs) != 2 {
		t.Fatalf("want 2 ifs:\n%s", core.Print(p.Body))
	}
	// The default body lives in the innermost else.
	if len(ifs[1].Else) == 0 {
		t.Fatalf("default body missing:\n%s", core.Print(p.Body))
	}
	// Trailing breaks are dropped.
	for _, iff := range ifs {
		for _, s := range iff.Then {
			if _, isBreak := s.(*core.Break); isBreak {
				t.Fatal("switch break must be dropped")
			}
		}
	}
}

func TestTryLowering(t *testing.T) {
	p := mustFile(t, "try { f(); } catch (e) { g(e); } finally { h(); }")
	calls := find[*core.Call](p)
	if len(calls) != 3 {
		t.Fatalf("want 3 calls:\n%s", core.Print(p.Body))
	}
	// Catch parameter bound to a fresh object.
	objs := find[*core.NewObj](p)
	if len(objs) != 1 || objs[0].X != "e" {
		t.Fatalf("catch param: %v", objs)
	}
}

func TestFunctionLowering(t *testing.T) {
	p := mustFile(t, `
function outer(a) {
  var inner = function(b) { return b; };
  return inner(a);
}
`)
	fns := core.Functions(p.Body)
	if len(fns) != 2 {
		t.Fatalf("functions: %v", fns)
	}
	if fns[0].Name != "outer" || len(fns[0].Params) != 1 {
		t.Fatalf("outer = %+v", fns[0])
	}
	if fns[1].Name != "inner" {
		t.Fatalf("inner fn name = %q", fns[1].Name)
	}
}

func TestAnonymousFunctionNames(t *testing.T) {
	p := mustFile(t, "arr.map(function(x) { return x; }); arr.map(y => y);")
	fns := core.Functions(p.Body)
	if len(fns) != 2 {
		t.Fatalf("functions: %v", fns)
	}
	if fns[0].Name == fns[1].Name {
		t.Error("anonymous functions must get distinct names")
	}
}

func TestDuplicateFunctionNames(t *testing.T) {
	p := mustFile(t, "var f = function g() {}; var h = function g() {};")
	fns := core.Functions(p.Body)
	if len(fns) != 2 || fns[0].Name == fns[1].Name {
		t.Fatalf("functions: %+v", fns)
	}
}

func TestDestructuringLowering(t *testing.T) {
	p := mustFile(t, "var {exec, spawn: sp} = require('child_process');")
	lks := find[*core.Lookup](p)
	if len(lks) != 2 {
		t.Fatalf("lookups:\n%s", core.Print(p.Body))
	}
	if lks[0].X != "exec" || lks[0].Prop != "exec" {
		t.Errorf("lks[0] = %+v", lks[0])
	}
	if lks[1].X != "sp" || lks[1].Prop != "spawn" {
		t.Errorf("lks[1] = %+v", lks[1])
	}
}

func TestArrayDestructuring(t *testing.T) {
	p := mustFile(t, "var [a, , b] = arr;")
	lks := find[*core.Lookup](p)
	if len(lks) != 2 || lks[0].Prop != "0" || lks[1].Prop != "2" {
		t.Fatalf("lookups: %+v", lks)
	}
}

func TestCompoundAssign(t *testing.T) {
	p := mustFile(t, "x += y;")
	bins := find[*core.BinOp](p)
	if len(bins) != 1 || bins[0].Op != "+" {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
}

func TestCompoundMemberAssign(t *testing.T) {
	p := mustFile(t, "o.count += 1;")
	if len(find[*core.Lookup](p)) != 1 {
		t.Fatal("want read of o.count")
	}
	if len(find[*core.Update](p)) != 1 {
		t.Fatal("want write of o.count")
	}
}

func TestUpdateExprLowering(t *testing.T) {
	p := mustFile(t, "i++; --j; o.n++;")
	bins := find[*core.BinOp](p)
	if len(bins) != 3 {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
	if bins[1].Op != "-" {
		t.Errorf("--j should lower to -")
	}
}

func TestClassLowering(t *testing.T) {
	p := mustFile(t, `
class Runner {
  constructor(cmd) { this.cmd = cmd; }
  run() { return this.cmd; }
  static make(c) { return new Runner(c); }
}
`)
	fns := core.Functions(p.Body)
	names := map[string]bool{}
	for _, f := range fns {
		names[f.Name] = true
	}
	if !names["Runner"] {
		t.Errorf("constructor should be named Runner; got %v", names)
	}
	ups := find[*core.Update](p)
	var protoSet, methodSet bool
	for _, u := range ups {
		if u.Prop == "prototype" {
			protoSet = true
		}
		if u.Prop == "run" {
			methodSet = true
		}
	}
	if !protoSet || !methodSet {
		t.Fatalf("updates:\n%s", core.Print(p.Body))
	}
}

func TestGitResetNormalization(t *testing.T) {
	src := `
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
`
	p := mustFile(t, src)
	fns := core.Functions(p.Body)
	if len(fns) != 1 {
		t.Fatal("want one function")
	}
	body := fns[0].Body
	var dynLk, dynUp, statUp, statLk, calls, bins int
	core.Walk(body, func(s core.Stmt) bool {
		switch s.(type) {
		case *core.DynLookup:
			dynLk++
		case *core.DynUpdate:
			dynUp++
		case *core.Update:
			statUp++
		case *core.Lookup:
			statLk++
		case *core.Call:
			calls++
		case *core.BinOp:
			bins++
		}
		return true
	})
	if dynLk != 1 || dynUp != 1 || statUp != 1 || statLk != 2 || calls != 1 || bins != 1 {
		t.Fatalf("shape: dynLk=%d dynUp=%d statUp=%d statLk=%d calls=%d bins=%d\n%s",
			dynLk, dynUp, statUp, statLk, calls, bins, core.Print(body))
	}
}

func TestIndicesStrictlyIncrease(t *testing.T) {
	p := mustFile(t, "var a = x + y; var b = a * 2; o.p = b;")
	last := 0
	core.Walk(p.Body, func(s core.Stmt) bool {
		if i := s.Index(); i != 0 {
			if i <= last {
				t.Errorf("index %d not increasing after %d", i, last)
			}
			last = i
		}
		return true
	})
	if last == 0 {
		t.Fatal("no indexed statements found")
	}
}

func TestLinesPreserved(t *testing.T) {
	p := mustFile(t, "var a = 1;\nvar b = 2;\no.p = q;")
	ups := find[*core.Update](p)
	if len(ups) != 1 || ups[0].Line() != 3 {
		t.Fatalf("update line = %d", ups[0].Line())
	}
}

func TestLogicalLowering(t *testing.T) {
	p := mustFile(t, "var x = a || b;")
	bins := find[*core.BinOp](p)
	if len(bins) != 1 || bins[0].Op != "||" {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
}

func TestThrowEvaluatesOperand(t *testing.T) {
	p := mustFile(t, "throw new Error(msg);")
	calls := find[*core.Call](p)
	if len(calls) != 1 || !calls[0].IsNew {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
}

func TestPrintRoundTrip(t *testing.T) {
	p := mustFile(t, "function f(a) { if (a) { return a; } return 0; }")
	s := core.Print(p.Body)
	for _, want := range []string{"func f(a)", "if", "return"} {
		if !strings.Contains(s, want) {
			t.Errorf("Print missing %q:\n%s", want, s)
		}
	}
}

func TestSpreadArgsKeepDeps(t *testing.T) {
	p := mustFile(t, "f(...args);")
	calls := find[*core.Call](p)
	if len(calls) != 1 || len(calls[0].Args) != 1 {
		t.Fatalf("got:\n%s", core.Print(p.Body))
	}
	if v, ok := calls[0].Args[0].(core.Var); !ok || v.Name != "args" {
		t.Fatalf("arg = %#v", calls[0].Args[0])
	}
}

func TestArrowExprBody(t *testing.T) {
	p := mustFile(t, "var f = x => x + 1;")
	fns := core.Functions(p.Body)
	if len(fns) != 1 {
		t.Fatal("want one function")
	}
	var ret *core.Return
	core.Walk(fns[0].Body, func(s core.Stmt) bool {
		if r, ok := s.(*core.Return); ok {
			ret = r
		}
		return true
	})
	if ret == nil || ret.E == nil {
		t.Fatalf("arrow body:\n%s", core.Print(fns[0].Body))
	}
}
