// Package parser implements a recursive-descent parser for the
// JavaScript subset used by the scanner: the full expression grammar
// with standard precedence, statements, function/arrow/class forms,
// template literals, spread, and light destructuring. Automatic
// semicolon insertion follows the ECMAScript rules closely enough for
// real npm-package code.
package parser

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/js/token"
)

// Error is a syntax error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

type parser struct {
	toks []token.Token
	pos  int
	err  *Error
	// noIn disables the `in` binary operator while parsing the head of a
	// for statement, so `for (x in y)` is recognized as for-in.
	noIn bool

	// depth bounds grammar recursion. A Go stack overflow cannot be
	// recovered, so deeply nested input (thousands of parens, unary
	// chains, nested blocks) must be rejected with an explicit limit —
	// this is the parser's only user-input path that could otherwise
	// kill the process.
	depth int

	// bud is the scan-wide fault-containment budget: one step is
	// charged per statement parsed, so the parser cooperates with the
	// scan deadline and step cap. budErr preserves the budget error's
	// classification (p.err would flatten it into a syntax error).
	bud    *budget.Budget
	budErr error
}

// maxNestDepth bounds grammar recursion (statements + expressions).
// Real code nests tens of levels; pathological input nests thousands.
// Each level costs ~10 stack frames, so 2000 levels stay well inside
// the runtime's stack ceiling.
const maxNestDepth = 2000

// enter charges one recursion level; callers defer p.leave().
func (p *parser) enter() bool {
	p.depth++
	if p.depth > maxNestDepth {
		// errorf jumps to EOF, so the whole recursion tower unwinds
		// without doing further work.
		p.errorf(p.cur().Pos, "nesting exceeds %d levels", maxNestDepth)
		return false
	}
	return true
}

func (p *parser) leave() { p.depth-- }

// Parse parses a whole program.
func Parse(src string) (*ast.Program, error) {
	return ParseBudget(src, nil)
}

// ParseBudget is Parse under a fault-containment budget: one step per
// statement. When the budget trips, the returned error is the budget's
// classified error (timeout or cap), not a syntax error.
func ParseBudget(src string, b *budget.Budget) (*ast.Program, error) {
	toks, err := lexer.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, bud: b}
	prog := &ast.Program{Base: ast.Base{P: token.Pos{Line: 1, Column: 1}}}
	//lint:allow budgetloop -- parseStmt consults the budget per token via p.budErr
	for !p.at(token.EOF) && p.err == nil && p.budErr == nil {
		s := p.parseStmt()
		if s != nil {
			prog.Body = append(prog.Body, s)
		}
	}
	if p.budErr != nil {
		return nil, p.budErr
	}
	if p.err != nil {
		return nil, p.err
	}
	return prog, nil
}

// ParseExpr parses a single expression (used by tests and tools).
func ParseExpr(src string) (ast.Expr, error) {
	toks, err := lexer.ScanAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e := p.parseExpr()
	if p.err != nil {
		return nil, p.err
	}
	if !p.at(token.EOF) {
		return nil, &Error{Pos: p.cur().Pos, Msg: "unexpected trailing tokens"}
	}
	return e, nil
}

// ---------------------------------------------------------------------------
// Token plumbing
// ---------------------------------------------------------------------------

func (p *parser) cur() token.Token { return p.toks[p.pos] }

func (p *parser) peekTok(n int) token.Token {
	if p.pos+n < len(p.toks) {
		return p.toks[p.pos+n]
	}
	return p.toks[len(p.toks)-1] // EOF
}

func (p *parser) at(k token.Kind) bool { return p.cur().Kind == k }

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == token.KEYWORD && t.Lit == kw
}

func (p *parser) atIdent(name string) bool {
	t := p.cur()
	return t.Kind == token.IDENT && t.Lit == name
}

func (p *parser) next() token.Token {
	t := p.cur()
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	if p.err == nil {
		p.err = &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
	}
	// Skip to EOF so parsing terminates quickly after an error.
	p.pos = len(p.toks) - 1
}

func (p *parser) expect(k token.Kind) token.Token {
	if !p.at(k) {
		p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
		return p.cur()
	}
	return p.next()
}

func (p *parser) expectKeyword(kw string) token.Token {
	if !p.atKeyword(kw) {
		p.errorf(p.cur().Pos, "expected %q, found %s", kw, p.cur())
		return p.cur()
	}
	return p.next()
}

// consumeSemi implements automatic semicolon insertion: an explicit ';',
// a '}' ahead, EOF, or a preceding line terminator all end the statement.
func (p *parser) consumeSemi() {
	switch {
	case p.at(token.SEMI):
		p.next()
	case p.at(token.RBRACE), p.at(token.EOF):
	case p.cur().NewlineBefore:
	default:
		p.errorf(p.cur().Pos, "expected ';', found %s", p.cur())
	}
}

func at(t token.Token) ast.Base { return ast.Base{P: t.Pos} }

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *parser) parseStmt() ast.Stmt {
	if p.bud != nil && p.budErr == nil {
		if err := p.bud.Step(); err != nil {
			p.budErr = err
			p.pos = len(p.toks) - 1 // jump to EOF: terminate quickly
			return nil
		}
	}
	if !p.enter() {
		return nil
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.Kind == token.SEMI:
		p.next()
		return &ast.EmptyStmt{Base: at(t)}
	case t.Kind == token.LBRACE:
		return p.parseBlock()
	case t.Kind == token.KEYWORD:
		switch t.Lit {
		case "var", "let", "const":
			s := p.parseVarDecl()
			p.consumeSemi()
			return s
		case "if":
			return p.parseIf()
		case "while":
			return p.parseWhile()
		case "do":
			return p.parseDoWhile()
		case "for":
			return p.parseFor()
		case "function":
			return p.parseFuncDecl()
		case "return":
			return p.parseReturn()
		case "break":
			p.next()
			s := &ast.BreakStmt{Base: at(t)}
			if p.at(token.IDENT) && !p.cur().NewlineBefore {
				s.Label = p.next().Lit
			}
			p.consumeSemi()
			return s
		case "continue":
			p.next()
			s := &ast.ContinueStmt{Base: at(t)}
			if p.at(token.IDENT) && !p.cur().NewlineBefore {
				s.Label = p.next().Lit
			}
			p.consumeSemi()
			return s
		case "throw":
			p.next()
			x := p.parseExpr()
			p.consumeSemi()
			return &ast.ThrowStmt{Base: at(t), X: x}
		case "try":
			return p.parseTry()
		case "switch":
			return p.parseSwitch()
		case "class":
			return p.parseClass()
		case "debugger":
			p.next()
			p.consumeSemi()
			return &ast.EmptyStmt{Base: at(t)}
		case "import":
			return p.parseImport()
		case "export":
			return p.parseExport()
		case "with":
			p.errorf(t.Pos, "'with' statements are not supported")
			return nil
		}
	case t.Kind == token.IDENT && p.peekTok(1).Kind == token.COLON:
		// Labeled statement.
		p.next()
		p.next()
		body := p.parseStmt()
		return &ast.LabeledStmt{Base: at(t), Label: t.Lit, Body: body}
	}
	// Expression statement.
	x := p.parseExpr()
	p.consumeSemi()
	return &ast.ExprStmt{Base: at(t), X: x}
}

func (p *parser) parseBlock() *ast.BlockStmt {
	lb := p.expect(token.LBRACE)
	b := &ast.BlockStmt{Base: at(lb)}
	for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
		if s := p.parseStmt(); s != nil {
			b.Body = append(b.Body, s)
		}
	}
	p.expect(token.RBRACE)
	return b
}

func (p *parser) parseVarDecl() *ast.VarDecl {
	kw := p.next() // var/let/const
	d := &ast.VarDecl{Base: at(kw), Kind: kw.Lit}
	for {
		var decl ast.Declarator
		switch {
		case p.at(token.IDENT):
			decl.Name = p.next().Lit
		case p.at(token.LBRACE), p.at(token.LBRACKET):
			decl.Pattern = p.parsePrimary()
		default:
			p.errorf(p.cur().Pos, "expected binding identifier, found %s", p.cur())
			return d
		}
		if p.at(token.ASSIGN) {
			p.next()
			decl.Init = p.parseAssign()
		}
		d.Decls = append(d.Decls, decl)
		if !p.at(token.COMMA) {
			break
		}
		p.next()
	}
	return d
}

func (p *parser) parseIf() ast.Stmt {
	kw := p.expectKeyword("if")
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	then := p.parseStmt()
	s := &ast.IfStmt{Base: at(kw), Cond: cond, Then: then}
	if p.atKeyword("else") {
		p.next()
		s.Else = p.parseStmt()
	}
	return s
}

func (p *parser) parseWhile() ast.Stmt {
	kw := p.expectKeyword("while")
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.WhileStmt{Base: at(kw), Cond: cond, Body: body}
}

func (p *parser) parseDoWhile() ast.Stmt {
	kw := p.expectKeyword("do")
	body := p.parseStmt()
	p.expectKeyword("while")
	p.expect(token.LPAREN)
	cond := p.parseExpr()
	p.expect(token.RPAREN)
	if p.at(token.SEMI) {
		p.next()
	}
	return &ast.DoWhileStmt{Base: at(kw), Body: body, Cond: cond}
}

func (p *parser) parseFor() ast.Stmt {
	kw := p.expectKeyword("for")
	p.expect(token.LPAREN)

	// Detect for-in / for-of by scanning ahead for `in`/`of` before ';'.
	var init ast.Stmt
	declKind := ""
	var left ast.Expr
	if p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const") {
		declKind = p.cur().Lit
		save := p.pos
		vd := p.parseVarDecl()
		if (p.atKeyword("in") || p.atIdent("of")) && len(vd.Decls) == 1 && vd.Decls[0].Init == nil {
			if vd.Decls[0].Name != "" {
				left = &ast.Ident{Base: vd.Base, Name: vd.Decls[0].Name}
			} else {
				left = vd.Decls[0].Pattern
			}
			return p.parseForInTail(kw, declKind, left)
		}
		_ = save
		init = vd
	} else if !p.at(token.SEMI) {
		p.noIn = true
		left = p.parseExpr()
		p.noIn = false
		if p.atKeyword("in") || p.atIdent("of") {
			return p.parseForInTail(kw, "", left)
		}
		init = &ast.ExprStmt{Base: at(kw), X: left}
	}
	p.expect(token.SEMI)
	var cond, post ast.Expr
	if !p.at(token.SEMI) {
		cond = p.parseExpr()
	}
	p.expect(token.SEMI)
	if !p.at(token.RPAREN) {
		post = p.parseExpr()
	}
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.ForStmt{Base: at(kw), Init: init, Cond: cond, Post: post, Body: body}
}

func (p *parser) parseForInTail(kw token.Token, declKind string, left ast.Expr) ast.Stmt {
	of := p.atIdent("of")
	p.next() // in / of
	right := p.parseAssign()
	p.expect(token.RPAREN)
	body := p.parseStmt()
	return &ast.ForInStmt{Base: at(kw), DeclKind: declKind, Left: left, Right: right, Body: body, Of: of}
}

func (p *parser) parseFuncDecl() ast.Stmt {
	kw := p.cur()
	fn := p.parseFunctionLit(false)
	if fn.Name == "" {
		p.errorf(kw.Pos, "function declaration requires a name")
	}
	return &ast.FuncDecl{Base: at(kw), Fn: fn}
}

func (p *parser) parseReturn() ast.Stmt {
	kw := p.expectKeyword("return")
	s := &ast.ReturnStmt{Base: at(kw)}
	if !p.at(token.SEMI) && !p.at(token.RBRACE) && !p.at(token.EOF) && !p.cur().NewlineBefore {
		s.X = p.parseExpr()
	}
	p.consumeSemi()
	return s
}

func (p *parser) parseTry() ast.Stmt {
	kw := p.expectKeyword("try")
	s := &ast.TryStmt{Base: at(kw)}
	s.Block = p.parseBlock()
	if p.atKeyword("catch") {
		p.next()
		if p.at(token.LPAREN) {
			p.next()
			if p.at(token.IDENT) {
				s.CatchParam = p.next().Lit
			} else if p.at(token.LBRACE) || p.at(token.LBRACKET) {
				p.parsePrimary() // pattern param: names are dropped
			}
			p.expect(token.RPAREN)
		}
		s.CatchBlock = p.parseBlock()
	}
	if p.atKeyword("finally") {
		p.next()
		s.FinallyBody = p.parseBlock()
	}
	if s.CatchBlock == nil && s.FinallyBody == nil {
		p.errorf(kw.Pos, "try statement requires catch or finally")
	}
	return s
}

func (p *parser) parseSwitch() ast.Stmt {
	kw := p.expectKeyword("switch")
	p.expect(token.LPAREN)
	disc := p.parseExpr()
	p.expect(token.RPAREN)
	p.expect(token.LBRACE)
	s := &ast.SwitchStmt{Base: at(kw), Disc: disc}
	for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
		var c ast.SwitchCase
		if p.atKeyword("case") {
			p.next()
			c.Test = p.parseExpr()
		} else if p.atKeyword("default") {
			p.next()
		} else {
			p.errorf(p.cur().Pos, "expected 'case' or 'default', found %s", p.cur())
			break
		}
		p.expect(token.COLON)
		for !p.atKeyword("case") && !p.atKeyword("default") && !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
			if st := p.parseStmt(); st != nil {
				c.Body = append(c.Body, st)
			}
		}
		s.Cases = append(s.Cases, c)
	}
	p.expect(token.RBRACE)
	return s
}

func (p *parser) parseClass() ast.Stmt {
	kw := p.expectKeyword("class")
	s := &ast.ClassDecl{Base: at(kw)}
	if p.at(token.IDENT) {
		s.Name = p.next().Lit
	}
	if p.atKeyword("extends") {
		p.next()
		s.Super = p.parseLeftHandSide()
	}
	p.expect(token.LBRACE)
	for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
		if p.at(token.SEMI) {
			p.next()
			continue
		}
		m := ast.ClassMethod{Kind: "method"}
		if p.atIdent("static") && p.peekTok(1).Kind != token.LPAREN {
			m.Static = true
			p.next()
		}
		if p.atIdent("async") && p.peekTok(1).Kind != token.LPAREN {
			p.next() // async methods analyze like plain methods
		}
		if p.at(token.STAR) { // generator method
			p.next()
		}
		if (p.atIdent("get") || p.atIdent("set")) && p.peekTok(1).Kind != token.LPAREN {
			m.Kind = p.next().Lit
		}
		nameTok := p.cur()
		switch nameTok.Kind {
		case token.IDENT, token.KEYWORD, token.STRING, token.NUMBER:
			p.next()
			m.Name = nameTok.Lit
		default:
			p.errorf(nameTok.Pos, "expected method name, found %s", nameTok)
			return s
		}
		if m.Name == "constructor" {
			m.Kind = "constructor"
		}
		if p.at(token.LPAREN) {
			fn := &ast.FunctionLit{Base: at(nameTok), Name: m.Name}
			fn.Params = p.parseParams()
			fn.Body = p.parseBlock()
			m.Fn = fn
			s.Methods = append(s.Methods, m)
		} else if p.at(token.ASSIGN) {
			// Class field: desugar to a method-less property; record as a
			// zero-arg getter returning the initializer.
			p.next()
			val := p.parseAssign()
			p.consumeSemi()
			fn := &ast.FunctionLit{Base: at(nameTok), Name: m.Name, ExprBody: val, Arrow: true}
			m.Kind = "field"
			m.Fn = fn
			s.Methods = append(s.Methods, m)
		} else {
			p.consumeSemi()
		}
	}
	p.expect(token.RBRACE)
	return s
}

// parseImport handles `import x from 'm'`, `import {a, b} from 'm'`,
// `import * as ns from 'm'` and bare `import 'm'`. These are desugared
// to require() calls so the downstream analysis sees a single form.
func (p *parser) parseImport() ast.Stmt {
	kw := p.expectKeyword("import")
	mk := func(name string, modTok token.Token) ast.Declarator {
		req := &ast.CallExpr{
			Base:   at(kw),
			Callee: &ast.Ident{Base: at(kw), Name: "require"},
			Args: []ast.Expr{&ast.Literal{
				Base: at(modTok), Kind: ast.LitString, Value: modTok.Lit,
			}},
		}
		return ast.Declarator{Name: name, Init: req}
	}
	// import 'm';
	if p.at(token.STRING) {
		mod := p.next()
		p.consumeSemi()
		d := mk("", mod)
		return &ast.ExprStmt{Base: at(kw), X: d.Init}
	}
	var decls []ast.Declarator
	var names []string
	var pattern *ast.ObjectLit
	switch {
	case p.at(token.IDENT):
		names = append(names, p.next().Lit)
		if p.at(token.COMMA) {
			p.next()
		}
	}
	if p.at(token.STAR) {
		p.next()
		if !p.atIdent("as") {
			p.errorf(p.cur().Pos, "expected 'as' in namespace import")
			return nil
		}
		p.next()
		names = append(names, p.expect(token.IDENT).Lit)
	} else if p.at(token.LBRACE) {
		pattern = &ast.ObjectLit{Base: at(p.next())}
		for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
			n := p.cur()
			if n.Kind != token.IDENT && n.Kind != token.KEYWORD {
				p.errorf(n.Pos, "expected import name, found %s", n)
				return nil
			}
			p.next()
			local := n.Lit
			if p.atIdent("as") {
				p.next()
				local = p.expect(token.IDENT).Lit
			}
			pattern.Props = append(pattern.Props, ast.Property{
				Key:   &ast.Ident{Base: at(n), Name: n.Lit},
				Value: &ast.Ident{Base: at(n), Name: local},
			})
			if p.at(token.COMMA) {
				p.next()
			}
		}
		p.expect(token.RBRACE)
	}
	if !p.atIdent("from") {
		p.errorf(p.cur().Pos, "expected 'from' in import")
		return nil
	}
	p.next()
	mod := p.expect(token.STRING)
	p.consumeSemi()
	for _, n := range names {
		decls = append(decls, mk(n, mod))
	}
	if pattern != nil {
		d := mk("", mod)
		d.Pattern = pattern
		decls = append(decls, d)
	}
	return &ast.VarDecl{Base: at(kw), Kind: "const", Decls: decls}
}

// parseExport desugars `export function f(){}` / `export const x = ...` /
// `export default e` into assignments to module.exports, matching the
// CommonJS attack-surface model used by the analysis.
func (p *parser) parseExport() ast.Stmt {
	kw := p.expectKeyword("export")
	moduleExports := func(prop string) ast.Expr {
		me := &ast.MemberExpr{
			Base: at(kw),
			Obj:  &ast.Ident{Base: at(kw), Name: "module"},
			Prop: &ast.Ident{Base: at(kw), Name: "exports"},
		}
		if prop == "" {
			return me
		}
		return &ast.MemberExpr{Base: at(kw), Obj: me, Prop: &ast.Ident{Base: at(kw), Name: prop}}
	}
	switch {
	case p.atKeyword("default"):
		p.next()
		var val ast.Expr
		if p.atKeyword("function") {
			val = p.parseFunctionLit(false)
		} else if p.atKeyword("class") {
			cd := p.parseClass()
			return cd // class decl registered; export linkage dropped
		} else {
			val = p.parseAssign()
			p.consumeSemi()
		}
		return &ast.ExprStmt{Base: at(kw), X: &ast.AssignExpr{
			Base: at(kw), Target: moduleExports(""), Value: val,
		}}
	case p.atKeyword("function"):
		fd := p.parseFuncDecl().(*ast.FuncDecl)
		assign := &ast.ExprStmt{Base: at(kw), X: &ast.AssignExpr{
			Base:   at(kw),
			Target: moduleExports(fd.Fn.Name),
			Value:  &ast.Ident{Base: fd.Base, Name: fd.Fn.Name},
		}}
		return &ast.BlockStmt{Base: at(kw), Body: []ast.Stmt{fd, assign}}
	case p.atKeyword("var") || p.atKeyword("let") || p.atKeyword("const"):
		vd := p.parseVarDecl()
		p.consumeSemi()
		stmts := []ast.Stmt{vd}
		for _, d := range vd.Decls {
			if d.Name == "" {
				continue
			}
			stmts = append(stmts, &ast.ExprStmt{Base: at(kw), X: &ast.AssignExpr{
				Base:   at(kw),
				Target: moduleExports(d.Name),
				Value:  &ast.Ident{Base: vd.Base, Name: d.Name},
			}})
		}
		return &ast.BlockStmt{Base: at(kw), Body: stmts}
	case p.atKeyword("class"):
		return p.parseClass()
	case p.at(token.LBRACE):
		// export {a, b as c}
		p.next()
		var stmts []ast.Stmt
		for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
			n := p.expect(token.IDENT)
			exported := n.Lit
			if p.atIdent("as") {
				p.next()
				exported = p.expect(token.IDENT).Lit
			}
			stmts = append(stmts, &ast.ExprStmt{Base: at(kw), X: &ast.AssignExpr{
				Base:   at(kw),
				Target: moduleExports(exported),
				Value:  &ast.Ident{Base: at(n), Name: n.Lit},
			}})
			if p.at(token.COMMA) {
				p.next()
			}
		}
		p.expect(token.RBRACE)
		if p.atIdent("from") {
			p.next()
			p.expect(token.STRING)
		}
		p.consumeSemi()
		return &ast.BlockStmt{Base: at(kw), Body: stmts}
	default:
		p.errorf(p.cur().Pos, "unsupported export form")
		return nil
	}
}
