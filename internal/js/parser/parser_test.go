package parser

import (
	"testing"

	"repro/internal/js/ast"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return prog
}

func mustParseExpr(t *testing.T, src string) ast.Expr {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("ParseExpr(%q): %v", src, err)
	}
	return e
}

func TestVarDecl(t *testing.T) {
	prog := mustParse(t, "var a = 1, b;")
	vd, ok := prog.Body[0].(*ast.VarDecl)
	if !ok {
		t.Fatalf("not a VarDecl: %T", prog.Body[0])
	}
	if vd.Kind != "var" || len(vd.Decls) != 2 {
		t.Fatalf("got %+v", vd)
	}
	if vd.Decls[0].Name != "a" || vd.Decls[0].Init == nil {
		t.Errorf("decl[0] = %+v", vd.Decls[0])
	}
	if vd.Decls[1].Name != "b" || vd.Decls[1].Init != nil {
		t.Errorf("decl[1] = %+v", vd.Decls[1])
	}
}

func TestLetConst(t *testing.T) {
	prog := mustParse(t, "let x = 1; const y = 2;")
	if prog.Body[0].(*ast.VarDecl).Kind != "let" {
		t.Error("expected let")
	}
	if prog.Body[1].(*ast.VarDecl).Kind != "const" {
		t.Error("expected const")
	}
}

func TestPrecedence(t *testing.T) {
	// a + b * c parses as a + (b*c)
	e := mustParseExpr(t, "a + b * c")
	add, ok := e.(*ast.BinaryExpr)
	if !ok || add.Op != "+" {
		t.Fatalf("top = %#v", e)
	}
	mul, ok := add.R.(*ast.BinaryExpr)
	if !ok || mul.Op != "*" {
		t.Fatalf("right = %#v", add.R)
	}
}

func TestLeftAssociativity(t *testing.T) {
	// a - b - c parses as (a-b) - c
	e := mustParseExpr(t, "a - b - c")
	out, ok := e.(*ast.BinaryExpr)
	if !ok || out.Op != "-" {
		t.Fatalf("top = %#v", e)
	}
	if _, ok := out.L.(*ast.BinaryExpr); !ok {
		t.Fatalf("left should be nested: %#v", out.L)
	}
}

func TestPowRightAssociative(t *testing.T) {
	// a ** b ** c parses as a ** (b ** c)
	e := mustParseExpr(t, "a ** b ** c")
	out := e.(*ast.BinaryExpr)
	if _, ok := out.R.(*ast.BinaryExpr); !ok {
		t.Fatalf("right should be nested: %#v", out.R)
	}
}

func TestLogicalVsBinary(t *testing.T) {
	e := mustParseExpr(t, "a && b || c")
	or, ok := e.(*ast.LogicalExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top = %#v", e)
	}
	and, ok := or.L.(*ast.LogicalExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("left = %#v", or.L)
	}
}

func TestTernary(t *testing.T) {
	e := mustParseExpr(t, "a ? b : c ? d : e")
	top, ok := e.(*ast.CondExpr)
	if !ok {
		t.Fatalf("top = %#v", e)
	}
	if _, ok := top.Else.(*ast.CondExpr); !ok {
		t.Fatalf("else should be nested ternary: %#v", top.Else)
	}
}

func TestMemberChain(t *testing.T) {
	e := mustParseExpr(t, "a.b.c[d]")
	m, ok := e.(*ast.MemberExpr)
	if !ok || !m.Computed {
		t.Fatalf("top = %#v", e)
	}
	inner := m.Obj.(*ast.MemberExpr)
	if inner.Computed || keyNameT(t, inner.Prop) != "c" {
		t.Fatalf("inner = %#v", inner)
	}
}

func keyNameT(t *testing.T, e ast.Expr) string {
	t.Helper()
	id, ok := e.(*ast.Ident)
	if !ok {
		t.Fatalf("not ident: %#v", e)
	}
	return id.Name
}

func TestCallChain(t *testing.T) {
	e := mustParseExpr(t, "f(a)(b).g(c)")
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		t.Fatalf("top = %#v", e)
	}
	mem := call.Callee.(*ast.MemberExpr)
	if keyNameT(t, mem.Prop) != "g" {
		t.Fatalf("callee = %#v", mem)
	}
}

func TestNewExpr(t *testing.T) {
	e := mustParseExpr(t, "new Foo(1, 2)")
	n, ok := e.(*ast.NewExpr)
	if !ok || len(n.Args) != 2 {
		t.Fatalf("got %#v", e)
	}
	// new a.b.C() — member binds tighter.
	e = mustParseExpr(t, "new a.b.C()")
	n = e.(*ast.NewExpr)
	if _, ok := n.Callee.(*ast.MemberExpr); !ok {
		t.Fatalf("callee = %#v", n.Callee)
	}
	// new without args.
	e = mustParseExpr(t, "new Date")
	if _, ok := e.(*ast.NewExpr); !ok {
		t.Fatalf("got %#v", e)
	}
}

func TestObjectLiteral(t *testing.T) {
	e := mustParseExpr(t, `{a: 1, "b": two, [k]: 3, c, m() { return 1 }, ...rest}`)
	obj, ok := e.(*ast.ObjectLit)
	if !ok || len(obj.Props) != 6 {
		t.Fatalf("got %#v", e)
	}
	if !obj.Props[2].Computed {
		t.Error("prop[2] should be computed")
	}
	if _, ok := obj.Props[4].Value.(*ast.FunctionLit); !ok {
		t.Error("prop[4] should be a method")
	}
	if !obj.Props[5].Spread {
		t.Error("prop[5] should be spread")
	}
	// Shorthand {c} references identifier c.
	if id, ok := obj.Props[3].Value.(*ast.Ident); !ok || id.Name != "c" {
		t.Errorf("shorthand = %#v", obj.Props[3].Value)
	}
}

func TestArrayLiteral(t *testing.T) {
	e := mustParseExpr(t, "[1, , x, ...xs]")
	arr := e.(*ast.ArrayLit)
	if len(arr.Elems) != 4 {
		t.Fatalf("len = %d", len(arr.Elems))
	}
	if arr.Elems[1] != nil {
		t.Error("elision should be nil")
	}
	if _, ok := arr.Elems[3].(*ast.SpreadExpr); !ok {
		t.Error("last should be spread")
	}
}

func TestFunctionForms(t *testing.T) {
	prog := mustParse(t, `
function f(a, b) { return a + b; }
var g = function(x) { return x; };
var h = x => x + 1;
var k = (a, b) => { return a * b; };
var m = () => 0;
var n = async (q) => q;
`)
	if len(prog.Body) != 6 {
		t.Fatalf("body len = %d", len(prog.Body))
	}
	fd := prog.Body[0].(*ast.FuncDecl)
	if fd.Fn.Name != "f" || len(fd.Fn.Params) != 2 {
		t.Fatalf("f = %+v", fd.Fn)
	}
	h := prog.Body[2].(*ast.VarDecl).Decls[0].Init.(*ast.FunctionLit)
	if !h.Arrow || h.ExprBody == nil {
		t.Fatalf("h = %+v", h)
	}
	k := prog.Body[3].(*ast.VarDecl).Decls[0].Init.(*ast.FunctionLit)
	if !k.Arrow || k.Body == nil || len(k.Params) != 2 {
		t.Fatalf("k = %+v", k)
	}
	m := prog.Body[4].(*ast.VarDecl).Decls[0].Init.(*ast.FunctionLit)
	if len(m.Params) != 0 {
		t.Fatalf("m = %+v", m)
	}
}

func TestDefaultAndRestParams(t *testing.T) {
	prog := mustParse(t, "function f(a = 1, ...rest) {}")
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	if fn.Params[0].Default == nil {
		t.Error("param a should have default")
	}
	if !fn.Params[1].Rest {
		t.Error("param rest should be rest")
	}
}

func TestIfElseChain(t *testing.T) {
	prog := mustParse(t, "if (a) b; else if (c) d; else e;")
	s := prog.Body[0].(*ast.IfStmt)
	if s.Else == nil {
		t.Fatal("missing else")
	}
	inner := s.Else.(*ast.IfStmt)
	if inner.Else == nil {
		t.Fatal("missing inner else")
	}
}

func TestLoops(t *testing.T) {
	prog := mustParse(t, `
while (x) { y(); }
do { z(); } while (q);
for (var i = 0; i < 10; i++) { body(); }
for (;;) { break; }
for (var k in obj) { use(k); }
for (const v of arr) { use(v); }
for (x in obj) {}
`)
	if _, ok := prog.Body[0].(*ast.WhileStmt); !ok {
		t.Error("want while")
	}
	if _, ok := prog.Body[1].(*ast.DoWhileStmt); !ok {
		t.Error("want do-while")
	}
	f := prog.Body[2].(*ast.ForStmt)
	if f.Init == nil || f.Cond == nil || f.Post == nil {
		t.Error("three-clause for should have all clauses")
	}
	f2 := prog.Body[3].(*ast.ForStmt)
	if f2.Init != nil || f2.Cond != nil || f2.Post != nil {
		t.Error("for(;;) should have nil clauses")
	}
	fi := prog.Body[4].(*ast.ForInStmt)
	if fi.Of || fi.DeclKind != "var" {
		t.Errorf("for-in = %+v", fi)
	}
	fo := prog.Body[5].(*ast.ForInStmt)
	if !fo.Of || fo.DeclKind != "const" {
		t.Errorf("for-of = %+v", fo)
	}
	fb := prog.Body[6].(*ast.ForInStmt)
	if fb.DeclKind != "" {
		t.Errorf("bare for-in = %+v", fb)
	}
}

func TestSwitch(t *testing.T) {
	prog := mustParse(t, `switch (x) { case 1: a(); break; case 2: case 3: b(); break; default: c(); }`)
	s := prog.Body[0].(*ast.SwitchStmt)
	if len(s.Cases) != 4 {
		t.Fatalf("cases = %d", len(s.Cases))
	}
	if s.Cases[3].Test != nil {
		t.Error("default case should have nil test")
	}
	if len(s.Cases[1].Body) != 0 {
		t.Error("fallthrough case should have empty body")
	}
}

func TestTryCatchFinally(t *testing.T) {
	prog := mustParse(t, "try { a(); } catch (e) { b(e); } finally { c(); }")
	s := prog.Body[0].(*ast.TryStmt)
	if s.CatchParam != "e" || s.CatchBlock == nil || s.FinallyBody == nil {
		t.Fatalf("got %+v", s)
	}
	// Param-less catch (ES2019).
	prog = mustParse(t, "try { a(); } catch { b(); }")
	s = prog.Body[0].(*ast.TryStmt)
	if s.CatchParam != "" || s.CatchBlock == nil {
		t.Fatalf("got %+v", s)
	}
	if _, err := Parse("try { a(); }"); err == nil {
		t.Error("try without catch/finally should fail")
	}
}

func TestASI(t *testing.T) {
	prog := mustParse(t, "a = 1\nb = 2\nreturn")
	if len(prog.Body) != 3 {
		t.Fatalf("body len = %d: %#v", len(prog.Body), prog.Body)
	}
	// return\nx — restricted production: return takes no argument.
	prog = mustParse(t, "function f() { return\nx }")
	fn := prog.Body[0].(*ast.FuncDecl).Fn
	ret := fn.Body.Body[0].(*ast.ReturnStmt)
	if ret.X != nil {
		t.Error("return across newline must not take operand")
	}
	// a\n++b — ++ binds to b, not postfix on a.
	prog = mustParse(t, "a\n++b")
	if len(prog.Body) != 2 {
		t.Fatalf("restricted ++: body len = %d", len(prog.Body))
	}
}

func TestMissingSemicolonError(t *testing.T) {
	if _, err := Parse("a = 1 b = 2"); err == nil {
		t.Fatal("expected error for missing semicolon on one line")
	}
}

func TestTemplateExpr(t *testing.T) {
	e := mustParseExpr(t, "`cmd ${a} and ${b.c}`")
	tpl := e.(*ast.TemplateLiteral)
	if len(tpl.Exprs) != 2 || len(tpl.Quasis) != 3 {
		t.Fatalf("got %+v", tpl)
	}
	if _, ok := tpl.Exprs[1].(*ast.MemberExpr); !ok {
		t.Errorf("exprs[1] = %#v", tpl.Exprs[1])
	}
}

func TestOptionalChaining(t *testing.T) {
	e := mustParseExpr(t, "a?.b?.[c]?.(d)")
	call := e.(*ast.CallExpr)
	if !call.Optional {
		t.Error("call should be optional")
	}
	idx := call.Callee.(*ast.MemberExpr)
	if !idx.Optional || !idx.Computed {
		t.Error("index should be optional computed")
	}
}

func TestUpdateExpr(t *testing.T) {
	e := mustParseExpr(t, "x++")
	u := e.(*ast.UpdateExpr)
	if u.Prefix || u.Op != "++" {
		t.Fatalf("got %+v", u)
	}
	e = mustParseExpr(t, "--y")
	u = e.(*ast.UpdateExpr)
	if !u.Prefix || u.Op != "--" {
		t.Fatalf("got %+v", u)
	}
}

func TestAssignOps(t *testing.T) {
	e := mustParseExpr(t, "x += 2")
	a := e.(*ast.AssignExpr)
	if a.Op != "+" {
		t.Fatalf("op = %q", a.Op)
	}
	e = mustParseExpr(t, "x ||= y")
	a = e.(*ast.AssignExpr)
	if a.Op != "||" {
		t.Fatalf("op = %q", a.Op)
	}
	if _, err := ParseExpr("1 = x"); err == nil {
		t.Error("assignment to literal should fail")
	}
}

func TestSequenceExpr(t *testing.T) {
	e := mustParseExpr(t, "(a, b, c)")
	seq := e.(*ast.SeqExpr)
	if len(seq.Exprs) != 3 {
		t.Fatalf("got %+v", seq)
	}
}

func TestUnaryOps(t *testing.T) {
	for _, src := range []string{"!x", "-x", "+x", "~x", "typeof x", "void 0", "delete a.b"} {
		e := mustParseExpr(t, src)
		if _, ok := e.(*ast.UnaryExpr); !ok {
			t.Errorf("%q: got %#v", src, e)
		}
	}
}

func TestClassDecl(t *testing.T) {
	prog := mustParse(t, `
class Animal {
  constructor(name) { this.name = name; }
  speak() { return this.name; }
  static create(n) { return new Animal(n); }
  get label() { return this.name; }
}
class Dog extends Animal {}
`)
	cd := prog.Body[0].(*ast.ClassDecl)
	if cd.Name != "Animal" || len(cd.Methods) != 4 {
		t.Fatalf("got %+v", cd)
	}
	if cd.Methods[0].Kind != "constructor" {
		t.Error("first method should be constructor")
	}
	if !cd.Methods[2].Static {
		t.Error("create should be static")
	}
	if cd.Methods[3].Kind != "get" {
		t.Error("label should be a getter")
	}
	dog := prog.Body[1].(*ast.ClassDecl)
	if dog.Super == nil {
		t.Error("Dog should extend Animal")
	}
}

func TestLabeledStatement(t *testing.T) {
	prog := mustParse(t, "outer: for (;;) { break outer; }")
	ls := prog.Body[0].(*ast.LabeledStmt)
	if ls.Label != "outer" {
		t.Fatalf("got %+v", ls)
	}
	brk := ls.Body.(*ast.ForStmt).Body.(*ast.BlockStmt).Body[0].(*ast.BreakStmt)
	if brk.Label != "outer" {
		t.Fatalf("break label = %q", brk.Label)
	}
}

func TestImportDesugaring(t *testing.T) {
	prog := mustParse(t, `import fs from 'fs';`)
	vd := prog.Body[0].(*ast.VarDecl)
	call := vd.Decls[0].Init.(*ast.CallExpr)
	if keyNameT(t, call.Callee) != "require" {
		t.Fatalf("got %#v", call.Callee)
	}
	prog = mustParse(t, `import {exec, spawn as sp} from 'child_process';`)
	vd = prog.Body[0].(*ast.VarDecl)
	if vd.Decls[0].Pattern == nil {
		t.Fatal("named import should produce a pattern declarator")
	}
	prog = mustParse(t, `import * as path from 'path';`)
	vd = prog.Body[0].(*ast.VarDecl)
	if vd.Decls[0].Name != "path" {
		t.Fatalf("got %+v", vd.Decls[0])
	}
	prog = mustParse(t, `import 'side-effect';`)
	if _, ok := prog.Body[0].(*ast.ExprStmt); !ok {
		t.Fatal("bare import should be expression statement")
	}
}

func TestExportDesugaring(t *testing.T) {
	prog := mustParse(t, `export function run(x) { return x; }`)
	blk := prog.Body[0].(*ast.BlockStmt)
	if len(blk.Body) != 2 {
		t.Fatalf("got %d stmts", len(blk.Body))
	}
	assign := blk.Body[1].(*ast.ExprStmt).X.(*ast.AssignExpr)
	tgt := assign.Target.(*ast.MemberExpr)
	if keyNameT(t, tgt.Prop) != "run" {
		t.Fatalf("target = %#v", tgt)
	}
	prog = mustParse(t, `export default function(x) { return x; }`)
	es := prog.Body[0].(*ast.ExprStmt).X.(*ast.AssignExpr)
	if _, ok := es.Value.(*ast.FunctionLit); !ok {
		t.Fatalf("value = %#v", es.Value)
	}
	prog = mustParse(t, `export const a = 1, b = 2;`)
	blk = prog.Body[0].(*ast.BlockStmt)
	if len(blk.Body) != 3 { // decl + 2 assigns
		t.Fatalf("got %d stmts", len(blk.Body))
	}
}

func TestCommonJSExports(t *testing.T) {
	prog := mustParse(t, "module.exports = function(a) { return a; };\nexports.helper = helper;")
	if len(prog.Body) != 2 {
		t.Fatalf("body len = %d", len(prog.Body))
	}
}

func TestDestructuringDecl(t *testing.T) {
	prog := mustParse(t, "var {a, b} = obj; var [x, y] = arr;")
	vd := prog.Body[0].(*ast.VarDecl)
	if vd.Decls[0].Pattern == nil || vd.Decls[0].Init == nil {
		t.Fatalf("got %+v", vd.Decls[0])
	}
	vd2 := prog.Body[1].(*ast.VarDecl)
	if _, ok := vd2.Decls[0].Pattern.(*ast.ArrayLit); !ok {
		t.Fatalf("got %#v", vd2.Decls[0].Pattern)
	}
}

func TestGitResetExample(t *testing.T) {
	// The paper's Fig. 1a motivating example must parse.
	src := `
const { exec } = require('child_process');

function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`
	prog := mustParse(t, src)
	if len(prog.Body) != 3 {
		t.Fatalf("body len = %d", len(prog.Body))
	}
	fd := prog.Body[1].(*ast.FuncDecl)
	if fd.Fn.Name != "git_reset" || len(fd.Fn.Params) != 4 {
		t.Fatalf("got %+v", fd.Fn)
	}
}

func TestSetValueExample(t *testing.T) {
	// The paper's §5.5 case study shape must parse.
	src := `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		}
		obj = obj[p];
	}
	return obj;
}
module.exports = setValue;
`
	mustParse(t, src)
}

func TestParseErrorsHavePositions(t *testing.T) {
	_, err := Parse("var = 3;")
	if err == nil {
		t.Fatal("expected error")
	}
	pe, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type = %T", err)
	}
	if pe.Pos.Line != 1 {
		t.Errorf("pos = %v", pe.Pos)
	}
}

func TestRegexLiteralExpr(t *testing.T) {
	e := mustParseExpr(t, "/a+b/g")
	lit := e.(*ast.Literal)
	if lit.Kind != ast.LitRegex {
		t.Fatalf("got %+v", lit)
	}
}

func TestSpreadCall(t *testing.T) {
	e := mustParseExpr(t, "f(...args, x)")
	call := e.(*ast.CallExpr)
	if _, ok := call.Args[0].(*ast.SpreadExpr); !ok {
		t.Fatalf("got %#v", call.Args[0])
	}
}

func TestThisExpr(t *testing.T) {
	e := mustParseExpr(t, "this.x")
	m := e.(*ast.MemberExpr)
	if _, ok := m.Obj.(*ast.ThisExpr); !ok {
		t.Fatalf("got %#v", m.Obj)
	}
}

func TestInOperatorInsideFor(t *testing.T) {
	// `in` must act as for-in only at top level of the for header.
	prog := mustParse(t, "for (var i = ('a' in x) ? 0 : 1; i < 2; i++) {}")
	if _, ok := prog.Body[0].(*ast.ForStmt); !ok {
		t.Fatalf("got %T", prog.Body[0])
	}
}

func TestDeeplyNested(t *testing.T) {
	src := "a("
	for i := 0; i < 50; i++ {
		src += "b("
	}
	src += "x"
	for i := 0; i < 50; i++ {
		src += ")"
	}
	src += ")"
	mustParseExpr(t, src)
}

func TestWalkCount(t *testing.T) {
	prog := mustParse(t, "function f(a) { if (a) { return a + 1; } return 0; }")
	n := ast.Count(prog)
	if n < 8 {
		t.Fatalf("Count = %d, want >= 8", n)
	}
}

func TestArrowDisambiguation(t *testing.T) {
	// Parenthesized expression is NOT an arrow.
	e := mustParseExpr(t, "(a + b) * c")
	if _, ok := e.(*ast.BinaryExpr); !ok {
		t.Fatalf("got %#v", e)
	}
	// Nested parens then arrow: parenthesized parameter patterns are not
	// supported — must error cleanly, not crash.
	if _, err := ParseExpr("((a)) => a"); err == nil {
		t.Log("parenthesized arrow param accepted (fine)")
	}
}

func TestConditionalExprAssignment(t *testing.T) {
	e := mustParseExpr(t, "x = a ? f(1) : g(2)")
	a := e.(*ast.AssignExpr)
	if _, ok := a.Value.(*ast.CondExpr); !ok {
		t.Fatalf("got %#v", a.Value)
	}
}
