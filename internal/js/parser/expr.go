package parser

import (
	"strings"

	"repro/internal/js/ast"
	"repro/internal/js/lexer"
	"repro/internal/js/token"
)

// Binding powers for binary operators, following the ECMAScript grammar.
var binaryPrec = map[string]int{
	"??": 1,
	"||": 2, "&&": 3,
	"|": 4, "^": 5, "&": 6,
	"==": 7, "!=": 7, "===": 7, "!==": 7,
	"<": 8, ">": 8, "<=": 8, ">=": 8, "in": 8, "instanceof": 8,
	"<<": 9, ">>": 9, ">>>": 9,
	"+": 10, "-": 10,
	"*": 11, "/": 11, "%": 11,
	"**": 12,
}

func isLogicalOp(op string) bool { return op == "&&" || op == "||" || op == "??" }

// parseExpr parses a full expression including the comma operator.
func (p *parser) parseExpr() ast.Expr {
	first := p.parseAssign()
	if !p.at(token.COMMA) {
		return first
	}
	seq := &ast.SeqExpr{Base: ast.Base{P: first.Pos()}, Exprs: []ast.Expr{first}}
	for p.at(token.COMMA) {
		p.next()
		seq.Exprs = append(seq.Exprs, p.parseAssign())
	}
	return seq
}

// parseAssign parses an AssignmentExpression (arrow functions, ternary,
// assignment operators).
func (p *parser) parseAssign() ast.Expr {
	if !p.enter() {
		return &ast.Literal{Base: at(p.cur()), Kind: ast.LitUndefined, Value: "undefined"}
	}
	defer p.leave()
	// Arrow-function lookahead: `ident =>` or `( ... ) =>` or `async (...) =>`.
	if fn, ok := p.tryParseArrow(); ok {
		return fn
	}
	left := p.parseConditional()
	if tk := p.cur(); token.IsAssign(tk.Kind) {
		switch left.(type) {
		case *ast.Ident, *ast.MemberExpr, *ast.ObjectLit, *ast.ArrayLit:
		default:
			p.errorf(tk.Pos, "invalid assignment target")
			return left
		}
		p.next()
		right := p.parseAssign()
		return &ast.AssignExpr{
			Base: ast.Base{P: left.Pos()}, Op: token.Assignment[tk.Kind],
			Target: left, Value: right,
		}
	}
	return left
}

// tryParseArrow speculatively parses an arrow function. It reports
// ok=false (with position restored) when the tokens do not form one.
func (p *parser) tryParseArrow() (ast.Expr, bool) {
	start := p.pos
	if p.atIdent("async") && !p.peekTok(1).NewlineBefore &&
		(p.peekTok(1).Kind == token.IDENT || p.peekTok(1).Kind == token.LPAREN) {
		p.next() // treat async fns as plain fns: the analysis is flow-insensitive across awaits
	}
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		if p.peekTok(1).Kind == token.ARROW {
			p.next()
			p.next()
			fn := &ast.FunctionLit{Base: at(t), Arrow: true, Params: []ast.Param{{Name: t.Lit}}}
			p.parseArrowBody(fn)
			return fn, true
		}
	case token.LPAREN:
		if !p.parenStartsArrow() {
			break
		}
		p.next() // (
		fn := &ast.FunctionLit{Base: at(t), Arrow: true}
		fn.Params = p.parseParamListTail()
		p.expect(token.ARROW)
		p.parseArrowBody(fn)
		return fn, true
	}
	p.pos = start
	return nil, false
}

// parenStartsArrow scans forward from a '(' to the matching ')' and
// reports whether the next token is '=>'.
func (p *parser) parenStartsArrow() bool {
	depth := 0
	for i := p.pos; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case token.LPAREN, token.LBRACKET, token.LBRACE:
			depth++
		case token.RPAREN, token.RBRACKET, token.RBRACE:
			depth--
			if depth == 0 {
				return i+1 < len(p.toks) && p.toks[i+1].Kind == token.ARROW
			}
		case token.EOF:
			return false
		}
	}
	return false
}

func (p *parser) parseArrowBody(fn *ast.FunctionLit) {
	if p.at(token.LBRACE) {
		fn.Body = p.parseBlock()
	} else {
		fn.ExprBody = p.parseAssign()
	}
}

func (p *parser) parseConditional() ast.Expr {
	cond := p.parseBinary(0)
	if !p.at(token.QUESTION) {
		return cond
	}
	p.next()
	then := p.parseAssign()
	p.expect(token.COLON)
	els := p.parseAssign()
	return &ast.CondExpr{Base: ast.Base{P: cond.Pos()}, Cond: cond, Then: then, Else: els}
}

// parseBinary is a precedence climber over binaryPrec.
func (p *parser) parseBinary(minPrec int) ast.Expr {
	left := p.parseUnary()
	for {
		opTok := p.cur()
		var op string
		switch {
		case opTok.Kind == token.KEYWORD && (opTok.Lit == "in" || opTok.Lit == "instanceof"):
			if opTok.Lit == "in" && p.noIn {
				return left
			}
			op = opTok.Lit
		case opTok.Kind >= token.PLUS && opTok.Kind <= token.USHR && opTok.Lit != "":
			op = opTok.Lit
		default:
			return left
		}
		prec, ok := binaryPrec[op]
		if !ok || prec < minPrec {
			return left
		}
		p.next()
		// ** is right-associative; everything else left-associative.
		nextMin := prec + 1
		if op == "**" {
			nextMin = prec
		}
		right := p.parseBinary(nextMin)
		if isLogicalOp(op) {
			left = &ast.LogicalExpr{Base: ast.Base{P: left.Pos()}, Op: op, L: left, R: right}
		} else {
			left = &ast.BinaryExpr{Base: ast.Base{P: left.Pos()}, Op: op, L: left, R: right}
		}
	}
}

func (p *parser) parseUnary() ast.Expr {
	if !p.enter() {
		return &ast.Literal{Base: at(p.cur()), Kind: ast.LitUndefined, Value: "undefined"}
	}
	defer p.leave()
	t := p.cur()
	switch {
	case t.Kind == token.NOT || t.Kind == token.TILD || t.Kind == token.PLUS || t.Kind == token.MINUS:
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{Base: at(t), Op: t.Lit, X: x}
	case t.Kind == token.KEYWORD && (t.Lit == "typeof" || t.Lit == "void" || t.Lit == "delete"):
		p.next()
		x := p.parseUnary()
		return &ast.UnaryExpr{Base: at(t), Op: t.Lit, X: x}
	case t.Kind == token.INC || t.Kind == token.DEC:
		p.next()
		x := p.parseUnary()
		return &ast.UpdateExpr{Base: at(t), Op: t.Lit, X: x, Prefix: true}
	case t.Kind == token.IDENT && t.Lit == "await":
		// Treat `await e` as transparent: taint flows through promises.
		p.next()
		return p.parseUnary()
	case t.Kind == token.KEYWORD && t.Lit == "yield":
		p.next()
		if p.at(token.SEMI) || p.at(token.RPAREN) || p.at(token.RBRACE) || p.cur().NewlineBefore {
			return &ast.Literal{Base: at(t), Kind: ast.LitUndefined, Value: "undefined"}
		}
		if p.at(token.STAR) {
			p.next()
		}
		return p.parseAssign()
	}
	return p.parsePostfix()
}

func (p *parser) parsePostfix() ast.Expr {
	x := p.parseLeftHandSide()
	t := p.cur()
	if (t.Kind == token.INC || t.Kind == token.DEC) && !t.NewlineBefore {
		p.next()
		return &ast.UpdateExpr{Base: ast.Base{P: x.Pos()}, Op: t.Lit, X: x}
	}
	return x
}

// parseLeftHandSide parses member accesses, calls and `new` chains.
func (p *parser) parseLeftHandSide() ast.Expr {
	var x ast.Expr
	if p.atKeyword("new") {
		x = p.parseNew()
	} else {
		x = p.parsePrimary()
	}
	return p.parseCallTail(x)
}

func (p *parser) parseNew() ast.Expr {
	kw := p.expectKeyword("new")
	if p.at(token.DOT) { // new.target
		p.next()
		p.expect(token.IDENT)
		return &ast.Ident{Base: at(kw), Name: "new.target"}
	}
	var callee ast.Expr
	if p.atKeyword("new") {
		callee = p.parseNew()
	} else {
		callee = p.parsePrimary()
	}
	// Member accesses bind tighter than the new's argument list.
	for {
		switch {
		case p.at(token.DOT):
			p.next()
			callee = p.parseMemberTail(callee, false)
		case p.at(token.LBRACKET):
			p.next()
			prop := p.parseExpr()
			p.expect(token.RBRACKET)
			callee = &ast.MemberExpr{Base: ast.Base{P: callee.Pos()}, Obj: callee, Prop: prop, Computed: true}
		default:
			n := &ast.NewExpr{Base: at(kw), Callee: callee}
			if p.at(token.LPAREN) {
				n.Args = p.parseArgs()
			}
			return n
		}
	}
}

func (p *parser) parseMemberTail(obj ast.Expr, optional bool) ast.Expr {
	t := p.cur()
	if t.Kind != token.IDENT && t.Kind != token.KEYWORD {
		p.errorf(t.Pos, "expected property name, found %s", t)
		return obj
	}
	p.next()
	return &ast.MemberExpr{
		Base: ast.Base{P: obj.Pos()}, Obj: obj,
		Prop:     &ast.Ident{Base: at(t), Name: t.Lit},
		Optional: optional,
	}
}

func (p *parser) parseCallTail(x ast.Expr) ast.Expr {
	for {
		switch {
		case p.at(token.DOT):
			p.next()
			x = p.parseMemberTail(x, false)
		case p.at(token.OPTCHAIN):
			p.next()
			switch {
			case p.at(token.LPAREN):
				x = &ast.CallExpr{Base: ast.Base{P: x.Pos()}, Callee: x, Args: p.parseArgs(), Optional: true}
			case p.at(token.LBRACKET):
				p.next()
				prop := p.parseExpr()
				p.expect(token.RBRACKET)
				x = &ast.MemberExpr{Base: ast.Base{P: x.Pos()}, Obj: x, Prop: prop, Computed: true, Optional: true}
			default:
				x = p.parseMemberTail(x, true)
			}
		case p.at(token.LBRACKET):
			p.next()
			prop := p.parseExpr()
			p.expect(token.RBRACKET)
			x = &ast.MemberExpr{Base: ast.Base{P: x.Pos()}, Obj: x, Prop: prop, Computed: true}
		case p.at(token.LPAREN):
			x = &ast.CallExpr{Base: ast.Base{P: x.Pos()}, Callee: x, Args: p.parseArgs()}
		case p.at(token.TEMPLATE):
			// Tagged template: model as a call with the template pieces.
			t := p.next()
			tpl := p.buildTemplate(t)
			x = &ast.CallExpr{Base: ast.Base{P: x.Pos()}, Callee: x, Args: []ast.Expr{tpl}}
		default:
			return x
		}
	}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	for !p.at(token.RPAREN) && !p.at(token.EOF) && p.err == nil {
		if p.at(token.ELLIPSIS) {
			t := p.next()
			args = append(args, &ast.SpreadExpr{Base: at(t), X: p.parseAssign()})
		} else {
			args = append(args, p.parseAssign())
		}
		if p.at(token.COMMA) {
			p.next()
		}
	}
	p.expect(token.RPAREN)
	return args
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.cur()
	switch t.Kind {
	case token.IDENT:
		p.next()
		if t.Lit == "async" && p.atKeyword("function") {
			return p.parseFunctionLit(false)
		}
		return &ast.Ident{Base: at(t), Name: t.Lit}
	case token.NUMBER:
		p.next()
		return &ast.Literal{Base: at(t), Kind: ast.LitNumber, Value: t.Lit}
	case token.STRING:
		p.next()
		return &ast.Literal{Base: at(t), Kind: ast.LitString, Value: t.Lit}
	case token.REGEX:
		p.next()
		return &ast.Literal{Base: at(t), Kind: ast.LitRegex, Value: t.Lit}
	case token.TEMPLATE:
		p.next()
		return p.buildTemplate(t)
	case token.LPAREN:
		p.next()
		saveNoIn := p.noIn
		p.noIn = false // parens re-enable `in` inside for-headers
		x := p.parseExpr()
		p.noIn = saveNoIn
		p.expect(token.RPAREN)
		return x
	case token.LBRACKET:
		return p.parseArrayLit()
	case token.LBRACE:
		return p.parseObjectLit()
	case token.KEYWORD:
		switch t.Lit {
		case "function":
			return p.parseFunctionLit(false)
		case "this":
			p.next()
			return &ast.ThisExpr{Base: at(t)}
		case "true", "false":
			p.next()
			return &ast.Literal{Base: at(t), Kind: ast.LitBool, Value: t.Lit}
		case "null":
			p.next()
			return &ast.Literal{Base: at(t), Kind: ast.LitNull, Value: "null"}
		case "undefined":
			p.next()
			return &ast.Literal{Base: at(t), Kind: ast.LitUndefined, Value: "undefined"}
		case "new":
			return p.parseNew()
		case "class":
			// Class expression: parse and reference by name (or dummy).
			cd := p.parseClass().(*ast.ClassDecl)
			name := cd.Name
			if name == "" {
				name = "anonymousClass"
			}
			return &ast.Ident{Base: at(t), Name: name}
		case "super":
			p.next()
			return &ast.Ident{Base: at(t), Name: "super"}
		case "import":
			// Dynamic import(...) — treat the callee as an identifier.
			p.next()
			return &ast.Ident{Base: at(t), Name: "import"}
		}
	}
	p.errorf(t.Pos, "unexpected token %s", t)
	return &ast.Literal{Base: at(t), Kind: ast.LitUndefined, Value: "undefined"}
}

func (p *parser) parseArrayLit() ast.Expr {
	lb := p.expect(token.LBRACKET)
	arr := &ast.ArrayLit{Base: at(lb)}
	for !p.at(token.RBRACKET) && !p.at(token.EOF) && p.err == nil {
		if p.at(token.COMMA) { // elision
			p.next()
			arr.Elems = append(arr.Elems, nil)
			continue
		}
		if p.at(token.ELLIPSIS) {
			t := p.next()
			arr.Elems = append(arr.Elems, &ast.SpreadExpr{Base: at(t), X: p.parseAssign()})
		} else {
			arr.Elems = append(arr.Elems, p.parseAssign())
		}
		if p.at(token.COMMA) {
			p.next()
		}
	}
	p.expect(token.RBRACKET)
	return arr
}

func (p *parser) parseObjectLit() ast.Expr {
	lb := p.expect(token.LBRACE)
	obj := &ast.ObjectLit{Base: at(lb)}
	for !p.at(token.RBRACE) && !p.at(token.EOF) && p.err == nil {
		var prop ast.Property
		switch {
		case p.at(token.ELLIPSIS):
			p.next()
			prop.Spread = true
			prop.Value = p.parseAssign()
		case p.at(token.LBRACKET): // computed key
			p.next()
			prop.Key = p.parseAssign()
			prop.Computed = true
			p.expect(token.RBRACKET)
			if p.at(token.LPAREN) { // computed method
				prop.Value = p.parseMethodValue("")
			} else {
				p.expect(token.COLON)
				prop.Value = p.parseAssign()
			}
		default:
			// get/set accessors.
			if (p.atIdent("get") || p.atIdent("set")) &&
				p.peekTok(1).Kind != token.COLON && p.peekTok(1).Kind != token.COMMA &&
				p.peekTok(1).Kind != token.RBRACE && p.peekTok(1).Kind != token.LPAREN {
				p.next() // accessor kind is irrelevant to the analysis
			}
			keyTok := p.cur()
			switch keyTok.Kind {
			case token.IDENT, token.KEYWORD:
				p.next()
				prop.Key = &ast.Ident{Base: at(keyTok), Name: keyTok.Lit}
			case token.STRING:
				p.next()
				prop.Key = &ast.Literal{Base: at(keyTok), Kind: ast.LitString, Value: keyTok.Lit}
			case token.NUMBER:
				p.next()
				prop.Key = &ast.Literal{Base: at(keyTok), Kind: ast.LitNumber, Value: keyTok.Lit}
			default:
				p.errorf(keyTok.Pos, "expected property key, found %s", keyTok)
				return obj
			}
			switch {
			case p.at(token.COLON):
				p.next()
				prop.Value = p.parseAssign()
			case p.at(token.LPAREN): // shorthand method
				prop.Value = p.parseMethodValue(keyName(prop.Key))
			default: // shorthand property {a}
				prop.Value = &ast.Ident{Base: at(keyTok), Name: keyTok.Lit}
			}
		}
		obj.Props = append(obj.Props, prop)
		if p.at(token.COMMA) {
			p.next()
		} else {
			break
		}
	}
	p.expect(token.RBRACE)
	return obj
}

func keyName(e ast.Expr) string {
	switch k := e.(type) {
	case *ast.Ident:
		return k.Name
	case *ast.Literal:
		return k.Value
	}
	return ""
}

func (p *parser) parseMethodValue(name string) ast.Expr {
	fn := &ast.FunctionLit{Base: ast.Base{P: p.cur().Pos}, Name: name}
	fn.Params = p.parseParams()
	fn.Body = p.parseBlock()
	return fn
}

// parseFunctionLit parses `function name(params) { body }`.
func (p *parser) parseFunctionLit(requireName bool) *ast.FunctionLit {
	kw := p.expectKeyword("function")
	if p.at(token.STAR) { // generator
		p.next()
	}
	fn := &ast.FunctionLit{Base: at(kw)}
	if p.at(token.IDENT) {
		fn.Name = p.next().Lit
	} else if requireName {
		p.errorf(p.cur().Pos, "expected function name")
	}
	fn.Params = p.parseParams()
	fn.Body = p.parseBlock()
	return fn
}

func (p *parser) parseParams() []ast.Param {
	p.expect(token.LPAREN)
	return p.parseParamListTail()
}

// parseParamListTail parses parameters up to and including ')'; the '('
// has already been consumed.
func (p *parser) parseParamListTail() []ast.Param {
	var params []ast.Param
	for !p.at(token.RPAREN) && !p.at(token.EOF) && p.err == nil {
		var prm ast.Param
		if p.at(token.ELLIPSIS) {
			p.next()
			prm.Rest = true
		}
		switch {
		case p.at(token.IDENT):
			prm.Name = p.next().Lit
		case p.at(token.LBRACE), p.at(token.LBRACKET):
			// Destructuring parameter: bind a synthetic name; the
			// normalizer expands the pattern from it.
			pat := p.parsePrimary()
			prm.Name = "@patparam"
			prm.Default = pat // reuse Default to carry the pattern
		default:
			p.errorf(p.cur().Pos, "expected parameter, found %s", p.cur())
			return params
		}
		if p.at(token.ASSIGN) {
			p.next()
			def := p.parseAssign()
			if prm.Default == nil {
				prm.Default = def
			}
		}
		params = append(params, prm)
		if p.at(token.COMMA) {
			p.next()
		}
	}
	p.expect(token.RPAREN)
	return params
}

// buildTemplate re-scans a TEMPLATE token's raw text into a
// TemplateLiteral with quasis and embedded expressions.
func (p *parser) buildTemplate(t token.Token) ast.Expr {
	raw := t.Lit // contents between the backticks
	tpl := &ast.TemplateLiteral{Base: at(t)}
	var quasi strings.Builder
	i := 0
	for i < len(raw) {
		if raw[i] == '\\' && i+1 < len(raw) {
			quasi.WriteByte(raw[i])
			quasi.WriteByte(raw[i+1])
			i += 2
			continue
		}
		if raw[i] == '$' && i+1 < len(raw) && raw[i+1] == '{' {
			// Find matching close brace.
			depth := 1
			j := i + 2
			for j < len(raw) && depth > 0 {
				switch raw[j] {
				case '{':
					depth++
				case '}':
					depth--
				}
				j++
			}
			exprSrc := raw[i+2 : j-1]
			tpl.Quasis = append(tpl.Quasis, quasi.String())
			quasi.Reset()
			sub, err := parseSubExpr(exprSrc)
			if err != nil {
				p.errorf(t.Pos, "in template substitution: %v", err)
				return tpl
			}
			tpl.Exprs = append(tpl.Exprs, sub)
			i = j
			continue
		}
		quasi.WriteByte(raw[i])
		i++
	}
	tpl.Quasis = append(tpl.Quasis, quasi.String())
	return tpl
}

func parseSubExpr(src string) (ast.Expr, error) {
	toks, err := lexer.ScanAll(src)
	if err != nil {
		return nil, err
	}
	sp := &parser{toks: toks}
	e := sp.parseExpr()
	if sp.err != nil {
		return nil, sp.err
	}
	return e, nil
}
