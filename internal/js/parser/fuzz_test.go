package parser_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/js/normalize"
	"repro/internal/js/parser"
)

// FuzzParse asserts the front end's crash-freedom contract: any input
// either parses — in which case it must also normalize — or returns an
// error. Panics and unbounded recursion are bugs the fault-containment
// layer cannot fully absorb (Go stack overflow is not recoverable), so
// they must be caught here.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		"function f(a) { return a ? f(a - 1) : 0; }",
		"for (var k in o) { o[k] = o; }",
		"a = {b: [1, (2), {c: function () { with (x) {} }}]};",
		"((((((((((1))))))))))",
		"x => ({...y, [z]: 1})",
		"try { throw e } catch (e) { } finally { }",
		"class A extends B { constructor() { super() } }",
		"a\n/b/c",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	// The committed crash corpus seeds the known-pathological shapes.
	paths, _ := filepath.Glob("../../dataset/testdata/pathological/*.js")
	for _, p := range paths {
		if data, err := os.ReadFile(p); err == nil {
			f.Add(string(data))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.Parse(src)
		if err != nil {
			return
		}
		nprog := normalize.Normalize(prog, "fuzz.js")
		if nprog == nil {
			t.Error("normalize returned nil for a successfully parsed program")
		}
	})
}
