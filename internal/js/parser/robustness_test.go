package parser

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// TestParseNeverPanics: the parser must terminate with a tree or an
// error on arbitrary input, never panic or loop.
func TestParseNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = Parse(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestParseTokenSoup feeds random sequences of real JS tokens — much
// denser syntax coverage than random strings.
func TestParseTokenSoup(t *testing.T) {
	fragments := []string{
		"var", "x", "=", "1", ";", "function", "(", ")", "{", "}",
		"[", "]", "if", "else", "while", "for", "return", ",", ".",
		"a", "b", "+", "-", "*", "=>", "...", "'s'", "`t`", "new",
		"typeof", "class", "try", "catch", "?", ":", "&&", "||",
	}
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := 1 + r.Intn(25)
		var sb strings.Builder
		for j := 0; j < n; j++ {
			sb.WriteString(fragments[r.Intn(len(fragments))])
			sb.WriteByte(' ')
		}
		_, _ = Parse(sb.String()) // must not hang or panic
	}
}

// TestParseRealisticPackage parses a larger, realistic npm-style file
// exercising many constructs together.
func TestParseRealisticPackage(t *testing.T) {
	src := `
'use strict';

const fs = require('fs');
const path = require('path');
const { exec, spawn } = require('child_process');

const DEFAULTS = {
	retries: 3,
	timeout: 30 * 1000,
	flags: ['--quiet', '--no-color'],
};

class TaskRunner {
	constructor(options = {}) {
		this.options = Object.assign({}, DEFAULTS, options);
		this.queue = [];
		this.running = false;
	}

	add(name, fn) {
		if (typeof fn !== 'function') {
			throw new TypeError('fn must be a function, got ' + typeof fn);
		}
		this.queue.push({ name, fn, added: Date.now() });
		return this;
	}

	async runAll() {
		const results = [];
		for (const task of this.queue) {
			try {
				const value = await task.fn();
				results.push({ name: task.name, ok: true, value });
			} catch (err) {
				results.push({ name: task.name, ok: false, error: err && err.message });
				if (this.options.failFast) break;
			}
		}
		return results;
	}

	static create(opts) {
		return new TaskRunner(opts);
	}
}

function globish(dir, pattern, cb) {
	fs.readdir(dir, (err, entries) => {
		if (err) return cb(err);
		const rx = new RegExp('^' + pattern.replace(/\*/g, '.*') + '$');
		cb(null, entries.filter(e => rx.test(e)).map(e => path.join(dir, e)));
	});
}

const helpers = {
	quote(s) { return "'" + String(s).replace(/'/g, "'\\''") + "'"; },
	run(cmd, args, done) {
		let child = spawn(cmd, args || []);
		let out = '';
		child.stdout.on('data', chunk => { out += chunk; });
		child.on('close', code => done(code === 0 ? null : new Error('exit ' + code), out));
	},
};

function checkout(branch, done) {
	exec('git checkout ' + helpers.quote(branch), done);
}

module.exports = { TaskRunner, globish, checkout, helpers };
module.exports.VERSION = '2.1.0';

for (let i = 0, n = DEFAULTS.retries; i < n; i++) {
	if (i % 2 === 0) continue;
}

switch (process.platform) {
	case 'win32':
		module.exports.shell = 'cmd.exe';
		break;
	case 'darwin':
	case 'linux':
		module.exports.shell = '/bin/sh';
		break;
	default:
		module.exports.shell = null;
}

label: do {
	break label;
} while (true);
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("realistic package failed to parse: %v", err)
	}
	if len(prog.Body) < 8 {
		t.Fatalf("body statements = %d", len(prog.Body))
	}
}

// TestParseMinifiedStyle parses dense, semicolon-heavy one-liners.
func TestParseMinifiedStyle(t *testing.T) {
	src := `var a=1,b=2;function f(c){return c?a:b}var g=function(){return f(1)+f(0)};g();!function(){var x={y:[1,2,3].map(function(v){return v*2})};return x}();`
	if _, err := Parse(src); err != nil {
		t.Fatalf("minified style: %v", err)
	}
}

// TestParseErrorsDontHang: pathological inputs must fail fast.
func TestParseErrorsDontHang(t *testing.T) {
	cases := []string{
		strings.Repeat("(", 500),
		strings.Repeat("{", 500),
		strings.Repeat("[1,", 500),
		"function f(" + strings.Repeat("a,", 300),
		strings.Repeat("a.", 300),
		"var x = " + strings.Repeat("y + ", 400) + "z",
	}
	for _, src := range cases {
		_, _ = Parse(src) // termination is the assertion
	}
}
