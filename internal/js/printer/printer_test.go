package printer

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// shape renders the structural skeleton of an AST (node types, names,
// operators, literal values) independent of positions, for round-trip
// comparison.
func shape(n ast.Node) string {
	var sb strings.Builder
	ast.Walk(n, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.Ident:
			fmt.Fprintf(&sb, "I(%s)", v.Name)
		case *ast.Literal:
			fmt.Fprintf(&sb, "L(%d,%s)", v.Kind, v.Value)
		case *ast.BinaryExpr:
			fmt.Fprintf(&sb, "B(%s)", v.Op)
		case *ast.LogicalExpr:
			fmt.Fprintf(&sb, "G(%s)", v.Op)
		case *ast.UnaryExpr:
			fmt.Fprintf(&sb, "U(%s)", v.Op)
		case *ast.UpdateExpr:
			fmt.Fprintf(&sb, "P(%s,%v)", v.Op, v.Prefix)
		case *ast.AssignExpr:
			fmt.Fprintf(&sb, "A(%s)", v.Op)
		case *ast.MemberExpr:
			fmt.Fprintf(&sb, "M(%v)", v.Computed)
		case *ast.FunctionLit:
			fmt.Fprintf(&sb, "F(%s,%d)", v.Name, len(v.Params))
		case *ast.VarDecl:
			fmt.Fprintf(&sb, "V(%s,%d)", v.Kind, len(v.Decls))
		default:
			fmt.Fprintf(&sb, "%s", strings.TrimPrefix(reflect.TypeOf(x).String(), "*ast."))
		}
		sb.WriteByte(';')
		return true
	})
	return sb.String()
}

// roundTrip asserts parse(print(parse(src))) has the same shape as
// parse(src).
func roundTrip(t *testing.T, src string) {
	t.Helper()
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("initial parse: %v\n%s", err, src)
	}
	out := Print(p1)
	p2, err := parser.Parse(out)
	if err != nil {
		t.Fatalf("re-parse failed: %v\nprinted:\n%s", err, out)
	}
	if s1, s2 := shape(p1), shape(p2); s1 != s2 {
		t.Fatalf("round-trip changed the tree\nsource:\n%s\nprinted:\n%s\nshape1: %s\nshape2: %s",
			src, out, s1, s2)
	}
}

func TestRoundTripStatements(t *testing.T) {
	cases := []string{
		"var a = 1, b;",
		"let x = a + b * c;",
		"const s = 'it\\'s';",
		"if (a) { b(); } else if (c) { d(); } else { e(); }",
		"while (x < 10) { x++; }",
		"do { tick(); } while (alive);",
		"for (var i = 0; i < n; i++) { f(i); }",
		"for (;;) { break; }",
		"for (var k in obj) { use(k); }",
		"for (const v of list) { use(v); }",
		"function f(a, b = 2, ...rest) { return a; }",
		"try { risky(); } catch (e) { log(e); } finally { done(); }",
		"try { risky(); } catch { recover(); }",
		"switch (x) { case 1: a(); break; default: b(); }",
		"outer: for (;;) { continue outer; }",
		"throw new Error('nope');",
		";",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripExpressions(t *testing.T) {
	cases := []string{
		"x = a + b * c - d / e % f;",
		"x = (a + b) * c;",
		"x = a ** b ** c;",
		"x = (a ** b) ** c;",
		"x = a && b || c;",
		"x = a && (b || c);",
		"x = a ?? b;",
		"x = -a + +b - ~c;",
		"x = !done;",
		"x = typeof v;",
		"x = void 0;",
		"x = a ? b : c ? d : e;",
		"x = (a, b, c);",
		"x = a.b.c[d].e;",
		"x = f(1)(2).g(3);",
		"x = new Foo(1, 2);",
		"x = new a.b.C();",
		"x = i++;",
		"x = --j;",
		"x = [1, , 3, ...xs];",
		"x = {a: 1, 'b c': 2, [k]: 3, ...rest};",
		"x = function named(p) { return p; };",
		"x = (a, b) => a + b;",
		"x = q => ({wrapped: q});",
		"x = `head ${a + 1} tail`;",
		"x = a?.b?.[c]?.(d);",
		"x += 1; x -= 2; x *= 3; x ||= y;",
		"x = a < b;",
		"x = 'k' in obj;",
		"x = v instanceof C;",
		"x = a >> 2 << 1 >>> 3;",
		"x = a & b | c ^ d;",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripFunctionsAndClasses(t *testing.T) {
	cases := []string{
		`class A {
	constructor(x) { this.x = x; }
	get val() { return this.x; }
	set val(v) { this.x = v; }
	static make() { return new A(0); }
	plain() { return 1; }
}`,
		"class B extends A { constructor() { super(); } }",
		"var o = { m(a) { return a; }, get g() { return 1; } };",
	}
	for _, src := range cases {
		roundTrip(t, src)
	}
}

func TestRoundTripRealistic(t *testing.T) {
	src := `
const { exec } = require('child_process');
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`
	roundTrip(t, src)
}

func TestRoundTripIdempotent(t *testing.T) {
	// print(parse(print(parse(src)))) == print(parse(src)).
	src := "function f(a) { if (a) { return a * 2; } var o = {x: [1, 2]}; return o.x[0]; }"
	p1, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	out1 := Print(p1)
	p2, err := parser.Parse(out1)
	if err != nil {
		t.Fatal(err)
	}
	out2 := Print(p2)
	if out1 != out2 {
		t.Fatalf("printer not idempotent:\n%s\nvs\n%s", out1, out2)
	}
}

func TestStatementPositionObjectLiteral(t *testing.T) {
	// An expression statement starting with { must be parenthesized.
	prog := &ast.Program{Body: []ast.Stmt{
		&ast.ExprStmt{X: &ast.ObjectLit{Props: []ast.Property{{
			Key: &ast.Ident{Name: "a"}, Value: &ast.Literal{Kind: ast.LitNumber, Value: "1"},
		}}}},
	}}
	out := Print(prog)
	if !strings.HasPrefix(strings.TrimSpace(out), "(") {
		t.Fatalf("object literal statement must be parenthesized: %q", out)
	}
	if _, err := parser.Parse(out); err != nil {
		t.Fatalf("printed form must re-parse: %v", err)
	}
}

func TestQuoteJS(t *testing.T) {
	cases := map[string]string{
		"plain":   "'plain'",
		"it's":    `'it\'s'`,
		"a\nb":    `'a\nb'`,
		"back\\s": `'back\\s'`,
		"tab\t":   `'tab\t'`,
	}
	for in, want := range cases {
		if got := quoteJS(in); got != want {
			t.Errorf("quoteJS(%q) = %s, want %s", in, got, want)
		}
	}
}
