package printer

import (
	"math/rand"
	"testing"

	"repro/internal/js/ast"
	"repro/internal/js/parser"
)

// astGen builds random well-formed ASTs for the generative round-trip
// property: print(tree) must re-parse to the same shape.
type astGen struct {
	r     *rand.Rand
	depth int
}

var genIdents = []string{"a", "b", "cfg", "opts", "x9", "$v", "_tmp"}

func (g *astGen) ident() *ast.Ident {
	return &ast.Ident{Name: genIdents[g.r.Intn(len(genIdents))]}
}

func (g *astGen) literal() *ast.Literal {
	switch g.r.Intn(4) {
	case 0:
		return &ast.Literal{Kind: ast.LitNumber, Value: []string{"0", "1", "42", "3.5"}[g.r.Intn(4)]}
	case 1:
		return &ast.Literal{Kind: ast.LitString, Value: []string{"s", "a b", "it's", "x\ny"}[g.r.Intn(4)]}
	case 2:
		return &ast.Literal{Kind: ast.LitBool, Value: []string{"true", "false"}[g.r.Intn(2)]}
	default:
		return &ast.Literal{Kind: ast.LitNull, Value: "null"}
	}
}

func (g *astGen) expr() ast.Expr {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 4 {
		if g.r.Intn(2) == 0 {
			return g.ident()
		}
		return g.literal()
	}
	switch g.r.Intn(12) {
	case 0:
		return g.ident()
	case 1:
		return g.literal()
	case 2:
		ops := []string{"+", "-", "*", "/", "%", "==", "===", "<", ">", "<=", "&", "|", "^", "<<", ">>", "**"}
		return &ast.BinaryExpr{Op: ops[g.r.Intn(len(ops))], L: g.expr(), R: g.expr()}
	case 3:
		ops := []string{"&&", "||", "??"}
		return &ast.LogicalExpr{Op: ops[g.r.Intn(len(ops))], L: g.expr(), R: g.expr()}
	case 4:
		ops := []string{"!", "-", "+", "~", "typeof", "void"}
		return &ast.UnaryExpr{Op: ops[g.r.Intn(len(ops))], X: g.expr()}
	case 5:
		return &ast.CondExpr{Cond: g.expr(), Then: g.expr(), Else: g.expr()}
	case 6:
		n := g.r.Intn(3)
		call := &ast.CallExpr{Callee: g.ident()}
		for i := 0; i < n; i++ {
			call.Args = append(call.Args, g.expr())
		}
		return call
	case 7:
		if g.r.Intn(2) == 0 {
			return &ast.MemberExpr{Obj: g.expr(), Prop: g.ident()}
		}
		return &ast.MemberExpr{Obj: g.expr(), Prop: g.expr(), Computed: true}
	case 8:
		obj := &ast.ObjectLit{}
		for i := 0; i < g.r.Intn(3); i++ {
			obj.Props = append(obj.Props, ast.Property{Key: g.ident(), Value: g.expr()})
		}
		return obj
	case 9:
		arr := &ast.ArrayLit{}
		for i := 0; i < g.r.Intn(4); i++ {
			arr.Elems = append(arr.Elems, g.expr())
		}
		return arr
	case 10:
		return &ast.AssignExpr{Target: g.ident(), Value: g.expr()}
	default:
		return &ast.NewExpr{Callee: g.ident(), Args: []ast.Expr{g.expr()}}
	}
}

func (g *astGen) stmt() ast.Stmt {
	g.depth++
	defer func() { g.depth-- }()
	if g.depth > 3 {
		return &ast.ExprStmt{X: g.expr()}
	}
	switch g.r.Intn(8) {
	case 0:
		return &ast.VarDecl{Kind: []string{"var", "let", "const"}[g.r.Intn(3)],
			Decls: []ast.Declarator{{Name: g.ident().Name, Init: g.expr()}}}
	case 1:
		s := &ast.IfStmt{Cond: g.expr(), Then: g.block()}
		if g.r.Intn(2) == 0 {
			s.Else = g.block()
		}
		return s
	case 2:
		return &ast.WhileStmt{Cond: g.expr(), Body: g.block()}
	case 3:
		return &ast.ReturnStmt{X: g.expr()}
	case 4:
		return &ast.ForInStmt{DeclKind: "var", Left: g.ident(), Right: g.expr(), Body: g.block()}
	case 5:
		fn := &ast.FunctionLit{Name: "fn" + g.ident().Name,
			Params: []ast.Param{{Name: g.ident().Name}}, Body: &ast.BlockStmt{Body: []ast.Stmt{g.stmt()}}}
		return &ast.FuncDecl{Fn: fn}
	case 6:
		return &ast.ThrowStmt{X: g.expr()}
	default:
		return &ast.ExprStmt{X: g.expr()}
	}
}

func (g *astGen) block() *ast.BlockStmt {
	b := &ast.BlockStmt{}
	for i := 0; i <= g.r.Intn(3); i++ {
		b.Body = append(b.Body, g.stmt())
	}
	return b
}

// TestGenerativeRoundTrip: randomly generated ASTs survive
// print → parse with identical shapes. This cross-validates the
// printer's precedence handling against the parser's.
func TestGenerativeRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 400; seed++ {
		g := &astGen{r: rand.New(rand.NewSource(seed))}
		prog := &ast.Program{}
		n := 1 + g.r.Intn(5)
		for i := 0; i < n; i++ {
			prog.Body = append(prog.Body, g.stmt())
		}
		out := Print(prog)
		reparsed, err := parser.Parse(out)
		if err != nil {
			t.Fatalf("seed %d: printed program does not parse: %v\n%s", seed, err, out)
		}
		if s1, s2 := shape(prog), shape(reparsed); s1 != s2 {
			t.Fatalf("seed %d: shape mismatch\nprinted:\n%s\nwant %s\ngot  %s", seed, out, s1, s2)
		}
	}
}
