// Package printer renders the JavaScript AST back to source text. Its
// main consumer is the test suite: parse → print → parse must yield
// structurally identical trees (round-trip property), which validates
// both the parser and the printer against each other.
package printer

import (
	"fmt"
	"strings"

	"repro/internal/js/ast"
)

// Print renders a whole program.
func Print(prog *ast.Program) string {
	p := &printer{}
	for _, s := range prog.Body {
		p.stmt(s)
	}
	return p.sb.String()
}

// PrintExpr renders a single expression.
func PrintExpr(e ast.Expr) string {
	p := &printer{}
	p.expr(e, 0)
	return p.sb.String()
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) open(format string, args ...any) {
	p.sb.WriteString(strings.Repeat("\t", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
}

func (p *printer) raw(format string, args ...any) {
	fmt.Fprintf(&p.sb, format, args...)
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (p *printer) stmt(s ast.Stmt) {
	switch x := s.(type) {
	case *ast.VarDecl:
		p.open("%s ", x.Kind)
		for i, d := range x.Decls {
			if i > 0 {
				p.raw(", ")
			}
			if d.Pattern != nil {
				p.raw("%s", PrintExpr(d.Pattern))
			} else {
				p.raw("%s", d.Name)
			}
			if d.Init != nil {
				p.raw(" = %s", PrintExpr(d.Init))
			}
		}
		p.raw(";\n")
	case *ast.ExprStmt:
		// Parenthesize expressions that would be misparsed in statement
		// position (object literals, function expressions).
		text := PrintExpr(x.X)
		if needsStmtParens(x.X) {
			text = "(" + text + ")"
		}
		p.line("%s;", text)
	case *ast.BlockStmt:
		p.line("{")
		p.indent++
		for _, inner := range x.Body {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
	case *ast.IfStmt:
		p.open("if (%s) ", PrintExpr(x.Cond))
		p.blockOrStmt(x.Then)
		if x.Else != nil {
			p.open("else ")
			p.blockOrStmt(x.Else)
		}
	case *ast.WhileStmt:
		p.open("while (%s) ", PrintExpr(x.Cond))
		p.blockOrStmt(x.Body)
	case *ast.DoWhileStmt:
		p.open("do ")
		p.blockOrStmt(x.Body)
		p.line("while (%s);", PrintExpr(x.Cond))
	case *ast.ForStmt:
		p.open("for (")
		if x.Init != nil {
			p.raw("%s", strings.TrimRight(strings.TrimSpace(p.capture(x.Init)), ";"))
		}
		p.raw("; ")
		if x.Cond != nil {
			p.raw("%s", PrintExpr(x.Cond))
		}
		p.raw("; ")
		if x.Post != nil {
			p.raw("%s", PrintExpr(x.Post))
		}
		p.raw(") ")
		p.blockOrStmt(x.Body)
	case *ast.ForInStmt:
		kw := "in"
		if x.Of {
			kw = "of"
		}
		decl := x.DeclKind
		if decl != "" {
			decl += " "
		}
		p.open("for (%s%s %s %s) ", decl, PrintExpr(x.Left), kw, PrintExpr(x.Right))
		p.blockOrStmt(x.Body)
	case *ast.ReturnStmt:
		if x.X != nil {
			p.line("return %s;", PrintExpr(x.X))
		} else {
			p.line("return;")
		}
	case *ast.BreakStmt:
		if x.Label != "" {
			p.line("break %s;", x.Label)
		} else {
			p.line("break;")
		}
	case *ast.ContinueStmt:
		if x.Label != "" {
			p.line("continue %s;", x.Label)
		} else {
			p.line("continue;")
		}
	case *ast.FuncDecl:
		p.open("")
		p.function(x.Fn, true)
		p.raw("\n")
	case *ast.ThrowStmt:
		p.line("throw %s;", PrintExpr(x.X))
	case *ast.TryStmt:
		p.open("try ")
		p.blockOrStmt(x.Block)
		if x.CatchBlock != nil {
			if x.CatchParam != "" {
				p.open("catch (%s) ", x.CatchParam)
			} else {
				p.open("catch ")
			}
			p.blockOrStmt(x.CatchBlock)
		}
		if x.FinallyBody != nil {
			p.open("finally ")
			p.blockOrStmt(x.FinallyBody)
		}
	case *ast.SwitchStmt:
		p.line("switch (%s) {", PrintExpr(x.Disc))
		p.indent++
		for _, c := range x.Cases {
			if c.Test != nil {
				p.line("case %s:", PrintExpr(c.Test))
			} else {
				p.line("default:")
			}
			p.indent++
			for _, inner := range c.Body {
				p.stmt(inner)
			}
			p.indent--
		}
		p.indent--
		p.line("}")
	case *ast.LabeledStmt:
		p.open("%s: ", x.Label)
		p.blockOrStmt(x.Body)
	case *ast.ClassDecl:
		p.open("class %s ", x.Name)
		if x.Super != nil {
			p.raw("extends %s ", PrintExpr(x.Super))
		}
		p.raw("{\n")
		p.indent++
		for _, m := range x.Methods {
			if m.Fn == nil {
				continue
			}
			mods := ""
			if m.Static {
				mods = "static "
			}
			switch m.Kind {
			case "get", "set":
				mods += m.Kind + " "
			}
			if m.Kind == "field" {
				p.line("%s%s = %s;", mods, m.Name, PrintExpr(m.Fn.ExprBody))
				continue
			}
			p.open("%s%s(", mods, m.Name)
			p.params(m.Fn.Params)
			p.raw(") ")
			p.blockOrStmt(m.Fn.Body)
		}
		p.indent--
		p.line("}")
	case *ast.EmptyStmt:
		p.line(";")
	}
}

// capture renders a statement into a string (for for-init).
func (p *printer) capture(s ast.Stmt) string {
	sub := &printer{}
	sub.stmt(s)
	return sub.sb.String()
}

func (p *printer) blockOrStmt(s ast.Stmt) {
	if blk, ok := s.(*ast.BlockStmt); ok {
		p.raw("{\n")
		p.indent++
		for _, inner := range blk.Body {
			p.stmt(inner)
		}
		p.indent--
		p.line("}")
		return
	}
	p.raw("\n")
	p.indent++
	p.stmt(s)
	p.indent--
}

// needsStmtParens reports whether the expression's leftmost token would
// be misparsed in statement position (`{` starts a block, `function`
// starts a declaration), recursing into left-spine positions.
func needsStmtParens(e ast.Expr) bool {
	switch x := e.(type) {
	case *ast.ObjectLit:
		return true
	case *ast.FunctionLit:
		return !x.Arrow
	case *ast.AssignExpr:
		return needsStmtParens(x.Target)
	case *ast.SeqExpr:
		return len(x.Exprs) > 0 && needsStmtParens(x.Exprs[0])
	case *ast.BinaryExpr:
		return needsStmtParens(x.L)
	case *ast.LogicalExpr:
		return needsStmtParens(x.L)
	case *ast.CondExpr:
		return needsStmtParens(x.Cond)
	case *ast.CallExpr:
		return needsStmtParens(x.Callee)
	case *ast.MemberExpr:
		return needsStmtParens(x.Obj)
	case *ast.UpdateExpr:
		return !x.Prefix && needsStmtParens(x.X)
	}
	return false
}

// ---------------------------------------------------------------------------
// Expressions (precedence-aware)
// ---------------------------------------------------------------------------

// Precedence levels; higher binds tighter.
const (
	precSeq = iota
	precAssign
	precCond
	precNullish
	precOr
	precAnd
	precBitOr
	precBitXor
	precBitAnd
	precEq
	precRel
	precShift
	precAdd
	precMul
	precExp
	precUnary
	precPostfix
	precCall
	precPrimary
)

func binPrec(op string) int {
	switch op {
	case "??":
		return precNullish
	case "||":
		return precOr
	case "&&":
		return precAnd
	case "|":
		return precBitOr
	case "^":
		return precBitXor
	case "&":
		return precBitAnd
	case "==", "!=", "===", "!==":
		return precEq
	case "<", ">", "<=", ">=", "in", "instanceof":
		return precRel
	case "<<", ">>", ">>>":
		return precShift
	case "+", "-":
		return precAdd
	case "*", "/", "%":
		return precMul
	case "**":
		return precExp
	}
	return precPrimary
}

func (p *printer) expr(e ast.Expr, min int) {
	prec := exprPrec(e)
	// Object literals as operands are parenthesized defensively: a
	// closing `}` followed by `/` would lex as a regular expression.
	if _, isObj := e.(*ast.ObjectLit); isObj && min > precAssign {
		p.raw("(")
		p.exprInner(e)
		p.raw(")")
		return
	}
	if prec < min {
		p.raw("(")
		p.exprInner(e)
		p.raw(")")
		return
	}
	p.exprInner(e)
}

func exprPrec(e ast.Expr) int {
	switch x := e.(type) {
	case *ast.SeqExpr:
		return precSeq
	case *ast.AssignExpr, *ast.FunctionLit:
		return precAssign
	case *ast.CondExpr:
		return precCond
	case *ast.BinaryExpr:
		return binPrec(x.Op)
	case *ast.LogicalExpr:
		return binPrec(x.Op)
	case *ast.UnaryExpr:
		return precUnary
	case *ast.UpdateExpr:
		if x.Prefix {
			return precUnary
		}
		return precPostfix
	case *ast.CallExpr, *ast.MemberExpr, *ast.NewExpr:
		return precCall
	default:
		return precPrimary
	}
}

func (p *printer) exprInner(e ast.Expr) {
	switch x := e.(type) {
	case *ast.Ident:
		p.raw("%s", x.Name)
	case *ast.Literal:
		p.literal(x)
	case *ast.ThisExpr:
		p.raw("this")
	case *ast.TemplateLiteral:
		p.raw("`")
		for i, q := range x.Quasis {
			p.raw("%s", q)
			if i < len(x.Exprs) {
				p.raw("${%s}", PrintExpr(x.Exprs[i]))
			}
		}
		p.raw("`")
	case *ast.ObjectLit:
		p.raw("{")
		for i, prop := range x.Props {
			if i > 0 {
				p.raw(", ")
			}
			switch {
			case prop.Spread:
				p.raw("...%s", PrintExpr(prop.Value))
			case prop.Computed:
				p.raw("[%s]: %s", PrintExpr(prop.Key), PrintExpr(prop.Value))
			default:
				p.raw("%s: %s", propKeyText(prop.Key), PrintExpr(prop.Value))
			}
		}
		p.raw("}")
	case *ast.ArrayLit:
		p.raw("[")
		for i, el := range x.Elems {
			if i > 0 {
				p.raw(", ")
			}
			if el != nil {
				p.expr(el, precAssign)
			}
		}
		p.raw("]")
	case *ast.FunctionLit:
		p.function(x, false)
	case *ast.BinaryExpr:
		prec := binPrec(x.Op)
		if x.Op == "**" {
			// Right-associative: the LEFT operand needs parentheses at
			// equal precedence.
			p.expr(x.L, prec+1)
			p.raw(" %s ", x.Op)
			p.expr(x.R, prec)
			return
		}
		// Left-associative: right operand needs prec+1.
		p.expr(x.L, prec)
		p.raw(" %s ", x.Op)
		p.expr(x.R, prec+1)
	case *ast.LogicalExpr:
		prec := binPrec(x.Op)
		p.expr(x.L, prec)
		p.raw(" %s ", x.Op)
		p.expr(x.R, prec+1)
	case *ast.UnaryExpr:
		switch {
		case len(x.Op) > 1: // typeof, void, delete
			p.raw("%s ", x.Op)
		case signClash(x.Op, x.X):
			// `+ +b` must not print as `++b` (and likewise for -).
			p.raw("%s ", x.Op)
		default:
			p.raw("%s", x.Op)
		}
		p.expr(x.X, precUnary)
	case *ast.UpdateExpr:
		if x.Prefix {
			p.raw("%s", x.Op)
			p.expr(x.X, precUnary)
		} else {
			p.expr(x.X, precPostfix)
			p.raw("%s", x.Op)
		}
	case *ast.AssignExpr:
		p.expr(x.Target, precCall)
		p.raw(" %s= ", x.Op)
		p.expr(x.Value, precAssign)
	case *ast.CondExpr:
		p.expr(x.Cond, precCond+1)
		p.raw(" ? ")
		p.expr(x.Then, precAssign)
		p.raw(" : ")
		p.expr(x.Else, precAssign)
	case *ast.CallExpr:
		p.expr(x.Callee, precCall)
		if x.Optional {
			p.raw("?.")
		}
		p.raw("(")
		for i, a := range x.Args {
			if i > 0 {
				p.raw(", ")
			}
			p.expr(a, precAssign)
		}
		p.raw(")")
	case *ast.NewExpr:
		p.raw("new ")
		p.expr(x.Callee, precCall)
		p.raw("(")
		for i, a := range x.Args {
			if i > 0 {
				p.raw(", ")
			}
			p.expr(a, precAssign)
		}
		p.raw(")")
	case *ast.MemberExpr:
		// A numeric-literal receiver needs parentheses: `42.x` lexes as
		// a malformed number.
		if lit, ok := x.Obj.(*ast.Literal); ok && lit.Kind == ast.LitNumber {
			p.raw("(%s)", lit.Value)
		} else {
			p.expr(x.Obj, precCall)
		}
		switch {
		case x.Computed && x.Optional:
			p.raw("?.[%s]", PrintExpr(x.Prop))
		case x.Computed:
			p.raw("[%s]", PrintExpr(x.Prop))
		case x.Optional:
			p.raw("?.%s", identText(x.Prop))
		default:
			p.raw(".%s", identText(x.Prop))
		}
	case *ast.SeqExpr:
		for i, sub := range x.Exprs {
			if i > 0 {
				p.raw(", ")
			}
			p.expr(sub, precAssign)
		}
	case *ast.SpreadExpr:
		p.raw("...")
		p.expr(x.X, precAssign)
	}
}

func (p *printer) literal(x *ast.Literal) {
	switch x.Kind {
	case ast.LitString:
		p.raw("%s", quoteJS(x.Value))
	case ast.LitRegex:
		p.raw("%s", x.Value)
	default:
		p.raw("%s", x.Value)
	}
}

// signClash reports whether printing op directly against operand x
// would fuse into ++ or -- .
func signClash(op string, x ast.Expr) bool {
	if op != "+" && op != "-" {
		return false
	}
	switch inner := x.(type) {
	case *ast.UnaryExpr:
		return inner.Op == op
	case *ast.UpdateExpr:
		return inner.Prefix && inner.Op[:1] == op
	}
	return false
}

// quoteJS renders a JavaScript string literal with escapes.
func quoteJS(s string) string {
	var sb strings.Builder
	sb.WriteByte('\'')
	for _, r := range s {
		switch r {
		case '\'':
			sb.WriteString(`\'`)
		case '\\':
			sb.WriteString(`\\`)
		case '\n':
			sb.WriteString(`\n`)
		case '\r':
			sb.WriteString(`\r`)
		case '\t':
			sb.WriteString(`\t`)
		default:
			if r < 0x20 {
				fmt.Fprintf(&sb, `\x%02x`, r)
			} else {
				sb.WriteRune(r)
			}
		}
	}
	sb.WriteByte('\'')
	return sb.String()
}

func propKeyText(e ast.Expr) string {
	switch k := e.(type) {
	case *ast.Ident:
		return k.Name
	case *ast.Literal:
		if k.Kind == ast.LitString {
			return quoteJS(k.Value)
		}
		return k.Value
	}
	return PrintExpr(e)
}

func identText(e ast.Expr) string {
	if id, ok := e.(*ast.Ident); ok {
		return id.Name
	}
	return PrintExpr(e)
}

func (p *printer) params(params []ast.Param) {
	for i, prm := range params {
		if i > 0 {
			p.raw(", ")
		}
		if prm.Rest {
			p.raw("...")
		}
		if prm.Name == "@patparam" && prm.Default != nil {
			p.raw("%s", PrintExpr(prm.Default))
			continue
		}
		p.raw("%s", prm.Name)
		if prm.Default != nil {
			p.raw(" = %s", PrintExpr(prm.Default))
		}
	}
}

func (p *printer) function(fn *ast.FunctionLit, decl bool) {
	if fn.Arrow {
		p.raw("(")
		p.params(fn.Params)
		p.raw(") => ")
		if fn.Body != nil {
			p.raw("{\n")
			p.indent++
			for _, s := range fn.Body.Body {
				p.stmt(s)
			}
			p.indent--
			p.open("}")
		} else if fn.ExprBody != nil {
			// Parenthesize object-literal bodies.
			if _, isObj := fn.ExprBody.(*ast.ObjectLit); isObj {
				p.raw("(%s)", PrintExpr(fn.ExprBody))
			} else {
				p.expr(fn.ExprBody, precAssign)
			}
		}
		return
	}
	p.raw("function")
	if fn.Name != "" {
		p.raw(" %s", fn.Name)
	}
	p.raw("(")
	p.params(fn.Params)
	p.raw(") {\n")
	p.indent++
	if fn.Body != nil {
		for _, s := range fn.Body.Body {
			p.stmt(s)
		}
	}
	p.indent--
	p.open("}")
}
