package lexer

import "testing"

// FuzzScanAll asserts the lexer's crash-freedom contract: any byte
// sequence either tokenizes or returns an error — it never panics and
// never loops forever.
func FuzzScanAll(f *testing.F) {
	seeds := []string{
		"",
		"var x = 1;",
		"const { exec } = require('child_process');\nexec('ls ' + x);",
		"/* unterminated",
		"'unterminated",
		"`template ${a + `${nested}`} tail`",
		"a /= /regex/g; b = a / c;",
		"0x1f + 0b10 + 1e-9 + .5",
		"\"\\u{110000}\"",
		"\x00\xff\xfe",
		"obj?.prop ?? other ** 2 ?. x",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := ScanAll(src)
		if err == nil && len(toks) == 0 {
			t.Error("nil error but no tokens (EOF token expected)")
		}
	})
}
