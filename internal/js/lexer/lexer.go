// Package lexer implements a hand-written scanner for the JavaScript
// subset accepted by the parser. It handles ECMAScript string escapes,
// numeric literal forms, template literals, regular-expression literals
// (with the usual slash-disambiguation heuristic), and records the
// newline information needed for automatic semicolon insertion.
package lexer

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"

	"repro/internal/js/token"
)

// Error is a lexical error with a source position.
type Error struct {
	Pos token.Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Lexer scans a source buffer into tokens. Create one with New and call
// Next repeatedly; after the first error Next keeps returning ILLEGAL.
type Lexer struct {
	src  string
	off  int // byte offset of next rune
	line int
	col  int
	err  *Error
	// prev is the previously emitted token kind, used to decide whether
	// a '/' starts a regex literal or is the division operator.
	prev     token.Kind
	prevLit  string
	nlBefore bool
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Err returns the first lexical error encountered, if any.
func (l *Lexer) Err() error {
	if l.err == nil {
		return nil
	}
	return l.err
}

func (l *Lexer) pos() token.Pos {
	return token.Pos{Line: l.line, Column: l.col, Offset: l.off}
}

func (l *Lexer) errorf(p token.Pos, format string, args ...any) {
	if l.err == nil {
		l.err = &Error{Pos: p, Msg: fmt.Sprintf(format, args...)}
	}
}

func (l *Lexer) peek() byte {
	if l.off < len(l.src) {
		return l.src[l.off]
	}
	return 0
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n < len(l.src) {
		return l.src[l.off+n]
	}
	return 0
}

func (l *Lexer) advance() byte {
	if l.off >= len(l.src) {
		return 0
	}
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isLineTerminator(c byte) bool { return c == '\n' || c == '\r' }

func isIdentStart(c byte) bool {
	return c == '$' || c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c >= utf8.RuneSelf
}

func isIdentPart(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// skipSpace consumes whitespace and comments, recording whether a line
// terminator was crossed.
func (l *Lexer) skipSpace() {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\v' || c == '\f':
			l.advance()
		case isLineTerminator(c):
			l.nlBefore = true
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && !isLineTerminator(l.peek()) {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if isLineTerminator(l.peek()) {
					l.nlBefore = true
				}
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				l.errorf(start, "unterminated block comment")
				return
			}
		case c >= utf8.RuneSelf:
			r, size := utf8.DecodeRuneInString(l.src[l.off:])
			if unicode.IsSpace(r) {
				for i := 0; i < size; i++ {
					l.advance()
				}
				continue
			}
			return
		default:
			return
		}
	}
}

// Next returns the next token. At end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.nlBefore = false
	l.skipSpace()
	start := l.pos()
	tok := token.Token{Pos: start, NewlineBefore: l.nlBefore}
	if l.err != nil {
		tok.Kind = token.ILLEGAL
		return tok
	}
	if l.off >= len(l.src) {
		tok.Kind = token.EOF
		l.remember(tok)
		return tok
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		tok = l.scanIdent(tok)
	case isDigit(c) || (c == '.' && isDigit(l.peekAt(1))):
		tok = l.scanNumber(tok)
	case c == '"' || c == '\'':
		tok = l.scanString(tok)
	case c == '`':
		tok = l.scanTemplate(tok)
	default:
		tok = l.scanOperator(tok)
	}
	l.remember(tok)
	return tok
}

func (l *Lexer) remember(t token.Token) {
	l.prev = t.Kind
	l.prevLit = t.Lit
}

func (l *Lexer) scanIdent(tok token.Token) token.Token {
	startOff := l.off
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		l.advance()
	}
	name := l.src[startOff:l.off]
	tok.Lit = name
	tok.Raw = name
	if token.IsKeyword(name) {
		tok.Kind = token.KEYWORD
	} else {
		tok.Kind = token.IDENT
	}
	return tok
}

func (l *Lexer) scanNumber(tok token.Token) token.Token {
	startOff := l.off
	tok.Kind = token.NUMBER
	c := l.peek()
	if c == '0' && (l.peekAt(1) == 'x' || l.peekAt(1) == 'X') {
		l.advance()
		l.advance()
		if !isHexDigit(l.peek()) {
			l.errorf(tok.Pos, "malformed hex literal")
		}
		for isHexDigit(l.peek()) || l.peek() == '_' {
			l.advance()
		}
	} else if c == '0' && (l.peekAt(1) == 'o' || l.peekAt(1) == 'O') {
		l.advance()
		l.advance()
		for l.peek() >= '0' && l.peek() <= '7' {
			l.advance()
		}
	} else if c == '0' && (l.peekAt(1) == 'b' || l.peekAt(1) == 'B') {
		l.advance()
		l.advance()
		for l.peek() == '0' || l.peek() == '1' {
			l.advance()
		}
	} else {
		for isDigit(l.peek()) || l.peek() == '_' {
			l.advance()
		}
		if l.peek() == '.' {
			l.advance()
			for isDigit(l.peek()) || l.peek() == '_' {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !isDigit(l.peek()) {
				l.errorf(tok.Pos, "malformed exponent")
			}
			for isDigit(l.peek()) {
				l.advance()
			}
		}
	}
	if isIdentStart(l.peek()) && l.peek() != 'n' { // BigInt suffix tolerated
		l.errorf(tok.Pos, "identifier starts immediately after numeric literal")
	}
	if l.peek() == 'n' {
		l.advance()
	}
	tok.Lit = strings.ReplaceAll(l.src[startOff:l.off], "_", "")
	tok.Raw = l.src[startOff:l.off]
	return tok
}

func (l *Lexer) scanString(tok token.Token) token.Token {
	quote := l.advance()
	startOff := l.off - 1
	var sb strings.Builder
	for {
		if l.off >= len(l.src) {
			l.errorf(tok.Pos, "unterminated string literal")
			tok.Kind = token.ILLEGAL
			return tok
		}
		c := l.peek()
		if isLineTerminator(c) {
			l.errorf(tok.Pos, "unterminated string literal")
			tok.Kind = token.ILLEGAL
			return tok
		}
		l.advance()
		if c == quote {
			break
		}
		if c == '\\' {
			l.scanEscape(&sb, tok.Pos)
			continue
		}
		sb.WriteByte(c)
	}
	tok.Kind = token.STRING
	tok.Lit = sb.String()
	tok.Raw = l.src[startOff:l.off]
	return tok
}

// scanEscape decodes one escape sequence after a backslash into sb.
func (l *Lexer) scanEscape(sb *strings.Builder, start token.Pos) {
	if l.off >= len(l.src) {
		l.errorf(start, "unterminated escape sequence")
		return
	}
	c := l.advance()
	switch c {
	case 'n':
		sb.WriteByte('\n')
	case 't':
		sb.WriteByte('\t')
	case 'r':
		sb.WriteByte('\r')
	case 'b':
		sb.WriteByte('\b')
	case 'f':
		sb.WriteByte('\f')
	case 'v':
		sb.WriteByte('\v')
	case '0':
		if !isDigit(l.peek()) {
			sb.WriteByte(0)
		}
	case 'x':
		v := 0
		for i := 0; i < 2; i++ {
			if !isHexDigit(l.peek()) {
				l.errorf(start, "malformed \\x escape")
				return
			}
			v = v*16 + hexVal(l.advance())
		}
		sb.WriteRune(rune(v))
	case 'u':
		if l.peek() == '{' {
			l.advance()
			v := 0
			for isHexDigit(l.peek()) {
				v = v*16 + hexVal(l.advance())
			}
			if l.peek() != '}' {
				l.errorf(start, "malformed \\u{...} escape")
				return
			}
			l.advance()
			sb.WriteRune(rune(v))
		} else {
			v := 0
			for i := 0; i < 4; i++ {
				if !isHexDigit(l.peek()) {
					l.errorf(start, "malformed \\u escape")
					return
				}
				v = v*16 + hexVal(l.advance())
			}
			sb.WriteRune(rune(v))
		}
	case '\n', '\r':
		// Line continuation: contributes nothing.
	default:
		sb.WriteByte(c)
	}
}

func hexVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'f':
		return int(c-'a') + 10
	default:
		return int(c-'A') + 10
	}
}

// scanTemplate scans a whole template literal including embedded
// ${...} substitutions (with nested-brace and nested-template tracking).
// The parser splits Raw back into quasis and expressions.
func (l *Lexer) scanTemplate(tok token.Token) token.Token {
	startOff := l.off
	l.advance() // consume `
	depth := 0  // ${ } nesting
	for {
		if l.off >= len(l.src) {
			l.errorf(tok.Pos, "unterminated template literal")
			tok.Kind = token.ILLEGAL
			return tok
		}
		c := l.advance()
		switch {
		case c == '\\':
			if l.off < len(l.src) {
				l.advance()
			}
		case c == '`' && depth == 0:
			tok.Kind = token.TEMPLATE
			tok.Raw = l.src[startOff:l.off]
			tok.Lit = tok.Raw[1 : len(tok.Raw)-1]
			return tok
		case c == '$' && l.peek() == '{':
			l.advance()
			depth++
		case c == '}' && depth > 0:
			depth--
		case c == '{' && depth > 0:
			depth++
		}
	}
}

// regexAllowed reports whether a '/' in the current context begins a
// regular expression literal rather than division.
func (l *Lexer) regexAllowed() bool {
	switch l.prev {
	case token.IDENT, token.NUMBER, token.STRING, token.TEMPLATE,
		token.REGEX, token.RPAREN, token.RBRACKET:
		return false
	case token.KEYWORD:
		// After `this`, `true`, etc. a slash is division; after
		// `return`, `typeof`, ... it begins a regex.
		switch l.prevLit {
		case "this", "true", "false", "null", "undefined", "super":
			return false
		}
		return true
	case token.RBRACE:
		// Ambiguous; treat as regex-allowed (block ends are far more
		// common than object-literal ends in statement position).
		return true
	default:
		return true
	}
}

func (l *Lexer) scanRegex(tok token.Token) token.Token {
	startOff := l.off
	l.advance() // consume '/'
	inClass := false
	for {
		if l.off >= len(l.src) || isLineTerminator(l.peek()) {
			l.errorf(tok.Pos, "unterminated regular expression")
			tok.Kind = token.ILLEGAL
			return tok
		}
		c := l.advance()
		switch {
		case c == '\\':
			if l.off < len(l.src) && !isLineTerminator(l.peek()) {
				l.advance()
			}
		case c == '[':
			inClass = true
		case c == ']':
			inClass = false
		case c == '/' && !inClass:
			for isIdentPart(l.peek()) {
				l.advance()
			}
			tok.Kind = token.REGEX
			tok.Raw = l.src[startOff:l.off]
			tok.Lit = tok.Raw
			return tok
		}
	}
}

// scanOperator handles punctuation and operators, longest match first.
func (l *Lexer) scanOperator(tok token.Token) token.Token {
	type op struct {
		text string
		kind token.Kind
	}
	// Ordered longest-first within each leading byte.
	c := l.peek()
	if c == '/' && l.regexAllowed() {
		return l.scanRegex(tok)
	}
	ops := []op{
		{">>>=", token.USHR_ASSIGN},
		{"...", token.ELLIPSIS}, {"===", token.STRICTEQ},
		{"!==", token.STRICTNEQ}, {">>>", token.USHR},
		{"<<=", token.SHL_ASSIGN}, {">>=", token.SHR_ASSIGN},
		{"**=", token.POW_ASSIGN}, {"&&=", token.LOGAND_ASSIGN},
		{"||=", token.LOGOR_ASSIGN}, {"??=", token.NULLISH_ASSIGN},
		{"=>", token.ARROW}, {"==", token.EQ}, {"!=", token.NEQ},
		{"<=", token.LEQ}, {">=", token.GEQ}, {"&&", token.LOGAND},
		{"||", token.LOGOR}, {"??", token.NULLISH}, {"?.", token.OPTCHAIN},
		{"++", token.INC}, {"--", token.DEC}, {"+=", token.PLUS_ASSIGN},
		{"-=", token.MINUS_ASSIGN}, {"*=", token.STAR_ASSIGN},
		{"/=", token.SLASH_ASSIGN}, {"%=", token.PERCENT_ASSIGN},
		{"&=", token.AND_ASSIGN}, {"|=", token.OR_ASSIGN},
		{"^=", token.XOR_ASSIGN}, {"**", token.POW}, {"<<", token.SHL},
		{">>", token.SHR},
		{"(", token.LPAREN}, {")", token.RPAREN}, {"{", token.LBRACE},
		{"}", token.RBRACE}, {"[", token.LBRACKET}, {"]", token.RBRACKET},
		{";", token.SEMI}, {",", token.COMMA}, {".", token.DOT},
		{":", token.COLON}, {"?", token.QUESTION}, {"=", token.ASSIGN},
		{"+", token.PLUS}, {"-", token.MINUS}, {"*", token.STAR},
		{"/", token.SLASH}, {"%", token.PERCENT}, {"<", token.LT},
		{">", token.GT}, {"!", token.NOT}, {"&", token.AND},
		{"|", token.OR}, {"^", token.XOR}, {"~", token.TILD},
	}
	rest := l.src[l.off:]
	for _, o := range ops {
		if strings.HasPrefix(rest, o.text) {
			for range o.text {
				l.advance()
			}
			tok.Kind = o.kind
			tok.Lit = o.text
			tok.Raw = o.text
			return tok
		}
	}
	p := l.pos()
	r, size := utf8.DecodeRuneInString(rest)
	for i := 0; i < size; i++ {
		l.advance()
	}
	l.errorf(p, "unexpected character %q", r)
	tok.Kind = token.ILLEGAL
	tok.Lit = string(r)
	return tok
}

// ScanAll tokenizes the whole input, returning all tokens up to and
// including EOF, or the first error.
func ScanAll(src string) ([]token.Token, error) {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		if l.Err() != nil {
			return out, l.Err()
		}
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, nil
		}
	}
}
