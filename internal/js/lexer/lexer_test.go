package lexer

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/js/token"
)

func kinds(t *testing.T, src string) []token.Kind {
	t.Helper()
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatalf("ScanAll(%q): %v", src, err)
	}
	var ks []token.Kind
	for _, tk := range toks {
		ks = append(ks, tk.Kind)
	}
	return ks
}

func lits(t *testing.T, src string) []string {
	t.Helper()
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatalf("ScanAll(%q): %v", src, err)
	}
	var ls []string
	for _, tk := range toks {
		if tk.Kind == token.EOF {
			break
		}
		ls = append(ls, tk.Lit)
	}
	return ls
}

func eqKinds(a []token.Kind, b ...token.Kind) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIdentifiersAndKeywords(t *testing.T) {
	ks := kinds(t, "var x = foo")
	if !eqKinds(ks, token.KEYWORD, token.IDENT, token.ASSIGN, token.IDENT, token.EOF) {
		t.Fatalf("got %v", ks)
	}
}

func TestDollarUnderscoreIdent(t *testing.T) {
	ls := lits(t, "$ _ $foo _bar a$b")
	want := []string{"$", "_", "$foo", "_bar", "a$b"}
	for i, w := range want {
		if ls[i] != w {
			t.Errorf("lit[%d] = %q, want %q", i, ls[i], w)
		}
	}
}

func TestNumberForms(t *testing.T) {
	cases := map[string]string{
		"0":       "0",
		"123":     "123",
		"1.5":     "1.5",
		".5":      ".5",
		"1e3":     "1e3",
		"1.5e-3":  "1.5e-3",
		"0x1F":    "0x1F",
		"0b1010":  "0b1010",
		"0o777":   "0o777",
		"1_000":   "1000",
		"123n":    "123n",
		"1.5E+10": "1.5E+10",
	}
	for src, want := range cases {
		toks, err := ScanAll(src)
		if err != nil {
			t.Errorf("ScanAll(%q): %v", src, err)
			continue
		}
		if toks[0].Kind != token.NUMBER {
			t.Errorf("%q: kind = %v, want NUMBER", src, toks[0].Kind)
		}
		if toks[0].Lit != want {
			t.Errorf("%q: lit = %q, want %q", src, toks[0].Lit, want)
		}
	}
}

func TestStringEscapes(t *testing.T) {
	cases := map[string]string{
		`"abc"`:        "abc",
		`'abc'`:        "abc",
		`"a\nb"`:       "a\nb",
		`"a\tb"`:       "a\tb",
		`"a\\b"`:       `a\b`,
		`"a\"b"`:       `a"b`,
		`'a\'b'`:       "a'b",
		`"\x41"`:       "A",
		`"A"`:          "A",
		`"\u{1F600}"`:  "\U0001F600",
		`"quote\""`:    `quote"`,
		`"\0"`:         "\x00",
		`"mixed\r\n!"`: "mixed\r\n!",
	}
	for src, want := range cases {
		toks, err := ScanAll(src)
		if err != nil {
			t.Errorf("ScanAll(%q): %v", src, err)
			continue
		}
		if toks[0].Lit != want {
			t.Errorf("%q: lit = %q, want %q", src, toks[0].Lit, want)
		}
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := ScanAll(`"abc`); err == nil {
		t.Fatal("expected error for unterminated string")
	}
	if _, err := ScanAll("\"ab\nc\""); err == nil {
		t.Fatal("expected error for newline in string")
	}
}

func TestTemplateLiteral(t *testing.T) {
	toks, err := ScanAll("`a ${b} c`")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.TEMPLATE {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
	if toks[0].Lit != "a ${b} c" {
		t.Fatalf("lit = %q", toks[0].Lit)
	}
}

func TestNestedTemplate(t *testing.T) {
	src := "`outer ${ `inner ${x}` } end`"
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.TEMPLATE {
		t.Fatalf("kind = %v", toks[0].Kind)
	}
	if toks[1].Kind != token.EOF {
		t.Fatalf("expected single template token, next = %v", toks[1])
	}
}

func TestTemplateWithBraces(t *testing.T) {
	src := "`${ {a: 1} } done`"
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != token.TEMPLATE || toks[1].Kind != token.EOF {
		t.Fatalf("got %v", toks)
	}
}

func TestRegexVsDivision(t *testing.T) {
	// After an identifier, '/' is division.
	ks := kinds(t, "a / b")
	if !eqKinds(ks, token.IDENT, token.SLASH, token.IDENT, token.EOF) {
		t.Fatalf("division: got %v", ks)
	}
	// After '=', '/' begins a regex.
	toks, err := ScanAll(`x = /ab+c/gi`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.REGEX {
		t.Fatalf("regex: got %v", toks[2])
	}
	if toks[2].Lit != "/ab+c/gi" {
		t.Fatalf("regex lit = %q", toks[2].Lit)
	}
	// Regex with a slash inside a character class.
	toks, err = ScanAll(`x = /[/]/`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[2].Kind != token.REGEX {
		t.Fatalf("class regex: got %v", toks[2])
	}
	// After return keyword, regex.
	toks, err = ScanAll(`return /x/`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != token.REGEX {
		t.Fatalf("return regex: got %v", toks[1])
	}
	// After ')', division.
	ks = kinds(t, "(a) / b")
	if ks[3] != token.SLASH {
		t.Fatalf("paren division: got %v", ks)
	}
}

func TestComments(t *testing.T) {
	ks := kinds(t, "a // comment\nb /* block */ c")
	if !eqKinds(ks, token.IDENT, token.IDENT, token.IDENT, token.EOF) {
		t.Fatalf("got %v", ks)
	}
	if _, err := ScanAll("/* unterminated"); err == nil {
		t.Fatal("expected error for unterminated block comment")
	}
}

func TestNewlineBefore(t *testing.T) {
	toks, err := ScanAll("a\nb c")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].NewlineBefore {
		t.Error("first token should not have NewlineBefore")
	}
	if !toks[1].NewlineBefore {
		t.Error("token after newline should have NewlineBefore")
	}
	if toks[2].NewlineBefore {
		t.Error("same-line token should not have NewlineBefore")
	}
	// Newline inside a block comment counts.
	toks, err = ScanAll("a /* \n */ b")
	if err != nil {
		t.Fatal(err)
	}
	if !toks[1].NewlineBefore {
		t.Error("newline inside block comment should set NewlineBefore")
	}
}

func TestOperatorMaximalMunch(t *testing.T) {
	cases := map[string]token.Kind{
		">>>=": token.USHR_ASSIGN, ">>>": token.USHR, ">>": token.SHR,
		"===": token.STRICTEQ, "==": token.EQ, "=": token.ASSIGN,
		"!==": token.STRICTNEQ, "!=": token.NEQ, "!": token.NOT,
		"**": token.POW, "*": token.STAR, "=>": token.ARROW,
		"...": token.ELLIPSIS, "?.": token.OPTCHAIN, "??": token.NULLISH,
		"&&=": token.LOGAND_ASSIGN, "||=": token.LOGOR_ASSIGN,
	}
	for src, want := range cases {
		toks, err := ScanAll(src)
		if err != nil {
			t.Errorf("ScanAll(%q): %v", src, err)
			continue
		}
		if toks[0].Kind != want {
			t.Errorf("%q: kind = %v, want %v", src, toks[0].Kind, want)
		}
	}
}

func TestQuestionDotVsTernary(t *testing.T) {
	// `a ? .5 : 1` must not lex `?.`… actually ECMAScript requires a
	// lookahead here; our lexer scans `?.` greedily, so the ternary with
	// a leading-dot number needs parens/space — document the limitation
	// by asserting current behaviour on the unambiguous form.
	ks := kinds(t, "a ? b : c")
	if !eqKinds(ks, token.IDENT, token.QUESTION, token.IDENT, token.COLON, token.IDENT, token.EOF) {
		t.Fatalf("got %v", ks)
	}
}

func TestPositions(t *testing.T) {
	toks, err := ScanAll("a\n  bb")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Column != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Column != 3 {
		t.Errorf("bb at %v", toks[1].Pos)
	}
}

func TestIllegalCharacter(t *testing.T) {
	if _, err := ScanAll("a # b"); err == nil {
		t.Fatal("expected error for '#'")
	}
}

func TestEOFIsSticky(t *testing.T) {
	l := New("x")
	l.Next()
	for i := 0; i < 3; i++ {
		if tk := l.Next(); tk.Kind != token.EOF {
			t.Fatalf("Next after end = %v, want EOF", tk)
		}
	}
}

func TestUnicodeIdentifier(t *testing.T) {
	ls := lits(t, "café π")
	if ls[0] != "café" || ls[1] != "π" {
		t.Fatalf("got %v", ls)
	}
}

// TestScanNeverPanics feeds random strings to the scanner; it must
// terminate with either tokens or an error, never panic or loop.
func TestScanNeverPanics(t *testing.T) {
	f := func(s string) bool {
		_, _ = ScanAll(s)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestScanAllTokensCoverInput checks that for well-formed operator soup the
// concatenated raw text matches the input with whitespace removed.
func TestScanAllTokensCoverInput(t *testing.T) {
	src := "a+b*c===d&&e||f??g"
	toks, err := ScanAll(src)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, tk := range toks {
		sb.WriteString(tk.Raw)
	}
	if sb.String() != src {
		t.Fatalf("raw concat = %q, want %q", sb.String(), src)
	}
}
