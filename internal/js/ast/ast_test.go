package ast

import (
	"testing"

	"repro/internal/js/token"
)

func id(name string) *Ident { return &Ident{Name: name} }

func TestWalkVisitsAllExpressionForms(t *testing.T) {
	// Build one expression containing every expression node type.
	expr := &SeqExpr{Exprs: []Expr{
		&BinaryExpr{Op: "+", L: id("a"), R: &Literal{Kind: LitNumber, Value: "1"}},
		&LogicalExpr{Op: "&&", L: id("b"), R: id("c")},
		&UnaryExpr{Op: "!", X: id("d")},
		&UpdateExpr{Op: "++", X: id("e")},
		&AssignExpr{Target: id("f"), Value: id("g")},
		&CondExpr{Cond: id("h"), Then: id("i"), Else: id("j")},
		&CallExpr{Callee: id("k"), Args: []Expr{id("l")}},
		&NewExpr{Callee: id("m"), Args: []Expr{id("n")}},
		&MemberExpr{Obj: id("o"), Prop: id("p")},
		&ThisExpr{},
		&SpreadExpr{X: id("q")},
		&TemplateLiteral{Quasis: []string{"x", "y"}, Exprs: []Expr{id("r")}},
		&ObjectLit{Props: []Property{{Key: id("s"), Value: id("t")}}},
		&ArrayLit{Elems: []Expr{id("u"), nil}},
		&FunctionLit{Params: []Param{{Name: "v"}},
			Body: &BlockStmt{Body: []Stmt{&ReturnStmt{X: id("w")}}}},
	}}
	names := map[string]bool{}
	Walk(expr, func(n Node) bool {
		if i, ok := n.(*Ident); ok {
			names[i.Name] = true
		}
		return true
	})
	for _, want := range []string{"a", "b", "d", "e", "f", "g", "h", "k", "l", "m", "o", "p", "q", "r", "s", "t", "u", "w"} {
		if !names[want] {
			t.Errorf("walk missed identifier %q", want)
		}
	}
}

func TestWalkVisitsAllStatementForms(t *testing.T) {
	prog := &Program{Body: []Stmt{
		&VarDecl{Kind: "var", Decls: []Declarator{{Name: "a", Init: id("x1")}}},
		&ExprStmt{X: id("x2")},
		&IfStmt{Cond: id("x3"), Then: &ExprStmt{X: id("x4")}, Else: &ExprStmt{X: id("x5")}},
		&WhileStmt{Cond: id("x6"), Body: &ExprStmt{X: id("x7")}},
		&DoWhileStmt{Body: &ExprStmt{X: id("x8")}, Cond: id("x9")},
		&ForStmt{Init: &ExprStmt{X: id("y1")}, Cond: id("y2"), Post: id("y3"), Body: &ExprStmt{X: id("y4")}},
		&ForInStmt{Left: id("y5"), Right: id("y6"), Body: &ExprStmt{X: id("y7")}},
		&ReturnStmt{X: id("y8")},
		&ThrowStmt{X: id("y9")},
		&TryStmt{Block: &BlockStmt{Body: []Stmt{&ExprStmt{X: id("z1")}}},
			CatchBlock: &BlockStmt{Body: []Stmt{&ExprStmt{X: id("z2")}}}},
		&SwitchStmt{Disc: id("z3"), Cases: []SwitchCase{{Test: id("z4"), Body: []Stmt{&ExprStmt{X: id("z5")}}}}},
		&LabeledStmt{Label: "l", Body: &ExprStmt{X: id("z6")}},
		&FuncDecl{Fn: &FunctionLit{Name: "f", Body: &BlockStmt{Body: []Stmt{&ExprStmt{X: id("z7")}}}}},
		&ClassDecl{Name: "C", Super: id("z8"), Methods: []ClassMethod{{Name: "m",
			Fn: &FunctionLit{Body: &BlockStmt{Body: []Stmt{&ExprStmt{X: id("z9")}}}}}}},
		&BreakStmt{},
		&ContinueStmt{},
		&EmptyStmt{},
	}}
	names := map[string]bool{}
	Walk(prog, func(n Node) bool {
		if i, ok := n.(*Ident); ok {
			names[i.Name] = true
		}
		return true
	})
	for _, want := range []string{"x1", "x2", "x3", "x4", "x5", "x6", "x7", "x8", "x9",
		"y1", "y2", "y3", "y4", "y5", "y6", "y7", "y8", "y9",
		"z1", "z2", "z3", "z4", "z5", "z6", "z7", "z8", "z9"} {
		if !names[want] {
			t.Errorf("walk missed %q", want)
		}
	}
}

func TestWalkPrune(t *testing.T) {
	prog := &Program{Body: []Stmt{
		&IfStmt{Cond: id("cond"), Then: &ExprStmt{X: id("inside")}},
	}}
	var visited []string
	Walk(prog, func(n Node) bool {
		if _, ok := n.(*IfStmt); ok {
			return false // prune
		}
		if i, ok := n.(*Ident); ok {
			visited = append(visited, i.Name)
		}
		return true
	})
	if len(visited) != 0 {
		t.Fatalf("pruned children visited: %v", visited)
	}
}

func TestWalkNilSafety(t *testing.T) {
	// nil Else, nil catch/finally blocks, nil exprs must not panic.
	prog := &Program{Body: []Stmt{
		&IfStmt{Cond: id("c"), Then: &EmptyStmt{}},
		&TryStmt{Block: &BlockStmt{}, FinallyBody: nil, CatchBlock: nil},
		&ReturnStmt{},
		&ForStmt{Body: &EmptyStmt{}},
		&FuncDecl{Fn: &FunctionLit{ExprBody: id("e")}},
	}}
	Walk(prog, func(Node) bool { return true })
	Walk(nil, func(Node) bool { return true })
}

func TestCount(t *testing.T) {
	prog := &Program{Body: []Stmt{&ExprStmt{X: &BinaryExpr{Op: "+", L: id("a"), R: id("b")}}}}
	// Program, ExprStmt, BinaryExpr, 2 Idents = 5.
	if got := Count(prog); got != 5 {
		t.Fatalf("Count = %d, want 5", got)
	}
}

func TestPosAccessor(t *testing.T) {
	n := &Ident{Base: Base{P: token.Pos{Line: 4, Column: 2}}, Name: "x"}
	if n.Pos().Line != 4 || n.Pos().Column != 2 {
		t.Fatalf("pos = %v", n.Pos())
	}
}
