// Package ast defines an ESTree-flavoured abstract syntax tree for the
// JavaScript subset produced by the parser, plus a generic walker.
package ast

import "repro/internal/js/token"

// Node is implemented by every AST node.
type Node interface {
	Pos() token.Pos
	node()
}

type Base struct{ P token.Pos }

func (b Base) Pos() token.Pos { return b.P }
func (Base) node()            {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

// Expr is implemented by all expression nodes.
type Expr interface {
	Node
	expr()
}

// Ident is an identifier reference.
type Ident struct {
	Base
	Name string
}

// Literal is a primitive literal. Kind distinguishes the flavours.
type Literal struct {
	Base
	Kind  LiteralKind
	Value string // decoded string value / numeric text / "true" etc.
}

// LiteralKind enumerates primitive literal flavours.
type LiteralKind int

// Literal kinds.
const (
	LitNumber LiteralKind = iota
	LitString
	LitBool
	LitNull
	LitUndefined
	LitRegex
)

// TemplateLiteral is `a ${b} c`: alternating quasis (len = len(Exprs)+1).
type TemplateLiteral struct {
	Base
	Quasis []string
	Exprs  []Expr
}

// ObjectLit is an object literal { a: 1, [k]: v, m() {} }.
type ObjectLit struct {
	Base
	Props []Property
}

// Property is one member of an object literal.
type Property struct {
	Key      Expr // Ident, Literal, or computed Expr
	Value    Expr
	Computed bool
	Spread   bool // {...x}
}

// ArrayLit is an array literal [1, 2, x].
type ArrayLit struct {
	Base
	Elems []Expr // nil entries for elisions
}

// FunctionLit is a function expression or arrow function.
type FunctionLit struct {
	Base
	Name   string // "" when anonymous
	Params []Param
	Body   *BlockStmt
	Arrow  bool
	// ExprBody holds the body of `x => expr` arrows; Body is nil then.
	ExprBody Expr
}

// Param is a function parameter (identifier, possibly rest or defaulted).
type Param struct {
	Name    string
	Rest    bool
	Default Expr // nil when no default
}

// BinaryExpr is a binary operation (arithmetic, comparison, in, instanceof).
type BinaryExpr struct {
	Base
	Op   string
	L, R Expr
}

// LogicalExpr is &&, || or ??.
type LogicalExpr struct {
	Base
	Op   string
	L, R Expr
}

// UnaryExpr is a prefix unary operation (!, -, +, ~, typeof, void, delete).
type UnaryExpr struct {
	Base
	Op string
	X  Expr
}

// UpdateExpr is ++/-- in prefix or postfix position.
type UpdateExpr struct {
	Base
	Op     string // "++" or "--"
	X      Expr
	Prefix bool
}

// AssignExpr is an assignment, possibly compound (Op holds "+" for +=).
type AssignExpr struct {
	Base
	Op     string // "" for plain =
	Target Expr   // Ident or MemberExpr
	Value  Expr
}

// CondExpr is the ternary c ? t : f.
type CondExpr struct {
	Base
	Cond, Then, Else Expr
}

// CallExpr is a function or method call.
type CallExpr struct {
	Base
	Callee   Expr
	Args     []Expr
	Optional bool // a?.(b)
}

// NewExpr is `new Callee(args)`.
type NewExpr struct {
	Base
	Callee Expr
	Args   []Expr
}

// MemberExpr is property access a.b or a[b].
type MemberExpr struct {
	Base
	Obj      Expr
	Prop     Expr // Ident when !Computed, arbitrary Expr when Computed
	Computed bool
	Optional bool // a?.b
}

// SeqExpr is the comma operator (a, b, c).
type SeqExpr struct {
	Base
	Exprs []Expr
}

// ThisExpr is the `this` keyword.
type ThisExpr struct{ Base }

// SpreadExpr is `...x` in call arguments or array literals.
type SpreadExpr struct {
	Base
	X Expr
}

func (*Ident) expr()           {}
func (*Literal) expr()         {}
func (*TemplateLiteral) expr() {}
func (*ObjectLit) expr()       {}
func (*ArrayLit) expr()        {}
func (*FunctionLit) expr()     {}
func (*BinaryExpr) expr()      {}
func (*LogicalExpr) expr()     {}
func (*UnaryExpr) expr()       {}
func (*UpdateExpr) expr()      {}
func (*AssignExpr) expr()      {}
func (*CondExpr) expr()        {}
func (*CallExpr) expr()        {}
func (*NewExpr) expr()         {}
func (*MemberExpr) expr()      {}
func (*SeqExpr) expr()         {}
func (*ThisExpr) expr()        {}
func (*SpreadExpr) expr()      {}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

// Stmt is implemented by all statement nodes.
type Stmt interface {
	Node
	stmt()
}

// Program is a whole source file.
type Program struct {
	Base
	Body []Stmt
}

// VarDecl is var/let/const with one or more declarators.
type VarDecl struct {
	Base
	Kind  string // "var", "let", "const"
	Decls []Declarator
}

// Declarator is one name (or pattern) with optional initializer.
type Declarator struct {
	Name string // simple identifier binding; "" when Pattern is set
	Init Expr
	// Pattern is a destructuring pattern ({a, b} = ..., [x, y] = ...).
	Pattern Expr // ObjectLit/ArrayLit reused as patterns
}

// ExprStmt wraps an expression used as a statement.
type ExprStmt struct {
	Base
	X Expr
}

// BlockStmt is { ... }.
type BlockStmt struct {
	Base
	Body []Stmt
}

// IfStmt is if/else.
type IfStmt struct {
	Base
	Cond Expr
	Then Stmt
	Else Stmt // nil when absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Base
	Cond Expr
	Body Stmt
}

// DoWhileStmt is do/while.
type DoWhileStmt struct {
	Base
	Body Stmt
	Cond Expr
}

// ForStmt is the classic three-clause for.
type ForStmt struct {
	Base
	Init Stmt // VarDecl or ExprStmt or nil
	Cond Expr // nil when absent
	Post Expr // nil when absent
	Body Stmt
}

// ForInStmt covers both for-in and for-of (Of distinguishes).
type ForInStmt struct {
	Base
	DeclKind string // "", "var", "let", "const"
	Left     Expr   // Ident or pattern
	Right    Expr
	Body     Stmt
	Of       bool
}

// ReturnStmt returns from a function.
type ReturnStmt struct {
	Base
	X Expr // nil for bare return
}

// BreakStmt breaks a loop or switch.
type BreakStmt struct {
	Base
	Label string
}

// ContinueStmt continues a loop.
type ContinueStmt struct {
	Base
	Label string
}

// FuncDecl is a function declaration statement.
type FuncDecl struct {
	Base
	Fn *FunctionLit
}

// ThrowStmt throws an exception.
type ThrowStmt struct {
	Base
	X Expr
}

// TryStmt is try/catch/finally.
type TryStmt struct {
	Base
	Block       *BlockStmt
	CatchParam  string // "" for catch-less or param-less catch
	CatchBlock  *BlockStmt
	FinallyBody *BlockStmt
}

// SwitchStmt is a switch with cases.
type SwitchStmt struct {
	Base
	Disc  Expr
	Cases []SwitchCase
}

// SwitchCase is one case (Test == nil for default).
type SwitchCase struct {
	Test Expr
	Body []Stmt
}

// LabeledStmt is label: stmt.
type LabeledStmt struct {
	Base
	Label string
	Body  Stmt
}

// ClassDecl is a class declaration (methods become function literals).
type ClassDecl struct {
	Base
	Name    string
	Super   Expr // nil when no extends
	Methods []ClassMethod
}

// ClassMethod is one method of a class.
type ClassMethod struct {
	Name   string
	Fn     *FunctionLit
	Static bool
	Kind   string // "method", "get", "set", "constructor"
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ Base }

func (*Program) stmt()      {}
func (*VarDecl) stmt()      {}
func (*ExprStmt) stmt()     {}
func (*BlockStmt) stmt()    {}
func (*IfStmt) stmt()       {}
func (*WhileStmt) stmt()    {}
func (*DoWhileStmt) stmt()  {}
func (*ForStmt) stmt()      {}
func (*ForInStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*FuncDecl) stmt()     {}
func (*ThrowStmt) stmt()    {}
func (*TryStmt) stmt()      {}
func (*SwitchStmt) stmt()   {}
func (*LabeledStmt) stmt()  {}
func (*ClassDecl) stmt()    {}
func (*EmptyStmt) stmt()    {}

// At constructs the embedded position Base; used by the parser.
func At(p token.Pos) Base { return Base{P: p} }
