package ast

// Walk traverses the tree rooted at n in depth-first pre-order, calling
// fn for every node. If fn returns false for a node, its children are
// not visited.
func Walk(n Node, fn func(Node) bool) {
	if n == nil || !fn(n) {
		return
	}
	switch x := n.(type) {
	case *Program:
		walkStmts(x.Body, fn)
	case *VarDecl:
		for _, d := range x.Decls {
			walkExpr(d.Pattern, fn)
			walkExpr(d.Init, fn)
		}
	case *ExprStmt:
		walkExpr(x.X, fn)
	case *BlockStmt:
		walkStmts(x.Body, fn)
	case *IfStmt:
		walkExpr(x.Cond, fn)
		walkStmt(x.Then, fn)
		walkStmt(x.Else, fn)
	case *WhileStmt:
		walkExpr(x.Cond, fn)
		walkStmt(x.Body, fn)
	case *DoWhileStmt:
		walkStmt(x.Body, fn)
		walkExpr(x.Cond, fn)
	case *ForStmt:
		walkStmt(x.Init, fn)
		walkExpr(x.Cond, fn)
		walkExpr(x.Post, fn)
		walkStmt(x.Body, fn)
	case *ForInStmt:
		walkExpr(x.Left, fn)
		walkExpr(x.Right, fn)
		walkStmt(x.Body, fn)
	case *ReturnStmt:
		walkExpr(x.X, fn)
	case *FuncDecl:
		walkExpr(x.Fn, fn)
	case *ThrowStmt:
		walkExpr(x.X, fn)
	case *TryStmt:
		walkBlock(x.Block, fn)
		walkBlock(x.CatchBlock, fn)
		walkBlock(x.FinallyBody, fn)
	case *SwitchStmt:
		walkExpr(x.Disc, fn)
		for _, c := range x.Cases {
			walkExpr(c.Test, fn)
			walkStmts(c.Body, fn)
		}
	case *LabeledStmt:
		walkStmt(x.Body, fn)
	case *ClassDecl:
		walkExpr(x.Super, fn)
		for _, m := range x.Methods {
			walkExpr(m.Fn, fn)
		}

	case *TemplateLiteral:
		for _, e := range x.Exprs {
			walkExpr(e, fn)
		}
	case *ObjectLit:
		for _, p := range x.Props {
			walkExpr(p.Key, fn)
			walkExpr(p.Value, fn)
		}
	case *ArrayLit:
		for _, e := range x.Elems {
			walkExpr(e, fn)
		}
	case *FunctionLit:
		for _, p := range x.Params {
			walkExpr(p.Default, fn)
		}
		walkBlock(x.Body, fn)
		walkExpr(x.ExprBody, fn)
	case *BinaryExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *LogicalExpr:
		walkExpr(x.L, fn)
		walkExpr(x.R, fn)
	case *UnaryExpr:
		walkExpr(x.X, fn)
	case *UpdateExpr:
		walkExpr(x.X, fn)
	case *AssignExpr:
		walkExpr(x.Target, fn)
		walkExpr(x.Value, fn)
	case *CondExpr:
		walkExpr(x.Cond, fn)
		walkExpr(x.Then, fn)
		walkExpr(x.Else, fn)
	case *CallExpr:
		walkExpr(x.Callee, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *NewExpr:
		walkExpr(x.Callee, fn)
		for _, a := range x.Args {
			walkExpr(a, fn)
		}
	case *MemberExpr:
		walkExpr(x.Obj, fn)
		walkExpr(x.Prop, fn)
	case *SeqExpr:
		for _, e := range x.Exprs {
			walkExpr(e, fn)
		}
	case *SpreadExpr:
		walkExpr(x.X, fn)
	}
}

func walkStmt(s Stmt, fn func(Node) bool) {
	if s != nil {
		Walk(s, fn)
	}
}

func walkBlock(b *BlockStmt, fn func(Node) bool) {
	if b != nil {
		Walk(b, fn)
	}
}

func walkStmts(ss []Stmt, fn func(Node) bool) {
	for _, s := range ss {
		walkStmt(s, fn)
	}
}

func walkExpr(e Expr, fn func(Node) bool) {
	if e != nil {
		Walk(e, fn)
	}
}

// Count returns the number of nodes in the tree rooted at n.
func Count(n Node) int {
	c := 0
	Walk(n, func(Node) bool { c++; return true })
	return c
}
