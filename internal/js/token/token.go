// Package token defines the lexical tokens of the JavaScript subset
// understood by the parser, together with source positions.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// Token kinds. The ordering groups literals, identifiers/keywords,
// punctuators, and operators; Kind values are internal and may change.
const (
	ILLEGAL Kind = iota
	EOF

	// Literals and identifiers.
	IDENT    // foo
	KEYWORD  // var, function, ... (Lit holds the keyword text)
	NUMBER   // 123, 0x1f, 1.5e3
	STRING   // "abc", 'abc'
	TEMPLATE // `abc ${ ... } def` (raw text; parser re-scans pieces)
	REGEX    // /ab+c/g

	// Punctuation.
	LPAREN   // (
	RPAREN   // )
	LBRACE   // {
	RBRACE   // }
	LBRACKET // [
	RBRACKET // ]
	SEMI     // ;
	COMMA    // ,
	DOT      // .
	ELLIPSIS // ...
	COLON    // :
	QUESTION // ?
	ARROW    // =>
	OPTCHAIN // ?.

	// Operators.
	ASSIGN         // =
	PLUS_ASSIGN    // +=
	MINUS_ASSIGN   // -=
	STAR_ASSIGN    // *=
	SLASH_ASSIGN   // /=
	PERCENT_ASSIGN // %=
	AND_ASSIGN     // &=
	OR_ASSIGN      // |=
	XOR_ASSIGN     // ^=
	SHL_ASSIGN     // <<=
	SHR_ASSIGN     // >>=
	USHR_ASSIGN    // >>>=
	POW_ASSIGN     // **=
	LOGAND_ASSIGN  // &&=
	LOGOR_ASSIGN   // ||=
	NULLISH_ASSIGN // ??=

	PLUS    // +
	MINUS   // -
	STAR    // *
	SLASH   // /
	PERCENT // %
	POW     // **
	INC     // ++
	DEC     // --

	EQ        // ==
	NEQ       // !=
	STRICTEQ  // ===
	STRICTNEQ // !==
	LT        // <
	GT        // >
	LEQ       // <=
	GEQ       // >=

	LOGAND  // &&
	LOGOR   // ||
	NULLISH // ??
	NOT     // !

	AND  // &
	OR   // |
	XOR  // ^
	TILD // ~
	SHL  // <<
	SHR  // >>
	USHR // >>>
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", KEYWORD: "KEYWORD",
	NUMBER: "NUMBER", STRING: "STRING", TEMPLATE: "TEMPLATE", REGEX: "REGEX",
	LPAREN: "(", RPAREN: ")", LBRACE: "{", RBRACE: "}", LBRACKET: "[",
	RBRACKET: "]", SEMI: ";", COMMA: ",", DOT: ".", ELLIPSIS: "...",
	COLON: ":", QUESTION: "?", ARROW: "=>", OPTCHAIN: "?.",
	ASSIGN: "=", PLUS_ASSIGN: "+=", MINUS_ASSIGN: "-=", STAR_ASSIGN: "*=",
	SLASH_ASSIGN: "/=", PERCENT_ASSIGN: "%=", AND_ASSIGN: "&=",
	OR_ASSIGN: "|=", XOR_ASSIGN: "^=", SHL_ASSIGN: "<<=", SHR_ASSIGN: ">>=",
	USHR_ASSIGN: ">>>=", POW_ASSIGN: "**=", LOGAND_ASSIGN: "&&=",
	LOGOR_ASSIGN: "||=", NULLISH_ASSIGN: "??=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", PERCENT: "%", POW: "**",
	INC: "++", DEC: "--", EQ: "==", NEQ: "!=", STRICTEQ: "===",
	STRICTNEQ: "!==", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	LOGAND: "&&", LOGOR: "||", NULLISH: "??", NOT: "!",
	AND: "&", OR: "|", XOR: "^", TILD: "~", SHL: "<<", SHR: ">>", USHR: ">>>",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Pos is a source position (1-based line and column, 0-based byte offset).
type Pos struct {
	Line   int
	Column int
	Offset int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// Token is a single lexical token with its literal text and position.
type Token struct {
	Kind Kind
	Lit  string // literal text: identifier name, keyword, decoded string value, raw number, ...
	Raw  string // exact source text (used for regex/template/string round-trips)
	Pos  Pos
	// NewlineBefore reports whether a line terminator occurred between
	// the previous token and this one; the parser uses it for automatic
	// semicolon insertion and restricted productions (return, ++/--).
	NewlineBefore bool
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, KEYWORD, NUMBER, STRING, TEMPLATE, REGEX:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// Keywords of the supported JavaScript subset. Contextual keywords (get,
// set, of, static, async) are scanned as IDENT and recognized by the parser.
var keywords = map[string]bool{
	"break": true, "case": true, "catch": true, "class": true,
	"const": true, "continue": true, "debugger": true, "default": true,
	"delete": true, "do": true, "else": true, "extends": true,
	"finally": true, "for": true, "function": true, "if": true,
	"import": true, "in": true, "instanceof": true, "let": true,
	"new": true, "return": true, "super": true, "switch": true,
	"this": true, "throw": true, "try": true, "typeof": true,
	"var": true, "void": true, "while": true, "with": true,
	"yield": true, "export": true,
	// Literal-valued keywords; the parser maps them to literal nodes.
	"null": true, "true": true, "false": true, "undefined": true,
}

// IsKeyword reports whether name is a reserved word.
func IsKeyword(name string) bool { return keywords[name] }

// Assignment maps a compound-assignment token kind to the underlying
// binary operator text (e.g. PLUS_ASSIGN -> "+"). Plain ASSIGN maps to "".
var Assignment = map[Kind]string{
	ASSIGN: "", PLUS_ASSIGN: "+", MINUS_ASSIGN: "-", STAR_ASSIGN: "*",
	SLASH_ASSIGN: "/", PERCENT_ASSIGN: "%", AND_ASSIGN: "&", OR_ASSIGN: "|",
	XOR_ASSIGN: "^", SHL_ASSIGN: "<<", SHR_ASSIGN: ">>", USHR_ASSIGN: ">>>",
	POW_ASSIGN: "**", LOGAND_ASSIGN: "&&", LOGOR_ASSIGN: "||",
	NULLISH_ASSIGN: "??",
}

// IsAssign reports whether k is an assignment operator (simple or compound).
func IsAssign(k Kind) bool { _, ok := Assignment[k]; return ok }
