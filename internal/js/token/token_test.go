package token

import (
	"strings"
	"testing"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		IDENT:    "IDENT",
		EOF:      "EOF",
		PLUS:     "+",
		ARROW:    "=>",
		ELLIPSIS: "...",
		STRICTEQ: "===",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
	// Unknown kinds render diagnostically rather than panicking.
	if got := Kind(9999).String(); !strings.Contains(got, "9999") {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestPosString(t *testing.T) {
	p := Pos{Line: 3, Column: 7}
	if p.String() != "3:7" {
		t.Fatalf("got %q", p.String())
	}
}

func TestTokenString(t *testing.T) {
	tok := Token{Kind: IDENT, Lit: "foo"}
	if !strings.Contains(tok.String(), "foo") {
		t.Errorf("ident token = %q", tok.String())
	}
	tok = Token{Kind: LPAREN}
	if tok.String() != "(" {
		t.Errorf("punct token = %q", tok.String())
	}
	tok = Token{Kind: STRING, Lit: "hi"}
	if !strings.Contains(tok.String(), `"hi"`) {
		t.Errorf("string token = %q", tok.String())
	}
}

func TestIsKeyword(t *testing.T) {
	for _, kw := range []string{"var", "function", "return", "class", "typeof", "null", "true"} {
		if !IsKeyword(kw) {
			t.Errorf("IsKeyword(%q) = false", kw)
		}
	}
	for _, id := range []string{"foo", "async", "of", "get", "set", "await", "static"} {
		if IsKeyword(id) {
			t.Errorf("IsKeyword(%q) = true; contextual keywords must be idents", id)
		}
	}
}

func TestAssignmentMap(t *testing.T) {
	if Assignment[ASSIGN] != "" {
		t.Error("plain = maps to empty operator")
	}
	if Assignment[PLUS_ASSIGN] != "+" {
		t.Error("+= maps to +")
	}
	if Assignment[LOGOR_ASSIGN] != "||" {
		t.Error("||= maps to ||")
	}
	if !IsAssign(XOR_ASSIGN) {
		t.Error("^= is an assignment")
	}
	if IsAssign(PLUS) {
		t.Error("+ is not an assignment")
	}
}

func TestAllKindsHaveNames(t *testing.T) {
	// Every kind from ILLEGAL to USHR should have a printable name.
	for k := ILLEGAL; k <= USHR; k++ {
		if strings.HasPrefix(k.String(), "Kind(") {
			t.Errorf("kind %d has no name", int(k))
		}
	}
}
