package jsinterp

import (
	"fmt"
	"strconv"
	"strings"
)

// stringProp resolves methods and properties of string primitives.
func (in *Interp) stringProp(s String, name string) Value {
	str := string(s)
	switch name {
	case "length":
		return Number(len(str))
	case "split":
		return &Builtin{Name: "split", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			sep := ToString(firstArg(args))
			var parts []string
			if sep == "" {
				for _, r := range str {
					parts = append(parts, string(r))
				}
			} else {
				parts = strings.Split(str, sep)
			}
			vals := make([]Value, len(parts))
			for i, p := range parts {
				vals[i] = String(p)
			}
			return ip.NewArray(vals...), nil
		}}
	case "indexOf":
		return &Builtin{Name: "indexOf", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return Number(strings.Index(str, ToString(firstArg(args)))), nil
		}}
	case "includes":
		return &Builtin{Name: "includes", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return Bool(strings.Contains(str, ToString(firstArg(args)))), nil
		}}
	case "startsWith":
		return &Builtin{Name: "startsWith", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return Bool(strings.HasPrefix(str, ToString(firstArg(args)))), nil
		}}
	case "replace":
		return &Builtin{Name: "replace", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return String(str), nil
			}
			// Regex receivers are objects with a source; approximate by
			// replacing the literal source text.
			pat := ToString(args[0])
			if o, ok := args[0].(*Object); ok {
				pat = ToString(o.Get("source"))
			}
			return String(strings.Replace(str, pat, ToString(args[1]), 1)), nil
		}}
	case "slice", "substring":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			from := 0
			to := len(str)
			if len(args) > 0 {
				from = clampIndex(int(ToNumber(args[0])), len(str))
			}
			if len(args) > 1 {
				to = clampIndex(int(ToNumber(args[1])), len(str))
			}
			if from > to {
				return String(""), nil
			}
			return String(str[from:to]), nil
		}}
	case "toLowerCase":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return String(strings.ToLower(str)), nil
		}}
	case "toUpperCase":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return String(strings.ToUpper(str)), nil
		}}
	case "trim":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return String(strings.TrimSpace(str)), nil
		}}
	case "charAt":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			i := int(ToNumber(firstArg(args)))
			if i < 0 || i >= len(str) {
				return String(""), nil
			}
			return String(str[i : i+1]), nil
		}}
	case "toString":
		return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return s, nil
		}}
	}
	// Numeric index: character access.
	if i, err := strconv.Atoi(name); err == nil && i >= 0 && i < len(str) {
		return String(str[i : i+1])
	}
	return Undefined{}
}

// functionProp resolves .call/.apply on function values.
func (in *Interp) functionProp(fn *Function, name string) Value {
	switch name {
	case "call":
		return &Builtin{Name: fn.Name + ".call", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			var t Value = Undefined{}
			rest := args
			if len(args) > 0 {
				t = args[0]
				rest = args[1:]
			}
			return ip.CallFunction(fn, t, rest)
		}}
	case "apply":
		return &Builtin{Name: fn.Name + ".apply", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			var t Value = Undefined{}
			var rest []Value
			if len(args) > 0 {
				t = args[0]
			}
			if len(args) > 1 {
				if arr, ok := args[1].(*Object); ok {
					n := lengthOf(arr)
					for i := 0; i < n; i++ {
						v, _ := arr.GetOwn(strconv.Itoa(i))
						if v == nil {
							v = Undefined{}
						}
						rest = append(rest, v)
					}
				}
			}
			return ip.CallFunction(fn, t, rest)
		}}
	case "name":
		return String(fn.Name)
	}
	return Undefined{}
}

func clampIndex(i, n int) int {
	if i < 0 {
		i += n
	}
	if i < 0 {
		return 0
	}
	if i > n {
		return n
	}
	return i
}

// installArrayMethods populates Object.prototype with the array-ish
// methods the corpus uses; because every object chains to it, `push`
// works on array objects without a distinct Array.prototype.
func (in *Interp) installArrayMethods() {
	op := in.ObjectPrototype
	op.props["push"] = &Builtin{Name: "push", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		arr, ok := this.(*Object)
		if !ok {
			return Undefined{}, nil
		}
		n := lengthOf(arr)
		for _, a := range args {
			arr.Set(strconv.Itoa(n), a)
			n++
		}
		arr.Set("length", Number(n))
		return Number(n), nil
	}}
	op.props["join"] = &Builtin{Name: "join", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		arr, ok := this.(*Object)
		if !ok {
			return String(""), nil
		}
		sep := ","
		if len(args) > 0 {
			sep = ToString(args[0])
		}
		n := lengthOf(arr)
		parts := make([]string, 0, n)
		for i := 0; i < n; i++ {
			v, _ := arr.GetOwn(strconv.Itoa(i))
			if v == nil {
				v = Undefined{}
			}
			parts = append(parts, ToString(v))
		}
		return String(strings.Join(parts, sep)), nil
	}}
	op.props["concat"] = &Builtin{Name: "concat", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		var vals []Value
		collect := func(v Value) {
			if o, ok := v.(*Object); ok {
				_, hasLen := o.GetOwn("length")
				_, hasZero := o.GetOwn("0")
				if hasLen || hasZero {
					n := lengthOf(o)
					for i := 0; i < n; i++ {
						el, _ := o.GetOwn(strconv.Itoa(i))
						if el == nil {
							el = Undefined{}
						}
						vals = append(vals, el)
					}
					return
				}
			}
			vals = append(vals, v)
		}
		collect(this)
		for _, a := range args {
			collect(a)
		}
		return ip.NewArray(vals...), nil
	}}
	op.props["indexOf"] = &Builtin{Name: "indexOf", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		arr, ok := this.(*Object)
		if !ok {
			return Number(-1), nil
		}
		want := firstArg(args)
		n := lengthOf(arr)
		for i := 0; i < n; i++ {
			v, _ := arr.GetOwn(strconv.Itoa(i))
			if v != nil && looseEq(v, want) {
				return Number(i), nil
			}
		}
		return Number(-1), nil
	}}
	op.props["forEach"] = &Builtin{Name: "forEach", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		arr, ok := this.(*Object)
		if !ok || len(args) == 0 {
			return Undefined{}, nil
		}
		n := lengthOf(arr)
		for i := 0; i < n; i++ {
			v, _ := arr.GetOwn(strconv.Itoa(i))
			if v == nil {
				v = Undefined{}
			}
			if _, err := ip.CallFunction(args[0], Undefined{}, []Value{v, Number(i)}); err != nil {
				return nil, err
			}
		}
		return Undefined{}, nil
	}}
	op.props["map"] = &Builtin{Name: "map", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		arr, ok := this.(*Object)
		if !ok || len(args) == 0 {
			return ip.NewArray(), nil
		}
		n := lengthOf(arr)
		var out []Value
		for i := 0; i < n; i++ {
			v, _ := arr.GetOwn(strconv.Itoa(i))
			if v == nil {
				v = Undefined{}
			}
			r, err := ip.CallFunction(args[0], Undefined{}, []Value{v, Number(i)})
			if err != nil {
				return nil, err
			}
			out = append(out, r)
		}
		return ip.NewArray(out...), nil
	}}
	op.props["hasOwnProperty"] = &Builtin{Name: "hasOwnProperty", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		o, ok := this.(*Object)
		if !ok {
			return Bool(false), nil
		}
		_, has := o.GetOwn(ToString(firstArg(args)))
		return Bool(has), nil
	}}
	op.props["toString"] = &Builtin{Name: "toString", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		return String(ToString(this)), nil
	}}
}

// ---------------------------------------------------------------------------
// Minimal JSON
// ---------------------------------------------------------------------------

// jsonParse parses a JSON document into interpreter values. Object keys
// named __proto__ are stored as plain own properties (as JSON.parse
// does in real engines — this is why pollution needs an assignment
// step, which the PoCs perform).
func (in *Interp) jsonParse(src string) (Value, error) {
	p := &jsonParser{in: in, src: src}
	p.ws()
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	p.ws()
	if p.pos != len(p.src) {
		return nil, fmt.Errorf("jsinterp: trailing JSON at %d", p.pos)
	}
	return v, nil
}

type jsonParser struct {
	in  *Interp
	src string
	pos int
}

func (p *jsonParser) ws() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *jsonParser) value() (Value, error) {
	if p.pos >= len(p.src) {
		return nil, fmt.Errorf("jsinterp: unexpected end of JSON")
	}
	switch c := p.src[p.pos]; {
	case c == '{':
		return p.object()
	case c == '[':
		return p.array()
	case c == '"':
		s, err := p.str()
		return String(s), err
	case c == 't':
		return p.lit("true", Bool(true))
	case c == 'f':
		return p.lit("false", Bool(false))
	case c == 'n':
		return p.lit("null", Null{})
	default:
		return p.number()
	}
}

func (p *jsonParser) lit(text string, v Value) (Value, error) {
	if strings.HasPrefix(p.src[p.pos:], text) {
		p.pos += len(text)
		return v, nil
	}
	return nil, fmt.Errorf("jsinterp: bad JSON literal at %d", p.pos)
}

func (p *jsonParser) number() (Value, error) {
	start := p.pos
	for p.pos < len(p.src) && strings.ContainsRune("-+.eE0123456789", rune(p.src[p.pos])) {
		p.pos++
	}
	f, err := strconv.ParseFloat(p.src[start:p.pos], 64)
	if err != nil {
		return nil, fmt.Errorf("jsinterp: bad JSON number at %d", start)
	}
	return Number(f), nil
}

func (p *jsonParser) str() (string, error) {
	if p.pos >= len(p.src) || p.src[p.pos] != '"' {
		return "", fmt.Errorf("jsinterp: expected string at %d", p.pos)
	}
	p.pos++
	var sb strings.Builder
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		p.pos++
		switch c {
		case '"':
			return sb.String(), nil
		case '\\':
			if p.pos >= len(p.src) {
				return "", fmt.Errorf("jsinterp: bad escape")
			}
			e := p.src[p.pos]
			p.pos++
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case 'r':
				sb.WriteByte('\r')
			case 'u':
				if p.pos+4 <= len(p.src) {
					if n, err := strconv.ParseUint(p.src[p.pos:p.pos+4], 16, 32); err == nil {
						sb.WriteRune(rune(n))
					}
					p.pos += 4
				}
			default:
				sb.WriteByte(e)
			}
		default:
			sb.WriteByte(c)
		}
	}
	return "", fmt.Errorf("jsinterp: unterminated JSON string")
}

func (p *jsonParser) object() (Value, error) {
	obj := p.in.NewObj()
	p.pos++ // {
	p.ws()
	if p.pos < len(p.src) && p.src[p.pos] == '}' {
		p.pos++
		return obj, nil
	}
	for {
		p.ws()
		key, err := p.str()
		if err != nil {
			return nil, err
		}
		p.ws()
		if p.pos >= len(p.src) || p.src[p.pos] != ':' {
			return nil, fmt.Errorf("jsinterp: expected ':' at %d", p.pos)
		}
		p.pos++
		p.ws()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		// Plain own property, even for __proto__ (JSON.parse semantics).
		obj.props[key] = v
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		if p.pos < len(p.src) && p.src[p.pos] == '}' {
			p.pos++
			return obj, nil
		}
		return nil, fmt.Errorf("jsinterp: bad JSON object at %d", p.pos)
	}
}

func (p *jsonParser) array() (Value, error) {
	p.pos++ // [
	p.ws()
	var vals []Value
	if p.pos < len(p.src) && p.src[p.pos] == ']' {
		p.pos++
		return p.in.NewArray(), nil
	}
	for {
		p.ws()
		v, err := p.value()
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
		p.ws()
		if p.pos < len(p.src) && p.src[p.pos] == ',' {
			p.pos++
			continue
		}
		if p.pos < len(p.src) && p.src[p.pos] == ']' {
			p.pos++
			return p.in.NewArray(vals...), nil
		}
		return nil, fmt.Errorf("jsinterp: bad JSON array at %d", p.pos)
	}
}

func jsonStringify(v Value) string {
	switch x := v.(type) {
	case String:
		return strconv.Quote(string(x))
	case Number, Bool:
		return ToString(v)
	case Null, Undefined:
		return "null"
	case *Object:
		if _, isArr := x.GetOwn("length"); isArr {
			n := lengthOf(x)
			parts := make([]string, 0, n)
			for i := 0; i < n; i++ {
				el, _ := x.GetOwn(strconv.Itoa(i))
				if el == nil {
					el = Undefined{}
				}
				parts = append(parts, jsonStringify(el))
			}
			return "[" + strings.Join(parts, ",") + "]"
		}
		var parts []string
		for _, k := range x.Keys() {
			pv, _ := x.GetOwn(k)
			parts = append(parts, strconv.Quote(k)+":"+jsonStringify(pv))
		}
		return "{" + strings.Join(parts, ",") + "}"
	}
	return "null"
}
