package jsinterp

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// SinkEvent records one invocation of an instrumented sink.
type SinkEvent struct {
	Sink string // canonical sink name: exec, eval, fs.readFile, ...
	Args []string
}

// Interp executes Core JavaScript concretely.
type Interp struct {
	// Sinks is the instrumentation log.
	Sinks []SinkEvent
	// ObjectPrototype is the shared root of every object's prototype
	// chain; pollution lands here.
	ObjectPrototype *Object

	genv     *Env
	steps    int
	budget   int
	deadline time.Time                // zero = no wall-clock bound
	modules  map[string]*core.Program // sibling modules for require
	exports  map[string]Value         // memoized module exports
}

// ErrBudget reports that execution exceeded the step budget.
var ErrBudget = errors.New("jsinterp: step budget exhausted")

// ErrDeadline reports that execution exceeded the wall-clock deadline
// set with SetDeadline.
var ErrDeadline = errors.New("jsinterp: wall-clock deadline exceeded")

// SetDeadline bounds execution by wall-clock time in addition to the
// step budget; the clock is consulted every few hundred steps, so slow
// builtins between checks overshoot by at most that amortized cost.
func (in *Interp) SetDeadline(t time.Time) { in.deadline = t }

// control-flow signals.
type returnSignal struct{ v Value }
type breakSignal struct{}
type continueSignal struct{}

func (returnSignal) Error() string   { return "return" }
func (breakSignal) Error() string    { return "break" }
func (continueSignal) Error() string { return "continue" }

// New creates an interpreter with the given step budget.
func New(budget int) *Interp {
	in := &Interp{
		ObjectPrototype: &Object{props: map[string]Value{}},
		budget:          budget,
		modules:         map[string]*core.Program{},
		exports:         map[string]Value{},
	}
	in.genv = NewEnv(nil)
	in.setupGlobals()
	in.installArrayMethods()
	return in
}

// AddModule registers a sibling module for require('./name') resolution.
func (in *Interp) AddModule(name string, prog *core.Program) {
	in.modules[name] = prog
}

// NewObj creates an object rooted at the shared Object.prototype.
func (in *Interp) NewObj() *Object { return NewObject(in.ObjectPrototype) }

func (in *Interp) tick() error {
	in.steps++
	if in.steps > in.budget {
		return ErrBudget
	}
	if !in.deadline.IsZero() && in.steps%256 == 0 && !time.Now().Before(in.deadline) {
		return ErrDeadline
	}
	return nil
}

// RunModule executes a program as a CommonJS module and returns its
// exports value.
func (in *Interp) RunModule(prog *core.Program) (Value, error) {
	if v, ok := in.exports[prog.FileName]; ok {
		return v, nil
	}
	env := NewEnv(in.genv)
	module := in.NewObj()
	exports := in.NewObj()
	module.Set("exports", exports)
	env.SetLocal("module", module)
	env.SetLocal("exports", exports)
	// Pre-register to tolerate require cycles.
	in.exports[prog.FileName] = exports
	if err := in.stmts(prog.Body, env); err != nil && !errors.As(err, &returnSignal{}) {
		return nil, err
	}
	out := module.Get("exports")
	in.exports[prog.FileName] = out
	return out, nil
}

// CallFunction invokes a function value with arguments.
func (in *Interp) CallFunction(fn Value, this Value, args []Value) (Value, error) {
	switch f := fn.(type) {
	case *Builtin:
		return f.Fn(in, this, args)
	case *Function:
		body, _ := f.Body.([]core.Stmt)
		env := NewEnv(f.Env)
		for i, p := range f.Params {
			if i < len(args) {
				env.SetLocal(p, args[i])
			} else {
				env.SetLocal(p, Undefined{})
			}
		}
		if this == nil {
			this = Undefined{}
		}
		env.SetLocal("this", this)
		argsObj := in.NewObj()
		for i, a := range args {
			argsObj.Set(fmt.Sprint(i), a)
		}
		argsObj.Set("length", Number(len(args)))
		env.SetLocal("arguments", argsObj)
		err := in.stmts(body, env)
		var ret returnSignal
		if errors.As(err, &ret) {
			return ret.v, nil
		}
		// Stray break/continue (e.g. a desugared switch) completes the
		// function normally.
		if errors.As(err, &breakSignal{}) || errors.As(err, &continueSignal{}) {
			return Undefined{}, nil
		}
		if err != nil {
			return nil, err
		}
		return Undefined{}, nil
	default:
		return nil, fmt.Errorf("jsinterp: %s is not a function", ToString(fn))
	}
}

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

func (in *Interp) stmts(ss []core.Stmt, env *Env) error {
	for _, s := range ss {
		if err := in.stmt(s, env); err != nil {
			return err
		}
	}
	return nil
}

func (in *Interp) stmt(s core.Stmt, env *Env) error {
	if err := in.tick(); err != nil {
		return err
	}
	switch x := s.(type) {
	case *core.Assign:
		v, err := in.eval(x.E, env)
		if err != nil {
			return err
		}
		env.Set(x.X, v)

	case *core.BinOp:
		l, err := in.eval(x.L, env)
		if err != nil {
			return err
		}
		r, err := in.eval(x.R, env)
		if err != nil {
			return err
		}
		env.Set(x.X, binOp(x.Op, l, r))

	case *core.UnOp:
		v, err := in.eval(x.E, env)
		if err != nil {
			return err
		}
		env.Set(x.X, unOp(x.Op, v))

	case *core.NewObj:
		env.Set(x.X, in.NewObj())

	case *core.Lookup:
		v, err := in.eval(x.Obj, env)
		if err != nil {
			return err
		}
		env.Set(x.X, in.getProp(v, x.Prop))

	case *core.DynLookup:
		v, err := in.eval(x.Obj, env)
		if err != nil {
			return err
		}
		p, err := in.eval(x.Prop, env)
		if err != nil {
			return err
		}
		env.Set(x.X, in.getProp(v, ToString(p)))

	case *core.Update:
		return in.update(x.Obj, x.Prop, x.Val, env)

	case *core.DynUpdate:
		p, err := in.eval(x.Prop, env)
		if err != nil {
			return err
		}
		return in.update(x.Obj, ToString(p), x.Val, env)

	case *core.If:
		c, err := in.eval(x.Cond, env)
		if err != nil {
			return err
		}
		if Truthy(c) {
			return in.stmts(x.Then, env)
		}
		return in.stmts(x.Else, env)

	case *core.While:
		for {
			c, err := in.eval(x.Cond, env)
			if err != nil {
				return err
			}
			if !Truthy(c) {
				return nil
			}
			err = in.stmts(x.Body, env)
			switch {
			case err == nil:
			case errors.As(err, &breakSignal{}):
				return nil
			case errors.As(err, &continueSignal{}):
			default:
				return err
			}
			if err := in.tick(); err != nil {
				return err
			}
		}

	case *core.ForIn:
		v, err := in.eval(x.Obj, env)
		if err != nil {
			return err
		}
		obj, ok := v.(*Object)
		if !ok {
			return nil
		}
		for _, key := range obj.Keys() {
			if x.Of {
				val, _ := obj.GetOwn(key)
				env.Set(x.Key, val)
			} else {
				env.Set(x.Key, String(key))
			}
			err := in.stmts(x.Body, env)
			switch {
			case err == nil:
			case errors.As(err, &breakSignal{}):
				return nil
			case errors.As(err, &continueSignal{}):
			default:
				return err
			}
		}

	case *core.Call:
		return in.call(x, env)

	case *core.FuncDef:
		fn := &Function{Name: x.Name, Params: x.Params, Body: x.Body, Env: env}
		env.Set(x.Name, fn)

	case *core.Return:
		var v Value = Undefined{}
		if x.E != nil {
			var err error
			v, err = in.eval(x.E, env)
			if err != nil {
				return err
			}
		}
		return returnSignal{v: v}

	case *core.Break:
		return breakSignal{}
	case *core.Continue:
		return continueSignal{}
	}
	return nil
}

// update writes obj.prop = val with real JS semantics (in-place).
func (in *Interp) update(objE core.Expr, prop string, valE core.Expr, env *Env) error {
	ov, err := in.eval(objE, env)
	if err != nil {
		return err
	}
	val, err := in.eval(valE, env)
	if err != nil {
		return err
	}
	if obj, ok := ov.(*Object); ok {
		obj.Set(prop, val)
	}
	return nil
}

// getProp reads a property with prototype-chain semantics; primitives
// get method wrappers from the string/array builtins.
func (in *Interp) getProp(v Value, name string) Value {
	switch x := v.(type) {
	case *Object:
		if name == "__proto__" {
			if x.Proto() == nil {
				return Null{}
			}
			return x.Proto()
		}
		return x.Get(name)
	case String:
		return in.stringProp(x, name)
	case *Function:
		return in.functionProp(x, name)
	}
	return Undefined{}
}

func (in *Interp) eval(e core.Expr, env *Env) (Value, error) {
	switch x := e.(type) {
	case core.Var:
		if v, ok := env.Get(x.Name); ok {
			return v, nil
		}
		if v, ok := in.genv.Get(x.Name); ok {
			return v, nil
		}
		return Undefined{}, nil
	case core.Lit:
		switch x.Kind {
		case core.LitNumber:
			return Number(ToNumber(String(x.Value))), nil
		case core.LitString:
			return String(x.Value), nil
		case core.LitBool:
			return Bool(x.Value == "true"), nil
		case core.LitNull:
			return Null{}, nil
		case core.LitRegex:
			o := in.NewObj()
			o.Set("source", String(x.Value))
			return o, nil
		default:
			return Undefined{}, nil
		}
	}
	return Undefined{}, nil
}

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

func binOp(op string, l, r Value) Value {
	switch op {
	case "+":
		_, ls := l.(String)
		_, rs := r.(String)
		lo, lObj := l.(*Object)
		ro, rObj := r.(*Object)
		if ls || rs || lObj || rObj {
			_ = lo
			_ = ro
			return String(ToString(l) + ToString(r))
		}
		return Number(ToNumber(l) + ToNumber(r))
	case "-":
		return Number(ToNumber(l) - ToNumber(r))
	case "*":
		return Number(ToNumber(l) * ToNumber(r))
	case "/":
		return Number(ToNumber(l) / ToNumber(r))
	case "%":
		rf := ToNumber(r)
		if rf == 0 {
			return Number(nan())
		}
		return Number(float64(int64(ToNumber(l)) % int64(rf)))
	case "**":
		return Number(pow(ToNumber(l), ToNumber(r)))
	case "==", "===":
		return Bool(looseEq(l, r))
	case "!=", "!==":
		return Bool(!looseEq(l, r))
	case "<":
		return compare(l, r, func(a, b float64) bool { return a < b }, func(a, b string) bool { return a < b })
	case ">":
		return compare(l, r, func(a, b float64) bool { return a > b }, func(a, b string) bool { return a > b })
	case "<=":
		return compare(l, r, func(a, b float64) bool { return a <= b }, func(a, b string) bool { return a <= b })
	case ">=":
		return compare(l, r, func(a, b float64) bool { return a >= b }, func(a, b string) bool { return a >= b })
	case "&&":
		if !Truthy(l) {
			return l
		}
		return r
	case "||":
		if Truthy(l) {
			return l
		}
		return r
	case "??":
		switch l.(type) {
		case Undefined, Null:
			return r
		}
		return l
	case "&":
		return Number(float64(int64(ToNumber(l)) & int64(ToNumber(r))))
	case "|":
		return Number(float64(int64(ToNumber(l)) | int64(ToNumber(r))))
	case "^":
		return Number(float64(int64(ToNumber(l)) ^ int64(ToNumber(r))))
	case "<<":
		return Number(float64(int64(ToNumber(l)) << (uint(ToNumber(r)) & 31)))
	case ">>":
		return Number(float64(int64(ToNumber(l)) >> (uint(ToNumber(r)) & 31)))
	case "in":
		if obj, ok := r.(*Object); ok {
			_, has := obj.GetOwn(ToString(l))
			return Bool(has || obj.Get(ToString(l)) != Value(Undefined{}))
		}
		return Bool(false)
	case "instanceof":
		return Bool(false) // constructors are not tracked precisely
	}
	return Undefined{}
}

func pow(a, b float64) float64 {
	// Integer powers only; enough for test programs.
	if b < 0 || b != float64(int(b)) {
		return nan()
	}
	out := 1.0
	for i := 0; i < int(b); i++ {
		out *= a
	}
	return out
}

func looseEq(l, r Value) bool {
	switch lv := l.(type) {
	case Number:
		return float64(lv) == ToNumber(r)
	case String:
		if rv, ok := r.(String); ok {
			return lv == rv
		}
		if _, ok := r.(Number); ok {
			return ToNumber(l) == ToNumber(r)
		}
		return false
	case Bool:
		if rv, ok := r.(Bool); ok {
			return lv == rv
		}
		return false
	case Undefined:
		_, u := r.(Undefined)
		_, n := r.(Null)
		return u || n
	case Null:
		_, u := r.(Undefined)
		_, n := r.(Null)
		return u || n
	case *Object:
		return l == r
	case *Function:
		return l == r
	}
	return false
}

func compare(l, r Value, nf func(a, b float64) bool, sf func(a, b string) bool) Value {
	ls, lok := l.(String)
	rs, rok := r.(String)
	if lok && rok {
		return Bool(sf(string(ls), string(rs)))
	}
	return Bool(nf(ToNumber(l), ToNumber(r)))
}

func unOp(op string, v Value) Value {
	switch op {
	case "!":
		return Bool(!Truthy(v))
	case "-":
		return Number(-ToNumber(v))
	case "+":
		return Number(ToNumber(v))
	case "~":
		return Number(float64(^int64(ToNumber(v))))
	case "typeof":
		return String(v.typeof())
	}
	return Undefined{}
}

// renderArgs stringifies call arguments for the sink log.
func renderArgs(args []Value) []string {
	out := make([]string, len(args))
	for i, a := range args {
		out[i] = ToString(a)
	}
	return out
}
