package jsinterp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/js/normalize"
)

func run(t *testing.T, src string) (*Interp, Value) {
	t.Helper()
	prog, err := normalize.File(src, "main.js")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	in := New(100000)
	exports, err := in.RunModule(prog)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return in, exports
}

func callExport(t *testing.T, in *Interp, exports Value, args ...Value) Value {
	t.Helper()
	res, err := in.CallFunction(exports, Undefined{}, args)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	return res
}

func TestArithmeticAndControlFlow(t *testing.T) {
	_, exports := run(t, `
function fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
module.exports = fib;
`)
	in := New(100000)
	_ = in
	// Reuse the interpreter that loaded the module.
	in2, exports2 := run(t, "function fib(n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); } module.exports = fib;")
	res := callExport(t, in2, exports2, Number(10))
	if ToNumber(res) != 55 {
		t.Fatalf("fib(10) = %v", res)
	}
	_ = exports
}

func TestStringOperations(t *testing.T) {
	in, exports := run(t, `
function f(s) {
	var parts = s.split('.');
	return parts.join('/') + '!' + parts.length;
}
module.exports = f;
`)
	res := callExport(t, in, exports, String("a.b.c"))
	if ToString(res) != "a/b/c!3" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestLoopsAndArrays(t *testing.T) {
	in, exports := run(t, `
function f(n) {
	var acc = [];
	for (var i = 0; i < n; i++) {
		acc.push(i * 2);
	}
	return acc.join(',');
}
module.exports = f;
`)
	res := callExport(t, in, exports, Number(4))
	if ToString(res) != "0,2,4,6" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestObjectsAndMethods(t *testing.T) {
	in, exports := run(t, `
function make(name) {
	var counter = { n: 0, name: name };
	counter.bump = function() { this.n = this.n + 1; return this.n; };
	return counter;
}
module.exports = make;
`)
	obj := callExport(t, in, exports, String("c1")).(*Object)
	bump := obj.Get("bump")
	r1, err := in.CallFunction(bump, obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := in.CallFunction(bump, obj, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ToNumber(r1) != 1 || ToNumber(r2) != 2 {
		t.Fatalf("bump: %v, %v", r1, r2)
	}
}

func TestSinkInstrumentation(t *testing.T) {
	in, exports := run(t, `
const { exec } = require('child_process');
function deploy(branch) {
	exec('git checkout ' + branch);
}
module.exports = deploy;
`)
	callExport(t, in, exports, String("main; rm -rf /"))
	if len(in.Sinks) != 1 || in.Sinks[0].Sink != "exec" {
		t.Fatalf("sinks = %v", in.Sinks)
	}
	if !strings.Contains(in.Sinks[0].Args[0], "rm -rf /") {
		t.Fatalf("args = %v", in.Sinks[0].Args)
	}
}

func TestPrototypePollutionSemantics(t *testing.T) {
	in, exports := run(t, `
function pollute(obj, key, value) {
	var sub = obj[key];
	sub[value] = 'polluted-value';
	return sub;
}
module.exports = pollute;
`)
	target := in.NewObj()
	callExport(t, in, exports, target, String("__proto__"), String("evil"))
	// A fresh object now sees the polluted property via its chain.
	probe := in.NewObj()
	if ToString(probe.Get("evil")) != "polluted-value" {
		t.Fatal("Object.prototype not polluted")
	}
}

func TestProtoAssignmentRewires(t *testing.T) {
	in, _ := run(t, "var x = 1;")
	obj := in.NewObj()
	carrier := in.NewObj()
	carrier.Set("inherited", String("yes"))
	obj.Set("__proto__", carrier)
	if ToString(obj.Get("inherited")) != "yes" {
		t.Fatal("__proto__ assignment must rewire the chain")
	}
	// But it must not create an own property.
	if _, own := obj.GetOwn("__proto__"); own {
		t.Fatal("__proto__ must not be an own property")
	}
}

func TestJSONParse(t *testing.T) {
	in, exports := run(t, `
function f(s) {
	var o = JSON.parse(s);
	return o.a + o.list[1] + (o.nested.deep ? '!' : '?');
}
module.exports = f;
`)
	res := callExport(t, in, exports, String(`{"a": "x", "list": [1, "y"], "nested": {"deep": true}}`))
	if ToString(res) != "xy!" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestJSONParseProtoIsOwnProperty(t *testing.T) {
	in, _ := run(t, "var x = 1;")
	v, err := in.jsonParse(`{"__proto__": {"polluted": "m"}}`)
	if err != nil {
		t.Fatal(err)
	}
	obj := v.(*Object)
	if _, own := obj.GetOwn("__proto__"); !own {
		t.Fatal("JSON.parse must store __proto__ as an own property")
	}
	// And the chain is NOT rewired.
	if _, isUndef := obj.Get("polluted").(Undefined); !isUndef {
		t.Fatal("JSON.parse must not pollute")
	}
}

func TestBudgetStopsInfiniteLoop(t *testing.T) {
	prog, err := normalize.File("while (true) { var x = 1; }", "loop.js")
	if err != nil {
		t.Fatal(err)
	}
	in := New(1000)
	if _, err := in.RunModule(prog); err != ErrBudget {
		t.Fatalf("err = %v, want ErrBudget", err)
	}
}

func TestCrossModuleRequire(t *testing.T) {
	util, err := normalize.File(`
const { exec } = require('child_process');
function runIt(c) { exec(c); }
module.exports = runIt;
`, "util.js")
	if err != nil {
		t.Fatal(err)
	}
	index, err := normalize.File(`
var runIt = require('./util');
function entry(x) { runIt('echo ' + x); }
module.exports = entry;
`, "index.js")
	if err != nil {
		t.Fatal(err)
	}
	in := New(100000)
	in.AddModule("util.js", util)
	exports, err := in.RunModule(index)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.CallFunction(exports, Undefined{}, []Value{String("hello")}); err != nil {
		t.Fatal(err)
	}
	if len(in.Sinks) != 1 || !strings.Contains(in.Sinks[0].Args[0], "hello") {
		t.Fatalf("sinks = %v", in.Sinks)
	}
}

func TestUnknownModuleStub(t *testing.T) {
	in, exports := run(t, `
var magic = require('some-unknown-lib');
function f(x) { magic.transmogrify(x); return 'ok'; }
module.exports = f;
`)
	res := callExport(t, in, exports, String("v"))
	if ToString(res) != "ok" {
		t.Fatalf("stub module call failed: %v", res)
	}
}

func TestObjectAssignBuiltin(t *testing.T) {
	in, exports := run(t, `
function f(src) {
	var dst = { a: 1 };
	Object.assign(dst, src);
	return dst.b;
}
module.exports = f;
`)
	src := in.NewObj()
	src.Set("b", String("copied"))
	res := callExport(t, in, exports, src)
	if ToString(res) != "copied" {
		t.Fatalf("got %v", res)
	}
}

func TestPathBasenameSanitizer(t *testing.T) {
	in, exports := run(t, `
var fs = require('fs');
var path = require('path');
function read(p, cb) {
	fs.readFile('/srv/' + path.basename(p + ''), cb);
}
module.exports = read;
`)
	callExport(t, in, exports, String("../../etc/passwd"), in.NoopCallback())
	if len(in.Sinks) != 1 {
		t.Fatalf("sinks = %v", in.Sinks)
	}
	if strings.Contains(in.Sinks[0].Args[0], "..") {
		t.Fatalf("basename must strip traversal: %v", in.Sinks[0].Args)
	}
}

func TestForInIteratesOwnKeys(t *testing.T) {
	in, exports := run(t, `
function keysOf(o) {
	var out = [];
	for (var k in o) { out.push(k); }
	return out.join(',');
}
module.exports = keysOf;
`)
	o := in.NewObj()
	o.Set("b", Number(1))
	o.Set("a", Number(2))
	res := callExport(t, in, exports, o)
	if ToString(res) != "a,b" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestFunctionCallApply(t *testing.T) {
	in, exports := run(t, `
function target(a, b) { return a + ':' + b; }
function f(x) {
	var viaCall = target.call(null, x, 'c');
	var viaApply = target.apply(null, [x, 'a']);
	return viaCall + '|' + viaApply;
}
module.exports = f;
`)
	res := callExport(t, in, exports, String("v"))
	if ToString(res) != "v:c|v:a" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestTypeofAndTruthiness(t *testing.T) {
	in, exports := run(t, `
function f(v) {
	if (typeof v !== 'number') { return 'reject'; }
	return 'accept';
}
module.exports = f;
`)
	if ToString(callExport(t, in, exports, String("5"))) != "reject" {
		t.Fatal("string must be rejected")
	}
	if ToString(callExport(t, in, exports, Number(5))) != "accept" {
		t.Fatal("number must be accepted")
	}
}

func TestAllocationSiteReuseDoesNotLeakState(t *testing.T) {
	// Objects created per call must be distinct concretely.
	in, exports := run(t, `
function f(v) {
	var o = {};
	o.x = v;
	return o.x;
}
module.exports = f;
`)
	if ToString(callExport(t, in, exports, String("first"))) != "first" {
		t.Fatal("bad first call")
	}
	if ToString(callExport(t, in, exports, String("second"))) != "second" {
		t.Fatal("state leaked between calls")
	}
}

var _ = core.CountStmts // keep the core import used in helpers
