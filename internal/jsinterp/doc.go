// Package jsinterp is a concrete interpreter for Core JavaScript used
// to confirm findings dynamically: the paper validates reported
// vulnerabilities by running hand-written exploits (§5.3); this
// interpreter runs the equivalent experiment in-process. Sink built-ins
// (exec, eval, fs.*) are instrumented to record their arguments, and
// the object model implements real prototype-chain semantics so
// Object.prototype pollution is observable.
//
// In the pipeline this package sits after detection: internal/poc
// drives a scanned package's exported entry points with
// class-appropriate payloads in a fresh Interp and checks the sink log
// / Object.prototype for evidence. Each Interp owns all of its state
// (heap, scopes, sink log), so independent confirmations may run in
// parallel as long as each uses its own Interp.
package jsinterp
