package jsinterp

import (
	"strings"
	"testing"

	"repro/internal/js/normalize"
)

func TestJSONStringify(t *testing.T) {
	in, exports := run(t, `
function f(o) { return JSON.stringify(o); }
module.exports = f;
`)
	obj := in.NewObj()
	obj.Set("a", Number(1))
	obj.Set("b", String("x"))
	inner := in.NewArray(Number(1), String("two"))
	obj.Set("c", inner)
	res := callExport(t, in, exports, obj)
	got := ToString(res)
	if !strings.Contains(got, `"a":1`) || !strings.Contains(got, `[1,"two"]`) {
		t.Fatalf("stringify = %q", got)
	}
}

func TestJSONParseErrors(t *testing.T) {
	in := New(1000)
	for _, bad := range []string{"", "{", `{"a"}`, "[1,", `"unterminated`, "tru", "{1: 2}"} {
		if _, err := in.jsonParse(bad); err == nil {
			t.Errorf("jsonParse(%q) should fail", bad)
		}
	}
	for _, good := range []string{"{}", "[]", "1.5", "-2", `"s"`, "true", "null",
		`{"a": [1, {"b": null}], "c": "A\n"}`} {
		if _, err := in.jsonParse(good); err != nil {
			t.Errorf("jsonParse(%q): %v", good, err)
		}
	}
}

func TestSwitchExecution(t *testing.T) {
	in, exports := run(t, `
function f(x) {
	var out = '';
	switch (x) {
	case 1:
		out = 'one';
		break;
	case 2:
		out = 'two';
		break;
	default:
		out = 'many';
	}
	return out;
}
module.exports = f;
`)
	if ToString(callExport(t, in, exports, Number(2))) != "two" {
		t.Fatal("case 2 failed")
	}
	if ToString(callExport(t, in, exports, Number(9))) != "many" {
		t.Fatal("default failed")
	}
}

func TestTryCatchOverApproximation(t *testing.T) {
	// Normalization executes try and catch sequentially; the interpreter
	// must tolerate that without crashing.
	in, exports := run(t, `
function f(x) {
	var out = 'start';
	try {
		out = 'tried';
	} catch (e) {
		out = out + '-caught';
	}
	return out;
}
module.exports = f;
`)
	res := callExport(t, in, exports, Number(1))
	if !strings.HasPrefix(ToString(res), "tried") {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestStringMethods(t *testing.T) {
	in, exports := run(t, `
function f(s) {
	return [
		s.indexOf('b'),
		s.includes('bc'),
		s.startsWith('a'),
		s.slice(1, 3),
		s.toUpperCase(),
		s.charAt(0),
		s.trim().length
	].join('|');
}
module.exports = f;
`)
	res := callExport(t, in, exports, String("abc"))
	if ToString(res) != "1|true|true|bc|ABC|a|3" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestTemplateConcatSemantics(t *testing.T) {
	in, exports := run(t, "function f(a) { return `pre ${a} post ${1 + 2}`; }\nmodule.exports = f;")
	res := callExport(t, in, exports, String("X"))
	if ToString(res) != "pre X post 3" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestClassConstruction(t *testing.T) {
	in, exports := run(t, `
class Greeter {
	constructor(name) { this.name = name; }
}
function make(n) { return new Greeter(n); }
module.exports = make;
`)
	obj := callExport(t, in, exports, String("bob")).(*Object)
	if ToString(obj.Get("name")) != "bob" {
		t.Fatalf("name = %v", obj.Get("name"))
	}
}

func TestNumericStringCoercion(t *testing.T) {
	in, exports := run(t, `
function f(a, b) { return a + b; }
module.exports = f;
`)
	// number + number
	if ToNumber(callExport(t, in, exports, Number(2), Number(3))) != 5 {
		t.Fatal("2+3")
	}
	// string + number concatenates
	if ToString(callExport(t, in, exports, String("v"), Number(3))) != "v3" {
		t.Fatal("concat")
	}
}

func TestMapForEachCallbacks(t *testing.T) {
	in, exports := run(t, `
function f(arr) {
	var doubled = arr.map(function(x) { return x * 2; });
	var sum = 0;
	doubled.forEach(function(x) { sum = sum + x; });
	return sum;
}
module.exports = f;
`)
	arr := in.NewArray(Number(1), Number(2), Number(3))
	if ToNumber(callExport(t, in, exports, arr)) != 12 {
		t.Fatal("map/forEach")
	}
}

func TestHasOwnPropertyAndIn(t *testing.T) {
	in, exports := run(t, `
function f(o) {
	return [o.hasOwnProperty('mine'), o.hasOwnProperty('polluted')].join(',');
}
module.exports = f;
`)
	// Pollute, then check hasOwnProperty distinguishes own vs inherited.
	in.ObjectPrototype.Set("polluted", String("yes"))
	o := in.NewObj()
	o.Set("mine", Number(1))
	res := callExport(t, in, exports, o)
	if ToString(res) != "true,false" {
		t.Fatalf("got %q", ToString(res))
	}
}

func TestVMAndSpawnSinks(t *testing.T) {
	in, exports := run(t, `
var vm = require('vm');
const { spawn } = require('child_process');
function f(code, cmd) {
	vm.runInNewContext(code);
	spawn(cmd, ['-c']);
}
module.exports = f;
`)
	callExport(t, in, exports, String("x=1"), String("sh"))
	if len(in.Sinks) != 2 {
		t.Fatalf("sinks = %v", in.Sinks)
	}
	if in.Sinks[0].Sink != "vm.runInNewContext" || in.Sinks[1].Sink != "spawn" {
		t.Fatalf("sinks = %v", in.Sinks)
	}
}

func TestNewFunctionSink(t *testing.T) {
	in, exports := run(t, `
function f(body) {
	var g = new Function('x', body);
	return g(1);
}
module.exports = f;
`)
	res := callExport(t, in, exports, String("return x"))
	_ = res // the constructed function is a harmless stub
	if len(in.Sinks) != 1 || in.Sinks[0].Sink != "Function" {
		t.Fatalf("sinks = %v", in.Sinks)
	}
}

func TestConstructNonConstructor(t *testing.T) {
	prog, err := normalize.File("var x = new notAFunction();", "m.js")
	if err != nil {
		t.Fatal(err)
	}
	in := New(1000)
	if _, err := in.RunModule(prog); err == nil {
		t.Fatal("expected constructor error")
	}
}

func TestToStringVariants(t *testing.T) {
	in := New(100)
	cases := map[string]Value{
		"undefined":       Undefined{},
		"null":            Null{},
		"true":            Bool(true),
		"3":               Number(3),
		"3.5":             Number(3.5),
		"s":               String("s"),
		"[object Object]": in.NewObj(),
		"1,2":             in.NewArray(Number(1), Number(2)),
	}
	for want, v := range cases {
		if got := ToString(v); got != want {
			t.Errorf("ToString(%#v) = %q, want %q", v, got, want)
		}
	}
}

func TestToNumberVariants(t *testing.T) {
	if ToNumber(String(" 42 ")) != 42 {
		t.Error("string number")
	}
	if ToNumber(Bool(true)) != 1 || ToNumber(Bool(false)) != 0 {
		t.Error("bool")
	}
	if ToNumber(Null{}) != 0 {
		t.Error("null")
	}
	if n := ToNumber(Undefined{}); n == n {
		t.Error("undefined must be NaN")
	}
	if n := ToNumber(String("abc")); n == n {
		t.Error("non-numeric string must be NaN")
	}
}

func TestFsReadFileInvokesCallback(t *testing.T) {
	in, exports := run(t, `
var fs = require('fs');
function f(p, done) {
	var got = '';
	fs.readFile(p, function(err, data) { got = data; });
	return got;
}
module.exports = f;
`)
	res := callExport(t, in, exports, String("/etc/hosts"), in.NoopCallback())
	if !strings.Contains(ToString(res), "/etc/hosts") {
		t.Fatalf("callback contents: %q", ToString(res))
	}
}

func TestHTTPCreateServerStub(t *testing.T) {
	_, exports := run(t, `
var http = require('http');
var srv = http.createServer(function(req, res) {});
srv.listen(8080);
function ok() { return 'up'; }
module.exports = ok;
`)
	_ = exports // reaching here without error is the assertion
}

func TestStringConcatWithObjects(t *testing.T) {
	in, exports := run(t, `
function f(o) { return 'v=' + o; }
module.exports = f;
`)
	arr := in.NewArray(String("a"), String("b"))
	if ToString(callExport(t, in, exports, arr)) != "v=a,b" {
		t.Fatal("array concat")
	}
}

func TestCompareOperators(t *testing.T) {
	in, exports := run(t, `
function f(a, b) {
	return [a < b, a > b, a <= b, a >= b, a == b, a != b].join(',');
}
module.exports = f;
`)
	res := callExport(t, in, exports, Number(1), Number(2))
	if ToString(res) != "true,false,true,false,false,true" {
		t.Fatalf("got %q", ToString(res))
	}
	res = callExport(t, in, exports, String("a"), String("b"))
	if ToString(res) != "true,false,true,false,false,true" {
		t.Fatalf("strings: %q", ToString(res))
	}
}
