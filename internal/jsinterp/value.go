package jsinterp

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Value is a JavaScript value.
type Value interface{ typeof() string }

// Undefined is the undefined value.
type Undefined struct{}

// Null is the null value.
type Null struct{}

// Bool is a boolean.
type Bool bool

// Number is a JS number.
type Number float64

// String is a JS string.
type String string

// Object is a JS object with a property table and a prototype link.
type Object struct {
	props map[string]Value
	proto *Object
}

// Function is a closure over Core JavaScript.
type Function struct {
	Name   string
	Params []string
	Body   interface{} // []core.Stmt, kept loose to avoid the import here
	Env    *Env
}

// Builtin is a native function.
type Builtin struct {
	Name string
	Fn   func(in *Interp, this Value, args []Value) (Value, error)
}

func (Undefined) typeof() string { return "undefined" }
func (Null) typeof() string      { return "object" }
func (Bool) typeof() string      { return "boolean" }
func (Number) typeof() string    { return "number" }
func (String) typeof() string    { return "string" }
func (*Object) typeof() string   { return "object" }
func (*Function) typeof() string { return "function" }
func (*Builtin) typeof() string  { return "function" }

// NewObject creates an object with the given prototype.
func NewObject(proto *Object) *Object {
	return &Object{props: map[string]Value{}, proto: proto}
}

// Get reads a property, walking the prototype chain.
func (o *Object) Get(name string) Value {
	for cur := o; cur != nil; cur = cur.proto {
		if v, ok := cur.props[name]; ok {
			return v
		}
	}
	return Undefined{}
}

// GetOwn reads an own property.
func (o *Object) GetOwn(name string) (Value, bool) {
	v, ok := o.props[name]
	return v, ok
}

// Set writes an own property. Writing __proto__ rewires the prototype
// link — the semantics that make prototype pollution possible.
func (o *Object) Set(name string, v Value) {
	if name == "__proto__" {
		if obj, ok := v.(*Object); ok {
			o.proto = obj
		}
		return
	}
	o.props[name] = v
}

// Proto returns the prototype link.
func (o *Object) Proto() *Object { return o.proto }

// Keys returns the own enumerable property names, sorted for
// determinism.
func (o *Object) Keys() []string {
	out := make([]string, 0, len(o.props))
	for k := range o.props {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

// Truthy implements ToBoolean.
func Truthy(v Value) bool {
	switch x := v.(type) {
	case Undefined, Null:
		return false
	case Bool:
		return bool(x)
	case Number:
		return x != 0 && x == x // NaN is falsy
	case String:
		return x != ""
	default:
		return true
	}
}

// ToString implements the string conversion used by concatenation.
func ToString(v Value) string {
	switch x := v.(type) {
	case Undefined:
		return "undefined"
	case Null:
		return "null"
	case Bool:
		if x {
			return "true"
		}
		return "false"
	case Number:
		f := float64(x)
		if f == float64(int64(f)) {
			return strconv.FormatInt(int64(f), 10)
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	case String:
		return string(x)
	case *Object:
		// Arrays (objects with a length or index 0) join with commas;
		// other objects render like Node's default.
		_, hasLen := x.GetOwn("length")
		_, hasZero := x.GetOwn("0")
		if hasLen || hasZero {
			var parts []string
			n := lengthOf(x)
			for i := 0; i < n; i++ {
				el, _ := x.GetOwn(strconv.Itoa(i))
				if el == nil {
					el = Undefined{}
				}
				parts = append(parts, ToString(el))
			}
			return strings.Join(parts, ",")
		}
		return "[object Object]"
	case *Function:
		return "function " + x.Name + "() { ... }"
	case *Builtin:
		return "function " + x.Name + "() { [native] }"
	}
	return fmt.Sprintf("%v", v)
}

// ToNumber implements the numeric conversion.
func ToNumber(v Value) float64 {
	switch x := v.(type) {
	case Number:
		return float64(x)
	case Bool:
		if x {
			return 1
		}
		return 0
	case String:
		s := strings.TrimSpace(string(x))
		if s == "" {
			return 0
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nan()
		}
		return f
	case Undefined:
		return nan()
	case Null:
		return 0
	}
	return nan()
}

func nan() float64 {
	var zero float64
	return 0 / zero
}

func lengthOf(o *Object) int {
	if v, ok := o.GetOwn("length"); ok {
		return int(ToNumber(v))
	}
	// Array literals lower to plain objects with numeric properties;
	// recover the length by scanning indices.
	n := 0
	for {
		if _, ok := o.GetOwn(strconv.Itoa(n)); !ok {
			return n
		}
		n++
	}
}

// Env is a lexical environment.
type Env struct {
	vars   map[string]Value
	parent *Env
}

// NewEnv creates an environment with an optional parent.
func NewEnv(parent *Env) *Env {
	return &Env{vars: map[string]Value{}, parent: parent}
}

// Get resolves a variable.
func (e *Env) Get(name string) (Value, bool) {
	for cur := e; cur != nil; cur = cur.parent {
		if v, ok := cur.vars[name]; ok {
			return v, true
		}
	}
	return nil, false
}

// Set assigns to the innermost binding, defaulting to this scope.
func (e *Env) Set(name string, v Value) {
	for cur := e; cur != nil; cur = cur.parent {
		if _, ok := cur.vars[name]; ok {
			cur.vars[name] = v
			return
		}
	}
	e.vars[name] = v
}

// SetLocal binds in this scope.
func (e *Env) SetLocal(name string, v Value) { e.vars[name] = v }

// SetOwnProto stores v as an own `__proto__` property, bypassing the
// magic setter — the JSON.parse behaviour that pollution payloads rely
// on (the later assignment step does the actual pollution).
func (o *Object) SetOwnProto(v Value) { o.props["__proto__"] = v }
