package jsinterp

import (
	"errors"
	"fmt"
	"path"
	"strconv"
	"strings"

	"repro/internal/core"
)

// stubMarker marks objects standing in for unknown external modules:
// any property access on them yields a harmless no-op function.
const stubMarker = "__stub__"

// NewArray builds an array object.
func (in *Interp) NewArray(vals ...Value) *Object {
	arr := in.NewObj()
	for i, v := range vals {
		arr.Set(strconv.Itoa(i), v)
	}
	arr.Set("length", Number(len(vals)))
	return arr
}

func (in *Interp) noop(name string) *Builtin {
	return &Builtin{Name: name, Fn: func(in *Interp, this Value, args []Value) (Value, error) {
		// Unknown helper: invoke any function arguments once with the
		// other arguments (callback convention), then return undefined.
		for _, a := range args {
			if fn, ok := a.(*Function); ok {
				var rest []Value
				for _, o := range args {
					if o != a {
						rest = append(rest, o)
					}
				}
				if _, err := in.CallFunction(fn, Undefined{}, rest); err != nil && errors.Is(err, ErrBudget) {
					return nil, err
				}
				break
			}
		}
		return Undefined{}, nil
	}}
}

func (in *Interp) sink(name string, result func(in *Interp, args []Value) Value) *Builtin {
	return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		ip.Sinks = append(ip.Sinks, SinkEvent{Sink: name, Args: renderArgs(args)})
		if result != nil {
			return result(ip, args), nil
		}
		return Undefined{}, nil
	}}
}

// setupGlobals installs the global environment: instrumented sinks,
// JSON/Object/console, and common constructors.
func (in *Interp) setupGlobals() {
	g := in.genv

	g.SetLocal("undefined", Undefined{})
	g.SetLocal("eval", in.sink("eval", nil))
	g.SetLocal("Function", in.sink("Function", func(ip *Interp, args []Value) Value {
		return &Builtin{Name: "anonymous", Fn: func(*Interp, Value, []Value) (Value, error) {
			return Undefined{}, nil
		}}
	}))
	g.SetLocal("setTimeout", in.sink("setTimeout", func(ip *Interp, args []Value) Value {
		if len(args) > 0 {
			if fn, ok := args[0].(*Function); ok {
				_, _ = ip.CallFunction(fn, Undefined{}, nil)
			}
		}
		return Number(1)
	}))
	g.SetLocal("setInterval", in.sink("setInterval", nil))

	object := in.NewObj()
	object.Set("assign", &Builtin{Name: "Object.assign", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined{}, nil
		}
		target, ok := args[0].(*Object)
		if !ok {
			return args[0], nil
		}
		for _, src := range args[1:] {
			if so, ok := src.(*Object); ok {
				for _, k := range so.Keys() {
					v, _ := so.GetOwn(k)
					target.Set(k, v)
				}
			}
		}
		return target, nil
	}})
	object.Set("keys", &Builtin{Name: "Object.keys", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return ip.NewArray(), nil
		}
		if o, ok := args[0].(*Object); ok {
			var keys []Value
			for _, k := range o.Keys() {
				keys = append(keys, String(k))
			}
			return ip.NewArray(keys...), nil
		}
		return ip.NewArray(), nil
	}})
	object.Set("values", &Builtin{Name: "Object.values", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return ip.NewArray(), nil
		}
		if o, ok := args[0].(*Object); ok {
			var vals []Value
			for _, k := range o.Keys() {
				v, _ := o.GetOwn(k)
				vals = append(vals, v)
			}
			return ip.NewArray(vals...), nil
		}
		return ip.NewArray(), nil
	}})
	g.SetLocal("Object", object)

	jsonObj := in.NewObj()
	jsonObj.Set("parse", &Builtin{Name: "JSON.parse", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Undefined{}, nil
		}
		return ip.jsonParse(ToString(args[0]))
	}})
	jsonObj.Set("stringify", &Builtin{Name: "JSON.stringify", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		return String(jsonStringify(args[0])), nil
	}})
	g.SetLocal("JSON", jsonObj)

	console := in.NewObj()
	console.Set("log", in.noopSilent("console.log"))
	console.Set("error", in.noopSilent("console.error"))
	g.SetLocal("console", console)

	g.SetLocal("String", &Builtin{Name: "String", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String(""), nil
		}
		return String(ToString(args[0])), nil
	}})
	g.SetLocal("Number", &Builtin{Name: "Number", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(0), nil
		}
		return Number(ToNumber(args[0])), nil
	}})
	g.SetLocal("parseInt", &Builtin{Name: "parseInt", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(nan()), nil
		}
		return Number(float64(int64(ToNumber(args[0])))), nil
	}})
	g.SetLocal("Error", &Builtin{Name: "Error", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		e := ip.NewObj()
		if len(args) > 0 {
			e.Set("message", String(ToString(args[0])))
		}
		return e, nil
	}})
	g.SetLocal("TypeError", mustGet(g, "Error"))
	g.SetLocal("Array", &Builtin{Name: "Array", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
		return ip.NewArray(args...), nil
	}})
	g.SetLocal("Date", in.dateObject())
	global := in.NewObj()
	g.SetLocal("global", global)
	process := in.NewObj()
	process.Set("platform", String("linux"))
	process.Set("exit", in.noopSilent("process.exit"))
	g.SetLocal("process", process)
}

func mustGet(e *Env, name string) Value {
	v, _ := e.Get(name)
	return v
}

// noopSilent is a no-op builtin that does not invoke callbacks.
func (in *Interp) noopSilent(name string) *Builtin {
	return &Builtin{Name: name, Fn: func(*Interp, Value, []Value) (Value, error) {
		return Undefined{}, nil
	}}
}

func (in *Interp) dateObject() Value {
	d := in.NewObj()
	counter := 0
	d.Set("now", &Builtin{Name: "Date.now", Fn: func(*Interp, Value, []Value) (Value, error) {
		counter++
		return Number(1700000000000 + counter), nil
	}})
	return d
}

// requireModule implements require(spec).
func (in *Interp) requireModule(spec string) (Value, error) {
	switch spec {
	case "child_process":
		m := in.NewObj()
		m.Set("exec", in.sink("exec", nil))
		m.Set("execSync", in.sink("execSync", func(ip *Interp, args []Value) Value { return String("") }))
		m.Set("spawn", in.sink("spawn", func(ip *Interp, args []Value) Value { return ip.NewObj() }))
		m.Set("spawnSync", in.sink("spawnSync", func(ip *Interp, args []Value) Value { return ip.NewObj() }))
		m.Set("execFile", in.sink("execFile", nil))
		m.Set("execFileSync", in.sink("execFileSync", nil))
		return m, nil
	case "fs":
		m := in.NewObj()
		read := func(name string) *Builtin {
			return &Builtin{Name: name, Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
				ip.Sinks = append(ip.Sinks, SinkEvent{Sink: name, Args: renderArgs(args)})
				contents := String("<contents of " + ToString(firstArg(args)) + ">")
				for _, a := range args {
					if fn, ok := a.(*Function); ok {
						if _, err := ip.CallFunction(fn, Undefined{}, []Value{Null{}, contents}); err != nil && errors.Is(err, ErrBudget) {
							return nil, err
						}
						return Undefined{}, nil
					}
				}
				return contents, nil
			}}
		}
		for _, fn := range []string{"readFile", "readFileSync", "createReadStream", "readdir", "readdirSync"} {
			m.Set(fn, read("fs."+fn))
		}
		for _, fn := range []string{"writeFile", "writeFileSync", "createWriteStream", "appendFile",
			"appendFileSync", "unlink", "unlinkSync", "access"} {
			m.Set(fn, in.sink("fs."+fn, nil))
		}
		return m, nil
	case "path":
		m := in.NewObj()
		m.Set("basename", &Builtin{Name: "path.basename", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return String(path.Base(ToString(firstArg(args)))), nil
		}})
		m.Set("dirname", &Builtin{Name: "path.dirname", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			return String(path.Dir(ToString(firstArg(args)))), nil
		}})
		m.Set("join", &Builtin{Name: "path.join", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			parts := make([]string, len(args))
			for i, a := range args {
				parts[i] = ToString(a)
			}
			return String(path.Join(parts...)), nil
		}})
		return m, nil
	case "vm":
		m := in.NewObj()
		for _, fn := range []string{"runInContext", "runInNewContext", "runInThisContext"} {
			m.Set(fn, in.sink("vm."+fn, nil))
		}
		return m, nil
	case "http":
		m := in.NewObj()
		m.Set("createServer", &Builtin{Name: "http.createServer", Fn: func(ip *Interp, this Value, args []Value) (Value, error) {
			srv := ip.NewObj()
			srv.Set("listen", ip.noopSilent("listen"))
			return srv, nil
		}})
		return m, nil
	}
	// Relative sibling modules.
	if strings.HasPrefix(spec, "./") || strings.HasPrefix(spec, "../") {
		if prog, ok := in.resolveSibling(spec); ok {
			return in.RunModule(prog)
		}
	}
	// Unknown external module: a stub whose members are no-ops.
	stub := in.NewObj()
	stub.Set(stubMarker, Bool(true))
	return stub, nil
}

func (in *Interp) resolveSibling(spec string) (*core.Program, bool) {
	clean := path.Clean(strings.TrimPrefix(spec, "./"))
	for _, cand := range []string{clean, clean + ".js", path.Join(clean, "index.js")} {
		if p, ok := in.modules[cand]; ok {
			return p, true
		}
	}
	base := path.Base(clean)
	for name, p := range in.modules {
		nb := strings.TrimSuffix(path.Base(name), ".js")
		if nb == base || nb == strings.TrimSuffix(base, ".js") {
			return p, true
		}
	}
	return nil, false
}

func firstArg(args []Value) Value {
	if len(args) == 0 {
		return Undefined{}
	}
	return args[0]
}

// call executes `x := f(args)` including require, method dispatch and
// stub fallback.
func (in *Interp) call(x *core.Call, env *Env) error {
	var args []Value
	for _, a := range x.Args {
		v, err := in.eval(a, env)
		if err != nil {
			return err
		}
		args = append(args, v)
	}

	if x.CalleeName == "require" && len(args) == 1 {
		mod, err := in.requireModule(ToString(args[0]))
		if err != nil {
			return err
		}
		env.Set(x.X, mod)
		return nil
	}

	calleeV, err := in.eval(x.Callee, env)
	if err != nil {
		return err
	}
	var thisV Value
	if x.This != nil {
		thisV, err = in.eval(x.This, env)
		if err != nil {
			return err
		}
		// Method on a stub module: a no-op.
		if obj, ok := thisV.(*Object); ok {
			if _, isStub := obj.GetOwn(stubMarker); isStub {
				if _, undef := calleeV.(Undefined); undef {
					calleeV = in.noop(x.CalleeName)
				}
			}
		}
	}

	if x.IsNew {
		return in.construct(x, calleeV, args, env)
	}

	res, err := in.CallFunction(calleeV, thisV, args)
	if err != nil {
		var rs returnSignal
		if errors.As(err, &rs) {
			res = rs.v
		} else {
			return err
		}
	}
	env.Set(x.X, res)
	return nil
}

// construct implements `new F(args)`.
func (in *Interp) construct(x *core.Call, calleeV Value, args []Value, env *Env) error {
	switch f := calleeV.(type) {
	case *Builtin:
		res, err := f.Fn(in, Undefined{}, args)
		if err != nil {
			return err
		}
		env.Set(x.X, res)
		return nil
	case *Function:
		this := in.NewObj()
		if _, err := in.CallFunction(f, this, args); err != nil {
			return err
		}
		env.Set(x.X, this)
		return nil
	default:
		return fmt.Errorf("jsinterp: %s is not a constructor", x.CalleeName)
	}
}

// NoopCallback returns a callable that ignores its arguments; used by
// drivers for Node-style trailing callbacks.
func (in *Interp) NoopCallback() Value { return in.noopSilent("callback") }
