package taint

import (
	"fmt"

	"repro/internal/graphdb"
	"repro/internal/mdg"
	"repro/internal/queries"
)

// Detect runs every Table 2 vulnerability query against the computed
// taint facts. It produces the same finding set as queries.Detect on
// the same analysis result and configuration — the differential mode
// of the scanner asserts exactly that.
func (e *Engine) Detect() []queries.Finding {
	var out []queries.Finding
	out = append(out, e.detectTaintStyle(queries.CWEPathTraversal)...)
	out = append(out, e.detectTaintStyle(queries.CWECommandInjection)...)
	out = append(out, e.detectTaintStyle(queries.CWECodeInjection)...)
	out = append(out, e.detectPrototypePollution()...)
	return queries.SortFindings(out)
}

// locPath converts an MDG-location witness into the Finding.Path node
// sequence. The database loader assigns node ids in location order, so
// the locations themselves are the canonical witness identifiers for
// the native backend.
func locPath(locs []mdg.Loc) []graphdb.NodeID {
	if locs == nil {
		return nil
	}
	out := make([]graphdb.NodeID, len(locs))
	for i, l := range locs {
		out[i] = graphdb.NodeID(l)
	}
	return out
}

// detectTaintStyle answers TaintPath_{o_s} ∘ Arg_{f,n} for one class
// off the fixpoint facts: a sink call argument must hold a location
// some source's bit reached.
func (e *Engine) detectTaintStyle(cwe queries.CWE) []queries.Finding {
	sinks := e.cfg.SinksFor(cwe)
	if len(sinks) == 0 || len(e.sources) == 0 {
		return nil
	}
	var out []queries.Finding
	seen := map[string]bool{}
	for _, n := range e.res.Graph.NodesOfKind(mdg.KindCall) {
		var sink *queries.Sink
		for i := range sinks {
			if queries.MatchSink(n.CallName, sinks[i].Name) {
				sink = &sinks[i]
				break
			}
		}
		if sink == nil {
			continue
		}
		for _, argPos := range sink.Args {
			if argPos >= len(n.CallArgs) {
				continue
			}
			for _, argLoc := range n.CallArgs[argPos] {
				for i, src := range e.sources {
					if !e.taintedBy(argLoc, i) {
						continue
					}
					key := fmt.Sprintf("%s/%s/%d/%s", cwe, n.File, n.Line, n.CallName)
					if seen[key] {
						continue
					}
					seen[key] = true
					out = append(out, queries.Finding{
						CWE:      cwe,
						SinkName: n.CallName,
						SinkLine: n.Line,
						SinkFile: n.File,
						Source:   src.Label,
						Path:     locPath(e.witness(i, argLoc)),
					})
				}
			}
		}
	}
	return out
}

// detectPrototypePollution answers the Table 2 pollution query
// (ObjLookup* ∘ ObjAssignment* with three taint-path filters) plus the
// literal `__proto__` / `constructor.prototype` variant, using the sub-
// object roots collected before the fixpoint in place of the query
// engine's per-sub TaintReach searches.
func (e *Engine) detectPrototypePollution() []queries.Finding {
	if len(e.sources) == 0 {
		return nil
	}
	tainted := func(l mdg.Loc) (int, bool) {
		for i := range e.sources {
			if e.taintedBy(l, i) {
				return i, true
			}
		}
		return 0, false
	}

	var out []queries.Finding
	seen := map[string]bool{}

	out = append(out, e.detectLiteralProtoPollution(tainted, seen)...)

	// All dynamic assignments in the graph: mid -V(*)-> ver -P(*)-> val,
	// in deterministic node/edge order.
	type assign struct{ mid, ver, val *mdg.Node }
	var assigns []assign
	g := e.res.Graph
	for _, mid := range g.Nodes() {
		for _, ve := range g.Out(mid.Loc) {
			if ve.Type != mdg.VerStar {
				continue
			}
			ver := g.Node(ve.To)
			if ver == nil {
				continue
			}
			for _, pe := range g.Out(ver.Loc) {
				if pe.Type != mdg.PropStar {
					continue
				}
				if val := g.Node(pe.To); val != nil {
					assigns = append(assigns, assign{mid: mid, ver: ver, val: val})
				}
			}
		}
	}

	for _, pair := range e.lookupPairs {
		sub := pair[1]
		// The lookup property must be attacker-controlled: sub is
		// tainted via its dynamic-property dependency.
		si, ok := tainted(sub.Loc)
		if !ok {
			continue
		}
		subBit := e.rootOf[sub.Loc]
		for _, av := range assigns {
			// The assignment must act on an object the sub-object
			// taints (ObjAssignmentStar's reachability filter).
			if av.mid.Loc != sub.Loc && !e.taintedBy(av.mid.Loc, subBit) {
				continue
			}
			if _, ok := tainted(av.ver.Loc); !ok {
				continue // assigned property name not controlled
			}
			if _, ok := tainted(av.val.Loc); !ok {
				continue // assigned value not controlled
			}
			key := fmt.Sprintf("pp/%s/%d", av.ver.File, av.ver.Line)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, queries.Finding{
				CWE:      queries.CWEPrototypePollution,
				SinkName: "prototype pollution",
				SinkLine: av.ver.Line,
				SinkFile: av.ver.File,
				Source:   e.sources[si].Label,
				Path:     locPath(e.witness(si, sub.Loc)),
			})
		}
	}
	return out
}

// detectLiteralProtoPollution finds the static `__proto__` pattern:
// an explicit prototype-object lookup with any later write on (a
// version of) it whose assigned value is attacker-controlled.
func (e *Engine) detectLiteralProtoPollution(tainted func(mdg.Loc) (int, bool),
	seen map[string]bool) []queries.Finding {
	g := e.res.Graph
	var out []queries.Finding
	for _, sub := range e.protoSubs {
		// mids: everything version-reachable from sub in at most six
		// hops (the query's V*0..6), including sub itself.
		mids := []mdg.Loc{sub.Loc}
		midSeen := map[mdg.Loc]bool{sub.Loc: true}
		for hop, lo := 0, 0; hop < 6; hop++ {
			hi := len(mids)
			for ; lo < hi; lo++ {
				for _, ve := range g.Out(mids[lo]) {
					if (ve.Type == mdg.Ver || ve.Type == mdg.VerStar) && !midSeen[ve.To] {
						midSeen[ve.To] = true
						mids = append(mids, ve.To)
					}
				}
			}
		}
		type wr struct{ ver, val *mdg.Node }
		var writes []wr
		wrSeen := map[[2]mdg.Loc]bool{}
		for _, mid := range mids {
			for _, ve := range g.Out(mid) {
				if ve.Type != mdg.Ver && ve.Type != mdg.VerStar {
					continue
				}
				ver := g.Node(ve.To)
				if ver == nil {
					continue
				}
				for _, pe := range g.Out(ver.Loc) {
					if pe.Type != mdg.Prop && pe.Type != mdg.PropStar {
						continue
					}
					val := g.Node(pe.To)
					if val == nil || wrSeen[[2]mdg.Loc{ver.Loc, val.Loc}] {
						continue
					}
					wrSeen[[2]mdg.Loc{ver.Loc, val.Loc}] = true
					writes = append(writes, wr{ver: ver, val: val})
				}
			}
		}
		for _, w := range writes {
			si, ok := tainted(w.val.Loc)
			if !ok {
				continue
			}
			key := fmt.Sprintf("pp/%s/%d", w.ver.File, w.ver.Line)
			if seen[key] {
				continue
			}
			seen[key] = true
			out = append(out, queries.Finding{
				CWE:      queries.CWEPrototypePollution,
				SinkName: "prototype pollution",
				SinkLine: w.ver.Line,
				SinkFile: w.ver.File,
				Source:   e.sources[si].Label,
				Path:     locPath(e.witness(si, w.val.Loc)),
			})
		}
	}
	return out
}
