package taint

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/js/normalize"
	"repro/internal/mdg"
	"repro/internal/queries"
)

func analyze(t *testing.T, src string) *analysis.Result {
	t.Helper()
	prog, err := normalize.File(src, "test.js")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return analysis.Analyze(prog, analysis.DefaultOptions())
}

const execSrc = `
const { exec } = require('child_process');
function run(cmd) { exec('git ' + cmd); }
module.exports = run;
`

func TestDetectCommandInjection(t *testing.T) {
	e := NewEngine(analyze(t, execSrc), queries.DefaultConfig())
	fs := e.Detect()
	if len(fs) != 1 || fs[0].CWE != queries.CWECommandInjection {
		t.Fatalf("findings = %v", fs)
	}
	if fs[0].SinkLine != 3 || fs[0].SinkName != "exec" || fs[0].Source != "cmd" {
		t.Errorf("finding metadata = %+v", fs[0])
	}
	if len(fs[0].Path) < 2 {
		t.Errorf("witness path too short: %v", fs[0].Path)
	}
}

func TestWitnessEndpoints(t *testing.T) {
	res := analyze(t, execSrc)
	e := NewEngine(res, queries.DefaultConfig())
	if len(e.sources) != 1 {
		t.Fatalf("sources = %d", len(e.sources))
	}
	src := e.sources[0]
	fs := e.Detect()
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	path := fs[0].Path
	if mdg.Loc(path[0]) != src.Loc {
		t.Errorf("witness must start at the source: %v (source o%d)", path, src.Loc)
	}
	// Every step of the witness must be a real graph edge.
	for i := 1; i < len(path); i++ {
		found := false
		for _, edge := range res.Graph.Out(mdg.Loc(path[i-1])) {
			if edge.To == mdg.Loc(path[i]) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("witness step o%d -> o%d is not an edge", path[i-1], path[i])
		}
	}
}

func TestOverwriteKillsTaint(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(input) {
	var opts = {};
	opts.cmd = input;
	opts.cmd = 'git status';
	exec(opts.cmd);
}
module.exports = run;
`
	fs := NewEngine(analyze(t, src), queries.DefaultConfig()).Detect()
	for _, f := range fs {
		if f.CWE == queries.CWECommandInjection {
			t.Fatalf("overwritten taint still flagged: %v", fs)
		}
	}
}

func TestSanitizerBarrier(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(input) { exec(shellEscape(input)); }
module.exports = run;
`
	cfg := queries.DefaultConfig()
	cfg.Sanitizers = []string{"shellEscape"}
	fs := NewEngine(analyze(t, src), cfg).Detect()
	if len(fs) != 0 {
		t.Fatalf("sanitized flow flagged: %v", fs)
	}
}

func TestTruncationCounter(t *testing.T) {
	res := analyze(t, execSrc)
	cfg := queries.DefaultConfig()
	cfg.MaxHops = 1
	e := NewEngine(res, cfg)
	if e.Truncated == 0 {
		t.Error("hop bound 1 must truncate some propagation")
	}
	full := NewEngine(res, queries.DefaultConfig())
	if full.Truncated != 0 {
		t.Errorf("default hop bound must not truncate: %d", full.Truncated)
	}
}

func TestReachesFrom(t *testing.T) {
	res := analyze(t, execSrc)
	e := NewEngine(res, queries.DefaultConfig())
	src := e.sources[0]
	if !e.ReachesFrom(src.Loc, src.Loc) {
		t.Error("a source must reach itself")
	}
	if e.States() == 0 {
		t.Error("fixpoint created no states")
	}
}

func TestEmptyGraph(t *testing.T) {
	e := NewEngine(analyze(t, "var x = 1;"), queries.DefaultConfig())
	if fs := e.Detect(); len(fs) != 0 {
		t.Fatalf("findings on trivial program: %v", fs)
	}
}
