// Package taint is the native detection backend: a static dataflow
// pass that computes sanitizer-aware taint facts directly on the MDG
// produced by the analysis, without loading it into the graph
// database. Where the query backend (internal/queries) answers each
// Table 2 query with a per-(source,sink) DFS, this pass runs ONE
// worklist fixpoint per package that propagates per-root taint bitsets
// along D/P/V edges and then reads every detection answer off the
// computed facts.
//
// The UntaintedPath condition of Table 1 — a V(p) edge followed later
// by a P(p) edge means the tainted property was overwritten — is part
// of the dataflow state: facts are keyed by (node, written-set), where
// the written-set is the interned set of properties version-written
// along the way. This preserves TaintPath semantics exactly rather
// than approximating them; the state space is the same one the query
// engine's memoized DFS explores.
//
// Witness paths are recovered from predecessor edges recorded the
// first time a root's bit reaches a state, so no post-hoc search is
// needed to report a finding.
package taint

import (
	"math/bits"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/mdg"
	"repro/internal/queries"
)

// wsID is an interned written-property set.
type wsID uint32

// state is one dataflow fact key: an MDG node plus the set of
// properties that were version-written along the paths reaching it.
type state struct {
	loc mdg.Loc
	ws  wsID
}

// predKey addresses the predecessor of one root's bit at one state.
type predKey struct {
	st  state
	bit int
}

// Engine holds the fixpoint result for one analyzed package. Build it
// with NewEngine (which runs the fixpoint eagerly), then query taint
// facts or run Detect.
type Engine struct {
	res *analysis.Result
	cfg *queries.Config

	maxHops   int
	sanitized map[mdg.Loc]bool

	// Detection roots. sources are the taint sources (parameters of
	// exported functions); the remaining roots are the sub-objects of
	// the pollution queries, which the query engine reaches with their
	// own TaintReach searches.
	sources []*mdg.Node
	roots   []mdg.Loc
	rootOf  map[mdg.Loc]int // loc -> its bit (first wins)
	words   int

	// Pollution structure extracted from the graph (in deterministic
	// node/edge order, mirroring the query engine's scan order).
	lookupPairs [][2]*mdg.Node // (o, sub) with o -P(*)-> sub
	protoSubs   []*mdg.Node    // P(__proto__) / constructor.prototype targets

	facts       map[state][]uint64
	depth       map[state]int
	agg         map[mdg.Loc][]uint64 // per-node union over all states
	statesByLoc map[mdg.Loc][]state
	pred        map[predKey]state
	queue       []state
	inQueue     map[state]bool

	wsIntern map[string]wsID
	wsProps  [][]string // wsID -> sorted property names

	// Truncated counts fixpoint states abandoned at the hop bound with
	// unexplored out-edges — the observable form of the silent
	// under-approximation the hop bound introduces.
	Truncated int
	truncated map[state]bool

	// bud is the scan-wide fault-containment budget (nil = unlimited);
	// the fixpoint charges one step per state popped. Incomplete
	// reports that the fixpoint stopped early on a budget hit, so the
	// detected findings are a sound-but-partial subset.
	bud        *budget.Budget
	Incomplete bool
}

// NewEngine builds the dataflow engine for one analysis result and
// runs the taint fixpoint. cfg may be nil (DefaultConfig is used).
func NewEngine(res *analysis.Result, cfg *queries.Config) *Engine {
	return NewEngineBudget(res, cfg, nil)
}

// NewEngineBudget is NewEngine under a fault-containment budget: the
// worklist fixpoint checks b per popped state and stops early —
// marking the engine Incomplete — when the deadline or step cap trips.
func NewEngineBudget(res *analysis.Result, cfg *queries.Config, b *budget.Budget) *Engine {
	if cfg == nil {
		cfg = queries.DefaultConfig()
	}
	maxHops := cfg.MaxHops
	if maxHops <= 0 {
		maxHops = queries.DefaultMaxHops
	}
	e := &Engine{
		res:         res,
		cfg:         cfg,
		maxHops:     maxHops,
		sanitized:   map[mdg.Loc]bool{},
		rootOf:      map[mdg.Loc]int{},
		facts:       map[state][]uint64{},
		depth:       map[state]int{},
		agg:         map[mdg.Loc][]uint64{},
		statesByLoc: map[mdg.Loc][]state{},
		pred:        map[predKey]state{},
		inQueue:     map[state]bool{},
		wsIntern:    map[string]wsID{"": 0},
		wsProps:     [][]string{nil},
		truncated:   map[state]bool{},
		bud:         b,
	}
	e.collectSanitizers()
	e.collectRoots()
	e.run()
	return e
}

// collectSanitizers mirrors LoadedGraph.ApplySanitizers: call nodes
// whose callee matches a configured sanitizer are taint barriers.
func (e *Engine) collectSanitizers() {
	if len(e.cfg.Sanitizers) == 0 {
		return
	}
	for _, n := range e.res.Graph.NodesOfKind(mdg.KindCall) {
		if e.cfg.IsSanitizer(n.CallName) {
			e.sanitized[n.Loc] = true
		}
	}
}

// collectRoots gathers the fixpoint roots in the same order the query
// engine discovers them: taint sources first (Param nodes marked
// Source, in insertion order), then the dynamic-lookup sub-objects
// (P(*) edge targets), then the literal-prototype sub-objects
// (P(__proto__) targets and constructor→prototype chains).
func (e *Engine) collectRoots() {
	g := e.res.Graph
	seenSub := map[mdg.Loc]bool{}
	seenProto := map[mdg.Loc]bool{}
	for _, n := range g.Nodes() {
		if n.Kind == mdg.KindParam && n.Source {
			e.sources = append(e.sources, n)
		}
		for _, edge := range g.Out(n.Loc) {
			switch edge.Type {
			case mdg.PropStar:
				if sub := g.Node(edge.To); sub != nil {
					e.lookupPairs = append(e.lookupPairs, [2]*mdg.Node{n, sub})
					seenSub[edge.To] = true
				}
			case mdg.Prop:
				switch edge.Prop {
				case "__proto__":
					if sub := g.Node(edge.To); sub != nil && !seenProto[edge.To] {
						seenProto[edge.To] = true
						e.protoSubs = append(e.protoSubs, sub)
					}
				case "constructor":
					for _, ce := range g.Out(edge.To) {
						if ce.Type == mdg.Prop && ce.Prop == "prototype" {
							if sub := g.Node(ce.To); sub != nil && !seenProto[ce.To] {
								seenProto[ce.To] = true
								e.protoSubs = append(e.protoSubs, sub)
							}
						}
					}
				}
			}
		}
	}
	for _, s := range e.sources {
		e.addRoot(s.Loc)
	}
	done := map[mdg.Loc]bool{}
	for _, p := range e.lookupPairs {
		if !done[p[1].Loc] {
			done[p[1].Loc] = true
			e.addRoot(p[1].Loc)
		}
	}
	for _, s := range e.protoSubs {
		if !done[s.Loc] {
			done[s.Loc] = true
			e.addRoot(s.Loc)
		}
	}
	e.words = (len(e.roots) + 63) / 64
}

func (e *Engine) addRoot(l mdg.Loc) {
	bit := len(e.roots)
	e.roots = append(e.roots, l)
	if _, ok := e.rootOf[l]; !ok {
		e.rootOf[l] = bit
	}
}

// edgeProp returns the property name an edge carries for the
// UntaintedPath interaction: star edges read/write the "*"
// pseudo-property, exactly as the database load renders them.
func edgeProp(edge mdg.Edge) string {
	if edge.Type == mdg.PropStar || edge.Type == mdg.VerStar {
		return queries.StarProp
	}
	return edge.Prop
}

// run executes the worklist fixpoint.
func (e *Engine) run() {
	if e.words == 0 {
		return
	}
	g := e.res.Graph
	for bit, loc := range e.roots {
		st := state{loc: loc}
		if _, ok := e.depth[st]; !ok {
			e.depth[st] = 0
		}
		if e.setBit(st, bit, state{}, true) {
			e.push(st)
		}
	}
	for len(e.queue) > 0 {
		if e.bud.Step() != nil {
			// Budget hit mid-fixpoint: keep the facts computed so far
			// (monotone, hence sound-but-partial) and let Detect report
			// the findings they support.
			e.Incomplete = true
			return
		}
		st := e.queue[0]
		e.queue = e.queue[1:]
		e.inQueue[st] = false
		d := e.depth[st]
		if d >= e.maxHops {
			if len(g.Out(st.loc)) > 0 && !e.truncated[st] {
				e.truncated[st] = true
				e.Truncated++
			}
			continue
		}
		bits := e.facts[st]
		for _, edge := range g.Out(st.loc) {
			if e.sanitized[edge.To] {
				// Sanitizer call: its result is clean (§6).
				continue
			}
			ws := st.ws
			switch edge.Type {
			case mdg.Ver, mdg.VerStar:
				ws = e.withProp(ws, edgeProp(edge))
			case mdg.Prop, mdg.PropStar:
				// Reading a property that was overwritten along the
				// way yields the untainted (new) value: prune
				// (UntaintedPath pattern V(p) … P(p)).
				if e.wsHas(st.ws, edgeProp(edge)) {
					continue
				}
			}
			nst := state{loc: edge.To, ws: ws}
			if e.orInto(nst, bits, st) {
				if _, ok := e.depth[nst]; !ok {
					e.depth[nst] = d + 1
				}
				e.push(nst)
			}
		}
	}
}

func (e *Engine) push(st state) {
	if !e.inQueue[st] {
		e.inQueue[st] = true
		e.queue = append(e.queue, st)
	}
}

// setBit sets one bit at a state, recording the predecessor (unless it
// is a root arrival). Reports whether the fact changed.
func (e *Engine) setBit(st state, bit int, from state, isRoot bool) bool {
	dst := e.ensureState(st)
	w, m := bit/64, uint64(1)<<(bit%64)
	if dst[w]&m != 0 {
		return false
	}
	dst[w] |= m
	e.agg[st.loc][w] |= m
	if !isRoot {
		e.pred[predKey{st: st, bit: bit}] = from
	}
	return true
}

// orInto merges a predecessor's bitset into a state, recording the
// predecessor for every newly arrived bit. Reports whether anything
// changed.
func (e *Engine) orInto(st state, add []uint64, from state) bool {
	dst := e.ensureState(st)
	aggBits := e.agg[st.loc]
	changed := false
	for w := 0; w < e.words; w++ {
		fresh := add[w] &^ dst[w]
		if fresh == 0 {
			continue
		}
		changed = true
		dst[w] |= fresh
		aggBits[w] |= fresh
		for fresh != 0 {
			b := bits.TrailingZeros64(fresh)
			fresh &^= 1 << uint(b)
			e.pred[predKey{st: st, bit: w*64 + b}] = from
		}
	}
	return changed
}

func (e *Engine) ensureState(st state) []uint64 {
	dst, ok := e.facts[st]
	if !ok {
		dst = make([]uint64, e.words)
		e.facts[st] = dst
		e.statesByLoc[st.loc] = append(e.statesByLoc[st.loc], st)
		if e.agg[st.loc] == nil {
			e.agg[st.loc] = make([]uint64, e.words)
		}
	}
	return dst
}

// taintedBy reports whether any tainted path from root bit reaches the
// location — the native form of TaintReach membership.
func (e *Engine) taintedBy(l mdg.Loc, bit int) bool {
	bits := e.agg[l]
	if bits == nil {
		return false
	}
	return bits[bit/64]&(1<<uint(bit%64)) != 0
}

// ReachesFrom reports whether a tainted path connects src to dst
// (TaintPathExists for a fixpoint root).
func (e *Engine) ReachesFrom(src, dst mdg.Loc) bool {
	bit, ok := e.rootOf[src]
	if !ok {
		return false
	}
	return e.taintedBy(dst, bit)
}

// witness reconstructs a source-to-destination node path for one
// root's bit from the recorded predecessor edges. The returned path
// carries MDG locations (the native engine has no database node ids).
func (e *Engine) witness(bit int, dst mdg.Loc) []mdg.Loc {
	var at state
	found := false
	for _, st := range e.statesByLoc[dst] {
		if e.facts[st][bit/64]&(1<<uint(bit%64)) != 0 {
			at = st
			found = true
			break
		}
	}
	if !found {
		return nil
	}
	path := []mdg.Loc{at.loc}
	for {
		prev, ok := e.pred[predKey{st: at, bit: bit}]
		if !ok {
			break
		}
		at = prev
		path = append(path, at.loc)
	}
	// Reverse into source-first order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// --- written-set interning ---

func (e *Engine) withProp(ws wsID, p string) wsID {
	props := e.wsProps[ws]
	idx := len(props)
	for i, q := range props {
		if q == p {
			return ws
		}
		if q > p {
			idx = i
			break
		}
	}
	next := make([]string, 0, len(props)+1)
	next = append(next, props[:idx]...)
	next = append(next, p)
	next = append(next, props[idx:]...)
	key := ""
	for _, q := range next {
		key += q + "\x00"
	}
	if id, ok := e.wsIntern[key]; ok {
		return id
	}
	id := wsID(len(e.wsProps))
	e.wsIntern[key] = id
	e.wsProps = append(e.wsProps, next)
	return id
}

func (e *Engine) wsHas(ws wsID, p string) bool {
	for _, q := range e.wsProps[ws] {
		if q == p {
			return true
		}
	}
	return false
}

// States returns the number of dataflow states the fixpoint created;
// exposed for tests and diagnostics.
func (e *Engine) States() int { return len(e.facts) }
