// Package analysis implements the paper's abstract analysis 𝒜(s, ĝ, ρ̂)
// (§3.2): a forward abstract interpreter over Core JavaScript that
// builds the program's Multiversion Dependency Graph. Loops and
// recursive calls are handled with a summary fixed-point representation
// — allocation is site-keyed, so repeated iterations reuse abstract
// locations and the finite MDG/store lattices guarantee convergence.
package analysis

import (
	"fmt"
	"path"
	"sort"
	"strings"

	"repro/internal/budget"
	"repro/internal/core"
	"repro/internal/mdg"
)

// Options tunes the analyzer.
type Options struct {
	// MaxLoopIter caps fixpoint iterations per loop (safety net; the
	// lattices are finite so convergence normally happens in 2-4).
	MaxLoopIter int
	// TreatAllFunctionsAsExported seeds taint on every function's
	// parameters instead of only exported ones.
	TreatAllFunctionsAsExported bool
	// StepBudget aborts the analysis after this many abstract steps
	// (0 = unlimited); used to emulate analysis timeouts in benchmarks.
	StepBudget int
	// NoExportFallback suppresses the script attack model (when no
	// function anywhere is exported, treat every top-level function as
	// reachable). The scanner's incremental mode analyzes a package one
	// require-component at a time, so the "is anything exported?"
	// question is only answerable across components: each fragment is
	// built with the fallback off and HasRealExports recorded, and the
	// package-wide fallback decision is applied afterwards with
	// ApplyExportFallback / RemoveExportFallback.
	NoExportFallback bool
	// ForceMultiPass runs the cross-module fixpoint (up to three
	// passes) even for a single program. A single-file component of a
	// multi-file package must behave exactly like that file inside the
	// combined multi-pass analysis — e.g. a call before the callee's
	// definition links on the second pass — so the pass count depends
	// on the package, not the fragment.
	ForceMultiPass bool
	// Budget, when set, is the scan-wide fault-containment budget:
	// every abstract step charges it (and MDG construction charges its
	// node/edge caps via Graph.SetBudget), so a deadline or cap hit
	// anywhere in the pipeline aborts the analysis cooperatively with
	// Result.TimedOut set. Unlike StepBudget — a legacy knob local to
	// this package — the Budget records *why* it tripped, letting the
	// scanner classify the outcome and keep the partial MDG.
	Budget *budget.Budget
}

// DefaultOptions are the options used by the scanner.
func DefaultOptions() Options {
	return Options{MaxLoopIter: 30}
}

// Result is the outcome of analyzing one program.
type Result struct {
	Graph *mdg.Graph
	// Calls lists all call nodes in creation order.
	Calls []mdg.Loc
	// Sources lists all taint-source locations (parameters of exported
	// functions).
	Sources []mdg.Loc
	// Functions maps unique function names to their summaries.
	Functions map[string]*FuncSummary
	// Root is the final top-level abstract store.
	Root *mdg.Store
	// TimedOut reports that the step budget was exhausted.
	TimedOut bool
	// Steps is the number of abstract steps executed.
	Steps int
	// HasRealExports reports that export marking found at least one
	// function genuinely reachable from module.exports/exports —
	// i.e. the script-mode fallback (everything exported) did not or
	// would not apply. The incremental scanner combines this bit
	// across fragments to make the package-wide fallback decision.
	HasRealExports bool
	// FallbackApplied reports that the script-mode fallback is
	// currently in effect on this result (every function marked
	// exported because none was really exported).
	FallbackApplied bool

	// Externals maps each unresolved require specifier to the
	// synthetic placeholder module node allocated for it. The tree
	// scanner's cross-package linker replaces these placeholders'
	// flows with the real dependency's exports after stitching.
	Externals map[string]mdg.Loc
	// CalleeLocs and CallThis record, per call node, the abstract
	// callee and `this` value sets the interpreter observed (only for
	// calls that reached summary linking — require() and built-in
	// models are excluded, matching what a combined whole-program
	// analysis would link). The tree linker uses them to wire
	// cross-package calls to dependency function summaries.
	CalleeLocs map[mdg.Loc][]mdg.Loc
	CallThis   map[mdg.Loc][]mdg.Loc
	// ModuleEnv maps each module file to its CommonJS globals, so the
	// linker can read a dependency's module.exports after stitching.
	ModuleEnv map[string]ModuleLocs
}

// ModuleLocs is one module's CommonJS globals (see Result.ModuleEnv).
type ModuleLocs struct {
	Module  mdg.Loc
	Exports mdg.Loc
}

// FuncSummary is the per-function summary used for call linking.
type FuncSummary struct {
	Def      *core.FuncDef
	Loc      mdg.Loc   // function value node
	Params   []mdg.Loc // parameter object nodes
	ThisLoc  mdg.Loc
	RetLoc   mdg.Loc
	Exported bool
}

// budgetExhausted signals that the step budget ran out; recovered at the
// top level of Analyze.
type budgetExhausted struct{}

type analyzer struct {
	g     *mdg.Graph
	opts  Options
	funcs map[string]*FuncSummary
	calls []mdg.Loc
	root  *mdg.Store
	// fnStack tracks the summaries of functions whose bodies are being
	// analyzed (innermost last), for return-edge wiring.
	fnStack []*FuncSummary
	steps   int

	// Multi-module state: per-file CommonJS globals, the set of known
	// module files for require resolution, and the per-module site
	// offset that keeps allocation keys distinct across files.
	curFile  string
	modules  map[string]moduleGlobals
	siteBase int

	// Cross-package linker side tables (see Result).
	externals  map[string]mdg.Loc
	calleeLocs map[mdg.Loc][]mdg.Loc
	callThis   map[mdg.Loc][]mdg.Loc
}

// moduleGlobals holds one module's CommonJS objects.
type moduleGlobals struct {
	moduleLoc  mdg.Loc
	exportsLoc mdg.Loc
}

// Analyze builds the MDG for a single normalized program.
func Analyze(prog *core.Program, opts Options) *Result {
	return AnalyzeModules([]*core.Program{prog}, opts)
}

// AnalyzeModules builds one combined MDG for a multi-file package. Each
// program is a CommonJS module with its own module/exports objects and
// module-scoped variables; require('./relative') calls resolve to the
// exports object of the matching sibling module, connecting cross-file
// flows. Allocation keys are offset per module so identical statement
// indices in different files stay distinct.
func AnalyzeModules(progs []*core.Program, opts Options) *Result {
	if opts.MaxLoopIter <= 0 {
		opts.MaxLoopIter = 30
	}
	a := &analyzer{
		g:          mdg.New(),
		opts:       opts,
		funcs:      make(map[string]*FuncSummary),
		root:       mdg.NewStore(nil),
		modules:    make(map[string]moduleGlobals),
		externals:  make(map[string]mdg.Loc),
		calleeLocs: make(map[mdg.Loc][]mdg.Loc),
		callThis:   make(map[mdg.Loc][]mdg.Loc),
	}
	a.g.SetBudget(opts.Budget)
	res := &Result{Graph: a.g, Functions: a.funcs}
	// Pre-create every module's CommonJS globals so require() calls
	// resolve regardless of analysis order.
	for _, prog := range progs {
		a.setupModule(prog.FileName)
	}
	var lastStore *mdg.Store
	func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(budgetExhausted); ok {
					res.TimedOut = true
					return
				}
				panic(r) //lint:allow nakedpanic -- re-raises foreign panics for the scanner's phase guard
			}
		}()
		// Cross-module fixpoint: a require('./m') resolves through the
		// current graph, so modules are re-analyzed until no new edges
		// appear (allocation is deterministic, the graph monotone — a
		// second pass only adds newly resolvable cross-module edges).
		maxPasses := 3
		if len(progs) == 1 && !opts.ForceMultiPass {
			maxPasses = 1
		}
		for pass := 0; pass < maxPasses; pass++ {
			snap := a.g.Snap()
			base := 0
			for _, prog := range progs {
				a.curFile = prog.FileName
				a.siteBase = base
				base += prog.MaxIndex + 1
				a.g.SetCurrentFile(prog.FileName)
				mst := mdg.NewStore(a.root)
				mg := a.modules[prog.FileName]
				mst.SetLocal("module", []mdg.Loc{mg.moduleLoc})
				mst.SetLocal("exports", []mdg.Loc{mg.exportsLoc})
				a.stmts(prog.Body, mst)
				lastStore = mst
			}
			if a.g.Snap() == snap {
				break
			}
		}
	}()
	res.Root = lastStore
	if res.Root == nil {
		res.Root = a.root
	}
	res.HasRealExports = a.markExported()
	if !res.HasRealExports && !opts.NoExportFallback {
		applyFallback(res)
	}
	res.Calls = a.calls
	res.Steps = a.steps
	res.Externals = a.externals
	res.CalleeLocs = a.calleeLocs
	res.CallThis = a.callThis
	res.ModuleEnv = make(map[string]ModuleLocs, len(a.modules))
	for file, mg := range a.modules {
		res.ModuleEnv[file] = ModuleLocs{Module: mg.moduleLoc, Exports: mg.exportsLoc}
	}
	recomputeSources(res, opts.TreatAllFunctionsAsExported)
	return res
}

// applyFallback marks every function exported — the script attack
// model used when nothing in the package is really exported.
func applyFallback(res *Result) {
	for _, fn := range res.Functions {
		fn.Exported = true
		if n := res.Graph.Node(fn.Loc); n != nil {
			n.Exported = true
		}
	}
	res.FallbackApplied = true
}

// recomputeSources rebuilds Result.Sources (and the Source flag on
// parameter nodes) from the current export marks, in deterministic
// location order.
func recomputeSources(res *Result, allExported bool) {
	for _, n := range res.Graph.NodesOfKind(mdg.KindParam) {
		n.Source = false
	}
	res.Sources = res.Sources[:0]
	for _, fn := range res.Functions {
		if fn.Exported || allExported {
			res.Sources = append(res.Sources, fn.Params...)
		}
	}
	sort.Slice(res.Sources, func(i, j int) bool { return res.Sources[i] < res.Sources[j] })
	for _, l := range res.Sources {
		if n := res.Graph.Node(l); n != nil {
			n.Source = true
		}
	}
}

// ApplyExportFallback puts a fragment built with NoExportFallback into
// the script attack model: every function becomes exported and the
// source set is rebuilt. No-op if the fallback is already in effect.
// It must only be called on results without real exports — exactly the
// case where the combined package-wide analysis would have fallen back.
func ApplyExportFallback(res *Result) {
	if res.FallbackApplied {
		return
	}
	applyFallback(res)
	recomputeSources(res, false)
}

// RemoveExportFallback undoes ApplyExportFallback (exact because when
// the fallback applied, no function was really exported: unmarking
// everything restores the pre-fallback state). No-op when the fallback
// is not in effect.
func RemoveExportFallback(res *Result) {
	if !res.FallbackApplied {
		return
	}
	for _, fn := range res.Functions {
		fn.Exported = false
		if n := res.Graph.Node(fn.Loc); n != nil {
			n.Exported = false
		}
	}
	res.FallbackApplied = false
	recomputeSources(res, false)
}

// setupModule creates (or returns) the CommonJS globals of one module.
func (a *analyzer) setupModule(file string) moduleGlobals {
	if mg, ok := a.modules[file]; ok {
		return mg
	}
	mg := moduleGlobals{
		moduleLoc:  a.g.Alloc("global", 0, 0, "module:"+file, mdg.KindObject, "module", 0),
		exportsLoc: a.g.Alloc("global", 0, 0, "exports:"+file, mdg.KindObject, "exports", 0),
	}
	a.g.AddEdge(mdg.Edge{From: mg.moduleLoc, To: mg.exportsLoc, Type: mdg.Prop, Prop: "exports"})
	a.modules[file] = mg
	return mg
}

// site offsets a statement index by the current module's base so
// allocation keys stay distinct across files.
func (a *analyzer) site(idx int) int {
	if idx == 0 {
		return 0
	}
	return idx + a.siteBase
}

// qualify prefixes a function name with its module when analyzing a
// multi-file package, so same-named functions in different files keep
// separate summaries.
func (a *analyzer) qualify(name string) string {
	if len(a.modules) <= 1 {
		return name
	}
	return a.curFile + ":" + name
}

func (a *analyzer) tick() {
	a.steps++
	if a.opts.StepBudget > 0 && a.steps > a.opts.StepBudget {
		panic(budgetExhausted{}) //lint:allow nakedpanic -- budgetExhausted is recovered by Run's local fence
	}
	if a.opts.Budget.Step() != nil {
		panic(budgetExhausted{}) //lint:allow nakedpanic -- budgetExhausted is recovered by Run's local fence
	}
}

// ---------------------------------------------------------------------------
// Expression evaluation ⟦e⟧ρ̂
// ---------------------------------------------------------------------------

// eval returns the abstract locations denoted by e. site disambiguates
// literal allocation.
func (a *analyzer) eval(e core.Expr, st *mdg.Store, site, line int) []mdg.Loc {
	switch x := e.(type) {
	case core.Var:
		if ls := st.Get(x.Name); ls != nil {
			return ls
		}
		// Unknown global: lazily allocate a shared object for it so
		// property accesses and calls through it remain connected.
		l := a.g.Alloc("global", 0, 0, x.Name, mdg.KindObject, x.Name, line)
		a.root.SetLocal(x.Name, []mdg.Loc{l})
		return []mdg.Loc{l}
	case core.Lit:
		l := a.g.Alloc("lit", a.site(site), 0, x.Value+"#"+fmt.Sprint(int(x.Kind)),
			mdg.KindLiteral, x.String(), line)
		return []mdg.Loc{l}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Statement analysis
// ---------------------------------------------------------------------------

func (a *analyzer) stmts(ss []core.Stmt, st *mdg.Store) {
	for _, s := range ss {
		a.stmt(s, st)
	}
}

func (a *analyzer) stmt(s core.Stmt, st *mdg.Store) {
	a.tick()
	switch x := s.(type) {
	case *core.Assign:
		st.Set(x.X, a.eval(x.E, st, x.Idx, x.Ln))

	case *core.BinOp: // [ASSIGN-OP]
		l := a.g.Alloc("bin", a.site(x.Idx), 0, "", mdg.KindObject, x.X, x.Ln)
		for _, src := range a.eval(x.L, st, x.Idx, x.Ln) {
			a.g.AddDep(src, l)
		}
		for _, src := range a.eval(x.R, st, x.Idx, x.Ln) {
			a.g.AddDep(src, l)
		}
		st.Set(x.X, []mdg.Loc{l})

	case *core.UnOp:
		l := a.g.Alloc("un", a.site(x.Idx), 0, "", mdg.KindObject, x.X, x.Ln)
		for _, src := range a.eval(x.E, st, x.Idx, x.Ln) {
			a.g.AddDep(src, l)
		}
		st.Set(x.X, []mdg.Loc{l})

	case *core.NewObj: // [NEW OBJECT]
		l := a.g.Alloc("obj", a.site(x.Idx), 0, "", mdg.KindObject, x.X, x.Ln)
		st.Set(x.X, []mdg.Loc{l})

	case *core.Lookup: // [STATIC PROPERTY LOOKUP]
		L := a.eval(x.Obj, st, x.Idx, x.Ln)
		values := a.g.AP(a.site(x.Idx), L, x.Prop, x.Ln)
		st.Set(x.X, values)

	case *core.DynLookup: // [DYNAMIC PROPERTY LOOKUP]
		L := a.eval(x.Obj, st, x.Idx, x.Ln)
		Lp := a.eval(x.Prop, st, x.Idx, x.Ln)
		values := a.g.APStar(a.site(x.Idx), L, Lp, x.Ln)
		// Any statically known property may be the one read.
		for _, l := range L {
			values = append(values, a.g.AllPropValues(l)...)
		}
		values = dedupeLocs(values)
		// The value read depends on the dynamic property name
		// (concrete rule [Dynamic Property Lookup], Fig. 5).
		for _, v := range values {
			for _, lp := range Lp {
				a.g.AddDep(lp, v)
			}
		}
		st.Set(x.X, values)

	case *core.Update: // [STATIC PROPERTY UPDATE]
		L1 := a.eval(x.Obj, st, x.Idx, x.Ln)
		L3 := a.eval(x.Val, st, x.Idx, x.Ln)
		repl := a.g.NV(a.site(x.Idx), L1, x.Prop, x.Ln)
		a.replaceVersions(st, L1, repl)
		for _, nl := range repl {
			for _, v := range L3 {
				a.g.AddEdge(mdg.Edge{From: nl, To: v, Type: mdg.Prop, Prop: x.Prop})
			}
		}

	case *core.DynUpdate: // [DYNAMIC PROPERTY UPDATE]
		L1 := a.eval(x.Obj, st, x.Idx, x.Ln)
		L2 := a.eval(x.Prop, st, x.Idx, x.Ln)
		L3 := a.eval(x.Val, st, x.Idx, x.Ln)
		repl := a.g.NVStar(a.site(x.Idx), L1, L2, x.Ln)
		a.replaceVersions(st, L1, repl)
		for _, nl := range repl {
			for _, v := range L3 {
				a.g.AddEdge(mdg.Edge{From: nl, To: v, Type: mdg.PropStar})
			}
		}

	case *core.If:
		a.eval(x.Cond, st, 0, x.Ln)
		thenSt := st.Copy()
		a.stmts(x.Then, thenSt)
		elseSt := st.Copy()
		a.stmts(x.Else, elseSt)
		merged := thenSt
		merged.Join(elseSt)
		*st = *merged

	case *core.While:
		a.fixpoint(x.Body, st, x.Ln)

	case *core.ForIn:
		// The loop variable depends on the iterated object: its keys
		// (for-in) are derived from the object's property names, its
		// values (for-of) are the property values.
		objLocs := a.eval(x.Obj, st, x.Idx, x.Ln)
		key := a.g.Alloc("forin", a.site(x.Idx), 0, x.Key, mdg.KindObject, x.Key, x.Ln)
		for _, ol := range objLocs {
			a.g.AddDep(ol, key)
			if x.Of {
				for _, v := range a.g.AllPropValues(ol) {
					a.g.AddDep(v, key)
				}
			}
		}
		st.Set(x.Key, []mdg.Loc{key})
		a.fixpoint(x.Body, st, x.Ln)

	case *core.Call:
		a.call(x, st)

	case *core.FuncDef:
		a.funcDef(x, st)

	case *core.Return:
		if x.E != nil {
			vals := a.eval(x.E, st, 0, x.Ln)
			if len(a.fnStack) > 0 {
				ret := a.fnStack[len(a.fnStack)-1].RetLoc
				for _, v := range vals {
					a.g.AddDep(v, ret)
				}
			}
		}

	case *core.Break, *core.Continue:
		// Control transfer; the fixpoint over-approximates all exits.
	}
}

// replaceVersions rewrites the store after a property update. When the
// update resolves to a single abstract object the rewrite is strong (the
// paper's NV semantics: every variable referring to the old version now
// refers to the new one); with several candidate objects it must be weak
// — the update hit only one of them concretely, so older versions stay
// live in the store to keep the abstraction sound.
func (a *analyzer) replaceVersions(st *mdg.Store, L1 []mdg.Loc, repl map[mdg.Loc]mdg.Loc) {
	if len(L1) == 1 {
		st.ReplaceAll(repl)
	} else {
		st.WeakReplace(repl)
	}
}

// fixpoint analyzes a loop body until the graph and store stop changing
// (the MDG and store lattices are finite, §3.1), capped by MaxLoopIter.
func (a *analyzer) fixpoint(body []core.Stmt, st *mdg.Store, line int) {
	for i := 0; i < a.opts.MaxLoopIter; i++ {
		before := st.Copy()
		gSnap := a.g.Snap()
		sSnap := st.Snapshot()
		a.stmts(body, st)
		// Join with the pre-iteration store: the loop may run 0 times.
		st.Join(before)
		if a.g.Snap() == gSnap && st.Snapshot() == sSnap {
			return
		}
	}
}

// funcDef registers a function summary, binds the name, and analyzes the
// body in a child scope with fresh parameter objects.
func (a *analyzer) funcDef(x *core.FuncDef, st *mdg.Store) {
	qname := a.qualify(x.Name)
	fl := a.g.Alloc("func", a.site(x.Idx), 0, qname, mdg.KindFunc, x.Name, x.Ln)
	fn := &FuncSummary{Def: x, Loc: fl}
	fnNode := a.g.Node(fl)
	fnNode.FuncName = qname

	for i, p := range x.Params {
		pl := a.g.Alloc("param", a.site(x.Idx), 0, fmt.Sprintf("%s#%d", p, i), mdg.KindParam, p, x.Ln)
		fn.Params = append(fn.Params, pl)
	}
	fn.ThisLoc = a.g.Alloc("this", a.site(x.Idx), 0, "this", mdg.KindObject, "this", x.Ln)
	fn.RetLoc = a.g.Alloc("ret", a.site(x.Idx), 0, "ret", mdg.KindObject, x.Name+"$ret", x.Ln)
	fnNode.ParamLocs = fn.Params
	fnNode.RetLoc = fn.RetLoc
	a.funcs[qname] = fn

	// Bind the name before analyzing the body so recursion resolves.
	st.Set(x.Name, []mdg.Loc{fl})

	child := mdg.NewStore(st)
	for i, p := range x.Params {
		child.SetLocal(p, []mdg.Loc{fn.Params[i]})
	}
	child.SetLocal("this", []mdg.Loc{fn.ThisLoc})
	// `arguments` aggregates all parameters.
	argsLoc := a.g.Alloc("arguments", a.site(x.Idx), 0, "arguments", mdg.KindObject, "arguments", x.Ln)
	for i, pl := range fn.Params {
		a.g.AddEdge(mdg.Edge{From: argsLoc, To: pl, Type: mdg.Prop, Prop: fmt.Sprint(i)})
		a.g.AddDep(pl, argsLoc)
	}
	child.SetLocal("arguments", []mdg.Loc{argsLoc})

	a.fnStack = append(a.fnStack, fn)
	a.stmts(x.Body, child)
	a.fnStack = a.fnStack[:len(a.fnStack)-1]
}

// call analyzes `x :=i f(args)`: it creates the call node, wires
// argument dependencies, and links known callees' summaries.
func (a *analyzer) call(x *core.Call, st *mdg.Store) {
	calleeLocs := a.eval(x.Callee, st, x.Idx, x.Ln)

	cl := a.g.Alloc("call", a.site(x.Idx), 0, x.CalleeName, mdg.KindCall, x.CalleeName+"()", x.Ln)
	cn := a.g.Node(cl)
	cn.CallName = x.CalleeName
	if len(cn.CallArgs) == 0 {
		cn.CallArgs = make([][]mdg.Loc, len(x.Args))
	}
	isNewCall := true
	for _, c := range a.calls {
		if c == cl {
			isNewCall = false
			break
		}
	}
	if isNewCall {
		a.calls = append(a.calls, cl)
	}

	var argLocs [][]mdg.Loc
	for i, arg := range x.Args {
		ls := a.eval(arg, st, x.Idx, x.Ln)
		argLocs = append(argLocs, ls)
		for _, l := range ls {
			a.g.AddDep(l, cl)
		}
		if i < len(cn.CallArgs) {
			cn.CallArgs[i] = dedupeLocs(append(cn.CallArgs[i], ls...))
		}
	}
	var thisLocs []mdg.Loc
	if x.This != nil {
		thisLocs = a.eval(x.This, st, x.Idx, x.Ln)
		for _, l := range thisLocs {
			a.g.AddDep(l, cl)
		}
	}

	// require('mod'): a relative specifier resolving to a sibling
	// module yields that module's exports object (cross-file linking);
	// anything else yields a synthetic external-module object.
	if x.CalleeName == "require" && len(x.Args) == 1 {
		if lit, ok := x.Args[0].(core.Lit); ok {
			if file, ok := a.resolveModule(lit.Value); ok {
				// The sibling module's current exports: whatever the
				// graph says module.exports holds (filled in by the
				// cross-module fixpoint passes).
				mg := a.modules[file]
				vals := []mdg.Loc{mg.exportsLoc}
				for _, ml := range a.allVersions(mg.moduleLoc) {
					vals = append(vals, a.g.Lookup(ml, "exports").Values...)
				}
				vals = dedupeLocs(vals)
				for _, v := range vals {
					a.g.AddDep(cl, v)
				}
				st.Set(x.X, vals)
				return
			}
			ml := a.g.Alloc("module", 0, 0, lit.Value, mdg.KindObject, lit.Value, x.Ln)
			a.externals[lit.Value] = ml
			a.g.AddDep(cl, ml)
			st.Set(x.X, []mdg.Loc{ml})
			return
		}
	}

	// Built-in models (Object.assign, JSON.parse, push, ...).
	if a.builtinCall(x, st, cl, argLocs, thisLocs) {
		return
	}

	// Record the callee/this value sets for the cross-package linker:
	// only calls that reach summary linking (require and built-in
	// models returned above), accumulated across fixpoint passes.
	if len(calleeLocs) > 0 {
		a.calleeLocs[cl] = dedupeLocs(append(a.calleeLocs[cl], calleeLocs...))
	}
	if len(thisLocs) > 0 {
		a.callThis[cl] = dedupeLocs(append(a.callThis[cl], thisLocs...))
	}

	// Link summaries of statically resolved callees.
	for _, fl := range calleeLocs {
		fn := a.summaryAt(fl)
		if fn == nil {
			continue
		}
		for i, ls := range argLocs {
			if i >= len(fn.Params) {
				break
			}
			for _, l := range ls {
				a.g.AddDep(l, fn.Params[i])
			}
		}
		for _, tl := range thisLocs {
			a.g.AddDep(tl, fn.ThisLoc)
		}
		a.g.AddDep(fn.RetLoc, cl)
		if x.IsNew {
			// The constructed object is the constructor's `this`.
			a.g.AddDep(fn.ThisLoc, cl)
		}
	}

	// Callback arguments: a function passed to an unresolved callee
	// (e.g. arr.forEach(fn)) may be invoked with tainted data flowing
	// from the receiver/arguments; wire value-level dependencies.
	if len(calleeLocsKnown(a, calleeLocs)) == 0 {
		for _, ls := range argLocs {
			for _, l := range ls {
				if fn := a.summaryAt(l); fn != nil {
					for _, pl := range fn.Params {
						for _, tl := range thisLocs {
							a.g.AddDep(tl, pl)
						}
						// Other (non-function) arguments flow into the
						// callback parameters as well.
						for _, ols := range argLocs {
							for _, ol := range ols {
								if ol != l {
									a.g.AddDep(ol, pl)
								}
							}
						}
					}
					a.g.AddDep(fn.RetLoc, cl)
				}
			}
		}
	}

	st.Set(x.X, []mdg.Loc{cl})
}

func calleeLocsKnown(a *analyzer, ls []mdg.Loc) []*FuncSummary {
	var out []*FuncSummary
	for _, l := range ls {
		if fn := a.summaryAt(l); fn != nil {
			out = append(out, fn)
		}
	}
	return out
}

// summaryAt returns the function summary whose value node is l, or nil.
func (a *analyzer) summaryAt(l mdg.Loc) *FuncSummary {
	n := a.g.Node(l)
	if n == nil || n.Kind != mdg.KindFunc {
		return nil
	}
	return a.funcs[n.FuncName]
}

// markExported finds functions reachable from module.exports/exports
// and marks them (their parameters become taint sources). It reports
// whether any function is genuinely exported; the script-mode fallback
// for the negative case is the caller's decision.
func (a *analyzer) markExported() bool {
	// Roots: every version of the module object's `exports` property,
	// plus the original exports object and all its versions.
	roots := map[mdg.Loc]bool{}
	var addWithVersions func(l mdg.Loc)
	addWithVersions = func(l mdg.Loc) {
		if roots[l] {
			return
		}
		roots[l] = true
		for _, s := range a.g.VersionSuccessors(l) {
			addWithVersions(s)
		}
	}
	for _, mg := range a.modules {
		for _, ml := range a.allVersions(mg.moduleLoc) {
			res := a.g.Lookup(ml, "exports")
			for _, v := range res.Values {
				addWithVersions(v)
			}
		}
		addWithVersions(mg.exportsLoc)
	}

	// Worklist: exported objects expose every property value.
	work := make([]mdg.Loc, 0, len(roots))
	for l := range roots {
		work = append(work, l)
	}
	seen := map[mdg.Loc]bool{}
	anyExported := false
	for len(work) > 0 {
		l := work[len(work)-1]
		work = work[:len(work)-1]
		if seen[l] {
			continue
		}
		seen[l] = true
		n := a.g.Node(l)
		if n == nil {
			continue
		}
		if n.Kind == mdg.KindFunc {
			if fn := a.funcs[n.FuncName]; fn != nil && !fn.Exported {
				fn.Exported = true
				n.Exported = true
				anyExported = true
			}
			continue
		}
		for _, v := range a.g.AllPropValues(l) {
			work = append(work, v)
		}
		for _, s := range a.g.VersionSuccessors(l) {
			work = append(work, s)
		}
	}

	return anyExported
}

// allVersions returns l and every version successor transitively.
func (a *analyzer) allVersions(l mdg.Loc) []mdg.Loc {
	var out []mdg.Loc
	seen := map[mdg.Loc]bool{}
	var walk func(v mdg.Loc)
	walk = func(v mdg.Loc) {
		if seen[v] {
			return
		}
		seen[v] = true
		out = append(out, v)
		for _, s := range a.g.VersionSuccessors(v) {
			walk(s)
		}
	}
	walk(l)
	return out
}

func dedupeLocs(ls []mdg.Loc) []mdg.Loc {
	seen := make(map[mdg.Loc]struct{}, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if _, ok := seen[l]; !ok {
			seen[l] = struct{}{}
			out = append(out, l)
		}
	}
	return out
}

// resolveModule resolves a require specifier against the package's
// known module files. Only relative specifiers ('./x', '../y') resolve;
// bare names are external packages. Matching tries the literal path,
// a '.js' suffix, and '/index.js', comparing cleaned paths.
func (a *analyzer) resolveModule(spec string) (string, bool) {
	if !strings.HasPrefix(spec, "./") && !strings.HasPrefix(spec, "../") {
		return "", false
	}
	baseDir := path.Dir(a.curFile)
	target := path.Clean(path.Join(baseDir, spec))
	candidates := []string{target, target + ".js", path.Join(target, "index.js")}
	for _, c := range candidates {
		if _, ok := a.modules[c]; ok {
			return c, true
		}
	}
	// Fall back to basename matching: module file names may carry
	// generator prefixes while requires use plain names.
	base := path.Base(target)
	for file := range a.modules {
		fb := strings.TrimSuffix(path.Base(file), ".js")
		if fb == base || fb == strings.TrimSuffix(base, ".js") {
			return file, true
		}
	}
	return "", false
}
