package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/mdg"
)

func normMod(t *testing.T, src, file string) *core.Program {
	t.Helper()
	p, err := normalize.File(src, file)
	if err != nil {
		t.Fatalf("normalize %s: %v", file, err)
	}
	return p
}

// TestCrossModuleRequire: require('./util') must resolve to the sibling
// module's exports object, so the exported function's summary links.
func TestCrossModuleRequire(t *testing.T) {
	util := normMod(t, `
function shellRun(c) { exec(c); }
module.exports = shellRun;
`, "util.js")
	index := normMod(t, `
var run = require('./util');
function entry(input) { run(input); }
module.exports = entry;
`, "index.js")

	res := AnalyzeModules([]*core.Program{util, index}, DefaultOptions())
	if res.TimedOut {
		t.Fatal("timed out")
	}
	entry := res.Functions["index.js:entry"]
	shellRun := res.Functions["util.js:shellRun"]
	if entry == nil || shellRun == nil {
		t.Fatalf("summaries: %v", res.Functions)
	}
	// Cross-file call linking: entry's param flows into shellRun's.
	if !res.Graph.HasEdge(mdg.Edge{From: entry.Params[0], To: shellRun.Params[0], Type: mdg.Dep}) {
		t.Error("cross-module argument linking missing")
	}
}

func TestCrossModuleExportObject(t *testing.T) {
	lib := normMod(t, `
function danger(x) { eval(x); }
module.exports = { danger: danger };
`, "lib.js")
	index := normMod(t, `
var lib = require('./lib');
function go(payload) { lib.danger(payload); }
module.exports = go;
`, "index.js")

	res := AnalyzeModules([]*core.Program{index, lib}, DefaultOptions())
	danger := res.Functions["lib.js:danger"]
	goFn := res.Functions["index.js:go"]
	if danger == nil || goFn == nil {
		t.Fatalf("summaries: %v", res.Functions)
	}
	if !res.Graph.HasEdge(mdg.Edge{From: goFn.Params[0], To: danger.Params[0], Type: mdg.Dep}) {
		t.Error("property-exported function not linked across modules")
	}
}

func TestModuleOrderIndependence(t *testing.T) {
	mk := func() []*core.Program {
		return []*core.Program{
			normMod(t, "var u = require('./b');\nfunction f(x) { u(x); }\nmodule.exports = f;\n", "a.js"),
			normMod(t, "function g(y) { eval(y); }\nmodule.exports = g;\n", "b.js"),
		}
	}
	fwd := AnalyzeModules(mk(), DefaultOptions())
	progs := mk()
	rev := AnalyzeModules([]*core.Program{progs[1], progs[0]}, DefaultOptions())
	// Both orders produce the cross-module D edge.
	check := func(res *Result, label string) {
		f := res.Functions["a.js:f"]
		g := res.Functions["b.js:g"]
		if f == nil || g == nil {
			t.Fatalf("%s: summaries missing", label)
		}
		if !res.Graph.HasEdge(mdg.Edge{From: f.Params[0], To: g.Params[0], Type: mdg.Dep}) {
			t.Errorf("%s: cross-module edge missing", label)
		}
	}
	check(fwd, "forward")
	check(rev, "reverse")
}

func TestExternalRequireStaysExternal(t *testing.T) {
	index := normMod(t, `
var lodash = require('lodash');
function f(a) { return lodash.merge({}, a); }
module.exports = f;
`, "index.js")
	res := AnalyzeModules([]*core.Program{index}, DefaultOptions())
	// No crash, lodash is a synthetic module object; f exported.
	if !res.Functions["f"].Exported {
		t.Error("f should be exported")
	}
}

func TestRelativeRequireVariants(t *testing.T) {
	util := normMod(t, "function h(c) { exec(c); }\nmodule.exports = h;\n", "lib/util.js")
	for _, spec := range []string{"./util", "./util.js"} {
		index := normMod(t, "var u = require('"+spec+"');\nfunction f(x) { u(x); }\nmodule.exports = f;\n", "lib/index.js")
		res := AnalyzeModules([]*core.Program{util, index}, DefaultOptions())
		f := res.Functions["lib/index.js:f"]
		h := res.Functions["lib/util.js:h"]
		if f == nil || h == nil {
			t.Fatalf("%s: summaries missing: %v", spec, res.Functions)
		}
		if !res.Graph.HasEdge(mdg.Edge{From: f.Params[0], To: h.Params[0], Type: mdg.Dep}) {
			t.Errorf("%s: not resolved", spec)
		}
	}
}

func TestSameFunctionNameInTwoModules(t *testing.T) {
	a := normMod(t, "function helper(x) { eval(x); }\nmodule.exports = helper;\n", "a.js")
	b := normMod(t, "function helper(x) { return x; }\nmodule.exports = helper;\n", "b.js")
	res := AnalyzeModules([]*core.Program{a, b}, DefaultOptions())
	if res.Functions["a.js:helper"] == nil || res.Functions["b.js:helper"] == nil {
		t.Fatalf("qualified summaries missing: %v", res.Functions)
	}
	if res.Functions["a.js:helper"].Loc == res.Functions["b.js:helper"].Loc {
		t.Error("same-named functions in different modules must get distinct nodes")
	}
}

func TestModuleScopedVariables(t *testing.T) {
	// A module-level variable in a.js must not leak into b.js.
	a := normMod(t, "var secret = 'x';\n", "a.js")
	b := normMod(t, "function f(q) { exec(secret + q); }\nmodule.exports = f;\n", "b.js")
	res := AnalyzeModules([]*core.Program{a, b}, DefaultOptions())
	// b's `secret` resolves to a lazily created global, not a's local —
	// both are acceptable abstractions, but the analysis must not crash
	// and f stays exported.
	if res.Functions["b.js:f"] == nil {
		t.Fatal("missing summary")
	}
}

func TestNodeFileAttribution(t *testing.T) {
	a := normMod(t, "function fa(x) { eval(x); }\nmodule.exports = fa;\n", "a.js")
	b := normMod(t, "function fb(y) { exec(y); }\nmodule.exports = fb;\n", "b.js")
	res := AnalyzeModules([]*core.Program{a, b}, DefaultOptions())
	files := map[string]bool{}
	for _, n := range res.Graph.Nodes() {
		if n.Kind == mdg.KindCall {
			files[n.File] = true
		}
	}
	if !files["a.js"] || !files["b.js"] {
		t.Errorf("call nodes should carry their file: %v", files)
	}
}
