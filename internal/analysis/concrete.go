// Instrumented concrete semantics of Core JavaScript (paper §3.3).
//
// The concrete interpreter executes a program with real values while
// building a concrete MDG whose nodes are concrete locations. Each
// concrete location remembers the allocation key of the statement that
// created it, which defines the abstraction function α used by the
// soundness tests: α maps a concrete location to the abstract location
// the analyzer allocated for the same (role, site, prop) key.

package analysis

import (
	"fmt"
	"strconv"

	"repro/internal/core"
)

// CLoc is a concrete location.
type CLoc int

// CEdgeType mirrors mdg.EdgeType for the concrete graph; all property
// and version edges carry resolved property names.
type CEdgeType int

// Concrete edge types.
const (
	CDep CEdgeType = iota
	CProp
	CVer
)

// CEdge is one edge of a concrete MDG.
type CEdge struct {
	From, To CLoc
	Type     CEdgeType
	Prop     string
}

// AllocKey identifies the statement-role that created a location; it is
// shared with the abstract analyzer's allocation keys.
type AllocKey struct {
	Role string
	Site int
	Prop string
}

// CNode is one node of the concrete graph.
type CNode struct {
	Loc CLoc
	Key AllocKey
	// Origin is the object location a lazily created property node was
	// attached to (NoLoc otherwise); the soundness checker uses it to
	// resolve the abstraction function when allocation keys diverge.
	Origin CLoc
}

// ConcreteState is the result of a concrete execution: the concrete
// MDG, final store, and heap.
type ConcreteState struct {
	Nodes []*CNode
	Edges []CEdge
	Store map[string]CLoc
	// Heap maps object locations to their property tables; primitive
	// locations map to nil.
	Heap map[CLoc]map[string]CLoc
	// Values maps primitive locations to their string rendering.
	Values map[CLoc]string
	// Truncated reports that the step budget expired mid-execution
	// (the trace is still a valid prefix).
	Truncated bool
}

type concreteInterp struct {
	st     *ConcreteState
	next   CLoc
	steps  int
	budget int
	// pred maps each object version to the version it was created from.
	pred map[CLoc]CLoc
	node map[CLoc]*CNode
}

// RunConcrete executes a call-free Core JavaScript program concretely
// for at most budget steps, returning the instrumented state. Function
// definitions and calls are skipped (the paper formalizes the analysis
// rules for the call-free fragment).
func RunConcrete(prog *core.Program, budget int) *ConcreteState {
	ci := &concreteInterp{
		st: &ConcreteState{
			Store:  make(map[string]CLoc),
			Heap:   make(map[CLoc]map[string]CLoc),
			Values: make(map[CLoc]string),
		},
		budget: budget,
		pred:   make(map[CLoc]CLoc),
		node:   make(map[CLoc]*CNode),
	}
	ci.stmts(prog.Body)
	return ci.st
}

func (ci *concreteInterp) tick() bool {
	ci.steps++
	if ci.steps > ci.budget {
		ci.st.Truncated = true
		return false
	}
	return true
}

func (ci *concreteInterp) alloc(key AllocKey, obj bool) CLoc {
	ci.next++
	n := &CNode{Loc: ci.next, Key: key}
	ci.st.Nodes = append(ci.st.Nodes, n)
	ci.node[n.Loc] = n
	if obj {
		ci.st.Heap[n.Loc] = make(map[string]CLoc)
	}
	return n.Loc
}

// oldest walks the version-predecessor chain of l to its origin.
func (ci *concreteInterp) oldest(l CLoc) CLoc {
	for {
		p, ok := ci.pred[l]
		if !ok {
			return l
		}
		l = p
	}
}

func (ci *concreteInterp) addEdge(e CEdge) {
	for _, x := range ci.st.Edges {
		if x == e {
			return
		}
	}
	ci.st.Edges = append(ci.st.Edges, e)
}

// eval returns the concrete location of e, allocating literal nodes with
// the same keys the abstract analyzer uses.
func (ci *concreteInterp) eval(e core.Expr, site int) CLoc {
	switch x := e.(type) {
	case core.Var:
		if l, ok := ci.st.Store[x.Name]; ok {
			return l
		}
		l := ci.alloc(AllocKey{Role: "global", Site: 0, Prop: x.Name}, true)
		ci.st.Store[x.Name] = l
		return l
	case core.Lit:
		l := ci.alloc(AllocKey{Role: "lit", Site: site, Prop: x.Value + "#" + fmt.Sprint(int(x.Kind))}, false)
		ci.st.Values[l] = x.Value
		return l
	}
	panic("unreachable expression form") //lint:allow nakedpanic -- interpreter invariant; recovered at the scanner's phase guard
}

// valueOf renders the primitive behind l ("" for objects).
func (ci *concreteInterp) valueOf(l CLoc) string { return ci.st.Values[l] }

func (ci *concreteInterp) truthy(l CLoc) bool {
	if _, isObj := ci.st.Heap[l]; isObj {
		return true
	}
	switch ci.st.Values[l] {
	case "", "0", "false", "null", "undefined", "NaN":
		return false
	}
	return true
}

func (ci *concreteInterp) stmts(ss []core.Stmt) {
	for _, s := range ss {
		if !ci.tick() {
			return
		}
		ci.stmt(s)
	}
}

func (ci *concreteInterp) stmt(s core.Stmt) {
	switch x := s.(type) {
	case *core.Assign:
		ci.st.Store[x.X] = ci.eval(x.E, x.Idx)

	case *core.BinOp:
		l1 := ci.eval(x.L, x.Idx)
		l2 := ci.eval(x.R, x.Idx)
		res := ci.alloc(AllocKey{Role: "bin", Site: x.Idx}, false)
		ci.st.Values[res] = evalBinOp(x.Op, ci.valueOf(l1), ci.valueOf(l2))
		ci.addEdge(CEdge{From: l1, To: res, Type: CDep})
		ci.addEdge(CEdge{From: l2, To: res, Type: CDep})
		ci.st.Store[x.X] = res

	case *core.UnOp:
		l := ci.eval(x.E, x.Idx)
		res := ci.alloc(AllocKey{Role: "un", Site: x.Idx}, false)
		ci.st.Values[res] = evalUnOp(x.Op, ci.valueOf(l))
		ci.addEdge(CEdge{From: l, To: res, Type: CDep})
		ci.st.Store[x.X] = res

	case *core.NewObj:
		ci.st.Store[x.X] = ci.alloc(AllocKey{Role: "obj", Site: x.Idx}, true)

	case *core.Lookup: // [Static Property Lookup]
		obj := ci.eval(x.Obj, x.Idx)
		ci.st.Store[x.X] = ci.lookup(obj, x.Prop, x.Idx, "prop")

	case *core.DynLookup: // [Dynamic Property Lookup]
		obj := ci.eval(x.Obj, x.Idx)
		pl := ci.eval(x.Prop, x.Idx)
		p := ci.valueOf(pl)
		v := ci.lookup(obj, p, x.Idx, "prop*")
		// The looked-up value depends on the dynamic property name.
		ci.addEdge(CEdge{From: pl, To: v, Type: CDep})
		ci.st.Store[x.X] = v

	case *core.Update: // [Static Property Update]
		obj := ci.eval(x.Obj, x.Idx)
		val := ci.eval(x.Val, x.Idx)
		ci.update(obj, x.Prop, val, x.Idx, "ver", nil)

	case *core.DynUpdate: // [Dynamic Property Update]
		obj := ci.eval(x.Obj, x.Idx)
		pl := ci.eval(x.Prop, x.Idx)
		val := ci.eval(x.Val, x.Idx)
		ci.update(obj, ci.valueOf(pl), val, x.Idx, "ver*", &pl)

	case *core.If:
		c := ci.eval(x.Cond, 0)
		if ci.truthy(c) {
			ci.stmts(x.Then)
		} else {
			ci.stmts(x.Else)
		}

	case *core.While:
		for {
			if !ci.tick() {
				return
			}
			c := ci.eval(x.Cond, 0)
			if !ci.truthy(c) {
				return
			}
			ci.stmts(x.Body)
		}

	case *core.ForIn:
		obj := ci.eval(x.Obj, x.Idx)
		props := ci.st.Heap[obj]
		for p, v := range props {
			if !ci.tick() {
				return
			}
			kl := ci.alloc(AllocKey{Role: "forin", Site: x.Idx, Prop: x.Key}, false)
			if x.Of {
				ci.st.Store[x.Key] = v
				ci.addEdge(CEdge{From: v, To: kl, Type: CDep})
			} else {
				ci.st.Values[kl] = p
				ci.st.Store[x.Key] = kl
			}
			ci.addEdge(CEdge{From: obj, To: kl, Type: CDep})
			ci.stmts(x.Body)
		}

	case *core.Break, *core.Continue, *core.Return:
		// Call-free fragment: treated as no-ops (prefix-trace soundness
		// is unaffected by executing more statements than the real
		// control flow would — the abstract side over-approximates).

	case *core.FuncDef, *core.Call:
		// Outside the formalized fragment; skipped.
	}
}

// lookup reads property p of obj, lazily materializing an undefined
// property node with the same allocation key the abstract AP/AP* would
// use. Static lookups attach the lazy property to the oldest version of
// the object ("it existed from the beginning", §2.2 line 7); dynamic
// lookups attach it to the current version, mirroring AP*.
func (ci *concreteInterp) lookup(obj CLoc, p string, site int, role string) CLoc {
	props := ci.st.Heap[obj]
	if props == nil {
		// Primitive receiver: produce a fresh undefined node. Origin is
		// recorded so the soundness abstraction can resolve it against
		// the abstract property the analyzer created on α(obj).
		l := ci.alloc(AllocKey{Role: role, Site: site, Prop: propKeyFor(role, p)}, false)
		ci.node[l].Origin = obj
		ci.st.Values[l] = "undefined"
		return l
	}
	if v, ok := props[p]; ok {
		return v
	}
	l := ci.alloc(AllocKey{Role: role, Site: site, Prop: propKeyFor(role, p)}, false)
	ci.st.Values[l] = "undefined"
	attach := obj
	if role == "prop" {
		attach = ci.oldest(obj)
	}
	ci.node[l].Origin = attach
	props[p] = l
	if oprops := ci.st.Heap[attach]; oprops != nil {
		oprops[p] = l
	}
	ci.addEdge(CEdge{From: attach, To: l, Type: CProp, Prop: p})
	return l
}

func propKeyFor(role, p string) string {
	if role == "prop*" {
		return "*"
	}
	return p
}

// update implements NV_c: it creates a new version of obj, copies the
// property table, writes p, and adds the version and property edges.
func (ci *concreteInterp) update(obj CLoc, p string, val CLoc, site int, role string, dynProp *CLoc) {
	props := ci.st.Heap[obj]
	if props == nil {
		return // writing a property of a primitive is a no-op
	}
	nv := ci.alloc(AllocKey{Role: role, Site: site, Prop: verKeyFor(role, p)}, true)
	nprops := ci.st.Heap[nv]
	for k, v := range props {
		nprops[k] = v
	}
	nprops[p] = val
	ci.pred[nv] = obj
	ci.addEdge(CEdge{From: obj, To: nv, Type: CVer, Prop: p})
	ci.addEdge(CEdge{From: nv, To: val, Type: CProp, Prop: p})
	if dynProp != nil {
		ci.addEdge(CEdge{From: *dynProp, To: nv, Type: CDep})
	}
	// All variables referring to the old version now refer to the new.
	for x, l := range ci.st.Store {
		if l == obj {
			ci.st.Store[x] = nv
		}
	}
}

func verKeyFor(role, p string) string {
	if role == "ver*" {
		return "*"
	}
	return p
}

// ---------------------------------------------------------------------------
// Primitive operator semantics (enough for test programs).
// ---------------------------------------------------------------------------

func evalBinOp(op, a, b string) string {
	switch op {
	case "+":
		if na, ea := strconv.ParseFloat(a, 64); ea == nil {
			if nb, eb := strconv.ParseFloat(b, 64); eb == nil {
				return trimFloat(na + nb)
			}
		}
		return a + b
	case "-", "*", "/", "%":
		na, ea := strconv.ParseFloat(a, 64)
		nb, eb := strconv.ParseFloat(b, 64)
		if ea != nil || eb != nil {
			return "NaN"
		}
		switch op {
		case "-":
			return trimFloat(na - nb)
		case "*":
			return trimFloat(na * nb)
		case "/":
			if nb == 0 {
				return "NaN"
			}
			return trimFloat(na / nb)
		case "%":
			if nb == 0 {
				return "NaN"
			}
			return trimFloat(float64(int64(na) % int64(nb)))
		}
	case "<", ">", "<=", ">=":
		na, ea := strconv.ParseFloat(a, 64)
		nb, eb := strconv.ParseFloat(b, 64)
		if ea != nil || eb != nil {
			return boolStr(compareStr(op, a, b))
		}
		return boolStr(compareNum(op, na, nb))
	case "==", "===":
		return boolStr(a == b)
	case "!=", "!==":
		return boolStr(a != b)
	case "&&":
		if a == "" || a == "false" || a == "0" {
			return a
		}
		return b
	case "||":
		if a != "" && a != "false" && a != "0" {
			return a
		}
		return b
	}
	return "undefined"
}

func evalUnOp(op, a string) string {
	switch op {
	case "!":
		if a == "" || a == "false" || a == "0" || a == "undefined" || a == "null" {
			return "true"
		}
		return "false"
	case "-":
		if n, err := strconv.ParseFloat(a, 64); err == nil {
			return trimFloat(-n)
		}
		return "NaN"
	case "typeof":
		return "string"
	}
	return "undefined"
}

func compareNum(op string, a, b float64) bool {
	switch op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func compareStr(op, a, b string) bool {
	switch op {
	case "<":
		return a < b
	case ">":
		return a > b
	case "<=":
		return a <= b
	default:
		return a >= b
	}
}

func boolStr(b bool) string {
	if b {
		return "true"
	}
	return "false"
}

func trimFloat(f float64) string {
	if f == float64(int64(f)) {
		return strconv.FormatInt(int64(f), 10)
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}
