package analysis

import (
	"testing"

	"repro/internal/core"
	"repro/internal/js/normalize"
	"repro/internal/mdg"
)

func analyzeSrc(t *testing.T, src string) *Result {
	t.Helper()
	prog, err := normalize.File(src, "test.js")
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	return Analyze(prog, DefaultOptions())
}

// locOf returns the single location bound to a node whose label matches.
func callByName(res *Result, name string) *mdg.Node {
	for _, cl := range res.Calls {
		n := res.Graph.Node(cl)
		if n != nil && n.CallName == name {
			return n
		}
	}
	return nil
}

func TestNewObjectCreatesNode(t *testing.T) {
	res := analyzeSrc(t, "var o = {};")
	if res.Graph.NumNodes() < 3 { // module, exports, o
		t.Fatalf("nodes = %d", res.Graph.NumNodes())
	}
}

func TestBinOpDependencies(t *testing.T) {
	res := analyzeSrc(t, "function f(a, b) { var c = a + b; return c; } module.exports = f;")
	g := res.Graph
	fn := res.Functions["f"]
	if fn == nil {
		t.Fatal("missing summary for f")
	}
	// The binop result depends on both parameters.
	var binLoc mdg.Loc
	for _, e := range g.Out(fn.Params[0]) {
		if e.Type == mdg.Dep {
			binLoc = e.To
		}
	}
	if binLoc == mdg.NoLoc {
		t.Fatal("no dependency out of param a")
	}
	found := false
	for _, e := range g.Out(fn.Params[1]) {
		if e.Type == mdg.Dep && e.To == binLoc {
			found = true
		}
	}
	if !found {
		t.Fatal("binop must depend on both operands")
	}
	// Return value wired to RetLoc.
	if !g.HasEdge(mdg.Edge{From: binLoc, To: fn.RetLoc, Type: mdg.Dep}) {
		t.Error("return dependency missing")
	}
}

// TestGitResetMDG verifies the MDG shape of the paper's Fig. 1 running
// example: the dynamic lookup, the two version edges, the dynamic and
// static property edges, and the dependency edges into the exec call.
func TestGitResetMDG(t *testing.T) {
	src := `
function git_reset(config, op, branch_name, url) {
	var options = config[op];
	options[branch_name] = url;
	options.cmd = 'git reset HEAD~';
	exec(options.cmd + options.commit);
}
module.exports = git_reset;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["git_reset"]
	if fn == nil {
		t.Fatal("missing git_reset summary")
	}
	oConfig, oOp, oBranch, oURL := fn.Params[0], fn.Params[1], fn.Params[2], fn.Params[3]

	// Line 4: config[op] — P(*) edge from config and D edge from op.
	stars := g.StarTargets(oConfig)
	if len(stars) != 1 {
		t.Fatalf("config should have one dynamic property, got %v", stars)
	}
	o5 := stars[0]
	if !g.HasEdge(mdg.Edge{From: oOp, To: o5, Type: mdg.Dep}) {
		t.Error("missing D edge op -> options (dynamic property name)")
	}

	// Line 5: options[branch_name] = url — V(*) from o5, D from
	// branch_name onto the new version, P(*) to url.
	var o6 mdg.Loc
	for _, e := range g.Out(o5) {
		if e.Type == mdg.VerStar {
			o6 = e.To
		}
	}
	if o6 == mdg.NoLoc {
		t.Fatal("missing V(*) edge from options")
	}
	if !g.HasEdge(mdg.Edge{From: oBranch, To: o6, Type: mdg.Dep}) {
		t.Error("missing D edge branch_name -> new version")
	}
	if !g.HasEdge(mdg.Edge{From: o6, To: oURL, Type: mdg.PropStar}) {
		t.Error("missing P(*) edge new version -> url")
	}

	// Line 6: options.cmd = '...' — V(cmd) from o6 to o7, P(cmd) on o7.
	var o7 mdg.Loc
	for _, e := range g.Out(o6) {
		if e.Type == mdg.Ver && e.Prop == "cmd" {
			o7 = e.To
		}
	}
	if o7 == mdg.NoLoc {
		t.Fatal("missing V(cmd) edge")
	}
	o8 := g.PropTarget(o7, "cmd")
	if o8 == mdg.NoLoc {
		t.Fatal("missing P(cmd) property")
	}

	// Line 7: exec(...) — lookup of commit lazily lands on the initial
	// version o5, and the call depends on the concat of cmd+commit.
	execCall := callByName(res, "exec")
	if execCall == nil {
		t.Fatal("missing exec call node")
	}
	o9 := g.PropTarget(o5, "commit")
	if o9 == mdg.NoLoc {
		t.Fatal("commit should be lazily created on the initial version o5")
	}
	// cmd+commit binop depends on o8, o9 and the dynamic o4(url); the
	// call depends on the binop.
	var binLoc mdg.Loc
	for _, e := range g.Out(o8) {
		if e.Type == mdg.Dep {
			binLoc = e.To
		}
	}
	if binLoc == mdg.NoLoc {
		t.Fatal("no dependency out of cmd value")
	}
	if !g.HasEdge(mdg.Edge{From: o9, To: binLoc, Type: mdg.Dep}) {
		t.Error("concat must depend on commit value")
	}
	if !g.HasEdge(mdg.Edge{From: oURL, To: binLoc, Type: mdg.Dep}) {
		t.Error("concat must depend on url (dynamic property may shadow commit)")
	}
	if !g.HasEdge(mdg.Edge{From: binLoc, To: execCall.Loc, Type: mdg.Dep}) {
		t.Error("call must depend on its argument")
	}

	// All four parameters are taint sources (git_reset is exported).
	if len(res.Sources) != 4 {
		t.Fatalf("sources = %d, want 4", len(res.Sources))
	}
}

// TestSetValueCaseStudy checks §5.5: the loop converges to a finite
// cyclic MDG (no object explosion) and the prototype-pollution pattern
// P(*) ; V(*) ; P(*) is present.
func TestSetValueCaseStudy(t *testing.T) {
	src := `
function setValue(obj, prop, value) {
	var path = prop.split('.');
	var len = path.length;
	for (var i = 0; i < len; i++) {
		var p = path[i];
		if (i === len - 1) {
			obj[p] = value;
		}
		obj = obj[p];
	}
	return obj;
}
module.exports = setValue;
`
	res := analyzeSrc(t, src)
	if res.TimedOut {
		t.Fatal("analysis must converge")
	}
	g := res.Graph
	fn := res.Functions["setValue"]
	oObj := fn.Params[0]

	// Pattern: obj -P(*)-> sub ; sub-version-chain -V(*)-> ver -P(*)-> val.
	found := false
	for _, sub := range g.StarTargets(oObj) {
		for _, e := range g.Out(sub) {
			if e.Type != mdg.VerStar {
				continue
			}
			for _, e2 := range g.Out(e.To) {
				if e2.Type == mdg.PropStar {
					found = true
				}
			}
		}
	}
	if !found {
		t.Errorf("prototype pollution pattern not found in graph:\n%s", g.String())
	}

	// Graph stays small: allocation-site abstraction bounds it.
	if g.NumNodes() > 60 {
		t.Errorf("graph too large: %d nodes (object explosion?)", g.NumNodes())
	}
}

func TestLoopFixpointConverges(t *testing.T) {
	src := `
function f(a) {
	var o = {};
	while (a) {
		o.x = {};
		o = o.x;
	}
	return o;
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	if res.TimedOut {
		t.Fatal("fixpoint must converge")
	}
	// A new object per iteration would explode; site-keyed allocation
	// bounds the node count.
	if res.Graph.NumNodes() > 40 {
		t.Fatalf("nodes = %d", res.Graph.NumNodes())
	}
}

func TestIfJoinsBothBranches(t *testing.T) {
	src := `
function f(c, a, b) {
	var x;
	if (c) { x = a; } else { x = b; }
	sink(x);
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["f"]
	call := callByName(res, "sink")
	if call == nil {
		t.Fatal("missing sink call")
	}
	// Both a and b flow into the call.
	for i, p := range []mdg.Loc{fn.Params[1], fn.Params[2]} {
		if !g.HasEdge(mdg.Edge{From: p, To: call.Loc, Type: mdg.Dep}) {
			t.Errorf("param %d must reach the sink call after the join", i+1)
		}
	}
}

func TestRequireCreatesModuleObject(t *testing.T) {
	res := analyzeSrc(t, "var cp = require('child_process'); cp.exec('ls');")
	call := callByName(res, "cp.exec")
	if call == nil {
		t.Fatal("missing cp.exec call node")
	}
	if call.CallName != "cp.exec" {
		t.Errorf("call name = %q", call.CallName)
	}
}

func TestExportDetectionDirect(t *testing.T) {
	res := analyzeSrc(t, "function f(a) {} module.exports = f; function g(b) {}")
	if !res.Functions["f"].Exported {
		t.Error("f should be exported")
	}
	if res.Functions["g"].Exported {
		t.Error("g should not be exported when explicit exports exist")
	}
}

func TestExportDetectionProperty(t *testing.T) {
	res := analyzeSrc(t, "function run(a) {} exports.run = run;")
	if !res.Functions["run"].Exported {
		t.Error("exports.run = run should mark run exported")
	}
}

func TestExportDetectionObjectLiteral(t *testing.T) {
	res := analyzeSrc(t, "function go(a) {} module.exports = { go: go };")
	if !res.Functions["go"].Exported {
		t.Error("function in exported object literal should be exported")
	}
}

func TestExportFallbackScripts(t *testing.T) {
	// No exports at all: top-level functions become the attack surface.
	res := analyzeSrc(t, "function f(a) { eval(a); }")
	if !res.Functions["f"].Exported {
		t.Error("script fallback should export all functions")
	}
}

func TestInterproceduralTaint(t *testing.T) {
	src := `
function helper(cmd) { exec(cmd); }
function entry(input) { helper(input); }
module.exports = entry;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	entry := res.Functions["entry"]
	helper := res.Functions["helper"]
	// Arg of helper call depends on entry's param...
	if !g.HasEdge(mdg.Edge{From: entry.Params[0], To: helper.Params[0], Type: mdg.Dep}) {
		t.Error("call linking must connect caller arg to callee param")
	}
	// ...and helper's body passes it to exec.
	call := callByName(res, "exec")
	if !g.HasEdge(mdg.Edge{From: helper.Params[0], To: call.Loc, Type: mdg.Dep}) {
		t.Error("helper param must reach exec")
	}
}

func TestRecursionTerminates(t *testing.T) {
	src := `
function rec(n, acc) {
	if (n) { return rec(n - 1, acc + n); }
	return acc;
}
module.exports = rec;
`
	res := analyzeSrc(t, src)
	if res.TimedOut {
		t.Fatal("recursive program must be analyzed with a summary, not unfolding")
	}
	rec := res.Functions["rec"]
	// Recursive call links ret to itself via the call node.
	if rec == nil {
		t.Fatal("missing summary")
	}
}

func TestCallReturnTaint(t *testing.T) {
	src := `
function f(input) {
	var parts = input.split('.');
	exec(parts);
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["f"]
	splitCall := callByName(res, "input.split")
	execCall := callByName(res, "exec")
	if splitCall == nil || execCall == nil {
		t.Fatal("missing call nodes")
	}
	// input (receiver) flows into split's call node; split's result
	// into exec.
	if !g.HasEdge(mdg.Edge{From: fn.Params[0], To: splitCall.Loc, Type: mdg.Dep}) {
		t.Error("receiver must flow into method call")
	}
	if !g.HasEdge(mdg.Edge{From: splitCall.Loc, To: execCall.Loc, Type: mdg.Dep}) {
		t.Error("call result must flow onward")
	}
}

func TestForInKeyDependsOnObject(t *testing.T) {
	src := `
function f(obj) {
	for (var k in obj) { sink(k); }
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["f"]
	call := callByName(res, "sink")
	// obj -> k -> sink
	var kLoc mdg.Loc
	for _, e := range g.Out(fn.Params[0]) {
		if e.Type == mdg.Dep {
			for _, e2 := range g.Out(e.To) {
				if e2.Type == mdg.Dep && e2.To == call.Loc {
					kLoc = e.To
				}
			}
		}
	}
	if kLoc == mdg.NoLoc {
		t.Error("for-in key must depend on the iterated object and reach the sink")
	}
}

func TestCallbackTaint(t *testing.T) {
	src := `
function f(list) {
	list.forEach(function(item) { exec(item); });
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["f"]
	call := callByName(res, "exec")
	if call == nil {
		t.Fatal("missing exec call")
	}
	// list -> callback param -> exec (via callback linking).
	reached := reachableByDep(g, fn.Params[0], call.Loc)
	if !reached {
		t.Error("receiver of forEach must taint the callback parameter")
	}
}

func TestArgumentsObject(t *testing.T) {
	src := `
function f() {
	var a = arguments[0];
	exec(a);
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	// arguments has no params here (f declared none) — but the object
	// exists and the analysis must not crash; with params it carries
	// taint:
	src2 := `
function g(x) {
	var a = arguments[0];
	exec(a);
}
module.exports = g;
`
	res2 := analyzeSrc(t, src2)
	g2 := res2.Graph
	fn := res2.Functions["g"]
	call := callByName(res2, "exec")
	if !reachableByDep(g2, fn.Params[0], call.Loc) {
		t.Error("param must reach exec via arguments[0]")
	}
	_ = res
}

func TestStepBudgetTimeout(t *testing.T) {
	src := "function f(a) { while (a) { a = a + 1; } } module.exports = f;"
	prog, err := normalize.File(src, "t.js")
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(prog, Options{MaxLoopIter: 30, StepBudget: 3})
	if !res.TimedOut {
		t.Fatal("tiny step budget must report a timeout")
	}
}

func TestGraphMonotoneDuringAnalysis(t *testing.T) {
	// Re-analysis of the same program yields identical graph sizes
	// (determinism).
	src := `
function f(a, b) {
	var o = {};
	o[a] = b;
	for (var i = 0; i < 3; i++) { o.x = o[a]; }
	return o;
}
module.exports = f;
`
	r1 := analyzeSrc(t, src)
	r2 := analyzeSrc(t, src)
	if r1.Graph.NumNodes() != r2.Graph.NumNodes() || r1.Graph.NumEdges() != r2.Graph.NumEdges() {
		t.Fatalf("non-deterministic: %d/%d vs %d/%d nodes/edges",
			r1.Graph.NumNodes(), r1.Graph.NumEdges(), r2.Graph.NumNodes(), r2.Graph.NumEdges())
	}
}

// reachableByDep reports whether dst is reachable from src following any
// edges forward (the BasicPath notion).
func reachableByDep(g *mdg.Graph, src, dst mdg.Loc) bool {
	seen := map[mdg.Loc]bool{}
	var walk func(l mdg.Loc) bool
	walk = func(l mdg.Loc) bool {
		if l == dst {
			return true
		}
		if seen[l] {
			return false
		}
		seen[l] = true
		for _, e := range g.Out(l) {
			if walk(e.To) {
				return true
			}
		}
		return false
	}
	return walk(src)
}

func TestDefaultOptions(t *testing.T) {
	if DefaultOptions().MaxLoopIter <= 0 {
		t.Fatal("MaxLoopIter must be positive")
	}
}

func TestEmptyProgram(t *testing.T) {
	prog := &core.Program{FileName: "empty.js"}
	res := Analyze(prog, DefaultOptions())
	if res.TimedOut || len(res.Calls) != 0 {
		t.Fatalf("got %+v", res)
	}
}

func TestTreatAllFunctionsAsExported(t *testing.T) {
	src := "function hidden(a) { eval(a); } module.exports = function pub(b) { return b; };"
	prog, err := normalize.File(src, "t.js")
	if err != nil {
		t.Fatal(err)
	}
	res := Analyze(prog, Options{MaxLoopIter: 10, TreatAllFunctionsAsExported: true})
	// hidden's param is a source despite not being exported.
	hidden := res.Functions["hidden"]
	found := false
	for _, s := range res.Sources {
		if s == hidden.Params[0] {
			found = true
		}
	}
	if !found {
		t.Fatal("TreatAllFunctionsAsExported must seed all params")
	}
}

func TestConstructorLinking(t *testing.T) {
	src := `
function Runner(cmd) { this.cmd = cmd; }
function entry(input) {
	var r = new Runner(input);
	exec(r.cmd);
}
module.exports = entry;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	entry := res.Functions["entry"]
	call := callByName(res, "exec")
	if call == nil {
		t.Fatal("missing exec")
	}
	// input -> Runner's param -> this.cmd, and the constructed object
	// (this) flows to the new-expression result.
	if !reachableByDep(g, entry.Params[0], call.Loc) {
		t.Error("constructor taint flow missing")
	}
}

func TestForOfValuesTainted(t *testing.T) {
	src := `
function f(items) {
	for (const v of items) { eval(v); }
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["f"]
	call := callByName(res, "eval")
	if !reachableByDep(res.Graph, fn.Params[0], call.Loc) {
		t.Error("for-of value must be tainted by the iterated object")
	}
}

func TestExtraArgsIgnoredSafely(t *testing.T) {
	src := `
function two(a, b) { return a; }
function entry(x) { two(x, x, x, x); }
module.exports = entry;
`
	res := analyzeSrc(t, src)
	if res.TimedOut {
		t.Fatal("must not time out")
	}
}

func TestUnOpDependency(t *testing.T) {
	src := `
function f(a) {
	var negated = !a;
	eval(negated);
}
module.exports = f;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["f"]
	call := callByName(res, "eval")
	if !reachableByDep(res.Graph, fn.Params[0], call.Loc) {
		t.Error("unary op must propagate dependencies")
	}
}

func TestRequireDynamicArgNotModule(t *testing.T) {
	// require with a non-literal argument falls through to generic call
	// handling.
	src := `
function f(name) { return require(name); }
module.exports = f;
`
	res := analyzeSrc(t, src)
	call := callByName(res, "require")
	if call == nil {
		t.Fatal("dynamic require should remain a call node")
	}
}
