package analysis

import (
	"testing"

	"repro/internal/mdg"
)

func callNode(res *Result, name string) *mdg.Node {
	for _, cl := range res.Calls {
		n := res.Graph.Node(cl)
		if n != nil && n.CallName == name {
			return n
		}
	}
	return nil
}

// TestJSONParseTaint: the canonical attacker-data-to-object flow.
func TestJSONParseTaint(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(body) {
	var config = JSON.parse(body);
	exec(config.cmd);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	g := res.Graph
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if execCall == nil {
		t.Fatal("missing exec call")
	}
	if !reachableByDep(g, fn.Params[0], execCall.Loc) {
		t.Fatal("JSON.parse must propagate taint into property reads")
	}
}

// TestObjectAssignMerge: assign copies source properties onto target.
func TestObjectAssignMerge(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(userOpts) {
	var opts = { cmd: 'git status' };
	Object.assign(opts, userOpts);
	exec(opts.cmd);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if !reachableByDep(res.Graph, fn.Params[0], execCall.Loc) {
		t.Fatal("Object.assign must connect source object flows to the target")
	}
}

// TestObjectAssignNoFalseFlowWithoutSource: assigning a clean source
// does not taint.
func TestObjectAssignClean(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(user) {
	var opts = { cmd: 'git status' };
	Object.assign(opts, { verbose: true });
	exec(opts.cmd);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if reachableByDep(res.Graph, fn.Params[0], execCall.Loc) {
		t.Fatal("clean Object.assign must not taint the sink")
	}
}

// TestArrayPushFlow: elements pushed into an array flow out of reads.
func TestArrayPushFlow(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(part) {
	var parts = [];
	parts.push('git');
	parts.push(part);
	exec(parts.join(' '));
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if !reachableByDep(res.Graph, fn.Params[0], execCall.Loc) {
		t.Fatal("pushed element must reach the join result")
	}
}

// TestObjectKeysDependency: keys of an attacker object are attacker
// data.
func TestObjectKeysDependency(t *testing.T) {
	src := `
function run(obj) {
	var ks = Object.keys(obj);
	eval(ks[0]);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	evalCall := callNode(res, "eval")
	if !reachableByDep(res.Graph, fn.Params[0], evalCall.Loc) {
		t.Fatal("Object.keys must depend on the object")
	}
}

// TestConcatFlow: concatenated arrays merge element flows.
func TestConcatFlow(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(extra) {
	var base = ['git', 'clone'];
	var all = base.concat(extra);
	exec(all[0]);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if !reachableByDep(res.Graph, fn.Params[0], execCall.Loc) {
		t.Fatal("concat must merge flows")
	}
}

// TestObjectValuesFlowsPropValues: Object.values exposes the property
// values.
func TestObjectValuesFlows(t *testing.T) {
	src := `
const { exec } = require('child_process');
function run(cmdline) {
	var table = { main: cmdline };
	var vs = Object.values(table);
	exec(vs[0]);
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	fn := res.Functions["run"]
	execCall := callNode(res, "exec")
	if !reachableByDep(res.Graph, fn.Params[0], execCall.Loc) {
		t.Fatal("Object.values must expose property values")
	}
}

// TestBuiltinsInLoopsConverge: built-in models must respect the
// fixpoint (site-keyed allocation).
func TestBuiltinsInLoopsConverge(t *testing.T) {
	src := `
function run(items) {
	var acc = [];
	for (var i = 0; i < 10; i++) {
		acc.push({ idx: i });
		acc = acc.concat(items);
	}
	return acc;
}
module.exports = run;
`
	res := analyzeSrc(t, src)
	if res.TimedOut {
		t.Fatal("builtins in loops must converge")
	}
	if res.Graph.NumNodes() > 80 {
		t.Fatalf("graph too large: %d nodes", res.Graph.NumNodes())
	}
}
