package analysis

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/mdg"
)

// progGen builds random call-free Core JavaScript programs whose
// variables are always initialized before use. Object variables and
// primitive variables are tracked separately so lookups and updates
// target objects.
type progGen struct {
	r       *rand.Rand
	idx     int
	objVars []string
	valVars []string
	depth   int
}

func (g *progGen) nextIdx() int { g.idx++; return g.idx }

func (g *progGen) pickObj() core.Expr {
	return core.Var{Name: g.objVars[g.r.Intn(len(g.objVars))]}
}

func (g *progGen) pickVal() core.Expr {
	if g.r.Intn(4) == 0 {
		return core.Lit{Kind: core.LitString, Value: fmt.Sprintf("s%d", g.r.Intn(5))}
	}
	return core.Var{Name: g.valVars[g.r.Intn(len(g.valVars))]}
}

func (g *progGen) pickAny() core.Expr {
	if g.r.Intn(2) == 0 {
		return g.pickObj()
	}
	return g.pickVal()
}

var genProps = []string{"a", "b", "cmd", "data"}

func (g *progGen) prop() string { return genProps[g.r.Intn(len(genProps))] }

func (g *progGen) stmts(n int) []core.Stmt {
	var out []core.Stmt
	for i := 0; i < n; i++ {
		out = append(out, g.stmt())
	}
	return out
}

func (g *progGen) stmt() core.Stmt {
	m := func() core.Meta { return core.Meta{Idx: g.nextIdx(), Ln: g.idx} }
	choice := g.r.Intn(12)
	if g.depth >= 2 && choice >= 10 {
		choice = g.r.Intn(10)
	}
	switch choice {
	case 0: // new object
		x := g.objVars[g.r.Intn(len(g.objVars))]
		return &core.NewObj{Meta: m(), X: x}
	case 1: // assign literal/var to value var
		x := g.valVars[g.r.Intn(len(g.valVars))]
		return &core.Assign{Meta: m(), X: x, E: g.pickVal()}
	case 2: // binop
		x := g.valVars[g.r.Intn(len(g.valVars))]
		ops := []string{"+", "-", "*", "===", "<"}
		return &core.BinOp{Meta: m(), X: x, Op: ops[g.r.Intn(len(ops))], L: g.pickVal(), R: g.pickVal()}
	case 3: // static lookup into value var
		x := g.valVars[g.r.Intn(len(g.valVars))]
		return &core.Lookup{Meta: m(), X: x, Obj: g.pickObj(), Prop: g.prop()}
	case 4: // dynamic lookup
		x := g.valVars[g.r.Intn(len(g.valVars))]
		return &core.DynLookup{Meta: m(), X: x, Obj: g.pickObj(), Prop: g.pickVal()}
	case 5: // static update
		return &core.Update{Meta: m(), Obj: g.pickObj(), Prop: g.prop(), Val: g.pickAny()}
	case 6: // dynamic update
		return &core.DynUpdate{Meta: m(), Obj: g.pickObj(), Prop: g.pickVal(), Val: g.pickAny()}
	case 7: // unop
		x := g.valVars[g.r.Intn(len(g.valVars))]
		return &core.UnOp{Meta: m(), X: x, Op: "!", E: g.pickVal()}
	case 8, 9: // object alias — keeps object variables object-valued,
		// matching the paper's full-knowledge concrete semantics (§3.3)
		// where updates always hit real heap objects.
		x := g.objVars[g.r.Intn(len(g.objVars))]
		return &core.Assign{Meta: m(), X: x, E: g.pickObj()}
	case 10: // if
		g.depth++
		s := &core.If{Meta: m(), Cond: g.pickVal(), Then: g.stmts(1 + g.r.Intn(3)), Else: g.stmts(g.r.Intn(3))}
		g.depth--
		return s
	default: // bounded while over a counter
		g.depth++
		cnt := fmt.Sprintf("$cnt%d", g.idx)
		cond := fmt.Sprintf("$cond%d", g.idx)
		body := g.stmts(1 + g.r.Intn(3))
		body = append(body,
			&core.BinOp{Meta: m(), X: cnt, Op: "-", L: core.Var{Name: cnt}, R: core.Lit{Kind: core.LitNumber, Value: "1"}},
			&core.BinOp{Meta: m(), X: cond, Op: "<", L: core.Lit{Kind: core.LitNumber, Value: "0"}, R: core.Var{Name: cnt}},
		)
		g.depth--
		return &core.While{
			Meta: core.Meta{Ln: g.idx},
			Cond: core.Var{Name: cond},
			Body: body,
		}
	}
}

// genProgram builds a random self-contained program.
func genProgram(seed int64, size int) *core.Program {
	g := &progGen{
		r:       rand.New(rand.NewSource(seed)),
		objVars: []string{"o1", "o2", "o3"},
		valVars: []string{"v1", "v2", "v3"},
	}
	var body []core.Stmt
	// Initialize all variables.
	for _, x := range g.objVars {
		body = append(body, &core.NewObj{Meta: core.Meta{Idx: g.nextIdx(), Ln: g.idx}, X: x})
	}
	for i, x := range g.valVars {
		body = append(body, &core.Assign{Meta: core.Meta{Idx: g.nextIdx(), Ln: g.idx}, X: x,
			E: core.Lit{Kind: core.LitNumber, Value: fmt.Sprint(i + 1)}})
	}
	// Loop counters referenced by while loops.
	for i := 0; i < 60; i++ {
		body = append(body, &core.Assign{Meta: core.Meta{Idx: g.nextIdx(), Ln: g.idx},
			X: fmt.Sprintf("$cnt%d", i), E: core.Lit{Kind: core.LitNumber, Value: "2"}})
		body = append(body, &core.Assign{Meta: core.Meta{Idx: g.nextIdx(), Ln: g.idx},
			X: fmt.Sprintf("$cond%d", i), E: core.Lit{Kind: core.LitBool, Value: "true"}})
	}
	body = append(body, g.stmts(size)...)
	return &core.Program{FileName: "gen.js", Body: body, MaxIndex: g.idx + 1}
}

// alphaResolver maps concrete locations to abstract locations per the
// allocation keys, with structural fallback for lazily created property
// nodes (the abstraction function is existentially quantified in
// Theorem 3.2, so any consistent choice is valid).
type alphaResolver struct {
	g     *mdg.Graph
	cs    *ConcreteState
	cache map[CLoc]mdg.Loc
	nodes map[CLoc]*CNode
}

func newAlpha(g *mdg.Graph, cs *ConcreteState) *alphaResolver {
	a := &alphaResolver{g: g, cs: cs, cache: map[CLoc]mdg.Loc{}, nodes: map[CLoc]*CNode{}}
	for _, n := range cs.Nodes {
		a.nodes[n.Loc] = n
	}
	return a
}

func (a *alphaResolver) resolve(cl CLoc) (mdg.Loc, bool) {
	if l, ok := a.cache[cl]; ok {
		return l, true
	}
	n := a.nodes[cl]
	if n == nil {
		return mdg.NoLoc, false
	}
	// Lazy property nodes resolve structurally: they map to the abstract
	// property node attached to their origin object (which may predate
	// this site when the abstract AP*/AP reused an existing property).
	if n.Origin != 0 {
		ao, ok := a.resolve(n.Origin)
		if ok {
			// The abstract object may have been version-advanced past
			// the concrete one; search the whole version closure.
			for _, v := range verClosure(a.g, ao) {
				if n.Key.Role == "prop*" {
					if stars := a.g.StarTargets(v); len(stars) > 0 {
						a.cache[cl] = stars[0]
						return stars[0], true
					}
				} else if t := a.g.PropTarget(v, n.Key.Prop); t != mdg.NoLoc {
					a.cache[cl] = t
					return t, true
				}
			}
		}
	}
	if l, ok := a.g.LocForKey(n.Key.Role, n.Key.Site, 0, n.Key.Prop); ok {
		a.cache[cl] = l
		return l, true
	}
	return mdg.NoLoc, false
}

// verClosure returns l together with all its version successors: the
// abstract locations representing later states of the same object(s).
// Allocation-site summarization can make the abstract store advance an
// object past its concrete counterpart (several concrete objects share
// one abstract location), so the soundness relation identifies
// locations modulo version advancement — ρ̂(x) "only contains the newest
// versions of the objects associated with x" (§3.2).
func verClosure(g *mdg.Graph, l mdg.Loc) []mdg.Loc {
	out := []mdg.Loc{l}
	seen := map[mdg.Loc]bool{l: true}
	for i := 0; i < len(out); i++ {
		for _, s := range g.VersionSuccessors(out[i]) {
			if !seen[s] {
				seen[s] = true
				out = append(out, s)
			}
		}
	}
	return out
}

func hasEdgeModVersions(g *mdg.Graph, from, to mdg.Loc, ok func(mdg.Edge) bool) bool {
	for _, f := range verClosure(g, from) {
		for _, e := range g.Out(f) {
			if !ok(e) {
				continue
			}
			for _, t := range verClosure(g, to) {
				if e.To == t {
					return true
				}
			}
		}
	}
	return false
}

// checkSoundness verifies Definition 3.1 (ĝ ∼α g) plus the store
// over-approximation ρ̂ ⊒ α(ρ), both modulo version advancement. It
// returns a description of the first violation, or "".
func checkSoundness(res *Result, cs *ConcreteState) string {
	alpha := newAlpha(res.Graph, cs)
	g := res.Graph
	for _, e := range cs.Edges {
		af, okF := alpha.resolve(e.From)
		at, okT := alpha.resolve(e.To)
		if !okF || !okT {
			return fmt.Sprintf("no α for edge endpoints %d->%d (%v)", e.From, e.To, e.Type)
		}
		if af == at {
			continue // collapsed by abstraction
		}
		switch e.Type {
		case CDep:
			if !hasEdgeModVersions(g, af, at, func(ae mdg.Edge) bool { return ae.Type == mdg.Dep }) {
				return fmt.Sprintf("missing abstract D edge o%d->o%d (concrete %d->%d)", af, at, e.From, e.To)
			}
		case CProp:
			okEdge := func(ae mdg.Edge) bool {
				return (ae.Type == mdg.Prop && ae.Prop == e.Prop) || ae.Type == mdg.PropStar
			}
			if !hasEdgeModVersions(g, af, at, okEdge) {
				return fmt.Sprintf("missing abstract P(%s)/P(*) edge o%d->o%d", e.Prop, af, at)
			}
		case CVer:
			okEdge := func(ae mdg.Edge) bool {
				return (ae.Type == mdg.Ver && ae.Prop == e.Prop) || ae.Type == mdg.VerStar
			}
			if !hasEdgeModVersions(g, af, at, okEdge) {
				return fmt.Sprintf("missing abstract V(%s)/V(*) edge o%d->o%d", e.Prop, af, at)
			}
		}
	}
	// Store over-approximation modulo version advancement.
	for x, cl := range cs.Store {
		al, ok := alpha.resolve(cl)
		if !ok {
			return fmt.Sprintf("no α for store binding %s=%d", x, cl)
		}
		found := false
		closure := verClosure(g, al)
		for _, l := range res.Root.Get(x) {
			for _, c := range closure {
				if l == c {
					found = true
				}
			}
		}
		if !found {
			return fmt.Sprintf("store: α(ρ(%s))=o%d ∉ ρ̂(%s)=%v (mod versions)", x, al, x, res.Root.Get(x))
		}
	}
	return ""
}

// TestSoundnessQuick is the Theorem 3.2 property test: for randomly
// generated call-free Core JavaScript programs, the abstract MDG and
// store over-approximate the instrumented concrete execution.
func TestSoundnessQuick(t *testing.T) {
	for seed := int64(0); seed < 300; seed++ {
		prog := genProgram(seed, 12+int(seed%10))
		res := Analyze(prog, Options{MaxLoopIter: 50})
		if res.TimedOut {
			t.Fatalf("seed %d: abstract analysis timed out", seed)
		}
		cs := RunConcrete(prog, 5000)
		if msg := checkSoundness(res, cs); msg != "" {
			t.Fatalf("seed %d: soundness violated: %s\nprogram:\n%s",
				seed, msg, core.Print(prog.Body))
		}
	}
}

// TestSoundnessGitReset checks soundness on the normalized running
// example against a hand-driven concrete input (full knowledge).
func TestSoundnessLargePrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("long soundness sweep")
	}
	for seed := int64(1000); seed < 1050; seed++ {
		prog := genProgram(seed, 60)
		res := Analyze(prog, Options{MaxLoopIter: 50})
		cs := RunConcrete(prog, 20000)
		if msg := checkSoundness(res, cs); msg != "" {
			t.Fatalf("seed %d: soundness violated: %s", seed, msg)
		}
	}
}

func TestConcreteInterpreterBasics(t *testing.T) {
	prog := &core.Program{Body: []core.Stmt{
		&core.NewObj{Meta: core.Meta{Idx: 1}, X: "o"},
		&core.Assign{Meta: core.Meta{Idx: 2}, X: "v", E: core.Lit{Kind: core.LitString, Value: "hi"}},
		&core.Update{Meta: core.Meta{Idx: 3}, Obj: core.Var{Name: "o"}, Prop: "msg", Val: core.Var{Name: "v"}},
		&core.Lookup{Meta: core.Meta{Idx: 4}, X: "w", Obj: core.Var{Name: "o"}, Prop: "msg"},
	}}
	cs := RunConcrete(prog, 1000)
	if cs.Truncated {
		t.Fatal("must not truncate")
	}
	// w holds the same location as v.
	if cs.Store["w"] != cs.Store["v"] {
		t.Fatalf("w=%d v=%d", cs.Store["w"], cs.Store["v"])
	}
	// The update created a version edge.
	hasVer := false
	for _, e := range cs.Edges {
		if e.Type == CVer && e.Prop == "msg" {
			hasVer = true
		}
	}
	if !hasVer {
		t.Fatal("missing concrete version edge")
	}
}

func TestConcreteWhileTerminates(t *testing.T) {
	// A concretely infinite loop is truncated by the budget.
	prog := &core.Program{Body: []core.Stmt{
		&core.Assign{Meta: core.Meta{Idx: 1}, X: "c", E: core.Lit{Kind: core.LitBool, Value: "true"}},
		&core.While{Meta: core.Meta{}, Cond: core.Var{Name: "c"}, Body: []core.Stmt{
			&core.Assign{Meta: core.Meta{Idx: 2}, X: "x", E: core.Lit{Kind: core.LitNumber, Value: "1"}},
		}},
	}}
	cs := RunConcrete(prog, 100)
	if !cs.Truncated {
		t.Fatal("expected truncation")
	}
}

func TestConcreteBinOpSemantics(t *testing.T) {
	cases := []struct{ op, a, b, want string }{
		{"+", "1", "2", "3"},
		{"+", "a", "b", "ab"},
		{"-", "5", "2", "3"},
		{"*", "4", "2", "8"},
		{"/", "8", "2", "4"},
		{"/", "8", "0", "NaN"},
		{"<", "1", "2", "true"},
		{"===", "x", "x", "true"},
		{"!==", "x", "y", "true"},
		{"&&", "true", "z", "z"},
		{"||", "", "z", "z"},
	}
	for _, c := range cases {
		if got := evalBinOp(c.op, c.a, c.b); got != c.want {
			t.Errorf("%s %s %s = %q, want %q", c.a, c.op, c.b, got, c.want)
		}
	}
}
