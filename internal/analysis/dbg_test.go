package analysis

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/mdg"
)

func TestDebugSeed297(t *testing.T) {
	prog := genProgram(297, 12+297%10)
	res := Analyze(prog, Options{MaxLoopIter: 50})
	cs := RunConcrete(prog, 5000)
	fmt.Println(core.Print(prog.Body[129:]))
	alpha := newAlpha(res.Graph, cs)
	cl := cs.Store["v3"]
	n := alpha.nodes[cl]
	l, ok := alpha.resolve(cl)
	fmt.Printf("v3: cl=%d key=%+v origin=%d -> alpha=%d ok=%v rho=%v\n", cl, n.Key, n.Origin, l, ok, res.Root.Get("v3"))
	for _, al := range []mdg.Loc{152, 4, 161, 151} {
		fmt.Printf("o%d = kind=%v label=%q site=%d\n", al, res.Graph.Node(al).Kind, res.Graph.Node(al).Label, res.Graph.Node(al).Site)
	}
}

func TestDebugSeed1016(t *testing.T) {
	prog := genProgram(1016, 60)
	res := Analyze(prog, Options{MaxLoopIter: 50})
	cs := RunConcrete(prog, 20000)
	alpha := newAlpha(res.Graph, cs)
	for _, e := range cs.Edges {
		if e.From == 170 && e.To == 190 {
			fn, tn := alpha.nodes[e.From], alpha.nodes[e.To]
			af, _ := alpha.resolve(e.From)
			at, _ := alpha.resolve(e.To)
			fmt.Printf("edge %+v fromKey=%+v origin=%d toKey=%+v origin=%d alpha %d->%d\n", e, fn.Key, fn.Origin, tn.Key, tn.Origin, af, at)
			fmt.Printf("out of o%d: ", af)
			for _, ae := range res.Graph.Out(af) {
				fmt.Printf("%s->o%d ", ae.Label(), ae.To)
			}
			fmt.Println()
		}
	}
}
