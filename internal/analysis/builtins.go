package analysis

import (
	"strings"

	"repro/internal/core"
	"repro/internal/mdg"
)

// Built-in function models. Graph.js models the JavaScript built-ins
// that matter for taint and shape propagation; unmodelled built-ins
// fall back to the generic call treatment (result depends on the
// arguments). Each model returns true when it fully handled the call.

// builtinCall dispatches on the source-level callee path.
func (a *analyzer) builtinCall(x *core.Call, st *mdg.Store, cl mdg.Loc,
	argLocs [][]mdg.Loc, thisLocs []mdg.Loc) bool {
	switch {
	case x.CalleeName == "Object.assign":
		return a.builtinObjectAssign(x, st, cl, argLocs)
	case x.CalleeName == "JSON.parse":
		return a.builtinJSONParse(x, st, cl, argLocs)
	case x.CalleeName == "Object.keys" || x.CalleeName == "Object.values" ||
		x.CalleeName == "Object.entries":
		return a.builtinObjectKeys(x, st, cl, argLocs)
	case strings.HasSuffix(x.CalleeName, ".push") || strings.HasSuffix(x.CalleeName, ".unshift"):
		return a.builtinArrayPush(x, st, cl, argLocs, thisLocs)
	case strings.HasSuffix(x.CalleeName, ".concat"):
		return a.builtinConcat(x, st, cl, argLocs, thisLocs)
	}
	return false
}

// Object.assign(target, ...sources): every source's property values may
// become dynamic properties of target; the result is target.
func (a *analyzer) builtinObjectAssign(x *core.Call, st *mdg.Store, cl mdg.Loc, argLocs [][]mdg.Loc) bool {
	if len(argLocs) == 0 {
		return false
	}
	targets := argLocs[0]
	var srcVals []mdg.Loc
	var srcObjs []mdg.Loc
	for _, ls := range argLocs[1:] {
		srcObjs = append(srcObjs, ls...)
		for _, l := range ls {
			srcVals = append(srcVals, a.g.AllPropValues(l)...)
		}
	}
	// The merge is a dynamic update whose property names come from the
	// sources.
	repl := a.g.NVStar(a.site(x.Idx), targets, srcObjs, x.Ln)
	a.replaceVersions(st, targets, repl)
	var newVers []mdg.Loc
	for _, nl := range repl {
		newVers = append(newVers, nl)
		for _, v := range srcVals {
			a.g.AddEdge(mdg.Edge{From: nl, To: v, Type: mdg.PropStar})
		}
	}
	// Unknown source properties: reads on the target may now return
	// anything the sources held, including properties not yet
	// materialized — a star property depending on the source objects.
	starVals := a.g.APStar(a.site(x.Idx), newVers, srcObjs, x.Ln)
	for _, sv := range starVals {
		for _, src := range srcObjs {
			a.g.AddDep(src, sv)
		}
	}
	// Result: the (new versions of the) target.
	var out []mdg.Loc
	for _, nl := range repl {
		out = append(out, nl)
	}
	if len(out) == 0 {
		out = targets
	}
	for _, l := range out {
		a.g.AddDep(l, cl)
	}
	st.Set(x.X, dedupeLocs(out))
	return true
}

// JSON.parse(s): the result is a fresh object whose shape and every
// property are controlled by the string — the canonical way attacker
// data becomes a structured object.
func (a *analyzer) builtinJSONParse(x *core.Call, st *mdg.Store, cl mdg.Loc, argLocs [][]mdg.Loc) bool {
	obj := a.g.Alloc("obj", a.site(x.Idx), 0, "json", mdg.KindObject, x.X, x.Ln)
	var deps []mdg.Loc
	if len(argLocs) > 0 {
		deps = argLocs[0]
	}
	for _, d := range deps {
		a.g.AddDep(d, obj)
	}
	// Its dynamic property carries the same dependencies, so lookups on
	// the parsed value stay tainted.
	star := a.g.APStar(a.site(x.Idx), []mdg.Loc{obj}, deps, x.Ln)
	for _, sv := range star {
		for _, d := range deps {
			a.g.AddDep(d, sv)
		}
	}
	a.g.AddDep(obj, cl)
	st.Set(x.X, []mdg.Loc{obj})
	return true
}

// Object.keys/values/entries(o): an array derived from o — its elements
// depend on the object (keys) or are the property values (values).
func (a *analyzer) builtinObjectKeys(x *core.Call, st *mdg.Store, cl mdg.Loc, argLocs [][]mdg.Loc) bool {
	arr := a.g.Alloc("obj", a.site(x.Idx), 0, "keys", mdg.KindObject, x.X, x.Ln)
	if len(argLocs) > 0 {
		for _, o := range argLocs[0] {
			a.g.AddDep(o, arr)
			if x.CalleeName != "Object.keys" {
				for _, v := range a.g.AllPropValues(o) {
					a.g.AddEdge(mdg.Edge{From: arr, To: v, Type: mdg.PropStar})
				}
			}
		}
	}
	a.g.AddDep(arr, cl)
	st.Set(x.X, []mdg.Loc{arr})
	return true
}

// arr.push(v)/unshift(v): a dynamic-property write of v on the
// receiver.
func (a *analyzer) builtinArrayPush(x *core.Call, st *mdg.Store, cl mdg.Loc, argLocs [][]mdg.Loc, thisLocs []mdg.Loc) bool {
	if len(thisLocs) == 0 || len(argLocs) == 0 {
		return false
	}
	repl := a.g.NVStar(a.site(x.Idx), thisLocs, nil, x.Ln)
	a.replaceVersions(st, thisLocs, repl)
	for _, nl := range repl {
		for _, ls := range argLocs {
			for _, v := range ls {
				a.g.AddEdge(mdg.Edge{From: nl, To: v, Type: mdg.PropStar})
				// Element data is part of the array value (joins,
				// string conversions), so the new version depends on
				// the element too.
				a.g.AddDep(v, nl)
			}
		}
	}
	// push returns the new length; model as depending on the receiver.
	for _, tl := range thisLocs {
		a.g.AddDep(tl, cl)
	}
	st.Set(x.X, []mdg.Loc{cl})
	return true
}

// a.concat(b): a fresh array whose elements come from both operands.
func (a *analyzer) builtinConcat(x *core.Call, st *mdg.Store, cl mdg.Loc, argLocs [][]mdg.Loc, thisLocs []mdg.Loc) bool {
	arr := a.g.Alloc("obj", a.site(x.Idx), 0, "concat", mdg.KindObject, x.X, x.Ln)
	add := func(ls []mdg.Loc) {
		for _, l := range ls {
			a.g.AddDep(l, arr)
			for _, v := range a.g.AllPropValues(l) {
				a.g.AddEdge(mdg.Edge{From: arr, To: v, Type: mdg.PropStar})
				a.g.AddDep(v, arr)
			}
		}
	}
	add(thisLocs)
	for _, ls := range argLocs {
		add(ls)
	}
	a.g.AddDep(arr, cl)
	st.Set(x.X, []mdg.Loc{arr})
	return true
}
