package sweepjournal

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAppendIsDurablePerEntry: every acknowledged Append must already be
// on disk — reading the file after Append (without Close) sees the
// entry, which is what makes a SIGKILL lose at most unacknowledged
// writes. This is the observable contract of fsync-on-append.
func TestAppendIsDurablePerEntry(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := CreateOpts(path, WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	for i, pkg := range []string{"a", "b", "c"} {
		if err := w.Append(entry(pkg, "h", "o", StateComplete)); err != nil {
			t.Fatal(err)
		}
		// Re-open the file by path: Append returned, so the bytes must
		// have been flushed out of the bufio layer and fsynced.
		got, torn, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if torn {
			t.Fatal("durable journal reported torn")
		}
		if len(got) != i+1 {
			t.Fatalf("after append %d: loaded %d entries, want %d", i+1, len(got), i+1)
		}
		if _, ok := got[pkg]; !ok {
			t.Fatalf("entry %q not visible after Append returned", pkg)
		}
	}
}

// TestNoFsyncStillFlushes: -no-fsync skips the fsync but must still
// flush the buffered writer so a clean Close (or concurrent reader)
// sees every entry.
func TestNoFsyncStillFlushes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := CreateOpts(path, WriterOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "h", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got["pkg"]; !ok {
		t.Fatal("entry not flushed under NoFsync")
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCompactRoundTrip: compaction moves the live state into the store,
// truncates the log, and LoadWithStore reproduces exactly what Load saw
// before the compaction.
func TestCompactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Superseded entry: compaction must keep only the live (last) one.
	if err := w.Append(entry("pkg-a", "h1", "o", StateDegraded)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg-a", "h2", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg-b", "h3", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	before, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}

	s := openStore(t, filepath.Join(dir, "cache"))
	kept, err := Compact(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if kept != 2 {
		t.Fatalf("kept %d entries, want 2", kept)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated: size=%v err=%v", fi.Size(), err)
	}
	// Plain Load now sees nothing; LoadWithStore sees everything.
	fileOnly, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(fileOnly) != 0 {
		t.Fatalf("truncated log still has %d entries", len(fileOnly))
	}
	after, torn, err := LoadWithStore(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("compacted journal reported torn")
	}
	if len(after) != len(before) {
		t.Fatalf("LoadWithStore: %d entries, want %d", len(after), len(before))
	}
	for k, want := range before {
		got, ok := after[k]
		if !ok {
			t.Fatalf("entry %q lost in compaction", k)
		}
		if got.Hash != want.Hash || got.State != want.State {
			t.Errorf("entry %q diverged: got %+v want %+v", k, got, want)
		}
	}
}

// TestLoadWithStoreFileWins: entries appended after a compaction are
// newer than the store's copies and must shadow them on replay.
func TestLoadWithStoreFileWins(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	s := openStore(t, filepath.Join(dir, "cache"))

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "old", "o", StateDegraded)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Compact(path, s); err != nil {
		t.Fatal(err)
	}
	// A later sweep re-scans the package and appends a fresh entry.
	w, err = Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "new", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadWithStore(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if e := got["pkg"]; e.Hash != "new" || e.State != StateComplete {
		t.Errorf("file entry did not win over store: %+v", e)
	}
}

// TestCompactCrashBeforeTruncate: the crash window between the store
// sync and the log truncate leaves the entry in both places — replay
// must see exactly one copy (the file's).
func TestCompactCrashBeforeTruncate(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	s := openStore(t, filepath.Join(dir, "cache"))

	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "h", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate the crash by doing the store half of Compact by hand and
	// never truncating: this is byte-for-byte the on-disk state a
	// SIGKILL between Sync and Truncate leaves behind.
	e := entry("pkg", "h", "o", StateComplete)
	body, err := json.Marshal(&e)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(store.KindJournal, "pkg", body); err != nil {
		t.Fatal(err)
	}
	if err := s.Sync(); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadWithStore(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("duplicate visible after simulated crash: %d entries", len(got))
	}
	if got["pkg"].Hash != "h" {
		t.Errorf("entry diverged: %+v", got["pkg"])
	}
	// Re-running the interrupted compaction converges.
	if _, err := Compact(path, s); err != nil {
		t.Fatal(err)
	}
	got, _, err = LoadWithStore(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got["pkg"].Hash != "h" {
		t.Errorf("re-compaction diverged: %+v", got)
	}
}

// TestLoadWithStoreQuarantinesBadRecord: a store record holding
// undecodable or mis-keyed JSON is quarantined and skipped — the
// package simply re-scans cold.
func TestLoadWithStoreQuarantinesBadRecord(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	s := openStore(t, filepath.Join(dir, "cache"))
	if err := s.Put(store.KindJournal, "pkg-bad", []byte("not json")); err != nil {
		t.Fatal(err)
	}
	mismatched, err := json.Marshal(entry("other-pkg", "h", "o", StateComplete))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(store.KindJournal, "pkg-mismatch", mismatched); err != nil {
		t.Fatal(err)
	}
	good, err := json.Marshal(entry("pkg-good", "h", "o", StateComplete))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(store.KindJournal, "pkg-good", good); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadWithStore(path, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want only the good one", len(got))
	}
	if _, ok := got["pkg-good"]; !ok {
		t.Fatal("good entry lost")
	}
	if q := s.Stats().Quarantined; q != 2 {
		t.Errorf("quarantined %d records, want 2", q)
	}
}

// TestLoadWithStoreNilStore: callers without a cache directory pass a
// nil store and get plain Load semantics.
func TestLoadWithStoreNilStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "h", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := LoadWithStore(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("loaded %d entries, want 1", len(got))
	}
}
