package sweepjournal

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/store"
)

// Journal compaction
//
// A long-lived sweep service appends one JSONL line per package per
// sweep, so the journal grows without bound even when the corpus does
// not. Compact folds the journal's live state — the last-wins entry
// per package — into the persistent store (one KindJournal record per
// package, keyed by package name) and truncates the JSONL log, giving
// the journal the same crash-safety story as the rest of the store:
// CRC'd records, atomic compaction, quarantine on corruption.
//
// Ordering makes this crash-safe without a transaction: entries are
// written and fsynced into the store *before* the log is truncated. A
// crash before the truncate leaves every entry in both places — and
// since LoadWithStore overlays the file over the store, the duplicate
// is invisible. A crash during the store writes leaves the log
// untouched and still authoritative.

// Compact rewrites the journal's live entries into s and truncates the
// JSONL log. It returns the number of entries now living in the store.
// A torn final line is handled exactly as Load handles it; corruption
// mid-file aborts the compaction with the log untouched.
func Compact(path string, s *store.Store) (kept int, err error) {
	entries, _, err := Load(path)
	if err != nil {
		return 0, err
	}
	keys := make([]string, 0, len(entries))
	for k := range entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := entries[k]
		body, merr := json.Marshal(&e)
		if merr != nil {
			return 0, fmt.Errorf("sweepjournal: compact marshal %s: %w", k, merr)
		}
		if perr := s.Put(store.KindJournal, k, body); perr != nil {
			return 0, fmt.Errorf("sweepjournal: compact: %w", perr)
		}
	}
	// Durability point: everything lives in the store before the log
	// shrinks. Only then is dropping the log safe.
	if serr := s.Sync(); serr != nil {
		return 0, fmt.Errorf("sweepjournal: compact: %w", serr)
	}
	if terr := os.Truncate(path, 0); terr != nil && !os.IsNotExist(terr) {
		return 0, fmt.Errorf("sweepjournal: compact truncate: %w", terr)
	}
	return len(s.Keys(store.KindJournal)), nil
}

// LoadWithStore replays compacted entries from s (when non-nil) and
// overlays the live JSONL journal on top — file entries are newer by
// construction, so they win. A store record that fails to decode is
// quarantined and skipped: that package re-scans cold, findings
// unchanged.
func LoadWithStore(path string, s *store.Store) (entries map[string]Entry, torn bool, err error) {
	fileEntries, torn, err := Load(path)
	if err != nil {
		return nil, torn, err
	}
	if s == nil {
		return fileEntries, torn, nil
	}
	entries = make(map[string]Entry, len(fileEntries))
	for _, k := range s.Keys(store.KindJournal) {
		body, ok := s.Get(store.KindJournal, k)
		if !ok {
			continue // CRC failure: already quarantined by the store
		}
		var e Entry
		if uerr := json.Unmarshal(body, &e); uerr != nil || e.Package == "" || e.Key() != k {
			s.Quarantine(store.KindJournal, k)
			continue
		}
		entries[k] = e
	}
	for k, e := range fileEntries {
		entries[k] = e
	}
	return entries, torn, nil
}
