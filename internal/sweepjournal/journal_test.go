package sweepjournal

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func entry(pkg, hash, opts, state string) Entry {
	return Entry{
		Package: pkg, Hash: hash, Opts: opts, State: state, Rung: "full",
		Findings: []Finding{{CWE: "CWE-94", SinkLine: 3, Source: "input"}},
		Attempts: []Attempt{{Rung: "full", Engine: "query", Findings: 1}},
	}
}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := w.Append(entry(fmt.Sprintf("pkg-%d", i), "h", "o", StateComplete)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if torn {
		t.Error("clean journal reported torn")
	}
	if len(got) != 5 {
		t.Fatalf("loaded %d entries, want 5", len(got))
	}
	e := got["pkg-3"]
	if e.State != StateComplete || len(e.Findings) != 1 || e.Findings[0].CWE != "CWE-94" {
		t.Errorf("entry did not round-trip: %+v", e)
	}
}

// TestLastEntryWins: re-scans append rather than rewrite; replay must
// keep the newest complete entry per package.
func TestLastEntryWins(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "h1", "o", StateQuarantined)); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entry("pkg", "h2", "o", StateComplete)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if e := got["pkg"]; e.Hash != "h2" || e.State != StateComplete {
		t.Errorf("last entry did not win: %+v", e)
	}
}

// TestTornFinalLine: a journal whose final line was cut mid-write (the
// SIGKILL signature) must load every complete line and report the tear
// instead of erroring.
func TestTornFinalLine(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(entry(fmt.Sprintf("pkg-%d", i), "h", "o", StateComplete)); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the tail at several depths: mid-line, at the newline, and
	// the whole final line (a clean cut, no tear to report).
	for _, cut := range []int{1, 7, 20, lastLineLen(data)} {
		torn := data[:len(data)-cut]
		tpath := filepath.Join(dir, fmt.Sprintf("torn-%d.jsonl", cut))
		if err := os.WriteFile(tpath, torn, 0o644); err != nil {
			t.Fatal(err)
		}
		got, isTorn, err := Load(tpath)
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(got) < 3 {
			t.Errorf("cut=%d: only %d entries survived, want >=3", cut, len(got))
		}
		if cut != lastLineLen(data) && !isTorn {
			t.Errorf("cut=%d: torn tail not reported", cut)
		}
		for i := 0; i < 3; i++ {
			if _, ok := got[fmt.Sprintf("pkg-%d", i)]; !ok {
				t.Errorf("cut=%d: complete entry pkg-%d lost", cut, i)
			}
		}
	}
}

func lastLineLen(data []byte) int {
	s := strings.TrimRight(string(data), "\n")
	i := strings.LastIndexByte(s, '\n')
	return len(data) - (i + 1)
}

// TestCorruptMiddleLineErrors: garbage anywhere but the tail is
// corruption, not a kill artifact.
func TestCorruptMiddleLineErrors(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	content := `{"pkg":"a","hash":"h","opts":"o","state":"complete","rung":"full","findings":[],"attempts":[]}
{"pkg": garbage
{"pkg":"b","hash":"h","opts":"o","state":"complete","rung":"full","findings":[],"attempts":[]}
`
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Error("corrupt middle line loaded without error")
	}
}

func TestMissingFileLoadsEmpty(t *testing.T) {
	got, torn, err := Load(filepath.Join(t.TempDir(), "nope.jsonl"))
	if err != nil || torn || len(got) != 0 {
		t.Errorf("missing file: entries=%d torn=%v err=%v, want empty/false/nil", len(got), torn, err)
	}
}

// TestConcurrentWriters: entries appended from many goroutines (the
// sweep pool's workers) must each survive as an intact line. Run under
// -race this also checks the Writer's locking.
func TestConcurrentWriters(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j.jsonl")
	w, err := Create(path)
	if err != nil {
		t.Fatal(err)
	}
	const workers, per = 8, 25
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				e := entry(fmt.Sprintf("pkg-%d-%d", g, i), "h", "o", StateComplete)
				if err := w.Append(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, torn, err := Load(path)
	if err != nil || torn {
		t.Fatalf("load: torn=%v err=%v", torn, err)
	}
	if len(got) != workers*per {
		t.Fatalf("loaded %d entries, want %d", len(got), workers*per)
	}
}

func TestMatches(t *testing.T) {
	e := entry("pkg", "h1", "o1", StateComplete)
	if !e.Matches("h1", "o1") {
		t.Error("matching hash+opts rejected")
	}
	if e.Matches("h2", "o1") {
		t.Error("content-hash mismatch accepted")
	}
	if e.Matches("h1", "o2") {
		t.Error("options-fingerprint mismatch accepted")
	}
}

func TestContentHashFiles(t *testing.T) {
	a := ContentHashFiles(map[string]string{"a.js": "x", "b.js": "y"})
	b := ContentHashFiles(map[string]string{"b.js": "y", "a.js": "x"})
	if a != b {
		t.Error("hash depends on map iteration order")
	}
	if a == ContentHashFiles(map[string]string{"a.js": "x", "b.js": "z"}) {
		t.Error("content edit not reflected in hash")
	}
	if a == ContentHashFiles(map[string]string{"a.js": "x"}) {
		t.Error("file deletion not reflected in hash")
	}
	if a == ContentHashFiles(map[string]string{"a.js": "xb", ".js": "y"}) {
		t.Error("path/content boundary ambiguity")
	}
}

// TestCreateRepairsTornTail: reopening a journal whose final line was
// torn by a kill must not let the next append concatenate onto the
// torn bytes. Torn garbage is truncated away; a complete entry that
// only lost its newline is kept and completed.
func TestCreateRepairsTornTail(t *testing.T) {
	t.Run("garbage-tail-truncated", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(entry("pkg-0", "h", "o", StateComplete))
		w.Append(entry("pkg-1", "h", "o", StateComplete))
		w.Close()
		data, _ := os.ReadFile(path)
		cut := strings.LastIndex(strings.TrimRight(string(data), "\n"), "\n")
		torn := append([]byte(nil), data[:cut+1]...)
		torn = append(torn, data[cut+1:cut+10]...) // half a line, no newline
		if err := os.WriteFile(path, torn, 0o644); err != nil {
			t.Fatal(err)
		}

		w, err = Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(entry("pkg-2", "h", "o", StateComplete)); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got, tornLoad, err := Load(path)
		if err != nil {
			t.Fatalf("appended-after-tear journal corrupt: %v", err)
		}
		if tornLoad {
			t.Error("repaired journal still reports torn")
		}
		if _, ok := got["pkg-1"]; ok {
			t.Error("torn entry resurrected")
		}
		if _, ok := got["pkg-2"]; !ok {
			t.Error("post-repair append lost")
		}
	})

	t.Run("newline-less-entry-kept", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "j.jsonl")
		w, err := Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w.Append(entry("pkg-0", "h", "o", StateComplete))
		w.Append(entry("pkg-1", "h", "o", StateComplete))
		w.Close()
		data, _ := os.ReadFile(path)
		if err := os.WriteFile(path, data[:len(data)-1], 0o644); err != nil { // drop final newline only
			t.Fatal(err)
		}

		w, err = Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Append(entry("pkg-2", "h", "o", StateComplete)); err != nil {
			t.Fatal(err)
		}
		w.Close()
		got, _, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 3 {
			t.Fatalf("loaded %d entries, want 3 (intact newline-less entry kept)", len(got))
		}
	})
}
