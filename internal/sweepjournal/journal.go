// Package sweepjournal persists per-package sweep outcomes as an
// append-only JSONL journal, the crash-safety substrate for resumable
// corpus sweeps: each worker appends one terminal Entry as it finishes
// a package, so a sweep that is SIGKILLed mid-corpus loses at most the
// packages still in flight. Re-running with resume enabled loads the
// journal, skips every package whose entry matches the current content
// hash and analysis-options fingerprint, and re-scans the rest.
//
// The format is deliberately dumb: one self-contained JSON object per
// line, no header, no index, no compaction. A torn final line — the
// signature of a kill mid-write — is detected and ignored on load, and
// when several entries exist for one package (a re-scan after an edit,
// a requarantine override) the last complete line wins. Entries carry
// no wall-clock timestamps, so a journal is a deterministic function
// of (corpus, options, fault plan) and two journals can be compared
// byte-for-byte per package in the chaos harness.
package sweepjournal

import (
	"bufio"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Terminal states of a supervised package. Every package a supervised
// sweep touches ends in exactly one of these.
const (
	// StateComplete: the full-fidelity rung produced a clean (or
	// deterministically classified, e.g. parse-error) result.
	StateComplete = "complete"
	// StateDegraded: a lower ladder rung produced the result — either a
	// clean run under reduced caps or the reach-gate-only triage floor.
	// Rung records which.
	StateDegraded = "degraded"
	// StateQuarantined: every rung failed; later sweeps skip the
	// package by default (requarantine overrides).
	StateQuarantined = "quarantined"
	// StateCanceled: the sweep's request context was canceled (client
	// disconnect, server shutdown) before the package finished. Unlike
	// the three states above it says nothing about the package, so a
	// canceled entry is always retryable: resume re-scans it even when
	// hash and fingerprint match.
	StateCanceled = "canceled"
)

// Finding is the journal's flat rendering of one queries.Finding
// (witness paths are graph-node IDs, meaningless across runs, and are
// not persisted).
type Finding struct {
	CWE      string `json:"cwe"`
	SinkName string `json:"sink,omitempty"`
	SinkLine int    `json:"line"`
	SinkFile string `json:"file,omitempty"`
	Source   string `json:"source,omitempty"`
}

// Attempt is one row of a package's attempt history: which ladder rung
// ran, on which engine, and how it ended.
type Attempt struct {
	Rung     string `json:"rung"`
	Engine   string `json:"engine,omitempty"`
	Class    string `json:"class,omitempty"` // failure class ("" = clean)
	Err      string `json:"err,omitempty"`
	Findings int    `json:"findings"`
}

// Entry is one package's terminal journal row.
type Entry struct {
	Package string `json:"pkg"`
	// Hash is the package's content hash; Opts fingerprints the
	// analysis options (base scan options + ladder). Resume skips a
	// package only when both match.
	Hash string `json:"hash"`
	Opts string `json:"opts"`
	// State is the terminal state (StateComplete/Degraded/Quarantined);
	// Rung names the ladder rung that produced the result.
	State string `json:"state"`
	Rung  string `json:"rung"`
	// Class is the final failure class ("" for a clean result) and
	// Incomplete marks best-effort findings subsets.
	Class      string    `json:"class,omitempty"`
	Incomplete bool      `json:"incomplete,omitempty"`
	Findings   []Finding `json:"findings"`
	Attempts   []Attempt `json:"attempts"`
}

// Key is the journal map key for an entry (the package name: a corpus
// never contains two packages with the same name).
func (e *Entry) Key() string { return e.Package }

// Matches reports whether the entry can stand in for a fresh scan of a
// package with the given content hash and options fingerprint.
func (e *Entry) Matches(hash, opts string) bool {
	return e.Hash == hash && e.Opts == opts
}

// Writer appends entries to a journal file. It is safe for concurrent
// use: each entry is marshaled and written under a lock as a single
// buffered write followed by a flush, so concurrently finishing
// workers never interleave bytes within a line. By default every
// Append is also fsynced before it returns — batched as a group
// commit, so concurrently finishing workers share one Sync — making
// an acknowledged entry durable, not merely handed to the OS.
// WriterOptions.NoFsync is the escape hatch for benchmarks and
// throwaway sweeps.
type Writer struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer

	noFsync bool
	// Group commit: written counts flushed appends, synced the highest
	// append known durable. An Append needing durability only issues
	// its own Sync if a concurrent one didn't already cover it.
	written int64
	synced  int64
	syncMu  sync.Mutex
}

// WriterOptions configures CreateOpts.
type WriterOptions struct {
	// NoFsync skips the per-append group-commit fsync. A kill can then
	// lose acknowledged entries (the OS had the bytes, the disk did
	// not); resume re-scans them, so this trades durability for
	// throughput, never correctness.
	NoFsync bool
}

// Create opens (creating or appending to) a journal file for writing
// with default options (fsync on append).
func Create(path string) (*Writer, error) {
	return CreateOpts(path, WriterOptions{})
}

// CreateOpts opens (creating or appending to) a journal file for
// writing. A torn final line left by a kill mid-append is repaired
// first — otherwise the next Append would concatenate onto the torn
// bytes and corrupt a line in the middle of the file.
func CreateOpts(path string, opts WriterOptions) (*Writer, error) {
	if err := repairTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweepjournal: %w", err)
	}
	return &Writer{f: f, w: bufio.NewWriter(f), noFsync: opts.NoFsync}, nil
}

// repairTail fixes a journal whose final line has no terminating
// newline: a tail that parses as an Entry (the kill landed between the
// payload and the newline) is completed with the missing newline; torn
// bytes are truncated back to the last complete line.
func repairTail(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("sweepjournal: %w", err)
	}
	if len(data) == 0 || data[len(data)-1] == '\n' {
		return nil
	}
	tail := data
	if i := lastNewline(data); i >= 0 {
		tail = data[i+1:]
	}
	var e Entry
	if json.Unmarshal(tail, &e) == nil && e.Package != "" {
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("sweepjournal: %w", err)
		}
		if _, err := f.Write([]byte("\n")); err != nil {
			// The close error is secondary here — the write already
			// failed — but it must not mask nor be masked silently.
			if cerr := f.Close(); cerr != nil {
				return fmt.Errorf("sweepjournal: repair %s: %w (and close: %v)", path, err, cerr)
			}
			return fmt.Errorf("sweepjournal: repair %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("sweepjournal: repair %s: close: %w", path, err)
		}
		return nil
	}
	if err := os.Truncate(path, int64(len(data)-len(tail))); err != nil {
		return fmt.Errorf("sweepjournal: repair %s: %w", path, err)
	}
	return nil
}

func lastNewline(data []byte) int {
	for i := len(data) - 1; i >= 0; i-- {
		if data[i] == '\n' {
			return i
		}
	}
	return -1
}

// Append writes one entry as a JSONL line, flushes it, and (unless
// NoFsync) group-commits it to disk, so an entry a worker saw
// acknowledged survives not just a process kill but a machine crash.
func (w *Writer) Append(e Entry) error {
	if w == nil {
		return nil
	}
	data, err := json.Marshal(&e)
	if err != nil {
		return fmt.Errorf("sweepjournal: marshal %s: %w", e.Package, err)
	}
	data = append(data, '\n')
	w.mu.Lock()
	if _, err := w.w.Write(data); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("sweepjournal: append %s: %w", e.Package, err)
	}
	if err := w.w.Flush(); err != nil {
		w.mu.Unlock()
		return fmt.Errorf("sweepjournal: flush: %w", err)
	}
	w.written++
	seq := w.written
	w.mu.Unlock()

	if w.noFsync {
		return nil
	}
	return w.syncTo(seq)
}

// syncTo is the group commit: whoever acquires the sync lock first
// fsyncs on behalf of every append flushed before it, so N workers
// finishing together cost ~1 fsync, not N.
func (w *Writer) syncTo(seq int64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.synced >= seq {
		return nil
	}
	w.mu.Lock()
	target := w.written
	w.mu.Unlock()
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("sweepjournal: sync: %w", err)
	}
	w.synced = target
	return nil
}

// Close flushes, syncs (unless NoFsync), and closes the underlying
// file. Every error on the way out is reported — an unreported close
// error on a writable file is a lost write.
func (w *Writer) Close() error {
	if w == nil {
		return nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	var first error
	if err := w.w.Flush(); err != nil {
		first = fmt.Errorf("sweepjournal: flush: %w", err)
	}
	if first == nil && !w.noFsync {
		if err := w.f.Sync(); err != nil {
			first = fmt.Errorf("sweepjournal: sync: %w", err)
		}
	}
	if err := w.f.Close(); err != nil && first == nil {
		first = fmt.Errorf("sweepjournal: close: %w", err)
	}
	return first
}

// Load replays a journal into a per-package map (last complete entry
// wins). A torn final line — no trailing newline, or bytes that do not
// parse as an Entry — is tolerated and reported via torn, exactly the
// state a SIGKILL mid-append leaves behind. A torn or unparsable line
// anywhere but the end is an error: that is corruption, not a crash
// artifact. A missing file loads as an empty journal.
func Load(path string) (entries map[string]Entry, torn bool, err error) {
	data, rerr := os.ReadFile(path)
	if rerr != nil {
		if os.IsNotExist(rerr) {
			return map[string]Entry{}, false, nil
		}
		return nil, false, fmt.Errorf("sweepjournal: %w", rerr)
	}
	entries = map[string]Entry{}
	for len(data) > 0 {
		nl := -1
		for i, b := range data {
			if b == '\n' {
				nl = i
				break
			}
		}
		line := data
		last := nl < 0
		if !last {
			line = data[:nl]
			data = data[nl+1:]
		} else {
			data = nil
		}
		if len(line) == 0 {
			continue
		}
		var e Entry
		if uerr := json.Unmarshal(line, &e); uerr != nil || e.Package == "" {
			if last {
				return entries, true, nil // torn final line: kill artifact
			}
			return nil, false, fmt.Errorf("sweepjournal: corrupt line in %s: %q", path, truncate(line, 80))
		}
		if last {
			// A complete JSON object with no trailing newline: the kill
			// landed between the payload and the newline. The entry is
			// intact; keep it but still report the tear.
			torn = true
		}
		entries[e.Key()] = e
	}
	return entries, torn, nil
}

func truncate(b []byte, n int) string {
	if len(b) <= n {
		return string(b)
	}
	return string(b[:n]) + "..."
}

// ContentHash fingerprints one source text.
func ContentHash(src string) string {
	sum := sha256.Sum256([]byte(src))
	return hex.EncodeToString(sum[:8])
}

// ContentHashFiles fingerprints a multi-file package: the hash covers
// every (path, content) pair in sorted path order, so renames, edits,
// additions and deletions all change it.
func ContentHashFiles(files map[string]string) string {
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	h := sha256.New()
	for _, p := range paths {
		fmt.Fprintf(h, "%d:%s=%d:", len(p), p, len(files[p]))
		h.Write([]byte(files[p]))
	}
	return hex.EncodeToString(h.Sum(nil)[:8])
}

// Fingerprint hashes an arbitrary JSON-serializable options value into
// a short stable string. Callers must pass a deterministic value
// (structs and slices, not maps with elided ordering).
func Fingerprint(v any) string {
	data, err := json.Marshal(v)
	if err != nil {
		// Options values are plain structs; a marshal failure is a
		// programming error worth failing loudly over.
		panic("sweepjournal: fingerprint: " + err.Error()) //lint:allow nakedpanic -- marshal of plain option structs cannot fail; programming error
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:8])
}
