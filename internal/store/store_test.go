package store

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/budget"
)

func openT(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put(KindFragment, "k1", []byte("body-one")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindDetect, "k1", []byte("other-family")); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindFragment, "empty-body", nil); err != nil {
		t.Fatal(err)
	}

	got, ok := s.Get(KindFragment, "k1")
	if !ok || string(got) != "body-one" {
		t.Fatalf("Get fragment k1 = %q, %v", got, ok)
	}
	got, ok = s.Get(KindDetect, "k1")
	if !ok || string(got) != "other-family" {
		t.Fatalf("kinds must not collide on key: %q, %v", got, ok)
	}
	if got, ok = s.Get(KindFragment, "empty-body"); !ok || len(got) != 0 {
		t.Fatalf("empty body round-trip: %q, %v", got, ok)
	}
	if _, ok = s.Get(KindFragment, "missing"); ok {
		t.Fatal("miss expected")
	}
	st := s.Stats()
	if st.Entries != 3 || st.Puts != 3 || st.Hits != 3 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestReopenRestoresIndex(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 20; i++ {
		if err := s.Put(KindFragment, fmt.Sprintf("key-%02d", i), []byte(fmt.Sprintf("body-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite: later records win.
	if err := s.Put(KindFragment, "key-07", []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if s2.Len() != 20 {
		t.Fatalf("Len after reopen = %d, want 20", s2.Len())
	}
	got, ok := s2.Get(KindFragment, "key-07")
	if !ok || string(got) != "updated" {
		t.Fatalf("last write must win after reopen: %q, %v", got, ok)
	}
}

func TestTornTailRepairedOnOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put(KindFragment, "whole", []byte("survives")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail: append half a record, the shape SIGKILL mid-append
	// leaves behind.
	path := filepath.Join(dir, dataFile)
	rec := encodeRecord(KindFragment, "torn", []byte("never completed"))
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(rec[:len(rec)/2]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	tornSize := fileSize(t, path)

	s2 := openT(t, dir, Options{})
	if _, ok := s2.Get(KindFragment, "whole"); !ok {
		t.Fatal("whole record must survive tail repair")
	}
	if _, ok := s2.Get(KindFragment, "torn"); ok {
		t.Fatal("torn record must not be indexed")
	}
	if st := s2.Stats(); st.TruncatedBytes == 0 {
		t.Fatalf("tail repair must be counted: %+v", st)
	}
	if got := fileSize(t, path); got >= tornSize {
		t.Fatalf("tail not physically truncated: %d >= %d", got, tornSize)
	}
	// The repaired log accepts appends on the clean boundary.
	if err := s2.Put(KindFragment, "after-repair", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3 := openT(t, dir, Options{})
	if _, ok := s3.Get(KindFragment, "after-repair"); !ok {
		t.Fatal("post-repair append lost")
	}
}

func TestBitFlipQuarantinesRecord(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put(KindFragment, "victim", bytes.Repeat([]byte("v"), 256)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(KindFragment, "bystander", []byte("intact")); err != nil {
		t.Fatal(err)
	}
	victimOff := s.index[recKey{KindFragment, "victim"}].off
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Flip one bit inside the victim's body.
	path := filepath.Join(dir, dataFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[victimOff+40] ^= 0x10
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := openT(t, dir, Options{})
	if _, ok := s2.Get(KindFragment, "victim"); ok {
		t.Fatal("bit-flipped record must be quarantined, not served")
	}
	if _, ok := s2.Get(KindFragment, "bystander"); !ok {
		t.Fatal("records after a quarantined one must still be served")
	}
	if st := s2.Stats(); st.Quarantined != 1 {
		t.Fatalf("quarantine must be counted once: %+v", st)
	}
}

func TestGetReverifiesCRCAfterOpen(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put(KindFragment, "rots-later", bytes.Repeat([]byte("r"), 128)); err != nil {
		t.Fatal(err)
	}
	// Corrupt the record on disk *after* the index was built, bypassing
	// the store's own handle: Get must still catch it.
	sl := s.index[recKey{KindFragment, "rots-later"}]
	raw, err := os.OpenFile(filepath.Join(dir, dataFile), os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.WriteAt([]byte{0xFF}, sl.off+20); err != nil {
		t.Fatal(err)
	}
	if err := raw.Close(); err != nil {
		t.Fatal(err)
	}

	if _, ok := s.Get(KindFragment, "rots-later"); ok {
		t.Fatal("Get must re-verify the CRC and miss on post-open rot")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("post-open rot must be quarantined: %+v", st)
	}
	// And never trusted again, even though the index once had it.
	if _, ok := s.Get(KindFragment, "rots-later"); ok {
		t.Fatal("quarantined record served on second Get")
	}
}

func TestGarbageHeaderQuarantinesWholeLog(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, dataFile), []byte("not a store at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	s := openT(t, dir, Options{})
	if s.Len() != 0 {
		t.Fatalf("unrecognizable log must yield an empty store, got %d entries", s.Len())
	}
	if st := s.Stats(); st.Quarantined == 0 {
		t.Fatalf("whole-log quarantine must be counted: %+v", st)
	}
	// The bad log is preserved aside for inspection, and the fresh one works.
	if _, err := os.Stat(filepath.Join(dir, corruptFile)); err != nil {
		t.Fatalf("corrupt log not preserved: %v", err)
	}
	if err := s.Put(KindFragment, "fresh", []byte("ok")); err != nil {
		t.Fatal(err)
	}
}

func TestCompactDropsDeadRecords(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if err := s.Put(KindFragment, "hot", []byte(fmt.Sprintf("version-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Put(KindDetect, "keep", []byte("live")); err != nil {
		t.Fatal(err)
	}
	before := fileSize(t, filepath.Join(dir, dataFile))

	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	after := fileSize(t, filepath.Join(dir, dataFile))
	if after >= before {
		t.Fatalf("compaction must shrink the log: %d >= %d", after, before)
	}
	got, ok := s.Get(KindFragment, "hot")
	if !ok || string(got) != "version-9" {
		t.Fatalf("latest version must survive compaction: %q, %v", got, ok)
	}
	if _, ok := s.Get(KindDetect, "keep"); !ok {
		t.Fatal("live record lost in compaction")
	}
	// The store stays writable after the swap, and a reopen sees
	// everything.
	if err := s.Put(KindFragment, "post-compact", []byte("new")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	for _, k := range []string{"hot", "post-compact"} {
		if _, ok := s2.Get(KindFragment, k); !ok {
			t.Fatalf("%s lost across compact+reopen", k)
		}
	}
}

func TestCrashMidCompactionLeavesOldLogIntact(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if err := s.Put(KindFragment, fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Simulate SIGKILL after the temp file is fully written but before
	// the rename: the hook aborts compaction at the worst moment.
	testHookCompact = func(string) error { return errors.New("sigkill") }
	defer func() { testHookCompact = nil }()
	if err := s.Compact(); err == nil {
		t.Fatal("hooked compaction must fail")
	}
	// The aborted temp file must not survive into the next open.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if s2.Len() != 5 {
		t.Fatalf("old log must be intact after crashed compaction: %d entries", s2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, tmpFile)); !os.IsNotExist(err) {
		t.Fatalf("stale compaction temp must be removed at open: %v", err)
	}
	// And compaction succeeds once the fault is gone.
	testHookCompact = nil
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 5 {
		t.Fatalf("entries lost by real compaction: %d", s2.Len())
	}
}

func TestWriterLockExcludesSecondWriter(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if _, err := Open(dir, Options{}); !errors.Is(err, ErrLocked) {
		t.Fatalf("second writer must be excluded, got %v", err)
	}
	// Read-only replicas are always admitted.
	ro := openT(t, dir, Options{ReadOnly: true})
	if err := ro.Put(KindFragment, "x", nil); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only Put must fail with ErrReadOnly, got %v", err)
	}
	// Closing the writer releases the lock.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after release: %v", err)
	}
	s2.Close()
}

func TestReadOnlySnapshotSurvivesCompaction(t *testing.T) {
	dir := t.TempDir()
	w := openT(t, dir, Options{})
	if err := w.Put(KindFragment, "shared", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	ro := openT(t, dir, Options{ReadOnly: true})
	if got, ok := ro.Get(KindFragment, "shared"); !ok || string(got) != "v1" {
		t.Fatalf("replica read: %q, %v", got, ok)
	}
	// Writer rewrites the log out from under the replica; the replica's
	// fd pins the old inode, so its snapshot stays coherent.
	if err := w.Put(KindFragment, "shared", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := w.Compact(); err != nil {
		t.Fatal(err)
	}
	if got, ok := ro.Get(KindFragment, "shared"); !ok || string(got) != "v1" {
		t.Fatalf("replica snapshot must stay coherent across writer compaction: %q, %v", got, ok)
	}
	// A fresh replica open sees the new state.
	ro2 := openT(t, dir, Options{ReadOnly: true})
	if got, ok := ro2.Get(KindFragment, "shared"); !ok || string(got) != "v2" {
		t.Fatalf("fresh replica: %q, %v", got, ok)
	}
}

func TestReadOnlyToleratesTornTailWithoutRepair(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{})
	if err := s.Put(KindFragment, "whole", []byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, dataFile)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{9, 9, 9}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	size := fileSize(t, path)

	ro := openT(t, dir, Options{ReadOnly: true})
	if _, ok := ro.Get(KindFragment, "whole"); !ok {
		t.Fatal("whole record must be readable past a torn tail")
	}
	if got := fileSize(t, path); got != size {
		t.Fatalf("read-only open must not modify the file: %d != %d", got, size)
	}
}

func TestInjectedDiskFaultsRollBackAndCount(t *testing.T) {
	for _, mode := range []string{"short-write", "enospc"} {
		t.Run(mode, func(t *testing.T) {
			// Find a seed whose deterministic draw yields this mode at
			// write ordinal 1 for our label.
			label := "store-test-" + mode
			var seed int64
			found := false
			for seed = 0; seed < 10000 && !found; seed++ {
				budget.SetFaultPlan(&budget.FaultPlan{Seed: seed, DiskProb: 1, Spread: 1})
				f := budget.DiskFaultAt(label, 1)
				found = (mode == "short-write" && f == budget.DiskShortWrite) ||
					(mode == "enospc" && f == budget.DiskENOSPC)
				budget.SetFaultPlan(nil)
			}
			if !found {
				t.Fatal("no seed found for mode")
			}
			seed--

			dir := t.TempDir()
			s := openT(t, dir, Options{FaultLabel: label})
			if err := s.Put(KindFragment, "before", []byte("durable")); err != nil {
				t.Fatal(err)
			}
			sizeBefore := fileSize(t, filepath.Join(dir, dataFile))

			budget.SetFaultPlan(&budget.FaultPlan{Seed: seed, DiskProb: 1, Spread: 1})
			// This store session already used ordinal 1; reopen so the
			// faulting write is the first of a session.
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
			s2 := openT(t, dir, Options{FaultLabel: label})
			err := s2.Put(KindFragment, "faulted", []byte("must not land"))
			budget.SetFaultPlan(nil)
			if err == nil {
				t.Fatal("injected fault must surface as a Put error")
			}
			if _, ok := s2.Get(KindFragment, "faulted"); ok {
				t.Fatal("faulted record must not be indexed")
			}
			if _, ok := s2.Get(KindFragment, "before"); !ok {
				t.Fatal("earlier record must survive the fault")
			}
			if st := s2.Stats(); st.WriteErrors != 1 {
				t.Fatalf("write error must be counted: %+v", st)
			}
			// Rollback restored the boundary: the next append works and
			// the file holds no torn garbage.
			if got := fileSize(t, filepath.Join(dir, dataFile)); got != sizeBefore {
				t.Fatalf("rollback must restore the log size: %d != %d", got, sizeBefore)
			}
			if err := s2.Put(KindFragment, "after", []byte("clean")); err != nil {
				t.Fatal(err)
			}
			if err := s2.Close(); err != nil {
				t.Fatal(err)
			}
			s3 := openT(t, dir, Options{FaultLabel: label})
			for _, k := range []string{"before", "after"} {
				if _, ok := s3.Get(KindFragment, k); !ok {
					t.Fatalf("%s lost after fault + reopen", k)
				}
			}
			if _, ok := s3.Get(KindFragment, "faulted"); ok {
				t.Fatal("faulted record resurrected by reopen")
			}
		})
	}
}

func TestConcurrentPutGet(t *testing.T) {
	dir := t.TempDir()
	s := openT(t, dir, Options{NoFsync: true})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("g%d-i%d", g, i)
				if err := s.Put(KindFragment, key, []byte(key)); err != nil {
					t.Error(err)
					return
				}
				if got, ok := s.Get(KindFragment, key); !ok || string(got) != key {
					t.Errorf("read-own-write %s: %q, %v", key, got, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 400 {
		t.Fatalf("Len = %d, want 400", s.Len())
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2 := openT(t, dir, Options{})
	if s2.Len() != 400 {
		t.Fatalf("reopen Len = %d, want 400", s2.Len())
	}
}

func TestDecodeRecordsNeverPanics(t *testing.T) {
	// Exhaustive small-input sanity; FuzzStoreDecode in internal/scanner
	// drives the full decode stack.
	inputs := [][]byte{
		nil,
		{},
		[]byte("MDGS"),
		header,
		append(append([]byte{}, header...), 0xFF, 0xFF, 0xFF, 0xFF),
		append(append([]byte{}, header...), 0, 0, 0, 0, 0, 0, 0, 0),
	}
	rec := encodeRecord(KindFragment, "k", []byte("v"))
	full := append(append([]byte{}, header...), rec...)
	inputs = append(inputs, full, full[:len(full)-1], full[:len(header)+3])
	// A record claiming a huge length must not allocate or overrun.
	huge := append([]byte{}, header...)
	huge = binary.LittleEndian.AppendUint32(huge, uint32(maxRecord))
	inputs = append(inputs, huge)

	for i, in := range inputs {
		recs, diag := DecodeRecords(in)
		if diag.Tail > int64(len(in)) {
			t.Fatalf("input %d: tail %d beyond %d bytes", i, diag.Tail, len(in))
		}
		for _, r := range recs {
			_ = r.Body
		}
	}
}

func fileSize(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}
