// Package store implements the on-disk, content-addressed analysis
// store: a crash-safe record log that persists MDG fragments, front-end
// dependency facts, detection results and compacted sweep-journal
// entries across process restarts, so a graphjsd replica warm-starts
// near warm-sweep speed instead of re-deriving every multiversion
// dependency graph.
//
// Robustness is the design center, not a footnote. The failure model is
// that anything on disk can be wrong — a torn append after SIGKILL, a
// bit flip, an ENOSPC mid-record, a crash mid-compaction — and none of
// it may ever change scan findings or crash the daemon. Corruption can
// change speed, never results:
//
//   - Every record carries a format version and a CRC-32C over its
//     payload; the CRC is verified both when the log is replayed at
//     Open and again on every Get, so post-open bit rot is caught too.
//   - A record that fails its CRC (or that a caller reports as
//     undecodable via Quarantine) is quarantined: dropped from the
//     index, counted, and never trusted again. The caller observes a
//     cache miss and degrades to a cold computation.
//   - A torn tail — the signature of a kill mid-append — is detected at
//     Open and physically truncated back to the last whole record
//     before any new append, exactly like the sweep journal's tail
//     repair.
//   - Appends go through a group-commit fsync (concurrently completing
//     writers share one Sync), so an acknowledged Put is durable;
//     Options.NoFsync is the benchmarking escape hatch.
//   - Compaction commits atomically: live records are rewritten to a
//     temp file, fsynced, renamed over the log, and the directory is
//     fsynced. A crash mid-compaction leaves the original log intact
//     and a stale temp file that the next Open removes.
//   - A write that fails partway (real ENOSPC, or an injected
//     budget.DiskFault) is rolled back by truncating to the pre-write
//     offset; if even the rollback fails the store goes read-only for
//     the rest of the process instead of corrupting the log.
//
// One writer owns a store directory at a time (an flock on store.lock,
// held for the Open→Close session). Read-only opens take no lock and
// never modify the file: the log is append-only and compaction replaces
// it atomically, so any prefix a reader sees is a valid snapshot.
//
// The store is content-addressed and schema-agnostic: keys are the
// caller's content hashes (component keys, file hashes), bodies are
// opaque bytes. The scanner-level encodings live next to their types
// (internal/mdg codec, internal/scanner persist) so this package stays
// a pure durability layer.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"repro/internal/budget"
)

// Kind tags a record's schema so one log can hold every record family.
type Kind byte

// Record kinds. The store does not interpret bodies; these exist so
// unrelated families cannot collide on a key.
const (
	// KindFragment: one MDG require-component fragment plus its
	// function summaries (internal/scanner persist encoding).
	KindFragment Kind = 1
	// KindDetect: one cached detection result for a fragment × engine ×
	// fallback × sink-config combination.
	KindDetect Kind = 2
	// KindFrontEnd: per-file front-end dependency facts keyed by the
	// file's content hash.
	KindFrontEnd Kind = 3
	// KindJournal: one compacted sweep-journal entry (JSON body).
	KindJournal Kind = 4
)

const (
	// dataFile is the record log inside a store directory.
	dataFile = "store.dat"
	// tmpFile is the compaction scratch file (removed at Open if a
	// crash left it behind).
	tmpFile = "store.dat.tmp"
	// lockFile serializes writers on the directory.
	lockFile = "store.lock"
	// corruptFile is where an unrecognizable log is moved aside.
	corruptFile = "store.dat.corrupt"

	// recVersion is the current record format version. Decoders skip
	// (quarantine) records from future versions instead of guessing.
	recVersion = 1

	// maxRecord bounds one record's payload; anything larger in a
	// length prefix is treated as frame corruption, not an allocation
	// request.
	maxRecord = 1 << 27 // 128 MiB
)

// header is the log preamble: magic plus the container format version.
var header = []byte{'M', 'D', 'G', 'S', 1}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrReadOnly is returned by mutating calls on a read-only store.
var ErrReadOnly = errors.New("store: read-only")

// ErrLocked is returned when another process holds the writer lock.
var ErrLocked = errors.New("store: directory locked by another process")

// errInjected wraps a deterministic budget.DiskFault.
var errInjected = errors.New("store: injected disk fault")

// Options configures Open.
type Options struct {
	// ReadOnly opens the store without the writer lock and never
	// mutates the file: no tail repair, no appends, no compaction.
	// Replicas sharing a warm directory open it read-only while one
	// writer owns the lock.
	ReadOnly bool
	// NoFsync skips the group-commit fsync on appends (benchmarks and
	// tests; production keeps the default durable path).
	NoFsync bool
	// FaultLabel is the label store writes present to the deterministic
	// disk-fault plan (budget.DiskFaultAt). Empty means "store".
	FaultLabel string
}

// Stats is a snapshot of a store's lifetime counters.
type Stats struct {
	// Entries is the number of live (indexed, trusted) records;
	// Bytes the log's current size on disk.
	Entries int
	Bytes   int64
	// Puts/Gets/Hits count traffic since Open.
	Puts, Gets, Hits int64
	// Quarantined counts records dropped for failing their CRC or
	// being reported undecodable; TruncatedBytes counts torn-tail and
	// rollback bytes discarded. Both are corruption made visible:
	// every unit here was a potential wrong finding turned into a
	// cache miss.
	Quarantined    int64
	TruncatedBytes int64
	// WriteErrors counts failed appends (ENOSPC, injected faults);
	// Compactions counts successful Compact commits.
	WriteErrors int64
	Compactions int64
}

type recKey struct {
	kind Kind
	key  string
}

// slot locates a record's payload inside the log.
type slot struct {
	off int64 // offset of the 4-byte length prefix
	n   int   // payload length
}

// Store is an open store directory. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu     sync.Mutex
	f      *os.File
	lockF  *os.File
	size   int64 // committed log size (next append offset)
	index  map[recKey]slot
	broken bool // rollback failed: writes disabled for this session
	closed bool

	writes  int // disk-fault checkpoint ordinal
	written int64
	synced  int64
	syncMu  sync.Mutex

	stats Stats
}

// testHookCompact, when non-nil, runs after compaction has written
// (but not committed) the temp file; returning an error simulates a
// crash mid-compaction. Test-only.
var testHookCompact func(tmpPath string) error

// Open opens (creating if needed) the store in dir. In read-write mode
// it takes the writer flock, removes a stale compaction temp file, and
// repairs a torn tail; read-only mode does none of that and tolerates
// the tail in memory. Corrupt records are quarantined (counted, never
// trusted) either way.
func Open(dir string, opts Options) (*Store, error) {
	if opts.FaultLabel == "" {
		opts.FaultLabel = "store"
	}
	s := &Store{dir: dir, opts: opts, index: make(map[recKey]slot)}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		if err := s.lock(); err != nil {
			return nil, err
		}
		// A crash mid-compaction leaves a temp file; the rename never
		// happened, so the original log is the truth and the temp is
		// garbage.
		if err := os.Remove(filepath.Join(dir, tmpFile)); err != nil && !os.IsNotExist(err) {
			s.unlock()
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	if err := s.load(); err != nil {
		s.unlock()
		return nil, err
	}
	return s, nil
}

// load reads the log, builds the index, quarantines corrupt records,
// and (read-write only) repairs the tail and opens the append handle.
func (s *Store) load() error {
	path := filepath.Join(s.dir, dataFile)
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		if s.opts.ReadOnly {
			s.size = int64(len(header))
			return nil // empty store: every Get misses
		}
		data = nil
	} else if err != nil {
		return fmt.Errorf("store: %w", err)
	}

	if len(data) > 0 && !validHeader(data) {
		// The preamble itself is unrecognizable: nothing in the file
		// can be framed. Quarantine the whole log (move it aside so an
		// operator can inspect it) and start fresh.
		s.stats.Quarantined++
		s.stats.TruncatedBytes += int64(len(data))
		if !s.opts.ReadOnly {
			if err := os.Rename(path, filepath.Join(s.dir, corruptFile)); err != nil {
				return fmt.Errorf("store: quarantine log: %w", err)
			}
		}
		data = nil
	}

	recs, diag := DecodeRecords(data)
	for _, r := range recs {
		s.index[recKey{r.Kind, r.Key}] = slot{off: r.Offset, n: r.PayloadLen}
	}
	s.stats.Quarantined += int64(diag.Quarantined)
	s.stats.TruncatedBytes += int64(len(data)) - diag.Tail

	if s.opts.ReadOnly {
		s.size = diag.Tail
		if len(data) > 0 {
			f, err := os.Open(path)
			if err != nil {
				return fmt.Errorf("store: %w", err)
			}
			s.f = f
		}
		return nil
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	repair := func() error {
		if len(data) == 0 {
			if _, err := f.WriteAt(header, 0); err != nil {
				return fmt.Errorf("store: write header: %w", err)
			}
			if err := f.Truncate(int64(len(header))); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
			diag.Tail = int64(len(header))
			return nil
		}
		if diag.Tail < int64(len(data)) {
			// Torn tail (or unreachable bytes after frame corruption):
			// truncate back to the last whole record so the next append
			// starts on a clean boundary.
			if err := f.Truncate(diag.Tail); err != nil {
				return fmt.Errorf("store: repair tail: %w", err)
			}
			if err := f.Sync(); err != nil {
				return fmt.Errorf("store: %w", err)
			}
		}
		return nil
	}
	if err := repair(); err != nil {
		//lint:allow syncclose -- open is failing with the repair error; nothing was acked
		f.Close()
		return err
	}
	s.f = f
	s.size = diag.Tail
	return nil
}

func validHeader(data []byte) bool {
	return len(data) >= len(header) && string(data[:len(header)]) == string(header)
}

// Record is one framed log record as seen by DecodeRecords.
type Record struct {
	Kind Kind
	Key  string
	Body []byte
	// Offset/PayloadLen frame the record inside the log (Offset points
	// at the length prefix).
	Offset     int64
	PayloadLen int
}

// DecodeDiag reports what DecodeRecords had to discard.
type DecodeDiag struct {
	// Quarantined counts records skipped for CRC or payload-shape
	// failures.
	Quarantined int
	// Tail is the offset of the first byte that could not be framed as
	// a whole record — the truncation point for tail repair. Equal to
	// len(data) when the log ends cleanly.
	Tail int64
}

// DecodeRecords frames every whole record in data (which must start
// with the log header when non-empty; callers strip nothing). It never
// panics on corrupt input: a record whose CRC fails is skipped and
// counted; an implausible length prefix or a short tail ends framing
// at that offset. Later records win on key collisions, which is what
// makes the log an append-only map.
func DecodeRecords(data []byte) ([]Record, DecodeDiag) {
	var out []Record
	diag := DecodeDiag{Tail: int64(len(data))}
	if len(data) == 0 {
		diag.Tail = 0
		return nil, diag
	}
	if !validHeader(data) {
		diag.Tail = 0
		return nil, diag
	}
	off := int64(len(header))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return out, diag
		}
		if len(rest) < 8 { // not even length + CRC
			diag.Tail = off
			return out, diag
		}
		n := int(binary.LittleEndian.Uint32(rest))
		if n <= 0 || n > maxRecord || int64(n)+8 > int64(len(rest)) {
			// Implausible or overrunning length: frame corruption (a
			// flipped length bit or a torn append). Nothing past here
			// can be trusted to start on a boundary.
			diag.Tail = off
			return out, diag
		}
		payload := rest[4 : 4+n]
		crc := binary.LittleEndian.Uint32(rest[4+n:])
		recEnd := off + int64(n) + 8
		if crc32.Checksum(payload, castagnoli) != crc {
			diag.Quarantined++
			off = recEnd
			continue
		}
		kind, key, body, ok := splitPayload(payload)
		if !ok {
			diag.Quarantined++
			off = recEnd
			continue
		}
		out = append(out, Record{Kind: kind, Key: key, Body: body, Offset: off, PayloadLen: n})
		off = recEnd
	}
}

// splitPayload parses a CRC-verified payload: version, kind, key
// length, key, body. Records from a future format version are not
// trusted (the caller counts them quarantined).
func splitPayload(p []byte) (Kind, string, []byte, bool) {
	if len(p) < 2 || p[0] != recVersion {
		return 0, "", nil, false
	}
	kind := Kind(p[1])
	klen, m := binary.Uvarint(p[2:])
	if m <= 0 || klen > uint64(len(p)-2-m) {
		return 0, "", nil, false
	}
	keyStart := 2 + m
	key := string(p[keyStart : keyStart+int(klen)])
	return kind, key, p[keyStart+int(klen):], true
}

// encodeRecord frames one record: length prefix, payload, CRC.
func encodeRecord(kind Kind, key string, body []byte) []byte {
	payload := make([]byte, 0, 2+binary.MaxVarintLen64+len(key)+len(body))
	payload = append(payload, recVersion, byte(kind))
	payload = binary.AppendUvarint(payload, uint64(len(key)))
	payload = append(payload, key...)
	payload = append(payload, body...)

	rec := make([]byte, 0, len(payload)+8)
	rec = binary.LittleEndian.AppendUint32(rec, uint32(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.Checksum(payload, castagnoli))
	return rec
}

// Get returns the body of the record (kind, key), or false on a miss.
// The payload CRC is re-verified on every read, so a bit flip that
// lands after Open is still caught; a failing record is quarantined
// and reported as a miss — the caller degrades to cold.
func (s *Store) Get(kind Kind, key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Gets++
	sl, ok := s.index[recKey{kind, key}]
	if !ok || s.f == nil || s.closed {
		return nil, false
	}
	buf := make([]byte, sl.n+4)
	if _, err := s.f.ReadAt(buf, sl.off+4); err != nil {
		s.quarantineLocked(kind, key)
		return nil, false
	}
	payload := buf[:sl.n]
	crc := binary.LittleEndian.Uint32(buf[sl.n:])
	if crc32.Checksum(payload, castagnoli) != crc {
		s.quarantineLocked(kind, key)
		return nil, false
	}
	k, ky, body, ok := splitPayload(payload)
	if !ok || k != kind || ky != key {
		s.quarantineLocked(kind, key)
		return nil, false
	}
	s.stats.Hits++
	return append([]byte(nil), body...), true
}

// Quarantine drops (kind, key) from the index and counts it. Callers
// use it when a CRC-clean body fails their own decoder — the record is
// structurally corrupt at a layer the store cannot see.
func (s *Store) Quarantine(kind Kind, key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.quarantineLocked(kind, key)
}

func (s *Store) quarantineLocked(kind Kind, key string) {
	if _, ok := s.index[recKey{kind, key}]; ok {
		delete(s.index, recKey{kind, key})
		s.stats.Quarantined++
	}
}

// Put appends one record and group-commits it. A failed write is
// rolled back (the log truncated to its pre-write size) and reported;
// the entry is simply not cached, which costs speed, never findings.
func (s *Store) Put(kind Kind, key string, body []byte) error {
	if len(key) == 0 {
		return errors.New("store: empty key")
	}
	rec := encodeRecord(kind, key, body)
	if len(rec) > maxRecord {
		return fmt.Errorf("store: record %d bytes exceeds the %d cap", len(rec), maxRecord)
	}

	s.mu.Lock()
	if s.opts.ReadOnly {
		s.mu.Unlock()
		return ErrReadOnly
	}
	if s.closed || s.broken || s.f == nil {
		s.stats.WriteErrors++
		s.mu.Unlock()
		return errors.New("store: not writable")
	}
	s.stats.Puts++
	off := s.size
	if err := s.writeRecord(rec, off); err != nil {
		s.stats.WriteErrors++
		s.mu.Unlock()
		return err
	}
	s.size = off + int64(len(rec))
	s.index[recKey{kind, key}] = slot{off: off, n: len(rec) - 8}
	s.written++
	seq := s.written
	s.mu.Unlock()

	if s.opts.NoFsync {
		return nil
	}
	return s.syncTo(seq)
}

// writeRecord appends rec at off, injecting deterministic disk faults
// when a fault plan arms this store's label, and rolls a partial write
// back by truncating to off. If the rollback itself fails the store is
// marked broken: reads keep serving, writes stop.
func (s *Store) writeRecord(rec []byte, off int64) error {
	s.writes++
	var n int
	var werr error
	switch budget.DiskFaultAt(s.opts.FaultLabel, s.writes) {
	case budget.DiskShortWrite:
		n, _ = s.f.WriteAt(rec[:len(rec)/2], off)
		werr = fmt.Errorf("%w: short write (%d of %d bytes)", errInjected, len(rec)/2, len(rec))
	case budget.DiskENOSPC:
		werr = fmt.Errorf("%w: %w", errInjected, syscall.ENOSPC)
	default:
		n, werr = s.f.WriteAt(rec, off)
		if werr == nil && n < len(rec) {
			werr = fmt.Errorf("store: short write (%d of %d bytes)", n, len(rec))
		}
	}
	if werr == nil {
		return nil
	}
	if n > 0 {
		s.stats.TruncatedBytes += int64(n)
	}
	if terr := s.f.Truncate(off); terr != nil {
		// Cannot restore the boundary; appending again would corrupt
		// the frame stream. Fail writes for the rest of the session —
		// the next Open repairs the tail.
		s.broken = true
		return fmt.Errorf("store: append failed (%v) and rollback failed: %w", werr, terr)
	}
	return fmt.Errorf("store: append: %w", werr)
}

// syncTo is the group commit: the caller needs everything up to its
// own append durable, and whoever acquires the sync lock first covers
// every append written before it.
func (s *Store) syncTo(seq int64) error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.synced >= seq {
		return nil
	}
	s.mu.Lock()
	target := s.written
	f := s.f
	s.mu.Unlock()
	if f == nil {
		return errors.New("store: closed")
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("store: sync: %w", err)
	}
	s.synced = target
	return nil
}

// Sync forces everything appended so far to disk.
func (s *Store) Sync() error {
	s.mu.Lock()
	seq := s.written
	ro := s.opts.ReadOnly || s.f == nil
	s.mu.Unlock()
	if ro {
		return nil
	}
	return s.syncTo(seq)
}

// Compact rewrites the live records into a fresh log and commits it
// atomically (temp, fsync, rename, directory fsync): quarantined and
// superseded records are dropped, and a crash at any point leaves
// either the old log or the new one, never a mix. Output order is
// deterministic (sorted by kind then key).
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.opts.ReadOnly {
		return ErrReadOnly
	}
	if s.closed || s.f == nil {
		return errors.New("store: closed")
	}

	keys := make([]recKey, 0, len(s.index))
	for k := range s.index {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].kind != keys[j].kind {
			return keys[i].kind < keys[j].kind
		}
		return keys[i].key < keys[j].key
	})

	tmpPath := filepath.Join(s.dir, tmpFile)
	tmp, err := os.OpenFile(tmpPath, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: compact: %w", err)
	}
	commit := func() error {
		if _, err := tmp.Write(header); err != nil {
			return err
		}
		newIndex := make(map[recKey]slot, len(keys))
		off := int64(len(header))
		for _, k := range keys {
			sl := s.index[k]
			buf := make([]byte, sl.n+4)
			if _, err := s.f.ReadAt(buf, sl.off+4); err != nil {
				return err
			}
			payload := buf[:sl.n]
			if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(buf[sl.n:]) {
				// Rotted since indexing: quarantine instead of copying
				// corruption forward.
				delete(s.index, k)
				s.stats.Quarantined++
				continue
			}
			var lenBuf [4]byte
			binary.LittleEndian.PutUint32(lenBuf[:], uint32(sl.n))
			if _, err := tmp.Write(lenBuf[:]); err != nil {
				return err
			}
			if _, err := tmp.Write(buf); err != nil {
				return err
			}
			newIndex[k] = slot{off: off, n: sl.n}
			off += int64(sl.n) + 8
		}
		if testHookCompact != nil {
			if err := testHookCompact(tmpPath); err != nil {
				return err
			}
		}
		if err := tmp.Sync(); err != nil {
			return err
		}
		if err := tmp.Close(); err != nil {
			return err
		}
		tmp = nil
		if err := os.Rename(tmpPath, filepath.Join(s.dir, dataFile)); err != nil {
			return err
		}
		if err := syncDir(s.dir); err != nil {
			return err
		}
		f, err := os.OpenFile(filepath.Join(s.dir, dataFile), os.O_RDWR, 0o644)
		if err != nil {
			return err
		}
		old := s.f
		s.f = f
		old.Close() //lint:allow syncclose -- read handle to the replaced (renamed-away) log; nothing buffered
		s.index = newIndex
		s.size = off
		s.broken = false
		s.stats.Compactions++
		return nil
	}
	if err := commit(); err != nil {
		if tmp != nil {
			tmp.Close() //lint:allow syncclose -- abandoned temp file, removed on the next line
			os.Remove(tmpPath)
		}
		return fmt.Errorf("store: compact: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename inside it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

// Keys returns the live keys of one record kind in sorted order.
func (s *Store) Keys(kind Kind) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for k := range s.index {
		if k.kind == kind {
			out = append(out, k.key)
		}
	}
	sort.Strings(out)
	return out
}

// Len returns the number of live records.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.index)
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// ReadOnly reports whether the store was opened read-only.
func (s *Store) ReadOnly() bool { return s.opts.ReadOnly }

// Stats returns a snapshot of the lifetime counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Entries = len(s.index)
	st.Bytes = s.size
	return st
}

// Close syncs (read-write mode) and releases the file and the writer
// lock. The store is unusable afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	f := s.f
	s.f = nil
	s.mu.Unlock()

	var first error
	if f != nil {
		if !s.opts.ReadOnly && !s.opts.NoFsync {
			if err := f.Sync(); err != nil {
				first = fmt.Errorf("store: close sync: %w", err)
			}
		}
		if err := f.Close(); err != nil && first == nil {
			first = fmt.Errorf("store: close: %w", err)
		}
	}
	if err := s.unlock(); err != nil && first == nil {
		first = err
	}
	return first
}
