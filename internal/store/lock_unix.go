//go:build unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
	"syscall"
)

// lock takes the exclusive, non-blocking writer flock on the store
// directory. flock is advisory but sufficient here: every writer in
// this codebase goes through Open, and the lock lives exactly as long
// as the open file descriptor, so a SIGKILL'd writer releases it
// automatically — no stale-lockfile recovery dance.
func (s *Store) lock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockFile), os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close() //lint:allow syncclose -- lock fd, nothing written
		if err == syscall.EWOULDBLOCK {
			return fmt.Errorf("%w (%s)", ErrLocked, s.dir)
		}
		return fmt.Errorf("store: flock: %w", err)
	}
	s.lockF = f
	return nil
}

// unlock releases the writer flock (closing the fd drops it).
func (s *Store) unlock() error {
	if s.lockF == nil {
		return nil
	}
	f := s.lockF
	s.lockF = nil
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: unlock: %w", err)
	}
	return nil
}
