//go:build !unix

package store

import (
	"fmt"
	"os"
	"path/filepath"
)

// lock on platforms without flock degrades to best-effort exclusive
// lockfile creation. A stale lockfile from a killed writer must be
// removed by the operator (documented in docs/OPERATIONS.md); the unix
// build, which every deployment target uses, has no such failure mode.
func (s *Store) lock() error {
	f, err := os.OpenFile(filepath.Join(s.dir, lockFile), os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		if os.IsExist(err) {
			return fmt.Errorf("%w (%s)", ErrLocked, s.dir)
		}
		return fmt.Errorf("store: %w", err)
	}
	s.lockF = f
	return nil
}

func (s *Store) unlock() error {
	if s.lockF == nil {
		return nil
	}
	f := s.lockF
	s.lockF = nil
	path := f.Name()
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: unlock: %w", err)
	}
	if err := os.Remove(path); err != nil {
		return fmt.Errorf("store: unlock: %w", err)
	}
	return nil
}
