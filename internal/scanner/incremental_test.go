package scanner

import (
	"testing"

	"repro/internal/queries"
)

// sameFindings asserts two reports carry the same finding multiset and
// the same failure classification.
func sameFindings(t *testing.T, cold, incr *Report) {
	t.Helper()
	if err := DiffFindings(cold.Findings, incr.Findings); err != nil {
		t.Fatalf("incremental findings diverge from cold:\n%v", err)
	}
	if cold.Failure != incr.Failure {
		t.Fatalf("failure class: cold=%v incremental=%v", cold.Failure, incr.Failure)
	}
	if cold.Incomplete != incr.Incomplete {
		t.Fatalf("incomplete: cold=%v incremental=%v", cold.Incomplete, incr.Incomplete)
	}
}

func TestIncrementalMatchesColdSingleFile(t *testing.T) {
	cold := ScanSource(gitResetSrc, "git_reset.js", Options{})
	st := NewIncrementalState()
	incr := ScanSource(gitResetSrc, "git_reset.js", Options{Incremental: st})
	sameFindings(t, cold, incr)
	if incr.IncrStats == nil {
		t.Fatal("incremental report missing stats")
	}
	if incr.IncrStats.FragmentMisses != 1 || incr.IncrStats.FragmentHits != 0 {
		t.Fatalf("first scan stats: %+v", incr.IncrStats)
	}
}

func TestIncrementalWarmReuse(t *testing.T) {
	files := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
		{Rel: "index.js", Src: gitResetSrc},
	}
	st := NewIncrementalState()
	opts := Options{Incremental: st}

	rep1 := ScanFiles(files, "pkg", opts)
	if rep1.Err != nil {
		t.Fatal(rep1.Err)
	}
	rep2 := ScanFiles(files, "pkg", opts)
	sameFindings(t, rep1, rep2)
	s := rep2.IncrStats
	if s.FragmentHits == 0 {
		t.Fatalf("warm scan rebuilt everything: %+v", s)
	}
	if s.FragmentMisses != rep1.IncrStats.FragmentMisses {
		t.Fatalf("warm scan caused fragment rebuilds: %+v", s)
	}
	if s.DetectHits == 0 {
		t.Fatalf("warm scan re-ran detection: %+v", s)
	}
	if s.FrontEndHits == 0 {
		t.Fatalf("warm scan re-parsed: %+v", s)
	}
}

// Editing one file of a package whose files are independent must
// rebuild exactly that file's fragment and reuse the other's.
func TestIncrementalEditRebuildsOneComponent(t *testing.T) {
	files := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
		{Rel: "index.js", Src: gitResetSrc},
	}
	st := NewIncrementalState()
	opts := Options{Incremental: st}
	ScanFiles(files, "pkg", opts)
	before := st.Stats()

	edited := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x + 1; }\nmodule.exports = fa;\n"},
		{Rel: "index.js", Src: gitResetSrc},
	}
	rep := ScanFiles(edited, "pkg", opts)
	s := rep.IncrStats
	if got := s.FragmentMisses - before.FragmentMisses; got != 1 {
		t.Fatalf("edit rebuilt %d fragments, want 1 (stats %+v)", got, s)
	}
	if got := s.FragmentHits - before.FragmentHits; got != 1 {
		t.Fatalf("edit reused %d fragments, want 1 (stats %+v)", got, s)
	}

	cold := ScanFiles(edited, "pkg", Options{})
	sameFindings(t, cold, rep)
}

// Cross-file flows must survive incrementality: source and sink in
// different files are one require-component, so editing the source
// file rebuilds the pair and the finding persists.
func TestIncrementalCrossFileComponent(t *testing.T) {
	runner := SourceFile{Rel: "runner.js", Src: `
const { exec } = require('child_process');
function shellRun(c) { exec(c); }
module.exports = shellRun;
`}
	index := SourceFile{Rel: "index.js", Src: `
var run = require('./runner');
function entry(input) { run('git clone ' + input); }
module.exports = entry;
`}
	files := []SourceFile{index, runner}
	st := NewIncrementalState()
	opts := Options{Incremental: st}

	rep1 := ScanFiles(files, "pkg", opts)
	cold1 := ScanFiles(files, "pkg", Options{})
	sameFindings(t, cold1, rep1)
	found := false
	for _, f := range rep1.Findings {
		if f.CWE == queries.CWECommandInjection && f.SinkFile == "runner.js" {
			found = true
		}
	}
	if !found {
		t.Fatalf("cross-file command injection missed incrementally: %v", rep1.Findings)
	}

	// The two files are one component; a warm re-scan reuses it whole.
	rep2 := ScanFiles(files, "pkg", opts)
	if rep2.IncrStats.FragmentHits != rep1.IncrStats.FragmentHits+1 {
		t.Fatalf("cross-file component not reused: %+v", rep2.IncrStats)
	}
	sameFindings(t, rep1, rep2)
}

// Regression for the stale-cache hazard: when a file is deleted from
// the package, its cache entries must be evicted and its findings must
// disappear from the next incremental scan.
func TestIncrementalDeletedFileFindingsDisappear(t *testing.T) {
	files := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
		{Rel: "vuln.js", Src: gitResetSrc},
	}
	st := NewIncrementalState()
	opts := Options{Incremental: st}

	rep1 := ScanFiles(files, "pkg", opts)
	if len(rep1.Findings) == 0 {
		t.Fatal("seed scan found nothing; test is vacuous")
	}
	if st.FrontEnd().Len() != 2 {
		t.Fatalf("front-end entries = %d, want 2", st.FrontEnd().Len())
	}

	shrunk := files[:1]
	rep2 := ScanFiles(shrunk, "pkg", opts)
	if len(rep2.Findings) != 0 {
		t.Fatalf("deleted file's findings survived: %v", rep2.Findings)
	}
	if st.FrontEnd().Len() != 1 {
		t.Fatalf("stale front-end entry not evicted: len=%d", st.FrontEnd().Len())
	}
	if rep2.IncrStats.EvictedFiles == 0 {
		t.Fatalf("eviction not recorded: %+v", rep2.IncrStats)
	}
	cold := ScanFiles(shrunk, "pkg", Options{})
	sameFindings(t, cold, rep2)

	// And the same package state keeps working if the file comes back.
	rep3 := ScanFiles(files, "pkg", opts)
	sameFindings(t, rep1, rep3)
}

// The cold Cache must evict deleted files' entries too (the same
// hazard through the non-incremental path).
func TestCacheEvictsDeletedFiles(t *testing.T) {
	cache := NewCache()
	opts := Options{Cache: cache}
	files := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
		{Rel: "vuln.js", Src: gitResetSrc},
	}
	rep1 := ScanFiles(files, "pkg", opts)
	if len(rep1.Findings) == 0 {
		t.Fatal("seed scan found nothing")
	}
	if cache.Len() != 2 {
		t.Fatalf("cache len = %d, want 2", cache.Len())
	}
	rep2 := ScanFiles(files[:1], "pkg", opts)
	if cache.Len() != 1 {
		t.Fatalf("stale entry survived: len = %d", cache.Len())
	}
	if len(rep2.Findings) != 0 {
		t.Fatalf("deleted file's findings survived: %v", rep2.Findings)
	}
}

// A scan truncated by a node cap must not cache its partial fragment
// as complete: the next (uncapped) scan rebuilds and matches cold.
func TestIncrementalBudgetPartialNotCached(t *testing.T) {
	st := NewIncrementalState()
	capped := ScanSource(gitResetSrc, "t.js", Options{Incremental: st, MaxNodes: 5})
	if !capped.Incomplete {
		t.Fatalf("cap did not trip: %+v", capped)
	}
	if st.Fragments() != 0 {
		t.Fatalf("partial fragment was cached: %d", st.Fragments())
	}

	full := ScanSource(gitResetSrc, "t.js", Options{Incremental: st})
	if full.IncrStats.FragmentHits != 0 {
		t.Fatalf("uncapped scan reused a partial fragment: %+v", full.IncrStats)
	}
	cold := ScanSource(gitResetSrc, "t.js", Options{})
	sameFindings(t, cold, full)
}

// Stale fragments are evicted when their component key disappears,
// keeping state memory proportional to the package.
func TestIncrementalFragmentEviction(t *testing.T) {
	st := NewIncrementalState()
	opts := Options{Incremental: st}
	ScanSource(gitResetSrc, "t.js", opts)
	if st.Fragments() != 1 {
		t.Fatalf("fragments = %d, want 1", st.Fragments())
	}
	ScanSource(gitResetSrc+"\n// edited\nvar touched = 1;\n", "t.js", opts)
	if st.Fragments() != 1 {
		t.Fatalf("stale fragment survived the edit: %d", st.Fragments())
	}
	if st.Stats().EvictedFragments == 0 {
		t.Fatalf("fragment eviction not recorded: %+v", st.Stats())
	}
}

// Incremental scans across engines must match their cold counterparts
// (the detection cache is keyed per engine).
func TestIncrementalMatchesColdAllEngines(t *testing.T) {
	for _, eng := range []Engine{EngineQuery, EngineNative, EngineDifferential, EngineFallback} {
		st := NewIncrementalState()
		opts := Options{Engine: eng, Incremental: st}
		cold := ScanSource(gitResetSrc, "t.js", Options{Engine: eng})
		incr := ScanSource(gitResetSrc, "t.js", opts)
		sameFindings(t, cold, incr)
		warm := ScanSource(gitResetSrc, "t.js", opts)
		sameFindings(t, cold, warm)
		if warm.IncrStats.DetectHits == 0 {
			t.Fatalf("engine %s: warm detection not cached: %+v", eng, warm.IncrStats)
		}
	}
}

// The export fallback is a package-wide decision; flipping it between
// scans (by adding/removing a real export elsewhere) must not serve a
// detection result computed under the other fallback state.
func TestIncrementalExportFallbackFlip(t *testing.T) {
	// No real exports anywhere: fallback marks sink's caller exported.
	noExport := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\n"},
		{Rel: "vuln.js", Src: `
const { exec } = require('child_process');
function run(c) { exec('echo ' + c); }
`},
	}
	// a.js gains a real export: the fallback turns off package-wide,
	// so vuln.js's unexported run() is no longer a source.
	withExport := []SourceFile{
		{Rel: "a.js", Src: "function fa(x) { return x; }\nmodule.exports = fa;\n"},
		noExport[1],
	}
	st := NewIncrementalState()
	opts := Options{Incremental: st}
	for i, files := range [][]SourceFile{noExport, withExport, noExport} {
		cold := ScanFiles(files, "pkg", Options{})
		incr := ScanFiles(files, "pkg", opts)
		if err := DiffFindings(cold.Findings, incr.Findings); err != nil {
			t.Fatalf("step %d: fallback flip diverged:\n%v", i, err)
		}
	}
}
