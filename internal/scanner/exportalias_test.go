package scanner

import (
	"sort"
	"testing"

	"repro/internal/dataset"
)

// scanAliasPkg scans one export-alias package, multi-file packages
// through ScanFiles (mirroring the metrics harness).
func scanAliasPkg(p *dataset.Package, opts Options) *Report {
	if len(p.Extra) == 0 {
		return ScanSource(p.Source, p.Name, opts)
	}
	files := []SourceFile{{Rel: "index.js", Src: p.Source}}
	rels := make([]string, 0, len(p.Extra))
	for rel := range p.Extra {
		rels = append(rels, rel)
	}
	sort.Strings(rels)
	for _, rel := range rels {
		files = append(files, SourceFile{Rel: rel, Src: p.Extra[rel]})
	}
	return ScanFiles(files, p.Name, opts)
}

// TestExportAliasPrunedPins pins the reach-gate counters for every
// export-alias template shape: how many functions each defines, how
// many the export graph prunes, and what the finding provenance looks
// like. A change in any pin means the alias resolution changed.
func TestExportAliasPrunedPins(t *testing.T) {
	cases := []struct {
		class       dataset.Class
		vulnerable  bool
		funcs       int
		pruned      int
		exports     int
		findings    int
		entryPrefix string
	}{
		{dataset.ClassDeadShadow, true, 2, 1, 1, 1, "module.exports"},
		{dataset.ClassDeadShadow, false, 2, 1, 1, 0, ""},
		{dataset.ClassAliasedExport, true, 1, 0, 1, 1, "exports."},
		{dataset.ClassAliasedExport, false, 2, 0, 2, 0, ""},
		{dataset.ClassReexportChain, true, 1, 0, 1, 1, "exports."},
		{dataset.ClassReexportChain, false, 1, 0, 1, 0, ""},
	}
	g := dataset.NewGenForTest(11)
	for _, tc := range cases {
		p := dataset.ExportAliasForTest(g, tc.class, tc.vulnerable)
		rep := scanAliasPkg(p, Options{})
		if rep.Err != nil {
			t.Fatalf("%s: %v", p.Name, rep.Err)
		}
		if rep.FuncsTotal != tc.funcs || rep.FuncsPruned != tc.pruned {
			t.Errorf("%s: funcs %d/%d pruned, want %d/%d",
				p.Name, rep.FuncsPruned, rep.FuncsTotal, tc.pruned, tc.funcs)
		}
		if rep.ExportCount != tc.exports {
			t.Errorf("%s: exports = %d, want %d", p.Name, rep.ExportCount, tc.exports)
		}
		if rep.ReachFallback {
			t.Errorf("%s: export evidence present, fallback must not fire", p.Name)
		}
		if len(rep.Findings) != tc.findings {
			t.Errorf("%s: findings = %v, want %d", p.Name, rep.Findings, tc.findings)
		}
		for _, f := range rep.Findings {
			if got := f.Provenance.Entry; len(got) < len(tc.entryPrefix) || got[:len(tc.entryPrefix)] != tc.entryPrefix {
				t.Errorf("%s: provenance entry %q, want prefix %q", p.Name, got, tc.entryPrefix)
			}
			if len(f.Provenance.Hops) == 0 {
				t.Errorf("%s: finding without hop chain: %s", p.Name, f)
			}
		}
	}
}

// TestExportAliasGroundTruth checks the corpus invariants: vulnerable
// variants carry exactly one annotation whose sink the scan detects,
// benign variants carry none and scan clean.
func TestExportAliasGroundTruth(t *testing.T) {
	c := dataset.ExportAlias(7)
	if len(c.Packages) != 12 {
		t.Fatalf("corpus size = %d, want 12", len(c.Packages))
	}
	seen := map[string]bool{}
	for _, p := range c.Packages {
		if seen[p.Name] {
			t.Fatalf("duplicate package name %s", p.Name)
		}
		seen[p.Name] = true
		rep := scanAliasPkg(p, Options{})
		if rep.Err != nil {
			t.Fatalf("%s: %v", p.Name, rep.Err)
		}
		vulnerable := p.CWE != ""
		if vulnerable {
			if len(p.Annotated) != 1 {
				t.Errorf("%s: %d annotations, want 1", p.Name, len(p.Annotated))
				continue
			}
			a := p.Annotated[0]
			hit := false
			for _, f := range rep.Findings {
				if f.CWE == a.CWE && f.SinkLine == a.Line {
					hit = true
				}
			}
			if !hit {
				t.Errorf("%s: annotated sink %s:%d not detected; findings %v",
					p.Name, a.CWE, a.Line, rep.Findings)
			}
		} else {
			if len(p.Annotated) != 0 || len(rep.Findings) != 0 {
				t.Errorf("%s: benign variant has annotations %v / findings %v",
					p.Name, p.Annotated, rep.Findings)
			}
		}
	}
}
