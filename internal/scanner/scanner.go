// Package scanner is Graph.js proper: the end-to-end pipeline that
// takes JavaScript sources (npm-package style), parses and normalizes
// them, builds the MDG, loads it into the embedded graph database, and
// runs the vulnerability queries (paper §4, "Implementation").
package scanner

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
	"repro/internal/queries"
)

// Options tunes a scan.
type Options struct {
	// Config is the sink configuration (DefaultConfig when nil).
	Config *queries.Config
	// Analysis options forwarded to the MDG builder.
	Analysis analysis.Options
	// Timeout aborts the scan (0 = no timeout). Enforced via the
	// analyzer's step budget plus wall-clock checks between phases.
	Timeout time.Duration
	// Cache, when set, memoizes the per-file front end across scans
	// (see Cache).
	Cache *Cache
}

// Report is the outcome of scanning one file or package.
type Report struct {
	Name     string
	Findings []queries.Finding
	TimedOut bool
	Err      error

	// Phase timings (Table 6).
	GraphTime time.Duration // parse + normalize + MDG build + load
	QueryTime time.Duration // traversals

	// Size metrics (Table 7). ASTNodes/CFGNodes are included to match
	// the paper's accounting ("we included the AST and CFG nodes used
	// to generate the final MDG").
	LoC       int
	ASTNodes  int
	CFGNodes  int
	CFGEdges  int
	MDGNodes  int
	MDGEdges  int
	CoreStmts int
}

// TotalNodes returns the node count as Table 7 reports it.
func (r *Report) TotalNodes() int { return r.ASTNodes + r.CFGNodes + r.MDGNodes }

// TotalEdges returns the edge count as Table 7 reports it.
func (r *Report) TotalEdges() int { return r.CFGEdges + r.MDGEdges }

// TotalTime returns the end-to-end analysis time.
func (r *Report) TotalTime() time.Duration { return r.GraphTime + r.QueryTime }

// ScanSource scans one JavaScript source text.
func ScanSource(src, name string, opts Options) *Report {
	rep := &Report{Name: name, LoC: strings.Count(src, "\n") + 1}
	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	deadline := time.Time{}
	if opts.Timeout > 0 {
		deadline = time.Now().Add(opts.Timeout)
	}
	expired := func() bool { return !deadline.IsZero() && time.Now().After(deadline) }

	start := time.Now()

	prog, err := parser.Parse(src)
	if err != nil {
		rep.Err = fmt.Errorf("scanner: parse %s: %w", name, err)
		return rep
	}
	rep.ASTNodes = ast.Count(prog)

	nprog := normalize.Normalize(prog, name)
	rep.CoreStmts = core.CountStmts(nprog.Body)

	cfgs := cfg.BuildAll(nprog)
	rep.CFGNodes, rep.CFGEdges = cfg.TotalSize(cfgs)

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	res := analysis.Analyze(nprog, aopts)
	rep.MDGNodes = res.Graph.NumNodes()
	rep.MDGEdges = res.Graph.NumEdges()
	if res.TimedOut || expired() {
		rep.TimedOut = true
		rep.GraphTime = time.Since(start)
		return rep
	}

	lg := queries.Load(res)
	rep.GraphTime = time.Since(start)

	qStart := time.Now()
	rep.Findings = queries.Detect(lg, cfgq)
	rep.QueryTime = time.Since(qStart)
	if expired() {
		rep.TimedOut = true
	}
	return rep
}

// ScanFile scans one JavaScript file.
func ScanFile(path string, opts Options) *Report {
	data, err := os.ReadFile(path)
	if err != nil {
		return &Report{Name: path, Err: fmt.Errorf("scanner: %w", err)}
	}
	return ScanSource(string(data), path, opts)
}

// ScanPackage scans every .js file under dir (skipping node_modules and
// test directories, like the artifact does) as one multi-module
// package: a single combined MDG is built so that require('./sibling')
// flows connect across files, then the vulnerability queries run once
// over the whole graph.
func ScanPackage(dir string, opts Options) *Report {
	var files []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "node_modules" || base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js") {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return &Report{Name: dir, Err: fmt.Errorf("scanner: %w", err)}
	}
	sort.Strings(files)

	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	rep := &Report{Name: dir}
	start := time.Now()

	frontEnd := noCacheFrontEnd
	if opts.Cache != nil {
		frontEnd = opts.Cache.frontEnd
	}
	var progs []*core.Program
	for _, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			if rep.Err == nil {
				rep.Err = fmt.Errorf("scanner: %w", err)
			}
			continue
		}
		rel, relErr := filepath.Rel(dir, f)
		if relErr != nil {
			rel = f
		}
		entry, err := frontEnd(rel, string(data))
		if err != nil {
			if rep.Err == nil {
				rep.Err = fmt.Errorf("scanner: parse %s: %w", rel, err)
			}
			continue
		}
		rep.LoC += entry.loc
		rep.ASTNodes += entry.astNodes
		rep.CoreStmts += entry.coreStmts
		rep.CFGNodes += entry.cfgNodes
		rep.CFGEdges += entry.cfgEdges
		progs = append(progs, entry.prog)
	}
	if len(progs) == 0 {
		return rep
	}

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	res := analysis.AnalyzeModules(progs, aopts)
	rep.MDGNodes = res.Graph.NumNodes()
	rep.MDGEdges = res.Graph.NumEdges()
	if res.TimedOut {
		rep.TimedOut = true
		rep.GraphTime = time.Since(start)
		return rep
	}
	lg := queries.Load(res)
	rep.GraphTime = time.Since(start)

	qStart := time.Now()
	rep.Findings = queries.Detect(lg, cfgq)
	rep.QueryTime = time.Since(qStart)
	return rep
}
