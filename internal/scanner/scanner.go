// Package scanner is Graph.js proper: the end-to-end pipeline that
// takes JavaScript sources (npm-package style), parses and normalizes
// them, builds the MDG, loads it into the embedded graph database, and
// runs the vulnerability queries (paper §4, "Implementation").
package scanner

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/budget"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/js/ast"
	"repro/internal/js/normalize"
	"repro/internal/js/parser"
	"repro/internal/queries"
	"repro/internal/reach"
	"repro/internal/taint"
)

// Engine selects the detection backend.
type Engine string

// Detection backends. The query engine loads the MDG into the graph
// database and runs the Table 2 queries; the native engine computes
// taint facts with one dataflow fixpoint directly on the MDG;
// differential mode runs both and fails loudly when their finding
// sets disagree; fallback mode runs the native engine and retries on
// the query engine when the native backend fails (and vice versa is
// unnecessary: the query engine retrying on native would re-run the
// same MDG, so one direction suffices).
const (
	EngineQuery        Engine = "query"
	EngineNative       Engine = "native"
	EngineDifferential Engine = "differential"
	EngineFallback     Engine = "fallback"
)

// ParseEngine validates an engine name ("" means the default, query).
func ParseEngine(s string) (Engine, error) {
	switch Engine(s) {
	case "", EngineQuery:
		return EngineQuery, nil
	case EngineNative:
		return EngineNative, nil
	case EngineDifferential:
		return EngineDifferential, nil
	case EngineFallback:
		return EngineFallback, nil
	}
	return "", fmt.Errorf("scanner: unknown engine %q (want query, native, differential, or fallback)", s)
}

// Options tunes a scan.
type Options struct {
	// Config is the sink configuration (DefaultConfig when nil).
	Config *queries.Config
	// Engine selects the detection backend ("" = EngineQuery).
	Engine Engine
	// Analysis options forwarded to the MDG builder.
	Analysis analysis.Options
	// Timeout aborts the scan (0 = no timeout), enforced by a shared
	// budget checked cooperatively in every pipeline phase.
	Timeout time.Duration
	// Context, when set, cancels the scan cooperatively: the budget
	// polls ctx.Done() at the same checkpoints as the deadline and the
	// scan unwinds with budget.ClassCanceled. The server threads each
	// request's context here so a disconnected client frees its run
	// slot mid-scan. Canceled results are never cached.
	Context context.Context
	// MaxSteps, MaxNodes and MaxEdges cap the scan's total abstract
	// steps and MDG size (0 = unlimited). Unlike Timeout, hitting a
	// cap still runs detection over the partial graph, so the report
	// carries the findings established so far (marked Incomplete).
	MaxSteps int
	MaxNodes int
	MaxEdges int
	// Cache, when set, memoizes the per-file front end across scans
	// (see Cache). Ignored when Incremental is set — the incremental
	// state owns its own front-end cache.
	Cache *Cache
	// Incremental, when set, reuses MDG fragments and detection
	// results across scans of the same package: only the
	// require-components touched by changed files are re-analyzed
	// (see IncrementalState). The state must be dedicated to one
	// logical package; use a StatePool for corpus sweeps.
	Incremental *IncrementalState
	// NoReachGate disables the call-graph reachability pre-pass that
	// skips graph construction for packages whose reachable code
	// cannot produce a finding.
	NoReachGate bool
	// ReachGateOnly stops the scan after the reachability pre-pass:
	// the cheapest-possible triage, used as the floor rung of the sweep
	// supervisor's degradation ladder. A package the gate can prove
	// finding-free completes cleanly; anything else returns an
	// Incomplete report with no findings. Ignored by incremental scans
	// (the fragment cache would be poisoned by gate-only results).
	ReachGateOnly bool
	// FaultLabel overrides the budget label used for deterministic
	// fault injection and diagnostics (default: the scan name). Sweep
	// supervisors label attempts "name#attempt" so injection plans can
	// distinguish first attempts from retries.
	FaultLabel string
	// Workers bounds the worker pool for multi-package sweeps
	// (metrics.SweepGraphJS, graphjs -workers). 0 means
	// runtime.GOMAXPROCS(0); 1 forces a sequential sweep. A single
	// ScanSource/ScanFile/ScanPackage call ignores it.
	Workers int
	// Tree treats the input as a dependency tree: node_modules
	// packages are resolved (internal/deptree), analyzed as separate
	// MDG fragments, stitched, and cross-package require edges are
	// linked so taint flows into real dependency code. package.json
	// files in the input feed the resolver. See ScanTreeDir.
	Tree bool
}

func (o Options) limits() budget.Limits {
	return budget.Limits{
		Timeout:  o.Timeout,
		MaxSteps: o.MaxSteps,
		MaxNodes: o.MaxNodes,
		MaxEdges: o.MaxEdges,
	}
}

// Report is the outcome of scanning one file or package.
type Report struct {
	Name     string
	Findings []queries.Finding
	TimedOut bool
	Err      error

	// Failure classifies why the scan ended early (budget.ClassNone
	// on a clean run): parse error, wall-clock timeout, a step/size
	// cap, a recovered engine panic, or a query-evaluation error.
	// TimedOut is the legacy boolean view of the timeout class.
	Failure budget.Class
	// Incomplete marks reports whose Findings are a sound subset
	// computed before a budget tripped.
	Incomplete bool
	// FellBack records that the fallback engine's primary backend
	// failed and Findings came from the secondary; FallbackErr keeps
	// the primary backend's error for diagnostics.
	FellBack    bool
	FallbackErr error

	// Engine records the backend that produced Findings.
	Engine Engine

	// Phase timings (Table 6).
	GraphTime time.Duration // parse + normalize + MDG build
	QueryTime time.Duration // detection with the selected backend
	// Per-backend detection timings: NativeTime is filled when the
	// native engine ran, QueryEngineTime when the query engine ran
	// (differential mode fills both; the query engine's time includes
	// the database load).
	NativeTime      time.Duration
	QueryEngineTime time.Duration

	// Reachability pre-pass results: how many functions the package
	// defines, how many are unreachable from its exported API, and
	// whether detection was skipped outright because reachable code
	// cannot produce a finding.
	FuncsTotal     int
	FuncsPruned    int
	SkippedByReach bool

	// Export-graph gate precision counters: resolved API-surface
	// entries, whether the gate ran the every-function fallback attack
	// model, and the deepest call-hop chain attached to any finding's
	// provenance.
	ExportCount     int
	ReachFallback   bool
	ProvenanceDepth int

	// TruncatedSearches counts taint searches cut short by the
	// MaxHops bound (silent under-approximation made observable).
	TruncatedSearches int

	// Phases records per-phase budget consumption (cooperative steps,
	// graph nodes/edges charged, wall time) in pipeline order, and
	// ExhaustedPhase names the phase the first budget failure tripped
	// in ("" when the budget held) — so callers see *which* phase
	// starved, not just that one did. Incremental scans do not fill
	// these (fragments interleave phases across cache hits).
	Phases         []budget.PhaseUsage
	ExhaustedPhase string

	// Size metrics (Table 7). ASTNodes/CFGNodes are included to match
	// the paper's accounting ("we included the AST and CFG nodes used
	// to generate the final MDG"). On an incremental scan MDGNodes and
	// MDGEdges are summed over the package's fragments, which can
	// slightly exceed a cold combined graph when several components
	// share lazily created global nodes.
	LoC       int
	ASTNodes  int
	CFGNodes  int
	CFGEdges  int
	MDGNodes  int
	MDGEdges  int
	CoreStmts int

	// IncrStats snapshots the incremental state's cumulative
	// hit/miss/rebuild counters after an incremental scan (nil on cold
	// scans).
	IncrStats *IncrementalStats

	// Tree-mode shape: how many packages the dependency tree resolved
	// to and the deepest node_modules nesting level (0 = root only).
	TreePackages int
	TreeDepth    int
}

// TotalNodes returns the node count as Table 7 reports it.
func (r *Report) TotalNodes() int { return r.ASTNodes + r.CFGNodes + r.MDGNodes }

// TotalEdges returns the edge count as Table 7 reports it.
func (r *Report) TotalEdges() int { return r.CFGEdges + r.MDGEdges }

// TotalTime returns the end-to-end analysis time.
func (r *Report) TotalTime() time.Duration { return r.GraphTime + r.QueryTime }

// testHookNative, when set, runs at the start of native detection.
// Tests use it to inject engine panics or burn the scan's budget; it
// must only be set by sequential tests.
var testHookNative func(name string, b *budget.Budget)

// newBudget builds the scan budget and labels it for fault injection
// and phase-stamped diagnostics.
func newBudget(opts Options, name string) *budget.Budget {
	b := budget.New(opts.limits()).WithContext(opts.Context)
	if opts.FaultLabel != "" {
		b.SetLabel(opts.FaultLabel)
	} else {
		b.SetLabel(name)
	}
	return b
}

// recordPhases closes the budget's phase log onto the report.
func recordPhases(rep *Report, b *budget.Budget) {
	rep.Phases = b.PhaseUsages()
	rep.ExhaustedPhase = b.ExhaustedPhase()
}

// setFailure records a terminal phase error, classifying it with def
// when the error carries no budget class of its own. Budget classes
// (timeout, cap) are classified outcomes rather than errors, so they
// leave rep.Err nil.
func setFailure(rep *Report, err error, def budget.Class) {
	class := budget.ClassOf(err)
	if class == budget.ClassNone {
		class = def
	}
	rep.Failure = class
	switch class {
	case budget.ClassTimeout:
		rep.TimedOut = true
	case budget.ClassBudget:
		rep.Incomplete = true
	case budget.ClassCanceled:
		// The client is gone; whatever was computed is a best-effort
		// subset, and like timeout/cap this is a classified outcome,
		// not an error.
		rep.Incomplete = true
	default:
		rep.Err = err
	}
}

// frontEndFailure classifies an error out of the front-end phase.
// Plain errors are parse errors (the parser is the only component in
// that phase that returns them).
func frontEndFailure(rep *Report, err error, name string) {
	switch budget.ClassOf(err) {
	case budget.ClassTimeout:
		rep.Failure = budget.ClassTimeout
		rep.TimedOut = true
	case budget.ClassBudget:
		rep.Failure = budget.ClassBudget
		rep.Incomplete = true
	case budget.ClassCanceled:
		rep.Failure = budget.ClassCanceled
		rep.Incomplete = true
	case budget.ClassPanic:
		rep.Failure = budget.ClassPanic
		rep.Err = err
	default:
		rep.Failure = budget.ClassParse
		rep.Err = fmt.Errorf("scanner: parse %s: %w", name, err)
	}
}

// ScanSource scans one JavaScript source text.
//
// ScanSource is safe for concurrent use by multiple goroutines, which
// is what makes parallel corpus sweeps (metrics.SweepGraphJS) sound:
// every pipeline stage — parser, normalizer, CFG builder, abstract
// interpreter, reach gate, and all detection backends — allocates its
// state per call, the shared opts.Config is read-only after
// construction, and opts.Cache (when set) is internally locked.
func ScanSource(src, name string, opts Options) *Report {
	if opts.Incremental != nil {
		return opts.Incremental.scan([]SourceFile{{Rel: name, Src: src}}, name, opts, nil)
	}
	rep := &Report{Name: name, LoC: strings.Count(src, "\n") + 1}
	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	b := newBudget(opts, name)
	defer func() { recordPhases(rep, b) }()

	start := time.Now()

	var nprog *core.Program
	b.BeginPhase("front-end")
	ferr := budget.Guard("front-end", func() error {
		prog, perr := parser.ParseBudget(src, b)
		if perr != nil {
			return perr
		}
		rep.ASTNodes = ast.Count(prog)
		nprog = normalize.NormalizeBudget(prog, name, b)
		rep.CoreStmts = core.CountStmts(nprog.Body)
		rep.CFGNodes, rep.CFGEdges = cfg.TotalSize(cfg.BuildAll(nprog))
		b.CheckDeadline()
		return b.Err()
	})
	if ferr != nil {
		frontEndFailure(rep, ferr, name)
		rep.GraphTime = time.Since(start)
		return rep
	}

	analyze := func(ao analysis.Options) *analysis.Result {
		return analysis.Analyze(nprog, ao)
	}
	return finishScan(rep, []*core.Program{nprog}, analyze, cfgq, opts, b, start)
}

// finishScan runs the shared back half of a scan — reach gate, MDG
// construction, and detection — over already-lowered programs.
func finishScan(rep *Report, progs []*core.Program, analyze func(analysis.Options) *analysis.Result,
	cfgq *queries.Config, opts Options, b *budget.Budget, start time.Time) *Report {

	skip := false
	var rr *reach.Result
	b.BeginPhase("reach-gate")
	if gerr := budget.Guard("reach-gate", func() error {
		rr, skip = gateSkips(rep, progs, cfgq, opts, b)
		return nil
	}); gerr != nil {
		// Panic-fenced like every other pass: the Guard recovers the
		// panic and the scan fails with a classified error (retry
		// ladders and quarantine handle it uniformly), instead of
		// silently absorbing faults inside the gate.
		setFailure(rep, gerr, budget.ClassPanic)
		rep.GraphTime = time.Since(start)
		return rep
	}
	if gateCanceled(rep, b) {
		rep.GraphTime = time.Since(start)
		return rep
	}
	if skip {
		rep.GraphTime = time.Since(start)
		return rep
	}
	if opts.ReachGateOnly {
		// Triage floor: the gate could not prove the package
		// finding-free, and the caller asked for nothing deeper. No
		// findings were established, so the report is best-effort.
		rep.Incomplete = true
		rep.GraphTime = time.Since(start)
		return rep
	}

	aopts := opts.Analysis
	if aopts.MaxLoopIter == 0 {
		aopts = analysis.DefaultOptions()
	}
	aopts.Budget = b
	var res *analysis.Result
	b.BeginPhase("analysis")
	if aerr := budget.Guard("analysis", func() error {
		res = analyze(aopts)
		return nil
	}); aerr != nil {
		setFailure(rep, aerr, budget.ClassPanic)
		rep.GraphTime = time.Since(start)
		return rep
	}
	rep.MDGNodes = res.Graph.NumNodes()
	rep.MDGEdges = res.Graph.NumEdges()

	if res.TimedOut && b.Err() == nil {
		// Legacy analysis.Options.StepBudget exhaustion: keep the old
		// contract (TimedOut, no findings).
		rep.TimedOut = true
		rep.Failure = budget.ClassBudget
		rep.GraphTime = time.Since(start)
		return rep
	}
	b.CheckDeadline()
	if berr := b.Err(); berr != nil {
		rep.Failure = budget.ClassOf(berr)
		if rep.Failure == budget.ClassTimeout {
			rep.TimedOut = true
			rep.GraphTime = time.Since(start)
			return rep
		}
		if rep.Failure == budget.ClassCanceled {
			// Nobody is waiting for findings-so-far; skip the grace
			// detection pass entirely.
			rep.Incomplete = true
			rep.GraphTime = time.Since(start)
			return rep
		}
		// A cap (steps/nodes/edges) tripped: still report the findings
		// the partial graph supports, under the remaining wall clock.
		rep.Incomplete = true
		b = b.DeadlineOnly()
	}

	runDetection(rep, res, cfgq, rep.Engine, start, b)
	annotateProvenance(rep, rr)

	b.CheckDeadline()
	if budget.ClassOf(b.Err()) == budget.ClassTimeout {
		rep.TimedOut = true
		rep.Incomplete = true
		if rep.Failure == budget.ClassNone {
			rep.Failure = budget.ClassTimeout
		}
	}
	return rep
}

// gateSkips runs the export-graph reachability gate and reports
// whether the whole detection pipeline can be skipped for this
// package. Under NoReachGate the gate still runs — its result feeds
// finding provenance and the precision counters, and keeping it in
// both modes makes gated and ungated reports byte-identical wherever
// they overlap — but it never skips.
func gateSkips(rep *Report, progs []*core.Program, cfgq *queries.Config, opts Options, b *budget.Budget) (*reach.Result, bool) {
	rr := reach.AnalyzeBudget(progs, cfgq, b)
	rep.FuncsTotal = rr.TotalFuncs
	rep.FuncsPruned = rr.PrunedFuncs
	rep.ExportCount = rr.ExportCount
	rep.ReachFallback = rr.Fallback
	if !opts.NoReachGate && rr.CanSkipDetection() {
		rep.SkippedByReach = true
		return rr, true
	}
	return rr, false
}

// gateCanceled reports whether the request was canceled while the
// reach gate ran, classifying the report if so. The gate absorbs
// budget trips by degrading to the keep-everything fallback — its skip
// answer stays sound — so the skip early-return is the one place a
// latched cancellation would never be re-observed by a later phase
// guard, misreporting a canceled scan as a clean completion that
// journals would record and callers would trust.
func gateCanceled(rep *Report, b *budget.Budget) bool {
	b.CheckDeadline()
	if budget.ClassOf(b.Err()) != budget.ClassCanceled {
		return false
	}
	rep.Failure = budget.ClassCanceled
	rep.Incomplete = true
	rep.SkippedByReach = false
	return true
}

// annotateProvenance attaches call-path provenance to every finding:
// how its sink line is reachable from the exported API. Findings the
// gate cannot place (or any finding when the gate itself failed) get
// the explicit "(unresolved)" marker rather than silence.
func annotateProvenance(rep *Report, rr *reach.Result) {
	for i := range rep.Findings {
		f := &rep.Findings[i]
		if rr == nil || rr.Exports == nil {
			f.Provenance = queries.Provenance{Entry: "(unresolved)", Fallback: true}
			continue
		}
		entry, hops, ok := rr.Exports.PathTo(f.SinkFile, f.SinkLine)
		if !ok {
			f.Provenance = queries.Provenance{Entry: "(unresolved)", Fallback: rr.Fallback}
			continue
		}
		f.Provenance = queries.Provenance{Entry: entry, Hops: hops, Fallback: rr.Fallback}
		if len(hops) > rep.ProvenanceDepth {
			rep.ProvenanceDepth = len(hops)
		}
	}
}

// detectNative runs the native taint engine inside a panic guard and
// returns its findings. Timing and truncation stats are recorded on
// the report even when the engine fails.
func detectNative(rep *Report, res *analysis.Result, cfgq *queries.Config, b *budget.Budget) ([]queries.Finding, error) {
	qStart := time.Now()
	var fs []queries.Finding
	b.BeginPhase("detect-native")
	err := budget.Guard("detect-native", func() error {
		if testHookNative != nil {
			testHookNative(rep.Name, b)
		}
		eng := taint.NewEngineBudget(res, cfgq, b)
		fs = eng.Detect()
		rep.TruncatedSearches += eng.Truncated
		if eng.Incomplete {
			rep.Incomplete = true
		}
		return nil
	})
	rep.NativeTime = time.Since(qStart)
	return fs, err
}

// detectQuery loads the MDG into the graph database and runs the
// Table 2 queries inside a panic guard. The load is included in
// QueryEngineTime.
func detectQuery(rep *Report, res *analysis.Result, cfgq *queries.Config, b *budget.Budget) ([]queries.Finding, error) {
	qStart := time.Now()
	var fs []queries.Finding
	b.BeginPhase("detect-query")
	err := budget.Guard("detect-query", func() error {
		lg := queries.LoadBudget(res, b)
		out, derr := queries.Detect(lg, cfgq)
		if derr != nil {
			return derr
		}
		fs = out
		rep.TruncatedSearches += lg.Truncated
		if b.Exceeded() {
			rep.Incomplete = true
		}
		return nil
	})
	rep.QueryEngineTime = time.Since(qStart)
	return fs, err
}

// runDetection executes the selected backend over an analysis result.
// GraphTime is closed here, before detection starts.
func runDetection(rep *Report, res *analysis.Result, cfgq *queries.Config, engine Engine, start time.Time, b *budget.Budget) {
	rep.GraphTime = time.Since(start)
	detectInto(rep, res, cfgq, engine, b)
}

// detectInto runs the selected backend and records findings, timings
// and failure state on rep, leaving GraphTime alone — the incremental
// path calls it once per fragment with a scratch report.
func detectInto(rep *Report, res *analysis.Result, cfgq *queries.Config, engine Engine, b *budget.Budget) {
	switch engine {
	case EngineNative:
		fs, err := detectNative(rep, res, cfgq, b)
		rep.QueryTime = rep.NativeTime
		if err != nil {
			setFailure(rep, err, budget.ClassQuery)
			return
		}
		rep.Findings = fs

	case EngineDifferential:
		qf, qErr := detectQuery(rep, res, cfgq, b)
		rep.QueryTime = rep.QueryEngineTime
		if qErr != nil {
			setFailure(rep, qErr, budget.ClassQuery)
			return
		}
		nf, nErr := detectNative(rep, res, cfgq, b)
		rep.QueryTime = rep.QueryEngineTime + rep.NativeTime
		if nErr != nil {
			setFailure(rep, nErr, budget.ClassQuery)
			return
		}
		rep.Findings = qf
		if b.Exceeded() {
			// Both backends were cut short; their partial finding sets
			// are not comparable.
			return
		}
		if err := DiffFindings(qf, nf); err != nil {
			rep.Err = fmt.Errorf("scanner: differential mismatch on %s: %w", rep.Name, err)
			rep.Failure = budget.ClassQuery
		}

	case EngineFallback:
		fs, err := detectNative(rep, res, cfgq, b)
		rep.QueryTime = rep.NativeTime
		if err == nil {
			rep.Findings = fs
			return
		}
		switch budget.ClassOf(err) {
		case budget.ClassTimeout, budget.ClassCanceled:
			// The wall clock is shared by every retry; it ran out (or the
			// client is gone), so the fallback would be dead on arrival.
			setFailure(rep, err, budget.ClassQuery)
			return
		case budget.ClassBudget:
			// A step/node/edge cap tripped. The caps measure *engine*
			// effort, so an exhausted native budget says nothing about
			// what the query backend needs — retry it on a fresh, smaller
			// allowance (under the same wall clock) instead of inheriting
			// a budget that would trip on its first step.
			b = b.Derive(halfCaps(b.Limits()))
			rep.Incomplete = true
		}
		rep.FellBack = true
		rep.FallbackErr = err
		qf, qErr := detectQuery(rep, res, cfgq, b)
		rep.QueryTime = rep.NativeTime + rep.QueryEngineTime
		if qErr != nil {
			setFailure(rep, qErr, budget.ClassQuery)
			return
		}
		rep.Findings = qf

	default: // EngineQuery
		fs, err := detectQuery(rep, res, cfgq, b)
		rep.QueryTime = rep.QueryEngineTime
		if err != nil {
			setFailure(rep, err, budget.ClassQuery)
			return
		}
		rep.Findings = fs
	}
}

// halfCaps halves each finite step/node/edge cap (never below 1) and
// keeps the wall clock, sizing a retry's fresh allowance.
func halfCaps(l budget.Limits) budget.Limits {
	half := func(n int) int {
		if n <= 0 {
			return n
		}
		if n/2 < 1 {
			return 1
		}
		return n / 2
	}
	return budget.Limits{Timeout: l.Timeout, MaxSteps: half(l.MaxSteps),
		MaxNodes: half(l.MaxNodes), MaxEdges: half(l.MaxEdges)}
}

// DiffFindings compares the finding sets of the two backends on the
// identity (CWE, sink name, sink file, sink line, source), ignoring
// witness paths (the backends report different but equally valid
// witnesses). A non-nil error describes every discrepancy.
func DiffFindings(query, native []queries.Finding) error {
	key := func(f queries.Finding) string {
		return fmt.Sprintf("%s %s %s:%d (source %s)", f.CWE, f.SinkName, f.SinkFile, f.SinkLine, f.Source)
	}
	count := func(fs []queries.Finding) map[string]int {
		m := map[string]int{}
		for _, f := range fs {
			m[key(f)]++
		}
		return m
	}
	qm, nm := count(query), count(native)
	var diffs []string
	for k, c := range qm {
		if nm[k] != c {
			diffs = append(diffs, fmt.Sprintf("query=%d native=%d: %s", c, nm[k], k))
		}
	}
	for k, c := range nm {
		if _, ok := qm[k]; !ok {
			diffs = append(diffs, fmt.Sprintf("query=0 native=%d: %s", c, k))
		}
	}
	if len(diffs) == 0 {
		return nil
	}
	sort.Strings(diffs)
	return fmt.Errorf("finding sets differ (%d discrepancies):\n  %s",
		len(diffs), strings.Join(diffs, "\n  "))
}

// ScanFile scans one JavaScript file.
func ScanFile(path string, opts Options) *Report {
	data, err := os.ReadFile(path)
	if err != nil {
		return &Report{Name: path, Err: fmt.Errorf("scanner: %w", err)}
	}
	return ScanSource(string(data), path, opts)
}

// SourceFile is one file of an in-memory package: Rel is the
// package-relative path used for require resolution, Src the source
// text.
type SourceFile struct {
	Rel string
	Src string
}

// ScanPackage scans every .js file under dir (skipping node_modules and
// test directories, like the artifact does) as one multi-module
// package: a single combined MDG is built so that require('./sibling')
// flows connect across files, then the vulnerability queries run once
// over the whole graph.
func ScanPackage(dir string, opts Options) *Report {
	var paths []string
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			base := filepath.Base(path)
			if base == "node_modules" || base == "test" || base == "tests" || base == ".git" {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(path, ".js") && !strings.HasSuffix(path, ".min.js") {
			paths = append(paths, path)
		}
		return nil
	})
	if err != nil {
		return &Report{Name: dir, Err: fmt.Errorf("scanner: %w", err)}
	}
	sort.Strings(paths)

	var files []SourceFile
	var readErr error
	for _, f := range paths {
		data, rdErr := os.ReadFile(f)
		if rdErr != nil {
			if readErr == nil {
				readErr = fmt.Errorf("scanner: %w", rdErr)
			}
			continue
		}
		rel, relErr := filepath.Rel(dir, f)
		if relErr != nil {
			rel = f
		}
		files = append(files, SourceFile{Rel: rel, Src: string(data)})
	}
	return scanFiles(files, dir, opts, readErr)
}

// ScanFiles scans an in-memory file set as one multi-module package,
// exactly like ScanPackage does for a directory: files are assumed to
// be in sorted Rel order (require resolution and site allocation
// depend on file order). The mutation-equivalence harness uses it to
// scan synthetic packages without touching the filesystem.
func ScanFiles(files []SourceFile, name string, opts Options) *Report {
	return scanFiles(files, name, opts, nil)
}

// scanFiles is the shared package-scan body. preErr is a pre-existing
// non-fatal error (e.g. an unreadable file) recorded on the report.
func scanFiles(files []SourceFile, name string, opts Options, preErr error) *Report {
	if opts.Tree {
		return scanTree(files, name, opts, preErr)
	}
	if opts.Incremental != nil {
		return opts.Incremental.scan(files, name, opts, preErr)
	}

	cfgq := opts.Config
	if cfgq == nil {
		cfgq = queries.DefaultConfig()
	}
	rep := &Report{Name: name, Err: preErr}
	engine, err := ParseEngine(string(opts.Engine))
	if err != nil {
		rep.Err = err
		return rep
	}
	rep.Engine = engine
	b := newBudget(opts, name)
	defer func() { recordPhases(rep, b) }()
	start := time.Now()

	frontEnd := noCacheFrontEnd
	if opts.Cache != nil {
		frontEnd = opts.Cache.frontEnd
	}
	var progs []*core.Program
	keep := make(map[string]bool, len(files))
	b.BeginPhase("front-end")
	ferr := budget.Guard("front-end", func() error {
		for _, f := range files {
			keep[f.Rel] = true
			entry, feErr := frontEnd(f.Rel, f.Src, b)
			if feErr != nil {
				switch budget.ClassOf(feErr) {
				case budget.ClassTimeout, budget.ClassBudget, budget.ClassCanceled:
					return feErr // the whole package's budget is gone
				}
				// A parse error in one file does not doom the package;
				// record the first one and keep going.
				if rep.Err == nil {
					rep.Err = fmt.Errorf("scanner: parse %s: %w", f.Rel, feErr)
					rep.Failure = budget.ClassParse
				}
				continue
			}
			rep.LoC += entry.loc
			rep.ASTNodes += entry.astNodes
			rep.CoreStmts += entry.coreStmts
			rep.CFGNodes += entry.cfgNodes
			rep.CFGEdges += entry.cfgEdges
			progs = append(progs, entry.prog)
		}
		b.CheckDeadline()
		return b.Err()
	})
	// Scan completion is when deleted files become observable: drop
	// cache entries for paths no longer in the package so stale
	// programs can never resurface in a later scan.
	if opts.Cache != nil {
		opts.Cache.EvictExcept(keep)
	}
	if ferr != nil {
		frontEndFailure(rep, ferr, name)
		rep.GraphTime = time.Since(start)
		return rep
	}
	if len(progs) == 0 {
		return rep
	}

	analyze := func(ao analysis.Options) *analysis.Result {
		return analysis.AnalyzeModules(progs, ao)
	}
	return finishScan(rep, progs, analyze, cfgq, opts, b, start)
}
